// Simulated-time definitions for the BarrierIO discrete-event simulator.
//
// All simulation timestamps and durations are integral nanoseconds. The
// literals in bio::sim::literals make device/latency tables readable:
//
//   using namespace bio::sim::literals;
//   constexpr SimTime kPageProgram = 900_us;
#pragma once

#include <cstdint>

namespace bio::sim {

/// A point in simulated time, or a duration, in nanoseconds.
using SimTime = std::uint64_t;

/// Largest representable simulated time; used as "never".
inline constexpr SimTime kSimTimeMax = ~SimTime{0};

namespace literals {

constexpr SimTime operator""_ns(unsigned long long v) { return SimTime{v}; }
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime{v} * 1000u;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime{v} * 1000u * 1000u;
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime{v} * 1000u * 1000u * 1000u;
}

}  // namespace literals

/// Converts a simulated duration to (floating-point) seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Converts a simulated duration to (floating-point) milliseconds.
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Converts a simulated duration to (floating-point) microseconds.
constexpr double to_micros(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace bio::sim
