// Host-parallel executor for embarrassingly parallel simulator work.
//
// Every crash-sweep point and every figure-bench cell builds its own
// core::Stack (one simulator, one device, one filesystem), so independent
// work units share no simulated state — the only cross-thread surface is
// host-side process state, which the pool's contract keeps clean:
//
//   * the sim/frame_pool coroutine-frame recycler is thread_local (each
//     worker recycles its own frames; retired workers fold their stats
//     into the aggregate snapshot — see frame_pool_aggregate_stats());
//   * blk::RequestPool and every other pool/counter hang off the Stack a
//     unit builds, so they are thread-private by construction;
//   * deterministic seed partitioning is the CALLER's job: each unit
//     derives its seed/crash-instant from its index alone (never from
//     execution order), and the caller merges results in canonical index
//     order, so a jobs=N run is bit-identical to jobs=1.
//
// The pool is bounded and joining: for_each_index() fans indices across at
// most jobs() host threads and joins every worker before it returns —
// worker lambdas are owned by the pool joiner, never detached (the iolint
// detached-task-capture contract for executor call sites).
//
// This is tier (a) of ROADMAP's "Parallel host execution of the
// simulator", following Graphite's host-thread simulation model: one
// simulated node per host thread, no cross-thread simulated time. Tier (b)
// — sharding one node's volumes across host threads with lock-step epoch
// synchronization — builds on this layer.
#pragma once

#include <functional>
#include <vector>

namespace bio::sim {

/// Hard upper bound on host threads per pool: sweeps are memory-light but
/// a runaway jobs request must not fork hundreds of threads.
inline constexpr int kMaxHostJobs = 64;

/// Resolves a jobs request into an actual thread count:
///   requested >= 1 -> clamped to [1, kMaxHostJobs];
///   requested <= 0 -> the BIO_SWEEP_JOBS environment variable when it
///                     parses as a positive decimal (the ctest hook), else
///                     std::thread::hardware_concurrency(), clamped.
int resolve_host_jobs(int requested = 0);

class HostPool {
 public:
  /// `jobs` as in resolve_host_jobs(); the default (0) picks up
  /// BIO_SWEEP_JOBS / hardware concurrency.
  explicit HostPool(int jobs = 0) : jobs_(resolve_host_jobs(jobs)) {}

  int jobs() const noexcept { return jobs_; }

  /// Runs fn(0), fn(1), ..., fn(n-1), fanning the indices across up to
  /// jobs() host threads, and joins every worker before returning (the
  /// closure never outlives this call). jobs() == 1 is the legacy serial
  /// path: the indices run inline, in order, on the calling thread — no
  /// thread is ever spawned. Worker order is otherwise unspecified, so
  /// fn must write only to its own index's slot; the first exception a
  /// worker throws is rethrown here after the join.
  void for_each_index(int n, const std::function<void(int)>& fn) const;

  /// for_each_index with an index-ordered result vector: out[i] = fn(i).
  template <typename R, typename Fn>
  std::vector<R> map(int n, Fn&& fn) const {
    std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
    // iolint: detached-owner(for_each_index joins its workers before
    // returning; the capture cannot outlive this frame)
    for_each_index(n, [&out, &fn](int i) {
      out[static_cast<std::size_t>(i)] = fn(i);
    });
    return out;
  }

 private:
  int jobs_;
};

}  // namespace bio::sim
