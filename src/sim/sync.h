// Synchronization primitives for simulated threads.
//
// Waiting on any primitive here models *blocking*: the waiting thread is
// descheduled, and when woken it is charged the simulator's wake latency and
// one context switch (ThreadCtx::context_switches). Because the simulator
// is single-threaded and non-preemptive, the classic check-then-wait pattern
// has no lost-wakeup race.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/check.h"
#include "sim/simulator.h"

namespace bio::sim {

namespace detail {
struct Waiter {
  std::coroutine_handle<> handle;
  ThreadCtx* thread;
};
}  // namespace detail

/// One-shot completion event (e.g. "this DMA transfer finished").
/// wait() returns immediately once trigger() has been called; reset()
/// re-arms it. Multiple waiters are all woken by one trigger().
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }

  void trigger() {
    if (set_) return;
    set_ = true;
    for (const auto& w : waiters_) sim_->schedule_wakeup(w.handle, w.thread);
    waiters_.clear();
  }

  /// Re-arms a triggered event. Must not be called with waiters pending.
  void reset() {
    BIO_CHECK_MSG(waiters_.empty(), "Event::reset with pending waiters");
    set_ = false;
  }

  /// Re-arms unconditionally, discarding any registered waiters. Only for
  /// object recycling (blk::RequestPool) where the embedded event may be
  /// torn down mid-wait during simulator teardown — exactly as destroying
  /// a heap-allocated Event would have.
  void recycle() noexcept {
    waiters_.clear();
    set_ = false;
  }

  struct Awaiter {
    Event& event;
    bool await_ready() const noexcept { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) const {
      ThreadCtx* cur = event.sim_->current_thread();
      if (cur != nullptr) ++cur->blocks;
      event.waiters_.push_back({h, cur});
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  bool set_ = false;
  /// vector, not deque: wakes always drain everyone at once, and a default
  /// vector performs no heap allocation (deques grab a chunk on
  /// construction — costly for the pooled per-request events).
  std::vector<detail::Waiter> waiters_;
};

/// Counting semaphore with FIFO hand-off: release() passes the permit
/// directly to the oldest waiter, so a latecomer cannot barge in between
/// the release and the waiter's resume.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::uint64_t initial)
      : sim_(&sim), count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::uint64_t available() const noexcept { return count_; }
  std::uint64_t waiting() const noexcept { return waiters_.size(); }

  bool try_acquire() noexcept {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release(std::uint64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      detail::Waiter w = waiters_.front();
      waiters_.pop_front();
      sim_->schedule_wakeup(w.handle, w.thread);
      --n;
    }
    count_ += n;
  }

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() const noexcept { return sem.try_acquire(); }
    void await_suspend(std::coroutine_handle<> h) const {
      ThreadCtx* cur = sem.sim_->current_thread();
      if (cur != nullptr) ++cur->blocks;
      sem.waiters_.push_back({h, cur});
    }
    void await_resume() const noexcept {}
  };

  Awaiter acquire() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  std::uint64_t count_;
  std::deque<detail::Waiter> waiters_;
};

/// Mutual exclusion built on the semaphore's FIFO hand-off.
class Mutex {
 public:
  explicit Mutex(Simulator& sim) : sem_(sim, 1) {}

  Semaphore::Awaiter lock() noexcept { return sem_.acquire(); }
  void unlock() { sem_.release(); }
  bool try_lock() noexcept { return sem_.try_acquire(); }

 private:
  Semaphore sem_;
};

/// Condition-variable-like notifier: wait() always blocks until the *next*
/// notify_all()/notify_one(). Use with an explicit predicate loop.
class Notify {
 public:
  explicit Notify(Simulator& sim) : sim_(&sim) {}

  Notify(const Notify&) = delete;
  Notify& operator=(const Notify&) = delete;

  void notify_all() {
    for (const auto& w : waiters_) sim_->schedule_wakeup(w.handle, w.thread);
    waiters_.clear();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    detail::Waiter w = waiters_.front();
    waiters_.pop_front();
    sim_->schedule_wakeup(w.handle, w.thread);
  }

  std::size_t waiting() const noexcept { return waiters_.size(); }

  struct Awaiter {
    Notify& n;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      ThreadCtx* cur = n.sim_->current_thread();
      if (cur != nullptr) ++cur->blocks;
      n.waiters_.push_back({h, cur});
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  std::deque<detail::Waiter> waiters_;
};

/// Bounded FIFO channel between simulated threads. push() blocks while the
/// channel is full; pop() blocks while it is empty. close() wakes all
/// blocked poppers with std::nullopt once drained.
///
/// Transfers to/from blocked peers are slot-based hand-offs performed at
/// wake time, so no third coroutine can barge in between the wake and the
/// resumed party observing its item/space.
template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, std::size_t capacity)
      : sim_(&sim), capacity_(capacity) {
    BIO_CHECK(capacity_ > 0);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  bool closed() const noexcept { return closed_; }

  void close() {
    closed_ = true;
    for (const auto& w : pop_waiters_)
      sim_->schedule_wakeup(w.handle, w.thread);
    pop_waiters_.clear();
  }

  bool try_push(T value) {
    BIO_CHECK_MSG(!closed_, "push on closed channel");
    if (!pop_waiters_.empty()) {
      // A popper is blocked, which implies the queue is empty: hand over.
      BIO_CHECK(items_.empty());
      PopWaiter w = pop_waiters_.front();
      pop_waiters_.pop_front();
      w.slot->emplace(std::move(value));
      sim_->schedule_wakeup(w.handle, w.thread);
      return true;
    }
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    if (!push_waiters_.empty()) {
      // Space appeared: complete the oldest blocked push right now.
      PushWaiter w = push_waiters_.front();
      push_waiters_.pop_front();
      items_.push_back(std::move(*w.slot));
      sim_->schedule_wakeup(w.handle, w.thread);
    }
    return v;
  }

  struct PushAwaiter {
    Channel& ch;
    T value;
    bool await_ready() { return ch.try_push(std::move(value)); }
    void await_suspend(std::coroutine_handle<> h) {
      ThreadCtx* cur = ch.sim_->current_thread();
      if (cur != nullptr) ++cur->blocks;
      ch.push_waiters_.push_back({h, cur, &value});
    }
    void await_resume() const noexcept {}
  };

  struct PopAwaiter {
    Channel& ch;
    std::optional<T> value;
    bool await_ready() {
      value = ch.try_pop();
      return value.has_value() || ch.closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ThreadCtx* cur = ch.sim_->current_thread();
      if (cur != nullptr) ++cur->blocks;
      ch.pop_waiters_.push_back({h, cur, &value});
    }
    std::optional<T> await_resume() { return std::move(value); }
  };

  PushAwaiter push(T value) { return PushAwaiter{*this, std::move(value)}; }
  PopAwaiter pop() { return PopAwaiter{*this, std::nullopt}; }

 private:
  struct PushWaiter {
    std::coroutine_handle<> handle;
    ThreadCtx* thread;
    T* slot;
  };
  struct PopWaiter {
    std::coroutine_handle<> handle;
    ThreadCtx* thread;
    std::optional<T>* slot;
  };

  Simulator* sim_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<PushWaiter> push_waiters_;
  std::deque<PopWaiter> pop_waiters_;
};

}  // namespace bio::sim
