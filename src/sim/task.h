// Coroutine task type for the BarrierIO discrete-event simulator.
//
// A simulated activity (an "application thread", the JBD commit thread, the
// storage controller, ...) is written as a C++20 coroutine returning
// sim::Task. Tasks are lazy: they do not run until either
//   * spawned onto a Simulator as a top-level simulated thread, or
//   * awaited from another task (`co_await child()`), in which case the
//     child runs synchronously in simulated time within the caller's
//     simulated thread and resumes the caller on completion.
//
// Exceptions thrown inside an awaited task propagate to the awaiter.
// Exceptions escaping a top-level task are captured by the Simulator and
// rethrown from Simulator::run().
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/check.h"
#include "sim/frame_pool.h"

namespace bio::sim {

class Simulator;
struct ThreadCtx;

/// Lazily-started coroutine used for all simulated activities.
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    /// Parent coroutine to resume when this task completes (awaited tasks).
    std::coroutine_handle<> continuation;
    /// Simulator driving this task; set on spawn, inherited when awaited.
    Simulator* sim = nullptr;
    /// Set for top-level (spawned) tasks: frame self-destroys at completion.
    bool detached = false;
    /// ThreadCtx of the simulated thread this top-level task embodies.
    ThreadCtx* thread = nullptr;
    std::exception_ptr error;

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() { error = std::current_exception(); }

    // Coroutine frames come from the recycling frame pool: per-await frame
    // allocation is the simulator's dominant heap traffic.
    static void* operator new(std::size_t n) { return detail::frame_alloc(n); }
    static void operator delete(void* p) noexcept { detail::frame_free(p); }
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Releases ownership of the coroutine frame (used by Simulator::spawn;
  /// the frame then self-destroys at final suspend).
  Handle release() noexcept { return std::exchange(handle_, {}); }

  /// Awaiter: starts the child task immediately (symmetric transfer) and
  /// resumes the awaiting coroutine when the child completes.
  struct Awaiter {
    Handle child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent);
    void await_resume() const {
      if (child && child.promise().error)
        std::rethrow_exception(child.promise().error);
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

/// Value-returning variant of Task: `co_return value;` hands `value` to the
/// awaiter (`T r = co_await child();`). TaskOf cannot be spawned as a
/// top-level simulated thread — there would be nobody to receive the value —
/// only awaited from a Task or another TaskOf. The syscall layer
/// (api::Vfs) uses TaskOf<Result<...>> so every syscall has a typed
/// errno-style outcome instead of a void Task.
template <typename T>
class [[nodiscard]] TaskOf {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      // Awaited-only: the continuation is always set by Awaiter below.
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;
    std::optional<T> value;

    TaskOf get_return_object() { return TaskOf{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { error = std::current_exception(); }

    static void* operator new(std::size_t n) { return detail::frame_alloc(n); }
    static void operator delete(void* p) noexcept { detail::frame_free(p); }
  };

  TaskOf() = default;
  explicit TaskOf(Handle h) : handle_(h) {}
  TaskOf(TaskOf&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  TaskOf& operator=(TaskOf&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  TaskOf(const TaskOf&) = delete;
  TaskOf& operator=(const TaskOf&) = delete;
  ~TaskOf() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  struct Awaiter {
    Handle child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      child.promise().continuation = parent;
      return child;  // symmetric transfer: start the child immediately
    }
    T await_resume() const {
      BIO_CHECK_MSG(static_cast<bool>(child), "await on an empty TaskOf");
      if (child.promise().error)
        std::rethrow_exception(child.promise().error);
      return std::move(*child.promise().value);
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace bio::sim
