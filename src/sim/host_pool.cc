#include "sim/host_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

namespace bio::sim {

namespace {

int clamp_jobs(long v) {
  if (v < 1) return 1;
  if (v > kMaxHostJobs) return kMaxHostJobs;
  return static_cast<int>(v);
}

/// Strict positive-decimal parse of the BIO_SWEEP_JOBS hook; anything else
/// (empty, signs, trailing junk, zero) is ignored rather than silently
/// running a different parallelism than the operator asked for.
bool parse_jobs_env(const char* s, long& out) {
  if (s == nullptr || *s == '\0') return false;
  long v = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    v = v * 10 + (*p - '0');
    if (v > kMaxHostJobs) v = kMaxHostJobs;  // saturate, keep scanning
  }
  if (v < 1) return false;
  out = v;
  return true;
}

}  // namespace

int resolve_host_jobs(int requested) {
  if (requested >= 1) return clamp_jobs(requested);
  long env_jobs = 0;
  if (parse_jobs_env(std::getenv("BIO_SWEEP_JOBS"), env_jobs))
    return clamp_jobs(env_jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return clamp_jobs(hw == 0 ? 1 : static_cast<long>(hw));
}

void HostPool::for_each_index(int n, const std::function<void(int)>& fn) const {
  if (n <= 0) return;
  const int workers = jobs_ < n ? jobs_ : n;
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);  // legacy serial path, in order
    return;
  }
  // Dynamic index partitioning: workers pull the next unclaimed index, so
  // a slow unit (deep sweep point) never stalls the whole batch behind a
  // static stripe. Determinism is unaffected — each unit derives its
  // inputs from its index and writes only its own slot.
  std::atomic<int> next{0};
  // `failed` elects a single writer for first_error; thread::join gives
  // the reader its happens-before edge.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&next, &fn, &failed, &first_error, n] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          // Keep only the first failure; losers keep draining so the
          // join below never deadlocks on a half-claimed index space.
          if (!failed.exchange(true, std::memory_order_acq_rel))
            first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bio::sim
