#include "sim/frame_pool.h"

#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace bio::sim {

namespace {

// 64-byte size classes up to 8 KiB; anything larger goes straight to the
// heap. Each class keeps at most kMaxPerClass parked frames so a one-off
// burst (e.g. ten thousand concurrent fsync frames) cannot pin memory
// forever.
constexpr std::size_t kClassShift = 6;
constexpr std::size_t kClassSize = std::size_t{1} << kClassShift;
constexpr std::size_t kNumClasses = 128;  // 128 * 64 B = 8 KiB
constexpr std::size_t kMaxPerClass = 1024;
// Frames get a 16-byte header recording their size class, so plain
// operator delete-style frees (no size argument) can find the bucket.
// 16 bytes keeps the returned pointer aligned for coroutine frames.
constexpr std::size_t kHeader = 16;

// Retired-pool aggregate: folded under the registry mutex when a thread's
// pool is destroyed. Heap-allocated and never freed so a thread_local
// destructor running late in process teardown (after static destructors)
// still has a live registry to fold into.
struct Registry {
  std::mutex mu;
  FramePoolStats retired;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct Pool {
  std::vector<void*> free_lists[kNumClasses];
  FramePoolStats stats;

  ~Pool() {
    for (auto& list : free_lists)
      for (void* p : list) std::free(p);
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.retired += stats;
  }
};

Pool& pool() {
  thread_local Pool p;
  return p;
}

}  // namespace

const FramePoolStats& frame_pool_stats() noexcept { return pool().stats; }

FramePoolStats frame_pool_aggregate_stats() {
  Registry& r = registry();
  FramePoolStats agg;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    agg = r.retired;
  }
  agg += pool().stats;
  return agg;
}

namespace detail {

void* frame_alloc(std::size_t n) {
  Pool& p = pool();
  ++p.stats.allocs;
  const std::size_t klass = (n + kHeader + kClassSize - 1) >> kClassShift;
  if (klass < kNumClasses && !p.free_lists[klass].empty()) {
    ++p.stats.reuses;
    void* raw = p.free_lists[klass].back();
    p.free_lists[klass].pop_back();
    return static_cast<char*>(raw) + kHeader;
  }
  ++p.stats.fresh;
  const std::size_t bytes =
      klass < kNumClasses ? klass << kClassShift : n + kHeader;
  void* raw = std::malloc(bytes);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = klass;
  return static_cast<char*>(raw) + kHeader;
}

void frame_free(void* p) noexcept {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  const std::size_t klass = *static_cast<std::size_t*>(raw);
  Pool& pl = pool();
  if (klass < kNumClasses && pl.free_lists[klass].size() < kMaxPerClass) {
    pl.free_lists[klass].push_back(raw);
    return;
  }
  std::free(raw);
}

}  // namespace detail

}  // namespace bio::sim
