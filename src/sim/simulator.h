// Single-threaded discrete-event simulator driving sim::Task coroutines.
//
// Simulated threads are spawned with Simulator::spawn(); they advance
// simulated time by awaiting Simulator::delay() (modelling computation or
// device busy time) and block on synchronization primitives (sim/sync.h)
// which model sleeping. A thread that blocks and is later woken incurs a
// *context switch*: the wake is delayed by Params::wake_latency and the
// thread's ThreadCtx::context_switches counter is incremented. This mirrors
// how the paper counts "application level context switches" (Fig 11).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/check.h"
#include "sim/task.h"
#include "sim/time.h"

namespace bio::sim {

/// Bookkeeping for one simulated thread (one top-level Task).
struct ThreadCtx {
  std::string name;
  /// Spawn ordinal, unique within one Simulator (0, 1, 2, ... in spawn
  /// order). Deterministic for a given workload, so per-context consumers
  /// (the multi-queue block layer's software-queue routing) can key on it.
  std::uint64_t id = 0;
  /// Number of times this thread blocked on a primitive and was woken.
  std::uint64_t context_switches = 0;
  /// Number of times this thread entered a blocked state.
  std::uint64_t blocks = 0;
  bool finished = false;
  /// Overrides Params::wake_latency for this thread. Hardware actors
  /// (storage controller state machines) set this to 0: they are not
  /// scheduled by the host OS.
  std::optional<SimTime> wake_latency;

  struct JoinWaiter {
    std::coroutine_handle<> handle;
    ThreadCtx* waiter_thread;
  };
  std::vector<JoinWaiter> join_waiters;
};

class Simulator {
 public:
  struct Params {
    /// Scheduler latency charged whenever a blocked thread is woken.
    SimTime wake_latency = 0;
  };

  Simulator() : Simulator(Params{}) {}
  explicit Simulator(Params params) : params_(params) {}
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  const Params& params() const noexcept { return params_; }

  /// Starts `task` as a new simulated thread named `name`. The thread's
  /// first instruction runs at the current simulated time (after already
  /// pending events at that time).
  ThreadCtx& spawn(std::string name, Task task);

  /// Runs until the event queue drains or stop() is called. Rethrows the
  /// first exception that escaped any simulated thread.
  void run();

  /// Processes all events with timestamp <= `t`, then sets now() = t.
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  bool has_pending_events() const noexcept { return !queue_.empty(); }

  // ---- awaitables -------------------------------------------------------

  struct DelayAwaiter {
    Simulator& sim;
    SimTime duration;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule_resume(sim.now_ + duration, h, sim.current_, false);
    }
    void await_resume() const noexcept {}
  };

  /// Advances this simulated thread's clock by `d` (models CPU work or a
  /// synchronous device wait that does NOT count as a context switch).
  DelayAwaiter delay(SimTime d) noexcept { return DelayAwaiter{*this, d}; }

  /// Lets other runnable activities at the same timestamp proceed.
  DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 0}; }

  struct JoinAwaiter {
    Simulator& sim;
    ThreadCtx& target;
    bool await_ready() const noexcept { return target.finished; }
    void await_suspend(std::coroutine_handle<> h) const {
      ThreadCtx* cur = sim.current_;
      if (cur != nullptr) ++cur->blocks;
      target.join_waiters.push_back({h, cur});
    }
    void await_resume() const noexcept {}
  };

  /// Blocks the calling simulated thread until `target` finishes.
  JoinAwaiter join(ThreadCtx& target) noexcept {
    return JoinAwaiter{*this, target};
  }

  // ---- scheduling internals (used by sim/sync.h primitives) -------------

  /// Schedules `h` to resume at absolute time `at` on thread `thr`.
  /// `is_wakeup` marks the resume as the end of a blocking wait.
  void schedule_resume(SimTime at, std::coroutine_handle<> h, ThreadCtx* thr,
                       bool is_wakeup);

  /// Schedules `h` to resume after the woken thread's wake latency and
  /// counts a context switch for it.
  void schedule_wakeup(std::coroutine_handle<> h, ThreadCtx* thr) {
    const SimTime latency = thr != nullptr && thr->wake_latency.has_value()
                                ? *thr->wake_latency
                                : params_.wake_latency;
    schedule_resume(now_ + latency, h, thr, true);
  }

  /// Schedules a plain callback (no coroutine) at absolute time `at`.
  void schedule_call(SimTime at, std::function<void()> fn);

  /// The simulated thread currently executing, or nullptr outside run().
  ThreadCtx* current_thread() const noexcept { return current_; }

  /// Called from Task::FinalAwaiter when a top-level task finishes.
  void on_top_level_done(ThreadCtx* thr, std::exception_ptr error);

  /// Total context switches across all threads whose name starts with
  /// `prefix` (empty prefix = all threads).
  std::uint64_t total_context_switches(std::string_view prefix = {}) const;

  /// Number of live + finished threads whose name starts with `prefix`.
  std::uint64_t thread_count(std::string_view prefix = {}) const;

  /// Total events the loop has dispatched (resumes + callbacks) — the
  /// denominator for events/sec in the perf suite.
  std::uint64_t events_dispatched() const noexcept {
    return events_dispatched_;
  }

 private:
  /// Compact POD heap entry (32 bytes). Plain coroutine resumes — the vast
  /// majority of events — carry no callable; the rare schedule_call()
  /// callbacks live in a side table and the entry stores their slot.
  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    /// Coroutine frame address; nullptr marks a callback entry.
    void* frame;
    /// Resumes: ThreadCtx* with the wakeup flag in bit 0 (ThreadCtx is
    /// heap-allocated, so bit 0 of its address is free). Callbacks: the
    /// callback-slot index.
    std::uintptr_t aux;
  };
  static constexpr std::uintptr_t kWakeupBit = 1;

  /// Min-heap on (at, seq) over a flat vector of POD entries. Hand-rolled so
  /// pop moves 32-byte PODs into a hole instead of running a comparator
  /// functor through std::priority_queue's generic machinery.
  class EventHeap {
   public:
    bool empty() const noexcept { return v_.empty(); }
    std::size_t size() const noexcept { return v_.size(); }
    const Scheduled& top() const noexcept { return v_.front(); }
    void clear() noexcept { v_.clear(); }

    void push(const Scheduled& ev) {
      v_.push_back(ev);
      std::size_t i = v_.size() - 1;
      while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(v_[i], v_[parent])) break;
        std::swap(v_[i], v_[parent]);
        i = parent;
      }
    }

    Scheduled pop() {
      Scheduled out = v_.front();
      Scheduled last = v_.back();
      v_.pop_back();
      if (!v_.empty()) {
        // Sift the hole down, then drop `last` in.
        std::size_t i = 0;
        const std::size_t n = v_.size();
        for (;;) {
          std::size_t child = 2 * i + 1;
          if (child >= n) break;
          if (child + 1 < n && before(v_[child + 1], v_[child])) ++child;
          if (!before(v_[child], last)) break;
          v_[i] = v_[child];
          i = child;
        }
        v_[i] = last;
      }
      return out;
    }

   private:
    static bool before(const Scheduled& a, const Scheduled& b) noexcept {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
    std::vector<Scheduled> v_;
  };

  void dispatch(const Scheduled& ev);

  Params params_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_dispatched_ = 0;
  bool stopped_ = false;
  EventHeap queue_;
  /// Slot table for schedule_call() callables (freelist-recycled).
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::uint32_t> free_callback_slots_;
  ThreadCtx* current_ = nullptr;
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  /// Frames of still-live top-level tasks, destroyed on simulator teardown.
  std::unordered_map<ThreadCtx*, std::coroutine_handle<>> live_;
  std::exception_ptr failure_;
};

}  // namespace bio::sim
