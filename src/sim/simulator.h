// Single-threaded discrete-event simulator driving sim::Task coroutines.
//
// Simulated threads are spawned with Simulator::spawn(); they advance
// simulated time by awaiting Simulator::delay() (modelling computation or
// device busy time) and block on synchronization primitives (sim/sync.h)
// which model sleeping. A thread that blocks and is later woken incurs a
// *context switch*: the wake is delayed by Params::wake_latency and the
// thread's ThreadCtx::context_switches counter is incremented. This mirrors
// how the paper counts "application level context switches" (Fig 11).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/check.h"
#include "sim/task.h"
#include "sim/time.h"

namespace bio::sim {

/// Bookkeeping for one simulated thread (one top-level Task).
struct ThreadCtx {
  std::string name;
  /// Number of times this thread blocked on a primitive and was woken.
  std::uint64_t context_switches = 0;
  /// Number of times this thread entered a blocked state.
  std::uint64_t blocks = 0;
  bool finished = false;
  /// Overrides Params::wake_latency for this thread. Hardware actors
  /// (storage controller state machines) set this to 0: they are not
  /// scheduled by the host OS.
  std::optional<SimTime> wake_latency;

  struct JoinWaiter {
    std::coroutine_handle<> handle;
    ThreadCtx* waiter_thread;
  };
  std::vector<JoinWaiter> join_waiters;
};

class Simulator {
 public:
  struct Params {
    /// Scheduler latency charged whenever a blocked thread is woken.
    SimTime wake_latency = 0;
  };

  Simulator() : Simulator(Params{}) {}
  explicit Simulator(Params params) : params_(params) {}
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  const Params& params() const noexcept { return params_; }

  /// Starts `task` as a new simulated thread named `name`. The thread's
  /// first instruction runs at the current simulated time (after already
  /// pending events at that time).
  ThreadCtx& spawn(std::string name, Task task);

  /// Runs until the event queue drains or stop() is called. Rethrows the
  /// first exception that escaped any simulated thread.
  void run();

  /// Processes all events with timestamp <= `t`, then sets now() = t.
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  bool has_pending_events() const noexcept { return !queue_.empty(); }

  // ---- awaitables -------------------------------------------------------

  struct DelayAwaiter {
    Simulator& sim;
    SimTime duration;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim.schedule_resume(sim.now_ + duration, h, sim.current_, false);
    }
    void await_resume() const noexcept {}
  };

  /// Advances this simulated thread's clock by `d` (models CPU work or a
  /// synchronous device wait that does NOT count as a context switch).
  DelayAwaiter delay(SimTime d) noexcept { return DelayAwaiter{*this, d}; }

  /// Lets other runnable activities at the same timestamp proceed.
  DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 0}; }

  struct JoinAwaiter {
    Simulator& sim;
    ThreadCtx& target;
    bool await_ready() const noexcept { return target.finished; }
    void await_suspend(std::coroutine_handle<> h) const {
      ThreadCtx* cur = sim.current_;
      if (cur != nullptr) ++cur->blocks;
      target.join_waiters.push_back({h, cur});
    }
    void await_resume() const noexcept {}
  };

  /// Blocks the calling simulated thread until `target` finishes.
  JoinAwaiter join(ThreadCtx& target) noexcept {
    return JoinAwaiter{*this, target};
  }

  // ---- scheduling internals (used by sim/sync.h primitives) -------------

  /// Schedules `h` to resume at absolute time `at` on thread `thr`.
  /// `is_wakeup` marks the resume as the end of a blocking wait.
  void schedule_resume(SimTime at, std::coroutine_handle<> h, ThreadCtx* thr,
                       bool is_wakeup);

  /// Schedules `h` to resume after the woken thread's wake latency and
  /// counts a context switch for it.
  void schedule_wakeup(std::coroutine_handle<> h, ThreadCtx* thr) {
    const SimTime latency = thr != nullptr && thr->wake_latency.has_value()
                                ? *thr->wake_latency
                                : params_.wake_latency;
    schedule_resume(now_ + latency, h, thr, true);
  }

  /// Schedules a plain callback (no coroutine) at absolute time `at`.
  void schedule_call(SimTime at, std::function<void()> fn);

  /// The simulated thread currently executing, or nullptr outside run().
  ThreadCtx* current_thread() const noexcept { return current_; }

  /// Called from Task::FinalAwaiter when a top-level task finishes.
  void on_top_level_done(ThreadCtx* thr, std::exception_ptr error);

  /// Total context switches across all threads whose name starts with
  /// `prefix` (empty prefix = all threads).
  std::uint64_t total_context_switches(std::string_view prefix = {}) const;

  /// Number of live + finished threads whose name starts with `prefix`.
  std::uint64_t thread_count(std::string_view prefix = {}) const;

 private:
  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    ThreadCtx* thread = nullptr;
    bool is_wakeup = false;
    std::function<void()> callback;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dispatch(Scheduled&& ev);

  Params params_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  ThreadCtx* current_ = nullptr;
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  /// Frames of still-live top-level tasks, destroyed on simulator teardown.
  std::unordered_map<ThreadCtx*, std::coroutine_handle<>> live_;
  std::exception_ptr failure_;
};

}  // namespace bio::sim
