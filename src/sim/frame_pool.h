// Size-bucketed recycler for coroutine frames.
//
// Every simulated syscall awaits a chain of child Tasks, and each co_await
// allocates a coroutine frame — by far the dominant heap traffic on the
// simulated hot path. Task/TaskOf route their promise operator new/delete
// here: freed frames park in per-size-class freelists (64-byte classes) and
// are handed back on the next allocation of the same class.
//
// The pool — freelists AND stats — is thread_local: each host thread
// (sim::HostPool sweep workers included) recycles its own frames with no
// shared counters on the hot path, matching the one-simulator-per-thread
// execution model. Reporting across threads goes through the aggregate
// snapshot below: a worker folds its stats into a process-wide retired
// aggregate when it exits, so after a pool has joined its workers the
// calling thread sees the whole run's totals.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bio::sim {

struct FramePoolStats {
  /// Total frame allocations requested.
  std::uint64_t allocs = 0;
  /// Served from a freelist (no heap round-trip).
  std::uint64_t reuses = 0;
  /// Fell through to the heap (cold class or oversize frame).
  std::uint64_t fresh = 0;

  FramePoolStats& operator+=(const FramePoolStats& o) noexcept {
    allocs += o.allocs;
    reuses += o.reuses;
    fresh += o.fresh;
    return *this;
  }
};

/// Stats for the calling thread's pool only.
const FramePoolStats& frame_pool_stats() noexcept;

/// Aggregate snapshot: the calling thread's pool plus every pool whose
/// thread has already exited. Live *foreign* threads are deliberately
/// excluded — their counters are hot-path thread_local state and reading
/// them here would race; a joining executor (sim::HostPool) retires its
/// workers before reporting, so after the join this is the exact total.
FramePoolStats frame_pool_aggregate_stats();

namespace detail {
void* frame_alloc(std::size_t n);
void frame_free(void* p) noexcept;
}  // namespace detail

}  // namespace bio::sim
