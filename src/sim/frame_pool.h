// Size-bucketed recycler for coroutine frames.
//
// Every simulated syscall awaits a chain of child Tasks, and each co_await
// allocates a coroutine frame — by far the dominant heap traffic on the
// simulated hot path. Task/TaskOf route their promise operator new/delete
// here: freed frames park in per-size-class freelists (64-byte classes) and
// are handed back on the next allocation of the same class. The pool is
// thread-local, matching the simulator's single-threaded execution model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bio::sim {

struct FramePoolStats {
  /// Total frame allocations requested.
  std::uint64_t allocs = 0;
  /// Served from a freelist (no heap round-trip).
  std::uint64_t reuses = 0;
  /// Fell through to the heap (cold class or oversize frame).
  std::uint64_t fresh = 0;
};

/// Stats for the calling thread's pool.
const FramePoolStats& frame_pool_stats() noexcept;

namespace detail {
void* frame_alloc(std::size_t n);
void frame_free(void* p) noexcept;
}  // namespace detail

}  // namespace bio::sim
