// Deterministic random number generation for workloads and device models.
//
// Every stochastic component takes an explicit Rng (seeded by the
// experiment harness), so a whole simulation is reproducible from one seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/check.h"

namespace bio::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    BIO_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    BIO_CHECK(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Log-normal parameterised by its median and sigma of the underlying
  /// normal; handy for long-tailed device latencies.
  double lognormal(double median, double sigma) {
    BIO_CHECK(median > 0.0);
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma)(engine_);
  }

  /// Normal truncated below at `min`.
  double normal_min(double mean, double stddev, double min) {
    double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < min ? min : v;
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights) {
    BIO_CHECK(!weights.empty());
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Derives an independent child generator (for per-thread streams).
  Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bio::sim
