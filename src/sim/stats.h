// Measurement helpers: latency distributions and time-series sampling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/check.h"
#include "sim/time.h"

namespace bio::sim {

/// Accumulates latency samples (ns) and reports distribution statistics.
/// Percentile computation sorts lazily and caches until the next add().
class LatencyRecorder {
 public:
  void add(SimTime sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (SimTime s : samples_) total += static_cast<double>(s);
    return total / static_cast<double>(samples_.size());
  }

  /// p in [0, 100]; nearest-rank percentile.
  SimTime percentile(double p) const {
    BIO_CHECK(p >= 0.0 && p <= 100.0);
    if (samples_.empty()) return 0;
    ensure_sorted();
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(p / 100.0 * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    return samples_[rank];
  }

  SimTime median() const { return percentile(50.0); }
  SimTime min() const { return percentile(0.0); }
  SimTime max() const { return percentile(100.0); }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

  const std::vector<SimTime>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<SimTime> samples_;
  mutable bool sorted_ = false;
};

/// Records (time, value) pairs, e.g. command-queue depth over time
/// (Figs 10 and 12 of the paper).
class TimeSeries {
 public:
  struct Point {
    SimTime at;
    double value;
  };

  void record(SimTime at, double value) { points_.push_back({at, value}); }

  const std::vector<Point>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }

  double mean_value() const {
    if (points_.empty()) return 0.0;
    double total = 0.0;
    for (const Point& p : points_) total += p.value;
    return total / static_cast<double>(points_.size());
  }

  /// Time-weighted average assuming the value holds until the next point.
  /// `end` closes the last interval.
  double time_weighted_mean(SimTime end) const {
    if (points_.empty()) return 0.0;
    double area = 0.0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const SimTime next = i + 1 < points_.size() ? points_[i + 1].at : end;
      if (next > points_[i].at)
        area += points_[i].value * static_cast<double>(next - points_[i].at);
    }
    const SimTime span = end > points_.front().at ? end - points_.front().at : 0;
    return span == 0 ? points_.back().value : area / static_cast<double>(span);
  }

  double max_value() const {
    double m = 0.0;
    for (const Point& p : points_) m = std::max(m, p.value);
    return m;
  }

  void clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

}  // namespace bio::sim
