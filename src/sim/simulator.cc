#include "sim/simulator.h"

#include <string_view>

namespace bio::sim {

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(
    Task::Handle h) noexcept {
  auto& p = h.promise();
  if (p.continuation) return p.continuation;
  // Top-level (detached) task: self-destroy and notify the simulator.
  Simulator* sim = p.sim;
  ThreadCtx* thr = p.thread;
  std::exception_ptr error = p.error;
  h.destroy();
  if (sim != nullptr) sim->on_top_level_done(thr, error);
  return std::noop_coroutine();
}

std::coroutine_handle<> Task::Awaiter::await_suspend(
    std::coroutine_handle<> parent) {
  BIO_CHECK_MSG(!child.promise().detached,
                "cannot co_await a task that was spawned");
  child.promise().continuation = parent;
  return child;  // symmetric transfer: start the child immediately
}

Simulator::~Simulator() {
  // Drop pending events first so nothing resumes into destroyed frames,
  // then destroy the frames of still-suspended top-level tasks (this
  // cascades into any nested child tasks they own).
  while (!queue_.empty()) queue_.pop();
  for (auto& [thr, handle] : live_) handle.destroy();
}

ThreadCtx& Simulator::spawn(std::string name, Task task) {
  BIO_CHECK_MSG(task.valid(), "spawn of an empty task");
  auto ctx = std::make_unique<ThreadCtx>();
  ctx->name = std::move(name);
  ThreadCtx& ref = *ctx;
  threads_.push_back(std::move(ctx));

  Task::Handle h = task.release();
  h.promise().sim = this;
  h.promise().detached = true;
  h.promise().thread = &ref;
  live_.emplace(&ref, h);
  schedule_resume(now_, h, &ref, false);
  return ref;
}

void Simulator::schedule_resume(SimTime at, std::coroutine_handle<> h,
                                ThreadCtx* thr, bool is_wakeup) {
  BIO_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(Scheduled{at, next_seq_++, h, thr, is_wakeup, nullptr});
}

void Simulator::schedule_call(SimTime at, std::function<void()> fn) {
  BIO_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(Scheduled{at, next_seq_++, nullptr, nullptr, false,
                        std::move(fn)});
}

void Simulator::dispatch(Scheduled&& ev) {
  now_ = ev.at;
  if (ev.callback) {
    current_ = nullptr;
    ev.callback();
    return;
  }
  if (ev.is_wakeup && ev.thread != nullptr) ++ev.thread->context_switches;
  current_ = ev.thread;
  ev.handle.resume();
  current_ = nullptr;
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Scheduled ev = queue_.top();
    queue_.pop();
    dispatch(std::move(ev));
  }
  if (failure_) {
    std::exception_ptr e = std::exchange(failure_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= t) {
    Scheduled ev = queue_.top();
    queue_.pop();
    dispatch(std::move(ev));
  }
  if (now_ < t) now_ = t;
  if (failure_) {
    std::exception_ptr e = std::exchange(failure_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::on_top_level_done(ThreadCtx* thr, std::exception_ptr error) {
  if (error) {
    if (!failure_) failure_ = error;
    stopped_ = true;
  }
  if (thr == nullptr) return;
  live_.erase(thr);
  thr->finished = true;
  for (const auto& w : thr->join_waiters)
    schedule_wakeup(w.handle, w.waiter_thread);
  thr->join_waiters.clear();
}

std::uint64_t Simulator::total_context_switches(
    std::string_view prefix) const {
  std::uint64_t total = 0;
  for (const auto& t : threads_)
    if (std::string_view(t->name).starts_with(prefix))
      total += t->context_switches;
  return total;
}

std::uint64_t Simulator::thread_count(std::string_view prefix) const {
  std::uint64_t n = 0;
  for (const auto& t : threads_)
    if (std::string_view(t->name).starts_with(prefix)) ++n;
  return n;
}

}  // namespace bio::sim
