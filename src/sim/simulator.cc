#include "sim/simulator.h"

#include <string_view>

namespace bio::sim {

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(
    Task::Handle h) noexcept {
  auto& p = h.promise();
  if (p.continuation) return p.continuation;
  // Top-level (detached) task: self-destroy and notify the simulator.
  Simulator* sim = p.sim;
  ThreadCtx* thr = p.thread;
  std::exception_ptr error = p.error;
  h.destroy();
  if (sim != nullptr) sim->on_top_level_done(thr, error);
  return std::noop_coroutine();
}

std::coroutine_handle<> Task::Awaiter::await_suspend(
    std::coroutine_handle<> parent) {
  BIO_CHECK_MSG(!child.promise().detached,
                "cannot co_await a task that was spawned");
  child.promise().continuation = parent;
  return child;  // symmetric transfer: start the child immediately
}

Simulator::~Simulator() {
  // Drop pending events first so nothing resumes into destroyed frames,
  // then destroy the frames of still-suspended top-level tasks (this
  // cascades into any nested child tasks they own).
  queue_.clear();
  callbacks_.clear();
  for (auto& [thr, handle] : live_) handle.destroy();
}

ThreadCtx& Simulator::spawn(std::string name, Task task) {
  BIO_CHECK_MSG(task.valid(), "spawn of an empty task");
  auto ctx = std::make_unique<ThreadCtx>();
  ctx->name = std::move(name);
  ctx->id = threads_.size();
  ThreadCtx& ref = *ctx;
  threads_.push_back(std::move(ctx));

  Task::Handle h = task.release();
  h.promise().sim = this;
  h.promise().detached = true;
  h.promise().thread = &ref;
  live_.emplace(&ref, h);
  schedule_resume(now_, h, &ref, false);
  return ref;
}

void Simulator::schedule_resume(SimTime at, std::coroutine_handle<> h,
                                ThreadCtx* thr, bool is_wakeup) {
  BIO_CHECK_MSG(at >= now_, "scheduling into the past");
  const std::uintptr_t aux = reinterpret_cast<std::uintptr_t>(thr) |
                             (is_wakeup ? kWakeupBit : 0);
  queue_.push(Scheduled{at, next_seq_++, h.address(), aux});
}

void Simulator::schedule_call(SimTime at, std::function<void()> fn) {
  BIO_CHECK_MSG(at >= now_, "scheduling into the past");
  std::uint32_t slot;
  if (!free_callback_slots_.empty()) {
    slot = free_callback_slots_.back();
    free_callback_slots_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(fn));
  }
  queue_.push(Scheduled{at, next_seq_++, nullptr, slot});
}

void Simulator::dispatch(const Scheduled& ev) {
  now_ = ev.at;
  ++events_dispatched_;
  if (ev.frame == nullptr) {
    const std::uint32_t slot = static_cast<std::uint32_t>(ev.aux);
    std::function<void()> fn = std::move(callbacks_[slot]);
    callbacks_[slot] = nullptr;
    free_callback_slots_.push_back(slot);
    current_ = nullptr;
    fn();
    return;
  }
  ThreadCtx* thr = reinterpret_cast<ThreadCtx*>(ev.aux & ~kWakeupBit);
  if ((ev.aux & kWakeupBit) != 0 && thr != nullptr) ++thr->context_switches;
  current_ = thr;
  std::coroutine_handle<>::from_address(ev.frame).resume();
  current_ = nullptr;
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Scheduled ev = queue_.pop();
    dispatch(ev);
  }
  if (failure_) {
    std::exception_ptr e = std::exchange(failure_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::run_until(SimTime t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= t) {
    const Scheduled ev = queue_.pop();
    dispatch(ev);
  }
  if (now_ < t) now_ = t;
  if (failure_) {
    std::exception_ptr e = std::exchange(failure_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::on_top_level_done(ThreadCtx* thr, std::exception_ptr error) {
  if (error) {
    if (!failure_) failure_ = error;
    stopped_ = true;
  }
  if (thr == nullptr) return;
  live_.erase(thr);
  thr->finished = true;
  for (const auto& w : thr->join_waiters)
    schedule_wakeup(w.handle, w.waiter_thread);
  thr->join_waiters.clear();
}

std::uint64_t Simulator::total_context_switches(
    std::string_view prefix) const {
  std::uint64_t total = 0;
  for (const auto& t : threads_)
    if (std::string_view(t->name).starts_with(prefix))
      total += t->context_switches;
  return total;
}

std::uint64_t Simulator::thread_count(std::string_view prefix) const {
  std::uint64_t n = 0;
  for (const auto& t : threads_)
    if (std::string_view(t->name).starts_with(prefix)) ++n;
  return n;
}

}  // namespace bio::sim
