// Lightweight invariant checking for the simulator and the IO stack models.
//
// The Core Guidelines (I.6/E.12) favour stating preconditions explicitly.
// BIO_CHECK is active in all build types: a violated invariant in a
// simulation silently produces wrong "measurements", which is worse than a
// crash, so the checks stay on in release builds too.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bio {

/// Thrown when a simulation invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "BIO_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace bio

#define BIO_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::bio::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define BIO_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::bio::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
