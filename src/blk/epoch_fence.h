// Cross-queue epoch fence for the multi-queue block layer.
//
// With N software queues, epoch-based barrier reassignment runs *per queue*
// (each queue has its own EpochScheduler sequencer); this object is the only
// cross-queue coupling: a single monotonically increasing epoch counter plus
// a progress signal. No global lock is taken on the data path and queues
// never block each other's non-barrier traffic.
//
// Protocol (lazy fence-token join):
//
//   1. Every request — ordered or not, reads included — is stamped at
//      enqueue with the current epoch; a barrier takes the epoch it *closes*
//      and advances the counter (close_epoch). The stamp is the fence token:
//      it rides the request into the device as Command::fence_epoch. Blanket
//      stamping keeps epoch order and enqueue order in agreement, so the
//      device's SIMPLE-behind-ORDERED fencing survives multi-queue dispatch
//      and merges can fold ordered payload into an orderless write without
//      the carrier losing its place in the fence.
//   2. Queues join the fence lazily — they keep dispatching without ever
//      consulting each other. The device's transfer fencing compares
//      (fence_epoch, seq) lexicographically, so commands that were submitted
//      out of epoch order across ports still *transfer* (become
//      crash-durable) in epoch order.
//   3. The device cannot fence work it has not seen, so a barrier's
//      dispatcher gates its *submission* until every peer queue has drained
//      (submitted) its writes stamped <= the barrier's epoch
//      (EpochScheduler::min_pending_fence_epoch; orderless writes gate too —
//      a merge can fold ordered payload into one). An idle queue has nothing
//      pending and never stalls the gate; peers keep draining freely while
//      the gate waits, so the wait always terminates.
//
// A fenced sequencer never reassigns the barrier flag: the barrier is held
// aside and dispatched, with its own stamp, after everything enqueued before
// it has been submitted (see blk/epoch_scheduler.h). A carrier with an older
// stamp than the epoch it closes would have to transfer both before any peer
// barrier between the two epochs and after that barrier's payload — no
// single command can.
//
// Deadlock freedom: the gate's wait graph follows epoch order. A barrier
// with epoch e only waits for writes stamped <= e; every other barrier's
// stamp is distinct (close_epoch is atomic with enqueue), so two gating
// barriers order themselves by epoch and the lower one never waits on the
// higher. Because a barrier leaves its queue only after the queue drained
// everything enqueued before it, a gating barrier's own queue has no pending
// stamps below its epoch — peers gating at lower epochs never wait on it.
// Requests never wait at all — only barrier dispatchers gate.
//
// Single-queue stacks create no fence: stamps stay 0 and the device's
// (fence_epoch, seq) comparison degenerates to the classic seq order,
// bit-identically.
#pragma once

#include <cstdint>

#include "sim/sync.h"

namespace bio::blk {

class EpochFence {
 public:
  explicit EpochFence(sim::Simulator& sim) : progress_(sim) {}

  /// Epoch currently open: the stamp for order-preserving (non-barrier)
  /// requests.
  std::uint64_t current() const noexcept { return epoch_; }

  /// A barrier request takes the epoch it closes and opens the next one.
  /// Called at enqueue time, atomically with the stamp (the sim is
  /// single-threaded and enqueue never suspends), so barrier stamps are
  /// strictly ordered and later enqueues always land in a later epoch.
  std::uint64_t close_epoch() noexcept { return epoch_++; }

  /// Notified whenever a queue drains a stamped request into the device;
  /// gating barrier dispatchers wait on it.
  sim::Notify& progress() noexcept { return progress_; }

  /// Epochs closed so far (== number of barrier stamps handed out).
  std::uint64_t epochs_closed() const noexcept { return epoch_; }

 private:
  sim::Notify progress_;
  std::uint64_t epoch_ = 0;
};

}  // namespace bio::blk
