// Epoch-based IO scheduling with barrier reassignment (§3.3, Fig 5).
//
// Requests between two barriers form an *epoch*. The wrapper:
//   1. strips the barrier flag from an incoming barrier write and stops
//      accepting new requests (they stage outside the queue),
//   2. lets the wrapped scheduler freely reorder/merge what is inside
//      (all of it belongs to one epoch, plus orderless requests),
//   3. re-attaches the barrier flag to the *last order-preserving request
//      that leaves the queue* (epoch-based barrier reassignment), then
//      unblocks and feeds the staged requests in.
//
// Orderless requests staged while blocked simply join the next epoch.
//
// Under the multi-queue block layer each software queue owns one of these
// sequencers and an EpochFence couples them. The sequencer's part of the
// fence protocol is bookkeeping, never blocking:
//   * it stamps order-preserving requests with their fence epoch at enqueue
//     (barriers take the epoch they close and advance the counter),
//   * it tracks which stamps are still *pending* — enqueued (staged, queued,
//     or merged into a queued carrier) or popped but not yet accepted by the
//     device. A barrier on a peer queue gates its own submission on
//     min_pending_fence_epoch() of every other queue; the block layer calls
//     note_submitted() when a request reaches the device.
//   * barrier reassignment hands the *closing epoch* to the carrier along
//     with the flag — the carrier fences as the barrier it now is.
// With no fence attached (single-queue stacks) none of this runs and
// behavior is exactly the classic sequencer.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "blk/epoch_fence.h"
#include "blk/io_scheduler.h"

namespace bio::blk {

class EpochScheduler : public IoScheduler {
 public:
  explicit EpochScheduler(std::unique_ptr<IoScheduler> base)
      : base_(std::move(base)) {
    BIO_CHECK(base_ != nullptr);
  }

  /// Attaches the cross-queue fence (multi-queue stacks only; may be null).
  void set_fence(EpochFence* fence) noexcept { fence_ = fence; }

  void enqueue(RequestPtr r) override {
    ++stats_.enqueued;
    if (fence_ != nullptr && r->ordered) {
      r->fence_epoch =
          r->barrier ? fence_->close_epoch() : fence_->current();
      ++pending_[r->fence_epoch];
    }
    if (blocked_) {
      staged_.push_back(std::move(r));
      return;
    }
    accept(std::move(r));
  }

  RequestPtr dequeue() override {
    RequestPtr r = base_->dequeue();
    if (r == nullptr) return nullptr;
    ++stats_.dispatched;
    if (fence_ != nullptr) retire_absorbed(*r);
    if (blocked_ && r->ordered && !base_->has_ordered()) {
      // This is the last order-preserving request of the closing epoch:
      // it becomes the new barrier (Fig 5, w1 in the paper's example).
      if (fence_ != nullptr && r->fence_epoch != closing_epoch_) {
        // The flag carries the *stripped barrier's* epoch with it: the
        // carrier was enqueued earlier (lower stamp) but now closes the
        // epoch, so it must fence — and be gated on by peers — as that
        // epoch's barrier.
        retire_stamp(r->fence_epoch);
        ++pending_[closing_epoch_];
        r->fence_epoch = closing_epoch_;
      }
      r->barrier = true;
      ++reassignments_;
      blocked_ = false;
      feed();
    }
    return r;
  }

  /// The block layer accepted this request into the device: its stamp stops
  /// gating peer barriers. (Absorbed requests retire with their carrier at
  /// dequeue — their stamps are always >= the carrier's, so retiring them
  /// before the carrier submits never unblocks a gate early.)
  void note_submitted(const Request& r) {
    if (fence_ != nullptr && r.ordered) retire_stamp(r.fence_epoch);
  }

  /// Smallest fence epoch still pending in this queue (~0 when none): the
  /// quantity a peer barrier's submission gate compares its epoch against.
  std::uint64_t min_pending_fence_epoch() const noexcept {
    return pending_.empty() ? ~std::uint64_t{0} : pending_.begin()->first;
  }

  std::size_t size() const override { return base_->size() + staged_.size(); }
  bool has_ordered() const override { return base_->has_ordered(); }
  const char* name() const override { return "epoch"; }

  bool blocked() const noexcept { return blocked_; }
  std::size_t staged_count() const noexcept { return staged_.size(); }
  std::uint64_t barrier_reassignments() const noexcept {
    return reassignments_;
  }
  const IoScheduler& base() const noexcept { return *base_; }

 private:
  void accept(RequestPtr r) {
    if (r->barrier) {
      // Strip the flag; the epoch closes once this queue drains its
      // order-preserving requests (the flag is re-attached at dequeue).
      closing_epoch_ = r->fence_epoch;
      r->barrier = false;
      blocked_ = true;
    }
    base_->enqueue(std::move(r));
  }

  void retire_stamp(std::uint64_t epoch) {
    auto it = pending_.find(epoch);
    BIO_CHECK_MSG(it != pending_.end(), "retiring an untracked fence epoch");
    if (--it->second == 0) pending_.erase(it);
  }

  /// Requests merged into `r` leave the queue with it; retire their stamps.
  /// Merging only absorbs later-enqueued (hence >=-stamped) requests, and
  /// absorption chains can nest one level per merge.
  void retire_absorbed(const Request& r) {
    for (const RequestPtr& a : r.absorbed) {
      if (a->ordered) retire_stamp(a->fence_epoch);
      retire_absorbed(*a);
    }
  }

  /// Moves staged requests into the base scheduler, preserving their
  /// relative order, until a staged barrier re-blocks the queue.
  void feed() {
    while (!staged_.empty() && !blocked_) {
      RequestPtr s = std::move(staged_.front());
      staged_.pop_front();
      accept(std::move(s));
    }
  }

  std::unique_ptr<IoScheduler> base_;
  EpochFence* fence_ = nullptr;
  bool blocked_ = false;
  std::uint64_t closing_epoch_ = 0;
  std::deque<RequestPtr> staged_;
  /// fence epoch -> number of this queue's pending requests stamped with it.
  std::map<std::uint64_t, std::uint32_t> pending_;
  std::uint64_t reassignments_ = 0;
};

}  // namespace bio::blk
