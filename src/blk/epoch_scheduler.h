// Epoch-based IO scheduling with barrier reassignment (§3.3, Fig 5).
//
// Requests between two barriers form an *epoch*. The wrapper:
//   1. strips the barrier flag from an incoming barrier write and stops
//      accepting new requests (they stage outside the queue),
//   2. lets the wrapped scheduler freely reorder/merge what is inside
//      (all of it belongs to one epoch, plus orderless requests),
//   3. re-attaches the barrier flag to the *last order-preserving request
//      that leaves the queue* (epoch-based barrier reassignment), then
//      unblocks and feeds the staged requests in.
//
// Orderless requests staged while blocked simply join the next epoch.
//
// Under the multi-queue block layer each software queue owns one of these
// sequencers and an EpochFence couples them. The sequencer's part of the
// fence protocol is bookkeeping, never blocking:
//   * it stamps EVERY request with its fence epoch at enqueue (barriers take
//     the epoch they close and advance the counter; everything else — ordered
//     or not, reads included — takes the open epoch), so the device's
//     (fence_epoch, seq) transfer fencing agrees with enqueue order and no
//     command carries a stale epoch-0 stamp,
//   * it tracks which *write* stamps are still pending — enqueued (staged,
//     queued, or merged into a queued carrier) or popped but not yet accepted
//     by the device. Orderless writes are tracked too: a merge can fold
//     ordered payload into one (§3.3), so any write may end up carrying
//     ordered data. A barrier on a peer queue gates its own submission on
//     min_pending_fence_epoch() of every other queue; the block layer calls
//     note_submitted() when a request reaches the device.
//   * barrier reassignment is NOT used under a fence. A reassigned carrier
//     with an older stamp than the epoch it closes would have to transfer
//     both before any peer barrier between the two epochs (it is old-epoch
//     data) and after that barrier's payload (it is the new epoch's
//     delimiter) — unsatisfiable. Instead the barrier is held aside and
//     dispatched, with its own stamp, once the queue has drained everything
//     enqueued before it; staging of later requests works exactly as in the
//     classic mode.
// With no fence attached (single-queue stacks) none of this runs and
// behavior is exactly the classic sequencer, reassignment included.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "blk/epoch_fence.h"
#include "blk/io_scheduler.h"

namespace bio::blk {

class EpochScheduler : public IoScheduler {
 public:
  explicit EpochScheduler(std::unique_ptr<IoScheduler> base)
      : base_(std::move(base)) {
    BIO_CHECK(base_ != nullptr);
  }

  /// Attaches the cross-queue fence (multi-queue stacks only; may be null).
  void set_fence(EpochFence* fence) noexcept { fence_ = fence; }

  void enqueue(RequestPtr r) override {
    ++stats_.enqueued;
    if (fence_ != nullptr) {
      r->fence_epoch =
          r->barrier ? fence_->close_epoch() : fence_->current();
      // Every write gates peer barriers until it reaches the device; reads
      // and flushes carry the stamp for device-side fencing but have no
      // crash-state footprint, so they never gate.
      if (r->is_write()) ++pending_[r->fence_epoch];
    }
    if (blocked_) {
      staged_.push_back(std::move(r));
      return;
    }
    accept(std::move(r));
  }

  RequestPtr dequeue() override {
    // Fenced mode: the held barrier leaves once everything enqueued before
    // it has left. Waiting for the base to fully drain (not just its
    // ordered requests) keeps the gate wait-graph acyclic: when a popped
    // barrier gates on its peers, its own queue has no pending stamps below
    // its epoch left behind it.
    if (held_barrier_ != nullptr && base_->size() == 0) {
      RequestPtr r = std::move(held_barrier_);
      held_barrier_ = nullptr;
      ++stats_.dispatched;
      blocked_ = false;
      feed();
      return r;
    }
    RequestPtr r = base_->dequeue();
    if (r == nullptr) return nullptr;
    ++stats_.dispatched;
    if (fence_ != nullptr) retire_absorbed(*r);
    if (blocked_ && held_barrier_ == nullptr && r->ordered &&
        !base_->has_ordered()) {
      // Classic (no-fence) path: this is the last order-preserving request
      // of the closing epoch — it becomes the new barrier (Fig 5, w1 in the
      // paper's example).
      r->barrier = true;
      ++reassignments_;
      blocked_ = false;
      feed();
    }
    return r;
  }

  /// The block layer accepted this request into the device: its stamp stops
  /// gating peer barriers. (Absorbed requests retire with their carrier at
  /// dequeue — merging never crosses fence epochs, so their stamps equal the
  /// carrier's, and the carrier's own stamp stays pending until here; early
  /// retirement can never unblock a gate.)
  void note_submitted(const Request& r) {
    if (fence_ != nullptr && r.is_write()) retire_stamp(r.fence_epoch);
  }

  /// Smallest fence epoch still pending in this queue (~0 when none): the
  /// quantity a peer barrier's submission gate compares its epoch against.
  std::uint64_t min_pending_fence_epoch() const noexcept {
    return pending_.empty() ? ~std::uint64_t{0} : pending_.begin()->first;
  }

  std::size_t size() const override {
    return base_->size() + staged_.size() + (held_barrier_ != nullptr ? 1 : 0);
  }
  bool has_ordered() const override {
    return base_->has_ordered() || held_barrier_ != nullptr;
  }
  const char* name() const override { return "epoch"; }

  bool blocked() const noexcept { return blocked_; }
  std::size_t staged_count() const noexcept { return staged_.size(); }
  std::uint64_t barrier_reassignments() const noexcept {
    return reassignments_;
  }
  const IoScheduler& base() const noexcept { return *base_; }

 private:
  void accept(RequestPtr r) {
    if (r->barrier) {
      blocked_ = true;
      if (fence_ != nullptr) {
        // Fenced mode: hold the barrier aside with flag and stamp intact
        // (see the header comment for why reassignment is unsound here).
        held_barrier_ = std::move(r);
        return;
      }
      // Strip the flag; the epoch closes once this queue drains its
      // order-preserving requests (the flag is re-attached at dequeue).
      r->barrier = false;
    }
    base_->enqueue(std::move(r));
  }

  void retire_stamp(std::uint64_t epoch) {
    auto it = pending_.find(epoch);
    BIO_CHECK_MSG(it != pending_.end(), "retiring an untracked fence epoch");
    if (--it->second == 0) pending_.erase(it);
  }

  /// Requests merged into `r` leave the queue with it; retire their stamps.
  /// Merging is write-only and never crosses fence epochs (try_back_merge),
  /// so every absorbed stamp equals the carrier's — which stays pending
  /// until note_submitted. Absorption chains nest one level per merge.
  void retire_absorbed(const Request& r) {
    for (const RequestPtr& a : r.absorbed) {
      retire_stamp(a->fence_epoch);
      retire_absorbed(*a);
    }
  }

  /// Moves staged requests into the base scheduler, preserving their
  /// relative order, until a staged barrier re-blocks the queue.
  void feed() {
    while (!staged_.empty() && !blocked_) {
      RequestPtr s = std::move(staged_.front());
      staged_.pop_front();
      accept(std::move(s));
    }
  }

  std::unique_ptr<IoScheduler> base_;
  EpochFence* fence_ = nullptr;
  bool blocked_ = false;
  std::deque<RequestPtr> staged_;
  /// Fenced mode only: the blocking barrier, kept out of the base scheduler
  /// so the flag (and its closing-epoch stamp) never migrates.
  RequestPtr held_barrier_;
  /// fence epoch -> number of this queue's pending writes stamped with it.
  std::map<std::uint64_t, std::uint32_t> pending_;
  std::uint64_t reassignments_ = 0;
};

}  // namespace bio::blk
