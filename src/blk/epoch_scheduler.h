// Epoch-based IO scheduling with barrier reassignment (§3.3, Fig 5).
//
// Requests between two barriers form an *epoch*. The wrapper:
//   1. strips the barrier flag from an incoming barrier write and stops
//      accepting new requests (they stage outside the queue),
//   2. lets the wrapped scheduler freely reorder/merge what is inside
//      (all of it belongs to one epoch, plus orderless requests),
//   3. re-attaches the barrier flag to the *last order-preserving request
//      that leaves the queue* (epoch-based barrier reassignment), then
//      unblocks and feeds the staged requests in.
//
// Orderless requests staged while blocked simply join the next epoch.
#pragma once

#include <deque>
#include <memory>

#include "blk/io_scheduler.h"

namespace bio::blk {

class EpochScheduler : public IoScheduler {
 public:
  explicit EpochScheduler(std::unique_ptr<IoScheduler> base)
      : base_(std::move(base)) {
    BIO_CHECK(base_ != nullptr);
  }

  void enqueue(RequestPtr r) override {
    ++stats_.enqueued;
    if (blocked_) {
      staged_.push_back(std::move(r));
      return;
    }
    accept(std::move(r));
  }

  RequestPtr dequeue() override {
    RequestPtr r = base_->dequeue();
    if (r == nullptr) return nullptr;
    ++stats_.dispatched;
    if (blocked_ && r->ordered && !base_->has_ordered()) {
      // This is the last order-preserving request of the closing epoch:
      // it becomes the new barrier (Fig 5, w1 in the paper's example).
      r->barrier = true;
      ++reassignments_;
      blocked_ = false;
      std::deque<RequestPtr> staged = std::move(staged_);
      staged_.clear();
      for (RequestPtr& s : staged) {
        if (blocked_) {
          // A staged barrier re-blocked the queue: keep the rest staged.
          staged_.push_back(std::move(s));
        } else {
          accept(std::move(s));
        }
      }
    }
    return r;
  }

  std::size_t size() const override { return base_->size() + staged_.size(); }
  bool has_ordered() const override { return base_->has_ordered(); }
  const char* name() const override { return "epoch"; }

  bool blocked() const noexcept { return blocked_; }
  std::size_t staged_count() const noexcept { return staged_.size(); }
  std::uint64_t barrier_reassignments() const noexcept {
    return reassignments_;
  }
  const IoScheduler& base() const noexcept { return *base_; }

 private:
  void accept(RequestPtr r) {
    if (r->barrier) {
      // Strip the flag; the epoch closes once this queue drains its
      // order-preserving requests (the flag is re-attached at dequeue).
      r->barrier = false;
      blocked_ = true;
    }
    base_->enqueue(std::move(r));
  }

  std::unique_ptr<IoScheduler> base_;
  bool blocked_ = false;
  std::deque<RequestPtr> staged_;
  std::uint64_t reassignments_ = 0;
};

}  // namespace bio::blk
