// Host block layer: scheduler + dispatch thread in front of the device.
//
// In order-preserving mode the dispatcher translates REQ_ORDERED/REQ_BARRIER
// into the device protocol of §3.4: barrier writes are dispatched with SCSI
// ORDERED priority (transfer-order fence), everything else SIMPLE. The
// caller is never blocked per-request — Wait-on-Transfer, when a filesystem
// wants it, is an explicit `co_await r->completion->wait()`.
//
// In legacy mode the ordering flags are stripped: the stack behaves like the
// orderless kernel the paper starts from, and ordering is whatever the
// filesystem enforces with waits and flushes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blk/epoch_scheduler.h"
#include "blk/io_scheduler.h"
#include "blk/request.h"
#include "blk/request_pool.h"
#include "flash/device.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::blk {

struct BlockLayerConfig {
  /// Base scheduler: "noop" or "elevator".
  std::string scheduler = "noop";
  /// Wrap the base scheduler with epoch-based barrier reassignment.
  bool epoch_scheduling = true;
  /// Dispatch barrier writes with SCSI ORDERED priority (vs stripping all
  /// ordering attributes, as the legacy stack does).
  bool order_preserving_dispatch = true;
  /// Busy retry interval when the device queue is full (Fig 6(b)).
  sim::SimTime busy_retry = 3'000'000;  // 3 ms, per the SCSI spec note
  /// If true, the dispatcher blindly retries on busy; if false it waits for
  /// a queue event (tag-aware driver) and uses the retry delay as fallback.
  bool busy_poll = false;
  /// Bound on the scheduler queue (Linux nr_requests). Submitters that call
  /// throttle() block while the queue is congested; they wake once it
  /// drains to half (batched wakeups, like the request-list congestion
  /// hysteresis).
  std::size_t nr_requests = 128;
  /// Bounded retry policy for transient device faults: attempts beyond the
  /// first, with exponential simulated-time backoff starting at
  /// `io_retry_backoff` (doubling per attempt). Hard media errors fail
  /// through immediately, never retried.
  std::uint32_t max_io_retries = 3;
  sim::SimTime io_retry_backoff = 1'000'000;  // 1 ms
};

class BlockLayer {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t busy_retries = 0;
    /// Transient device-fault completions observed (pre-retry).
    std::uint64_t transient_faults = 0;
    /// Hard media-error completions (fail through, never retried).
    std::uint64_t hard_faults = 0;
    /// Re-dispatches issued by the retry policy.
    std::uint64_t io_retries = 0;
    /// Requests whose final completion is an error (retries exhausted or
    /// hard fault).
    std::uint64_t io_failures = 0;
  };

  BlockLayer(sim::Simulator& sim, flash::StorageDevice& dev,
             BlockLayerConfig config);

  /// Spawns the dispatch thread. Call once, after device.start().
  void start();

  /// Hands a request to the IO scheduler (asynchronous). The request's
  /// completion event fires on the device IRQ.
  void submit(RequestPtr r);

  /// Blocks while the request queue is congested (> nr_requests pending).
  /// Callers issuing fire-and-forget writes use this as get_request()
  /// backpressure.
  sim::Task throttle();

  /// Globally unique version tag for a 4 KiB block write.
  flash::Version next_version() noexcept { return ++version_; }

  /// Recycling allocator for requests; the filesystem and journals build
  /// all their requests through this.
  RequestPool& pool() noexcept { return pool_; }
  const RequestPool& pool() const noexcept { return pool_; }

  /// Builds, submits and waits (convenience for tests/simple callers).
  sim::Task write_and_wait(std::vector<Block> blocks, bool ordered = false,
                           bool barrier = false, bool flush = false,
                           bool fua = false);
  sim::Task flush_and_wait();
  sim::Task read_and_wait(flash::Lba lba);

  const Stats& stats() const noexcept { return stats_; }
  const IoScheduler& scheduler() const noexcept { return *scheduler_; }
  flash::StorageDevice& device() noexcept { return dev_; }
  const BlockLayerConfig& config() const noexcept { return config_; }

  /// TEST ONLY: drop the fail-through path — a request whose retries are
  /// exhausted (or that hit a hard fault) completes as if it succeeded.
  /// The deliberate bug the fault crash sweep must catch: an acked sync
  /// over swallowed errors is a durability lie.
  void set_swallow_io_errors_for_test(bool swallow) noexcept {
    swallow_io_errors_ = swallow;
  }

 private:
  sim::Task dispatch_loop();
  sim::Task fanout(RequestPtr r);
  /// Fault-aware dispatch interposer: owns the request's device round
  /// trips, applies the bounded retry policy, then fires `completion` with
  /// the final status. Spawned only while a fault plan is installed.
  sim::Task retry_watcher(RequestPtr r, std::shared_ptr<flash::Command> cmd);
  std::shared_ptr<flash::Command> to_command(const RequestPtr& r,
                                             bool fault_aware) const;

  sim::Simulator& sim_;
  flash::StorageDevice& dev_;
  BlockLayerConfig config_;
  RequestPool pool_;
  std::unique_ptr<IoScheduler> scheduler_;
  sim::Notify work_;
  sim::Notify drained_;
  bool congested_ = false;
  flash::Version version_ = 0;
  Stats stats_;
  bool started_ = false;
  bool swallow_io_errors_ = false;
};

}  // namespace bio::blk
