// Host block layer: scheduler + dispatch thread in front of the device.
//
// In order-preserving mode the dispatcher translates REQ_ORDERED/REQ_BARRIER
// into the device protocol of §3.4: barrier writes are dispatched with SCSI
// ORDERED priority (transfer-order fence), everything else SIMPLE. The
// caller is never blocked per-request — Wait-on-Transfer, when a filesystem
// wants it, is an explicit `co_await r->completion->wait()`.
//
// In legacy mode the ordering flags are stripped: the stack behaves like the
// orderless kernel the paper starts from, and ordering is whatever the
// filesystem enforces with waits and flushes.
//
// Multi-queue (blk-mq) mode: with nr_queues > 1 the layer keeps one software
// queue (scheduler + dispatch thread) per submission context, routed by the
// submitting simulated thread's spawn ordinal, and maps queue q onto device
// port q % port_count so independent queues drive independent flash-channel
// pipelines. Epoch ordering across queues is kept by the EpochFence
// (blk/epoch_fence.h): per-queue sequencers plus a lazy cross-queue join —
// see that header for the protocol. nr_queues = 1 (the default) is
// bit-identical to the classic single-queue layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blk/epoch_fence.h"
#include "blk/epoch_scheduler.h"
#include "blk/io_scheduler.h"
#include "blk/request.h"
#include "blk/request_pool.h"
#include "flash/device.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::blk {

struct BlockLayerConfig {
  /// Base scheduler: "noop" or "elevator".
  std::string scheduler = "noop";
  /// Wrap the base scheduler with epoch-based barrier reassignment.
  bool epoch_scheduling = true;
  /// Dispatch barrier writes with SCSI ORDERED priority (vs stripping all
  /// ordering attributes, as the legacy stack does).
  bool order_preserving_dispatch = true;
  /// Busy retry interval when the device queue is full (Fig 6(b)).
  sim::SimTime busy_retry = 3'000'000;  // 3 ms, per the SCSI spec note
  /// If true, the dispatcher blindly retries on busy; if false it waits for
  /// a queue event (tag-aware driver) and uses the retry delay as fallback.
  bool busy_poll = false;
  /// Bound on the scheduler queue (Linux nr_requests). Submitters that call
  /// throttle() block while the queue is congested; they wake once it
  /// drains to half (batched wakeups, like the request-list congestion
  /// hysteresis).
  std::size_t nr_requests = 128;
  /// Bounded retry policy for transient device faults: attempts beyond the
  /// first, with exponential simulated-time backoff starting at
  /// `io_retry_backoff` (doubling per attempt). Hard media errors fail
  /// through immediately, never retried.
  std::uint32_t max_io_retries = 3;
  sim::SimTime io_retry_backoff = 1'000'000;  // 1 ms
  /// Software submission queues (blk-mq). Each queue has its own scheduler
  /// instance and dispatch thread and feeds device port q % port_count.
  /// 1 = the classic single-queue block layer, bit-identical.
  std::uint32_t nr_queues = 1;
};

class BlockLayer {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t busy_retries = 0;
    /// Transient device-fault completions observed (pre-retry).
    std::uint64_t transient_faults = 0;
    /// Hard media-error completions (fail through, never retried).
    std::uint64_t hard_faults = 0;
    /// Re-dispatches issued by the retry policy.
    std::uint64_t io_retries = 0;
    /// Requests whose final completion is an error (retries exhausted or
    /// hard fault).
    std::uint64_t io_failures = 0;
  };

  BlockLayer(sim::Simulator& sim, flash::StorageDevice& dev,
             BlockLayerConfig config);

  /// Spawns the dispatch thread. Call once, after device.start().
  void start();

  /// Hands a request to the IO scheduler (asynchronous). The request's
  /// completion event fires on the device IRQ. Routed to software queue
  /// (submitting thread's spawn ordinal) % nr_queues, so one submission
  /// context — a writer thread, a ring chain's issue loop — always stays on
  /// one queue and keeps its program order.
  void submit(RequestPtr r);

  /// submit() with an explicit software queue (directed tests; the normal
  /// path routes by submission context).
  void submit_on(std::uint32_t queue, RequestPtr r);

  /// Blocks while the request queue is congested (> nr_requests pending).
  /// Callers issuing fire-and-forget writes use this as get_request()
  /// backpressure.
  sim::Task throttle();

  /// Globally unique version tag for a 4 KiB block write.
  flash::Version next_version() noexcept { return ++version_; }

  /// Recycling allocator for requests; the filesystem and journals build
  /// all their requests through this.
  RequestPool& pool() noexcept { return pool_; }
  const RequestPool& pool() const noexcept { return pool_; }

  /// Builds, submits and waits (convenience for tests/simple callers).
  sim::Task write_and_wait(std::vector<Block> blocks, bool ordered = false,
                           bool barrier = false, bool flush = false,
                           bool fua = false);
  sim::Task flush_and_wait();
  sim::Task read_and_wait(flash::Lba lba);

  const Stats& stats() const noexcept { return stats_; }
  /// Queue 0's scheduler (the only one at nr_queues = 1).
  const IoScheduler& scheduler() const noexcept {
    return *queues_[0]->scheduler;
  }
  const IoScheduler& scheduler(std::uint32_t queue) const {
    BIO_CHECK(queue < queues_.size());
    return *queues_[queue]->scheduler;
  }
  std::uint32_t nr_queues() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }
  /// The cross-queue fence; null at nr_queues = 1 or without epoch
  /// scheduling (nothing to fence across).
  const EpochFence* epoch_fence() const noexcept { return fence_.get(); }
  flash::StorageDevice& device() noexcept { return dev_; }
  const BlockLayerConfig& config() const noexcept { return config_; }

  /// TEST ONLY: drop the fail-through path — a request whose retries are
  /// exhausted (or that hit a hard fault) completes as if it succeeded.
  /// The deliberate bug the fault crash sweep must catch: an acked sync
  /// over swallowed errors is a durability lie.
  void set_swallow_io_errors_for_test(bool swallow) noexcept {
    swallow_io_errors_ = swallow;
  }

 private:
  /// One software queue: its own scheduler instance and dispatch wakeup.
  struct Queue {
    explicit Queue(sim::Simulator& sim) : work(sim) {}
    std::unique_ptr<IoScheduler> scheduler;
    /// Borrowed view of `scheduler` when epoch scheduling wraps it (the
    /// fence bookkeeping — stamp retirement, pending-epoch queries — goes
    /// through it).
    EpochScheduler* epoch = nullptr;
    sim::Notify work;
  };

  sim::Task dispatch_loop(std::uint32_t queue);
  sim::Task fanout(RequestPtr r);
  /// Fault-aware dispatch interposer: owns the request's device round
  /// trips, applies the bounded retry policy, then fires `completion` with
  /// the final status. Spawned only while a fault plan is installed.
  sim::Task retry_watcher(RequestPtr r, std::shared_ptr<flash::Command> cmd);
  std::shared_ptr<flash::Command> to_command(const RequestPtr& r,
                                             bool fault_aware) const;
  /// Pending requests across every queue (congestion accounting).
  std::size_t backlog() const;
  /// Barrier submission gate: every peer queue has drained (submitted to
  /// the device) its requests stamped <= the barrier's epoch, so the
  /// device's (fence_epoch, seq) transfer fencing sees everything it must
  /// order below the barrier. See blk/epoch_fence.h.
  bool peers_drained(std::uint32_t queue, std::uint64_t epoch) const;

  sim::Simulator& sim_;
  flash::StorageDevice& dev_;
  BlockLayerConfig config_;
  RequestPool pool_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::unique_ptr<EpochFence> fence_;
  sim::Notify drained_;
  bool congested_ = false;
  flash::Version version_ = 0;
  Stats stats_;
  bool started_ = false;
  bool swallow_io_errors_ = false;
};

}  // namespace bio::blk
