// Slab/freelist recycler for block-layer requests.
//
// The ordered write path of the paper lives or dies on per-IO overhead, and
// the simulator's own hot path should too: the legacy path paid one
// make_shared, one heap-allocated completion Event (plus its deque chunk)
// and one blocks vector per request. The pool removes all of them:
//
//   * Request objects live in a std::deque slab (stable addresses, chunked
//     allocation) and recycle through a freelist without running their
//     destructors — vectors keep capacity, the embedded Event re-arms.
//   * shared_ptr control blocks recycle through a fixed-size freelist via a
//     custom allocator, so handing out a RequestPtr costs no malloc either.
//   * Block payloads land in the request's inline BlockList storage.
//
// The pool's internals are shared-ownership: every outstanding RequestPtr
// keeps the backing slabs alive, so teardown order (device, block layer,
// simulator frames) cannot dangle.
#pragma once

#include <cstddef>
#include <deque>
#include <initializer_list>
#include <memory>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "blk/request.h"
#include "sim/simulator.h"

namespace bio::blk {

class RequestPool {
 public:
  struct Stats {
    /// Requests handed out.
    std::uint64_t acquired = 0;
    /// Served by recycling a previously released request.
    std::uint64_t recycled = 0;
    /// Heap events: new Request slots, new control-block chunks, BlockList
    /// spills that grew a heap buffer.
    std::uint64_t fresh_requests = 0;
    std::uint64_t ctrl_allocs = 0;
    std::uint64_t block_heap_allocs = 0;

    Stats& operator+=(const Stats& o) noexcept {
      acquired += o.acquired;
      recycled += o.recycled;
      fresh_requests += o.fresh_requests;
      ctrl_allocs += o.ctrl_allocs;
      block_heap_allocs += o.block_heap_allocs;
      return *this;
    }
    Stats& operator-=(const Stats& o) noexcept {
      acquired -= o.acquired;
      recycled -= o.recycled;
      fresh_requests -= o.fresh_requests;
      ctrl_allocs -= o.ctrl_allocs;
      block_heap_allocs -= o.block_heap_allocs;
      return *this;
    }

    /// Heap allocations per request handed out (→ 0 after warm-up; the
    /// legacy unpooled path paid ≥ 3 per request).
    double allocs_per_request() const noexcept {
      return acquired == 0
                 ? 0.0
                 : static_cast<double>(fresh_requests + ctrl_allocs +
                                       block_heap_allocs) /
                       static_cast<double>(acquired);
    }
  };

  explicit RequestPool(sim::Simulator& sim)
      : impl_(std::make_shared<Impl>(sim)) {}

  RequestPtr make_write(std::span<const Block> blocks, bool ordered = false,
                        bool barrier = false, bool flush = false,
                        bool fua = false) {
    RequestPtr r = wrap(acquire());
    init_write_request(*r, blocks, ordered, barrier, flush, fua);
    return r;
  }

  RequestPtr make_write(std::initializer_list<Block> blocks,
                        bool ordered = false, bool barrier = false,
                        bool flush = false, bool fua = false) {
    return make_write(std::span<const Block>(blocks.begin(), blocks.size()),
                      ordered, barrier, flush, fua);
  }

  RequestPtr make_read(flash::Lba lba) {
    RequestPtr r = wrap(acquire());
    r->op = ReqOp::kRead;
    r->read_lba = lba;
    return r;
  }

  RequestPtr make_flush() {
    RequestPtr r = wrap(acquire());
    r->op = ReqOp::kFlush;
    return r;
  }

  const Stats& stats() const noexcept { return impl_->stats; }
  /// Requests currently parked in the freelist.
  std::size_t free_count() const noexcept { return impl_->free_list.size(); }
  /// Requests ever constructed (slab size).
  std::size_t slab_size() const noexcept { return impl_->slab.size(); }

 private:
  struct Impl {
    explicit Impl(sim::Simulator& s) : sim(&s) {}
    ~Impl() {
      for (void* p : ctrl_free) ::operator delete(p);
    }
    Impl(const Impl&) = delete;
    Impl& operator=(const Impl&) = delete;

    sim::Simulator* sim;
    /// Slab of Request objects: deque chunks allocate in bulk and never
    /// move, so raw Request* stay valid for the pool's lifetime.
    std::deque<Request> slab;
    std::vector<Request*> free_list;
    /// Recycled shared_ptr control-block chunks (one fixed size in
    /// practice; anything else falls through to the heap).
    std::vector<void*> ctrl_free;
    std::size_t ctrl_size = 0;
    Stats stats;
    /// Worklist draining absorbed chains iteratively on release: dropping a
    /// parent's absorbed list may drop the last reference to each child,
    /// which would otherwise recurse one stack frame per merge link.
    std::vector<RequestPtr> release_queue;
    bool releasing = false;

    void release(Request* r) {
      stats.block_heap_allocs += r->blocks.take_heap_allocs();
      for (RequestPtr& child : r->absorbed)
        release_queue.push_back(std::move(child));
      r->reset_for_reuse();
      free_list.push_back(r);
      if (releasing) return;  // the outermost frame drains the queue
      releasing = true;
      while (!release_queue.empty()) {
        RequestPtr child = std::move(release_queue.back());
        release_queue.pop_back();
        child.reset();  // may re-enter release(); depth stays bounded
      }
      releasing = false;
    }
  };

  /// shared_ptr deleter: scrub and park instead of destroying. Holds the
  /// Impl alive, so outstanding requests never outlive their slab.
  struct Recycler {
    std::shared_ptr<Impl> impl;
    void operator()(Request* r) const { impl->release(r); }
  };

  /// Control-block allocator backed by the Impl's chunk freelist.
  template <typename T>
  struct CtrlAlloc {
    using value_type = T;

    explicit CtrlAlloc(std::shared_ptr<Impl> i) : impl(std::move(i)) {}
    template <typename U>
    CtrlAlloc(const CtrlAlloc<U>& other) : impl(other.impl) {}

    T* allocate(std::size_t n) {
      const std::size_t bytes = n * sizeof(T);
      if (bytes == impl->ctrl_size && !impl->ctrl_free.empty()) {
        void* p = impl->ctrl_free.back();
        impl->ctrl_free.pop_back();
        return static_cast<T*>(p);
      }
      if (impl->ctrl_size == 0) impl->ctrl_size = bytes;
      ++impl->stats.ctrl_allocs;
      return static_cast<T*>(::operator new(bytes));
    }

    void deallocate(T* p, std::size_t n) noexcept {
      if (n * sizeof(T) == impl->ctrl_size)
        impl->ctrl_free.push_back(p);
      else
        ::operator delete(p);
    }

    template <typename U>
    bool operator==(const CtrlAlloc<U>&) const noexcept {
      return true;
    }

    std::shared_ptr<Impl> impl;
  };

  Request* acquire() {
    Impl& im = *impl_;
    ++im.stats.acquired;
    Request* r;
    if (!im.free_list.empty()) {
      ++im.stats.recycled;
      r = im.free_list.back();
      im.free_list.pop_back();
    } else {
      ++im.stats.fresh_requests;
      im.slab.emplace_back(*im.sim);
      r = &im.slab.back();
    }
    r->queued_at = im.sim->now();
    return r;
  }

  RequestPtr wrap(Request* r) {
    return RequestPtr(r, Recycler{impl_}, CtrlAlloc<Request>(impl_));
  }

  std::shared_ptr<Impl> impl_;
};

}  // namespace bio::blk
