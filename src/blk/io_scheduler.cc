#include "blk/io_scheduler.h"

#include <algorithm>
#include <string>

namespace bio::blk {

bool IoScheduler::try_back_merge(Request& back, const Request& r) {
  if (!back.is_write() || !r.is_write()) return false;
  // Flush/FUA attributes pin a request's identity; never merge across them.
  if (back.flush || back.fua || r.flush || r.fua) return false;
  // Barrier flags never reach a base scheduler (the epoch wrapper strips
  // them), but be defensive: a barrier must stay the last block of its
  // epoch, so nothing may merge behind it.
  if (back.barrier || r.barrier) return false;
  // Under the cross-queue fence a merged request transfers as one command
  // with one stamp, so merging across fence epochs would either promote
  // old-epoch data past a peer barrier or pull new-epoch data below one
  // (front-merge). Single-queue stacks stamp nothing: both sides are 0.
  if (back.fence_epoch != r.fence_epoch) return false;
  if (back.blocks.size() + r.blocks.size() > kMaxMergedBlocks) return false;
  if (back.last_lba() + 1 != r.first_lba()) return false;
  back.blocks.append(r.blocks.data(), r.blocks.size());
  back.ordered = back.ordered || r.ordered;  // §3.3: merge keeps ordering
  return true;
}

// ---- NoopScheduler ---------------------------------------------------------

void NoopScheduler::enqueue(RequestPtr r) {
  ++stats_.enqueued;
  if (!queue_.empty() && r->is_write() &&
      try_back_merge(*queue_.back(), *r)) {
    ++stats_.merges;
    queue_.back()->absorbed.push_back(std::move(r));
    return;
  }
  queue_.push_back(std::move(r));
}

RequestPtr NoopScheduler::dequeue() {
  if (queue_.empty()) return nullptr;
  RequestPtr r = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.dispatched;
  return r;
}

bool NoopScheduler::has_ordered() const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [](const RequestPtr& r) { return r->ordered; });
}

// ---- ElevatorScheduler -----------------------------------------------------

void ElevatorScheduler::enqueue(RequestPtr r) {
  ++stats_.enqueued;
  if (!r->is_write()) {
    others_.push_back(std::move(r));
    return;
  }
  // Insert in LBA order; try to merge with the neighbours.
  auto pos = std::lower_bound(
      writes_.begin(), writes_.end(), r->first_lba(),
      [](const RequestPtr& q, flash::Lba lba) { return q->first_lba() < lba; });
  if (pos != writes_.begin()) {
    auto prev = std::prev(pos);
    if (try_back_merge(**prev, *r)) {
      ++stats_.merges;
      (*prev)->absorbed.push_back(std::move(r));
      return;
    }
  }
  if (pos != writes_.end() && try_back_merge(*r, **pos)) {
    // Front-merge: r absorbs *pos; swap r into its place.
    ++stats_.merges;
    r->absorbed.push_back(*pos);
    std::swap(*pos, r);
    return;
  }
  writes_.insert(pos, std::move(r));
}

RequestPtr ElevatorScheduler::dequeue() {
  if (!others_.empty()) {
    RequestPtr r = std::move(others_.front());
    others_.pop_front();
    ++stats_.dispatched;
    return r;
  }
  if (writes_.empty()) return nullptr;
  // C-SCAN: first request at or above the head position, else wrap.
  auto pos = std::lower_bound(
      writes_.begin(), writes_.end(), head_pos_,
      [](const RequestPtr& q, flash::Lba lba) { return q->first_lba() < lba; });
  if (pos == writes_.end()) pos = writes_.begin();
  RequestPtr r = std::move(*pos);
  writes_.erase(pos);
  head_pos_ = r->last_lba() + 1;
  ++stats_.dispatched;
  return r;
}

bool ElevatorScheduler::has_ordered() const {
  return std::any_of(writes_.begin(), writes_.end(),
                     [](const RequestPtr& r) { return r->ordered; });
}

std::unique_ptr<IoScheduler> make_scheduler(const std::string& kind) {
  if (kind == "noop") return std::make_unique<NoopScheduler>();
  if (kind == "elevator") return std::make_unique<ElevatorScheduler>();
  BIO_CHECK_MSG(false, "unknown scheduler kind: " + kind);
  return nullptr;
}

}  // namespace bio::blk
