#include "blk/block_layer.h"

namespace bio::blk {

BlockLayer::BlockLayer(sim::Simulator& sim, flash::StorageDevice& dev,
                       BlockLayerConfig config)
    : sim_(sim), dev_(dev), config_(std::move(config)), pool_(sim),
      work_(sim), drained_(sim) {
  std::unique_ptr<IoScheduler> base = make_scheduler(config_.scheduler);
  if (config_.epoch_scheduling)
    scheduler_ = std::make_unique<EpochScheduler>(std::move(base));
  else
    scheduler_ = std::move(base);
}

void BlockLayer::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("blk:dispatch", dispatch_loop());
}

void BlockLayer::submit(RequestPtr r) {
  BIO_CHECK_MSG(started_, "BlockLayer::start() not called");
  ++stats_.submitted;
  scheduler_->enqueue(std::move(r));
  if (scheduler_->size() > config_.nr_requests) congested_ = true;
  work_.notify_all();
}

sim::Task BlockLayer::throttle() {
  while (congested_) co_await drained_.wait();
}

std::shared_ptr<flash::Command> BlockLayer::to_command(const RequestPtr& r,
                                                       bool fault_aware) const {
  // The command is embedded in the request; the device receives an aliasing
  // shared_ptr into it, which both avoids a per-dispatch allocation and
  // keeps the request alive while the device holds the command.
  flash::Command& cmd = r->cmd;
  cmd = flash::Command{};
  // Fault-aware dispatch interposes the retry watcher between the device
  // IRQ and the host-visible completion; otherwise the device IRQ *is* the
  // completion, exactly as before fault injection existed.
  cmd.done = fault_aware ? &r->device_done : &r->completion;
  switch (r->op) {
    case ReqOp::kWrite:
      cmd.op = flash::OpCode::kWrite;
      cmd.blocks = std::span<const Block>(r->blocks.data(), r->blocks.size());
      cmd.fua = r->fua;
      cmd.flush_before = r->flush;
      if (config_.order_preserving_dispatch) {
        cmd.barrier = r->barrier;
        // §3.4: the barrier write is dispatched with ORDERED priority; all
        // other writes (even order-preserving ones) stay SIMPLE, because
        // intra-epoch reordering is legal.
        cmd.priority =
            r->barrier ? flash::Priority::kOrdered : flash::Priority::kSimple;
      } else {
        // Legacy stack: ordering attributes never reach the device.
        cmd.barrier = false;
        cmd.priority = flash::Priority::kSimple;
      }
      break;
    case ReqOp::kRead:
      cmd.op = flash::OpCode::kRead;
      cmd.read_lba = r->read_lba;
      break;
    case ReqOp::kFlush:
      cmd.op = flash::OpCode::kFlush;
      cmd.priority = flash::Priority::kHeadOfQueue;
      break;
  }
  return std::shared_ptr<flash::Command>(r, &cmd);
}

sim::Task BlockLayer::dispatch_loop() {
  for (;;) {
    RequestPtr r = scheduler_->dequeue();
    if (r == nullptr) {
      co_await work_.wait();
      continue;
    }
    const bool fault_aware = dev_.has_fault_plan();
    std::shared_ptr<flash::Command> cmd = to_command(r, fault_aware);
    while (!dev_.try_submit(cmd)) {
      ++stats_.busy_retries;
      if (config_.busy_poll) {
        // Fig 6(b): the dispatching context retries after a fixed delay.
        co_await sim_.delay(config_.busy_retry);
      } else {
        co_await dev_.queue_activity().wait();
      }
    }
    ++stats_.dispatched;
    if (congested_ && scheduler_->size() <= config_.nr_requests / 2) {
      congested_ = false;
      drained_.notify_all();
    }
    if (fault_aware) sim_.spawn("blk:retry", retry_watcher(r, std::move(cmd)));
    if (!r->absorbed.empty()) sim_.spawn("blk:fanout", fanout(r));
  }
}

sim::Task BlockLayer::fanout(RequestPtr r) {
  co_await r->completion.wait();
  trigger_absorbed(*r);
}

sim::Task BlockLayer::retry_watcher(RequestPtr r,
                                    std::shared_ptr<flash::Command> cmd) {
  co_await r->device_done.wait();
  std::uint32_t attempt = 0;
  for (;;) {
    if (r->cmd.status == flash::IoStatus::kOk) break;
    if (r->cmd.status == flash::IoStatus::kHardError) {
      // Media error: retrying cannot help, fail through immediately.
      ++stats_.hard_faults;
      break;
    }
    ++stats_.transient_faults;
    if (attempt >= config_.max_io_retries) break;  // bounded: give up
    ++attempt;
    ++stats_.io_retries;
    co_await sim_.delay(config_.io_retry_backoff << (attempt - 1));
    // Re-arm and re-dispatch the same command (same payload span; a torn
    // write's retry re-lands the full payload).
    r->cmd.status = flash::IoStatus::kOk;
    r->device_done.recycle();
    while (!dev_.try_submit(cmd)) {
      ++stats_.busy_retries;
      if (config_.busy_poll)
        co_await sim_.delay(config_.busy_retry);
      else
        co_await dev_.queue_activity().wait();
    }
    co_await r->device_done.wait();
  }
  if (r->cmd.status != flash::IoStatus::kOk) {
    ++stats_.io_failures;
    if (swallow_io_errors_) r->cmd.status = flash::IoStatus::kOk;
  }
  r->completion.trigger();
}

sim::Task BlockLayer::write_and_wait(std::vector<Block> blocks, bool ordered,
                                     bool barrier, bool flush, bool fua) {
  RequestPtr r = pool_.make_write(std::span<const Block>(blocks), ordered,
                                  barrier, flush, fua);
  submit(r);
  co_await r->completion.wait();
}

sim::Task BlockLayer::flush_and_wait() {
  RequestPtr r = pool_.make_flush();
  submit(r);
  co_await r->completion.wait();
}

sim::Task BlockLayer::read_and_wait(flash::Lba lba) {
  RequestPtr r = pool_.make_read(lba);
  submit(r);
  co_await r->completion.wait();
}

}  // namespace bio::blk
