#include "blk/block_layer.h"

namespace bio::blk {

BlockLayer::BlockLayer(sim::Simulator& sim, flash::StorageDevice& dev,
                       BlockLayerConfig config)
    : sim_(sim), dev_(dev), config_(std::move(config)), pool_(sim),
      drained_(sim) {
  BIO_CHECK_MSG(config_.nr_queues >= 1, "nr_queues must be >= 1");
  // The fence exists only when there is something to fence across: several
  // queues whose sequencers run epoch ordering independently. Single-queue
  // stacks keep fence_ null and take none of the fence branches.
  if (config_.nr_queues > 1 && config_.epoch_scheduling)
    fence_ = std::make_unique<EpochFence>(sim);
  queues_.reserve(config_.nr_queues);
  for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
    auto queue = std::make_unique<Queue>(sim);
    std::unique_ptr<IoScheduler> base = make_scheduler(config_.scheduler);
    if (config_.epoch_scheduling) {
      auto epoch = std::make_unique<EpochScheduler>(std::move(base));
      epoch->set_fence(fence_.get());
      queue->epoch = epoch.get();
      queue->scheduler = std::move(epoch);
    } else {
      queue->scheduler = std::move(base);
    }
    queues_.push_back(std::move(queue));
  }
}

void BlockLayer::start() {
  BIO_CHECK(!started_);
  started_ = true;
  for (std::uint32_t q = 0; q < queues_.size(); ++q)
    sim_.spawn("blk:dispatch", dispatch_loop(q));
}

void BlockLayer::submit(RequestPtr r) {
  const sim::ThreadCtx* t = sim_.current_thread();
  const std::uint32_t q =
      t == nullptr ? 0 : static_cast<std::uint32_t>(t->id % queues_.size());
  submit_on(q, std::move(r));
}

void BlockLayer::submit_on(std::uint32_t queue, RequestPtr r) {
  BIO_CHECK_MSG(started_, "BlockLayer::start() not called");
  BIO_CHECK(queue < queues_.size());
  ++stats_.submitted;
  queues_[queue]->scheduler->enqueue(std::move(r));
  if (backlog() > config_.nr_requests) congested_ = true;
  queues_[queue]->work.notify_all();
}

std::size_t BlockLayer::backlog() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q->scheduler->size();
  return n;
}

bool BlockLayer::peers_drained(std::uint32_t queue,
                               std::uint64_t epoch) const {
  for (std::uint32_t j = 0; j < queues_.size(); ++j) {
    if (j == queue) continue;
    if (queues_[j]->epoch->min_pending_fence_epoch() <= epoch) return false;
  }
  return true;
}

sim::Task BlockLayer::throttle() {
  while (congested_) co_await drained_.wait();
}

std::shared_ptr<flash::Command> BlockLayer::to_command(const RequestPtr& r,
                                                       bool fault_aware) const {
  // The command is embedded in the request; the device receives an aliasing
  // shared_ptr into it, which both avoids a per-dispatch allocation and
  // keeps the request alive while the device holds the command.
  flash::Command& cmd = r->cmd;
  cmd = flash::Command{};
  // Fault-aware dispatch interposes the retry watcher between the device
  // IRQ and the host-visible completion; otherwise the device IRQ *is* the
  // completion, exactly as before fault injection existed.
  cmd.done = fault_aware ? &r->device_done : &r->completion;
  cmd.fence_epoch = r->fence_epoch;
  switch (r->op) {
    case ReqOp::kWrite:
      cmd.op = flash::OpCode::kWrite;
      cmd.blocks = std::span<const Block>(r->blocks.data(), r->blocks.size());
      cmd.fua = r->fua;
      cmd.flush_before = r->flush;
      if (config_.order_preserving_dispatch) {
        cmd.barrier = r->barrier;
        // §3.4: the barrier write is dispatched with ORDERED priority; all
        // other writes (even order-preserving ones) stay SIMPLE, because
        // intra-epoch reordering is legal.
        cmd.priority =
            r->barrier ? flash::Priority::kOrdered : flash::Priority::kSimple;
      } else {
        // Legacy stack: ordering attributes never reach the device.
        cmd.barrier = false;
        cmd.priority = flash::Priority::kSimple;
      }
      break;
    case ReqOp::kRead:
      cmd.op = flash::OpCode::kRead;
      cmd.read_lba = r->read_lba;
      break;
    case ReqOp::kFlush:
      cmd.op = flash::OpCode::kFlush;
      cmd.priority = flash::Priority::kHeadOfQueue;
      break;
  }
  return std::shared_ptr<flash::Command>(r, &cmd);
}

sim::Task BlockLayer::dispatch_loop(std::uint32_t q) {
  Queue& queue = *queues_[q];
  for (;;) {
    RequestPtr r = queue.scheduler->dequeue();
    if (r == nullptr) {
      co_await queue.work.wait();
      continue;
    }
    // Cross-queue fence protocol; fence_ is null on single-queue stacks and
    // every branch below collapses away.
    const bool fenced = fence_ != nullptr;
    if (fenced && r->barrier) {
      // Submission gate: the device fences transfers by (fence_epoch, seq),
      // but it cannot fence requests it has not seen. Hold the barrier until
      // every peer queue has submitted its work stamped <= the epoch this
      // barrier closes. Idle queues have nothing pending and never stall
      // the gate; peers keep draining while it waits.
      while (!peers_drained(q, r->fence_epoch))
        co_await fence_->progress().wait();
    }
    const bool fault_aware = dev_.has_fault_plan();
    std::shared_ptr<flash::Command> cmd = to_command(r, fault_aware);
    cmd->port = q % dev_.port_count();
    while (!dev_.try_submit(cmd)) {
      ++stats_.busy_retries;
      if (config_.busy_poll) {
        // Fig 6(b): the dispatching context retries after a fixed delay.
        co_await sim_.delay(config_.busy_retry);
      } else {
        co_await dev_.queue_activity().wait();
      }
    }
    ++stats_.dispatched;
    if (fenced && r->is_write()) {
      // The write's stamp stops gating peer barriers; wake any gate
      // waiting for this queue to drain.
      queue.epoch->note_submitted(*r);
      fence_->progress().notify_all();
    }
    if (congested_ && backlog() <= config_.nr_requests / 2) {
      congested_ = false;
      drained_.notify_all();
    }
    if (fault_aware) sim_.spawn("blk:retry", retry_watcher(r, std::move(cmd)));
    if (!r->absorbed.empty()) sim_.spawn("blk:fanout", fanout(r));
  }
}

sim::Task BlockLayer::fanout(RequestPtr r) {
  co_await r->completion.wait();
  trigger_absorbed(*r);
}

sim::Task BlockLayer::retry_watcher(RequestPtr r,
                                    std::shared_ptr<flash::Command> cmd) {
  co_await r->device_done.wait();
  std::uint32_t attempt = 0;
  for (;;) {
    if (r->cmd.status == flash::IoStatus::kOk) break;
    if (r->cmd.status == flash::IoStatus::kHardError) {
      // Media error: retrying cannot help, fail through immediately.
      ++stats_.hard_faults;
      break;
    }
    ++stats_.transient_faults;
    if (attempt >= config_.max_io_retries) break;  // bounded: give up
    ++attempt;
    ++stats_.io_retries;
    co_await sim_.delay(config_.io_retry_backoff << (attempt - 1));
    // Re-arm and re-dispatch the same command (same payload span; a torn
    // write's retry re-lands the full payload).
    r->cmd.status = flash::IoStatus::kOk;
    r->device_done.recycle();
    while (!dev_.try_submit(cmd)) {
      ++stats_.busy_retries;
      if (config_.busy_poll)
        co_await sim_.delay(config_.busy_retry);
      else
        co_await dev_.queue_activity().wait();
    }
    co_await r->device_done.wait();
  }
  if (r->cmd.status != flash::IoStatus::kOk) {
    ++stats_.io_failures;
    if (swallow_io_errors_) r->cmd.status = flash::IoStatus::kOk;
  }
  r->completion.trigger();
}

sim::Task BlockLayer::write_and_wait(std::vector<Block> blocks, bool ordered,
                                     bool barrier, bool flush, bool fua) {
  RequestPtr r = pool_.make_write(std::span<const Block>(blocks), ordered,
                                  barrier, flush, fua);
  submit(r);
  co_await r->completion.wait();
}

sim::Task BlockLayer::flush_and_wait() {
  RequestPtr r = pool_.make_flush();
  submit(r);
  co_await r->completion.wait();
}

sim::Task BlockLayer::read_and_wait(flash::Lba lba) {
  RequestPtr r = pool_.make_read(lba);
  submit(r);
  co_await r->completion.wait();
}

}  // namespace bio::blk
