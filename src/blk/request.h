// Block-layer request types (§3.1).
//
// The order-preserving block layer distinguishes three kinds of writes:
//   * orderless        — neither flag; schedulable across epochs,
//   * order-preserving — REQ_ORDERED; free to reorder *within* its epoch,
//   * barrier          — REQ_ORDERED|REQ_BARRIER; delimits an epoch.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "flash/types.h"
#include "sim/check.h"
#include "sim/sync.h"
#include "sim/time.h"

namespace bio::blk {

enum class ReqOp : std::uint8_t { kWrite, kRead, kFlush };

struct Request {
  ReqOp op = ReqOp::kWrite;
  /// REQ_ORDERED: order-preserving write.
  bool ordered = false;
  /// REQ_BARRIER: epoch delimiter (implies ordered).
  bool barrier = false;
  /// REQ_FLUSH: flush the device cache before this request.
  bool flush = false;
  /// REQ_FUA: persist the payload before completing.
  bool fua = false;

  /// Write payload, ascending contiguous LBAs.
  std::vector<std::pair<flash::Lba, flash::Version>> blocks;
  flash::Lba read_lba = 0;

  sim::SimTime queued_at = 0;
  /// Host completion IRQ.
  std::unique_ptr<sim::Event> completion;
  /// Requests merged into this one; their completions fire with ours.
  std::vector<std::shared_ptr<Request>> absorbed;

  flash::Lba first_lba() const {
    BIO_CHECK(!blocks.empty());
    return blocks.front().first;
  }
  flash::Lba last_lba() const {
    BIO_CHECK(!blocks.empty());
    return blocks.back().first;
  }
  bool is_write() const noexcept { return op == ReqOp::kWrite; }
};

using RequestPtr = std::shared_ptr<Request>;

/// Fires the completion of every request absorbed (transitively) into `r`.
/// The dispatcher calls this when the carrying request completes.
inline void trigger_absorbed(Request& r) {
  for (const RequestPtr& a : r.absorbed) {
    a->completion->trigger();
    trigger_absorbed(*a);
  }
}

inline RequestPtr make_write_request(
    sim::Simulator& sim, std::vector<std::pair<flash::Lba, flash::Version>> blocks,
    bool ordered = false, bool barrier = false, bool flush = false,
    bool fua = false) {
  BIO_CHECK_MSG(!blocks.empty(), "write request without blocks");
  for (std::size_t i = 1; i < blocks.size(); ++i)
    BIO_CHECK_MSG(blocks[i].first == blocks[i - 1].first + 1,
                  "write request blocks must be contiguous ascending");
  auto r = std::make_shared<Request>();
  r->op = ReqOp::kWrite;
  r->ordered = ordered || barrier;  // barrier implies order-preserving
  r->barrier = barrier;
  r->flush = flush;
  r->fua = fua;
  r->blocks = std::move(blocks);
  r->queued_at = sim.now();
  r->completion = std::make_unique<sim::Event>(sim);
  return r;
}

inline RequestPtr make_read_request(sim::Simulator& sim, flash::Lba lba) {
  auto r = std::make_shared<Request>();
  r->op = ReqOp::kRead;
  r->read_lba = lba;
  r->queued_at = sim.now();
  r->completion = std::make_unique<sim::Event>(sim);
  return r;
}

inline RequestPtr make_flush_request(sim::Simulator& sim) {
  auto r = std::make_shared<Request>();
  r->op = ReqOp::kFlush;
  r->queued_at = sim.now();
  r->completion = std::make_unique<sim::Event>(sim);
  return r;
}

}  // namespace bio::blk
