// Block-layer request types (§3.1).
//
// The order-preserving block layer distinguishes three kinds of writes:
//   * orderless        — neither flag; schedulable across epochs,
//   * order-preserving — REQ_ORDERED; free to reorder *within* its epoch,
//   * barrier          — REQ_ORDERED|REQ_BARRIER; delimits an epoch.
//
// Requests are built for recycling (blk::RequestPool): the completion event
// and the device-facing Command are embedded (no per-request Event or
// per-dispatch Command allocation), and the block payload lives in a
// small-buffer BlockList whose heap fallback keeps its capacity across
// reuses.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "flash/command.h"
#include "flash/types.h"
#include "sim/check.h"
#include "sim/sync.h"
#include "sim/time.h"

namespace bio::blk {

enum class ReqOp : std::uint8_t { kWrite, kRead, kFlush };

/// One 4 KiB payload block: (LBA, version tag).
using Block = std::pair<flash::Lba, flash::Version>;

/// Contiguous block run with inline storage for short requests (the common
/// case) and a capacity-retaining heap fallback for merged ones.
class BlockList {
 public:
  static constexpr std::size_t kInlineBlocks = 4;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const Block* data() const noexcept {
    return size_ <= kInlineBlocks ? inline_.data() : heap_.data();
  }
  Block* data() noexcept {
    return size_ <= kInlineBlocks ? inline_.data() : heap_.data();
  }

  const Block& operator[](std::size_t i) const noexcept { return data()[i]; }
  const Block& front() const noexcept { return data()[0]; }
  const Block& back() const noexcept { return data()[size_ - 1]; }
  const Block* begin() const noexcept { return data(); }
  const Block* end() const noexcept { return data() + size_; }

  void push_back(const Block& b) { append(&b, 1); }

  void append(const Block* p, std::size_t n) {
    if (size_ + n <= kInlineBlocks) {
      for (std::size_t i = 0; i < n; ++i) inline_[size_ + i] = p[i];
      size_ += n;
      return;
    }
    const std::size_t cap0 = heap_.capacity();
    if (size_ <= kInlineBlocks) {
      // Spill: move the inline prefix into the heap vector.
      heap_.clear();
      heap_.reserve(size_ + n);
      heap_.insert(heap_.end(), inline_.begin(), inline_.begin() + size_);
    }
    heap_.insert(heap_.end(), p, p + n);
    size_ += n;
    if (heap_.capacity() != cap0) ++heap_allocs_;
  }

  void assign(std::span<const Block> blocks) {
    clear();
    append(blocks.data(), blocks.size());
  }

  /// Keeps the heap capacity: a recycled request that once carried a merged
  /// 128-block run never reallocates for one again.
  void clear() noexcept {
    size_ = 0;
    heap_.clear();
  }

  /// Heap growth events since the last call (RequestPool allocation stats).
  std::uint32_t take_heap_allocs() noexcept {
    return std::exchange(heap_allocs_, 0u);
  }

 private:
  std::size_t size_ = 0;
  std::array<Block, kInlineBlocks> inline_;
  std::vector<Block> heap_;
  std::uint32_t heap_allocs_ = 0;
};

struct Request;
using RequestPtr = std::shared_ptr<Request>;

struct Request {
  explicit Request(sim::Simulator& sim) : completion(sim), device_done(sim) {}
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  ReqOp op = ReqOp::kWrite;
  /// REQ_ORDERED: order-preserving write.
  bool ordered = false;
  /// REQ_BARRIER: epoch delimiter (implies ordered).
  bool barrier = false;
  /// REQ_FLUSH: flush the device cache before this request.
  bool flush = false;
  /// REQ_FUA: persist the payload before completing.
  bool fua = false;

  /// Write payload, ascending contiguous LBAs.
  BlockList blocks;
  flash::Lba read_lba = 0;

  /// Cross-queue ordering epoch (multi-queue stacks only; see
  /// blk::EpochFence). Stamped by the owning queue's EpochScheduler at
  /// enqueue: barriers take the epoch they close, order-preserving writes
  /// the epoch they were issued under. Stays 0 on single-queue stacks.
  std::uint64_t fence_epoch = 0;

  sim::SimTime queued_at = 0;
  /// Host completion IRQ (embedded; re-armed on recycle). Fires once the
  /// request is *finished* — for a fault-aware dispatch that includes the
  /// retry policy, so `status()` is the final verdict.
  sim::Event completion;
  /// Device-side IRQ used only by the fault-aware dispatch path: the device
  /// triggers it per attempt, the block layer's retry watcher re-arms it
  /// between attempts and forwards the final result to `completion`. With
  /// no fault plan installed the device triggers `completion` directly and
  /// this event stays cold.
  sim::Event device_done;
  /// Requests merged into this one; their completions fire with ours.
  std::vector<RequestPtr> absorbed;
  /// Device-facing command, filled at dispatch. The block layer hands the
  /// device an aliasing shared_ptr to this member, so the request stays
  /// alive while the device holds the command.
  flash::Command cmd;

  flash::Lba first_lba() const {
    BIO_CHECK(!blocks.empty());
    return blocks.front().first;
  }
  flash::Lba last_lba() const {
    BIO_CHECK(!blocks.empty());
    return blocks.back().first;
  }
  bool is_write() const noexcept { return op == ReqOp::kWrite; }

  /// Final IO verdict, valid once `completion` fires. Absorbed requests
  /// inherit their carrier's status when the carrier completes.
  flash::IoStatus status() const noexcept { return cmd.status; }
  bool failed() const noexcept { return cmd.status != flash::IoStatus::kOk; }

  /// Scrubs per-use state while retaining container capacities (pool reuse).
  void reset_for_reuse() noexcept {
    op = ReqOp::kWrite;
    ordered = barrier = flush = fua = false;
    blocks.clear();
    read_lba = 0;
    fence_epoch = 0;
    queued_at = 0;
    completion.recycle();
    device_done.recycle();
    absorbed.clear();
    cmd = flash::Command{};
  }
};

namespace detail {

/// Heap-worklist preorder walk for absorption chains deeper than the
/// recursion budget. Entering the loop processes `r`'s whole subtree before
/// returning, so the caller's sibling order (= preorder) is preserved.
inline void trigger_absorbed_deep(Request& r, flash::IoStatus status) {
  std::vector<Request*> work;
  work.reserve(r.absorbed.size());
  for (auto it = r.absorbed.rbegin(); it != r.absorbed.rend(); ++it)
    work.push_back(it->get());
  while (!work.empty()) {
    Request* cur = work.back();
    work.pop_back();
    cur->cmd.status = status;
    cur->completion.trigger();
    for (auto it = cur->absorbed.rbegin(); it != cur->absorbed.rend(); ++it)
      work.push_back(it->get());
  }
}

/// Recursive preorder walk with a depth budget: the common 1-2 link merge
/// chains complete with zero heap traffic; anything deeper falls back to
/// the worklist before the real stack is at risk.
inline void trigger_absorbed_impl(Request& r, flash::IoStatus status,
                                  int depth_left) {
  for (const RequestPtr& a : r.absorbed) {
    a->cmd.status = status;
    a->completion.trigger();
    if (a->absorbed.empty()) continue;
    if (depth_left > 0)
      trigger_absorbed_impl(*a, status, depth_left - 1);
    else
      trigger_absorbed_deep(*a, status);
  }
}

}  // namespace detail

/// Fires the completion of every request absorbed (transitively) into `r`,
/// in preorder. The dispatcher calls this when the carrying request
/// completes. Absorption chains grow one link per merge, so a long
/// fsync-heavy run must not translate into unbounded recursion on the real
/// stack — past a fixed depth the walk switches to an explicit worklist.
inline void trigger_absorbed(Request& r) {
  if (r.absorbed.empty()) return;
  // Absorbed requests completed with the carrier, so they share its fate:
  // a failed carrier fails every write folded into it.
  detail::trigger_absorbed_impl(r, r.cmd.status, /*depth_left=*/64);
}

/// Validates and stamps a write payload onto `r` (shared by RequestPool and
/// the unpooled test helpers).
inline void init_write_request(Request& r, std::span<const Block> blocks,
                               bool ordered, bool barrier, bool flush,
                               bool fua) {
  BIO_CHECK_MSG(!blocks.empty(), "write request without blocks");
  for (std::size_t i = 1; i < blocks.size(); ++i)
    BIO_CHECK_MSG(blocks[i].first == blocks[i - 1].first + 1,
                  "write request blocks must be contiguous ascending");
  r.op = ReqOp::kWrite;
  r.ordered = ordered || barrier;  // barrier implies order-preserving
  r.barrier = barrier;
  r.flush = flush;
  r.fua = fua;
  r.blocks.assign(blocks);
}

// ---- unpooled helpers -------------------------------------------------------
// Convenience constructors for tests and standalone scheduler use; the
// production stack allocates through blk::RequestPool instead.

inline RequestPtr make_write_request(sim::Simulator& sim,
                                     std::vector<Block> blocks,
                                     bool ordered = false, bool barrier = false,
                                     bool flush = false, bool fua = false) {
  auto r = std::make_shared<Request>(sim);
  init_write_request(*r, blocks, ordered, barrier, flush, fua);
  r->queued_at = sim.now();
  return r;
}

inline RequestPtr make_read_request(sim::Simulator& sim, flash::Lba lba) {
  auto r = std::make_shared<Request>(sim);
  r->op = ReqOp::kRead;
  r->read_lba = lba;
  r->queued_at = sim.now();
  return r;
}

inline RequestPtr make_flush_request(sim::Simulator& sim) {
  auto r = std::make_shared<Request>(sim);
  r->op = ReqOp::kFlush;
  r->queued_at = sim.now();
  return r;
}

}  // namespace bio::blk
