// Host IO schedulers. The epoch scheduler (epoch_scheduler.h) wraps one of
// these to add barrier semantics; on their own they model the legacy,
// freely-reordering elevator of the orderless IO stack (§2.1).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "blk/request.h"

namespace bio::blk {

/// Maximum blocks in a merged request (128 × 4 KiB = 512 KiB, the typical
/// max_sectors_kb).
inline constexpr std::size_t kMaxMergedBlocks = 128;

class IoScheduler {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t merges = 0;
  };

  virtual ~IoScheduler() = default;

  /// Adds a request, possibly merging it into a queued one.
  virtual void enqueue(RequestPtr r) = 0;

  /// Removes the next request to dispatch; nullptr when empty.
  virtual RequestPtr dequeue() = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// True if any queued request is order-preserving (epoch bookkeeping).
  virtual bool has_ordered() const = 0;

  virtual const char* name() const = 0;

  const Stats& stats() const noexcept { return stats_; }

 protected:
  /// Tries to append `r` to `back` (back-merge). Returns true on success.
  /// Merged requests inherit order-preservation from either constituent.
  static bool try_back_merge(Request& back, const Request& r);

  Stats stats_;
};

/// FIFO with back-merging of contiguous writes (Linux NOOP).
class NoopScheduler : public IoScheduler {
 public:
  void enqueue(RequestPtr r) override;
  RequestPtr dequeue() override;
  std::size_t size() const override { return queue_.size(); }
  bool has_ordered() const override;
  const char* name() const override { return "noop"; }

 private:
  std::deque<RequestPtr> queue_;
};

/// One-way elevator (C-SCAN) with front/back merging: dispatches writes in
/// ascending LBA order from the current head position, wrapping around.
/// Reads and flushes dispatch FIFO ahead of writes (deadline-style).
class ElevatorScheduler : public IoScheduler {
 public:
  void enqueue(RequestPtr r) override;
  RequestPtr dequeue() override;
  std::size_t size() const override {
    return writes_.size() + others_.size();
  }
  bool has_ordered() const override;
  const char* name() const override { return "elevator"; }

 private:
  std::deque<RequestPtr> writes_;  // kept sorted by first_lba
  std::deque<RequestPtr> others_;  // reads + flushes, FIFO
  flash::Lba head_pos_ = 0;
};

std::unique_ptr<IoScheduler> make_scheduler(const std::string& kind);

}  // namespace bio::blk
