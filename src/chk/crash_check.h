// Full-stack crash-injection checker.
//
// Runs a randomized api::Vfs workload on a freshly assembled IO stack,
// cuts power at a chosen simulated instant, recovers the durable image
// through fs::Recovery, remounts a *fresh* stack over the recovered state,
// and verifies the stack's crash-consistency contract:
//
//   stack   | verified guarantees
//   --------+-----------------------------------------------------------
//   EXT4-DR | fsync/fdatasync returned => durable; per-file epoch prefix
//   BFS-DR  | same (fdatabarrier additionally delimits epochs for free)
//   BFS-OD  | per-file epoch prefix (fdatabarrier/fbarrier order only),
//           | full durability once the device quiesces
//   OptFS   | osync epoch prefix + delayed durability (prefix now,
//           | everything once the device quiesces)
//   EXT4-OD | *claims* the EXT4-DR contract but runs nobarrier on an
//           | orderless device — the checker is expected to catch it
//           | violating (the paper's Fig 1 motivation)
//
// plus, on every stack with a working journal, that recovery never has to
// replay a stale log copy (RecoveryReport::clean()), and — since the
// workload churns the namespace with unlink()/rename() — that the
// recovered namespace is consistent: no duplicate or fabricated names, a
// durably-renamed file only ever recovers under the new (or a newer) name,
// a durably-unlinked file never reappears.
//
// run_crash_sweep() repeats this over many (seed, crash instant) points;
// run_multi_volume_crash_check() runs the same oracle per volume of a
// heterogeneous multi-volume node (one shared simulator, one api::Vfs
// mount table, N independent journals) and verifies each volume's
// contract independently — one volume's recovery reads only its own
// journal. tests/crash_recovery_test.cc drives >= 200 points per stack
// and examples/crash_consistency.cpp is the CLI for both sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stack.h"
#include "sim/time.h"
#include "wl/concurrent_writers.h"
#include "wl/ring_workload.h"

namespace bio::chk {

struct CrashCheckOptions {
  /// Files the workload churns.
  int files = 4;
  /// Random operations after setup.
  int ops = 60;
  /// Journal size for the scenario (small values force wraps). 0 = stack
  /// default.
  std::uint32_t journal_blocks = 256;
  /// Extent reserved per file (4 KiB pages).
  std::uint32_t extent_blocks = 64;
  /// Software submission queues in the block layer (blk-mq). Sweeps run at
  /// 1 (classic, bit-identical) and 4 (cross-queue epoch fence exercised);
  /// the value rides in the --repro spec as a `q<N>` segment so multi-queue
  /// failures replay exactly.
  std::uint32_t nr_queues = 1;
  /// Remount a fresh stack over the recovered image and verify it works.
  bool remount = true;
};

struct CrashCheckResult {
  std::uint64_t seed = 0;
  sim::SimTime crash_at = 0;

  std::vector<std::string> violations;
  bool ok() const noexcept { return violations.empty(); }

  // Scenario facts (for reporting and targeted assertions).
  bool workload_finished = false;
  /// Device + page cache fully drained at the crash instant: everything
  /// ever synced must have reached media.
  bool quiesced = false;
  std::uint32_t files_recovered = 0;
  std::uint32_t txns_replayed = 0;
  std::uint32_t txns_discarded = 0;
  bool tail_truncated = false;
  bool recovery_clean = true;
  std::uint64_t journal_wraps = 0;
  std::uint64_t journal_stalls = 0;
  std::uint64_t checkpoint_flushes = 0;
  std::uint32_t acked_pages_checked = 0;
  std::uint32_t order_writes_checked = 0;
  /// Namespace-churn facts verified (rename/unlink durability and
  /// recovered-namespace consistency).
  std::uint32_t namespace_facts_checked = 0;
  /// Namespace ops the workload actually performed.
  std::uint32_t renames_done = 0;
  std::uint32_t unlinks_done = 0;
  // Concurrent-sweep facts (zero on single-writer checks).
  /// Returned sync syscalls whose promises were verified.
  std::uint32_t syncs_recorded = 0;
  /// Descriptor close/reopen cycles the workload performed.
  std::uint32_t fd_cycles = 0;
  /// close() calls issued while that fd's sync was still suspended.
  std::uint32_t closes_during_sync = 0;
  /// Ring linked-chain contract facts verified (covered-write durability /
  /// successor-implies-covered ordering; zero on non-ring workloads).
  std::uint32_t chain_facts_checked = 0;
  // Fault-injection facts (zero/false on fault-free checks).
  /// Faults the installed plan actually fired before the cut.
  std::uint64_t faults_injected = 0;
  /// Block-layer re-dispatches issued by the bounded retry policy.
  std::uint64_t io_retries = 0;
  /// Requests that completed with an error (retries exhausted/hard fault).
  std::uint64_t io_failures = 0;
  /// Sync syscalls that returned kIo/kRoFs to the workload.
  std::uint32_t syncs_failed = 0;
  /// The journal aborted and degraded the volume read-only before the cut.
  bool volume_degraded = false;
};

/// One workload + power cut + recovery + remount + verification pass.
CrashCheckResult run_crash_check(core::StackKind kind, std::uint64_t seed,
                                 sim::SimTime crash_at,
                                 const CrashCheckOptions& opt = {});

struct CrashSweepResult {
  int points = 0;
  int failed_points = 0;
  int quiesced_points = 0;
  std::uint64_t acked_pages_checked = 0;
  std::uint64_t order_writes_checked = 0;
  std::uint64_t namespace_facts_checked = 0;
  std::uint64_t renames_done = 0;
  std::uint64_t unlinks_done = 0;
  std::uint64_t journal_wraps = 0;
  std::uint64_t journal_stalls = 0;
  std::uint32_t files_recovered = 0;
  std::uint64_t syncs_recorded = 0;
  std::uint64_t fd_cycles = 0;
  std::uint64_t closes_during_sync = 0;
  std::uint64_t chain_facts_checked = 0;
  // Fault-sweep aggregates (zero on fault-free sweeps).
  std::uint64_t faults_injected = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t io_failures = 0;
  std::uint64_t syncs_failed = 0;
  int degraded_points = 0;
  /// First few violations, with their (seed, crash) context and a
  /// `--repro` spec (see examples/crash_consistency). The CLI spec replays
  /// with DEFAULT sweep options; a sweep run with custom options must be
  /// replayed through run_crash_check / run_concurrent_crash_check with
  /// the same options and the Failure coordinates below.
  std::vector<std::string> sample_violations;

  /// Replay coordinates of the first 32 failed points: point index plus
  /// the derived seed and crash instant. run_crash_check(kind, seed,
  /// crash_at, <the sweep's options>) — or the concurrent flavour —
  /// replays exactly that case; `failed_points` holds the true total.
  struct Failure {
    int point = 0;
    std::uint64_t seed = 0;
    sim::SimTime crash_at = 0;
    std::string first_violation;
  };
  std::vector<Failure> failures;

  bool ok() const noexcept { return failed_points == 0; }

  /// Folds one crash point's result into the aggregate (points, quiesced
  /// and every checked-facts counter; failure accounting stays with the
  /// caller). The single funnel every sweep flavour uses.
  void accumulate(const CrashCheckResult& r);
};

/// The crash instant the sweeps derive for `point` under `base_seed` —
/// exposed so a single failed sweep point can be replayed in isolation
/// (every sweep flavour draws from this same generator stream).
sim::SimTime sweep_crash_at(std::uint64_t base_seed, int point);

/// Sweeps `points` random (seed, crash instant) combinations derived from
/// `base_seed`. Crash instants mix mid-workload cuts with post-quiescence
/// ones (the delayed-durability cases).
///
/// Every sweep flavour takes a trailing `jobs` knob, resolved through
/// sim::resolve_host_jobs (0 = BIO_SWEEP_JOBS env, else hardware
/// concurrency; 1 = the legacy serial path). Points run across up to
/// `jobs` host threads — each point builds its own core::Stack, its seed
/// and crash instant derive from its index alone, and results fold in
/// canonical point order, so every jobs value yields a bit-identical
/// CrashSweepResult (counters, failure coordinates and --repro strings).
CrashSweepResult run_crash_sweep(core::StackKind kind, int points,
                                 std::uint64_t base_seed = 1,
                                 const CrashCheckOptions& opt = {},
                                 int jobs = 0);

// ---- fault-injection crash sweep --------------------------------------------

/// Options for the fault crash sweep: the single-writer workload shape plus
/// a seed-derived flash::FaultPlan installed on the device before start.
struct FaultCrashOptions {
  CrashCheckOptions wl;
  /// Faults drawn per plan (flash::FaultPlan::random upper bound).
  std::uint32_t max_faults = 4;
  /// Write-op ordinal range the plan spreads its faults over (roughly the
  /// device write-command count the default checker workload generates —
  /// measured ~70 for a full fault-free run; see FaultPlan::random's
  /// log-uniform placement for why early ordinals are favoured).
  std::uint64_t expected_write_ops = 80;
  /// TEST ONLY: forwards to BlockLayer::set_swallow_io_errors_for_test —
  /// the deliberate injected bug the sweep must deterministically detect.
  bool swallow_io_errors = false;
};

/// One fault plan + workload + power cut + recovery + remount pass. The
/// workload tolerates EIO/EROFS (it stops writing once the volume degrades
/// read-only) and records durability facts only for syncs that returned
/// kOk. The oracle then composes fault injection with the power-cut facts:
///   * acked durability survives faults: a durable-ack sync that returned
///     kOk covers its data even when earlier IOs failed and were retried;
///   * a torn/failed journal write never replays as committed (recovery is
///     clean and stops at the missing evidence);
///   * an aborted (degraded) volume still recovers read-consistent and
///     remounts into a fully usable stack.
/// The in-order epoch-prefix fact is deliberately NOT checked here: a
/// bounded retry legally re-lands a transiently failed write after later
/// writes (a retried bio is not ordering-preserved), so ordering-only
/// stacks have a real hazard window under transient faults.
CrashCheckResult run_fault_crash_check(core::StackKind kind,
                                       std::uint64_t seed,
                                       sim::SimTime crash_at,
                                       const FaultCrashOptions& opt = {});

CrashSweepResult run_fault_crash_sweep(core::StackKind kind, int points,
                                       std::uint64_t base_seed = 1,
                                       const FaultCrashOptions& opt = {},
                                       int jobs = 0);

// ---- multi-volume node ------------------------------------------------------

/// One power cut on a node running `kinds.size()` volumes behind one Vfs
/// mount table ("/v0/...", "/v1/...): each volume runs its own randomized
/// workload (distinct seed), the cut hits all of them at once, and every
/// volume is recovered from its own journal and verified against its own
/// kind's contract.
struct MultiVolumeCrashResult {
  std::uint64_t seed = 0;
  sim::SimTime crash_at = 0;
  /// Per-volume results, index-aligned with the `kinds` argument.
  std::vector<CrashCheckResult> volumes;

  bool ok() const noexcept {
    for (const CrashCheckResult& v : volumes)
      if (!v.ok()) return false;
    return true;
  }
};

MultiVolumeCrashResult run_multi_volume_crash_check(
    const std::vector<core::StackKind>& kinds, std::uint64_t seed,
    sim::SimTime crash_at, const CrashCheckOptions& opt = {});

/// Sweep aggregate with per-volume breakdown (index-aligned with `kinds`).
struct MultiVolumeSweepResult {
  int points = 0;
  int failed_points = 0;
  std::vector<CrashSweepResult> volumes;
  std::vector<std::string> sample_violations;

  bool ok() const noexcept { return failed_points == 0; }
};

MultiVolumeSweepResult run_multi_volume_crash_sweep(
    const std::vector<core::StackKind>& kinds, int points,
    std::uint64_t base_seed = 1, const CrashCheckOptions& opt = {},
    int jobs = 0);

// ---- concurrent multi-writer sweep ------------------------------------------

/// Options for the shared-inode concurrent sweep: N writer coroutines over
/// one volume through independent fds (wl::spawn_concurrent_writers), with
/// the per-writer observations merged into one cross-writer contract.
struct ConcurrentCrashOptions {
  wl::ConcurrentWritersParams wl;
  /// Journal size (small values force wraps under the churn). 0 = default.
  std::uint32_t journal_blocks = 256;
  /// Block-layer software queues (see CrashCheckOptions::nr_queues).
  std::uint32_t nr_queues = 1;
  bool remount = true;
};

/// One concurrent workload + power cut + recovery + remount + cross-writer
/// verification pass. The verified contract, per stack kind:
///   * acked durability per syncing fd: a write that completed before a
///     durable-ack sync (fsync/fdatasync on EXT4/BFS, dsync's data on
///     OptFS) started must survive once that sync returned — regardless of
///     which writer wrote and which fd synced;
///   * cross-writer epoch prefix: if a write that started after a returned
///     sync survives, every write (any writer) that completed before that
///     sync started survives — racing writes are constrained by neither
///     side;
///   * delayed durability at quiescence, and the PR 4 namespace facts
///     (durable renames stick, durable unlinks stay gone, nothing
///     fabricated) under rename/unlink contention.
CrashCheckResult run_concurrent_crash_check(
    core::StackKind kind, std::uint64_t seed, sim::SimTime crash_at,
    const ConcurrentCrashOptions& opt = {});

CrashSweepResult run_concurrent_crash_sweep(
    core::StackKind kind, int points, std::uint64_t base_seed = 1,
    const ConcurrentCrashOptions& opt = {}, int jobs = 0);

// ---- ring-driven concurrent sweep -------------------------------------------

/// Options for the api::Ring variant of the concurrent sweep: N writers
/// each batching linked chains and unlinked sqes through their own Ring
/// (wl::spawn_ring_writers), verified by the same cross-writer oracle plus
/// the linked-chain contract (TraceSync::chain_covered/chain_successors).
struct RingCrashOptions {
  wl::RingWorkloadParams wl;
  /// Journal size (small values force wraps under the churn). 0 = default.
  std::uint32_t journal_blocks = 256;
  /// Block-layer software queues (see CrashCheckOptions::nr_queues).
  std::uint32_t nr_queues = 1;
  bool remount = true;
};

/// One ring workload + power cut + recovery + remount + verification pass.
/// On top of the concurrent contract, verifies per recorded chain sync:
///   * durable-ack chains: every write linked before a returned
///     fsync/fdatasync survived (EXT4/BFS; dsync-only on OptFS);
///   * chain ordering: a surviving write linked *after* the sync proves
///     every write linked before it — claims derived from the submission
///     structure, so a link-ignoring ring produces violations;
///   * chain delayed durability at quiescence for order-only syncs.
CrashCheckResult run_ring_crash_check(core::StackKind kind,
                                      std::uint64_t seed,
                                      sim::SimTime crash_at,
                                      const RingCrashOptions& opt = {});

CrashSweepResult run_ring_crash_sweep(core::StackKind kind, int points,
                                      std::uint64_t base_seed = 1,
                                      const RingCrashOptions& opt = {},
                                      int jobs = 0);

}  // namespace bio::chk
