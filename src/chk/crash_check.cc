#include "chk/crash_check.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

#include "api/vfs.h"
#include "fs/recovery.h"
#include "sim/rng.h"

namespace bio::chk {
namespace {

using namespace bio::sim::literals;
using core::StackKind;
using flash::Lba;
using flash::Version;

/// What the stack's API contract promises (the checker verifies exactly
/// this; EXT4-OD *claims* the EXT4-DR contract and is expected to break it).
struct Guarantees {
  /// durability_point()/sync_file() returned => covered data is on media.
  bool durable_acks = false;
};

Guarantees guarantees_of(StackKind kind) {
  switch (kind) {
    case StackKind::kExt4DR:
    case StackKind::kExt4OD:  // claimed, not kept — the paper's motivation
    case StackKind::kBfsDR:
      return {.durable_acks = true};
    case StackKind::kBfsOD:
    case StackKind::kOptFs:
      return {.durable_acks = false};  // ordering only until quiescence
  }
  return {};
}

core::StackConfig checker_config(StackKind kind,
                                 const CrashCheckOptions& opt) {
  flash::DeviceProfile dev;
  dev.name = "chk";
  dev.geometry = flash::Geometry{.channels = 2,
                                 .ways_per_channel = 2,
                                 .blocks_per_chip = 64,
                                 .pages_per_block = 4};
  dev.nand = flash::NandTiming{.read_page = 50_us,
                               .program_page = 200_us,
                               .erase_block = 1'000_us,
                               .channel_xfer = 10_us};
  dev.queue_depth = 16;
  dev.cache_entries = 64;
  dev.cmd_overhead = 5_us;
  dev.dma_4k = 10_us;
  dev.flush_overhead = 20_us;
  dev.plp_flush_latency = 15_us;
  dev.read_hit_latency = 5_us;
  core::StackConfig cfg = core::StackConfig::make(kind, dev);
  if (opt.journal_blocks != 0) cfg.fs.journal_blocks = opt.journal_blocks;
  cfg.fs.max_inodes = 64;
  cfg.fs.default_extent_blocks = opt.extent_blocks;
  cfg.fs.writeback_high_watermark = 1u << 20;  // pdflush off: explicit syncs
  return cfg;
}

/// One buffered write as the oracle remembers it.
struct PageWrite {
  Lba lba = 0;
  Version version = 0;
  /// The file's ordering epoch at write time (order/durability/full-sync
  /// points bump it): if any write of a later epoch survives, every write
  /// of an earlier epoch must have survived.
  std::uint64_t epoch = 0;
};

struct FileOracle {
  std::string name;
  api::File handle;
  fs::Inode* inode = nullptr;
  std::uint64_t epoch = 0;
  /// Latest write per page.
  std::map<std::uint32_t, PageWrite> pages;
  /// Every write, epoch-tagged (order-prefix checking).
  std::vector<PageWrite> writes;
  /// Writes with index < synced_upto were covered by some sync point and
  /// must be durable once the device quiesces.
  std::size_t synced_upto = 0;
  /// Snapshot of `pages` at the last durability-guaranteed sync return.
  std::map<std::uint32_t, PageWrite> acked;
  bool has_acks = false;
  /// sync_file() returned: the file (and this size) must survive.
  bool full_synced = false;
  std::uint32_t full_synced_size = 0;
};

struct Oracle {
  std::vector<FileOracle> files;
  bool finished = false;
};

sim::Task workload(core::Stack& stack, api::Vfs& vfs, Oracle& oracle,
                   const CrashCheckOptions& opt, const Guarantees& g,
                   std::uint64_t seed) {
  sim::Rng rng(seed);
  oracle.files.resize(static_cast<std::size_t>(opt.files));
  for (int i = 0; i < opt.files; ++i) {
    FileOracle& f = oracle.files[static_cast<std::size_t>(i)];
    f.name = "f" + std::to_string(i);
    api::OpenOptions oo;
    oo.create = true;
    oo.extent_blocks = opt.extent_blocks;
    api::Result<api::File> r = co_await vfs.open(f.name, oo);
    BIO_CHECK_MSG(r.ok(), "checker workload: open failed");
    f.handle = r.value();
    f.inode = stack.fs().lookup(f.name);
    BIO_CHECK(f.inode != nullptr);
  }
  // Settle the creates so every later crash point has the namespace.
  {
    FileOracle& f0 = oracle.files.front();
    must(co_await f0.handle.sync_file());
    for (FileOracle& f : oracle.files) {
      ++f.epoch;
      if (g.durable_acks) {
        f.full_synced = true;
        f.full_synced_size = f.inode->size_blocks;
        f.has_acks = true;
      }
      f.synced_upto = f.writes.size();
    }
  }

  auto record_write = [&](FileOracle& f, std::uint32_t page,
                          std::uint32_t n) {
    for (std::uint32_t p = page; p < page + n; ++p) {
      const fs::PageCache::PageState* st =
          stack.fs().page_cache().find(f.inode->ino, p);
      BIO_CHECK(st != nullptr);
      const PageWrite w{f.inode->lba_of_page(p), st->version, f.epoch};
      f.pages[p] = w;
      f.writes.push_back(w);
    }
  };

  for (int i = 0; i < opt.ops; ++i) {
    FileOracle& f = oracle.files[static_cast<std::size_t>(
        rng.uniform(0, opt.files - 1))];
    const int dice = static_cast<int>(rng.uniform(0, 99));
    if (dice < 55) {
      const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(1, 3));
      const std::uint32_t page = static_cast<std::uint32_t>(
          rng.uniform(0, opt.extent_blocks - n));
      api::Result<std::uint32_t> r = co_await f.handle.pwrite(page, n);
      if (r.ok()) record_write(f, page, r.value());
    } else if (dice < 65) {
      const std::uint32_t room = opt.extent_blocks - f.inode->size_blocks;
      if (room > 0) {
        const std::uint32_t n = std::min<std::uint32_t>(
            room, static_cast<std::uint32_t>(rng.uniform(1, 2)));
        const std::uint32_t at = f.inode->size_blocks;
        api::Result<std::uint32_t> r = co_await f.handle.append(n);
        if (r.ok()) record_write(f, at, r.value());
      }
    } else if (dice < 80) {
      must(co_await f.handle.order_point());
      ++f.epoch;
      f.synced_upto = f.writes.size();
    } else if (dice < 92) {
      must(co_await f.handle.durability_point());
      ++f.epoch;
      f.synced_upto = f.writes.size();
      if (g.durable_acks) {
        f.acked = f.pages;
        f.has_acks = true;
      }
    } else {
      must(co_await f.handle.sync_file());
      ++f.epoch;
      f.synced_upto = f.writes.size();
      f.full_synced = true;
      f.full_synced_size = f.inode->size_blocks;
      if (g.durable_acks) {
        f.acked = f.pages;
        f.has_acks = true;
      }
    }
    if (rng.chance(0.3))
      co_await stack.sim().delay(rng.uniform(1, 400) * 1_us);
    if (rng.chance(0.08))
      co_await stack.sim().delay(rng.uniform(2'000, 6'000) * 1_us);
  }
  oracle.finished = true;
}

std::string describe(const PageWrite& w) {
  std::ostringstream os;
  os << "lba=" << w.lba << " v=" << w.version << " epoch=" << w.epoch;
  return os.str();
}

/// BIO_CHK_DEBUG=1 diagnostic dump for a failed write check: where the
/// block's versions actually ended up (image, FTL mapping, transfer
/// history, log prefix). This is how the checker's findings get root-caused
/// down the stack.
void debug_dump_write(const char* what, const PageWrite& w,
                      const flash::StorageDevice::DurableImage& image,
                      core::Stack& stack) {
  if (std::getenv("BIO_CHK_DEBUG") == nullptr) return;
  auto img = image.blocks.find(w.lba);
  const auto mapped = stack.device().log().mapped_version(w.lba);
  std::fprintf(stderr, "DBG %s lba=%llu v=%llu image=%lld mapped=%lld\n",
               what, (unsigned long long)w.lba, (unsigned long long)w.version,
               img == image.blocks.end() ? -1 : (long long)img->second,
               mapped.has_value() ? (long long)*mapped : -1);
  for (const auto& e : stack.device().transfer_history())
    if (e.lba == w.lba)
      std::fprintf(stderr, "  xfer v=%llu epoch=%llu order=%llu\n",
                   (unsigned long long)e.version, (unsigned long long)e.epoch,
                   (unsigned long long)e.order);
  std::fprintf(stderr, "  log prefix=%llu appends=%llu cache_dirty=%zu\n",
               (unsigned long long)stack.device().log().programmed_prefix(),
               (unsigned long long)stack.device().log().append_count(),
               stack.device().cache().dirty_count());
}

}  // namespace

CrashCheckResult run_crash_check(StackKind kind, std::uint64_t seed,
                                 sim::SimTime crash_at,
                                 const CrashCheckOptions& opt) {
  CrashCheckResult res;
  res.seed = seed;
  res.crash_at = crash_at;
  const Guarantees g = guarantees_of(kind);
  const core::StackConfig cfg = checker_config(kind, opt);

  auto stack = std::make_unique<core::Stack>(cfg);
  stack->start();
  api::Vfs vfs(*stack);
  Oracle oracle;
  stack->sim().spawn("chk:wl",
                     workload(*stack, vfs, oracle, opt, g, seed));
  stack->sim().run_until(crash_at);  // power cut

  res.workload_finished = oracle.finished;
  res.quiesced = oracle.finished &&
                 stack->device().cache().dirty_count() == 0 &&
                 stack->device().queue_depth() == 0;
  res.journal_wraps = stack->fs().journal().stats().journal_wraps;
  res.journal_stalls = stack->fs().journal().stats().journal_stalls;
  res.checkpoint_flushes = stack->fs().journal().stats().checkpoint_flushes;

  // ---- recover the durable image -----------------------------------------
  const flash::StorageDevice::DurableImage image =
      stack->device().capture_durable_image();
  const fs::Recovery recovery(stack->fs().journal(), stack->fs().layout(),
                              stack->fs().config());
  const fs::RecoveryReport report = recovery.recover(image.blocks);
  res.files_recovered = static_cast<std::uint32_t>(report.files.size());
  res.txns_replayed = report.txns_replayed;
  res.txns_discarded = report.txns_discarded;
  res.tail_truncated = report.tail_truncated;
  res.recovery_clean = report.clean();

  auto violation = [&res](const std::string& what) {
    res.violations.push_back(what);
  };

  // A working journal never forces recovery to replay a stale log copy.
  if (!report.clean())
    violation("recovery silently corrupted " +
              std::to_string(report.corrupted_blocks.size()) +
              " home block(s) (stale log replay under a surviving commit)");

  auto present = [&report](const PageWrite& w) {
    auto it = report.data.find(w.lba);
    return it != report.data.end() && it->second >= w.version;
  };

  auto recovered_file =
      [&report](const std::string& name)
      -> const fs::RecoveryReport::RecoveredFile* {
    for (const auto& f : report.files)
      if (f.name == name) return &f;
    return nullptr;
  };

  for (const FileOracle& f : oracle.files) {
    // 1. Acknowledged durability: every page covered by a returned
    //    durability_point()/sync_file() must have survived.
    if (g.durable_acks && f.has_acks) {
      for (const auto& [page, w] : f.acked) {
        ++res.acked_pages_checked;
        if (!present(w)) {
          violation(f.name + " page " + std::to_string(page) + " (" +
                    describe(w) + ") was acked durable but did not survive");
          debug_dump_write("acked", w, image, *stack);
        }
      }
    }
    // 2. Epoch prefix ordering: a surviving write of epoch e proves every
    //    write of epochs < e survived.
    std::uint64_t max_present_epoch = 0;
    bool any_present = false;
    for (const PageWrite& w : f.writes)
      if (present(w)) {
        max_present_epoch = std::max(max_present_epoch, w.epoch);
        any_present = true;
      }
    for (const PageWrite& w : f.writes) {
      ++res.order_writes_checked;
      if (any_present && w.epoch < max_present_epoch && !present(w)) {
        violation(f.name + " write (" + describe(w) +
                  ") lost although epoch " +
                  std::to_string(max_present_epoch) +
                  " survived — ordering broken");
        debug_dump_write("order", w, image, *stack);
      }
    }
    // 3. Delayed durability: once the device has quiesced, everything any
    //    sync point ever covered must be on media (OptFS's osync contract;
    //    trivially implied by durable_acks elsewhere).
    if (res.quiesced) {
      for (std::size_t i = 0; i < f.synced_upto; ++i) {
        const PageWrite& w = f.writes[i];
        if (!present(w))
          violation(f.name + " write (" + describe(w) +
                    ") not durable after quiescence");
      }
    }
    // 4. Namespace: a file whose sync_file() returned must be recovered
    //    with at least the synced size. Without durable acks this only
    //    holds after quiescence.
    if (f.full_synced && (g.durable_acks || res.quiesced)) {
      const fs::RecoveryReport::RecoveredFile* rf = recovered_file(f.name);
      if (rf == nullptr)
        violation(f.name + " was fsynced but does not exist after recovery");
      else if (rf->size_blocks < f.full_synced_size)
        violation(f.name + " recovered with size " +
                  std::to_string(rf->size_blocks) + " < synced size " +
                  std::to_string(f.full_synced_size));
    }
  }

  // ---- remount a fresh stack over the recovered image --------------------
  if (opt.remount) {
    auto stack2 = std::make_unique<core::Stack>(cfg);
    stack2->fs().mount(report);
    stack2->start();
    api::Vfs vfs2(*stack2);
    bool remount_ok = true;
    std::string remount_err;
    auto verify = [&]() -> sim::Task {
      for (const auto& rf : report.files) {
        api::Result<api::File> r = co_await vfs2.open(rf.name, {});
        if (!r.ok()) {
          remount_ok = false;
          remount_err = "open(" + rf.name + ") failed on remount";
          co_return;
        }
        api::File h = r.value();
        if (h.size_blocks().value() != rf.size_blocks) {
          remount_ok = false;
          remount_err = rf.name + " remounted with wrong size";
          co_return;
        }
        must(h.close());
      }
      // The recovered filesystem must be fully usable: write + full sync.
      api::OpenOptions oo;
      oo.create = true;
      api::Result<api::File> r = co_await vfs2.open("post-crash", oo);
      if (!r.ok()) {
        remount_ok = false;
        remount_err = "create failed on remounted stack";
        co_return;
      }
      api::File h = r.value();
      api::Result<std::uint32_t> w = co_await h.pwrite(0, 2);
      api::Status s = co_await h.sync_file();
      if (!w.ok() || !s.ok()) {
        remount_ok = false;
        remount_err = "write+sync failed on remounted stack";
      }
      must(h.close());
    };
    stack2->sim().spawn("chk:verify", verify());
    stack2->sim().run();
    if (!remount_ok) violation("remount: " + remount_err);
  }

  return res;
}

CrashSweepResult run_crash_sweep(StackKind kind, int points,
                                 std::uint64_t base_seed,
                                 const CrashCheckOptions& opt) {
  CrashSweepResult sweep;
  sim::Rng rng(base_seed * 7919 + 17);
  for (int i = 0; i < points; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    // Mostly mid-workload cuts; a slice of late cuts exercises the
    // quiesced (delayed-durability) contract.
    const sim::SimTime crash_at =
        rng.chance(0.2) ? rng.uniform(60'000, 300'000) * 1_us
                        : rng.uniform(100, 60'000) * 1_us;
    const CrashCheckResult res = run_crash_check(kind, seed, crash_at, opt);
    ++sweep.points;
    if (res.quiesced) ++sweep.quiesced_points;
    sweep.acked_pages_checked += res.acked_pages_checked;
    sweep.order_writes_checked += res.order_writes_checked;
    sweep.journal_wraps += res.journal_wraps;
    sweep.journal_stalls += res.journal_stalls;
    sweep.files_recovered += res.files_recovered;
    if (!res.ok()) {
      ++sweep.failed_points;
      if (sweep.sample_violations.size() < 8) {
        std::ostringstream os;
        os << core::to_string(kind) << " seed=" << res.seed
           << " crash=" << res.crash_at << "ns: " << res.violations.front();
        sweep.sample_violations.push_back(os.str());
      }
    }
  }
  return sweep;
}

}  // namespace bio::chk
