#include "chk/crash_check.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "api/vfs.h"
#include "flash/fault.h"
#include "fs/recovery.h"
#include "sim/host_pool.h"
#include "sim/rng.h"

namespace bio::chk {
namespace {

using namespace bio::sim::literals;
using core::StackKind;
using flash::Lba;
using flash::Version;

/// What the stack's API contract promises (the checker verifies exactly
/// this; EXT4-OD *claims* the EXT4-DR contract and is expected to break it).
struct Guarantees {
  /// durability_point()/sync_file() returned => covered data is on media.
  bool durable_acks = false;
};

Guarantees guarantees_of(StackKind kind) {
  switch (kind) {
    case StackKind::kExt4DR:
    case StackKind::kExt4OD:  // claimed, not kept — the paper's motivation
    case StackKind::kBfsDR:
      return {.durable_acks = true};
    case StackKind::kBfsOD:
    case StackKind::kOptFs:
      return {.durable_acks = false};  // ordering only until quiescence
  }
  return {};
}

core::StackConfig checker_config(StackKind kind, std::uint32_t journal_blocks,
                                 std::uint32_t extent_blocks,
                                 std::uint32_t nr_queues) {
  flash::DeviceProfile dev;
  dev.name = "chk";
  dev.geometry = flash::Geometry{.channels = 2,
                                 .ways_per_channel = 2,
                                 .blocks_per_chip = 64,
                                 .pages_per_block = 4};
  dev.nand = flash::NandTiming{.read_page = 50_us,
                               .program_page = 200_us,
                               .erase_block = 1'000_us,
                               .channel_xfer = 10_us};
  dev.queue_depth = 16;
  dev.cache_entries = 64;
  dev.cmd_overhead = 5_us;
  dev.dma_4k = 10_us;
  dev.flush_overhead = 20_us;
  dev.plp_flush_latency = 15_us;
  dev.read_hit_latency = 5_us;
  core::StackConfig cfg = core::StackConfig::make(kind, dev);
  if (journal_blocks != 0) cfg.fs.journal_blocks = journal_blocks;
  cfg.fs.max_inodes = 64;
  cfg.fs.default_extent_blocks = extent_blocks;
  cfg.fs.writeback_high_watermark = 1u << 20;  // pdflush off: explicit syncs
  cfg.blk.nr_queues = nr_queues;
  return cfg;
}

core::StackConfig checker_config(StackKind kind,
                                 const CrashCheckOptions& opt) {
  return checker_config(kind, opt.journal_blocks, opt.extent_blocks,
                        opt.nr_queues);
}

/// One buffered write as the oracle remembers it.
struct PageWrite {
  Lba lba = 0;
  Version version = 0;
  /// The file's ordering epoch at write time (order/durability/full-sync
  /// points bump it): if any write of a later epoch survives, every write
  /// of an earlier epoch must have survived.
  std::uint64_t epoch = 0;
};

struct FileOracle {
  /// Volume-relative name history: [0] is the create name, back() the
  /// current one; rename() appends. Recovery may legitimately surface any
  /// name at/after the last durably-synced index, and nothing else.
  std::vector<std::string> rel_names;
  api::File handle;
  fs::Inode* inode = nullptr;
  std::uint64_t epoch = 0;
  /// Latest write per page.
  std::map<std::uint32_t, PageWrite> pages;
  /// Every write, epoch-tagged (order-prefix checking).
  std::vector<PageWrite> writes;
  /// Writes with index < synced_upto were covered by some sync point and
  /// must be durable once the device quiesces.
  std::size_t synced_upto = 0;
  /// Snapshot of `pages` at the last durability-guaranteed sync return.
  std::map<std::uint32_t, PageWrite> acked;
  bool has_acks = false;
  /// sync_file() returned: the file (and this size) must survive.
  bool full_synced = false;
  std::uint32_t full_synced_size = 0;
  /// Name index as of the last returned sync_file(): that sync committed
  /// every rename before it, so older names are durably gone.
  std::size_t synced_name_idx = 0;
  /// The name was unlink()ed (the open handle keeps the file writable).
  bool unlinked = false;
  /// sync_file() returned after the unlink: the removal is committed.
  bool synced_after_unlink = false;

  const std::string& rel_name() const { return rel_names.back(); }
};

struct Oracle {
  std::vector<FileOracle> files;
  bool finished = false;
  std::uint32_t renames = 0;
  std::uint32_t unlinks = 0;
  /// Sync syscalls that returned kIo/kRoFs (fault-tolerant runs only).
  std::uint32_t syncs_failed = 0;
  /// The workload observed EROFS — the volume degraded read-only and the
  /// writer stopped mutating (reads would still work).
  bool stopped_rofs = false;
};

/// The randomized workload, running against one volume of the node through
/// the shared Vfs. `prefix` is the mount prefix ("" on a single-volume
/// root mount, "/v0/" on a mounted volume).
sim::Task workload(core::Volume& vol, api::Vfs& vfs, std::string prefix,
                   Oracle& oracle, const CrashCheckOptions& opt,
                   const Guarantees& g, std::uint64_t seed,
                   bool fault_tolerant = false) {
  sim::Rng rng(seed);
  // Fault-tolerant runs accept EIO (the sync's commit died, or a data
  // writeback was lost — errseq) and EROFS (volume degraded read-only);
  // durability facts are recorded only for syscalls that returned kOk.
  // Fault-free runs keep the hard must() contract.
  auto sync_ok = [&oracle, fault_tolerant](api::Status st) {
    if (st.ok()) return true;
    BIO_CHECK_MSG(fault_tolerant,
                  "checker workload: sync failed on a fault-free run");
    ++oracle.syncs_failed;
    if (st.error() == api::Errno::kRoFs) oracle.stopped_rofs = true;
    return false;
  };
  oracle.files.resize(static_cast<std::size_t>(opt.files));
  for (int i = 0; i < opt.files; ++i) {
    FileOracle& f = oracle.files[static_cast<std::size_t>(i)];
    f.rel_names.push_back("f" + std::to_string(i));
    api::OpenOptions oo;
    oo.create = true;
    oo.extent_blocks = opt.extent_blocks;
    api::Result<api::File> r = co_await vfs.open(prefix + f.rel_name(), oo);
    BIO_CHECK_MSG(r.ok(), "checker workload: open failed");
    f.handle = r.value();
    f.inode = vol.fs().lookup(f.rel_name());
    BIO_CHECK(f.inode != nullptr);
  }
  // Settle the creates so every later crash point has the namespace.
  {
    FileOracle& f0 = oracle.files.front();
    if (sync_ok(co_await f0.handle.sync_file())) {
      for (FileOracle& f : oracle.files) {
        ++f.epoch;
        if (g.durable_acks) {
          f.full_synced = true;
          f.full_synced_size = f.inode->size_blocks;
          f.has_acks = true;
        }
        f.synced_upto = f.writes.size();
      }
    }
  }

  auto record_write = [&](FileOracle& f, std::uint32_t page,
                          std::uint32_t n) {
    for (std::uint32_t p = page; p < page + n; ++p) {
      const fs::PageCache::PageState* st =
          vol.fs().page_cache().find(f.inode->ino, p);
      BIO_CHECK(st != nullptr);
      const PageWrite w{f.inode->lba_of_page(p), st->version, f.epoch};
      f.pages[p] = w;
      f.writes.push_back(w);
    }
  };

  for (int i = 0; i < opt.ops; ++i) {
    if (oracle.stopped_rofs) break;  // degraded read-only: stop mutating
    FileOracle& f = oracle.files[static_cast<std::size_t>(
        rng.uniform(0, opt.files - 1))];
    const int dice = static_cast<int>(rng.uniform(0, 99));
    if (dice < 48) {
      const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(1, 3));
      const std::uint32_t page = static_cast<std::uint32_t>(
          rng.uniform(0, opt.extent_blocks - n));
      api::Result<std::uint32_t> r = co_await f.handle.pwrite(page, n);
      if (r.ok())
        record_write(f, page, r.value());
      else if (r.error() == api::Errno::kRoFs)
        oracle.stopped_rofs = true;
    } else if (dice < 58) {
      const std::uint32_t room = opt.extent_blocks - f.inode->size_blocks;
      if (room > 0) {
        const std::uint32_t n = std::min<std::uint32_t>(
            room, static_cast<std::uint32_t>(rng.uniform(1, 2)));
        const std::uint32_t at = f.inode->size_blocks;
        api::Result<std::uint32_t> r = co_await f.handle.append(n);
        if (r.ok())
          record_write(f, at, r.value());
        else if (r.error() == api::Errno::kRoFs)
          oracle.stopped_rofs = true;
      }
    } else if (dice < 72) {
      if (sync_ok(co_await f.handle.order_point())) {
        ++f.epoch;
        f.synced_upto = f.writes.size();
      }
    } else if (dice < 84) {
      if (sync_ok(co_await f.handle.durability_point())) {
        ++f.epoch;
        f.synced_upto = f.writes.size();
        if (g.durable_acks) {
          f.acked = f.pages;
          f.has_acks = true;
        }
      }
    } else if (dice < 93) {
      if (sync_ok(co_await f.handle.sync_file())) {
        ++f.epoch;
        f.synced_upto = f.writes.size();
        f.synced_name_idx = f.rel_names.size() - 1;
        if (f.unlinked) {
          f.synced_after_unlink = true;
        } else {
          f.full_synced = true;
          f.full_synced_size = f.inode->size_blocks;
        }
        if (g.durable_acks) {
          f.acked = f.pages;
          f.has_acks = true;
        }
      }
    } else if (dice < 97) {
      // Namespace churn: rename — mostly to a fresh name, sometimes a
      // POSIX replace-rename onto another live file's name (the displaced
      // file becomes nameless in the same transaction).
      if (!f.unlinked) {
        FileOracle* victim = nullptr;
        if (rng.chance(0.3) &&
            oracle.unlinks < static_cast<std::uint32_t>(opt.files) / 2) {
          FileOracle& v = oracle.files[static_cast<std::size_t>(
              rng.uniform(0, opt.files - 1))];
          if (&v != &f && !v.unlinked) victim = &v;
        }
        const std::string next =
            victim != nullptr
                ? victim->rel_name()
                : f.rel_names.front() + ".r" +
                      std::to_string(f.rel_names.size());
        const api::Status st =
            co_await vfs.rename(prefix + f.rel_name(), prefix + next);
        if (st.ok()) {
          f.rel_names.push_back(next);
          ++oracle.renames;
          if (victim != nullptr) {
            victim->unlinked = true;
            victim->full_synced = false;
            ++oracle.unlinks;
          }
        } else {
          BIO_CHECK_MSG(fault_tolerant && st.error() == api::Errno::kRoFs,
                        "checker workload: rename failed unexpectedly");
          oracle.stopped_rofs = true;
        }
      }
    } else {
      // Namespace churn: unlink; the open handle keeps the file writable
      // (and its extent alive) for the rest of the run.
      if (!f.unlinked &&
          oracle.unlinks < static_cast<std::uint32_t>(opt.files) / 2) {
        const api::Status st = co_await vfs.unlink(prefix + f.rel_name());
        if (st.ok()) {
          f.unlinked = true;
          // The earlier "fsynced => exists" fact is void: any later commit
          // (group commit included) may durably remove the name.
          f.full_synced = false;
          ++oracle.unlinks;
        } else {
          BIO_CHECK_MSG(fault_tolerant && st.error() == api::Errno::kRoFs,
                        "checker workload: unlink failed unexpectedly");
          oracle.stopped_rofs = true;
        }
      }
    }
    if (rng.chance(0.3))
      co_await vol.sim().delay(rng.uniform(1, 400) * 1_us);
    if (rng.chance(0.08))
      co_await vol.sim().delay(rng.uniform(2'000, 6'000) * 1_us);
  }
  oracle.finished = true;
}

std::string describe(const PageWrite& w) {
  std::ostringstream os;
  os << "lba=" << w.lba << " v=" << w.version << " epoch=" << w.epoch;
  return os.str();
}

/// BIO_CHK_DEBUG=1 diagnostic dump for a failed write check: where the
/// block's versions actually ended up (image, FTL mapping, transfer
/// history, log prefix). This is how the checker's findings get root-caused
/// down the stack.
void debug_dump_write(const char* what, const PageWrite& w,
                      const flash::StorageDevice::DurableImage& image,
                      core::Volume& vol) {
  if (std::getenv("BIO_CHK_DEBUG") == nullptr) return;
  auto img = image.blocks.find(w.lba);
  const auto mapped = vol.device().log().mapped_version(w.lba);
  std::fprintf(stderr, "DBG %s lba=%llu v=%llu image=%lld mapped=%lld\n",
               what, (unsigned long long)w.lba, (unsigned long long)w.version,
               img == image.blocks.end() ? -1 : (long long)img->second,
               mapped.has_value() ? (long long)*mapped : -1);
  for (const auto& e : vol.device().transfer_history())
    if (e.lba == w.lba)
      std::fprintf(stderr, "  xfer v=%llu epoch=%llu order=%llu\n",
                   (unsigned long long)e.version, (unsigned long long)e.epoch,
                   (unsigned long long)e.order);
  std::fprintf(stderr, "  log prefix=%llu appends=%llu cache_dirty=%zu\n",
               (unsigned long long)vol.device().log().programmed_prefix(),
               (unsigned long long)vol.device().log().append_count(),
               vol.device().cache().dirty_count());
}

/// A workload file as the shared namespace checks see it: its name history
/// and its inode — the common shape of FileOracle and wl::FileTrace.
struct NamespaceView {
  const std::vector<std::string>* names = nullptr;
  const fs::Inode* inode = nullptr;
};

/// Captures the durable image, recovers it from the volume's own journal
/// and fills the recovery facts of `res` — the boilerplate every verify
/// flavour shares.
struct Recovered {
  flash::StorageDevice::DurableImage image;
  fs::RecoveryReport report;
};

Recovered recover_volume(CrashCheckResult& res, core::Volume& vol) {
  res.journal_wraps = vol.fs().journal().stats().journal_wraps;
  res.journal_stalls = vol.fs().journal().stats().journal_stalls;
  res.checkpoint_flushes = vol.fs().journal().stats().checkpoint_flushes;
  Recovered r;
  r.image = vol.device().capture_durable_image();
  const fs::Recovery recovery(vol.fs().journal(), vol.fs().layout(),
                              vol.fs().config());
  r.report = recovery.recover(r.image.blocks);
  res.files_recovered = static_cast<std::uint32_t>(r.report.files.size());
  res.txns_replayed = r.report.txns_replayed;
  res.txns_discarded = r.report.txns_discarded;
  res.tail_truncated = r.report.tail_truncated;
  res.recovery_clean = r.report.clean();
  if (!r.report.clean())
    res.violations.push_back(
        "recovery silently corrupted " +
        std::to_string(r.report.corrupted_blocks.size()) +
        " home block(s) (stale log replay under a surviving commit)");
  return r;
}

/// Global recovered-namespace consistency — no duplicate or fabricated
/// names, extents inside the volume's data region, each recovered file over
/// an extent some workload file owns and under a name that extent actually
/// carried. Returns the recovered files indexed by extent base (the stable
/// file identity: handles stay open all run, so no extent ever recycles).
std::unordered_map<Lba, const fs::RecoveryReport::RecoveredFile*>
check_recovered_namespace(CrashCheckResult& res, core::Volume& vol,
                          const fs::RecoveryReport& report,
                          const std::vector<NamespaceView>& views) {
  auto violation = [&res](const std::string& what) {
    res.violations.push_back(what);
  };
  std::unordered_map<Lba, const fs::RecoveryReport::RecoveredFile*>
      by_extent;
  std::map<std::string, int> name_count;
  const Lba data_base = vol.fs().layout().data_base();
  const Lba data_end = vol.device().profile().geometry.physical_pages();
  for (const fs::RecoveryReport::RecoveredFile& rf : report.files) {
    ++res.namespace_facts_checked;
    if (++name_count[rf.name] > 1)
      violation("namespace: name " + rf.name + " recovered twice");
    // Every volume has its own LBA space starting at 0, so a *foreign*
    // volume's extent can be numerically in range — cross-volume leakage
    // is caught by the per-volume oracle (ownership + name history + data
    // versions), not by this range check, which catches extents corrupted
    // into the journal/inode region or past the device.
    if (rf.extent_base < data_base ||
        rf.extent_base + rf.extent_blocks > data_end)
      violation("namespace: " + rf.name +
                " recovered with an extent outside this volume's data "
                "region");
    if (const auto [pos, inserted] = by_extent.emplace(rf.extent_base, &rf);
        !inserted)
      violation("namespace: extent of " + rf.name +
                " also recovered as " + pos->second->name +
                " — one file under two names");
    const NamespaceView* owner = nullptr;
    for (const NamespaceView& v : views)
      if (v.inode != nullptr && v.inode->extent_base == rf.extent_base) {
        owner = &v;
        break;
      }
    if (owner == nullptr) {
      violation("namespace: recovered file " + rf.name +
                " maps to no extent the workload created");
      continue;
    }
    if (std::find(owner->names->begin(), owner->names->end(), rf.name) ==
        owner->names->end())
      violation("namespace: " + rf.name +
                " recovered over an extent that never carried that name");
  }
  return by_extent;
}

/// Captures the volume's durable image at the cut instant, recovers it
/// from the volume's own journal (and nothing else), and verifies the
/// volume's contract against its oracle. Fills `res`; returns the report
/// for the remount phase.
fs::RecoveryReport verify_volume(CrashCheckResult& res, core::Volume& vol,
                                 const Oracle& oracle, const Guarantees& g) {
  res.workload_finished = oracle.finished;
  res.quiesced = oracle.finished &&
                 vol.device().cache().dirty_count() == 0 &&
                 vol.device().queue_depth() == 0;
  res.renames_done = oracle.renames;
  res.unlinks_done = oracle.unlinks;

  Recovered rec = recover_volume(res, vol);
  fs::RecoveryReport& report = rec.report;
  const flash::StorageDevice::DurableImage& image = rec.image;

  auto violation = [&res](const std::string& what) {
    res.violations.push_back(what);
  };

  auto present = [&report](const PageWrite& w) {
    auto it = report.data.find(w.lba);
    return it != report.data.end() && it->second >= w.version;
  };

  std::vector<NamespaceView> views;
  views.reserve(oracle.files.size());
  for (const FileOracle& f : oracle.files)
    views.push_back({&f.rel_names, f.inode});
  const std::unordered_map<Lba, const fs::RecoveryReport::RecoveredFile*>
      by_extent = check_recovered_namespace(res, vol, report, views);

  const bool facts_apply_base = res.quiesced;
  for (const FileOracle& f : oracle.files) {
    const bool facts_apply = g.durable_acks || facts_apply_base;
    const fs::RecoveryReport::RecoveredFile* rf = nullptr;
    if (f.inode != nullptr) {
      auto it = by_extent.find(f.inode->extent_base);
      if (it != by_extent.end()) rf = it->second;
    }
    // 1. Acknowledged durability: every page covered by a returned
    //    durability_point()/sync_file() must have survived.
    if (g.durable_acks && f.has_acks) {
      for (const auto& [page, w] : f.acked) {
        ++res.acked_pages_checked;
        if (!present(w)) {
          violation(f.rel_name() + " page " + std::to_string(page) + " (" +
                    describe(w) + ") was acked durable but did not survive");
          debug_dump_write("acked", w, image, vol);
        }
      }
    }
    // 2. Epoch prefix ordering: a surviving write of epoch e proves every
    //    write of epochs < e survived.
    std::uint64_t max_present_epoch = 0;
    bool any_present = false;
    for (const PageWrite& w : f.writes)
      if (present(w)) {
        max_present_epoch = std::max(max_present_epoch, w.epoch);
        any_present = true;
      }
    for (const PageWrite& w : f.writes) {
      ++res.order_writes_checked;
      if (any_present && w.epoch < max_present_epoch && !present(w)) {
        violation(f.rel_name() + " write (" + describe(w) +
                  ") lost although epoch " +
                  std::to_string(max_present_epoch) +
                  " survived — ordering broken");
        debug_dump_write("order", w, image, vol);
      }
    }
    // 3. Delayed durability: once the device has quiesced, everything any
    //    sync point ever covered must be on media (OptFS's osync contract;
    //    trivially implied by durable_acks elsewhere).
    if (res.quiesced) {
      for (std::size_t i = 0; i < f.synced_upto; ++i) {
        const PageWrite& w = f.writes[i];
        if (!present(w))
          violation(f.rel_name() + " write (" + describe(w) +
                    ") not durable after quiescence");
      }
    }
    // 4. Namespace existence: a (still-named) file whose sync_file()
    //    returned must be recovered with at least the synced size. Without
    //    durable acks this only holds after quiescence.
    if (f.full_synced && facts_apply) {
      ++res.namespace_facts_checked;
      if (rf == nullptr)
        violation(f.rel_name() +
                  " was fsynced but does not exist after recovery");
      else if (rf->size_blocks < f.full_synced_size)
        violation(f.rel_name() + " recovered with size " +
                  std::to_string(rf->size_blocks) + " < synced size " +
                  std::to_string(f.full_synced_size));
    }
    // 5. Rename durability: sync_file() committed every rename before it,
    //    so the file may only recover under the synced name or a newer
    //    one (a later rename may have ridden a group commit).
    if (facts_apply && f.synced_name_idx > 0 && rf != nullptr) {
      ++res.namespace_facts_checked;
      const auto it = std::find(f.rel_names.begin(), f.rel_names.end(),
                                rf->name);
      if (it != f.rel_names.end() &&
          static_cast<std::size_t>(it - f.rel_names.begin()) <
              f.synced_name_idx)
        violation("namespace: " + rf->name +
                  " recovered although the rename to " +
                  f.rel_names[f.synced_name_idx] + " was durably synced");
    }
    // 6. Unlink durability: a sync_file() that returned after the unlink
    //    committed the removal — the file must not reappear.
    if (facts_apply && f.synced_after_unlink) {
      ++res.namespace_facts_checked;
      if (rf != nullptr)
        violation("namespace: " + rf->name +
                  " recovered although its unlink was durably synced");
    }
  }
  return report;
}

/// Fault-mode verification: the power-cut oracle restricted to the facts
/// that survive device faults (see run_fault_crash_check in the header).
/// The epoch-prefix ordering checks are deliberately absent — a bounded
/// retry legally re-lands a transiently failed write after later writes —
/// and every durability fact was recorded only when its sync returned kOk.
fs::RecoveryReport verify_fault_volume(CrashCheckResult& res,
                                       core::Volume& vol,
                                       const Oracle& oracle,
                                       const Guarantees& g) {
  res.workload_finished = oracle.finished;
  res.volume_degraded = vol.fs().degraded();
  res.syncs_failed = oracle.syncs_failed;
  // Quiescence additionally requires a live journal and a clean page
  // cache: an aborted journal never durably commits the writes its failed
  // transaction covered, and a hard-faulted writeback redirties its page —
  // fs-level dirt the workload may never have resubmitted.
  res.quiesced = oracle.finished && !res.volume_degraded &&
                 vol.device().cache().dirty_count() == 0 &&
                 vol.device().queue_depth() == 0 &&
                 vol.fs().page_cache().dirty_count() == 0;
  res.renames_done = oracle.renames;
  res.unlinks_done = oracle.unlinks;

  Recovered rec = recover_volume(res, vol);
  fs::RecoveryReport& report = rec.report;
  const flash::StorageDevice::DurableImage& image = rec.image;

  auto violation = [&res](const std::string& what) {
    res.violations.push_back(what);
  };
  auto present = [&report](const PageWrite& w) {
    auto it = report.data.find(w.lba);
    return it != report.data.end() && it->second >= w.version;
  };

  std::vector<NamespaceView> views;
  views.reserve(oracle.files.size());
  for (const FileOracle& f : oracle.files)
    views.push_back({&f.rel_names, f.inode});
  const std::unordered_map<Lba, const fs::RecoveryReport::RecoveredFile*>
      by_extent = check_recovered_namespace(res, vol, report, views);

  for (const FileOracle& f : oracle.files) {
    const bool facts_apply = g.durable_acks || res.quiesced;
    const fs::RecoveryReport::RecoveredFile* rf = nullptr;
    if (f.inode != nullptr) {
      auto it = by_extent.find(f.inode->extent_base);
      if (it != by_extent.end()) rf = it->second;
    }
    // 1. Acked durability survives faults: a kOk durable-ack return means
    //    the covered data is on media even when earlier IOs failed and
    //    were retried — and even when the journal aborted afterwards (the
    //    ack's transaction had already durably retired).
    if (g.durable_acks && f.has_acks) {
      for (const auto& [page, w] : f.acked) {
        ++res.acked_pages_checked;
        if (!present(w)) {
          violation(f.rel_name() + " page " + std::to_string(page) + " (" +
                    describe(w) +
                    ") was acked durable (kOk under faults) but did not "
                    "survive");
          debug_dump_write("fault-acked", w, image, vol);
        }
      }
    }
    // 2. Delayed durability at quiescence (live journal only): everything
    //    a kOk sync ever covered must be on media.
    if (res.quiesced) {
      for (std::size_t i = 0; i < f.synced_upto; ++i) {
        const PageWrite& w = f.writes[i];
        if (!present(w))
          violation(f.rel_name() + " write (" + describe(w) +
                    ") not durable after quiescence");
      }
    }
    // 3. Namespace facts, exactly as in the fault-free oracle — they were
    //    only recorded on kOk returns.
    if (f.full_synced && facts_apply) {
      ++res.namespace_facts_checked;
      if (rf == nullptr)
        violation(f.rel_name() +
                  " was fsynced but does not exist after recovery");
      else if (rf->size_blocks < f.full_synced_size)
        violation(f.rel_name() + " recovered with size " +
                  std::to_string(rf->size_blocks) + " < synced size " +
                  std::to_string(f.full_synced_size));
    }
    if (facts_apply && f.synced_name_idx > 0 && rf != nullptr) {
      ++res.namespace_facts_checked;
      const auto it = std::find(f.rel_names.begin(), f.rel_names.end(),
                                rf->name);
      if (it != f.rel_names.end() &&
          static_cast<std::size_t>(it - f.rel_names.begin()) <
              f.synced_name_idx)
        violation("namespace: " + rf->name +
                  " recovered although the rename to " +
                  f.rel_names[f.synced_name_idx] + " was durably synced");
    }
    if (facts_apply && f.synced_after_unlink) {
      ++res.namespace_facts_checked;
      if (rf != nullptr)
        violation("namespace: " + rf->name +
                  " recovered although its unlink was durably synced");
    }
  }
  return report;
}

/// Sweep crash-instant stream: mostly mid-workload cuts, with a slice of
/// late cuts exercising the quiesced (delayed-durability) contract. One
/// generator shared by both sweep flavours so they always test the same
/// crash-point population.
class CrashPointGen {
 public:
  explicit CrashPointGen(std::uint64_t base_seed)
      : rng_(base_seed * 7919 + 17) {}

  sim::SimTime next() {
    return rng_.chance(0.2) ? rng_.uniform(60'000, 300'000) * 1_us
                            : rng_.uniform(100, 60'000) * 1_us;
  }

 private:
  sim::Rng rng_;
};

/// The `q<N>` --repro segment carrying the block layer's queue count.
/// Empty at the single-queue default, so pre-multi-queue specs stay valid
/// and single-queue failures replay with the exact strings they always had.
std::string repro_queue_segment(std::uint32_t nr_queues) {
  return nr_queues == 1 ? std::string() : ":q" + std::to_string(nr_queues);
}

/// Records a failed point in both human-readable and machine-replayable
/// form. `repro` is the examples/crash_consistency --repro spec prefix
/// ("EXT4-DR", "conc:EXT4-DR:q4", "node"); every failure line ends with the
/// exact flag that replays just that case.
void note_failure(CrashSweepResult& sweep, const std::string& repro,
                  const char* kind_tag, int point, std::uint64_t base_seed,
                  const CrashCheckResult& r) {
  if (sweep.failures.size() < 32)
    sweep.failures.push_back(
        {point, r.seed, r.crash_at, r.violations.front()});
  if (sweep.sample_violations.size() < 8) {
    std::ostringstream os;
    os << kind_tag << " seed=" << r.seed << " crash=" << r.crash_at
       << "ns point=" << point << ": " << r.violations.front()
       << " (replay: --repro " << repro << ":" << base_seed << ":" << point
       << ")";
    sweep.sample_violations.push_back(os.str());
  }
}

/// Shared sweep driver, parallel-safe by construction: one serial
/// CrashPointGen pass precomputes every point's crash instant (the exact
/// draw order of the legacy loop), a sim::HostPool runs the points across
/// up to `jobs` host threads — each point builds its own core::Stack and
/// derives its seed from its index alone — and the results fold into the
/// aggregate in canonical point order. accumulate() and note_failure()
/// therefore see the identical sequence at any jobs value, making a
/// parallel sweep bit-identical to a serial one (counters, first-32
/// failure coordinates, first-8 --repro sample strings).
template <typename CheckFn>
CrashSweepResult sweep_points(int points, std::uint64_t base_seed, int jobs,
                              const std::string& repro, const char* kind_tag,
                              const CheckFn& check) {
  CrashSweepResult sweep;
  if (points <= 0) return sweep;
  CrashPointGen gen(base_seed);
  std::vector<sim::SimTime> crash_at(static_cast<std::size_t>(points));
  for (sim::SimTime& t : crash_at) t = gen.next();

  std::vector<CrashCheckResult> results(static_cast<std::size_t>(points));
  const sim::HostPool pool(jobs);
  // iolint: detached-owner(for_each_index joins its workers before
  // returning; the capture cannot outlive this frame)
  pool.for_each_index(points, [&](int i) {
    const auto idx = static_cast<std::size_t>(i);
    results[idx] =
        check(base_seed + static_cast<std::uint64_t>(i), crash_at[idx]);
  });

  for (int i = 0; i < points; ++i) {
    const CrashCheckResult& res = results[static_cast<std::size_t>(i)];
    sweep.accumulate(res);
    if (!res.ok()) {
      ++sweep.failed_points;
      note_failure(sweep, repro, kind_tag, i, base_seed, res);
    }
  }
  return sweep;
}

/// Remount-phase verification: the recovered image must yield a fully
/// usable volume behind the (possibly multi-volume) fresh node's Vfs.
sim::Task remount_verify(api::Vfs& vfs, std::string prefix,
                         const fs::RecoveryReport& report,
                         std::string& err) {
  for (const auto& rf : report.files) {
    api::Result<api::File> r = co_await vfs.open(prefix + rf.name, {});
    if (!r.ok()) {
      err = "open(" + prefix + rf.name + ") failed on remount";
      co_return;
    }
    api::File h = r.value();
    if (h.size_blocks().value() != rf.size_blocks) {
      err = prefix + rf.name + " remounted with wrong size";
      co_return;
    }
    must(h.close());
  }
  // The recovered filesystem must be fully usable: write + full sync.
  api::OpenOptions oo;
  oo.create = true;
  api::Result<api::File> r = co_await vfs.open(prefix + "post-crash", oo);
  if (!r.ok()) {
    err = "create failed on remounted stack";
    co_return;
  }
  api::File h = r.value();
  api::Result<std::uint32_t> w = co_await h.pwrite(0, 2);
  api::Status s = co_await h.sync_file();
  if (!w.ok() || !s.ok()) err = "write+sync failed on remounted stack";
  must(h.close());
}

}  // namespace

CrashCheckResult run_crash_check(StackKind kind, std::uint64_t seed,
                                 sim::SimTime crash_at,
                                 const CrashCheckOptions& opt) {
  CrashCheckResult res;
  res.seed = seed;
  res.crash_at = crash_at;
  const Guarantees g = guarantees_of(kind);
  const core::StackConfig cfg = checker_config(kind, opt);

  auto stack = std::make_unique<core::Stack>(cfg);
  stack->start();
  api::Vfs vfs(*stack);
  Oracle oracle;
  // iolint: detached-owner(run_until() below drives the task; the power
  // cut discards any survivor before stack/vfs/oracle leave scope)
  stack->sim().spawn(
      "chk:wl", workload(stack->volume(0), vfs, "", oracle, opt, g, seed));
  stack->sim().run_until(crash_at);  // power cut

  const fs::RecoveryReport report =
      verify_volume(res, stack->volume(0), oracle, g);

  // ---- remount a fresh stack over the recovered image --------------------
  if (opt.remount) {
    auto stack2 = std::make_unique<core::Stack>(cfg);
    stack2->fs().mount(report);
    stack2->start();
    api::Vfs vfs2(*stack2);
    std::string err;
    // iolint: detached-owner(run() below drains the verifier before
    // vfs2/report/err leave scope)
    stack2->sim().spawn("chk:verify",
                        remount_verify(vfs2, "", report, err));
    stack2->sim().run();
    if (!err.empty()) res.violations.push_back("remount: " + err);
  }

  return res;
}

void CrashSweepResult::accumulate(const CrashCheckResult& r) {
  ++points;
  if (r.quiesced) ++quiesced_points;
  faults_injected += r.faults_injected;
  io_retries += r.io_retries;
  io_failures += r.io_failures;
  syncs_failed += r.syncs_failed;
  if (r.volume_degraded) ++degraded_points;
  acked_pages_checked += r.acked_pages_checked;
  order_writes_checked += r.order_writes_checked;
  namespace_facts_checked += r.namespace_facts_checked;
  renames_done += r.renames_done;
  unlinks_done += r.unlinks_done;
  journal_wraps += r.journal_wraps;
  journal_stalls += r.journal_stalls;
  files_recovered += r.files_recovered;
  syncs_recorded += r.syncs_recorded;
  fd_cycles += r.fd_cycles;
  closes_during_sync += r.closes_during_sync;
  chain_facts_checked += r.chain_facts_checked;
}

sim::SimTime sweep_crash_at(std::uint64_t base_seed, int point) {
  CrashPointGen gen(base_seed);
  sim::SimTime t = 0;
  for (int i = 0; i <= point; ++i) t = gen.next();
  return t;
}

CrashSweepResult run_crash_sweep(StackKind kind, int points,
                                 std::uint64_t base_seed,
                                 const CrashCheckOptions& opt, int jobs) {
  return sweep_points(points, base_seed, jobs,
                      core::to_string(kind) +
                          repro_queue_segment(opt.nr_queues),
                      core::to_string(kind),
                      [kind, &opt](std::uint64_t seed, sim::SimTime crash_at) {
                        return run_crash_check(kind, seed, crash_at, opt);
                      });
}

// ---- fault-injection crash sweep --------------------------------------------

CrashCheckResult run_fault_crash_check(StackKind kind, std::uint64_t seed,
                                       sim::SimTime crash_at,
                                       const FaultCrashOptions& opt) {
  CrashCheckResult res;
  res.seed = seed;
  res.crash_at = crash_at;
  const Guarantees g = guarantees_of(kind);
  const core::StackConfig cfg = checker_config(kind, opt.wl);

  // The plan outlives the stack (the device holds a raw pointer) and is
  // installed before start(), so the per-class op ordinals it matches are
  // deterministic for a given (kind, seed, options).
  flash::FaultPlan plan =
      flash::FaultPlan::random(seed, opt.expected_write_ops, opt.max_faults);
  auto stack = std::make_unique<core::Stack>(cfg);
  stack->device().install_fault_plan(&plan);
  if (opt.swallow_io_errors)
    stack->blk().set_swallow_io_errors_for_test(true);
  stack->start();
  api::Vfs vfs(*stack);
  Oracle oracle;
  // iolint: detached-owner(run_until() below drives the task; the power
  // cut discards any survivor before stack/vfs/oracle leave scope)
  stack->sim().spawn("chk:wl",
                     workload(stack->volume(0), vfs, "", oracle, opt.wl, g,
                              seed, /*fault_tolerant=*/true));
  stack->sim().run_until(crash_at);  // power cut

  res.faults_injected = plan.stats().total();
  res.io_retries = stack->blk().stats().io_retries;
  res.io_failures = stack->blk().stats().io_failures;

  const fs::RecoveryReport report =
      verify_fault_volume(res, stack->volume(0), oracle, g);

  // ---- remount a fresh (fault-free) stack over the recovered image -------
  // This is the errors=remount-ro repair path: even a volume the journal
  // abort degraded must recover read-consistent from its last durable
  // commit and come back fully usable.
  if (opt.wl.remount) {
    auto stack2 = std::make_unique<core::Stack>(cfg);
    stack2->fs().mount(report);
    stack2->start();
    api::Vfs vfs2(*stack2);
    std::string err;
    // iolint: detached-owner(run() below drains the verifier before
    // vfs2/report/err leave scope)
    stack2->sim().spawn("chk:verify", remount_verify(vfs2, "", report, err));
    stack2->sim().run();
    if (!err.empty()) res.violations.push_back("remount: " + err);
  }
  return res;
}

CrashSweepResult run_fault_crash_sweep(StackKind kind, int points,
                                       std::uint64_t base_seed,
                                       const FaultCrashOptions& opt,
                                       int jobs) {
  return sweep_points(
      points, base_seed, jobs,
      std::string("fault:") + core::to_string(kind) +
          repro_queue_segment(opt.wl.nr_queues),
      core::to_string(kind),
      [kind, &opt](std::uint64_t seed, sim::SimTime crash_at) {
        return run_fault_crash_check(kind, seed, crash_at, opt);
      });
}

// ---- multi-volume node ------------------------------------------------------

MultiVolumeCrashResult run_multi_volume_crash_check(
    const std::vector<StackKind>& kinds, std::uint64_t seed,
    sim::SimTime crash_at, const CrashCheckOptions& opt) {
  BIO_CHECK_MSG(!kinds.empty(), "multi-volume check with zero volumes");
  MultiVolumeCrashResult res;
  res.seed = seed;
  res.crash_at = crash_at;

  auto make_node_cfg = [&]() {
    std::vector<core::StackConfig> bases;
    for (StackKind kind : kinds) bases.push_back(checker_config(kind, opt));
    return core::NodeConfig::from(bases);
  };
  auto prefix_of = [](std::size_t i) {
    return "/v" + std::to_string(i) + "/";
  };

  auto node = std::make_unique<core::Stack>(make_node_cfg());
  node->start();
  api::Vfs vfs(*node);
  std::vector<Oracle> oracles(kinds.size());
  std::vector<Guarantees> gs(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    gs[i] = guarantees_of(kinds[i]);
    // Distinct per-volume streams derived from the point seed.
    const std::uint64_t vseed =
        seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    // iolint: detached-owner(run_until() below drives every volume's task;
    // the power cut discards survivors before node/vfs/oracles leave scope)
    node->sim().spawn("chk:wl:v" + std::to_string(i),
                      workload(node->volume(i), vfs, prefix_of(i),
                               oracles[i], opt, gs[i], vseed));
  }
  node->sim().run_until(crash_at);  // one power cut hits every volume

  std::vector<fs::RecoveryReport> reports;
  reports.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    CrashCheckResult r;
    r.seed = seed;
    r.crash_at = crash_at;
    reports.push_back(verify_volume(r, node->volume(i), oracles[i], gs[i]));
    res.volumes.push_back(std::move(r));
  }

  // ---- remount a fresh node over the recovered images --------------------
  if (opt.remount) {
    auto node2 = std::make_unique<core::Stack>(make_node_cfg());
    for (std::size_t i = 0; i < kinds.size(); ++i)
      node2->volume(i).fs().mount(reports[i]);
    node2->start();
    api::Vfs vfs2(*node2);
    std::vector<std::string> errs(kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i)
      // iolint: detached-owner(run() below drains every verifier before
      // vfs2/reports/errs leave scope)
      node2->sim().spawn(
          "chk:verify:v" + std::to_string(i),
          remount_verify(vfs2, prefix_of(i), reports[i], errs[i]));
    node2->sim().run();
    for (std::size_t i = 0; i < kinds.size(); ++i)
      if (!errs[i].empty())
        res.volumes[i].violations.push_back("remount: " + errs[i]);
  }
  return res;
}

// ---- concurrent multi-writer checker ---------------------------------------

namespace {

// Syscall-semantics classification per stack kind — the *claimed* contract
// (EXT4-OD claims the same acks as EXT4-DR and is expected to break them).

/// Every sync syscall is an order point on its file.
bool call_orders(api::Syscall c) { return c != api::Syscall::kNone; }

/// Data covered by the call is on media when it returns.
bool call_acks_data(StackKind kind, api::Syscall c) {
  if (kind == StackKind::kOptFs) return c == api::Syscall::kDsync;
  return c == api::Syscall::kFsync || c == api::Syscall::kFdatasync;
}

/// i_size as of the call's start is durable when it returns (fdatasync
/// journals size changes — the metadata needed to retrieve the data).
bool call_acks_size(StackKind kind, api::Syscall c) {
  if (kind == StackKind::kOptFs) return false;  // metadata stays delayed
  return c == api::Syscall::kFsync || c == api::Syscall::kFdatasync;
}

/// Namespace ops (rename/unlink) completed before the call are durable
/// when it returns.
bool call_acks_name(StackKind kind, api::Syscall c) {
  if (kind == StackKind::kOptFs) return false;
  return c == api::Syscall::kFsync;
}

/// The call commits the inode's metadata transaction whenever it is dirty;
/// quiescence then makes that commit durable on every stack — the gate for
/// delayed namespace/size facts on the ordering-only stacks.
bool call_commits_meta(api::Syscall c) {
  return c == api::Syscall::kFsync || c == api::Syscall::kFbarrier ||
         c == api::Syscall::kOsync || c == api::Syscall::kDsync;
}

std::string describe(const wl::TraceWrite& w) {
  std::ostringstream os;
  os << "lba=" << w.lba << " v=" << w.version << " page=" << w.page
     << " writer=" << w.writer << " [" << w.start_tick << "," << w.done_tick
     << "]";
  return os.str();
}

/// Verifies the merged cross-writer contract of one volume against its
/// ConcurrentTrace; fills `res` and returns the report for remount.
fs::RecoveryReport verify_concurrent_volume(CrashCheckResult& res,
                                            core::Volume& vol,
                                            const wl::ConcurrentTrace& trace,
                                            StackKind kind) {
  res.workload_finished = trace.finished();
  res.quiesced = trace.finished() &&
                 vol.device().cache().dirty_count() == 0 &&
                 vol.device().queue_depth() == 0;
  res.renames_done = trace.renames;
  res.unlinks_done = trace.unlinks;
  res.fd_cycles = trace.fd_cycles;
  res.closes_during_sync = trace.closes_during_sync;

  Recovered rec = recover_volume(res, vol);
  fs::RecoveryReport& report = rec.report;

  auto violation = [&res](const std::string& what) {
    res.violations.push_back(what);
  };
  auto present = [&report](const wl::TraceWrite& w) {
    auto it = report.data.find(w.lba);
    return it != report.data.end() && it->second >= w.version;
  };
  auto dump = [&](const char* what, const wl::TraceWrite& w) {
    debug_dump_write(what, PageWrite{w.lba, w.version, 0}, rec.image, vol);
  };

  std::vector<NamespaceView> views;
  views.reserve(trace.files.size());
  for (const wl::FileTrace& f : trace.files)
    views.push_back({&f.rel_names, f.inode});
  const std::unordered_map<Lba, const fs::RecoveryReport::RecoveredFile*>
      by_extent = check_recovered_namespace(res, vol, report, views);

  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  for (const wl::FileTrace& f : trace.files) {
    res.syncs_recorded += static_cast<std::uint32_t>(f.syncs.size());
    const fs::RecoveryReport::RecoveredFile* rf = nullptr;
    if (f.inode != nullptr) {
      auto it = by_extent.find(f.inode->extent_base);
      if (it != by_extent.end()) rf = it->second;
    }

    // Aggregate the returned syncs' promises. Only strictly-ordered pairs
    // count: a sync covers writes that *completed* before it *started*, and
    // constrains writes that *started* after it *returned* — operations
    // racing the sync on either side are promised nothing.
    std::uint64_t max_ack_start = 0;
    std::uint32_t size_floor = 0;
    std::size_t name_idx_floor = 0;
    bool any_exist_fact = false;
    bool unlink_committed = false;
    for (const wl::TraceSync& s : f.syncs) {
      if (call_acks_data(kind, s.call))
        max_ack_start = std::max(max_ack_start, s.start_tick);
      if (call_acks_size(kind, s.call) ||
          (res.quiesced && call_orders(s.call)))
        size_floor = std::max(size_floor, s.settled_size_at_start);
      if (call_acks_name(kind, s.call) ||
          (res.quiesced && call_commits_meta(s.call))) {
        name_idx_floor = std::max(name_idx_floor, s.name_idx_at_start);
        if (s.unlinked_at_start)
          unlink_committed = true;
        else
          any_exist_fact = true;
      }
    }

    // 1. Acked durability across writers and fds: a write (any writer)
    //    that completed before a durable-ack sync (any fd of the file)
    //    started must have survived.
    for (const wl::TraceWrite& w : f.writes) {
      if (w.done_tick < max_ack_start) {
        ++res.acked_pages_checked;
        if (!present(w)) {
          violation(f.rel_name() + " write (" + describe(w) +
                    ") was acked durable but did not survive");
          dump("conc-acked", w);
          if (std::getenv("BIO_CHK_DEBUG") != nullptr)
            for (const wl::TraceSync& s : f.syncs)
              std::fprintf(stderr,
                           "  sync call=%d writer=%u [%llu,%llu] acks=%d\n",
                           int(s.call), s.writer,
                           (unsigned long long)s.start_tick,
                           (unsigned long long)s.done_tick,
                           int(call_acks_data(kind, s.call)));
        }
      }
    }

    // 2. Cross-writer epoch prefix: if any write that started after a
    //    returned order point survives, every write that completed before
    //    that order point started must have survived. ready_at(w) is the
    //    earliest return among order points that started after w
    //    completed; a surviving write with a later start proves w.
    // 3. Delayed durability: once the device quiesced, every write some
    //    returned sync covered must be on media.
    std::uint64_t max_surviving_start = 0;
    for (const wl::TraceWrite& w : f.writes)
      if (present(w))
        max_surviving_start = std::max(max_surviving_start, w.start_tick);
    for (const wl::TraceWrite& w : f.writes) {
      ++res.order_writes_checked;
      std::uint64_t ready_at = kNever;
      for (const wl::TraceSync& s : f.syncs)
        if (call_orders(s.call) && s.start_tick > w.done_tick)
          ready_at = std::min(ready_at, s.done_tick);
      if (present(w)) continue;
      if (ready_at < max_surviving_start) {
        violation(f.rel_name() + " write (" + describe(w) +
                  ") lost although a later write survived past the order "
                  "point covering it — cross-writer ordering broken");
        dump("conc-order", w);
      } else if (res.quiesced && ready_at != kNever) {
        violation(f.rel_name() + " write (" + describe(w) +
                  ") not durable after quiescence");
        dump("conc-quiesce", w);
      }
    }

    // 4. Existence + size floor: a never-unlinked file with a durable
    //    full-sync fact must exist, with at least the size the syncs
    //    settled.
    if (!f.unlinked && any_exist_fact) {
      ++res.namespace_facts_checked;
      if (rf == nullptr)
        violation(f.rel_name() +
                  " was durably synced but does not exist after recovery");
    }
    if (rf != nullptr && size_floor > 0) {
      ++res.namespace_facts_checked;
      if (rf->size_blocks < size_floor)
        violation(f.rel_name() + " recovered with size " +
                  std::to_string(rf->size_blocks) + " < synced size " +
                  std::to_string(size_floor));
    }

    // 5. Rename durability under contention: once a sync committed the
    //    rename history up to name_idx_floor, only that or a newer name
    //    may recover.
    if (name_idx_floor > 0 && rf != nullptr) {
      ++res.namespace_facts_checked;
      const auto it =
          std::find(f.rel_names.begin(), f.rel_names.end(), rf->name);
      if (it != f.rel_names.end() &&
          static_cast<std::size_t>(it - f.rel_names.begin()) <
              name_idx_floor)
        violation("namespace: " + rf->name +
                  " recovered although the rename to " +
                  f.rel_names[name_idx_floor] + " was durably synced");
    }

    // 6. Unlink durability: a sync that returned after the unlink
    //    completed committed the removal.
    if (unlink_committed) {
      ++res.namespace_facts_checked;
      if (rf != nullptr)
        violation("namespace: " + rf->name +
                  " recovered although its unlink was durably synced");
    }

    // 7. Linked-chain contract (api::Ring workloads; the vectors are empty
    //    on direct-Vfs traces). chain_covered/chain_successors come from
    //    the chain's SUBMISSION structure, not observed timing, so a ring
    //    that ignores its link flags still produces these claims — and the
    //    reordering it allowed shows up as violations here even when the
    //    tick-based rules above (which adapt to actual behaviour) say
    //    nothing.
    for (const wl::TraceSync& s : f.syncs) {
      if (s.chain_covered.empty()) continue;
      const bool acks = call_acks_data(kind, s.call);
      bool successor_present = false;
      for (const std::size_t si : s.chain_successors)
        if (present(f.writes[si])) successor_present = true;
      for (const std::size_t ci : s.chain_covered) {
        const wl::TraceWrite& w = f.writes[ci];
        ++res.chain_facts_checked;
        if (present(w)) continue;
        if (acks) {
          // (a) The chain's sync returned, so every write linked before
          //     it was acked durable.
          violation(f.rel_name() + " chain write (" + describe(w) +
                    ") linked before a returned " +
                    "durable sync did not survive");
          dump("chain-acked", w);
        } else if (successor_present) {
          // (b) A write linked after the sync reached media, so the link
          //     order says every write linked before it must have too.
          violation(f.rel_name() + " chain write (" + describe(w) +
                    ") lost although a write linked after its chain's "
                    "sync survived — linked-chain ordering broken");
          dump("chain-order", w);
        } else if (res.quiesced && call_orders(s.call)) {
          // (c) Delayed durability: the chain's returned sync covered it.
          violation(f.rel_name() + " chain write (" + describe(w) +
                    ") not durable after quiescence");
          dump("chain-quiesce", w);
        }
      }
    }
  }
  return report;
}

}  // namespace

CrashCheckResult run_concurrent_crash_check(StackKind kind,
                                            std::uint64_t seed,
                                            sim::SimTime crash_at,
                                            const ConcurrentCrashOptions& opt) {
  CrashCheckResult res;
  res.seed = seed;
  res.crash_at = crash_at;
  const core::StackConfig cfg = checker_config(
      kind, opt.journal_blocks, opt.wl.extent_blocks, opt.nr_queues);

  // The trace outlives the stack: suspended writer frames destroyed at
  // simulator teardown may still name it (they never touch it then, but
  // the ordering keeps the invariant obvious).
  wl::ConcurrentTrace trace;
  auto stack = std::make_unique<core::Stack>(cfg);
  stack->start();
  api::Vfs vfs(*stack);
  wl::ConcurrentWritersParams params = opt.wl;
  params.seed = seed;
  wl::spawn_concurrent_writers(stack->volume(0), vfs, "", params, trace);
  stack->sim().run_until(crash_at);  // power cut

  const fs::RecoveryReport report =
      verify_concurrent_volume(res, stack->volume(0), trace, kind);

  if (opt.remount) {
    auto stack2 = std::make_unique<core::Stack>(cfg);
    stack2->fs().mount(report);
    stack2->start();
    api::Vfs vfs2(*stack2);
    std::string err;
    // iolint: detached-owner(run() below drains the verifier before
    // vfs2/report/err leave scope)
    stack2->sim().spawn("chk:verify", remount_verify(vfs2, "", report, err));
    stack2->sim().run();
    if (!err.empty()) res.violations.push_back("remount: " + err);
  }
  return res;
}

CrashSweepResult run_concurrent_crash_sweep(StackKind kind, int points,
                                            std::uint64_t base_seed,
                                            const ConcurrentCrashOptions& opt,
                                            int jobs) {
  return sweep_points(
      points, base_seed, jobs,
      std::string("conc:") + core::to_string(kind) +
          repro_queue_segment(opt.nr_queues),
      core::to_string(kind),
      [kind, &opt](std::uint64_t seed, sim::SimTime crash_at) {
        return run_concurrent_crash_check(kind, seed, crash_at, opt);
      });
}

// ---- ring-driven concurrent checker ----------------------------------------

CrashCheckResult run_ring_crash_check(StackKind kind, std::uint64_t seed,
                                      sim::SimTime crash_at,
                                      const RingCrashOptions& opt) {
  CrashCheckResult res;
  res.seed = seed;
  res.crash_at = crash_at;
  const core::StackConfig cfg = checker_config(
      kind, opt.journal_blocks, opt.wl.extent_blocks, opt.nr_queues);

  // The trace outlives the stack, exactly as in the direct concurrent
  // check: ring drivers and writer frames destroyed at simulator teardown
  // may still name it.
  wl::ConcurrentTrace trace;
  auto stack = std::make_unique<core::Stack>(cfg);
  stack->start();
  api::Vfs vfs(*stack);
  wl::RingWorkloadParams params = opt.wl;
  params.seed = seed;
  wl::spawn_ring_writers(stack->volume(0), vfs, "", params, trace);
  stack->sim().run_until(crash_at);  // power cut

  const fs::RecoveryReport report =
      verify_concurrent_volume(res, stack->volume(0), trace, kind);

  if (opt.remount) {
    auto stack2 = std::make_unique<core::Stack>(cfg);
    stack2->fs().mount(report);
    stack2->start();
    api::Vfs vfs2(*stack2);
    std::string err;
    // iolint: detached-owner(run() below drains the verifier before
    // vfs2/report/err leave scope)
    stack2->sim().spawn("chk:verify", remount_verify(vfs2, "", report, err));
    stack2->sim().run();
    if (!err.empty()) res.violations.push_back("remount: " + err);
  }
  return res;
}

CrashSweepResult run_ring_crash_sweep(StackKind kind, int points,
                                      std::uint64_t base_seed,
                                      const RingCrashOptions& opt, int jobs) {
  return sweep_points(
      points, base_seed, jobs,
      std::string("ring:") + core::to_string(kind) +
          repro_queue_segment(opt.nr_queues),
      core::to_string(kind),
      [kind, &opt](std::uint64_t seed, sim::SimTime crash_at) {
        return run_ring_crash_check(kind, seed, crash_at, opt);
      });
}

MultiVolumeSweepResult run_multi_volume_crash_sweep(
    const std::vector<StackKind>& kinds, int points, std::uint64_t base_seed,
    const CrashCheckOptions& opt, int jobs) {
  MultiVolumeSweepResult sweep;
  sweep.volumes.resize(kinds.size());
  if (points <= 0) return sweep;
  // Same shape as sweep_points, with the per-volume merge inline: serial
  // instant precompute, parallel point execution, canonical-order fold.
  CrashPointGen gen(base_seed);
  std::vector<sim::SimTime> crash_ats(static_cast<std::size_t>(points));
  for (sim::SimTime& t : crash_ats) t = gen.next();

  std::vector<MultiVolumeCrashResult> results(
      static_cast<std::size_t>(points));
  const sim::HostPool hpool(jobs);
  // iolint: detached-owner(for_each_index joins its workers before
  // returning; the capture cannot outlive this frame)
  hpool.for_each_index(points, [&](int p) {
    const auto idx = static_cast<std::size_t>(p);
    results[idx] = run_multi_volume_crash_check(
        kinds, base_seed + static_cast<std::uint64_t>(p), crash_ats[idx],
        opt);
  });

  for (int i = 0; i < points; ++i) {
    const MultiVolumeCrashResult& res = results[static_cast<std::size_t>(i)];
    ++sweep.points;
    bool failed = false;
    for (std::size_t v = 0; v < kinds.size(); ++v) {
      const CrashCheckResult& r = res.volumes[v];
      CrashSweepResult& agg = sweep.volumes[v];
      agg.accumulate(r);
      if (!r.ok()) {
        ++agg.failed_points;
        failed = true;
        const std::string tag =
            std::string(core::to_string(kinds[v])) + "@v" + std::to_string(v);
        if (sweep.sample_violations.size() < 8) {
          std::ostringstream os;
          os << tag << " seed=" << r.seed << " crash=" << r.crash_at
             << "ns point=" << i << ": " << r.violations.front()
             << " (replay: --repro node" << repro_queue_segment(opt.nr_queues)
             << ":" << base_seed << ":" << i << ")";
          sweep.sample_violations.push_back(os.str());
        }
      }
    }
    if (failed) ++sweep.failed_points;
  }
  return sweep;
}

}  // namespace bio::chk
