#include "api/vfs.h"

#include <algorithm>
#include <utility>

namespace bio::api {

bool journal_supports(Syscall call, fs::JournalKind journal) {
  switch (call) {
    case Syscall::kFdatabarrier:
      return journal == fs::JournalKind::kBarrierFs;
    case Syscall::kFbarrier:  // BarrierFS native; OptFS maps it to osync
      return journal != fs::JournalKind::kJbd2;
    case Syscall::kOsync:
    case Syscall::kDsync:
      return journal == fs::JournalKind::kOptFs;
    case Syscall::kNone:
    case Syscall::kFsync:
    case Syscall::kFdatasync:
      return true;
  }
  return true;
}

// ---- mount table ------------------------------------------------------------

Vfs::Vfs(fs::Filesystem& filesystem, SyncPolicy policy) {
  must(mount("", filesystem, policy));
}

Vfs::Vfs(core::Stack& stack) {
  for (const std::unique_ptr<core::Volume>& v : stack.volumes())
    must(mount(v->name(), v->fs(), SyncPolicy::for_stack(v->kind())));
}

Vfs::Mount* Vfs::find_mount(std::string_view name) const noexcept {
  for (const std::unique_ptr<Mount>& m : mounts_)
    if (m->name == name) return m.get();
  return nullptr;
}

Status Vfs::mount(std::string name, fs::Filesystem& filesystem,
                  SyncPolicy policy) {
  // A mount name is one path component; an embedded '/' could never be
  // routed (resolve() matches only the first component).
  if (name.find('/') != std::string::npos) return fail(Errno::kInval);
  if (find_mount(name) != nullptr) return fail(Errno::kExist);
  auto m = std::make_unique<Mount>();
  m->name = std::move(name);
  m->filesystem = &filesystem;
  m->policy = policy;
  mounts_.push_back(std::move(m));
  return {};
}

Status Vfs::remount(const std::string& name, fs::Filesystem& filesystem) {
  Mount* m = find_mount(name);
  if (m == nullptr) return fail(Errno::kNoEnt);
  m->filesystem = &filesystem;
  return {};
}

const Vfs::Stats* Vfs::stats_of(const std::string& name) const noexcept {
  const Mount* m = find_mount(name);
  return m == nullptr ? nullptr : &m->stats;
}

fs::Filesystem* Vfs::filesystem_of(const std::string& name) noexcept {
  Mount* m = find_mount(name);
  return m == nullptr ? nullptr : m->filesystem;
}

const SyncPolicy& Vfs::default_policy() const noexcept {
  return mounts_.front()->policy;
}

fs::Filesystem& Vfs::filesystem() noexcept {
  return *mounts_.front()->filesystem;
}

sim::Simulator& Vfs::simulator() noexcept {
  return mounts_.front()->filesystem->sim();
}

Result<fs::JournalKind> Vfs::journal_kind(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->fs->config().journal;
}

Result<std::uint32_t> Vfs::ino_of(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->inode->ino;
}

Result<Vfs::Target> Vfs::resolve(const std::string& name) const {
  if (name.empty()) return Errno::kInval;
  if (name.front() == '/') {
    const std::size_t sep = name.find('/', 1);
    if (sep != std::string::npos) {
      const std::string_view comp(name.data() + 1, sep - 1);
      if (Mount* m = find_mount(comp); m != nullptr && !comp.empty()) {
        if (sep + 1 == name.size()) return Errno::kInval;  // "/vol/"
        return Target{m, name.substr(sep + 1)};
      }
    } else {
      // "/vol" denotes the mount point itself, not a file in it.
      const std::string_view comp(name.data() + 1, name.size() - 1);
      if (!comp.empty() && find_mount(comp) != nullptr) return Errno::kInval;
    }
  }
  // No mount component matched: the root mount owns the whole name.
  if (Mount* root = find_mount(""); root != nullptr)
    return Target{root, name};
  return Errno::kNoEnt;
}

// ---- descriptor-table plumbing ---------------------------------------------

Vfs::FdEntry* Vfs::entry(Fd fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      fds_[static_cast<std::size_t>(fd)].vnode == nullptr)
    return nullptr;
  return &fds_[static_cast<std::size_t>(fd)];
}

const Vfs::FdEntry* Vfs::entry(Fd fd) const {
  return const_cast<Vfs*>(this)->entry(fd);
}

Errno Vfs::fail(Errno e) const {
  ++stats_.errors;
  return e;
}

Errno Vfs::fail(Mount& m, Errno e) const {
  ++m.stats.errors;
  return fail(e);
}

Status Vfs::sync_epilogue(Fd fd, std::uint64_t gen, Vnode& vn, Mount& m,
                          fs::FsStatus st) {
  switch (st) {
    case fs::FsStatus::kRoFs:
      return fail(m, Errno::kRoFs);
    case fs::FsStatus::kIo:
      // This call's own commit died; the abort already degraded the
      // volume, so later syscalls see EROFS — the errseq below therefore
      // never double-reports on top of this EIO.
      return fail(m, Errno::kIo);
    case fs::FsStatus::kOk:
      break;
  }
  // errseq: a data writeback that failed for good since this descriptor
  // last looked surfaces here, once. Re-resolve the entry — the fd may
  // have been closed (even reopened) while the sync was suspended; a dead
  // incarnation has nobody left to tell.
  FdEntry* e = entry(fd);
  if (e != nullptr && e->generation == gen &&
      e->wb_err_seen < vn.inode->wb_err_seq) {
    e->wb_err_seen = vn.inode->wb_err_seq;
    return fail(m, Errno::kIo);
  }
  return {};
}

void Vfs::unref(Vnode& vn) {
  --vn.refcount;
  maybe_retire(vn);
}

void Vfs::unpin(Vnode& vn) {
  --vn.pins;
  maybe_retire(vn);
}

void Vfs::maybe_retire(Vnode& vn) {
  if (vn.refcount > 0 || vn.pins > 0) return;
  if (vn.unlinked) vn.fs->reclaim(*vn.inode);
  vnodes_.erase(vn.inode);
}

Vfs::Vnode& Vfs::vnode_for(fs::Filesystem& filesystem, fs::Inode& inode) {
  std::unique_ptr<Vnode>& slot = vnodes_[&inode];
  if (slot == nullptr) {
    slot = std::make_unique<Vnode>();
    slot->inode = &inode;
    slot->fs = &filesystem;
  }
  return *slot;
}

Fd Vfs::alloc_fd(Vnode& vn, Mount& mount) {
  // POSIX semantics: the lowest free descriptor.
  std::size_t slot = 0;
  while (slot < fds_.size() && fds_[slot].vnode != nullptr) ++slot;
  if (slot == fds_.size()) fds_.emplace_back();
  fds_[slot].vnode = &vn;
  fds_[slot].mount = &mount;
  fds_[slot].offset = 0;
  // A freshly-opened descriptor samples the inode's error sequence: it
  // reports only writeback failures that happen *after* this open (Linux
  // errseq_t "seen" semantics).
  fds_[slot].wb_err_seen = vn.inode->wb_err_seq;
  ++vn.refcount;
  ++open_fds_;
  return static_cast<Fd>(slot);
}

// ---- namespace --------------------------------------------------------------

sim::TaskOf<Result<File>> Vfs::open(std::string name, OpenOptions opts) {
  Result<Target> t = resolve(name);
  if (!t.ok()) co_return fail(t.error());
  Mount& m = *t.value().mount;
  fs::Filesystem& filesystem = *m.filesystem;
  fs::Inode* inode = filesystem.lookup(t.value().rel);
  if (inode != nullptr) {
    if (opts.create && opts.exclusive) co_return fail(m, Errno::kExist);
  } else {
    if (!opts.create) co_return fail(m, Errno::kNoEnt);
    if (filesystem.degraded()) co_return fail(m, Errno::kRoFs);
    if (!filesystem.has_free_inode()) co_return fail(m, Errno::kNoSpc);
    co_await filesystem.create(std::move(t.value().rel), inode,
                               opts.extent_blocks);
    ++stats_.creates;
    ++m.stats.creates;
  }
  ++stats_.opens;
  ++m.stats.opens;
  co_return File(this, alloc_fd(vnode_for(filesystem, *inode), m));
}

Status Vfs::close(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  Vnode* vn = e->vnode;
  ++e->mount->stats.closes;
  e->vnode = nullptr;
  e->mount = nullptr;
  e->offset = 0;
  ++e->generation;
  --open_fds_;
  ++stats_.closes;
  unref(*vn);
  return {};
}

sim::TaskOf<Status> Vfs::unlink(const std::string& name) {
  Result<Target> t = resolve(name);
  if (!t.ok()) co_return fail(t.error());
  Mount& m = *t.value().mount;
  fs::Filesystem& filesystem = *m.filesystem;
  fs::Inode* inode = filesystem.lookup(t.value().rel);
  if (inode == nullptr) co_return fail(m, Errno::kNoEnt);
  if (filesystem.degraded()) co_return fail(m, Errno::kRoFs);
  ++stats_.unlinks;
  ++m.stats.unlinks;
  auto it = vnodes_.find(inode);
  if (it != vnodes_.end()) {
    // Descriptors are still open: remove the name only; the extent/ino
    // recycle on the last close, so surviving fds never alias a new file.
    it->second->unlinked = true;
    co_await filesystem.unlink_deferred(t.value().rel);
  } else {
    co_await filesystem.unlink(t.value().rel);
  }
  co_return Status{};
}

sim::TaskOf<Status> Vfs::rename(const std::string& from,
                                const std::string& to) {
  Result<Target> tf = resolve(from);
  if (!tf.ok()) co_return fail(tf.error());
  Result<Target> tt = resolve(to);
  if (!tt.ok()) co_return fail(tt.error());
  Mount& m = *tf.value().mount;
  if (&m != tt.value().mount) co_return fail(m, Errno::kXDev);
  fs::Filesystem& filesystem = *m.filesystem;
  const std::string& rel_from = tf.value().rel;
  const std::string& rel_to = tt.value().rel;
  if (filesystem.lookup(rel_from) == nullptr)
    co_return fail(m, Errno::kNoEnt);
  if (filesystem.degraded()) co_return fail(m, Errno::kRoFs);
  if (rel_from == rel_to) co_return Status{};
  // POSIX: an existing target is displaced by the rename itself — inside
  // ONE journal transaction, so no crash instant ever shows the
  // destination name missing. The displaced file stays alive through its
  // open descriptors (deferred reclamation, as with unlink).
  fs::Inode* dst = nullptr;
  for (;;) {
    dst = filesystem.lookup(rel_to);
    if (co_await filesystem.rename(rel_from, rel_to)) break;
    // A namespace op raced the rename's own journal reservations and won:
    // a vanished source is ENOENT; a changed target is re-resolved and
    // displaced on the next pass (rename(2) never fails with EEXIST — the
    // kernel wins the same race by holding locks the model doesn't have).
    if (filesystem.lookup(rel_from) == nullptr)
      co_return fail(m, Errno::kNoEnt);
  }
  if (dst != nullptr) {
    // The displaced inode lost its name; route its storage like unlink():
    // reclaim at last close while descriptors are open, now otherwise.
    auto it = vnodes_.find(dst);
    if (it != vnodes_.end())
      it->second->unlinked = true;
    else
      filesystem.reclaim(*dst);
  }
  ++stats_.renames;
  ++m.stats.renames;
  co_return Status{};
}

// ---- data path --------------------------------------------------------------

sim::TaskOf<Result<std::uint32_t>> Vfs::pread(Fd fd, std::uint32_t page,
                                              std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(*e->mount, Errno::kInval);
  Vnode& vn = *e->vnode;
  fs::Inode& inode = *vn.inode;
  if (page >= inode.size_blocks) co_return std::uint32_t{0};  // at/past EOF
  const std::uint32_t n = std::min(npages, inode.size_blocks - page);
  Mount& m = *e->mount;
  pin(vn);
  const fs::FsStatus st = co_await vn.fs->read(inode, page, n);
  unpin(vn);
  if (st == fs::FsStatus::kIo) co_return fail(m, Errno::kIo);
  co_return n;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::pwrite(Fd fd, std::uint32_t page,
                                               std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(*e->mount, Errno::kInval);
  Vnode& vn = *e->vnode;
  fs::Inode& inode = *vn.inode;
  // 64-bit sum: page + npages must not wrap past the extent check.
  if (std::uint64_t{page} + npages > inode.extent_blocks)
    co_return fail(*e->mount, Errno::kNoSpc);
  // errors=remount-ro: a degraded volume rejects writes (reads keep
  // working). Checked here so write()/append() inherit it too.
  if (vn.fs->degraded()) co_return fail(*e->mount, Errno::kRoFs);
  pin(vn);
  co_await vn.fs->write(inode, page, npages);
  unpin(vn);
  co_return npages;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::read(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  const fs::Inode* inode = e->vnode->inode;
  if (e->offset >= inode->size_blocks) co_return std::uint32_t{0};  // at EOF
  const std::uint64_t gen = e->generation;
  const std::uint32_t page = static_cast<std::uint32_t>(e->offset);
  Result<std::uint32_t> r = co_await pread(fd, page, npages);
  // Re-resolve: the fd may have been closed (and the slot reopened, even
  // for the same file) by another simulated thread while the IO was in
  // flight; the generation pins the exact descriptor incarnation.
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset += r.value();
  co_return r;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::write(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  const fs::Inode* inode = e->vnode->inode;
  if (e->offset + npages > inode->extent_blocks)
    co_return fail(*e->mount, Errno::kNoSpc);
  const std::uint64_t gen = e->generation;
  const std::uint32_t page = static_cast<std::uint32_t>(e->offset);
  Result<std::uint32_t> r = co_await pwrite(fd, page, npages);
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset += r.value();
  co_return r;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::append(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(*e->mount, Errno::kInval);
  Vnode* vn = e->vnode;
  const fs::Inode* inode = vn->inode;
  // Reserve the target range before the first suspension (the write itself
  // blocks in the page cache / throttle), so concurrent appenders through
  // any descriptor of this file land on disjoint pages — O_APPEND
  // atomicity. EOF is the max of i_size and outstanding reservations.
  const std::uint32_t page = std::max(inode->size_blocks, vn->append_cursor);
  if (std::uint64_t{page} + npages > inode->extent_blocks)
    co_return fail(*e->mount, Errno::kNoSpc);
  vn->append_cursor = page + npages;
  const std::uint64_t gen = e->generation;
  Result<std::uint32_t> r = co_await pwrite(fd, page, npages);
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset = static_cast<std::uint64_t>(page) + r.value();
  co_return r;
}

// ---- synchronization ---------------------------------------------------------

sim::TaskOf<Status> Vfs::fsync(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  Mount& m = *e->mount;
  const std::uint64_t gen = e->generation;
  pin(vn);
  const fs::FsStatus st = co_await vn.fs->fsync(*vn.inode);
  unpin(vn);
  co_return sync_epilogue(fd, gen, vn, m, st);
}

sim::TaskOf<Status> Vfs::fdatasync(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  Mount& m = *e->mount;
  const std::uint64_t gen = e->generation;
  pin(vn);
  const fs::FsStatus st = co_await vn.fs->fdatasync(*vn.inode);
  unpin(vn);
  co_return sync_epilogue(fd, gen, vn, m, st);
}

sim::TaskOf<Status> Vfs::fbarrier(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  Mount& m = *e->mount;
  if (!journal_supports(Syscall::kFbarrier, vn.fs->config().journal))
    co_return fail(m, Errno::kInval);
  const std::uint64_t gen = e->generation;
  pin(vn);
  const fs::FsStatus st = co_await vn.fs->fbarrier(*vn.inode);
  unpin(vn);
  co_return sync_epilogue(fd, gen, vn, m, st);
}

sim::TaskOf<Status> Vfs::fdatabarrier(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  Mount& m = *e->mount;
  if (!journal_supports(Syscall::kFdatabarrier, vn.fs->config().journal))
    co_return fail(m, Errno::kInval);
  const std::uint64_t gen = e->generation;
  pin(vn);
  const fs::FsStatus st = co_await vn.fs->fdatabarrier(*vn.inode);
  unpin(vn);
  co_return sync_epilogue(fd, gen, vn, m, st);
}

sim::TaskOf<Status> Vfs::sync(Fd fd, SyncIntent intent) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  Mount& m = *e->mount;
  const Syscall call =
      (vn.policy.has_value() ? *vn.policy : e->mount->policy)
          .resolve(intent);
  // A (per-file-overridable) policy row may name a syscall this
  // descriptor's filesystem cannot run — dsync/osync outside OptFS,
  // barrier calls outside BarrierFS. Surface the mismatch as a modelled
  // EINVAL rather than letting the filesystem assert.
  if (!journal_supports(call, vn.fs->config().journal))
    co_return fail(m, Errno::kInval);
  const std::uint64_t gen = e->generation;
  pin(vn);
  const fs::FsStatus st = co_await issue(*vn.fs, *vn.inode, call);
  unpin(vn);
  co_return sync_epilogue(fd, gen, vn, m, st);
}

// ---- descriptor metadata -----------------------------------------------------

Result<std::uint32_t> Vfs::size_blocks(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->inode->size_blocks;
}

Result<std::uint32_t> Vfs::extent_blocks(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->inode->extent_blocks;
}

Result<std::uint64_t> Vfs::offset(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->offset;
}

Status Vfs::seek(Fd fd, std::uint64_t page) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  e->offset = page;
  return {};
}

Status Vfs::set_policy(Fd fd, SyncPolicy policy) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  e->vnode->policy = policy;
  return {};
}

Result<SyncPolicy> Vfs::policy_of(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->policy.has_value() ? *e->vnode->policy
                                      : e->mount->policy;
}

}  // namespace bio::api
