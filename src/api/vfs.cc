#include "api/vfs.h"

#include <algorithm>
#include <utility>

namespace bio::api {

// ---- descriptor-table plumbing ---------------------------------------------

Vfs::FdEntry* Vfs::entry(Fd fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      fds_[static_cast<std::size_t>(fd)].vnode == nullptr)
    return nullptr;
  return &fds_[static_cast<std::size_t>(fd)];
}

const Vfs::FdEntry* Vfs::entry(Fd fd) const {
  return const_cast<Vfs*>(this)->entry(fd);
}

Errno Vfs::fail(Errno e) const {
  ++stats_.errors;
  return e;
}

void Vfs::unref(Vnode& vn) {
  --vn.refcount;
  maybe_retire(vn);
}

void Vfs::unpin(Vnode& vn) {
  --vn.pins;
  maybe_retire(vn);
}

void Vfs::maybe_retire(Vnode& vn) {
  if (vn.refcount > 0 || vn.pins > 0) return;
  if (vn.unlinked) fs_.reclaim(*vn.inode);
  vnodes_.erase(vn.inode);
}

Vfs::Vnode& Vfs::vnode_for(fs::Inode& inode) {
  std::unique_ptr<Vnode>& slot = vnodes_[&inode];
  if (slot == nullptr) {
    slot = std::make_unique<Vnode>();
    slot->inode = &inode;
  }
  return *slot;
}

Fd Vfs::alloc_fd(Vnode& vn) {
  // POSIX semantics: the lowest free descriptor.
  std::size_t slot = 0;
  while (slot < fds_.size() && fds_[slot].vnode != nullptr) ++slot;
  if (slot == fds_.size()) fds_.emplace_back();
  fds_[slot].vnode = &vn;
  fds_[slot].offset = 0;
  ++vn.refcount;
  ++open_fds_;
  return static_cast<Fd>(slot);
}

// ---- namespace --------------------------------------------------------------

sim::TaskOf<Result<File>> Vfs::open(std::string name, OpenOptions opts) {
  fs::Inode* inode = fs_.lookup(name);
  if (inode != nullptr) {
    if (opts.create && opts.exclusive) co_return fail(Errno::kExist);
  } else {
    if (!opts.create) co_return fail(Errno::kNoEnt);
    if (!fs_.has_free_inode()) co_return fail(Errno::kNoSpc);
    co_await fs_.create(std::move(name), inode, opts.extent_blocks);
    ++stats_.creates;
  }
  ++stats_.opens;
  co_return File(this, alloc_fd(vnode_for(*inode)));
}

Status Vfs::close(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  Vnode* vn = e->vnode;
  e->vnode = nullptr;
  e->offset = 0;
  ++e->generation;
  --open_fds_;
  ++stats_.closes;
  unref(*vn);
  return {};
}

sim::TaskOf<Status> Vfs::unlink(const std::string& name) {
  fs::Inode* inode = fs_.lookup(name);
  if (inode == nullptr) co_return fail(Errno::kNoEnt);
  ++stats_.unlinks;
  auto it = vnodes_.find(inode);
  if (it != vnodes_.end()) {
    // Descriptors are still open: remove the name only; the extent/ino
    // recycle on the last close, so surviving fds never alias a new file.
    it->second->unlinked = true;
    co_await fs_.unlink_deferred(name);
  } else {
    co_await fs_.unlink(name);
  }
  co_return Status{};
}

// ---- data path --------------------------------------------------------------

sim::TaskOf<Result<std::uint32_t>> Vfs::pread(Fd fd, std::uint32_t page,
                                              std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(Errno::kInval);
  Vnode& vn = *e->vnode;
  fs::Inode& inode = *vn.inode;
  if (page >= inode.size_blocks) co_return std::uint32_t{0};  // at/past EOF
  const std::uint32_t n = std::min(npages, inode.size_blocks - page);
  pin(vn);
  co_await fs_.read(inode, page, n);
  unpin(vn);
  co_return n;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::pwrite(Fd fd, std::uint32_t page,
                                               std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(Errno::kInval);
  Vnode& vn = *e->vnode;
  fs::Inode& inode = *vn.inode;
  // 64-bit sum: page + npages must not wrap past the extent check.
  if (std::uint64_t{page} + npages > inode.extent_blocks)
    co_return fail(Errno::kNoSpc);
  pin(vn);
  co_await fs_.write(inode, page, npages);
  unpin(vn);
  co_return npages;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::read(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  const fs::Inode* inode = e->vnode->inode;
  if (e->offset >= inode->size_blocks) co_return std::uint32_t{0};  // at EOF
  const std::uint64_t gen = e->generation;
  const std::uint32_t page = static_cast<std::uint32_t>(e->offset);
  Result<std::uint32_t> r = co_await pread(fd, page, npages);
  // Re-resolve: the fd may have been closed (and the slot reopened, even
  // for the same file) by another simulated thread while the IO was in
  // flight; the generation pins the exact descriptor incarnation.
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset += r.value();
  co_return r;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::write(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  const fs::Inode* inode = e->vnode->inode;
  if (e->offset + npages > inode->extent_blocks) co_return fail(Errno::kNoSpc);
  const std::uint64_t gen = e->generation;
  const std::uint32_t page = static_cast<std::uint32_t>(e->offset);
  Result<std::uint32_t> r = co_await pwrite(fd, page, npages);
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset += r.value();
  co_return r;
}

sim::TaskOf<Result<std::uint32_t>> Vfs::append(Fd fd, std::uint32_t npages) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  if (npages == 0) co_return fail(Errno::kInval);
  Vnode* vn = e->vnode;
  const fs::Inode* inode = vn->inode;
  // Reserve the target range before the first suspension (the write itself
  // blocks in the page cache / throttle), so concurrent appenders through
  // any descriptor of this file land on disjoint pages — O_APPEND
  // atomicity. EOF is the max of i_size and outstanding reservations.
  const std::uint32_t page = std::max(inode->size_blocks, vn->append_cursor);
  if (std::uint64_t{page} + npages > inode->extent_blocks)
    co_return fail(Errno::kNoSpc);
  vn->append_cursor = page + npages;
  const std::uint64_t gen = e->generation;
  Result<std::uint32_t> r = co_await pwrite(fd, page, npages);
  if (r.ok() && (e = entry(fd)) != nullptr && e->generation == gen)
    e->offset = static_cast<std::uint64_t>(page) + r.value();
  co_return r;
}

// ---- synchronization ---------------------------------------------------------

sim::TaskOf<Status> Vfs::fsync(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  pin(vn);
  co_await fs_.fsync(*vn.inode);
  unpin(vn);
  co_return Status{};
}

sim::TaskOf<Status> Vfs::fdatasync(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  pin(vn);
  co_await fs_.fdatasync(*vn.inode);
  unpin(vn);
  co_return Status{};
}

sim::TaskOf<Status> Vfs::fbarrier(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  pin(vn);
  co_await fs_.fbarrier(*vn.inode);
  unpin(vn);
  co_return Status{};
}

sim::TaskOf<Status> Vfs::fdatabarrier(Fd fd) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  pin(vn);
  co_await fs_.fdatabarrier(*vn.inode);
  unpin(vn);
  co_return Status{};
}

sim::TaskOf<Status> Vfs::sync(Fd fd, SyncIntent intent) {
  FdEntry* e = entry(fd);
  if (e == nullptr) co_return fail(Errno::kBadF);
  Vnode& vn = *e->vnode;
  const Syscall call =
      (vn.policy.has_value() ? *vn.policy : policy_).resolve(intent);
  pin(vn);
  co_await issue(fs_, *vn.inode, call);
  unpin(vn);
  co_return Status{};
}

// ---- descriptor metadata -----------------------------------------------------

Result<std::uint32_t> Vfs::size_blocks(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->inode->size_blocks;
}

Result<std::uint32_t> Vfs::extent_blocks(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->inode->extent_blocks;
}

Result<std::uint64_t> Vfs::offset(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->offset;
}

Status Vfs::seek(Fd fd, std::uint64_t page) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  e->offset = page;
  return {};
}

Status Vfs::set_policy(Fd fd, SyncPolicy policy) {
  FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  e->vnode->policy = policy;
  return {};
}

Result<SyncPolicy> Vfs::policy_of(Fd fd) const {
  const FdEntry* e = entry(fd);
  if (e == nullptr) return fail(Errno::kBadF);
  return e->vnode->policy.has_value() ? *e->vnode->policy : policy_;
}

}  // namespace bio::api
