// api::Ring — io_uring-style batched submission/completion rings over Vfs.
//
// A Ring decouples *issuing* IO from *waiting* for it: the application
// fills a submission queue with sqe-like ops (read/write/fsync/fdatasync/
// fbarrier/fdatabarrier), submit() dispatches the batch as coroutines over
// the existing Vfs paths, and completions are reaped out of order from a
// cqe queue (peek_cqe / wait_cqe), each carrying the sqe's user_data and a
// res that is pages-transferred (>= 0) or a negated errno.
//
// Link flags encode the paper's order-preserving dispatch at the host API:
// a sqe carrying kSqeLink serializes with the NEXT sqe of the same submit
// batch (IOSQE_IO_LINK), so `write -> fdatabarrier -> write` forms a chain
// that runs strictly in order *within* itself while unlinked sqes — and
// other chains — run concurrently. A failed sqe (validation or runtime
// error) cancels the remainder of its chain with -ECANCELED.
//
// Validation fails fast at submit time: a bad fd, an unregistered buffer
// index, or a barrier op against a journal that cannot run it (the
// capability matrix behind Vfs::sync) produces an error cqe for that sqe —
// never a mid-flight assert — and cancels its chain successors.
//
// Fixed buffers follow the NCQ slot protocol: register_buffers() carves
// numbered slots once, data sqes reference a slot index instead of carrying
// a buffer, and each slot tracks in-flight ownership from issue to
// completion, so slots are reused across submits without per-op buffer
// traffic. Registration changes require a quiescent ring (no sqe between
// submit and cqe), as with io_uring buffer registration.
//
// Destruction with ops still in flight is safe: drivers share the ring
// state through a shared_ptr and check a closed flag after every
// suspension, so late completions touch neither the dead Ring nor its cq.
// The underlying Vfs must outlive the IO it was asked to perform, exactly
// as for direct syscalls.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "api/vfs.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace bio::api {

enum class RingOp : std::uint8_t {
  kNop,
  kRead,
  kWrite,
  kFsync,
  kFdatasync,
  kFbarrier,
  kFdatabarrier,
};

/// Sqe flag: serialize this sqe before the NEXT sqe in the batch
/// (IOSQE_IO_LINK). Chains end at the first sqe without the flag.
inline constexpr std::uint8_t kSqeLink = 0x1;

/// Submission-queue entry. `page`/`npages` are 4 KiB-page offset/length for
/// data ops (ignored by syncs); `buf_index` >= 0 names a registered buffer
/// slot the data op occupies from issue to completion (-1 = unregistered
/// IO). `user_data` is echoed verbatim in the completion.
struct Sqe {
  RingOp op = RingOp::kNop;
  Fd fd = kInvalidFd;
  std::uint32_t page = 0;
  std::uint32_t npages = 0;
  std::int32_t buf_index = -1;
  std::uint8_t flags = 0;
  std::uint64_t user_data = 0;
};

/// Completion-queue entry: res >= 0 is pages transferred (0 for syncs and
/// nops), res < 0 a negated errno (kECanceled for chain cancellation).
struct Cqe {
  std::uint64_t user_data = 0;
  std::int32_t res = 0;
};

/// Negated-errno completion codes (POSIX numbering, like io_uring cqes).
std::int32_t negated_errno(Errno e);

/// The ring op that carries a policy-resolved sync syscall. Syncs map 1:1;
/// OptFS's osync rides kFbarrier and dsync rides kFdatasync (Vfs maps both
/// back onto the OptFS natives); kNone resolves to kNop.
RingOp ring_op_for(Syscall call) noexcept;
inline constexpr std::int32_t kECanceled = -125;  // chain predecessor failed

class Ring {
 public:
  struct Config {
    /// Submission-queue capacity: push() refuses beyond this.
    std::uint32_t sq_entries = 64;
  };

  /// Observer hooks, invoked synchronously in driver context immediately
  /// before a (validated) sqe is issued to the Vfs and immediately after
  /// its completion is queued. They must not suspend; the crash-sweep
  /// workload uses them for exact-tick trace stamping.
  using StartHook = std::function<void(const Sqe&)>;
  using CompleteHook = std::function<void(const Sqe&, std::int32_t res)>;

  explicit Ring(Vfs& vfs);
  Ring(Vfs& vfs, Config cfg);
  ~Ring();

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  // ---- submission --------------------------------------------------------

  /// Queues one sqe; false when the submission queue is full.
  bool push(const Sqe& sqe);

  /// Validates and dispatches up to `n` queued sqes (default: all).
  /// Chains (kSqeLink runs) are dispatched as one serialized driver each;
  /// everything else runs concurrently. A chain is never split across
  /// submit calls: if `n` lands mid-chain the whole chain is taken.
  /// Returns the number of sqes dispatched.
  std::uint32_t submit(std::uint32_t n = ~std::uint32_t{0});

  // ---- completion --------------------------------------------------------

  /// Non-blocking reap; false when no completion is queued.
  bool peek_cqe(Cqe& out);
  /// Blocks the calling simulated thread until a completion is available.
  sim::TaskOf<Cqe> wait_cqe();

  std::size_t cq_ready() const noexcept;
  std::uint32_t sq_pending() const noexcept;
  /// Sqes dispatched whose completion has not yet been queued.
  std::uint32_t in_flight() const noexcept;

  // ---- fixed buffers (NCQ slot protocol) ---------------------------------

  /// Registers `pages_per_buffer.size()` buffer slots, slot i holding
  /// pages_per_buffer[i] pages. kInval while buffers are registered
  /// already, while any sqe is in flight, or for an empty/zero-page table.
  Status register_buffers(const std::vector<std::uint32_t>& pages_per_buffer);
  /// Drops the registration. kInval while any sqe is in flight.
  Status unregister_buffers();
  std::size_t buffers_registered() const noexcept;
  /// Times slot `i` carried an op to completion (slot-reuse visibility).
  std::uint64_t buffer_issues(std::size_t i) const noexcept;
  /// True while slot `i` is owned by an in-flight op.
  bool buffer_in_flight(std::size_t i) const noexcept;

  // ---- observation -------------------------------------------------------

  void set_on_op_start(StartHook hook);
  void set_on_op_complete(CompleteHook hook);

  /// TEST ONLY: dispatch every sqe of a chain concurrently, ignoring link
  /// flags — the deliberate ordering bug the crash-sweep oracle must catch
  /// (negative test for the linked-chain contract).
  void set_ignore_links_for_test(bool ignore) noexcept;

 private:
  struct Buffer {
    std::uint32_t pages = 0;
    std::uint32_t in_flight = 0;
    std::uint64_t issues = 0;
  };

  /// One validated submission: the sqe plus its submit-time verdict.
  struct Prepped {
    Sqe sqe;
    Errno precheck = Errno::kOk;
  };

  /// State shared between the Ring handle and its in-flight drivers. The
  /// drivers own it jointly with the Ring (shared_ptr), so destroying the
  /// Ring mid-flight leaves them a live object whose `closed` flag tells
  /// them to finish silently.
  struct Core {
    Core(Vfs& v, sim::Simulator& s) : vfs(&v), sim(&s), cq_ready(s) {}
    Vfs* vfs;
    sim::Simulator* sim;
    std::deque<Cqe> cq;
    sim::Notify cq_ready;
    std::vector<Buffer> buffers;
    std::uint32_t in_flight = 0;
    bool closed = false;
    StartHook on_op_start;
    CompleteHook on_op_complete;
  };

  /// Submit-time validation of one sqe (fail fast, satellite contract).
  Errno precheck(const Sqe& sqe) const;

  static sim::Task chain_driver(std::shared_ptr<Core> core,
                                std::vector<Prepped> chain);
  static sim::TaskOf<std::int32_t> execute(Core& core, const Sqe& sqe);
  static void complete(Core& core, const Sqe& sqe, std::int32_t res);

  std::shared_ptr<Core> core_;
  std::deque<Sqe> sq_;
  Config cfg_;
  bool ignore_links_ = false;
  std::uint64_t chains_spawned_ = 0;
};

}  // namespace bio::api
