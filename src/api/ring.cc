#include "api/ring.h"

#include <string>
#include <utility>

#include "sim/simulator.h"

namespace bio::api {

namespace {

bool is_data_op(RingOp op) noexcept {
  return op == RingOp::kRead || op == RingOp::kWrite;
}

bool is_sync_op(RingOp op) noexcept {
  switch (op) {
    case RingOp::kFsync:
    case RingOp::kFdatasync:
    case RingOp::kFbarrier:
    case RingOp::kFdatabarrier:
      return true;
    default:
      return false;
  }
}

Syscall syscall_of(RingOp op) noexcept {
  switch (op) {
    case RingOp::kFsync: return Syscall::kFsync;
    case RingOp::kFdatasync: return Syscall::kFdatasync;
    case RingOp::kFbarrier: return Syscall::kFbarrier;
    case RingOp::kFdatabarrier: return Syscall::kFdatabarrier;
    default: return Syscall::kNone;
  }
}

}  // namespace

std::int32_t negated_errno(Errno e) {
  switch (e) {
    case Errno::kOk: return 0;
    case Errno::kNoEnt: return -2;    // -ENOENT
    case Errno::kBadF: return -9;     // -EBADF
    case Errno::kExist: return -17;   // -EEXIST
    case Errno::kXDev: return -18;    // -EXDEV
    case Errno::kInval: return -22;   // -EINVAL
    case Errno::kNoSpc: return -28;   // -ENOSPC
    case Errno::kIo: return -5;       // -EIO
    case Errno::kRoFs: return -30;    // -EROFS
  }
  return -22;
}

RingOp ring_op_for(Syscall call) noexcept {
  switch (call) {
    case Syscall::kFsync: return RingOp::kFsync;
    case Syscall::kFdatasync: return RingOp::kFdatasync;
    case Syscall::kFbarrier: return RingOp::kFbarrier;
    case Syscall::kFdatabarrier: return RingOp::kFdatabarrier;
    case Syscall::kOsync: return RingOp::kFbarrier;
    case Syscall::kDsync: return RingOp::kFdatasync;
    case Syscall::kNone: return RingOp::kNop;
  }
  return RingOp::kNop;
}

Ring::Ring(Vfs& vfs) : Ring(vfs, Config{}) {}

Ring::Ring(Vfs& vfs, Config cfg)
    : core_(std::make_shared<Core>(vfs, vfs.simulator())), cfg_(cfg) {}

Ring::~Ring() {
  core_->closed = true;
  // Wake wait_cqe() callers so they observe the closed ring instead of
  // sleeping on a Notify nobody will signal again.
  core_->cq_ready.notify_all();
}

bool Ring::push(const Sqe& sqe) {
  if (sq_.size() >= cfg_.sq_entries) return false;
  sq_.push_back(sqe);
  return true;
}

Errno Ring::precheck(const Sqe& sqe) const {
  if (sqe.op == RingOp::kNop) return Errno::kOk;
  const Result<fs::JournalKind> jk = core_->vfs->journal_kind(sqe.fd);
  if (!jk.ok()) return jk.error();
  if (is_data_op(sqe.op)) {
    if (sqe.npages == 0) return Errno::kInval;
    if (sqe.buf_index >= 0) {
      const auto idx = static_cast<std::size_t>(sqe.buf_index);
      if (idx >= core_->buffers.size()) return Errno::kInval;
      if (sqe.npages > core_->buffers[idx].pages) return Errno::kInval;
    }
    return Errno::kOk;
  }
  if (is_sync_op(sqe.op)) {
    if (!journal_supports(syscall_of(sqe.op), jk.value())) return Errno::kInval;
    return Errno::kOk;
  }
  return Errno::kInval;
}

std::uint32_t Ring::submit(std::uint32_t n) {
  std::uint32_t dispatched = 0;
  while (dispatched < n && !sq_.empty()) {
    // Take one whole chain: consecutive sqes glued by kSqeLink. Chains are
    // never split across submit() calls, so `n` landing mid-chain still
    // takes the chain's tail.
    std::vector<Prepped> chain;
    for (;;) {
      Sqe sqe = sq_.front();
      sq_.pop_front();
      const bool linked = (sqe.flags & kSqeLink) != 0 && !sq_.empty();
      chain.push_back(Prepped{sqe, precheck(sqe)});
      if (!linked || ignore_links_) break;
    }
    dispatched += static_cast<std::uint32_t>(chain.size());
    core_->in_flight += static_cast<std::uint32_t>(chain.size());
    core_->sim->spawn("ring-chain-" + std::to_string(chains_spawned_++),
                      chain_driver(core_, std::move(chain)));
  }
  return dispatched;
}

sim::Task Ring::chain_driver(std::shared_ptr<Core> core,
                             std::vector<Prepped> chain) {
  bool cancelled = false;
  for (const Prepped& p : chain) {
    if (core->closed) co_return;
    if (cancelled) {
      complete(*core, p.sqe, kECanceled);
      continue;
    }
    if (p.precheck != Errno::kOk) {
      // Fail-fast verdict from submit time: an error cqe, never a
      // filesystem call — and the rest of the chain is cancelled.
      complete(*core, p.sqe, negated_errno(p.precheck));
      cancelled = true;
      continue;
    }
    const bool holds_buffer = is_data_op(p.sqe.op) && p.sqe.buf_index >= 0;
    if (holds_buffer)
      ++core->buffers[static_cast<std::size_t>(p.sqe.buf_index)].in_flight;
    if (core->on_op_start) core->on_op_start(p.sqe);
    const std::int32_t res = co_await execute(*core, p.sqe);
    if (core->closed) co_return;  // the Ring died while this op was in flight
    if (holds_buffer) {
      Buffer& b = core->buffers[static_cast<std::size_t>(p.sqe.buf_index)];
      --b.in_flight;
      ++b.issues;
    }
    complete(*core, p.sqe, res);
    if (res < 0) cancelled = true;
  }
}

sim::TaskOf<std::int32_t> Ring::execute(Core& core, const Sqe& sqe) {
  switch (sqe.op) {
    case RingOp::kRead: {
      const Result<std::uint32_t> r =
          co_await core.vfs->pread(sqe.fd, sqe.page, sqe.npages);
      co_return r.ok() ? static_cast<std::int32_t>(r.value())
                       : negated_errno(r.error());
    }
    case RingOp::kWrite: {
      const Result<std::uint32_t> r =
          co_await core.vfs->pwrite(sqe.fd, sqe.page, sqe.npages);
      co_return r.ok() ? static_cast<std::int32_t>(r.value())
                       : negated_errno(r.error());
    }
    case RingOp::kFsync: {
      const Status s = co_await core.vfs->fsync(sqe.fd);
      co_return negated_errno(s.error());
    }
    case RingOp::kFdatasync: {
      const Status s = co_await core.vfs->fdatasync(sqe.fd);
      co_return negated_errno(s.error());
    }
    case RingOp::kFbarrier: {
      const Status s = co_await core.vfs->fbarrier(sqe.fd);
      co_return negated_errno(s.error());
    }
    case RingOp::kFdatabarrier: {
      const Status s = co_await core.vfs->fdatabarrier(sqe.fd);
      co_return negated_errno(s.error());
    }
    case RingOp::kNop:
      co_return 0;
  }
  co_return negated_errno(Errno::kInval);
}

void Ring::complete(Core& core, const Sqe& sqe, std::int32_t res) {
  core.cq.push_back(Cqe{sqe.user_data, res});
  --core.in_flight;
  if (core.on_op_complete) core.on_op_complete(sqe, res);
  core.cq_ready.notify_all();
}

bool Ring::peek_cqe(Cqe& out) {
  if (core_->cq.empty()) return false;
  out = core_->cq.front();
  core_->cq.pop_front();
  return true;
}

sim::TaskOf<Cqe> Ring::wait_cqe() {
  // Local shared_ptr copy taken before the first suspension: the Ring (and
  // with it `this`) may be destroyed while this coroutine sleeps.
  std::shared_ptr<Core> core = core_;
  while (!core->closed && core->cq.empty()) co_await core->cq_ready.wait();
  if (core->cq.empty()) co_return Cqe{0, kECanceled};
  Cqe c = core->cq.front();
  core->cq.pop_front();
  co_return c;
}

std::size_t Ring::cq_ready() const noexcept { return core_->cq.size(); }

std::uint32_t Ring::sq_pending() const noexcept {
  return static_cast<std::uint32_t>(sq_.size());
}

std::uint32_t Ring::in_flight() const noexcept { return core_->in_flight; }

Status Ring::register_buffers(
    const std::vector<std::uint32_t>& pages_per_buffer) {
  if (!core_->buffers.empty()) return Errno::kInval;
  if (core_->in_flight > 0) return Errno::kInval;
  if (pages_per_buffer.empty()) return Errno::kInval;
  for (std::uint32_t pages : pages_per_buffer)
    if (pages == 0) return Errno::kInval;
  core_->buffers.reserve(pages_per_buffer.size());
  for (std::uint32_t pages : pages_per_buffer)
    core_->buffers.push_back(Buffer{pages, 0, 0});
  return Status{};
}

Status Ring::unregister_buffers() {
  if (core_->buffers.empty()) return Errno::kInval;
  if (core_->in_flight > 0) return Errno::kInval;
  core_->buffers.clear();
  return Status{};
}

std::size_t Ring::buffers_registered() const noexcept {
  return core_->buffers.size();
}

std::uint64_t Ring::buffer_issues(std::size_t i) const noexcept {
  return i < core_->buffers.size() ? core_->buffers[i].issues : 0;
}

bool Ring::buffer_in_flight(std::size_t i) const noexcept {
  return i < core_->buffers.size() && core_->buffers[i].in_flight > 0;
}

void Ring::set_on_op_start(StartHook hook) {
  core_->on_op_start = std::move(hook);
}

void Ring::set_on_op_complete(CompleteHook hook) {
  core_->on_op_complete = std::move(hook);
}

void Ring::set_ignore_links_for_test(bool ignore) noexcept {
  ignore_links_ = ignore;
}

}  // namespace bio::api
