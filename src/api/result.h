// Errno-style syscall outcomes for the handle-based VFS layer.
//
// Every api::Vfs syscall returns Status (void syscalls) or Result<T>
// (value-producing syscalls) instead of crashing on misuse, so workloads
// have real error paths to exercise: a closed descriptor yields kBadF, a
// missing name kNoEnt, an exhausted inode table or extent kNoSpc.
#pragma once

#include <cstdint>
#include <utility>

#include "sim/check.h"

namespace bio::api {

enum class [[nodiscard]] Errno : std::uint8_t {
  kOk = 0,
  kNoEnt,   // ENOENT: no such file
  kBadF,    // EBADF: bad file descriptor
  kNoSpc,   // ENOSPC: out of inodes / write beyond the reserved extent
  kExist,   // EEXIST: exclusive create of an existing file
  kInval,   // EINVAL: zero-length IO and similar misuse
  kXDev,    // EXDEV: rename across volumes (mount boundaries)
  kIo,      // EIO: device fault survived the retry policy
  kRoFs,    // EROFS: volume degraded read-only (errors=remount-ro)
};

const char* to_string(Errno e) noexcept;

/// Outcome of a void syscall (close, fsync, unlink, ...).
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  /*implicit*/ Status(Errno e) : err_(e) {}

  bool ok() const noexcept { return err_ == Errno::kOk; }
  Errno error() const noexcept { return err_; }
  explicit operator bool() const noexcept { return ok(); }

 private:
  Errno err_ = Errno::kOk;
};

/// Outcome of a value-producing syscall (open, pread, pwrite, ...).
/// On error the value is default-constructed and must not be used.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Errno e) : err_(e) {
    BIO_CHECK_MSG(e != Errno::kOk, "error Result built with kOk");
  }

  bool ok() const noexcept { return err_ == Errno::kOk; }
  Errno error() const noexcept { return err_; }
  explicit operator bool() const noexcept { return ok(); }

  /// The payload; checked access, only valid when ok().
  T& value() & {
    BIO_CHECK_MSG(ok(), "Result::value() on error");
    return value_;
  }
  const T& value() const& {
    BIO_CHECK_MSG(ok(), "Result::value() on error");
    return value_;
  }
  T&& value() && {
    BIO_CHECK_MSG(ok(), "Result::value() on error");
    return std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  Status status() const noexcept { return Status(err_); }

 private:
  Errno err_ = Errno::kOk;
  T value_{};
};

/// Unwraps a syscall outcome, aborting the simulation on error — for call
/// sites where failure indicates a harness bug rather than a modelled
/// outcome (workloads use it the way applications use assert-on-syscall).
template <typename T>
T must(Result<T> r) {
  BIO_CHECK_MSG(r.ok(), to_string(r.error()));
  return std::move(r).value();
}
inline void must(Status s) { BIO_CHECK_MSG(s.ok(), to_string(s.error())); }

inline const char* to_string(Errno e) noexcept {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kNoEnt: return "ENOENT";
    case Errno::kBadF: return "EBADF";
    case Errno::kNoSpc: return "ENOSPC";
    case Errno::kExist: return "EEXIST";
    case Errno::kInval: return "EINVAL";
    case Errno::kXDev: return "EXDEV";
    case Errno::kIo: return "EIO";
    case Errno::kRoFs: return "EROFS";
  }
  return "?";
}

}  // namespace bio::api
