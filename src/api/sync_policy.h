// The paper's syscall substitution table (§5) as *data*.
//
// An application call site is either a storage-order point ("everything
// before this persists before everything after") or a durability point
// ("this must be on media now"); full-file sync is the fsync flavour of the
// latter. Which concrete syscall implements each intent depends on the IO
// stack:
//
//   kind    | order point   | durability point | full-file sync
//   --------+---------------+------------------+----------------
//   EXT4-DR | fdatasync     | fdatasync        | fsync
//   EXT4-OD | fdatasync     | fdatasync        | fsync     (nobarrier mount)
//   BFS-DR  | fdatabarrier  | fdatasync        | fsync
//   BFS-OD  | fdatabarrier  | fdatabarrier*    | fbarrier  (*relaxed, §6.4)
//   OptFS   | osync         | osync            | osync
//
// SyncPolicy carries one row of that table as a value; workloads resolve
// intents through it (usually via api::Vfs/File) instead of hardcoding
// switch statements. New rows — per-file overrides, OptFS osync variants —
// are new values, not new branches in core/stack.cc.
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "fs/filesystem.h"
#include "sim/task.h"

namespace bio::api {

/// A concrete synchronization syscall of the simulated filesystem.
enum class Syscall : std::uint8_t {
  kNone,          // no-op (e.g. fully relaxed policies)
  kFsync,
  kFdatasync,
  kFbarrier,
  kFdatabarrier,
  kOsync,         // OptFS osync with Wait-on-Transfer
  kDsync,         // OptFS dsync: data durable at return, metadata delayed
};

/// What the application *means* at a call site.
enum class SyncIntent : std::uint8_t {
  kOrder,       // storage order only
  kDurability,  // data on media now (data-only, fdatasync flavour)
  kFullSync,    // durability including metadata (fsync flavour)
};

const char* to_string(Syscall s) noexcept;
const char* to_string(SyncIntent i) noexcept;

struct SyncPolicy {
  Syscall order = Syscall::kFdatasync;
  Syscall durability = Syscall::kFdatasync;
  Syscall full_sync = Syscall::kFsync;

  /// The substitution-table row for a paper stack configuration.
  static SyncPolicy for_stack(core::StackKind kind) noexcept;

  /// The OptFS dsync variant (OptFS §5 / PAPER.md §5): ordering stays
  /// osync, but durability points actually put the *data* on media before
  /// returning — metadata durability alone stays delayed. A new row, not a
  /// new branch anywhere in core/.
  static SyncPolicy optfs_dsync() noexcept {
    return {.order = Syscall::kOsync,
            .durability = Syscall::kDsync,
            .full_sync = Syscall::kDsync};
  }

  Syscall resolve(SyncIntent intent) const noexcept {
    switch (intent) {
      case SyncIntent::kOrder: return order;
      case SyncIntent::kDurability: return durability;
      case SyncIntent::kFullSync: return full_sync;
    }
    return full_sync;
  }

  friend bool operator==(const SyncPolicy&, const SyncPolicy&) = default;
};

/// Executes one concrete syscall against `f`. The single funnel through
/// which policy-resolved intents reach the filesystem (used by api::Vfs and
/// the deprecated Stack helpers). Returns the filesystem's verdict: kIo
/// when the call's own journal commit died, kRoFs on a degraded volume
/// (kNone trivially succeeds).
sim::TaskOf<fs::FsStatus> issue(fs::Filesystem& filesystem, fs::Inode& f,
                                Syscall call);

}  // namespace bio::api
