#include "api/sync_policy.h"

namespace bio::api {

const char* to_string(Syscall s) noexcept {
  switch (s) {
    case Syscall::kNone: return "none";
    case Syscall::kFsync: return "fsync";
    case Syscall::kFdatasync: return "fdatasync";
    case Syscall::kFbarrier: return "fbarrier";
    case Syscall::kFdatabarrier: return "fdatabarrier";
    case Syscall::kOsync: return "osync";
    case Syscall::kDsync: return "dsync";
  }
  return "?";
}

const char* to_string(SyncIntent i) noexcept {
  switch (i) {
    case SyncIntent::kOrder: return "order";
    case SyncIntent::kDurability: return "durability";
    case SyncIntent::kFullSync: return "full-sync";
  }
  return "?";
}

SyncPolicy SyncPolicy::for_stack(core::StackKind kind) noexcept {
  switch (kind) {
    case core::StackKind::kExt4DR:
    case core::StackKind::kExt4OD:
      return {.order = Syscall::kFdatasync,
              .durability = Syscall::kFdatasync,
              .full_sync = Syscall::kFsync};
    case core::StackKind::kBfsDR:
      return {.order = Syscall::kFdatabarrier,
              .durability = Syscall::kFdatasync,
              .full_sync = Syscall::kFsync};
    case core::StackKind::kBfsOD:
      // The paper's "relaxing the durability" configuration: every
      // durability point is deliberately demoted to an ordering one.
      return {.order = Syscall::kFdatabarrier,
              .durability = Syscall::kFdatabarrier,
              .full_sync = Syscall::kFbarrier};
    case core::StackKind::kOptFs:
      return {.order = Syscall::kOsync,
              .durability = Syscall::kOsync,
              .full_sync = Syscall::kOsync};
  }
  return {};
}

sim::Task issue(fs::Filesystem& filesystem, fs::Inode& f, Syscall call) {
  switch (call) {
    case Syscall::kNone:
      break;
    case Syscall::kFsync:
      co_await filesystem.fsync(f);
      break;
    case Syscall::kFdatasync:
      co_await filesystem.fdatasync(f);
      break;
    case Syscall::kFbarrier:
      co_await filesystem.fbarrier(f);
      break;
    case Syscall::kFdatabarrier:
      co_await filesystem.fdatabarrier(f);
      break;
    case Syscall::kOsync:
      co_await filesystem.osync(f, /*wait_transfer=*/true);
      break;
    case Syscall::kDsync:
      co_await filesystem.dsync(f);
      break;
  }
}

}  // namespace bio::api
