#include "api/sync_policy.h"

namespace bio::api {

const char* to_string(Syscall s) noexcept {
  switch (s) {
    case Syscall::kNone: return "none";
    case Syscall::kFsync: return "fsync";
    case Syscall::kFdatasync: return "fdatasync";
    case Syscall::kFbarrier: return "fbarrier";
    case Syscall::kFdatabarrier: return "fdatabarrier";
    case Syscall::kOsync: return "osync";
    case Syscall::kDsync: return "dsync";
  }
  return "?";
}

const char* to_string(SyncIntent i) noexcept {
  switch (i) {
    case SyncIntent::kOrder: return "order";
    case SyncIntent::kDurability: return "durability";
    case SyncIntent::kFullSync: return "full-sync";
  }
  return "?";
}

SyncPolicy SyncPolicy::for_stack(core::StackKind kind) noexcept {
  switch (kind) {
    case core::StackKind::kExt4DR:
    case core::StackKind::kExt4OD:
      return {.order = Syscall::kFdatasync,
              .durability = Syscall::kFdatasync,
              .full_sync = Syscall::kFsync};
    case core::StackKind::kBfsDR:
      return {.order = Syscall::kFdatabarrier,
              .durability = Syscall::kFdatasync,
              .full_sync = Syscall::kFsync};
    case core::StackKind::kBfsOD:
      // The paper's "relaxing the durability" configuration: every
      // durability point is deliberately demoted to an ordering one.
      return {.order = Syscall::kFdatabarrier,
              .durability = Syscall::kFdatabarrier,
              .full_sync = Syscall::kFbarrier};
    case core::StackKind::kOptFs:
      return {.order = Syscall::kOsync,
              .durability = Syscall::kOsync,
              .full_sync = Syscall::kOsync};
  }
  return {};
}

sim::TaskOf<fs::FsStatus> issue(fs::Filesystem& filesystem, fs::Inode& f,
                                Syscall call) {
  switch (call) {
    case Syscall::kNone:
      break;
    case Syscall::kFsync:
      co_return co_await filesystem.fsync(f);
    case Syscall::kFdatasync:
      co_return co_await filesystem.fdatasync(f);
    case Syscall::kFbarrier:
      co_return co_await filesystem.fbarrier(f);
    case Syscall::kFdatabarrier:
      co_return co_await filesystem.fdatabarrier(f);
    case Syscall::kOsync:
      co_return co_await filesystem.osync(f, /*wait_transfer=*/true);
    case Syscall::kDsync:
      co_return co_await filesystem.dsync(f);
  }
  co_return fs::FsStatus::kOk;
}

}  // namespace bio::api
