// Handle-based VFS: the POSIX-shaped syscall surface applications use.
//
// A Vfs owns a file-descriptor table over one *or more* mounted
// fs::Filesystems (the volumes of a core::Stack node). Each open() returns
// a descriptor with its own file offset; descriptors referencing the same
// file share a vnode whose refcount keeps the file usable after unlink()
// until the last close(), like the kernel's struct file / inode split. All
// syscalls return typed errno-style outcomes (sim::TaskOf<Result<..>> /
// TaskOf<Status>) instead of void, so workloads can exercise
// ENOENT/EBADF/ENOSPC paths without crashing the simulation.
//
// Mount table and path routing: a volume mounted as "data" owns every name
// of the form "/data/<file>"; an unnamed (root) mount owns every other
// name — including "/not-a-mount/..." paths, which it takes verbatim, the
// way a root filesystem owns any path below no other mount point. That is
// how the historical single-filesystem constructors keep every existing
// workload running unchanged. Without a root mount, a name whose first
// "/" component matches no mount fails with ENOENT; rename() across two
// mounts fails with EXDEV — a file never silently migrates between
// volumes. Each mount carries its own SyncPolicy row (per-volume
// resolution) and its own Stats; remount() swaps a mount's filesystem for
// new opens while descriptors opened earlier keep addressing the
// filesystem they were opened on.
//
// Synchronization intents (order point vs durability point vs full sync)
// are resolved through a pluggable SyncPolicy — by default the paper's
// substitution-table row for each volume's stack kind, overridable per
// file — so a workload written against Vfs runs unchanged on every
// StackKind (and on every mix of kinds behind one node).
//
//   api::Vfs vfs(node);  // mounts every volume: "/db/...", "/log/..."
//   api::File f = (co_await vfs.open("/db/app.db", {.create = true})).value();
//   co_await f.pwrite(/*page=*/0, /*npages=*/4);
//   co_await f.order_point();       // fdatabarrier on BarrierFS, fdatasync
//                                   // on EXT4, osync on OptFS
//   co_await f.durability_point();  // relaxed only on BFS-OD
//
// This header is the only filesystem API workloads, examples and bench
// drivers may use; raw fs::Inode access stays below the api/ layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/result.h"
#include "api/sync_policy.h"
#include "core/stack.h"
#include "fs/filesystem.h"
#include "sim/task.h"

namespace bio::api {

/// File descriptor. Non-negative when open; kInvalidFd otherwise.
using Fd = std::int32_t;
inline constexpr Fd kInvalidFd = -1;

/// Which sync syscalls a journal flavour can run — the single capability
/// matrix behind the policy-resolved funnel (Vfs::sync), the direct barrier
/// syscalls and api::Ring's submit-time sqe validation, so a mismatch is a
/// modelled EINVAL instead of a filesystem assert on a mixed-journal node.
bool journal_supports(Syscall call, fs::JournalKind journal);

struct OpenOptions {
  /// Create the file if it does not exist.
  bool create = false;
  /// With create: fail with kExist instead of opening an existing file.
  bool exclusive = false;
  /// Extent reservation for newly created files (0 = filesystem default).
  std::uint32_t extent_blocks = 0;
};

class Vfs;

/// Lightweight handle pairing a Vfs with a descriptor — the object
/// workloads pass around. Copying a File copies the handle, not the
/// descriptor (like copying an int fd); close it exactly once via
/// Vfs::close()/File::close().
class File {
 public:
  File() = default;

  bool valid() const noexcept { return vfs_ != nullptr && fd_ >= 0; }
  Fd fd() const noexcept { return fd_; }

  // Syscall sugar; declarations mirror Vfs. Defined inline below.
  sim::TaskOf<Result<std::uint32_t>> pread(std::uint32_t page,
                                           std::uint32_t npages);
  sim::TaskOf<Result<std::uint32_t>> pwrite(std::uint32_t page,
                                            std::uint32_t npages);
  sim::TaskOf<Result<std::uint32_t>> read(std::uint32_t npages);
  sim::TaskOf<Result<std::uint32_t>> write(std::uint32_t npages);
  sim::TaskOf<Result<std::uint32_t>> append(std::uint32_t npages);
  sim::TaskOf<Status> fsync();
  sim::TaskOf<Status> fdatasync();
  sim::TaskOf<Status> fbarrier();
  sim::TaskOf<Status> fdatabarrier();
  sim::TaskOf<Status> sync(SyncIntent intent);
  /// Policy-resolved intents (paper §5): the call sites workloads write.
  sim::TaskOf<Status> order_point();
  sim::TaskOf<Status> durability_point();
  sim::TaskOf<Status> sync_file();
  Status close();

  Result<std::uint32_t> size_blocks() const;
  Result<std::uint32_t> extent_blocks() const;
  Status set_policy(SyncPolicy policy);

 private:
  friend class Vfs;
  File(Vfs* vfs, Fd fd) : vfs_(vfs), fd_(fd) {}

  Vfs* vfs_ = nullptr;
  Fd fd_ = kInvalidFd;
};

class Vfs {
 public:
  struct Stats {
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t creates = 0;
    std::uint64_t unlinks = 0;
    std::uint64_t renames = 0;
    /// Syscalls that returned an error (EBADF, ENOENT, ENOSPC, ...).
    std::uint64_t errors = 0;
  };

  /// Single-filesystem Vfs: one root mount owning every name.
  Vfs(fs::Filesystem& filesystem, SyncPolicy policy);
  /// Mounts every volume of the node: an unnamed volume becomes the root
  /// mount, a named volume owns "/<name>/...". Policies default to the
  /// substitution-table row for each volume's kind.
  explicit Vfs(core::Stack& stack);

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // ---- mount table -------------------------------------------------------

  /// Adds a mount: `name` empty for the root mount, else the "/name/..."
  /// prefix. kExist if the name (or a second root) is already mounted.
  Status mount(std::string name, fs::Filesystem& filesystem,
               SyncPolicy policy);
  /// Swaps the mount's filesystem: new opens resolve against `filesystem`,
  /// while descriptors opened earlier keep addressing the filesystem they
  /// were opened on (their vnodes pin it). kNoEnt for an unknown mount.
  Status remount(const std::string& name, fs::Filesystem& filesystem);
  std::size_t mount_count() const noexcept { return mounts_.size(); }
  /// Per-mount statistics (namespace ops and errors attributed to the
  /// mount), or nullptr for an unknown mount name.
  const Stats* stats_of(const std::string& name) const noexcept;
  /// The mount's current filesystem, or nullptr for an unknown name.
  fs::Filesystem* filesystem_of(const std::string& name) noexcept;

  // ---- namespace ---------------------------------------------------------

  /// Opens (optionally creating) `name`; allocates the lowest free fd.
  sim::TaskOf<Result<File>> open(std::string name, OpenOptions opts = {});
  /// Releases the descriptor. The last close of an unlinked file drops the
  /// vnode and reclaims its storage. Synchronous: close(2) does not block
  /// on IO here.
  Status close(Fd fd);
  /// Removes the name. Open descriptors keep the file — and its extent —
  /// alive until the last close (deferred reclamation).
  sim::TaskOf<Status> unlink(const std::string& name);
  /// Renames within one volume; replaces an existing target (whose open
  /// descriptors, if any, keep the displaced file alive until last close).
  /// kXDev when `from` and `to` resolve to different mounts.
  sim::TaskOf<Status> rename(const std::string& from, const std::string& to);

  // ---- data path ---------------------------------------------------------

  /// Positional read of up to `npages` 4 KiB pages; returns pages actually
  /// read (short at EOF, 0 when `page` is at/past EOF).
  sim::TaskOf<Result<std::uint32_t>> pread(Fd fd, std::uint32_t page,
                                           std::uint32_t npages);
  /// Positional buffered write; kNoSpc beyond the file's reserved extent.
  sim::TaskOf<Result<std::uint32_t>> pwrite(Fd fd, std::uint32_t page,
                                            std::uint32_t npages);
  /// Read at the fd's offset; advances it by the pages read.
  sim::TaskOf<Result<std::uint32_t>> read(Fd fd, std::uint32_t npages);
  /// Write at the fd's offset; advances it by the pages written.
  sim::TaskOf<Result<std::uint32_t>> write(Fd fd, std::uint32_t npages);
  /// O_APPEND-style write at EOF; leaves the fd offset at the new EOF.
  sim::TaskOf<Result<std::uint32_t>> append(Fd fd, std::uint32_t npages);

  // ---- synchronization ---------------------------------------------------

  sim::TaskOf<Status> fsync(Fd fd);
  sim::TaskOf<Status> fdatasync(Fd fd);
  sim::TaskOf<Status> fbarrier(Fd fd);
  sim::TaskOf<Status> fdatabarrier(Fd fd);
  /// Resolves `intent` through the file's policy (per-file override if
  /// set, else the file's mount's policy) and issues the concrete syscall.
  sim::TaskOf<Status> sync(Fd fd, SyncIntent intent);

  // ---- descriptor metadata ----------------------------------------------

  Result<std::uint32_t> size_blocks(Fd fd) const;
  Result<std::uint32_t> extent_blocks(Fd fd) const;
  Result<std::uint64_t> offset(Fd fd) const;
  Status seek(Fd fd, std::uint64_t page);  // SEEK_SET, in pages

  /// Per-file policy override; applies to every fd sharing the vnode.
  Status set_policy(Fd fd, SyncPolicy policy);
  Result<SyncPolicy> policy_of(Fd fd) const;
  /// The first mount's policy (the Vfs-wide default of the single-volume
  /// configuration).
  const SyncPolicy& default_policy() const noexcept;

  /// The journal flavour behind the descriptor (the filesystem it was
  /// opened on, not what a later remount swapped in) — the capability
  /// lookup api::Ring's submit-time validation runs per sqe.
  Result<fs::JournalKind> journal_kind(Fd fd) const;

  /// The inode number behind the descriptor (fstat's st_ino). Lets a
  /// caller that captured an fd *number* earlier — e.g. in a ring sqe —
  /// detect that close() plus fd reuse rebound it to a different file.
  Result<std::uint32_t> ino_of(Fd fd) const;

  std::size_t open_fds() const noexcept { return open_fds_; }
  /// Node-wide statistics (every mount plus unroutable-name errors).
  const Stats& stats() const noexcept { return stats_; }
  /// The first mount's current filesystem (single-volume compat accessor).
  fs::Filesystem& filesystem() noexcept;
  /// The node's simulator (all mounts share it) — where api::Ring spawns
  /// its chain drivers.
  sim::Simulator& simulator() noexcept;

 private:
  /// One mount-table row. `filesystem` is what new opens resolve against
  /// (remount swaps it); vnodes capture the filesystem at open time.
  struct Mount {
    std::string name;  // "" = root mount
    fs::Filesystem* filesystem = nullptr;
    SyncPolicy policy;
    Stats stats;
  };
  /// A routed name: the owning mount and the volume-relative file name.
  struct Target {
    Mount* mount = nullptr;
    std::string rel;
  };

  /// In-core open-file object: one per file with >= 1 open descriptor.
  struct Vnode {
    fs::Inode* inode = nullptr;
    /// The filesystem the file was opened on — NOT mount->filesystem,
    /// which remount() may have swapped since.
    fs::Filesystem* fs = nullptr;
    std::uint32_t refcount = 0;
    /// In-flight syscalls currently suspended against this vnode; blocks
    /// retirement/reclamation the way in-flight kernel IO pins the file.
    std::uint32_t pins = 0;
    /// Name removed while descriptors were open: storage reclamation is
    /// deferred to the last close (kernel iput semantics).
    bool unlinked = false;
    /// High-water mark of append reservations; keeps concurrent appenders
    /// on disjoint pages even though the write itself suspends.
    std::uint32_t append_cursor = 0;
    std::optional<SyncPolicy> policy;
  };
  struct FdEntry {
    Vnode* vnode = nullptr;  // nullptr = free slot
    /// The mount the descriptor was opened through — the kernel's
    /// struct file -> vfsmount edge. Policy resolution and stats
    /// attribution live here, so one file reached through two mounts of
    /// the same filesystem keeps per-mount semantics.
    Mount* mount = nullptr;
    std::uint64_t offset = 0;
    /// Bumped on every close: an IO that suspended against an earlier
    /// incarnation of this slot must not touch the offset of a descriptor
    /// opened into the recycled slot afterwards (fd-reuse ABA).
    std::uint64_t generation = 0;
    /// Linux errseq_t, per-fd half: the inode's wb_err_seq this descriptor
    /// has already reported. A sync syscall observing inode->wb_err_seq >
    /// wb_err_seen returns EIO exactly once, then catches up — a failed
    /// data writeback is reported on every fd, but only once per fd.
    std::uint64_t wb_err_seen = 0;
  };

  /// Routes `name` through the mount table: a matching "/component" wins;
  /// anything else goes to the root mount verbatim. kNoEnt when nothing
  /// matches and no root mount exists, kInval for names that denote a
  /// mount point itself rather than a file in it.
  Result<Target> resolve(const std::string& name) const;

  /// Maps fd to its table entry; nullptr (and an errors++ tick) if the
  /// descriptor is not open — the EBADF funnel for every syscall.
  FdEntry* entry(Fd fd);
  const FdEntry* entry(Fd fd) const;
  Mount* find_mount(std::string_view name) const noexcept;
  /// `filesystem` is the one the caller resolved *before* any suspension —
  /// not mount->filesystem, which a concurrent remount may have swapped.
  Vnode& vnode_for(fs::Filesystem& filesystem, fs::Inode& inode);
  Fd alloc_fd(Vnode& vn, Mount& mount);
  /// Error funnel: ticks node-wide errors, and the mount's when known.
  Errno fail(Errno e) const;
  Errno fail(Mount& m, Errno e) const;
  /// Shared tail of every sync syscall: maps the filesystem's verdict
  /// (kIo = this call's journal commit died and degraded the volume,
  /// kRoFs = it was already degraded at entry) to an errno, then runs the
  /// errseq check — a data-writeback failure recorded on the inode since
  /// this descriptor last looked is EIO exactly once per fd. `gen` pins
  /// the descriptor incarnation across the sync's suspension (fd-reuse
  /// ABA, as in read/write).
  Status sync_epilogue(Fd fd, std::uint64_t gen, Vnode& vn, Mount& m,
                       fs::FsStatus st);
  /// Drops one descriptor reference (close path).
  void unref(Vnode& vn);
  /// Marks a syscall in flight against `vn` across its suspension points:
  /// a close() racing with in-flight IO must not reclaim the extent the IO
  /// still targets (the kernel equivalent: in-flight requests hold the
  /// struct file). Deliberately NOT RAII: a pinned frame destroyed at
  /// simulator teardown must not call back into a possibly-dead Vfs, so
  /// the balancing unpin() is an explicit statement before co_return and
  /// is simply skipped (harmless leak) when the frame dies mid-flight.
  static void pin(Vnode& vn) { ++vn.pins; }
  void unpin(Vnode& vn);
  /// Frees the vnode once no descriptor and no in-flight syscall uses it;
  /// reclaims storage if the file was unlinked meanwhile.
  void maybe_retire(Vnode& vn);

  /// Mount rows are stable (unique_ptr) so vnodes can point at them.
  std::vector<std::unique_ptr<Mount>> mounts_;
  std::vector<FdEntry> fds_;
  /// Live vnodes keyed by inode *pointer*, not ino: a filesystem recycles
  /// inos on unlink while open descriptors still pin the old (stable,
  /// never-freed) Inode object, so the pointer is the only safe identity —
  /// and distinct volumes' inodes are distinct objects, so one map serves
  /// every mount.
  std::unordered_map<const fs::Inode*, std::unique_ptr<Vnode>> vnodes_;
  std::size_t open_fds_ = 0;
  mutable Stats stats_;  // mutable: error ticks happen in const accessors
};

// ---- File sugar (delegates to the owning Vfs) ------------------------------

namespace detail {
/// Lazily-ready error task: syscalls on a default-constructed (never
/// opened) File resolve to EBADF like any stale descriptor, not a crash.
template <typename T>
inline sim::TaskOf<T> ready_error(Errno e) {
  co_return T(e);
}
}  // namespace detail

inline sim::TaskOf<Result<std::uint32_t>> File::pread(std::uint32_t page,
                                                      std::uint32_t npages) {
  if (vfs_ == nullptr)
    return detail::ready_error<Result<std::uint32_t>>(Errno::kBadF);
  return vfs_->pread(fd_, page, npages);
}
inline sim::TaskOf<Result<std::uint32_t>> File::pwrite(std::uint32_t page,
                                                       std::uint32_t npages) {
  if (vfs_ == nullptr)
    return detail::ready_error<Result<std::uint32_t>>(Errno::kBadF);
  return vfs_->pwrite(fd_, page, npages);
}
inline sim::TaskOf<Result<std::uint32_t>> File::read(std::uint32_t npages) {
  if (vfs_ == nullptr)
    return detail::ready_error<Result<std::uint32_t>>(Errno::kBadF);
  return vfs_->read(fd_, npages);
}
inline sim::TaskOf<Result<std::uint32_t>> File::write(std::uint32_t npages) {
  if (vfs_ == nullptr)
    return detail::ready_error<Result<std::uint32_t>>(Errno::kBadF);
  return vfs_->write(fd_, npages);
}
inline sim::TaskOf<Result<std::uint32_t>> File::append(std::uint32_t npages) {
  if (vfs_ == nullptr)
    return detail::ready_error<Result<std::uint32_t>>(Errno::kBadF);
  return vfs_->append(fd_, npages);
}
inline sim::TaskOf<Status> File::fsync() {
  if (vfs_ == nullptr) return detail::ready_error<Status>(Errno::kBadF);
  return vfs_->fsync(fd_);
}
inline sim::TaskOf<Status> File::fdatasync() {
  if (vfs_ == nullptr) return detail::ready_error<Status>(Errno::kBadF);
  return vfs_->fdatasync(fd_);
}
inline sim::TaskOf<Status> File::fbarrier() {
  if (vfs_ == nullptr) return detail::ready_error<Status>(Errno::kBadF);
  return vfs_->fbarrier(fd_);
}
inline sim::TaskOf<Status> File::fdatabarrier() {
  if (vfs_ == nullptr) return detail::ready_error<Status>(Errno::kBadF);
  return vfs_->fdatabarrier(fd_);
}
inline sim::TaskOf<Status> File::sync(SyncIntent intent) {
  if (vfs_ == nullptr) return detail::ready_error<Status>(Errno::kBadF);
  return vfs_->sync(fd_, intent);
}
inline sim::TaskOf<Status> File::order_point() {
  return sync(SyncIntent::kOrder);
}
inline sim::TaskOf<Status> File::durability_point() {
  return sync(SyncIntent::kDurability);
}
inline sim::TaskOf<Status> File::sync_file() {
  return sync(SyncIntent::kFullSync);
}
inline Status File::close() {
  if (vfs_ == nullptr) return Errno::kBadF;
  const Status s = vfs_->close(fd_);
  if (s.ok()) fd_ = kInvalidFd;
  return s;
}
inline Result<std::uint32_t> File::size_blocks() const {
  if (vfs_ == nullptr) return Errno::kBadF;
  return vfs_->size_blocks(fd_);
}
inline Result<std::uint32_t> File::extent_blocks() const {
  if (vfs_ == nullptr) return Errno::kBadF;
  return vfs_->extent_blocks(fd_);
}
inline Status File::set_policy(SyncPolicy policy) {
  if (vfs_ == nullptr) return Errno::kBadF;
  return vfs_->set_policy(fd_, policy);
}

}  // namespace bio::api
