// Public API: assembling whole IO stacks for an experiment.
//
// A Volume is one complete per-device IO stack — flash device, block layer
// and filesystem — wired per StackKind:
//
//   kind      | device barrier      | block layer          | filesystem
//   ----------+---------------------+----------------------+---------------
//   EXT4-DR   | none (legacy)       | legacy (elevator)    | JBD2
//   EXT4-OD   | none (legacy)       | legacy (elevator)    | JBD2 nobarrier
//   BFS-DR    | in-order recovery   | epoch + ordered disp.| BarrierFS
//   BFS-OD    | in-order recovery   | epoch + ordered disp.| BarrierFS
//   OptFS     | none (legacy)       | legacy (elevator)    | OptFS
//
// A Stack is a host node: it owns one shared sim::Simulator and one or
// more heterogeneous volumes (e.g. BFS-DR and EXT4-DR side by side, each
// with its own DeviceProfile) — the way a real host runs several
// independent journaled filesystems over several flash devices behind one
// syscall layer. The single-volume StackConfig constructor is the
// one-mount special case every per-device experiment uses; applications
// reach the volumes through api::Vfs, whose mount table routes
// "/<volume>/<file>" paths (and resolves per-volume SyncPolicy rows).
//
// DR/OD for BarrierFS differ in which syscalls the workloads call; the
// substitution table the paper uses (§5, §6.4, §6.5) lives in
// api::SyncPolicy, and applications reach it through api::Vfs/api::File.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blk/block_layer.h"
#include "flash/device.h"
#include "flash/profile.h"
#include "fs/filesystem.h"
#include "sim/simulator.h"

namespace bio::core {

enum class StackKind : std::uint8_t {
  kExt4DR,  // EXT4, full durability (baseline)
  kExt4OD,  // EXT4 mounted nobarrier (ordering only, unsafely)
  kBfsDR,   // BarrierFS, fsync/fdatasync
  kBfsOD,   // BarrierFS, fbarrier/fdatabarrier
  kOptFs,   // OptFS osync
};

const char* to_string(StackKind k) noexcept;

/// One volume's wiring: device profile + block layer + filesystem, all
/// derived from (kind, device) by make(). `name` is the mount component
/// api::Vfs routes by ("/name/file"); single-volume stacks may leave it
/// empty (root mount).
struct VolumeConfig {
  StackKind kind = StackKind::kExt4DR;
  std::string name;
  flash::DeviceProfile device = flash::DeviceProfile::plain_ssd();
  blk::BlockLayerConfig blk;
  fs::FsConfig fs;

  /// Fills all dependent fields from (kind, device). Mobile devices get
  /// JBD2 transactional checksums, as the paper's smartphone setup does.
  static VolumeConfig make(StackKind kind, flash::DeviceProfile device,
                           std::string name = {});
};

/// One per-device IO stack living inside a node: flash device, block layer
/// and filesystem over a simulator the node shares across volumes. Each
/// volume has its own journal, its own recovery domain and its own stats —
/// nothing below the syscall layer is shared between volumes.
class Volume {
 public:
  Volume(sim::Simulator& sim, VolumeConfig config);

  /// Starts device, block layer, filesystem threads. Call once.
  void start();

  sim::Simulator& sim() noexcept { return sim_; }
  flash::StorageDevice& device() noexcept { return *device_; }
  blk::BlockLayer& blk() noexcept { return *blk_; }
  fs::Filesystem& fs() noexcept { return *fs_; }
  StackKind kind() const noexcept { return config_.kind; }
  const std::string& name() const noexcept { return config_.name; }
  const VolumeConfig& config() const noexcept { return config_; }

 private:
  VolumeConfig config_;
  sim::Simulator& sim_;
  std::unique_ptr<flash::StorageDevice> device_;
  std::unique_ptr<blk::BlockLayer> blk_;
  std::unique_ptr<fs::Filesystem> fs_;
};

/// Single-volume stack configuration (the historical shape: one kind, one
/// device, one filesystem, plus the simulator parameters). Still the
/// configuration every per-figure experiment uses.
struct StackConfig {
  StackKind kind = StackKind::kExt4DR;
  flash::DeviceProfile device = flash::DeviceProfile::plain_ssd();
  blk::BlockLayerConfig blk;
  fs::FsConfig fs;
  sim::Simulator::Params sim{.wake_latency = 15'000};

  static StackConfig make(StackKind kind, flash::DeviceProfile device);

  /// The same wiring as a volume of a multi-volume node.
  VolumeConfig volume(std::string name = {}) const;
  /// The inverse: a single-volume StackConfig over `v`'s wiring. The only
  /// place the field lists of the two config shapes meet (volume() aside).
  static StackConfig of_volume(const VolumeConfig& v,
                               sim::Simulator::Params sim_params);
};

/// Multi-volume node configuration: one simulator, N volumes.
struct NodeConfig {
  sim::Simulator::Params sim{.wake_latency = 15'000};
  std::vector<VolumeConfig> volumes;

  /// A node of `bases.size()` volumes named "v0", "v1", ... — one per
  /// single-volume config. Simulator params come from the first base (the
  /// node has one clock; per-volume sim params cannot exist).
  static NodeConfig from(const std::vector<StackConfig>& bases);
};

/// A host node: one shared simulator plus one or more volumes. The
/// single-volume accessors (device()/blk()/fs()/kind()) delegate to volume
/// 0, so every existing per-device experiment keeps compiling; multi-volume
/// callers iterate volumes() or index volume(i).
class Stack {
 public:
  /// One-volume node (the historical constructor).
  explicit Stack(StackConfig config);
  /// Multi-volume node; requires at least one volume.
  explicit Stack(NodeConfig config);

  /// Starts every volume's device, block layer and filesystem threads.
  /// Call once.
  void start();

  sim::Simulator& sim() noexcept { return sim_; }

  std::size_t volume_count() const noexcept { return volumes_.size(); }
  Volume& volume(std::size_t i) noexcept { return *volumes_[i]; }
  const std::vector<std::unique_ptr<Volume>>& volumes() const noexcept {
    return volumes_;
  }
  /// The volume mounted as `name`, or nullptr.
  Volume* find_volume(const std::string& name) noexcept;

  // Single-volume accessors: volume 0 (the one-mount special case).
  flash::StorageDevice& device() noexcept { return volumes_[0]->device(); }
  blk::BlockLayer& blk() noexcept { return volumes_[0]->blk(); }
  fs::Filesystem& fs() noexcept { return volumes_[0]->fs(); }
  StackKind kind() const noexcept { return volumes_[0]->kind(); }
  const StackConfig& config() const noexcept { return config_; }

 private:
  StackConfig config_;  // volume 0's wiring + sim params (compat surface)
  sim::Simulator sim_;
  std::vector<std::unique_ptr<Volume>> volumes_;
};

}  // namespace bio::core
