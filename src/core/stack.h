// Public API: assembling a whole IO stack for an experiment.
//
// A Stack owns the simulator, the device, the block layer and the
// filesystem, wired per StackKind:
//
//   kind      | device barrier      | block layer          | filesystem
//   ----------+---------------------+----------------------+---------------
//   EXT4-DR   | none (legacy)       | legacy (elevator)    | JBD2
//   EXT4-OD   | none (legacy)       | legacy (elevator)    | JBD2 nobarrier
//   BFS-DR    | in-order recovery   | epoch + ordered disp.| BarrierFS
//   BFS-OD    | in-order recovery   | epoch + ordered disp.| BarrierFS
//   OptFS     | none (legacy)       | legacy (elevator)    | OptFS
//
// DR/OD for BarrierFS differ in which syscalls the workloads call; the
// substitution table the paper uses (§5, §6.4, §6.5) lives in
// api::SyncPolicy, and applications reach it through api::Vfs/api::File.
#pragma once

#include <memory>
#include <string>

#include "blk/block_layer.h"
#include "flash/device.h"
#include "flash/profile.h"
#include "fs/filesystem.h"
#include "sim/simulator.h"

namespace bio::core {

enum class StackKind : std::uint8_t {
  kExt4DR,  // EXT4, full durability (baseline)
  kExt4OD,  // EXT4 mounted nobarrier (ordering only, unsafely)
  kBfsDR,   // BarrierFS, fsync/fdatasync
  kBfsOD,   // BarrierFS, fbarrier/fdatabarrier
  kOptFs,   // OptFS osync
};

const char* to_string(StackKind k) noexcept;

struct StackConfig {
  StackKind kind = StackKind::kExt4DR;
  flash::DeviceProfile device = flash::DeviceProfile::plain_ssd();
  blk::BlockLayerConfig blk;
  fs::FsConfig fs;
  sim::Simulator::Params sim{.wake_latency = 15'000};

  /// Fills all dependent fields from (kind, device). Mobile devices get
  /// JBD2 transactional checksums, as the paper's smartphone setup does.
  static StackConfig make(StackKind kind, flash::DeviceProfile device);
};

class Stack {
 public:
  explicit Stack(StackConfig config);

  /// Starts device, block layer, filesystem threads. Call once.
  void start();

  sim::Simulator& sim() noexcept { return sim_; }
  flash::StorageDevice& device() noexcept { return *device_; }
  blk::BlockLayer& blk() noexcept { return *blk_; }
  fs::Filesystem& fs() noexcept { return *fs_; }
  StackKind kind() const noexcept { return config_.kind; }
  const StackConfig& config() const noexcept { return config_; }

 private:
  StackConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<flash::StorageDevice> device_;
  std::unique_ptr<blk::BlockLayer> blk_;
  std::unique_ptr<fs::Filesystem> fs_;
};

}  // namespace bio::core
