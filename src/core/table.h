// Tiny fixed-width table printer for the benchmark harnesses, so every
// bench binary prints paper-style rows without hand-aligned iostream code.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bio::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    print_row(headers_, widths);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c], '-');
      if (c + 1 < widths.size()) sep += "-+-";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row, widths);
  }

  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s", static_cast<int>(widths[c]), cells[c].c_str());
      if (c + 1 < cells.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bio::core
