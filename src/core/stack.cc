#include "core/stack.h"

#include <utility>

#include "sim/check.h"

namespace bio::core {

const char* to_string(StackKind k) noexcept {
  switch (k) {
    case StackKind::kExt4DR: return "EXT4-DR";
    case StackKind::kExt4OD: return "EXT4-OD";
    case StackKind::kBfsDR: return "BFS-DR";
    case StackKind::kBfsOD: return "BFS-OD";
    case StackKind::kOptFs: return "OptFS";
  }
  return "?";
}

VolumeConfig VolumeConfig::make(StackKind kind, flash::DeviceProfile device,
                                std::string name) {
  VolumeConfig c;
  c.kind = kind;
  c.name = std::move(name);
  const bool mobile = device.name == "UFS" || device.name == "eMMC";
  switch (kind) {
    case StackKind::kExt4DR:
    case StackKind::kExt4OD:
      c.device = device.with_barrier(flash::BarrierMode::kNone);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = false;
      c.blk.order_preserving_dispatch = false;
      c.fs.journal = fs::JournalKind::kJbd2;
      c.fs.nobarrier = kind == StackKind::kExt4OD;
      c.fs.journal_checksum = mobile;  // §6.3: smartphone EXT4 setup
      break;
    case StackKind::kBfsDR:
    case StackKind::kBfsOD:
      c.device = device.with_barrier(flash::BarrierMode::kInOrderRecovery);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = true;
      c.blk.order_preserving_dispatch = true;
      c.fs.journal = fs::JournalKind::kBarrierFs;
      break;
    case StackKind::kOptFs:
      c.device = device.with_barrier(flash::BarrierMode::kNone);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = false;
      c.blk.order_preserving_dispatch = false;
      c.fs.journal = fs::JournalKind::kOptFs;
      break;
  }
  return c;
}

StackConfig StackConfig::make(StackKind kind, flash::DeviceProfile device) {
  return of_volume(VolumeConfig::make(kind, std::move(device)),
                   StackConfig{}.sim);
}

VolumeConfig StackConfig::volume(std::string name) const {
  VolumeConfig v;
  v.kind = kind;
  v.name = std::move(name);
  v.device = device;
  v.blk = blk;
  v.fs = fs;
  return v;
}

StackConfig StackConfig::of_volume(const VolumeConfig& v,
                                   sim::Simulator::Params sim_params) {
  StackConfig c;
  c.kind = v.kind;
  c.device = v.device;
  c.blk = v.blk;
  c.fs = v.fs;
  c.sim = sim_params;
  return c;
}

NodeConfig NodeConfig::from(const std::vector<StackConfig>& bases) {
  NodeConfig cfg;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    if (i == 0) cfg.sim = bases[i].sim;
    cfg.volumes.push_back(bases[i].volume("v" + std::to_string(i)));
  }
  return cfg;
}

Volume::Volume(sim::Simulator& sim, VolumeConfig config)
    : config_(std::move(config)), sim_(sim) {
  device_ = std::make_unique<flash::StorageDevice>(sim_, config_.device);
  blk_ = std::make_unique<blk::BlockLayer>(sim_, *device_, config_.blk);
  fs_ = std::make_unique<fs::Filesystem>(sim_, *blk_, config_.fs);
}

void Volume::start() {
  device_->start();
  blk_->start();
  fs_->start();
}

Stack::Stack(StackConfig config)
    : config_(std::move(config)), sim_(config_.sim) {
  volumes_.push_back(std::make_unique<Volume>(sim_, config_.volume()));
}

Stack::Stack(NodeConfig config) : sim_(config.sim) {
  BIO_CHECK_MSG(!config.volumes.empty(), "node with zero volumes");
  for (VolumeConfig& v : config.volumes)
    volumes_.push_back(std::make_unique<Volume>(sim_, std::move(v)));
  // Materialize the compat surface (config()/kind()) from volume 0.
  config_ = StackConfig::of_volume(volumes_[0]->config(), config.sim);
}

Volume* Stack::find_volume(const std::string& name) noexcept {
  for (const std::unique_ptr<Volume>& v : volumes_)
    if (v->name() == name) return v.get();
  return nullptr;
}

void Stack::start() {
  for (const std::unique_ptr<Volume>& v : volumes_) v->start();
}

}  // namespace bio::core
