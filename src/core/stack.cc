#include "core/stack.h"

namespace bio::core {

const char* to_string(StackKind k) noexcept {
  switch (k) {
    case StackKind::kExt4DR: return "EXT4-DR";
    case StackKind::kExt4OD: return "EXT4-OD";
    case StackKind::kBfsDR: return "BFS-DR";
    case StackKind::kBfsOD: return "BFS-OD";
    case StackKind::kOptFs: return "OptFS";
  }
  return "?";
}

StackConfig StackConfig::make(StackKind kind, flash::DeviceProfile device) {
  StackConfig c;
  c.kind = kind;
  const bool mobile = device.name == "UFS" || device.name == "eMMC";
  switch (kind) {
    case StackKind::kExt4DR:
    case StackKind::kExt4OD:
      c.device = device.with_barrier(flash::BarrierMode::kNone);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = false;
      c.blk.order_preserving_dispatch = false;
      c.fs.journal = fs::JournalKind::kJbd2;
      c.fs.nobarrier = kind == StackKind::kExt4OD;
      c.fs.journal_checksum = mobile;  // §6.3: smartphone EXT4 setup
      break;
    case StackKind::kBfsDR:
    case StackKind::kBfsOD:
      c.device = device.with_barrier(flash::BarrierMode::kInOrderRecovery);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = true;
      c.blk.order_preserving_dispatch = true;
      c.fs.journal = fs::JournalKind::kBarrierFs;
      break;
    case StackKind::kOptFs:
      c.device = device.with_barrier(flash::BarrierMode::kNone);
      c.blk.scheduler = "elevator";
      c.blk.epoch_scheduling = false;
      c.blk.order_preserving_dispatch = false;
      c.fs.journal = fs::JournalKind::kOptFs;
      break;
  }
  return c;
}

Stack::Stack(StackConfig config)
    : config_(std::move(config)), sim_(config_.sim) {
  device_ = std::make_unique<flash::StorageDevice>(sim_, config_.device);
  blk_ = std::make_unique<blk::BlockLayer>(sim_, *device_, config_.blk);
  fs_ = std::make_unique<fs::Filesystem>(sim_, *blk_, config_.fs);
}

void Stack::start() {
  device_->start();
  blk_->start();
  fs_->start();
}

}  // namespace bio::core
