// The filesystem facade: the syscall surface the applications use.
//
// One Filesystem owns a page cache, an inode table, an extent allocator and
// a journal (JBD2, BarrierFS or OptFS per FsConfig::journal). The syscalls
// are simulated-thread Tasks; their blocking structure (who waits for which
// DMA/flush) is exactly the paper's:
//
//            | data writes          | metadata commit        | data-only sync
//   ---------+----------------------+------------------------+---------------
//   EXT4     | submit + wait (WoT)  | commit + wait durable  | flush + wait
//   EXT4-OD  | submit + wait (WoT)  | commit + wait transfer | (nothing)
//   BarrierFS| submit ordered       | commit (1 wakeup)      | wait + flush
//   fbarrier | submit ordered       | wait dispatch only     | barrier flag
//   fdatabar.| submit ordered+barrier| epoch delimit, no wait| —
//   OptFS    | submit + wait (WoT)  | commit + wait transfer | —
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blk/block_layer.h"
#include "fs/journal.h"
#include "fs/page_cache.h"
#include "fs/types.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace bio::fs {

struct RecoveryReport;  // fs/recovery.h

class Filesystem {
 public:
  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t fdatasyncs = 0;
    std::uint64_t fbarriers = 0;
    std::uint64_t fdatabarriers = 0;
    std::uint64_t osyncs = 0;
    std::uint64_t dsyncs = 0;
    std::uint64_t creates = 0;
    std::uint64_t unlinks = 0;
    std::uint64_t renames = 0;
    std::uint64_t writeback_pages = 0;
  };

  Filesystem(sim::Simulator& sim, blk::BlockLayer& blk, FsConfig cfg);

  /// Spawns journal threads and pdflush. Call once after blk.start().
  void start();

  /// Remounts this (fresh, unused) filesystem over a recovered image:
  /// rebuilds the namespace and inode table from the files fs::Recovery
  /// reconstructed. Call before running any workload; start() may be
  /// called before or after.
  void mount(const RecoveryReport& recovered);

  // ---- namespace ---------------------------------------------------------

  /// Creates a file with a contiguous extent (default size from config).
  /// Dirties the directory and the new inode's metadata.
  sim::Task create(std::string name, Inode*& out,
                   std::uint32_t extent_blocks = 0);
  Inode* lookup(const std::string& name);
  /// Removes a file; recycles its extent and inode. Dirties the directory.
  sim::Task unlink(const std::string& name);
  /// Removes the name but does NOT recycle the extent/ino: callers holding
  /// open descriptors (api::Vfs) keep writing to the inode's storage and
  /// call reclaim() on the last close, as the kernel does at iput().
  sim::Task unlink_deferred(const std::string& name);
  /// Moves a file to a new name. `from` must exist; an existing `to` is
  /// displaced *in the same transaction* (POSIX: the destination name
  /// atomically switches files, and a crash never exposes a state where
  /// it vanished). The displaced inode keeps living (open descriptors);
  /// the caller owns its storage reclamation, as with unlink_deferred().
  /// Journal reservations happen before the namespace mutation so the
  /// rename replays atomically under crash recovery; returns false —
  /// with nothing changed — when a concurrent namespace operation won
  /// the race during those (suspending) reservations.
  sim::TaskOf<bool> rename(const std::string& from, const std::string& to);
  /// Recycles an unlinked inode's extent and ino (deferred reclamation).
  void reclaim(Inode& f);
  /// True while create() can still allocate an inode (the fd-visible
  /// capacity check api::Vfs uses for its ENOSPC path).
  bool has_free_inode() const noexcept {
    return !free_inos_.empty() || next_ino_ < cfg_.max_inodes;
  }

  // ---- data path ---------------------------------------------------------

  /// Buffered write of `npages` pages at `page` offset. Allocating writes
  /// (beyond current size) dirty the inode's size; every write may dirty
  /// the timestamp once per timer tick.
  sim::Task write(Inode& f, std::uint32_t page, std::uint32_t npages);

  /// kIo when any miss's device read hard-failed (transient read faults
  /// are retried by the block layer and stay invisible here).
  sim::TaskOf<FsStatus> read(Inode& f, std::uint32_t page,
                             std::uint32_t npages);

  // ---- synchronization (the paper's API) ----------------------------------
  //
  // Every sync returns an FsStatus: kRoFs when the volume was already
  // degraded read-only at entry, kIo when the call's own journal commit
  // died under it (the abort degrades the volume — errors=remount-ro).
  // Failed *data* writebacks do not fail the call here; they redirty the
  // pages and bump the inode's wb_err_seq, and api::Vfs turns an advanced
  // sequence into EIO exactly once per fd (Linux errseq_t semantics).

  sim::TaskOf<FsStatus> fsync(Inode& f);
  sim::TaskOf<FsStatus> fdatasync(Inode& f);
  /// Ordering-guarantee-only fsync (BarrierFS; osync on OptFS).
  sim::TaskOf<FsStatus> fbarrier(Inode& f);
  /// Ordering-guarantee-only fdatasync: returns right after dispatch.
  sim::TaskOf<FsStatus> fdatabarrier(Inode& f);

  /// OptFS osync(): ordering commit with Wait-on-Transfer, no flush.
  sim::TaskOf<FsStatus> osync(Inode& f, bool wait_transfer);

  /// OptFS dsync(): osync plus a cache flush — the caller's *data* is on
  /// media at return, while the metadata commit itself keeps osync's
  /// asynchronous-durability protocol (no Wait-on-Flush inside the
  /// journal; the trailing flush is what makes the data stick).
  sim::TaskOf<FsStatus> dsync(Inode& f);

  /// True once the journal aborted and degraded this volume read-only
  /// (errors=remount-ro). Reads keep working; api::Vfs fails writes and
  /// syncs with EROFS. Recovery happens by remounting over the recovered
  /// image (crash + fs::Recovery + mount()), not in place.
  bool degraded() const noexcept { return degraded_; }

  Journal& journal() noexcept { return *journal_; }
  sim::Simulator& sim() noexcept { return sim_; }
  const Stats& stats() const noexcept { return stats_; }
  const FsConfig& config() const noexcept { return cfg_; }
  const Layout& layout() const noexcept { return layout_; }
  PageCache& page_cache() noexcept { return cache_; }

  /// Latency recorders keyed by syscall, filled automatically.
  const sim::LatencyRecorder& fsync_latency() const noexcept {
    return fsync_latency_;
  }
  sim::LatencyRecorder& fsync_latency() noexcept { return fsync_latency_; }

 private:
  bool barrier_capable() const noexcept {
    return cfg_.journal == JournalKind::kBarrierFs;
  }

  /// The osync protocol body, shared by osync() and dsync() (which counts
  /// under its own stat instead of osyncs).
  sim::TaskOf<FsStatus> osync_impl(Inode& f, bool wait_transfer);

  /// Scans completed requests for IO failure: redirties the dead carriers'
  /// pages and advances f.wb_err_seq once per failed request. Called at
  /// every sync-path wait site (after the requests' completions fired).
  void note_writeback_failures(Inode& f,
                               const std::vector<blk::RequestPtr>& reqs);

  /// Post-commit-wait verdict: kIo when the journal aborted without
  /// durably retiring `tid` (this call's commit died), kOk otherwise.
  FsStatus commit_outcome(std::uint64_t tid) const;

  /// Waits until no dirty page of `f` still has an in-flight writeback
  /// copy (stable resubmission; see the definition). Every sync path calls
  /// this before submit_data.
  sim::Task wait_stable_pages(Inode& f);

  /// Submits write requests for the file's dirty pages (grouped into
  /// contiguous runs). `ordered`/`barrier_last` control the request flags.
  /// Runs without suspension (uses the shared scratch buffers).
  std::vector<blk::RequestPtr> submit_data(Inode& f, bool ordered,
                                           bool barrier_last);

  /// OptFS: strips up to `max_pages` overwrite pages out of the dirty set
  /// into the journal (selective data journaling); returns the count
  /// journaled. Batches are bounded so one transaction's JD record always
  /// fits the journal (osync_impl splits larger payloads across commits).
  std::uint32_t journal_overwrites(Inode& f, std::size_t max_pages);

  /// Journal close hook: freezes each dirtied metadata block's logical
  /// content (MetaSnapshot) into the closing transaction.
  void snapshot_metadata(Txn& txn);

  sim::Task wait_requests(const std::vector<blk::RequestPtr>& reqs);
  sim::Task request_backpressure();
  /// ext4_sync_file's "journal already committed" barrier: a durability
  /// syscall whose metadata transaction committed (and flushed) *before*
  /// this call's data transferred must still issue a flush, or the data
  /// sits in the device cache while the caller believes it durable. Waits
  /// the requests' transfers, then flushes unless every request provably
  /// persisted (its cache watermark drained — e.g. under the commit's own
  /// flush).
  sim::Task ensure_data_durable(const Inode& f,
                                const std::vector<blk::RequestPtr>& reqs);
  /// Waits out in-flight writeback carriers of `f` not already in `reqs`
  /// and appends them to `reqs`, so the caller's later durability proof
  /// (ensure_data_durable) covers foreign writebacks too.
  sim::Task wait_file_writebacks(Inode& f,
                                 std::vector<blk::RequestPtr>& reqs);
  /// True while `tid` names a transaction not yet durably retired — the
  /// "a concurrent syscall's commit still holds this inode's metadata"
  /// test behind the i_sync_tid / i_datasync_tid waits in fsync/fdatasync.
  bool txn_in_flight(std::uint64_t tid) const;
  sim::TaskOf<FsStatus> wait_txn_durable(std::uint64_t tid);
  sim::Task remove_name(const std::string& name, bool reclaim_now);
  sim::Task pdflush_loop();
  sim::Task throttle_writer();
  flash::Lba dir_block_of(const std::string& name) const;
  sim::TaskOf<FsStatus> commit_metadata(Inode& f, Journal::WaitMode mode);

  sim::Simulator& sim_;
  blk::BlockLayer& blk_;
  FsConfig cfg_;
  Layout layout_;
  PageCache cache_;
  std::unique_ptr<Journal> journal_;

  std::unordered_map<std::string, std::unique_ptr<Inode>> files_;
  /// Unlinked inodes stay alive (open file descriptors may still reference
  /// them, as with the kernel's inode refcount); their ino/extent are
  /// recycled immediately.
  std::vector<std::unique_ptr<Inode>> unlinked_;
  /// Live files by ino (snapshot_metadata's inode-block lookup).
  std::unordered_map<std::uint32_t, Inode*> by_ino_;
  /// Directory-shard contents by shard index: name -> ino (the logical
  /// content of the shard's directory block).
  std::vector<std::map<std::string, std::uint32_t>> shard_entries_;
  std::uint32_t next_ino_ = 1;  // ino 0 is the root directory
  std::deque<std::uint32_t> free_inos_;
  flash::Lba data_next_ = 0;
  std::deque<std::pair<flash::Lba, std::uint32_t>> free_extents_;
  Inode root_;

  sim::Notify writeback_progress_;
  Stats stats_;
  sim::LatencyRecorder fsync_latency_;
  bool started_ = false;
  /// Journal aborted -> volume read-only (set by the journal's abort hook).
  bool degraded_ = false;

  /// Scratch buffers reused by the suspension-free helpers (submit_data,
  /// journal_overwrites). The simulator is single-threaded and these
  /// helpers never co_await, so sharing them across concurrent syscalls is
  /// safe and keeps the per-fsync heap traffic at zero.
  std::vector<PageCache::PageKey> scratch_keys_;
  std::vector<blk::Block> scratch_blocks_;
};

}  // namespace bio::fs
