// Crash recovery: rebuilding filesystem state from a durable device image.
//
// The simulator's device answers "what survives a power cut right now" as a
// block-level image (lba -> version, the payload identity). This module is
// the *mount-time* half of crash consistency: it scans the journal area of
// that image, validates transactions according to the journal flavour's
// commit protocol, truncates the incomplete tail, replays the surviving
// log copies over the in-place state, and reconstructs the filesystem
// namespace from the recovered metadata blocks (DESIGN.md §6.6).
//
// Validation per journal kind:
//   * JBD2 (flush/FUA commits): a commit record found without its complete
//     descriptor chain is the end of the log. A *log* block that did not
//     survive under a surviving commit record is undetectable without
//     checksums — recovery replays the stale block and the home block is
//     silently corrupted (exactly the nobarrier failure mode the paper
//     opens with).
//   * JBD2 journal_checksum / OptFS (checksummed JD+JC): any missing piece
//     fails the checksum; the transaction and everything after it is
//     discarded (tail truncation), never replayed corruptly.
//   * BarrierFS: JBD2 record format; the epoch-ordered device makes "JC
//     durable but JD torn" impossible, which recovery double-checks.
//
// The scan starts at the journal superblock's tail pointer
// (Journal::sb_tail_txn) — transactions before it were released only after
// their in-place checkpoint copies were durable, so they need no replay.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/journal.h"
#include "fs/types.h"

namespace bio::fs {

/// What recovery reconstructed from a durable image.
struct RecoveryReport {
  struct RecoveredFile {
    std::string name;
    std::uint32_t ino = 0;
    flash::Lba extent_base = 0;
    std::uint32_t extent_blocks = 0;
    std::uint32_t size_blocks = 0;
  };

  /// The recovered namespace: files whose directory entry and inode both
  /// survived (directly or via replay).
  std::vector<RecoveredFile> files;

  /// Recovered data-block content: lba -> content version, combining the
  /// image's in-place state (checkpoint copies resolved to their payload)
  /// with replayed journaled data.
  std::unordered_map<flash::Lba, flash::Version> data;

  std::uint64_t scan_start_txn = 0;
  std::uint64_t last_replayed_txn = 0;
  std::uint32_t txns_replayed = 0;
  /// Transactions with surviving commit evidence that were discarded
  /// because the scan stopped before them (tail truncation).
  std::uint32_t txns_discarded = 0;
  /// The scan stopped at a transaction with partial evidence (torn tail).
  bool tail_truncated = false;
  /// A checksum mismatch halted the scan (checksummed journals only).
  /// This is the mechanism *working* — the torn tail was caught and
  /// discarded, nothing replayed corruptly.
  bool corruption_detected = false;
  /// Home blocks recovery *silently corrupted* by replaying stale log
  /// copies (non-checksummed journal with a surviving commit record over a
  /// torn descriptor chain — undetectable at mount time, fatal in reality).
  std::vector<flash::Lba> corrupted_blocks;

  /// No block was silently destroyed (detected truncation is fine).
  bool clean() const noexcept { return corrupted_blocks.empty(); }
};

class Recovery {
 public:
  /// Binds to the crashed stack's journal (for the journal-area content
  /// records — the simulation's stand-in for reading the disk), its layout
  /// and its configuration.
  Recovery(const Journal& journal, const Layout& layout, const FsConfig& cfg)
      : journal_(journal), layout_(layout), cfg_(cfg) {}

  /// Runs the full scan/validate/truncate/replay pipeline over `image`
  /// (a StorageDevice::durable_state() / capture_durable_image() result).
  RecoveryReport recover(
      const std::unordered_map<flash::Lba, flash::Version>& image) const;

 private:
  bool checksummed() const noexcept {
    return cfg_.journal == JournalKind::kOptFs || cfg_.journal_checksum;
  }

  const Journal& journal_;
  Layout layout_;
  FsConfig cfg_;
};

}  // namespace bio::fs
