// Filesystem configuration and on-"disk" layout.
//
// The simulated filesystem keeps the paper-relevant structure of EXT4 and
// strips the rest: a file is an inode plus one contiguous data extent, an
// inode owns one metadata block, and the journal is a circular LBA region.
// What is modelled faithfully is everything the paper measures: the dirty
// state machine (page cache, metadata buffers), the journal commit
// protocols (Eq. 2 vs Eq. 3), timestamp granularity, and ordered-mode data
// writeout.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "flash/types.h"
#include "sim/time.h"

namespace bio::fs {

enum class JournalKind : std::uint8_t {
  /// EXT4 / JBD2 Ordered-mode journaling (the paper's baseline).
  kJbd2,
  /// BarrierFS Dual-Mode journaling (the paper's contribution, §4).
  kBarrierFs,
  /// OptFS-style optimistic crash consistency (osync; §7 comparison).
  kOptFs,
};

const char* to_string(JournalKind k) noexcept;

/// Outcome of a synchronization syscall (the filesystem's half of the
/// errno story; api::Vfs maps these onto Errno::kIo / Errno::kRoFs).
enum class [[nodiscard]] FsStatus : std::uint8_t {
  kOk,
  /// The call's own journal commit failed (journal aborted under it).
  kIo,
  /// The volume was already degraded read-only when the call entered.
  kRoFs,
};

const char* to_string(FsStatus s) noexcept;

struct FsConfig {
  JournalKind journal = JournalKind::kJbd2;

  /// EXT4 "nobarrier" mount option: fsync/fdatasync never issue flushes and
  /// the journal commit record is written without FLUSH|FUA.
  bool nobarrier = false;

  /// JBD2 transactional checksums: the commit record does not need the
  /// pre-flush (the checksum validates the transaction at recovery), at a
  /// small CPU cost per journal block. The paper's smartphone EXT4 uses
  /// this (§6.3).
  bool journal_checksum = false;

  /// Inode c/mtime granularity (one kernel timer tick). Writes within one
  /// tick leave timestamps unchanged, turning fsync() into fdatasync() —
  /// the effect behind the Fig 11 context-switch counts.
  sim::SimTime timer_tick = 4'000'000;  // 4 ms (HZ=250)

  /// CPU cost of one buffered write() (page-cache copy + bookkeeping).
  sim::SimTime write_syscall_cpu = 2'000;  // 2 us
  /// CPU cost of computing a journal checksum per 4 KiB block.
  sim::SimTime checksum_cpu_per_block = 500;  // 0.5 us

  /// Journal region size in 4 KiB blocks.
  std::uint32_t journal_blocks = 4096;
  /// Maximum number of files (one metadata block each).
  std::uint32_t max_inodes = 4096;
  /// Directory shards: namespace operations dirty hash(name) % dir_shards,
  /// modelling a spread fileset instead of one hot root directory.
  std::uint32_t dir_shards = 16;
  /// Default extent size per file, in 4 KiB blocks.
  std::uint32_t default_extent_blocks = 4096;

  /// pdflush: background writeback starts above this many dirty pages...
  std::size_t writeback_high_watermark = 256;
  /// ...and stops below this.
  std::size_t writeback_low_watermark = 64;
  /// Background writeback batch size (requests in flight per round).
  std::size_t writeback_batch = 32;

  /// OptFS: CPU cost per page scanned during osync (selective data
  /// journaling makes this list long on overwrite-heavy workloads).
  sim::SimTime osync_scan_cpu_per_page = 1'000;  // 1 us
};

/// Disk layout derived from the config: [journal | inode table | data].
struct Layout {
  std::uint32_t journal_blocks;
  std::uint32_t max_inodes;

  flash::Lba journal_base() const noexcept { return 0; }
  flash::Lba inode_base() const noexcept { return journal_blocks; }
  flash::Lba data_base() const noexcept {
    return static_cast<flash::Lba>(journal_blocks) + max_inodes;
  }
  flash::Lba inode_block(std::uint32_t ino) const noexcept {
    return inode_base() + ino;
  }
};

/// The logical content of one metadata block as of a given transaction —
/// what the block's journal log copy (and its later in-place checkpoint
/// copy) "contain". The simulation stores no bytes, so recovery
/// reconstructs filesystem state from these snapshots instead of decoding
/// on-disk structures (DESIGN.md §6.6).
struct MetaSnapshot {
  /// Directory-shard block (ino < dir_shards): (name, ino) entries, sorted
  /// by name (flat vector: snapshots are taken per commit, so node-based
  /// containers would dominate the journal's allocation profile).
  bool is_directory = false;
  std::vector<std::pair<std::string, std::uint32_t>> entries;

  /// Inode block: geometry + size at commit time. `exists` is false once
  /// the inode has been freed (unlink committed).
  bool exists = false;
  std::uint32_t ino = 0;
  std::string name;
  flash::Lba extent_base = 0;
  std::uint32_t extent_blocks = 0;
  std::uint32_t size_blocks = 0;
};

/// In-memory inode.
struct Inode {
  std::uint32_t ino = 0;
  std::string name;
  flash::Lba extent_base = 0;       // first data LBA
  std::uint32_t extent_blocks = 0;  // reserved extent length
  std::uint32_t size_blocks = 0;    // allocated (written) length

  /// Timestamp quantized to the timer tick.
  sim::SimTime mtime_tick = 0;
  /// True when the inode block differs from its on-disk state.
  bool meta_dirty = false;
  /// True when i_size changed (fdatasync must journal this; pure timestamp
  /// changes it may skip).
  bool size_dirty = false;
  /// Id of the journal transaction holding this inode's metadata block
  /// (0 = none).
  std::uint64_t txn_id = 0;
  /// Id of the transaction holding the latest i_size change (ext4's
  /// i_datasync_tid): fdatasync must not return before THIS transaction is
  /// durable, even when a concurrent syscall already cleared the dirty
  /// flags while its commit is still in flight.
  std::uint64_t datasync_txn_id = 0;
  /// Device-cache order high-water covering every *completed* writeback
  /// carrier of this file whose request object is no longer tracked (swept
  /// after completion). A durability syscall must prove the device
  /// persisted through this floor — or flush — before acking: the carrier
  /// may have transferred after the flush a group commit already counted.
  std::uint64_t persist_floor = 0;

  /// Writeback-error sequence (Linux errseq_t / AS_EIO, per-inode half):
  /// bumped every time a writeback of this file's pages fails for good
  /// (retries exhausted or hard media error). Each fd records the sequence
  /// it has seen; fsync reports EIO exactly once per fd per new failure.
  std::uint64_t wb_err_seq = 0;

  flash::Lba lba_of_page(std::uint32_t page) const noexcept {
    return extent_base + page;
  }
};

}  // namespace bio::fs
