#include "fs/page_cache.h"

namespace bio::fs {

void PageCache::write(std::uint32_t ino, std::uint32_t page, flash::Lba lba,
                      flash::Version version, bool overwrite) {
  PageKey key{ino, page};
  PageState& st = pages_[key];
  st.lba = lba;
  st.version = version;
  st.overwrite = overwrite;
  if (!st.dirty) {
    st.dirty = true;
    ++dirty_count_;
    index_insert(dirty_index_, key);
  }
  // NOTE: an in-flight writeback pointer survives redirtying. The old
  // request is still physically in the scheduler/device carrying the
  // previous version; forgetting it would let a sync path submit the new
  // version concurrently and the two copies could land out of order
  // (write-after-write hazard). wait_stable_pages()/pdflush consult it.
  dirtied_.notify_all();
}

void PageCache::dirty_pages_of(std::uint32_t ino,
                               std::vector<PageKey>& out) const {
  out.clear();
  auto it = dirty_index_.find(ino);
  if (it == dirty_index_.end()) return;
  out.reserve(it->second.size());
  for (std::uint32_t page : it->second) out.push_back(PageKey{ino, page});
}

std::vector<PageCache::PageKey> PageCache::dirty_pages_of(
    std::uint32_t ino) const {
  std::vector<PageKey> out;
  dirty_pages_of(ino, out);
  return out;
}

std::vector<blk::RequestPtr> PageCache::writebacks_of(std::uint32_t ino,
                                                      bool* swept_completed,
                                                      bool* swept_failed) {
  std::vector<blk::RequestPtr> out;
  if (swept_completed != nullptr) *swept_completed = false;
  if (swept_failed != nullptr) *swept_failed = false;
  auto it = wb_index_.find(ino);
  if (it == wb_index_.end()) return out;
  std::set<std::uint32_t>& pages = it->second;
  bool dirtied_any = false;
  for (auto pit = pages.begin(); pit != pages.end();) {
    const PageKey key{ino, *pit};
    auto mit = pages_.find(key);
    BIO_CHECK_MSG(mit != pages_.end() && mit->second.writeback != nullptr,
                  "writeback index out of sync");
    blk::RequestPtr& wb = mit->second.writeback;
    if (wb->completion.is_set()) {
      // Lazy completion sweep: the carrier already finished (waiting on its
      // set event would be a no-op), so drop the stale reference. This
      // keeps the wait list O(in-flight) and releases the request back to
      // the pool instead of pinning it until the page is rewritten. The
      // caller is told (`swept_completed`): a durability path must raise
      // the inode's persist floor, because "completed" only means
      // *transferred* — the data may still sit in the volatile cache.
      // A carrier that completed with an IO failure never landed its data:
      // redirty the page (its buffered version is intact) and tell the
      // caller, who records the error on the inode.
      if (wb->failed()) {
        if (swept_failed != nullptr) *swept_failed = true;
        if (!mit->second.dirty) {
          mit->second.dirty = true;
          ++dirty_count_;
          index_insert(dirty_index_, key);
          dirtied_any = true;
        }
      }
      if (swept_completed != nullptr) *swept_completed = true;
      wb = nullptr;
      pit = pages.erase(pit);
      continue;
    }
    out.push_back(wb);
    ++pit;
  }
  if (pages.empty()) wb_index_.erase(it);
  if (dirtied_any) dirtied_.notify_all();
  return out;
}

void PageCache::begin_writeback(const PageKey& key, blk::RequestPtr req) {
  auto it = pages_.find(key);
  BIO_CHECK_MSG(it != pages_.end(), "writeback of unknown page");
  if (it->second.dirty) {
    it->second.dirty = false;
    BIO_CHECK(dirty_count_ > 0);
    --dirty_count_;
    index_erase(dirty_index_, key);
  }
  it->second.writeback = std::move(req);
  if (it->second.writeback != nullptr)
    index_insert(wb_index_, key);
  else
    index_erase(wb_index_, key);
}

void PageCache::end_writeback(const PageKey& key,
                              const blk::RequestPtr& req) {
  auto it = pages_.find(key);
  if (it == pages_.end()) return;
  if (it->second.writeback == req) {
    it->second.writeback = nullptr;
    index_erase(wb_index_, key);
  }
}

std::size_t PageCache::redirty_failed(std::uint32_t ino,
                                      const blk::RequestPtr& req) {
  std::size_t redirtied = 0;
  auto it = wb_index_.find(ino);
  if (it == wb_index_.end()) return 0;
  std::set<std::uint32_t>& wb_pages = it->second;
  for (auto pit = wb_pages.begin(); pit != wb_pages.end();) {
    const PageKey key{ino, *pit};
    auto mit = pages_.find(key);
    BIO_CHECK_MSG(mit != pages_.end() && mit->second.writeback != nullptr,
                  "writeback index out of sync");
    if (mit->second.writeback != req) {
      ++pit;
      continue;
    }
    mit->second.writeback = nullptr;
    pit = wb_pages.erase(pit);
    if (!mit->second.dirty) {
      mit->second.dirty = true;
      ++dirty_count_;
      index_insert(dirty_index_, key);
      ++redirtied;
    }
  }
  if (wb_pages.empty()) wb_index_.erase(it);
  if (redirtied > 0) dirtied_.notify_all();
  return redirtied;
}

void PageCache::mark_clean(const PageKey& key) {
  auto it = pages_.find(key);
  BIO_CHECK_MSG(it != pages_.end(), "mark_clean of unknown page");
  if (it->second.dirty) {
    it->second.dirty = false;
    BIO_CHECK(dirty_count_ > 0);
    --dirty_count_;
    index_erase(dirty_index_, key);
  }
}

void PageCache::drop_file(std::uint32_t ino) {
  auto it = pages_.lower_bound(PageKey{ino, 0});
  while (it != pages_.end() && it->first.ino == ino) {
    if (it->second.dirty) {
      BIO_CHECK(dirty_count_ > 0);
      --dirty_count_;
    }
    it = pages_.erase(it);
  }
  dirty_index_.erase(ino);
  wb_index_.erase(ino);
}

const PageCache::PageState* PageCache::find(std::uint32_t ino,
                                            std::uint32_t page) const {
  auto it = pages_.find(PageKey{ino, page});
  return it == pages_.end() ? nullptr : &it->second;
}

void PageCache::all_dirty(std::size_t limit,
                          std::vector<PageKey>& out) const {
  out.clear();
  for (const auto& [ino, dirty_pages] : dirty_index_) {
    for (std::uint32_t page : dirty_pages) {
      if (out.size() >= limit) return;
      out.push_back(PageKey{ino, page});
    }
  }
}

std::vector<PageCache::PageKey> PageCache::all_dirty(
    std::size_t limit) const {
  std::vector<PageKey> out;
  all_dirty(limit, out);
  return out;
}

bool PageCache::check_index_invariants() const {
  std::size_t dirty_seen = 0;
  for (const auto& [key, st] : pages_) {
    const auto dit = dirty_index_.find(key.ino);
    const bool in_dirty =
        dit != dirty_index_.end() && dit->second.contains(key.page);
    if (in_dirty != st.dirty) return false;
    if (st.dirty) ++dirty_seen;
    const auto wit = wb_index_.find(key.ino);
    const bool in_wb = wit != wb_index_.end() && wit->second.contains(key.page);
    if (in_wb != (st.writeback != nullptr)) return false;
  }
  if (dirty_seen != dirty_count_) return false;
  // No stale index entries pointing at evicted pages.
  for (const auto& [ino, dirty_pages] : dirty_index_)
    for (std::uint32_t page : dirty_pages)
      if (!pages_.contains(PageKey{ino, page})) return false;
  for (const auto& [ino, wb_pages] : wb_index_)
    for (std::uint32_t page : wb_pages)
      if (!pages_.contains(PageKey{ino, page})) return false;
  return true;
}

}  // namespace bio::fs
