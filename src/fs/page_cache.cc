#include "fs/page_cache.h"

namespace bio::fs {

void PageCache::write(std::uint32_t ino, std::uint32_t page, flash::Lba lba,
                      flash::Version version, bool overwrite) {
  PageKey key{ino, page};
  PageState& st = pages_[key];
  st.lba = lba;
  st.version = version;
  st.overwrite = overwrite;
  if (!st.dirty) {
    st.dirty = true;
    ++dirty_count_;
  }
  // A newer version supersedes any in-flight writeback: the page is dirty
  // again and the old request no longer "carries" it.
  st.writeback = nullptr;
  dirtied_.notify_all();
}

std::vector<PageCache::PageKey> PageCache::dirty_pages_of(
    std::uint32_t ino) const {
  std::vector<PageKey> out;
  for (auto it = pages_.lower_bound(PageKey{ino, 0});
       it != pages_.end() && it->first.ino == ino; ++it)
    if (it->second.dirty) out.push_back(it->first);
  return out;
}

std::vector<blk::RequestPtr> PageCache::writebacks_of(
    std::uint32_t ino) const {
  std::vector<blk::RequestPtr> out;
  for (auto it = pages_.lower_bound(PageKey{ino, 0});
       it != pages_.end() && it->first.ino == ino; ++it)
    if (!it->second.dirty && it->second.writeback != nullptr)
      out.push_back(it->second.writeback);
  return out;
}

void PageCache::begin_writeback(const PageKey& key, blk::RequestPtr req) {
  auto it = pages_.find(key);
  BIO_CHECK_MSG(it != pages_.end(), "writeback of unknown page");
  if (it->second.dirty) {
    it->second.dirty = false;
    BIO_CHECK(dirty_count_ > 0);
    --dirty_count_;
  }
  it->second.writeback = std::move(req);
}

void PageCache::end_writeback(const PageKey& key,
                              const blk::RequestPtr& req) {
  auto it = pages_.find(key);
  if (it == pages_.end()) return;
  if (it->second.writeback == req) it->second.writeback = nullptr;
}

void PageCache::mark_clean(const PageKey& key) {
  auto it = pages_.find(key);
  BIO_CHECK_MSG(it != pages_.end(), "mark_clean of unknown page");
  if (it->second.dirty) {
    it->second.dirty = false;
    BIO_CHECK(dirty_count_ > 0);
    --dirty_count_;
  }
}

void PageCache::drop_file(std::uint32_t ino) {
  auto it = pages_.lower_bound(PageKey{ino, 0});
  while (it != pages_.end() && it->first.ino == ino) {
    if (it->second.dirty) {
      BIO_CHECK(dirty_count_ > 0);
      --dirty_count_;
    }
    it = pages_.erase(it);
  }
}

const PageCache::PageState* PageCache::find(std::uint32_t ino,
                                            std::uint32_t page) const {
  auto it = pages_.find(PageKey{ino, page});
  return it == pages_.end() ? nullptr : &it->second;
}

std::vector<PageCache::PageKey> PageCache::all_dirty(
    std::size_t limit) const {
  std::vector<PageKey> out;
  for (const auto& [key, st] : pages_) {
    if (out.size() >= limit) break;
    if (st.dirty) out.push_back(key);
  }
  return out;
}

}  // namespace bio::fs
