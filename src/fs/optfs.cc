#include "fs/optfs.h"

namespace bio::fs {

void OptFsJournal::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("optfs", commit_loop());
}

sim::Task OptFsJournal::dirty_metadata(flash::Lba block,
                                       std::uint64_t& txn_out) {
  co_await throttle_running_txn(1);
  // OptFS keeps JBD's single committing transaction and its blocking
  // conflict rule.
  while (committing_ != nullptr && committing_->buffers.contains(block)) {
    ++stats_.conflicts;
    co_await committing_->durable->wait();
  }
  running_->buffers.insert(block);
  txn_out = running_->id;
}

sim::Task OptFsJournal::commit(std::uint64_t tid, WaitMode mode) {
  Txn& txn = get_txn(tid);
  if (txn.state == Txn::State::kRunning) {
    commit_pending_ = true;
    commit_wake_.notify_all();
  }
  // osync() semantics: both wait modes return at transaction *transfer*
  // (durability is always deferred in OptFS).
  if (mode != WaitMode::kNone) co_await txn.durable->wait();
}

sim::Task OptFsJournal::commit_loop() {
  for (;;) {
    while (!commit_pending_) co_await commit_wake_.wait();
    commit_pending_ = false;
    Txn* txn = close_running(/*allow_empty=*/true);
    committing_ = txn;

    for (const blk::RequestPtr& r : txn->data_reqs)
      co_await r->completion.wait();
    // Freeze the transferred data payload into the commit checksum's
    // coverage, then drop the requests (they are pooled and must recycle).
    for (const blk::RequestPtr& r : txn->data_reqs)
      txn->covered_data.insert(txn->covered_data.end(), r->blocks.begin(),
                               r->blocks.end());
    txn->data_reqs.clear();

    // Checksummed JD + JC dispatched together, one combined wait: the
    // flush between them is gone, the transfer wait is not.
    co_await reserve_jd(*txn);
    co_await sim_.delay(cfg_.checksum_cpu_per_block *
                        static_cast<sim::SimTime>(txn->jd_blocks.size() + 1));
    blk::RequestPtr jd_req =
        blk_.pool().make_write(std::span<const blk::Block>(txn->jd_blocks));
    blk_.submit(jd_req);
    co_await reserve_jc(*txn);
    const blk::Block jc[1] = {txn->jc_block};
    txn->jc_req = blk_.pool().make_write(std::span<const blk::Block>(jc));
    blk_.submit(txn->jc_req);
    co_await jd_req->completion.wait();
    co_await txn->jc_req->completion.wait();
    if (jd_req->failed() || txn->jc_req->failed()) {
      // A journal write failed for good. The checksum would catch a torn
      // descriptor at recovery anyway, but a dead journal cannot accept
      // further osyncs: degrade (errors=remount-ro) like the others.
      committing_ = nullptr;
      abort_journal(*txn);
      co_return;
    }

    txn->dispatched->trigger();
    txn->flushed = false;  // never durable at osync return
    committing_ = nullptr;
    retire(*txn);
  }
}

}  // namespace bio::fs
