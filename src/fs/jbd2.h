// EXT4 / JBD2 Ordered-mode journaling — the paper's baseline (§2.3, Fig 3).
//
// One JBD thread commits one transaction at a time with Wait-on-Transfer
// and Wait-on-Flush:
//   D (data, waited by the fsync caller) -> JD (wait transfer) ->
//   JC with FLUSH|FUA (wait completion).
// Variants:
//   * nobarrier        — JC is a plain write; nothing is flushed (EXT4-OD),
//   * journal_checksum — JC is FUA-only (no pre-flush; the checksum guards
//     atomicity) followed by one flush for data durability (the mobile
//     EXT4 configuration the paper describes in §6.3).
//
// An application dirtying a metadata buffer held by *the* committing
// transaction blocks until that transaction retires (§4.3's page conflict,
// EXT4 flavour).
#pragma once

#include "fs/journal.h"

namespace bio::fs {

class Jbd2Journal : public Journal {
 public:
  Jbd2Journal(sim::Simulator& sim, blk::BlockLayer& blk, const FsConfig& cfg,
              const Layout& layout)
      : Journal(sim, blk, cfg, layout), commit_wake_(sim) {}

  void start() override;
  sim::Task dirty_metadata(flash::Lba block, std::uint64_t& txn_out) override;
  sim::Task commit(std::uint64_t tid, WaitMode mode) override;

 private:
  sim::Task jbd_loop();

  Txn* committing_ = nullptr;  // EXT4: at most one committing txn
  bool commit_pending_ = false;
  sim::Notify commit_wake_;
};

}  // namespace bio::fs
