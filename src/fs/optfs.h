// OptFS-style optimistic crash consistency (the paper's closest related
// work; evaluated in §6.4/§6.5).
//
// osync() commits like EXT4 but:
//   * JD and JC are dispatched back-to-back and waited together — the
//     transactional checksum removes the flush *between* them,
//   * no flush is ever issued — durability is deferred (the real system's
//     asynchronous durability notifications are modelled by retiring the
//     transaction at JC transfer and checkpointing lazily),
//   * overwritten data pages are *selectively data-journaled*: they travel
//     inside JD instead of being written in place, which is why OptFS
//     struggles on overwrite-heavy workloads (MySQL, §6.5).
//
// OptFS still relies on Wait-on-Transfer (that is the paper's point), so it
// runs on the legacy block layer.
#pragma once

#include "fs/journal.h"

namespace bio::fs {

class OptFsJournal : public Journal {
 public:
  OptFsJournal(sim::Simulator& sim, blk::BlockLayer& blk, const FsConfig& cfg,
               const Layout& layout)
      : Journal(sim, blk, cfg, layout), commit_wake_(sim) {}

  void start() override;
  sim::Task dirty_metadata(flash::Lba block, std::uint64_t& txn_out) override;
  sim::Task commit(std::uint64_t tid, WaitMode mode) override;

 private:
  sim::Task commit_loop();

  Txn* committing_ = nullptr;
  bool commit_pending_ = false;
  sim::Notify commit_wake_;
};

}  // namespace bio::fs
