#include "fs/barrierfs.h"

#include <algorithm>

namespace bio::fs {

void BarrierFsJournal::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("bfs:commit", commit_loop());
  sim_.spawn("bfs:flush", flush_loop());
}

sim::Task BarrierFsJournal::dirty_metadata(flash::Lba block,
                                           std::uint64_t& txn_out) {
  co_await throttle_running_txn(1);
  txn_out = running_->id;
  if (running_->buffers.contains(block)) co_return;
  if (conflict_blocks_.contains(block)) co_return;  // already queued
  for (const Txn* t : committing_) {
    if (t->buffers.contains(block)) {
      // §4.3: the application does NOT block. The buffer waits on the
      // conflict-page list; the running transaction cannot commit until
      // the list drains, so the caller's txn id stays valid.
      ++stats_.conflicts;
      conflict_blocks_.insert(block);
      co_return;
    }
  }
  running_->buffers.insert(block);
}

sim::Task BarrierFsJournal::commit(std::uint64_t tid, WaitMode mode) {
  Txn& txn = get_txn(tid);
  if (txn.state == Txn::State::kRunning) {
    if (mode == WaitMode::kDurable) txn.needs_flush = true;
    if (std::find(commit_requests_.begin(), commit_requests_.end(), tid) ==
        commit_requests_.end()) {
      commit_requests_.push_back(tid);
      commit_wake_.notify_all();
    }
  }
  switch (mode) {
    case WaitMode::kNone:
      break;
    case WaitMode::kDispatched:
      co_await txn.dispatched->wait();
      break;
    case WaitMode::kDurable:
      txn.needs_flush = true;
      co_await txn.durable->wait();
      // A retired txn may still owe the caller its durability flush; one
      // that never retired (journal abort woke us) owes nothing but EIO.
      if (!txn.flushed && txn.state == Txn::State::kRetired) {
        // The flush thread retired this txn for ordering only (we joined
        // after its flush decision); issue the durability flush ourselves.
        co_await blk_.flush_and_wait();
        txn.flushed = true;
      }
      break;
  }
}

sim::Task BarrierFsJournal::commit_loop() {
  for (;;) {
    while (commit_requests_.empty() && !aborted_)
      co_await commit_wake_.wait();
    if (aborted_) co_return;
    const std::uint64_t tid = commit_requests_.front();
    commit_requests_.pop_front();
    {
      Txn& txn = get_txn(tid);
      if (txn.state != Txn::State::kRunning) continue;  // already committed
    }
    // §4.3: the running transaction may close only with an empty
    // conflict-page list.
    while (!conflict_blocks_.empty() && !aborted_)
      co_await conflict_resolved_.wait();
    if (aborted_) co_return;

    Txn* txn = close_running(/*allow_empty=*/true);
    committing_.push_back(txn);

    // Control plane (Eq. 3): dispatch JD and JC back-to-back, both
    // ORDERED|BARRIER. D (dispatched earlier as order-preserving requests)
    // and JD form one epoch; JC forms the next. No waits — the flush
    // thread checks both requests for IO failure before retiring.
    co_await reserve_jd(*txn);
    txn->jd_req =
        blk_.pool().make_write(std::span<const blk::Block>(txn->jd_blocks),
                               /*ordered=*/true, /*barrier=*/true);
    blk_.submit(txn->jd_req);

    co_await reserve_jc(*txn);
    const blk::Block jc[1] = {txn->jc_block};
    txn->jc_req = blk_.pool().make_write(std::span<const blk::Block>(jc),
                                         /*ordered=*/true, /*barrier=*/true);
    blk_.submit(txn->jc_req);

    txn->dispatched->trigger();
    flush_queue_.push_back(txn);
    flush_wake_.notify_all();
  }
}

sim::Task BarrierFsJournal::flush_loop() {
  for (;;) {
    while (flush_queue_.empty()) co_await flush_wake_.wait();
    Txn* txn = flush_queue_.front();
    flush_queue_.pop_front();

    // Data plane: wait for the JC transfer (not its persistence!). Under
    // fault injection both journal writes carry a completion status; a
    // failed JD or JC kills the commit (the device never admitted a torn
    // barrier write, so the journal tail simply ends before this txn).
    co_await txn->jc_req->completion.wait();
    co_await txn->jd_req->completion.wait();
    if (txn->jd_req->failed() || txn->jc_req->failed()) {
      auto it = std::find(committing_.begin(), committing_.end(), txn);
      BIO_CHECK(it != committing_.end());
      committing_.erase(it);
      abort_journal(*txn);
      conflict_resolved_.notify_all();  // unstick commit_loop's drain wait
      co_return;
    }
    if (txn->needs_flush) {
      co_await blk_.flush_and_wait();
      txn->flushed = true;
    }
    resolve_conflicts(*txn);
    auto it = std::find(committing_.begin(), committing_.end(), txn);
    BIO_CHECK(it != committing_.end());
    committing_.erase(it);
    retire(*txn);
  }
}

void BarrierFsJournal::resolve_conflicts(Txn& txn) {
  bool resolved_any = false;
  for (flash::Lba block : txn.buffers) {
    if (conflict_blocks_.erase(block) > 0) {
      running_->buffers.insert(block);
      resolved_any = true;
    }
  }
  if (resolved_any) conflict_resolved_.notify_all();
}

}  // namespace bio::fs
