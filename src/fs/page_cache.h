// Host page cache with per-page writeback state.
//
// Pages move dirty -> writeback (a request is in flight) -> clean. fsync
// collects its file's dirty pages into contiguous write requests and also
// waits for pages already under writeback (submitted by pdflush). The
// background flusher keeps the global dirty count between the configured
// watermarks, which is what the buffered-write scenarios (Fig 1 "buffered",
// Fig 9 "P") exercise.
//
// Dirty and writeback pages are indexed per inode (ordered by page) on top
// of the flat page map, so fsync's dirty scan is O(dirty-of-file) and
// pdflush's batch collection is O(limit) — not O(total cached pages). The
// global iteration order (ascending ino, then page) matches the old
// full-scan behaviour exactly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "blk/request.h"
#include "flash/types.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::fs {

class PageCache {
 public:
  struct PageKey {
    std::uint32_t ino;
    std::uint32_t page;
    auto operator<=>(const PageKey&) const = default;
  };

  struct PageState {
    flash::Lba lba = 0;
    flash::Version version = 0;  // version of the newest buffered write
    bool dirty = false;
    /// True if the newest buffered write overwrote already-allocated data
    /// (OptFS journals these selectively).
    bool overwrite = false;
    /// In-flight write carrying a version of this page: the newest one if
    /// !dirty, an older one if the page was redirtied while under
    /// writeback. Kept until completion so submission paths can enforce
    /// one-in-flight-copy-per-page (stable writeback).
    blk::RequestPtr writeback;
  };

  explicit PageCache(sim::Simulator& sim) : sim_(&sim), dirtied_(sim) {}

  /// Buffers a write. Marks the page dirty with the new version.
  void write(std::uint32_t ino, std::uint32_t page, flash::Lba lba,
             flash::Version version, bool overwrite);

  /// Dirty pages of one file, ascending page order (appended to `out`,
  /// which is cleared first — callers reuse scratch buffers).
  void dirty_pages_of(std::uint32_t ino, std::vector<PageKey>& out) const;
  std::vector<PageKey> dirty_pages_of(std::uint32_t ino) const;

  /// In-flight writeback carriers of `ino`'s pages; lazily sweeps carriers
  /// that already completed (and reports the sweep via `swept_completed`,
  /// so durability paths can raise the inode's persist floor). A swept
  /// carrier that completed with an IO failure redirties its pages (the
  /// buffered content is still here — versions are identity, not bytes)
  /// and is reported via `swept_failed`, so the caller can advance the
  /// inode's wb_err_seq.
  std::vector<blk::RequestPtr> writebacks_of(std::uint32_t ino,
                                             bool* swept_completed = nullptr,
                                             bool* swept_failed = nullptr);

  /// Marks `key` as under writeback by `req` (clears dirty).
  void begin_writeback(const PageKey& key, blk::RequestPtr req);

  /// Completes writeback for `key` if `req` is still its current carrier.
  void end_writeback(const PageKey& key, const blk::RequestPtr& req);

  /// Failed-writeback path: redirties every page of `ino` whose current
  /// carrier is `req` (the data never landed — Linux redirties the page and
  /// records the error in the mapping's errseq). Pages rewritten while the
  /// carrier was in flight are already dirty with newer content and only
  /// drop the dead carrier. Returns the number of pages redirtied.
  std::size_t redirty_failed(std::uint32_t ino, const blk::RequestPtr& req);

  /// Clears the dirty bit without a request (OptFS data journaling: the
  /// page's content travels inside the journal descriptor).
  void mark_clean(const PageKey& key);

  /// Drops every page of a deleted file.
  void drop_file(std::uint32_t ino);

  const PageState* find(std::uint32_t ino, std::uint32_t page) const;

  std::size_t dirty_count() const noexcept { return dirty_count_; }
  std::size_t total_pages() const noexcept { return pages_.size(); }

  /// Up to `limit` dirty pages (global), in (ino, page) order — pdflush's
  /// view. O(limit), via the dirty index.
  void all_dirty(std::size_t limit, std::vector<PageKey>& out) const;
  std::vector<PageKey> all_dirty(std::size_t limit) const;

  /// Notified whenever a write dirties a page (pdflush wake-up).
  sim::Notify& dirtied() noexcept { return dirtied_; }

  /// Exhaustively cross-checks the dirty/writeback indexes against the page
  /// map (test hook; O(total pages)).
  bool check_index_invariants() const;

 private:
  using InoIndex = std::map<std::uint32_t, std::set<std::uint32_t>>;

  static void index_insert(InoIndex& idx, const PageKey& key) {
    idx[key.ino].insert(key.page);
  }
  static void index_erase(InoIndex& idx, const PageKey& key) {
    auto it = idx.find(key.ino);
    if (it == idx.end()) return;
    it->second.erase(key.page);
    if (it->second.empty()) idx.erase(it);
  }

  sim::Simulator* sim_;
  std::map<PageKey, PageState> pages_;
  /// ino -> dirty pages (key.dirty == true exactly when indexed here).
  InoIndex dirty_index_;
  /// ino -> pages with a writeback carrier attached (dirty or not).
  InoIndex wb_index_;
  std::size_t dirty_count_ = 0;
  sim::Notify dirtied_;
};

}  // namespace bio::fs
