#include "fs/journal.h"

namespace bio::fs {

const char* to_string(JournalKind k) noexcept {
  switch (k) {
    case JournalKind::kJbd2: return "ext4-jbd2";
    case JournalKind::kBarrierFs: return "barrierfs";
    case JournalKind::kOptFs: return "optfs";
  }
  return "?";
}

Journal::Journal(sim::Simulator& sim, blk::BlockLayer& blk,
                 const FsConfig& cfg, const Layout& layout)
    : sim_(sim), blk_(blk), cfg_(cfg), layout_(layout) {
  running_ = std::make_unique<Txn>(sim_, next_txn_id_++);
}

void Journal::attach_data(blk::RequestPtr r) {
  running_->data_reqs.push_back(std::move(r));
}

void Journal::add_journaled_data(std::uint32_t pages) {
  running_->journaled_data_blocks += pages;
}

bool Journal::is_retired(std::uint64_t tid) const {
  const Txn* t = find_txn(tid);
  return t != nullptr && t->state == Txn::State::kRetired;
}

const Txn* Journal::find_txn(std::uint64_t tid) const {
  if (running_ && running_->id == tid) return running_.get();
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : it->second.get();
}

Txn& Journal::get_txn(std::uint64_t tid) {
  if (running_ && running_->id == tid) return *running_;
  auto it = txns_.find(tid);
  BIO_CHECK_MSG(it != txns_.end(),
                "unknown transaction id " + std::to_string(tid) +
                    " (running=" + std::to_string(running_->id) + ")");
  return *it->second;
}

Txn* Journal::close_running(bool allow_empty) {
  if (running_->empty() && !allow_empty) return nullptr;
  if (running_->empty()) ++stats_.empty_commits;
  Txn* txn = running_.get();
  txn->state = Txn::State::kCommitting;
  txns_.emplace(txn->id, std::move(running_));
  running_ = std::make_unique<Txn>(sim_, next_txn_id_++);
  ++stats_.commits;
  return txn;
}

std::vector<std::pair<flash::Lba, flash::Version>>
Journal::reserve_journal_blocks(std::size_t n) {
  BIO_CHECK_MSG(n <= cfg_.journal_blocks,
                "transaction larger than the journal");
  if (journal_head_ + n > cfg_.journal_blocks) {
    journal_head_ = 0;  // JBD2-style wrap: records never straddle the end
    ++stats_.journal_wraps;
  }
  std::vector<std::pair<flash::Lba, flash::Version>> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    blocks.emplace_back(layout_.journal_base() + journal_head_ + i,
                        blk_.next_version());
  journal_head_ += n;
  stats_.journal_blocks_written += n;
  return blocks;
}

void Journal::checkpoint(Txn& txn) {
  // In-place metadata writes, orderless and asynchronous: checkpointing is
  // not on anyone's critical path once the journal copy is safe.
  for (flash::Lba block : txn.buffers) {
    const blk::Block payload[1] = {{block, blk_.next_version()}};
    blk_.submit(blk_.pool().make_write(payload));
    ++stats_.checkpoint_writes;
  }
}

void Journal::retire(Txn& txn) {
  txn.state = Txn::State::kRetired;
  commit_order_.push_back(&txn);
  checkpoint(txn);
  txn.durable->trigger();
}

}  // namespace bio::fs
