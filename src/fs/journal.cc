#include "fs/journal.h"

#include <algorithm>

namespace bio::fs {

const char* to_string(JournalKind k) noexcept {
  switch (k) {
    case JournalKind::kJbd2: return "ext4-jbd2";
    case JournalKind::kBarrierFs: return "barrierfs";
    case JournalKind::kOptFs: return "optfs";
  }
  return "?";
}

const char* to_string(FsStatus s) noexcept {
  switch (s) {
    case FsStatus::kOk: return "ok";
    case FsStatus::kIo: return "io-error";
    case FsStatus::kRoFs: return "read-only";
  }
  return "?";
}

Journal::Journal(sim::Simulator& sim, blk::BlockLayer& blk,
                 const FsConfig& cfg, const Layout& layout)
    : sim_(sim),
      blk_(blk),
      cfg_(cfg),
      layout_(layout),
      ckpt_wake_(sim),
      journal_space_(sim) {
  running_ = std::make_unique<Txn>(sim_, next_txn_id_++);
}

void Journal::attach_data(blk::RequestPtr r) {
  running_->data_reqs.push_back(std::move(r));
}

void Journal::add_journaled_data(std::span<const blk::Block> pages) {
  running_->journaled_data_blocks += static_cast<std::uint32_t>(pages.size());
  running_->journaled_data.insert(running_->journaled_data.end(),
                                  pages.begin(), pages.end());
}

sim::Task Journal::throttle_running_txn(std::size_t adding) {
  while (!aborted_ && !running_->empty() &&
         1 + running_->buffers.size() + running_->journaled_data_blocks +
                 adding >
             max_txn_payload())
    co_await commit(running_->id, WaitMode::kDispatched);
}

bool Journal::is_retired(std::uint64_t tid) const {
  const Txn* t = find_txn(tid);
  return t != nullptr && t->state == Txn::State::kRetired;
}

const Txn* Journal::find_txn(std::uint64_t tid) const {
  if (running_ && running_->id == tid) return running_.get();
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : it->second.get();
}

const JournalRecord* Journal::find_record(flash::Version version) const {
  auto it = records_.find(version);
  return it == records_.end() ? nullptr : &it->second;
}

const Journal::CheckpointId* Journal::find_checkpoint(
    flash::Version version) const {
  auto it = checkpoint_versions_.find(version);
  return it == checkpoint_versions_.end() ? nullptr : &it->second;
}

const Journal::DataCheckpointId* Journal::find_data_checkpoint(
    flash::Version version) const {
  auto it = data_checkpoint_versions_.find(version);
  return it == data_checkpoint_versions_.end() ? nullptr : &it->second;
}

Txn& Journal::get_txn(std::uint64_t tid) {
  if (running_ && running_->id == tid) return *running_;
  auto it = txns_.find(tid);
  BIO_CHECK_MSG(it != txns_.end(),
                "unknown transaction id " + std::to_string(tid) +
                    " (running=" + std::to_string(running_->id) + ")");
  return *it->second;
}

Txn* Journal::close_running(bool allow_empty) {
  if (running_->empty() && !allow_empty) return nullptr;
  if (running_->empty()) ++stats_.empty_commits;
  Txn* txn = running_.get();
  txn->state = Txn::State::kCommitting;
  if (close_hook_) close_hook_(*txn);  // freeze metadata-buffer content
  txns_.emplace(txn->id, std::move(running_));
  running_ = std::make_unique<Txn>(sim_, next_txn_id_++);
  ++stats_.commits;
  return txn;
}

// ---- journal space ---------------------------------------------------------

bool Journal::checkpoint_durable(const Txn& txn) const {
  if (!txn.checkpoint_done) return false;
  if (!txn.journaled_data.empty() && !txn.data_checkpointed) return false;
  if (txn.checkpoint_blocks.empty() && txn.journaled_data.empty())
    return true;  // nothing was copied in place
  if (blk_.device().profile().plp) return true;
  // A full flush whose entry sequence postdates the checkpoint completion
  // snapshotted the cache after those writes transferred.
  return blk_.device().flush_horizon() > txn.checkpoint_flush_stamp;
}

void Journal::advance_tail() {
  bool advanced = false;
  while (!live_spans_.empty()) {
    const JournalSpan& front = live_spans_.front();
    Txn& txn = *front.txn;
    if (txn.state != Txn::State::kRetired || !checkpoint_durable(txn)) break;
    // Freed: the span itself plus any wrap waste between tail and its start.
    const std::uint32_t cap = cfg_.journal_blocks;
    const std::uint32_t waste =
        (front.start + cap - journal_tail_) % cap;
    BIO_CHECK(journal_used_ >= waste + front.len);
    journal_used_ -= waste + front.len;
    journal_tail_ = (front.start + front.len) % cap;
    // The tail pointer moves past `front`'s txn only when no earlier span
    // remains; track the oldest still-live txn as the scan start.
    const std::uint64_t released_txn = txn.id;
    live_spans_.pop_front();
    sb_tail_txn_ = live_spans_.empty()
                       ? std::max(sb_tail_txn_, released_txn + 1)
                       : std::max(sb_tail_txn_, live_spans_.front().txn->id);
    ++stats_.tail_advances;
    advanced = true;
  }
  if (advanced) journal_space_.notify_all();
}

sim::Task Journal::force_tail_advance() {
  // The front transactions' checkpoints have transferred but are not yet
  // provably durable. Copy any journaled data in place (lazy OptFS
  // checkpoint), then issue the jbd2-style update-log-tail flush; both are
  // off every syscall's critical path except this stalled reserve.
  // Collect the newest journaled content per home lba across the batch: a
  // page journaled by several of these transactions gets ONE in-place copy
  // (two concurrent same-lba writes could land inverted and resurrect the
  // older content — the buffer-lock rule applies to checkpoints too).
  std::map<flash::Lba, flash::Version> to_copy;
  std::vector<Txn*> copied;
  for (const JournalSpan& span : live_spans_) {
    Txn& txn = *span.txn;
    if (txn.state != Txn::State::kRetired) break;
    if (!txn.checkpoint_done) break;
    if (!txn.journaled_data.empty() && !txn.data_checkpointed) {
      for (const blk::Block& page : txn.journaled_data) {
        flash::Version& v = to_copy[page.first];
        v = std::max(v, page.second);
      }
      txn.data_checkpointed = true;
      copied.push_back(&txn);
    }
  }
  std::vector<blk::RequestPtr> data_copies;
  data_copies.reserve(to_copy.size());
  for (const auto& [lba, content] : to_copy) {
    const flash::Version v = blk_.next_version();
    data_checkpoint_versions_.emplace(v, DataCheckpointId{lba, content});
    const blk::Block payload[1] = {{lba, v}};
    blk::RequestPtr r = blk_.pool().make_write(payload);
    blk_.submit(r);
    data_copies.push_back(std::move(r));
    ++stats_.checkpoint_writes;
  }
  bool copy_failed = false;
  for (const blk::RequestPtr& r : data_copies) {
    co_await r->completion.wait();
    if (r->failed()) copy_failed = true;
  }
  if (copy_failed) {
    // As in checkpoint_tracker: a lost in-place copy means the journal
    // span must never be reused. Abort instead of advancing the tail.
    abort_journal(*live_spans_.front().txn);
    co_return;
  }
  // The data copies postdate the recorded checkpoint stamp; require a flush
  // entered after *their* completion before the space counts as durable.
  for (Txn* txn : copied)
    txn->checkpoint_flush_stamp = std::max(txn->checkpoint_flush_stamp,
                                           blk_.device().flush_sequence());
  ++stats_.checkpoint_flushes;
  co_await blk_.flush_and_wait();
  advance_tail();
  // Re-check is the caller's loop; wake anyone else stalled too.
  journal_space_.notify_all();
}

sim::Task Journal::reserve_journal_blocks(Txn& txn, std::size_t n,
                                          std::vector<blk::Block>& out) {
  const std::uint32_t cap = cfg_.journal_blocks;
  BIO_CHECK_MSG(n <= cap, "transaction larger than the journal");
  for (;;) {
    // An aborted journal never hands out space: its commit machinery is
    // dead and reusing a live span could clobber descriptor/commit
    // evidence recovery still needs. Park until teardown — the abort
    // already woke every commit waiter with its EIO verdict.
    while (aborted_) co_await journal_space_.wait();
    // Free opportunistic releases first (no flush needed).
    if (!live_spans_.empty()) advance_tail();
    const bool wrap = journal_head_ + n > cap;
    const std::uint32_t waste =
        wrap ? cap - static_cast<std::uint32_t>(journal_head_) : 0;
    if (journal_used_ + waste + n <= cap) {
      const std::uint32_t start =
          wrap ? 0 : static_cast<std::uint32_t>(journal_head_);
      if (wrap) {
        journal_head_ = 0;
        ++stats_.journal_wraps;
      }
      out.clear();
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        out.emplace_back(layout_.journal_base() + journal_head_ + i,
                         blk_.next_version());
      journal_head_ += n;
      journal_used_ += waste + static_cast<std::uint32_t>(n);
      live_spans_.push_back(
          JournalSpan{&txn, start, static_cast<std::uint32_t>(n)});
      stats_.journal_blocks_written += n;
      co_return;
    }
    // No live spans but still no fit: the whole area is free, yet the head
    // sits so close to the end that the wrap waste plus this record exceed
    // the capacity (a group commit over many concurrent writers can carry
    // dozens of buffers, so a single JD approaches the journal size).
    // Nothing lives anywhere — restart the lap at offset 0, which is what
    // jbd2's separate head/tail free-space arithmetic achieves.
    if (live_spans_.empty()) {
      BIO_CHECK_MSG(journal_used_ == 0, "journal accounting corrupt");
      journal_head_ = 0;
      journal_tail_ = 0;
      ++stats_.journal_wraps;
      continue;
    }
    // Journal full: the head would run into records still owned by an
    // un-checkpointed transaction (pre-fix this silently clobbered them).
    ++stats_.journal_stalls;
    BIO_CHECK_MSG(live_spans_.front().txn != &txn,
                  "transaction larger than the journal");
    Txn& oldest = *live_spans_.front().txn;
    if (oldest.state == Txn::State::kRetired && oldest.checkpoint_done) {
      co_await force_tail_advance();
    } else {
      // Wait for the oldest transaction to retire / its checkpoint writes
      // to land; retire() and checkpoint_tracker() notify.
      co_await journal_space_.wait();
    }
  }
}

sim::Task Journal::reserve_jd(Txn& txn) {
  const std::size_t jd_size =
      1 + txn.buffers.size() + txn.journaled_data_blocks;
  co_await reserve_journal_blocks(txn, jd_size, txn.jd_blocks);

  // Register the descriptor's content record. Its tag table (log block ->
  // home) is implied by the transaction: jd_blocks[1..] pair with the
  // metadata buffers in set order, then the journaled data pages —
  // fs::Recovery re-derives it from there.
  records_.emplace(txn.jd_blocks[0].second,
                   JournalRecord{JournalRecord::Type::kDescriptor, txn.id});
}

sim::Task Journal::reserve_jc(Txn& txn) {
  // scratch_jc_ is only touched on the suspension-free path after the
  // reserve completes (one journal thread reserves at a time per journal).
  std::vector<blk::Block>& jc = scratch_jc_;
  co_await reserve_journal_blocks(txn, 1, jc);
  txn.jc_block = jc[0];
  records_.emplace(jc[0].second,
                   JournalRecord{JournalRecord::Type::kCommit, txn.id});
}

// ---- checkpoint ------------------------------------------------------------

sim::Task Journal::checkpoint_tracker() {
  for (;;) {
    while (ckpt_queue_.empty()) co_await ckpt_wake_.wait();
    PendingCheckpoint p = std::move(ckpt_queue_.front());
    ckpt_queue_.pop_front();
    // Deferred copies: their home block had an older copy in flight at
    // submit time (two concurrent writes to one block can land inverted,
    // resurrecting the older content — jbd2's buffer lock forbids it).
    // Serialize: wait out the conflict, then submit.
    for (const blk::Block& b : p.deferred) {
      for (;;) {
        auto it = inflight_ckpt_.find(b.first);
        if (it == inflight_ckpt_.end() || it->second->completion.is_set())
          break;
        co_await it->second->completion.wait();
      }
      const blk::Block payload[1] = {b};
      blk::RequestPtr r = blk_.pool().make_write(payload);
      blk_.submit(r);
      inflight_ckpt_[b.first] = r;
      auto dit = deferred_ckpt_count_.find(b.first);
      BIO_CHECK(dit != deferred_ckpt_count_.end() && dit->second > 0);
      --dit->second;
      p.reqs.push_back(std::move(r));
      ++stats_.checkpoint_writes;
    }
    bool copy_failed = false;
    for (const blk::RequestPtr& r : p.reqs) {
      co_await r->completion.wait();
      if (r->failed()) copy_failed = true;
    }
    // Drop completed conflict-detection entries so the pooled requests can
    // recycle (a block checkpointed once and never again would otherwise
    // pin its request for the rest of the run).
    for (const blk::RequestPtr& r : p.reqs) {
      auto it = inflight_ckpt_.find(r->blocks.front().first);
      if (it != inflight_ckpt_.end() && it->second == r)
        inflight_ckpt_.erase(it);
    }
    if (copy_failed) {
      // A home copy never landed. Marking the checkpoint done would let
      // the journal reuse the span recovery still needs to replay this
      // transaction — acked data loss. jbd2's checkpoint-IO-error path:
      // abort, degrade read-only, keep the log intact for recovery.
      abort_journal(*p.txn);
      co_return;
    }
    p.txn->checkpoint_done = true;
    // The stamp may postdate the actual completion (the tracker drains in
    // retire order) — only ever conservative for the durability proof.
    p.txn->checkpoint_flush_stamp = blk_.device().flush_sequence();
    journal_space_.notify_all();
  }
}

void Journal::checkpoint(Txn& txn) {
  // In-place metadata writes, orderless and asynchronous: checkpointing is
  // not on anyone's critical path once the journal copy is safe. Completion
  // is tracked (checkpoint_tracker) because the journal space the records
  // occupy may only be reused once these copies are durable.
  PendingCheckpoint p;
  p.txn = &txn;
  p.reqs.reserve(txn.buffers.size());
  for (flash::Lba block : txn.buffers) {
    const flash::Version v = blk_.next_version();
    checkpoint_versions_.emplace(v, CheckpointId{block, txn.id});
    txn.checkpoint_blocks.emplace_back(block, v);
    auto it = inflight_ckpt_.find(block);
    auto dit = deferred_ckpt_count_.find(block);
    if ((it != inflight_ckpt_.end() && !it->second->completion.is_set()) ||
        (dit != deferred_ckpt_count_.end() && dit->second > 0)) {
      // An older copy of this block is still in flight (or queued behind
      // one): defer to the tracker (per-block serialization).
      p.deferred.emplace_back(block, v);
      ++deferred_ckpt_count_[block];
      continue;
    }
    const blk::Block payload[1] = {{block, v}};
    blk::RequestPtr r = blk_.pool().make_write(payload);
    blk_.submit(r);
    inflight_ckpt_[block] = r;
    p.reqs.push_back(std::move(r));
    ++stats_.checkpoint_writes;
  }
  if (txn.journaled_data.empty()) txn.data_checkpointed = true;
  if (p.reqs.empty() && p.deferred.empty()) {
    txn.checkpoint_done = true;
    txn.checkpoint_flush_stamp = 0;  // nothing to persist
    return;
  }
  if (!ckpt_tracker_started_) {
    ckpt_tracker_started_ = true;
    sim_.spawn("jnl:ckpt", checkpoint_tracker());
  }
  ckpt_queue_.push_back(std::move(p));
  ckpt_wake_.notify_all();
}

void Journal::retire(Txn& txn) {
  txn.state = Txn::State::kRetired;
  commit_order_.push_back(&txn);
  checkpoint(txn);
  txn.durable->trigger();
  journal_space_.notify_all();
}

void Journal::abort_journal(Txn& txn) {
  if (aborted_) return;
  aborted_ = true;
  // Wake everyone. The failed txn stays kCommitting forever — it never
  // enters commit_order_, so neither the live checkers nor recovery ever
  // treat it as committed.
  txn.dispatched->trigger();
  txn.durable->trigger();
  for (auto& [id, t] : txns_) {
    (void)id;
    if (t->state == Txn::State::kCommitting) {
      t->dispatched->trigger();
      t->durable->trigger();
    }
  }
  running_->dispatched->trigger();
  running_->durable->trigger();
  journal_space_.notify_all();
  ckpt_wake_.notify_all();
  if (abort_hook_) abort_hook_();
}

}  // namespace bio::fs
