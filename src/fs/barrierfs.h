// BarrierFS Dual-Mode Journaling (§4.2) — the paper's core contribution.
//
// The journal commit is split into a control plane and a data plane:
//   * commit thread — closes the running transaction and *dispatches* the
//     JD and JC writes, both tagged ORDERED|BARRIER, without waiting for
//     transfer or flush. D and JD form one epoch; JC forms the next
//     (Eq. 3: D -> JD^bar -> JC^bar [-> xfer -> flush only for fsync]).
//   * flush thread — per committed transaction, waits for the JC transfer,
//     issues a flush only when a caller demanded durability, resolves page
//     conflicts and retires the transaction.
//
// Because the commit thread never waits on the storage, multiple committing
// transactions can be in flight (the committing transaction *list*), which
// is where the journaling-throughput scalability of Fig 13 comes from.
//
// Multi-transaction page conflicts (§4.3): an application dirtying a buffer
// held by *any* committing transaction does not block; the buffer goes to
// the conflict-page list, and the commit thread refuses to close the
// running transaction until the list is empty. The flush thread moves
// resolved conflict pages into the running transaction when their holder
// retires.
#pragma once

#include <deque>
#include <set>

#include "fs/journal.h"

namespace bio::fs {

class BarrierFsJournal : public Journal {
 public:
  BarrierFsJournal(sim::Simulator& sim, blk::BlockLayer& blk,
                   const FsConfig& cfg, const Layout& layout)
      : Journal(sim, blk, cfg, layout),
        commit_wake_(sim),
        flush_wake_(sim),
        conflict_resolved_(sim) {}

  void start() override;
  sim::Task dirty_metadata(flash::Lba block, std::uint64_t& txn_out) override;
  sim::Task commit(std::uint64_t tid, WaitMode mode) override;

  std::size_t committing_count() const noexcept { return committing_.size(); }
  std::size_t conflict_count() const noexcept {
    return conflict_blocks_.size();
  }

 private:
  sim::Task commit_loop();
  sim::Task flush_loop();
  void resolve_conflicts(Txn& txn);

  std::deque<std::uint64_t> commit_requests_;
  sim::Notify commit_wake_;
  std::deque<Txn*> flush_queue_;
  sim::Notify flush_wake_;
  std::deque<Txn*> committing_;  // the committing transaction *list*
  std::set<flash::Lba> conflict_blocks_;
  sim::Notify conflict_resolved_;
};

}  // namespace bio::fs
