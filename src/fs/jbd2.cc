#include "fs/jbd2.h"

namespace bio::fs {

void Jbd2Journal::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("jbd2", jbd_loop());
}

sim::Task Jbd2Journal::dirty_metadata(flash::Lba block,
                                      std::uint64_t& txn_out) {
  co_await throttle_running_txn(1);
  // EXT4 page-conflict rule: a buffer held by the committing transaction
  // may not join the running one; the application blocks until the commit
  // retires (§4.3).
  while (committing_ != nullptr && committing_->buffers.contains(block)) {
    ++stats_.conflicts;
    co_await committing_->durable->wait();
  }
  running_->buffers.insert(block);
  txn_out = running_->id;
}

sim::Task Jbd2Journal::commit(std::uint64_t tid, WaitMode mode) {
  Txn& txn = get_txn(tid);
  if (txn.state == Txn::State::kRunning) {
    if (mode == WaitMode::kDurable) txn.needs_flush = true;
    commit_pending_ = true;
    commit_wake_.notify_all();
  }
  if (mode == WaitMode::kDurable)
    co_await txn.durable->wait();
  else if (mode == WaitMode::kDispatched)
    co_await txn.dispatched->wait();
}

sim::Task Jbd2Journal::jbd_loop() {
  for (;;) {
    while (!commit_pending_) co_await commit_wake_.wait();
    commit_pending_ = false;
    Txn* txn = close_running(/*allow_empty=*/true);
    committing_ = txn;

    // Ordered mode: every data block attached to this transaction must be
    // transferred before the journal describes it.
    for (const blk::RequestPtr& r : txn->data_reqs)
      co_await r->completion.wait();
    txn->data_reqs.clear();  // pooled requests must recycle

    // JD: descriptor + one log block per buffer (+ journaled data).
    co_await reserve_jd(*txn);
    if (cfg_.journal_checksum)
      co_await sim_.delay(cfg_.checksum_cpu_per_block *
                          static_cast<sim::SimTime>(txn->jd_blocks.size()));
    {  // Wait-on-Transfer (pooled request; no payload copy)
      blk::RequestPtr jd_req = blk_.pool().make_write(
          std::span<const blk::Block>(txn->jd_blocks));
      blk_.submit(jd_req);
      co_await jd_req->completion.wait();
      if (jd_req->failed()) {
        // A failed journal write is fatal (errors=remount-ro): the txn
        // never retires, the volume degrades, this thread exits.
        committing_ = nullptr;
        abort_journal(*txn);
        co_return;
      }
    }

    // JC. Default: FLUSH|FUA. Checksum: FUA then one flush. nobarrier:
    // plain write, nothing durable.
    co_await reserve_jc(*txn);
    const blk::Block jc[1] = {txn->jc_block};
    blk::RequestPtr jc_req;
    if (cfg_.nobarrier) {
      jc_req = blk_.pool().make_write(std::span<const blk::Block>(jc));
      blk_.submit(jc_req);
      co_await jc_req->completion.wait();
      txn->flushed = false;
    } else if (cfg_.journal_checksum) {
      jc_req = blk_.pool().make_write(std::span<const blk::Block>(jc), false,
                                      false, /*flush=*/false, /*fua=*/true);
      blk_.submit(jc_req);
      co_await jc_req->completion.wait();
      if (!jc_req->failed()) co_await blk_.flush_and_wait();
      txn->flushed = true;
    } else {
      jc_req = blk_.pool().make_write(std::span<const blk::Block>(jc), false,
                                      false, /*flush=*/true, /*fua=*/true);
      blk_.submit(jc_req);
      co_await jc_req->completion.wait();
      txn->flushed = true;
    }
    if (jc_req->failed()) {
      // The commit record never landed: the transaction is not committed.
      committing_ = nullptr;
      abort_journal(*txn);
      co_return;
    }
    txn->dispatched->trigger();
    committing_ = nullptr;
    retire(*txn);
  }
}

}  // namespace bio::fs
