#include "fs/jbd2.h"

namespace bio::fs {

void Jbd2Journal::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("jbd2", jbd_loop());
}

sim::Task Jbd2Journal::dirty_metadata(flash::Lba block,
                                      std::uint64_t& txn_out) {
  // EXT4 page-conflict rule: a buffer held by the committing transaction
  // may not join the running one; the application blocks until the commit
  // retires (§4.3).
  while (committing_ != nullptr && committing_->buffers.contains(block)) {
    ++stats_.conflicts;
    co_await committing_->durable->wait();
  }
  running_->buffers.insert(block);
  txn_out = running_->id;
}

sim::Task Jbd2Journal::commit(std::uint64_t tid, WaitMode mode) {
  Txn& txn = get_txn(tid);
  if (txn.state == Txn::State::kRunning) {
    if (mode == WaitMode::kDurable) txn.needs_flush = true;
    commit_pending_ = true;
    commit_wake_.notify_all();
  }
  if (mode == WaitMode::kDurable)
    co_await txn.durable->wait();
  else if (mode == WaitMode::kDispatched)
    co_await txn.dispatched->wait();
}

sim::Task Jbd2Journal::jbd_loop() {
  for (;;) {
    while (!commit_pending_) co_await commit_wake_.wait();
    commit_pending_ = false;
    Txn* txn = close_running(/*allow_empty=*/true);
    committing_ = txn;

    // Ordered mode: every data block attached to this transaction must be
    // transferred before the journal describes it.
    for (const blk::RequestPtr& r : txn->data_reqs)
      co_await r->completion.wait();

    // JD: descriptor + one log block per buffer (+ journaled data).
    const std::size_t jd_size =
        1 + txn->buffers.size() + txn->journaled_data_blocks;
    auto jd = reserve_journal_blocks(jd_size);
    txn->jd_blocks = jd;
    if (cfg_.journal_checksum)
      co_await sim_.delay(cfg_.checksum_cpu_per_block *
                          static_cast<sim::SimTime>(jd_size));
    co_await blk_.write_and_wait(std::move(jd));  // Wait-on-Transfer

    // JC. Default: FLUSH|FUA. Checksum: FUA then one flush. nobarrier:
    // plain write, nothing durable.
    auto jc = reserve_journal_blocks(1);
    txn->jc_block = jc[0];
    if (cfg_.nobarrier) {
      co_await blk_.write_and_wait(std::move(jc));
      txn->flushed = false;
    } else if (cfg_.journal_checksum) {
      co_await blk_.write_and_wait(std::move(jc), false, false,
                                   /*flush=*/false, /*fua=*/true);
      co_await blk_.flush_and_wait();
      txn->flushed = true;
    } else {
      co_await blk_.write_and_wait(std::move(jc), false, false,
                                   /*flush=*/true, /*fua=*/true);
      txn->flushed = true;
    }
    txn->dispatched->trigger();
    committing_ = nullptr;
    retire(*txn);
  }
}

}  // namespace bio::fs
