#include "fs/recovery.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

namespace bio::fs {

RecoveryReport Recovery::recover(
    const std::unordered_map<flash::Lba, flash::Version>& image) const {
  RecoveryReport report;
  report.scan_start_txn = journal_.sb_tail_txn();

  auto durable_version =
      [&image](flash::Lba lba) -> std::optional<flash::Version> {
    auto it = image.find(lba);
    if (it == image.end()) return std::nullopt;
    return it->second;
  };

  // ---- 1. read the journal area ------------------------------------------
  // For every journal block that survived, look up what its surviving
  // version contained. Records overwritten by a later lap resolve to the
  // newer transaction's record, exactly as a real scan would read them.
  std::set<std::uint64_t> descriptors;
  std::set<std::uint64_t> commits;
  const flash::Lba jbase = layout_.journal_base();
  for (flash::Lba off = 0; off < cfg_.journal_blocks; ++off) {
    const auto v = durable_version(jbase + off);
    if (!v) continue;
    const JournalRecord* rec = journal_.find_record(*v);
    if (rec == nullptr) continue;  // pre-journal content (never written)
    switch (rec->type) {
      case JournalRecord::Type::kDescriptor:
        descriptors.insert(rec->txn_id);
        break;
      case JournalRecord::Type::kCommit:
        commits.insert(rec->txn_id);
        break;
    }
  }

  // ---- 2. scan, validate, truncate ---------------------------------------
  // Walk transactions in commit (= id) order from the superblock tail.
  // Per-home replay decisions accumulate here; `meta_replayed` maps a
  // metadata home block to the newest transaction that validly replays it.
  std::unordered_map<flash::Lba, std::uint64_t> meta_replayed;
  std::unordered_map<flash::Lba, flash::Version> data_replayed;
  std::set<flash::Lba> destroyed;  // homes clobbered by stale-log replay

  // Enumerates the descriptor's tag table: jd_blocks[0] is the descriptor
  // itself; the log blocks pair with the metadata buffers (set order), then
  // the journaled data pages. fn(journal block, home lba, content version
  // [0 = metadata snapshot], is_data).
  auto for_each_tag = [](const Txn& txn, auto&& fn) {
    std::size_t i = 1;
    for (flash::Lba home : txn.buffers)
      fn(txn.jd_blocks[i++], home, flash::Version{0}, false);
    for (const blk::Block& page : txn.journaled_data)
      fn(txn.jd_blocks[i++], page.first, page.second, true);
  };

  std::uint64_t t = report.scan_start_txn;
  for (;; ++t) {
    const bool has_commit = commits.contains(t);
    const bool has_desc = descriptors.contains(t);
    if (!has_commit || !has_desc) {
      // End of log. Partial evidence means the tail commit was torn.
      report.tail_truncated = has_commit || has_desc;
      break;
    }
    const Txn* txn = journal_.find_txn(t);
    BIO_CHECK_MSG(txn != nullptr, "journal record for unknown transaction");
    bool torn = false;
    for_each_tag(*txn, [&](const blk::Block& jblock, flash::Lba,
                           flash::Version, bool) {
      if (durable_version(jblock.first) != jblock.second) torn = true;
    });
    // The commit record's checksum also covers in-place data (OptFS): a
    // covered block that did not reach media fails the checksum.
    for (const blk::Block& b : txn->covered_data) {
      const auto v = durable_version(b.first);
      if (!v || *v < b.second) {
        torn = true;
        break;
      }
    }
    if (torn && checksummed()) {
      // The commit checksum fails: this transaction and everything after
      // it is discarded. Detected, so nothing is replayed corruptly.
      report.corruption_detected = true;
      report.tail_truncated = true;
      break;
    }
    // Replay. With a torn descriptor chain and no checksum the replay
    // still happens (JBD2 has no way to notice): homes whose log copy is
    // stale receive garbage.
    for_each_tag(*txn, [&](const blk::Block& jblock, flash::Lba home,
                           flash::Version content, bool is_data) {
      const bool ok = durable_version(jblock.first) == jblock.second;
      if (!ok) {
        destroyed.insert(home);
        report.corrupted_blocks.push_back(home);
        return;
      }
      destroyed.erase(home);  // a newer valid copy heals the home
      if (is_data)
        data_replayed[home] = std::max(data_replayed[home], content);
      else
        meta_replayed[home] = std::max(meta_replayed[home], t);
    });
    report.last_replayed_txn = t;
    ++report.txns_replayed;
  }
  // Commit evidence beyond the stop point = discarded transactions.
  for (std::uint64_t id : commits)
    if (id >= t) ++report.txns_discarded;

  // ---- 3. resolve metadata block content ---------------------------------
  // A metadata block's recovered content is the newest of (a) the in-place
  // checkpoint copy the image holds and (b) the journal replay — each a
  // MetaSnapshot frozen at its transaction's close.
  const flash::Lba ibase = layout_.inode_base();
  auto meta_content = [&](flash::Lba block) -> const MetaSnapshot* {
    if (destroyed.contains(block)) return nullptr;
    std::uint64_t newest = 0;
    if (const auto v = durable_version(block)) {
      const Journal::CheckpointId* ck = journal_.find_checkpoint(*v);
      if (ck != nullptr && ck->home_lba == block) newest = ck->txn_id;
    }
    auto rit = meta_replayed.find(block);
    if (rit != meta_replayed.end()) newest = std::max(newest, rit->second);
    if (newest == 0) return nullptr;  // block never committed
    const Txn* txn = journal_.find_txn(newest);
    return txn == nullptr ? nullptr : txn->find_snapshot(block);
  };

  // ---- 4. reconstruct the namespace --------------------------------------
  const std::uint32_t shards = std::max<std::uint32_t>(1, cfg_.dir_shards);
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    const MetaSnapshot* dir = meta_content(ibase + shard);
    if (dir == nullptr || !dir->is_directory) continue;
    for (const auto& [name, ino] : dir->entries) {
      const MetaSnapshot* inode = meta_content(ibase + ino);
      if (inode == nullptr || inode->is_directory || !inode->exists) continue;
      if (inode->name != name) continue;  // ino recycled under another name
      report.files.push_back(RecoveryReport::RecoveredFile{
          name, ino, inode->extent_base, inode->extent_blocks,
          inode->size_blocks});
    }
  }
  std::sort(report.files.begin(), report.files.end(),
            [](const auto& a, const auto& b) { return a.ino < b.ino; });

  // ---- 5. recover data content -------------------------------------------
  // In-place state first (checkpointed data copies resolve to the page
  // version they carried), then the replayed journal copies on top.
  for (const auto& [lba, v] : image) {
    if (lba < layout_.data_base()) continue;
    const Journal::DataCheckpointId* ck = journal_.find_data_checkpoint(v);
    report.data[lba] = ck != nullptr ? ck->content : v;
  }
  for (const auto& [lba, v] : data_replayed)
    report.data[lba] = std::max(report.data[lba], v);
  for (flash::Lba lba : destroyed)
    if (lba >= layout_.data_base()) report.data.erase(lba);

  return report;
}

}  // namespace bio::fs
