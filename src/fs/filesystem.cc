#include "fs/filesystem.h"

#include <algorithm>

#include "fs/barrierfs.h"
#include "fs/jbd2.h"
#include "fs/optfs.h"
#include "fs/recovery.h"

namespace bio::fs {

Filesystem::Filesystem(sim::Simulator& sim, blk::BlockLayer& blk,
                       FsConfig cfg)
    : sim_(sim),
      blk_(blk),
      cfg_(cfg),
      layout_{cfg.journal_blocks, cfg.max_inodes},
      cache_(sim),
      writeback_progress_(sim) {
  switch (cfg_.journal) {
    case JournalKind::kJbd2:
      journal_ = std::make_unique<Jbd2Journal>(sim_, blk_, cfg_, layout_);
      break;
    case JournalKind::kBarrierFs:
      journal_ = std::make_unique<BarrierFsJournal>(sim_, blk_, cfg_, layout_);
      break;
    case JournalKind::kOptFs:
      journal_ = std::make_unique<OptFsJournal>(sim_, blk_, cfg_, layout_);
      break;
  }
  root_.ino = 0;
  root_.name = "/";
  next_ino_ = std::max<std::uint32_t>(1, cfg_.dir_shards);
  data_next_ = layout_.data_base();
  shard_entries_.resize(std::max<std::uint32_t>(1, cfg_.dir_shards));
  journal_->set_close_hook([this](Txn& txn) { snapshot_metadata(txn); });
  // errors=remount-ro: a dead journal degrades the volume read-only.
  journal_->set_abort_hook([this] { degraded_ = true; });
}

void Filesystem::snapshot_metadata(Txn& txn) {
  // Freeze the logical content of every dirtied metadata block: this is
  // what the transaction's journal log copies (and later its in-place
  // checkpoint copies) "contain", and what fs::Recovery reinstalls.
  txn.meta_snapshots.reserve(txn.buffers.size());
  for (flash::Lba block : txn.buffers) {  // set order: stays sorted
    MetaSnapshot snap;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(block - layout_.inode_base());
    if (idx < shard_entries_.size()) {
      snap.is_directory = true;
      snap.entries.assign(shard_entries_[idx].begin(),
                          shard_entries_[idx].end());
    } else {
      snap.ino = idx;
      auto it = by_ino_.find(idx);
      if (it != by_ino_.end()) {
        const Inode& f = *it->second;
        snap.exists = true;
        snap.name = f.name;
        snap.extent_base = f.extent_base;
        snap.extent_blocks = f.extent_blocks;
        snap.size_blocks = f.size_blocks;
      }
    }
    txn.meta_snapshots.emplace_back(block, std::move(snap));
  }
}

void Filesystem::mount(const RecoveryReport& recovered) {
  BIO_CHECK_MSG(files_.empty() && stats_.writes == 0,
                "mount() over a used filesystem");
  for (const RecoveryReport::RecoveredFile& rf : recovered.files) {
    auto inode = std::make_unique<Inode>();
    inode->ino = rf.ino;
    inode->name = rf.name;
    inode->extent_base = rf.extent_base;
    inode->extent_blocks = rf.extent_blocks;
    inode->size_blocks = rf.size_blocks;
    by_ino_.emplace(rf.ino, inode.get());
    shard_entries_[static_cast<std::size_t>(
        dir_block_of(rf.name) - layout_.inode_base())][rf.name] = rf.ino;
    next_ino_ = std::max(next_ino_, rf.ino + 1);
    data_next_ = std::max(data_next_, rf.extent_base + rf.extent_blocks);
    files_.emplace(rf.name, std::move(inode));
  }
}

flash::Lba Filesystem::dir_block_of(const std::string& name) const {
  const std::uint32_t shard = static_cast<std::uint32_t>(
      std::hash<std::string>{}(name) % std::max<std::uint32_t>(1, cfg_.dir_shards));
  return layout_.inode_block(shard);
}

void Filesystem::start() {
  BIO_CHECK(!started_);
  started_ = true;
  journal_->start();
  sim_.spawn("pdflush", pdflush_loop());
}

// ---- namespace -------------------------------------------------------------

sim::Task Filesystem::create(std::string name, Inode*& out,
                             std::uint32_t extent_blocks) {
  BIO_CHECK_MSG(!files_.contains(name), "create of existing file: " + name);
  auto inode = std::make_unique<Inode>();
  Inode& f = *inode;
  if (!free_inos_.empty()) {
    f.ino = free_inos_.front();
    free_inos_.pop_front();
  } else {
    f.ino = next_ino_++;
    BIO_CHECK_MSG(f.ino < cfg_.max_inodes, "out of inodes");
  }
  f.name = name;
  const std::uint32_t want =
      extent_blocks != 0 ? extent_blocks : cfg_.default_extent_blocks;
  if (!free_extents_.empty() && free_extents_.front().second >= want) {
    f.extent_base = free_extents_.front().first;
    f.extent_blocks = free_extents_.front().second;
    free_extents_.pop_front();
  } else {
    f.extent_base = data_next_;
    f.extent_blocks = want;
    data_next_ += want;
  }
  ++stats_.creates;
  out = &f;
  files_.emplace(std::move(name), std::move(inode));
  by_ino_[f.ino] = &f;
  shard_entries_[static_cast<std::size_t>(dir_block_of(f.name) -
                                          layout_.inode_base())][f.name] =
      f.ino;

  // Creating dirties the directory shard and the new inode.
  std::uint64_t tid = 0;
  co_await journal_->dirty_metadata(dir_block_of(f.name), tid);
  co_await journal_->dirty_metadata(layout_.inode_block(f.ino), tid);
  f.txn_id = tid;
  f.datasync_txn_id = tid;
  f.meta_dirty = true;
  f.size_dirty = true;
}

Inode* Filesystem::lookup(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

sim::Task Filesystem::unlink(const std::string& name) {
  co_await remove_name(name, /*reclaim_now=*/true);
}

sim::Task Filesystem::unlink_deferred(const std::string& name) {
  co_await remove_name(name, /*reclaim_now=*/false);
}

void Filesystem::reclaim(Inode& f) {
  cache_.drop_file(f.ino);
  free_extents_.emplace_back(f.extent_base, f.extent_blocks);
  free_inos_.push_back(f.ino);
}

sim::Task Filesystem::remove_name(const std::string& name, bool reclaim_now) {
  auto it = files_.find(name);
  BIO_CHECK_MSG(it != files_.end(), "unlink of missing file: " + name);
  Inode& f = *it->second;
  if (reclaim_now) reclaim(f);
  const std::uint32_t dead_ino = f.ino;
  by_ino_.erase(dead_ino);
  shard_entries_[static_cast<std::size_t>(dir_block_of(name) -
                                          layout_.inode_base())]
      .erase(name);
  unlinked_.push_back(std::move(it->second));  // keep alive: open handles
  files_.erase(it);
  ++stats_.unlinks;

  std::uint64_t tid = 0;
  co_await journal_->dirty_metadata(dir_block_of(name), tid);
  co_await journal_->dirty_metadata(layout_.inode_block(dead_ino), tid);
  // Tie the (still-open-somewhere) inode to the transaction that removes
  // it, so an fsync through a surviving descriptor commits the unlink —
  // ext4 keeps the same inode/transaction linkage.
  f.txn_id = tid;
  f.meta_dirty = true;
}

sim::TaskOf<bool> Filesystem::rename(const std::string& from,
                                     const std::string& to) {
  auto it = files_.find(from);
  BIO_CHECK_MSG(it != files_.end(), "rename of missing file: " + from);
  Inode& f = *it->second;
  auto tgt_it = files_.find(to);
  Inode* target = tgt_it == files_.end() ? nullptr : tgt_it->second.get();
  const flash::Lba old_shard = dir_block_of(from);
  const flash::Lba new_shard = dir_block_of(to);
  const flash::Lba ino_block = layout_.inode_block(f.ino);

  // Reserve every touched block in the journal BEFORE mutating the
  // in-memory namespace, and retry until all of them land in ONE still-
  // running transaction. A transaction closing mid-pass freezes the
  // consistent pre-rename state (its memberships from the failed pass are
  // harmless); equal tids prove no close interleaved, so the single
  // transaction holding all blocks is still running when the mutation
  // below lands and its eventual close snapshots the whole rename
  // atomically — jbd2 reaches the same end through frozen buffer copies
  // under the handle. Anything weaker lets a crash commit the old name's
  // removal without the new name (a durably nameless file); displacing
  // the target in the same transaction keeps POSIX's promise that the
  // destination name never vanishes across a crash.
  std::uint64_t tid = 0;
  for (;;) {
    std::uint64_t tid_new = 0, tid_ino = 0, tid_tgt = 0, tid_old = 0;
    if (new_shard != old_shard)
      co_await journal_->dirty_metadata(new_shard, tid_new);
    co_await journal_->dirty_metadata(ino_block, tid_ino);
    if (target != nullptr)
      co_await journal_->dirty_metadata(layout_.inode_block(target->ino),
                                        tid_tgt);
    co_await journal_->dirty_metadata(old_shard, tid_old);
    if (new_shard == old_shard) tid_new = tid_old;
    if (target == nullptr) tid_tgt = tid_old;

    // The reservations may suspend; a concurrent namespace op may have
    // changed either name meanwhile. Back out (the reservations are just
    // journal membership — harmless) and let the caller re-resolve.
    auto now = files_.find(from);
    if (now == files_.end() || now->second.get() != &f) co_return false;
    it = now;
    auto tgt_now = files_.find(to);
    if ((tgt_now == files_.end() ? nullptr : tgt_now->second.get()) !=
        target)
      co_return false;
    tgt_it = tgt_now;

    if (tid_new == tid_old && tid_ino == tid_old && tid_tgt == tid_old) {
      tid = tid_old;
      break;  // one running transaction owns every block
    }
    // A commit interleaved and split the blocks; those closes all predate
    // any mutation, so nothing inconsistent can replay — try again.
  }
  if (target != nullptr) {
    // Displace the target: the name slot switches to `f` below; the old
    // inode lives on for open descriptors (caller reclaims its storage).
    by_ino_.erase(target->ino);
    unlinked_.push_back(std::move(tgt_it->second));
    files_.erase(tgt_it);  // erasing one node leaves `it` valid
    ++stats_.unlinks;
  }
  shard_entries_[static_cast<std::size_t>(old_shard - layout_.inode_base())]
      .erase(from);
  shard_entries_[static_cast<std::size_t>(new_shard - layout_.inode_base())]
      [to] = f.ino;
  f.name = to;
  auto node = files_.extract(it);  // rekey in place; no rehash hazards
  node.key() = to;
  files_.insert(std::move(node));
  ++stats_.renames;

  f.txn_id = tid;
  f.meta_dirty = true;
  if (target != nullptr) {
    // Tie the displaced inode to the transaction too, so an fsync through
    // a surviving descriptor commits the displacement (unlink parity).
    target->txn_id = tid;
    target->meta_dirty = true;
  }
  co_return true;
}

// ---- data path --------------------------------------------------------------

sim::Task Filesystem::throttle_writer() {
  // balance_dirty_pages(): writers stall once the dirty set is far past the
  // background watermark, so buffered-write throughput converges to the
  // device drain rate.
  while (cache_.dirty_count() > 4 * cfg_.writeback_high_watermark)
    co_await writeback_progress_.wait();
}

sim::Task Filesystem::write(Inode& f, std::uint32_t page,
                            std::uint32_t npages) {
  BIO_CHECK(npages > 0);
  BIO_CHECK_MSG(page + npages <= f.extent_blocks, "write beyond extent");
  if (degraded_) co_return;  // EROFS: api::Vfs reports it; nothing dirties
  ++stats_.writes;
  co_await sim_.delay(cfg_.write_syscall_cpu *
                      static_cast<sim::SimTime>(npages));
  co_await throttle_writer();

  // Journal-handle discipline (jbd2_journal_get_write_access): the inode
  // buffer joins the running transaction BEFORE the metadata it carries
  // changes. dirty_metadata() may suspend — txn throttle, or the §4.3
  // page-conflict rule parking this writer behind a full commit. Mutating
  // i_size first opened a window where a concurrent fsync observed the new
  // size, found the inode flags clean (an earlier sync had committed the
  // old registration), and acked a size that belonged to no transaction
  // any commit would ever cover. The whole mutation — page cache, i_size,
  // mtime, dirty flags — now lands in one synchronous stretch after the
  // registration returns.
  const bool touches_meta = sim_.now() / cfg_.timer_tick != f.mtime_tick ||
                            page + npages > f.size_blocks || f.size_dirty;
  std::uint64_t tid = 0;
  if (touches_meta)
    co_await journal_->dirty_metadata(layout_.inode_block(f.ino), tid);

  const std::uint32_t old_size = f.size_blocks;
  for (std::uint32_t i = 0; i < npages; ++i) {
    const std::uint32_t p = page + i;
    const bool overwrite = p < old_size;
    cache_.write(f.ino, p, f.lba_of_page(p), blk_.next_version(), overwrite);
  }
  // Re-evaluated after the suspension: a concurrent writer may have grown
  // the file past this write's end or stamped the same mtime tick — then
  // ITS registration carries those changes and this one only re-dirties.
  const bool grew = page + npages > f.size_blocks;
  if (grew) f.size_blocks = page + npages;
  const sim::SimTime tick = sim_.now() / cfg_.timer_tick;
  if (tick != f.mtime_tick) f.mtime_tick = tick;
  if (tid != 0) {
    f.txn_id = tid;
    f.meta_dirty = true;
    if (grew) {
      f.size_dirty = true;
      f.datasync_txn_id = tid;
    }
  }
}

sim::TaskOf<FsStatus> Filesystem::read(Inode& f, std::uint32_t page,
                                       std::uint32_t npages) {
  ++stats_.reads;
  FsStatus st = FsStatus::kOk;
  for (std::uint32_t i = 0; i < npages; ++i) {
    const std::uint32_t p = page + i;
    if (cache_.find(f.ino, p) != nullptr) {
      co_await sim_.delay(cfg_.write_syscall_cpu);  // page-cache hit
    } else {
      blk::RequestPtr r = blk_.pool().make_read(f.lba_of_page(p));
      blk_.submit(r);
      co_await r->completion.wait();
      // A hard media read error (post-retry) is EIO to the caller; keep
      // reading the remaining pages as a real pagein would.
      if (r->failed()) st = FsStatus::kIo;
    }
  }
  co_return st;
}

// ---- helpers ----------------------------------------------------------------

sim::Task Filesystem::wait_stable_pages(Inode& f) {
  // WB_SYNC_ALL write_cache_pages semantics: before resubmitting a dirty
  // page whose previous writeback copy is still in flight, wait for that
  // copy to land. Without this, two versions of one page race through the
  // scheduler and the older one can be written second — a write-after-write
  // hazard no real page cache allows (one in-flight copy per page).
  for (;;) {
    blk::RequestPtr waiting;
    // scratch_keys_ is only touched between suspension points (re-collected
    // after every wait), so sharing it with submit_data stays safe.
    cache_.dirty_pages_of(f.ino, scratch_keys_);
    for (const PageCache::PageKey& key : scratch_keys_) {
      const PageCache::PageState* st = cache_.find(key.ino, key.page);
      if (st->writeback != nullptr && !st->writeback->completion.is_set()) {
        waiting = st->writeback;
        break;
      }
    }
    if (waiting == nullptr) co_return;
    co_await waiting->completion.wait();
  }
}

std::vector<blk::RequestPtr> Filesystem::submit_data(Inode& f, bool ordered,
                                                     bool barrier_last) {
  // Single suspension-free pass: group the dirty pages into contiguous runs
  // (pages of one file map to a contiguous extent, so page adjacency == LBA
  // adjacency) and submit each run as soon as it closes. Runs are
  // contiguous subranges of `dirty`, so a [start, end) index pair replaces
  // the per-run key vectors.
  std::vector<PageCache::PageKey>& dirty = scratch_keys_;
  cache_.dirty_pages_of(f.ino, dirty);
  if (dirty.empty()) return {};

  std::vector<blk::RequestPtr> reqs;
  std::vector<blk::Block>& run = scratch_blocks_;
  run.clear();
  std::size_t run_start = 0;
  auto flush_run = [&](std::size_t run_end) {
    // Emits [run_start, run_end); the final run may carry the barrier.
    const bool barrier = barrier_last && run_end == dirty.size();
    stats_.writeback_pages += run.size();
    blk::RequestPtr r = blk_.pool().make_write(
        std::span<const blk::Block>(run), ordered, barrier);
    for (std::size_t k = run_start; k < run_end; ++k)
      cache_.begin_writeback(dirty[k], r);
    blk_.submit(r);
    reqs.push_back(std::move(r));
    run.clear();
    run_start = run_end;
  };
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const PageCache::PageState* st = cache_.find(dirty[i].ino, dirty[i].page);
    const bool extend = !run.empty() && run.back().first + 1 == st->lba &&
                        run.size() < blk::kMaxMergedBlocks;
    if (!extend && !run.empty()) flush_run(i);
    run.emplace_back(st->lba, st->version);
  }
  flush_run(dirty.size());
  return reqs;
}

std::uint32_t Filesystem::journal_overwrites(Inode& f,
                                             std::size_t max_pages) {
  cache_.dirty_pages_of(f.ino, scratch_keys_);
  scratch_blocks_.clear();
  for (const PageCache::PageKey& key : scratch_keys_) {
    if (scratch_blocks_.size() >= max_pages) break;
    const PageCache::PageState* st = cache_.find(key.ino, key.page);
    if (st->overwrite) {
      scratch_blocks_.emplace_back(st->lba, st->version);
      cache_.mark_clean(key);
    }
  }
  if (!scratch_blocks_.empty()) journal_->add_journaled_data(scratch_blocks_);
  return static_cast<std::uint32_t>(scratch_blocks_.size());
}

sim::Task Filesystem::wait_requests(const std::vector<blk::RequestPtr>& reqs) {
  for (const blk::RequestPtr& r : reqs) co_await r->completion.wait();
}

sim::Task Filesystem::ensure_data_durable(
    const Inode& f, const std::vector<blk::RequestPtr>& reqs) {
  if (cfg_.nobarrier) co_return;
  for (const blk::RequestPtr& r : reqs) co_await r->completion.wait();
  const flash::StorageDevice& dev = blk_.device();
  // The inode's persist floor covers writeback carriers that completed and
  // were swept before this syscall could wait on them: their data
  // *transferred*, but may have entered the cache after whatever flush the
  // group commit already counted.
  bool proven = dev.persisted_through(f.persist_floor);
  for (const blk::RequestPtr& r : reqs) {
    if (!proven) break;
    // persist_through == 0: the request was absorbed into a foreign carrier
    // and never stamped — not provably persisted either.
    if (r->cmd.persist_through == 0 ||
        !dev.persisted_through(r->cmd.persist_through))
      proven = false;
  }
  if (!proven) co_await blk_.flush_and_wait();
}

sim::Task Filesystem::request_backpressure() {
  // get_request(): a submitter stalls while the block-layer queue is
  // congested; wakes when it drains to half (batched, so the per-op
  // context-switch cost stays tiny).
  co_await blk_.throttle();
}

void Filesystem::note_writeback_failures(
    Inode& f, const std::vector<blk::RequestPtr>& reqs) {
  for (const blk::RequestPtr& r : reqs) {
    if (!r->completion.is_set() || !r->failed()) continue;
    // The carrier's data never landed: redirty its pages (the buffered
    // content is intact) and record the error on the inode. api::Vfs turns
    // the advanced sequence into EIO once per fd (Linux AS_EIO/errseq_t).
    cache_.redirty_failed(f.ino, r);
    ++f.wb_err_seq;
  }
}

FsStatus Filesystem::commit_outcome(std::uint64_t tid) const {
  // A journal abort wakes every commit waiter; a txn that had already
  // retired was durable before the journal died, so only un-retired ones
  // turn into this call's EIO.
  return journal_->aborted() && !journal_->is_retired(tid) ? FsStatus::kIo
                                                           : FsStatus::kOk;
}

sim::Task Filesystem::wait_file_writebacks(Inode& f,
                                           std::vector<blk::RequestPtr>& reqs) {
  // Waits for pages of `f` already under writeback by someone else
  // (pdflush, a concurrent writer's sync), skipping the requests this
  // syscall itself just submitted — and FOLDS the foreign carriers into
  // `reqs`, so the caller's durability proof (ensure_data_durable) covers
  // them. Waiting their transfer alone is not enough: a concurrent sync's
  // commit flush may have entered the device before these carriers
  // transferred, leaving their data in the volatile cache when this
  // syscall acks durability.
  bool swept = false;
  bool swept_failed = false;
  std::vector<blk::RequestPtr> wb =
      cache_.writebacks_of(f.ino, &swept, &swept_failed);
  if (swept_failed) ++f.wb_err_seq;  // pages were redirtied by the sweep
  if (swept) {
    // Completed carriers were dropped before we could wait on them; their
    // data transferred no later than the cache's current order. Raise the
    // floor the durability proof must clear.
    f.persist_floor =
        std::max(f.persist_floor, blk_.device().cache().next_order());
  }
  for (blk::RequestPtr& r : wb) {
    if (std::find(reqs.begin(), reqs.end(), r) != reqs.end()) continue;
    co_await r->completion.wait();
    reqs.push_back(std::move(r));
  }
}

sim::TaskOf<FsStatus> Filesystem::commit_metadata(Inode& f,
                                                  Journal::WaitMode mode) {
  // The newer of the metadata txn and the journaled-data txn: on OptFS a
  // concurrent osync may have journaled this file's pages into a LATER
  // transaction than the one holding the inode block, and a durability
  // commit must cover both (commits retire in order, so the max covers
  // the min). On EXT4/BarrierFS datasync_txn_id never exceeds txn_id.
  const std::uint64_t inode_tid = std::max(f.txn_id, f.datasync_txn_id);
  // iolint: stable-across-suspend(commit targets this id; the outcome
  // check must name the id the commit waited on, not a later txn)
  const std::uint64_t tid =
      inode_tid != 0 ? inode_tid : journal_->running_txn_id();
  f.meta_dirty = false;
  f.size_dirty = false;
  co_await journal_->commit(tid, mode);
  co_return commit_outcome(tid);
}

bool Filesystem::txn_in_flight(std::uint64_t tid) const {
  return tid != 0 && !journal_->is_retired(tid);
}

sim::TaskOf<FsStatus> Filesystem::wait_txn_durable(std::uint64_t tid) {
  co_await journal_->commit(tid, Journal::WaitMode::kDurable);
  co_return commit_outcome(tid);
}

// ---- synchronization ---------------------------------------------------------

sim::TaskOf<FsStatus> Filesystem::fsync(Inode& f) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.fsyncs;
  const sim::SimTime t0 = sim_.now();
  FsStatus status = FsStatus::kOk;
  switch (cfg_.journal) {
    case JournalKind::kJbd2: {
      // Fig 3 / Eq. 2: D -> wait -> trigger JBD -> wait txn durable.
      co_await wait_stable_pages(f);
      std::vector<blk::RequestPtr> reqs =
          submit_data(f, /*ordered=*/false, false);
      co_await wait_file_writebacks(f, reqs);
      co_await wait_requests(reqs);  // Wait-on-Transfer
      note_writeback_failures(f, reqs);
      if (f.meta_dirty || f.size_dirty) {
        status = co_await commit_metadata(f, Journal::WaitMode::kDurable);
        // If the inode's transaction had already committed (group commit),
        // the wait above returned without a flush covering this call's
        // data — issue it (ext4_sync_file's needs-barrier path).
        if (status == FsStatus::kOk) co_await ensure_data_durable(f, reqs);
      } else if (txn_in_flight(f.txn_id)) {
        // A concurrent syscall's commit_metadata() cleared the flags but
        // its commit — the one holding this inode's metadata — is still
        // in flight: fsync may not return before it is durable (ext4's
        // jbd2_log_wait_commit on i_sync_tid).
        status = co_await wait_txn_durable(f.txn_id);
        if (status == FsStatus::kOk) co_await ensure_data_durable(f, reqs);
      } else if (!cfg_.nobarrier) {
        co_await blk_.flush_and_wait();  // fdatasync-degenerate path
      }
      break;
    }
    case JournalKind::kBarrierFs: {
      // Eq. 3: dispatch D as order-preserving, commit without any waits on
      // transfer; a single sleep until the flush thread reports durability.
      co_await wait_stable_pages(f);
      std::vector<blk::RequestPtr> reqs =
          submit_data(f, /*ordered=*/true, false);
      co_await wait_file_writebacks(f, reqs);
      if (f.meta_dirty || f.size_dirty) {
        status = co_await commit_metadata(f, Journal::WaitMode::kDurable);
        if (status == FsStatus::kOk)
          co_await ensure_data_durable(f, reqs);  // already-committed case
      } else if (txn_in_flight(f.txn_id)) {
        status = co_await wait_txn_durable(f.txn_id);  // i_sync_tid parity
        if (status == FsStatus::kOk) co_await ensure_data_durable(f, reqs);
      } else {
        co_await wait_requests(reqs);
        co_await blk_.flush_and_wait();
      }
      // The data transfers this call covers completed above on every path
      // but the failed-commit ones; settle them so a dead carrier is
      // recorded now, not swept silently later.
      co_await wait_requests(reqs);
      note_writeback_failures(f, reqs);
      break;
    }
    case JournalKind::kOptFs: {
      status = co_await osync(f, /*wait_transfer=*/true);
      break;
    }
  }
  fsync_latency_.add(sim_.now() - t0);
  co_return status;
}

sim::TaskOf<FsStatus> Filesystem::fdatasync(Inode& f) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.fdatasyncs;
  FsStatus status = FsStatus::kOk;
  switch (cfg_.journal) {
    case JournalKind::kJbd2: {
      co_await wait_stable_pages(f);
      std::vector<blk::RequestPtr> reqs =
          submit_data(f, /*ordered=*/false, false);
      co_await wait_file_writebacks(f, reqs);
      co_await wait_requests(reqs);
      note_writeback_failures(f, reqs);
      if (f.size_dirty) {
        status = co_await commit_metadata(f, Journal::WaitMode::kDurable);
        if (status == FsStatus::kOk)
          co_await ensure_data_durable(f, reqs);  // already-committed case
      } else if (txn_in_flight(f.datasync_txn_id)) {
        // The transaction holding the latest i_size change is still in
        // flight (a concurrent sync cleared size_dirty mid-commit):
        // fdatasync waits it durable — ext4's i_datasync_tid — while
        // mtime-only dirt keeps skipping the commit (Fig 11).
        status = co_await wait_txn_durable(f.datasync_txn_id);
        if (status == FsStatus::kOk) co_await ensure_data_durable(f, reqs);
      } else if (!cfg_.nobarrier) {
        co_await blk_.flush_and_wait();
      }
      break;
    }
    case JournalKind::kBarrierFs: {
      co_await wait_stable_pages(f);
      std::vector<blk::RequestPtr> reqs =
          submit_data(f, /*ordered=*/true, false);
      co_await wait_file_writebacks(f, reqs);
      if (f.size_dirty) {
        status = co_await commit_metadata(f, Journal::WaitMode::kDurable);
        if (status == FsStatus::kOk)
          co_await ensure_data_durable(f, reqs);  // already-committed case
      } else if (txn_in_flight(f.datasync_txn_id)) {
        status = co_await wait_txn_durable(f.datasync_txn_id);
        if (status == FsStatus::kOk) co_await ensure_data_durable(f, reqs);
      } else {
        co_await wait_requests(reqs);
        co_await blk_.flush_and_wait();
      }
      co_await wait_requests(reqs);  // settle before recording failures
      note_writeback_failures(f, reqs);
      break;
    }
    case JournalKind::kOptFs: {
      status = co_await osync(f, /*wait_transfer=*/true);
      break;
    }
  }
  co_return status;
}

sim::TaskOf<FsStatus> Filesystem::fbarrier(Inode& f) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.fbarriers;
  FsStatus status = FsStatus::kOk;
  switch (cfg_.journal) {
    case JournalKind::kBarrierFs: {
      const bool will_commit = f.meta_dirty || f.size_dirty;
      co_await wait_stable_pages(f);
      std::vector<blk::RequestPtr> reqs =
          submit_data(f, /*ordered=*/true, /*barrier_last=*/!will_commit);
      co_await request_backpressure();
      if (will_commit) {
        // Wakes when the commit thread has dispatched JD and JC.
        status = co_await commit_metadata(f, Journal::WaitMode::kDispatched);
      } else if (reqs.empty()) {
        // Nothing dirty at all: force an (empty) journal commit so the
        // epoch is still delimited (§4.2).
        // iolint: stable-across-suspend(the outcome check must name the id
        // this commit waited on, not whatever txn runs after it)
        const std::uint64_t tid = journal_->running_txn_id();
        co_await journal_->commit(tid, Journal::WaitMode::kNone);
        status = commit_outcome(tid);
      }
      break;
    }
    case JournalKind::kOptFs: {
      status = co_await osync(f, /*wait_transfer=*/true);
      break;
    }
    case JournalKind::kJbd2:
      BIO_CHECK_MSG(false, "fbarrier() requires BarrierFS (or OptFS osync)");
  }
  co_return status;
}

sim::TaskOf<FsStatus> Filesystem::fdatabarrier(Inode& f) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.fdatabarriers;
  BIO_CHECK_MSG(cfg_.journal == JournalKind::kBarrierFs,
                "fdatabarrier() requires BarrierFS");
  const bool commit_needed = f.size_dirty;
  co_await wait_stable_pages(f);
  std::vector<blk::RequestPtr> reqs =
      submit_data(f, /*ordered=*/true, /*barrier_last=*/!commit_needed);
  co_await request_backpressure();
  std::uint64_t tid = 0;
  if (commit_needed) {
    // The journal commit (ORDERED|BARRIER writes) delimits the epoch; the
    // caller does not wait for anything.
    f.meta_dirty = false;
    f.size_dirty = false;
    tid = f.txn_id;
    co_await journal_->commit(tid, Journal::WaitMode::kNone);
  } else if (reqs.empty()) {
    // iolint: stable-across-suspend(the outcome below must name the id
    // this empty-epoch commit targeted)
    tid = journal_->running_txn_id();
    co_await journal_->commit(tid, Journal::WaitMode::kNone);
  }
  co_return tid != 0 ? commit_outcome(tid) : FsStatus::kOk;
}

sim::TaskOf<FsStatus> Filesystem::osync(Inode& f, bool wait_transfer) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.osyncs;
  co_return co_await osync_impl(f, wait_transfer);
}

sim::TaskOf<FsStatus> Filesystem::osync_impl(Inode& f, bool wait_transfer) {
  // OptFS: osync is filesystem-wide — it scans the *global* dirty list
  // (selective data journaling keeps that list long on overwrite-heavy
  // workloads), journals overwrites, writes allocating pages in place,
  // commits with Wait-on-Transfer, and never flushes.
  const std::size_t dirty_pages = cache_.dirty_count();
  co_await sim_.delay(cfg_.osync_scan_cpu_per_page *
                      static_cast<sim::SimTime>(dirty_pages + 1));
  co_await wait_stable_pages(f);
  // Selective data journaling adds one log block per overwrite page. The
  // batch is bounded to the journal's per-transaction payload limit and
  // split across transactions when a file carries more dirty overwrites
  // than one transaction may hold (a 48-page extent over a 48-block
  // journal is a legal configuration); each full batch commits before the
  // next is journaled, and the running transaction is throttled first so
  // concurrent writers' buffers do not push the batch past the limit.
  std::uint32_t journaled = 0;
  std::uint64_t journaled_tid = 0;
  for (;;) {
    // A journal that died under a previous lap's commit must not swallow
    // more overwrite pages into a transaction nobody will ever write.
    if (journal_->aborted()) co_return FsStatus::kIo;
    const std::size_t limit = journal_->max_txn_payload();
    std::size_t pending = 0;
    cache_.dirty_pages_of(f.ino, scratch_keys_);
    for (const PageCache::PageKey& key : scratch_keys_)
      if (cache_.find(key.ino, key.page)->overwrite) ++pending;
    if (pending == 0) break;
    co_await journal_->throttle_running_txn(std::min(pending, limit));
    // Concurrent writers may have refilled the running transaction during
    // the throttle's commit-wait: cap the batch at the headroom actually
    // left, read in this same synchronous stretch as the add.
    const std::size_t payload = journal_->running_payload();
    if (payload >= limit) continue;  // no room — throttle again
    const std::size_t room = limit - payload;
    const std::uint32_t batch = journal_overwrites(f, room);
    if (batch == 0) break;
    journaled += batch;
    // The journaled pages joined the transaction running NOW. Record it on
    // the inode in this same synchronous stretch: a concurrent durability
    // syscall (dsync) must know which transaction carries this file's
    // data — and the commits below must name exactly this id, because the
    // waits in between can outlive the transaction's close.
    // iolint: stable-across-suspend(see above — the commits must target
    // the txn that carried the batch, never a re-read of the running id)
    journaled_tid = journal_->running_txn_id();
    f.datasync_txn_id = std::max(f.datasync_txn_id, journaled_tid);
    if (batch < room) break;  // the file's overwrites all fit
    co_await journal_->commit(journaled_tid, Journal::WaitMode::kDurable);
    if (commit_outcome(journaled_tid) != FsStatus::kOk)
      co_return FsStatus::kIo;
  }
  std::vector<blk::RequestPtr> reqs = submit_data(f, false, false);
  // The osync transaction's commit checksum covers the allocating writes
  // going in place: attach them so recovery can validate atomicity.
  for (const blk::RequestPtr& r : reqs) journal_->attach_data(r);
  if (wait_transfer) {
    co_await wait_requests(reqs);
    note_writeback_failures(f, reqs);
  }
  FsStatus status = FsStatus::kOk;
  if (journaled > 0) {
    f.meta_dirty = false;
    f.size_dirty = false;
    co_await journal_->commit(journaled_tid, Journal::WaitMode::kDurable);
    status = commit_outcome(journaled_tid);
  } else if (f.meta_dirty || f.size_dirty) {
    status = co_await commit_metadata(f, Journal::WaitMode::kDurable);
  } else if (journal_->running_has_updates()) {
    // iolint: stable-across-suspend(outcome must name the committed id)
    const std::uint64_t tid = journal_->running_txn_id();
    co_await journal_->commit(tid, Journal::WaitMode::kDurable);
    status = commit_outcome(tid);
  } else if (txn_in_flight(f.txn_id) || txn_in_flight(f.datasync_txn_id)) {
    // Nothing new to commit, but a concurrent syscall's transaction still
    // holds this file's metadata or journaled data (it may be stalled on
    // journal space): this osync orders after it — and dsync's trailing
    // flush must cover its records, so wait its transfer here.
    status = co_await wait_txn_durable(std::max(f.txn_id, f.datasync_txn_id));
  }
  co_return status;
}

sim::TaskOf<FsStatus> Filesystem::dsync(Inode& f) {
  if (degraded_) co_return FsStatus::kRoFs;
  ++stats_.dsyncs;
  BIO_CHECK_MSG(cfg_.journal == JournalKind::kOptFs,
                "dsync() requires OptFS");
  // OptFS dsync (§5 substitution, OptFS paper): the osync protocol — the
  // journal commit itself never waits on a flush — followed by one cache
  // flush, so the data this call covered is on media at return while
  // metadata durability still arrives on the journal's own schedule.
  const FsStatus status = co_await osync_impl(f, /*wait_transfer=*/true);
  // Writebacks of this file still in flight from concurrent order points
  // must transfer before the flush below, or their (covered) data sits in
  // the volatile cache past this call's durable return.
  bool swept_failed = false;
  std::vector<blk::RequestPtr> wb =
      cache_.writebacks_of(f.ino, nullptr, &swept_failed);
  if (swept_failed) ++f.wb_err_seq;
  for (const blk::RequestPtr& r : wb) co_await r->completion.wait();
  note_writeback_failures(f, wb);
  co_await blk_.flush_and_wait();
  co_return status;
}

// ---- pdflush -----------------------------------------------------------------

sim::Task Filesystem::pdflush_loop() {
  // Batch-local buffers live in the coroutine frame and keep their
  // capacity across batches; the collection/submission stretch below never
  // suspends, so they cannot be observed half-filled.
  std::vector<PageCache::PageKey> keys;
  std::vector<blk::RequestPtr> reqs;
  std::vector<std::uint32_t> req_inos;  // per-request owner (runs are 1 file)
  std::vector<blk::Block> run;
  std::vector<PageCache::PageKey> run_keys;
  std::vector<blk::Block> journaled_blocks;
  for (;;) {
    while (cache_.dirty_count() < cfg_.writeback_high_watermark)
      co_await cache_.dirtied().wait();
    while (cache_.dirty_count() > cfg_.writeback_low_watermark) {
      cache_.all_dirty(cfg_.writeback_batch * blk::kMaxMergedBlocks, keys);
      if (keys.empty()) break;

      // Group into contiguous runs per file.
      reqs.clear();
      req_inos.clear();
      run.clear();
      run_keys.clear();
      auto flush_run = [&]() {
        if (run.empty()) return;
        blk::RequestPtr r =
            blk_.pool().make_write(std::span<const blk::Block>(run));
        for (const PageCache::PageKey& key : run_keys)
          cache_.begin_writeback(key, r);
        stats_.writeback_pages += run_keys.size();
        blk_.submit(r);
        reqs.push_back(std::move(r));
        req_inos.push_back(run_keys.front().ino);
        run.clear();
        run_keys.clear();
      };
      journaled_blocks.clear();
      blk::RequestPtr skipped_carrier;
      bool journal_batch_full = false;
      for (const PageCache::PageKey& key : keys) {
        if (reqs.size() >= cfg_.writeback_batch) break;
        const PageCache::PageState* st = cache_.find(key.ino, key.page);
        if (st->writeback != nullptr && !st->writeback->completion.is_set()) {
          // WB_SYNC_NONE: skip pages with an in-flight copy.
          if (skipped_carrier == nullptr) skipped_carrier = st->writeback;
          continue;
        }
        if (cfg_.journal == JournalKind::kOptFs && st->overwrite) {
          // OptFS: overwrite writeback goes through the journal (selective
          // data journaling), not in place. The page's inode remembers the
          // carrying transaction, as osync does (dsync attribution). The
          // batch stays within one transaction's payload — the remainder
          // keeps its dirty bit for the next pdflush pass.
          // A dead journal can carry nothing: skip the page (writing the
          // overwrite in place would destroy the committed old version it
          // was journaled to protect). It stays dirty, memory-only, on the
          // degraded volume.
          if (journal_->aborted()) continue;
          if (journal_->running_payload() + journaled_blocks.size() >=
              journal_->max_txn_payload()) {
            journal_batch_full = true;
            continue;
          }
          journaled_blocks.emplace_back(st->lba, st->version);
          // iolint: txn-registered(add_journaled_data below joins this
          // batch to the running txn in the same synchronous stretch —
          // registration is deferred past the loop, never past a suspend)
          if (auto fit = by_ino_.find(key.ino); fit != by_ino_.end())
            fit->second->datasync_txn_id = journal_->running_txn_id();
          cache_.mark_clean(key);
          continue;
        }
        const bool extend = !run.empty() &&
                            run_keys.back().ino == key.ino &&
                            run.back().first + 1 == st->lba &&
                            run.size() < blk::kMaxMergedBlocks;
        if (!extend) flush_run();
        run.emplace_back(st->lba, st->version);
        run_keys.push_back(key);
      }
      flush_run();
      if (!journaled_blocks.empty()) {
        journal_->add_journaled_data(journaled_blocks);
        co_await journal_->commit(journal_->running_txn_id(),
                                  Journal::WaitMode::kDurable);
      } else if (reqs.empty()) {
        // Every collected page was skipped: this pass made no progress, so
        // suspend on whatever blocks it — an in-flight carrier, or a full
        // running transaction (commit it so the next pass has payload
        // room) — or the loop would spin forever in the cooperative
        // simulator.
        if (skipped_carrier != nullptr)
          co_await skipped_carrier->completion.wait();
        else if (journal_batch_full)
          co_await journal_->commit(journal_->running_txn_id(),
                                    Journal::WaitMode::kDurable);
        else if (journal_->aborted())
          // Every remaining dirty page needs the (dead) journal: park until
          // something in-place-writable gets dirtied, instead of spinning.
          co_await cache_.dirtied().wait();
        else
          break;
      }

      for (std::size_t i = 0; i < reqs.size(); ++i) {
        co_await reqs[i]->completion.wait();
        if (reqs[i]->failed()) {
          // Background writeback failed: redirty and record the error on
          // the owner, so the owner's next fsync reports EIO (AS_EIO).
          cache_.redirty_failed(req_inos[i], reqs[i]);
          if (auto fit = by_ino_.find(req_inos[i]); fit != by_ino_.end())
            ++fit->second->wb_err_seq;
        }
      }
      writeback_progress_.notify_all();
    }
  }
}

}  // namespace bio::fs
