// Journaling core shared by the three journal implementations (JBD2,
// BarrierFS dual-mode, OptFS).
//
// A transaction collects dirty metadata blocks (and, in ordered mode, the
// data requests that must reach the device before the journal description
// of them). Committing writes two records into the circular journal area:
//   JD — one descriptor block + one log block per buffer (one request),
//   JC — the commit record (one block).
// How JD/JC are written — with which waits, flags and flushes — is exactly
// what distinguishes EXT4 from BarrierFS (paper Eq. 2 vs Eq. 3), so that
// logic lives in the subclasses.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "blk/block_layer.h"
#include "fs/types.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace bio::fs {

struct Txn {
  enum class State : std::uint8_t { kRunning, kCommitting, kRetired };

  std::uint64_t id = 0;
  State state = State::kRunning;
  /// Dirty metadata blocks (inode table LBAs).
  std::set<flash::Lba> buffers;
  /// Data-journaled pages (OptFS selective data journaling): extra log
  /// blocks in JD.
  std::uint32_t journaled_data_blocks = 0;
  /// Ordered-mode data requests that must transfer before JD.
  std::vector<blk::RequestPtr> data_reqs;

  /// Journal records as written (for crash analysis).
  std::vector<std::pair<flash::Lba, flash::Version>> jd_blocks;
  std::pair<flash::Lba, flash::Version> jc_block{0, 0};
  /// The in-flight JC request (BarrierFS flush thread waits on it).
  blk::RequestPtr jc_req;

  /// JD and JC have been dispatched (fbarrier()'s wake-up point).
  std::unique_ptr<sim::Event> dispatched;
  /// Transaction retired; for durability-mode commits this means durable.
  std::unique_ptr<sim::Event> durable;
  /// Somebody requires a flush before retirement (fsync waiter).
  bool needs_flush = false;
  /// A flush was actually issued before retirement.
  bool flushed = false;

  explicit Txn(sim::Simulator& sim, std::uint64_t txn_id)
      : id(txn_id),
        dispatched(std::make_unique<sim::Event>(sim)),
        durable(std::make_unique<sim::Event>(sim)) {}

  bool empty() const noexcept {
    return buffers.empty() && journaled_data_blocks == 0;
  }
};

class Journal {
 public:
  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t empty_commits = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t journal_blocks_written = 0;
    std::uint64_t checkpoint_writes = 0;
    std::uint64_t journal_wraps = 0;
  };

  enum class WaitMode : std::uint8_t {
    kNone,        // fire-and-forget (epoch delimiting)
    kDispatched,  // return once JD/JC are dispatched (fbarrier)
    kDurable,     // return once the transaction is durable (fsync)
  };

  Journal(sim::Simulator& sim, blk::BlockLayer& blk, const FsConfig& cfg,
          const Layout& layout);
  virtual ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Spawns the journaling thread(s).
  virtual void start() = 0;

  /// Records `block` as dirtied in the running transaction. May block the
  /// caller (EXT4's page-conflict rule). Returns the owning txn id.
  virtual sim::Task dirty_metadata(flash::Lba block,
                                   std::uint64_t& txn_out) = 0;

  /// Requests a commit covering txn `tid` and waits per `mode`.
  virtual sim::Task commit(std::uint64_t tid, WaitMode mode) = 0;

  /// Attaches an in-flight data request to the running transaction
  /// (ordered-mode data writeout dependency).
  void attach_data(blk::RequestPtr r);

  /// Adds `pages` selectively-journaled data blocks to the running txn.
  void add_journaled_data(std::uint32_t pages);

  bool running_has_updates() const noexcept { return !running_->empty(); }
  std::uint64_t running_txn_id() const noexcept { return running_->id; }

  bool is_retired(std::uint64_t tid) const;

  const Stats& stats() const noexcept { return stats_; }

  /// Retired transactions in commit order with their journal records —
  /// input for the crash-consistency checkers.
  const std::vector<const Txn*>& commit_order() const noexcept {
    return commit_order_;
  }

  const Txn* find_txn(std::uint64_t tid) const;

 protected:
  /// Closes the running transaction and opens a new one. Returns nullptr if
  /// the running txn is empty and `allow_empty` is false.
  Txn* close_running(bool allow_empty);

  /// Reserves `n` contiguous journal blocks (wrapping like JBD2 does).
  std::vector<std::pair<flash::Lba, flash::Version>> reserve_journal_blocks(
      std::size_t n);

  /// Issues asynchronous in-place metadata writes for a retired txn.
  void checkpoint(Txn& txn);

  /// Marks the txn retired, fires its events and records commit order.
  void retire(Txn& txn);

  Txn& get_txn(std::uint64_t tid);

  sim::Simulator& sim_;
  blk::BlockLayer& blk_;
  FsConfig cfg_;
  Layout layout_;

  std::unique_ptr<Txn> running_;
  std::map<std::uint64_t, std::unique_ptr<Txn>> txns_;  // committed + retired
  std::vector<const Txn*> commit_order_;
  std::uint64_t next_txn_id_ = 1;
  flash::Lba journal_head_ = 0;
  Stats stats_;
  bool started_ = false;
};

}  // namespace bio::fs
