// Journaling core shared by the three journal implementations (JBD2,
// BarrierFS dual-mode, OptFS).
//
// A transaction collects dirty metadata blocks (and, in ordered mode, the
// data requests that must reach the device before the journal description
// of them). Committing writes two records into the circular journal area:
//   JD — one descriptor block + one log block per buffer (one request),
//   JC — the commit record (one block).
// How JD/JC are written — with which waits, flags and flushes — is exactly
// what distinguishes EXT4 from BarrierFS (paper Eq. 2 vs Eq. 3), so that
// logic lives in the subclasses.
//
// Journal-space lifetime (DESIGN.md §6.5): the journal area is circular
// with an explicit tail. A transaction's records own their blocks from
// reservation until the transaction has retired AND its in-place checkpoint
// copies are durable; reserve_journal_blocks() stalls instead of handing
// out space still owned by an un-checkpointed transaction (the jbd2
// "journal full" path). Tail advance requires durability of the released
// checkpoints: either a full device flush completed after the checkpoint
// writes did (flush horizon — fsync traffic pays for it), or the journal
// issues one itself (jbd2's update-log-tail flush).
//
// Every journal block carries a JournalRecord describing its content
// (descriptor tag table / log copy / commit record), keyed by the block's
// version — the simulation's payload identity. fs::Recovery replays a
// crashed device image through these records.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "blk/block_layer.h"
#include "fs/types.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace bio::fs {

/// Content description of one journal-area block, keyed by the block's
/// write version. This is the "what would a scan read here" model: the
/// durable image gives (lba -> version); looking the version up here gives
/// the record that version carried. Only descriptor and commit blocks have
/// records — log blocks are located through their transaction's descriptor
/// (jd_blocks[1..] paired with buffers, then journaled_data) and validated
/// by version, and the commit checksum's in-place data coverage lives in
/// Txn::covered_data.
struct JournalRecord {
  enum class Type : std::uint8_t {
    kDescriptor,  // tag table: the txn's log blocks and their homes
    kCommit,      // commit record
  };

  Type type = Type::kDescriptor;
  std::uint64_t txn_id = 0;
};

struct Txn {
  enum class State : std::uint8_t { kRunning, kCommitting, kRetired };

  std::uint64_t id = 0;
  State state = State::kRunning;
  /// Dirty metadata blocks (inode table LBAs).
  std::set<flash::Lba> buffers;
  /// Data-journaled pages (OptFS selective data journaling): extra log
  /// blocks in JD. `journaled_data` identifies them; the count mirrors
  /// journaled_data.size() plus any identity-less legacy additions.
  std::uint32_t journaled_data_blocks = 0;
  std::vector<blk::Block> journaled_data;
  /// Ordered-mode data requests that must transfer before JD. Drained (and
  /// cleared) by the commit loops; OptFS freezes their payload into
  /// `covered_data` first.
  std::vector<blk::RequestPtr> data_reqs;
  /// In-place data blocks this transaction's commit checksum covers
  /// (OptFS: osync's allocating writes — a lost one fails the checksum and
  /// invalidates the transaction at recovery).
  std::vector<blk::Block> covered_data;

  /// Frozen content of each metadata buffer at commit close (the journal's
  /// log-copy payload), captured by the filesystem's close hook. Sorted by
  /// block (buffers iterate in set order); use find_snapshot().
  std::vector<std::pair<flash::Lba, MetaSnapshot>> meta_snapshots;

  const MetaSnapshot* find_snapshot(flash::Lba block) const {
    auto it = std::lower_bound(
        meta_snapshots.begin(), meta_snapshots.end(), block,
        [](const auto& e, flash::Lba b) { return e.first < b; });
    return it != meta_snapshots.end() && it->first == block ? &it->second
                                                            : nullptr;
  }

  /// Journal records as written (for crash analysis).
  std::vector<std::pair<flash::Lba, flash::Version>> jd_blocks;
  std::pair<flash::Lba, flash::Version> jc_block{0, 0};
  /// The in-flight JC request (BarrierFS flush thread waits on it).
  blk::RequestPtr jc_req;
  /// The in-flight JD request (BarrierFS submits it without waiting; the
  /// flush thread later checks it for IO failure before retiring).
  blk::RequestPtr jd_req;

  /// JD and JC have been dispatched (fbarrier()'s wake-up point).
  std::unique_ptr<sim::Event> dispatched;
  /// Transaction retired; for durability-mode commits this means durable.
  std::unique_ptr<sim::Event> durable;
  /// Somebody requires a flush before retirement (fsync waiter).
  bool needs_flush = false;
  /// A flush was actually issued before retirement.
  bool flushed = false;

  // ---- checkpoint lifetime (journal-space release gating) -----------------
  /// In-place metadata copies issued at retire: (home lba, device version).
  std::vector<std::pair<flash::Lba, flash::Version>> checkpoint_blocks;
  /// All checkpoint writes have completed their transfer.
  bool checkpoint_done = false;
  /// Device flush sequence observed when the checkpoint writes completed;
  /// a completed flush with a later entry sequence proves durability.
  std::uint64_t checkpoint_flush_stamp = 0;
  /// Journaled data has been copied in place (lazy, on space pressure).
  bool data_checkpointed = false;

  explicit Txn(sim::Simulator& sim, std::uint64_t txn_id)
      : id(txn_id),
        dispatched(std::make_unique<sim::Event>(sim)),
        durable(std::make_unique<sim::Event>(sim)) {}

  bool empty() const noexcept {
    return buffers.empty() && journaled_data_blocks == 0;
  }
};

class Journal {
 public:
  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t empty_commits = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t journal_blocks_written = 0;
    std::uint64_t checkpoint_writes = 0;
    std::uint64_t journal_wraps = 0;
    /// reserve_journal_blocks() had to wait for journal space.
    std::uint64_t journal_stalls = 0;
    /// Tail-advance flushes the journal issued itself (space pressure with
    /// no prior flush covering the released checkpoints).
    std::uint64_t checkpoint_flushes = 0;
    /// Journal-space releases (tail advances past a txn).
    std::uint64_t tail_advances = 0;
  };

  enum class WaitMode : std::uint8_t {
    kNone,        // fire-and-forget (epoch delimiting)
    kDispatched,  // return once JD/JC are dispatched (fbarrier)
    kDurable,     // return once the transaction is durable (fsync)
  };

  Journal(sim::Simulator& sim, blk::BlockLayer& blk, const FsConfig& cfg,
          const Layout& layout);
  virtual ~Journal() = default;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Spawns the journaling thread(s).
  virtual void start() = 0;

  /// Records `block` as dirtied in the running transaction. May block the
  /// caller (EXT4's page-conflict rule). Returns the owning txn id.
  virtual sim::Task dirty_metadata(flash::Lba block,
                                   std::uint64_t& txn_out) = 0;

  /// Requests a commit covering txn `tid` and waits per `mode`.
  virtual sim::Task commit(std::uint64_t tid, WaitMode mode) = 0;

  /// Attaches an in-flight data request to the running transaction
  /// (ordered-mode data writeout dependency).
  void attach_data(blk::RequestPtr r);

  /// jbd2-style transaction-size bound: while the running transaction's
  /// projected JD record (descriptor + per-buffer/per-page log blocks)
  /// plus `adding` more would outgrow max_txn_payload(), commit it and
  /// wait for the swap. Without this, a group commit over many concurrent
  /// writers can build a descriptor too large to ever fit next to its own
  /// commit record in a small journal. No-op while the running txn is
  /// empty (an atomically-oversized batch is a config error the reserve
  /// path still asserts on).
  sim::Task throttle_running_txn(std::size_t adding);

  /// Log blocks one transaction may carry (jbd2's j_max_transaction_buffers
  /// analogue): half the journal area, so a JD and its JC always fit in one
  /// lap even with wrap waste. Batch producers (OptFS selective data
  /// journaling) must split larger payloads across transactions.
  std::size_t max_txn_payload() const noexcept {
    return std::max<std::size_t>(4, (cfg_.journal_blocks - 2) / 2);
  }

  /// The running transaction's current JD footprint (descriptor + buffers
  /// + journaled pages) — what a batch producer reads, in the same
  /// synchronous stretch as its add, to cap the batch at
  /// max_txn_payload() without racing concurrent dirtiers.
  std::size_t running_payload() const noexcept {
    return 1 + running_->buffers.size() + running_->journaled_data_blocks;
  }

  /// Adds selectively-journaled data blocks (with payload identity) to the
  /// running txn.
  void add_journaled_data(std::span<const blk::Block> pages);

  bool running_has_updates() const noexcept { return !running_->empty(); }
  std::uint64_t running_txn_id() const noexcept { return running_->id; }

  bool is_retired(std::uint64_t tid) const;

  const Stats& stats() const noexcept { return stats_; }

  /// Retired transactions in commit order with their journal records —
  /// input for the crash-consistency checkers.
  const std::vector<const Txn*>& commit_order() const noexcept {
    return commit_order_;
  }

  const Txn* find_txn(std::uint64_t tid) const;

  // ---- recovery surface ----------------------------------------------------

  /// Content record of the journal block written with `version`, or nullptr
  /// (fs::Recovery's "read one journal block" primitive).
  const JournalRecord* find_record(flash::Version version) const;

  /// Resolves an in-place metadata write version to (home lba, txn id) —
  /// the identity of a checkpoint copy found in the durable image.
  struct CheckpointId {
    flash::Lba home_lba = 0;
    std::uint64_t txn_id = 0;
  };
  const CheckpointId* find_checkpoint(flash::Version version) const;

  /// Resolves an in-place *data* checkpoint write version to the page-cache
  /// version whose content it carries (OptFS journaled-data checkpoints).
  struct DataCheckpointId {
    flash::Lba home_lba = 0;
    flash::Version content = 0;
  };
  const DataCheckpointId* find_data_checkpoint(flash::Version version) const;

  /// The on-disk superblock's log-tail pointer: recovery scans from this
  /// transaction id. Updated (with a durability flush) when the journal
  /// releases space, like jbd2_update_log_tail.
  std::uint64_t sb_tail_txn() const noexcept { return sb_tail_txn_; }

  /// Hook the filesystem installs to freeze metadata-buffer content
  /// (MetaSnapshots) when a transaction closes.
  using CloseHook = std::function<void(Txn&)>;
  void set_close_hook(CloseHook hook) { close_hook_ = std::move(hook); }

  // ---- abort (errors=remount-ro, journal half) ----------------------------

  /// True once a JD/JC write failed for good: the journal is dead, no
  /// transaction commits after this point, and commit waiters have been
  /// woken (they observe aborted() instead of durability).
  bool aborted() const noexcept { return aborted_; }

  /// Hook the filesystem installs to degrade the volume read-only when the
  /// journal aborts. Runs synchronously inside abort_journal().
  using AbortHook = std::function<void()>;
  void set_abort_hook(AbortHook hook) { abort_hook_ = std::move(hook); }

 protected:
  /// Closes the running transaction and opens a new one. Returns nullptr if
  /// the running txn is empty and `allow_empty` is false.
  Txn* close_running(bool allow_empty);

  /// Reserves the JD blocks (descriptor + per-buffer and per-data-page log
  /// blocks) for `txn` into txn.jd_blocks and registers their content
  /// records. May stall on journal-space pressure (tail advance).
  sim::Task reserve_jd(Txn& txn);

  /// Reserves the JC block for `txn` into txn.jc_block and registers the
  /// commit record. May stall like reserve_jd.
  sim::Task reserve_jc(Txn& txn);

  /// Issues asynchronous in-place metadata writes for a retired txn and
  /// spawns the completion tracker that eventually allows space release.
  void checkpoint(Txn& txn);

  /// Marks the txn retired, fires its events and records commit order.
  void retire(Txn& txn);

  /// Declares the journal dead after `txn`'s JD or JC write failed: wakes
  /// every commit waiter (the failed txn's, every committing txn's and the
  /// running txn's events fire, so syncs sleeping on them observe the abort
  /// and fail with EIO instead of hanging), then notifies the filesystem.
  /// The failed transaction never retires — its commit record never counts,
  /// which is exactly what recovery relies on ("a torn or failed journal
  /// write never replays as committed").
  void abort_journal(Txn& txn);

  Txn& get_txn(std::uint64_t tid);

  sim::Simulator& sim_;
  blk::BlockLayer& blk_;
  FsConfig cfg_;
  Layout layout_;

  std::unique_ptr<Txn> running_;
  std::map<std::uint64_t, std::unique_ptr<Txn>> txns_;  // committed + retired
  std::vector<const Txn*> commit_order_;
  std::uint64_t next_txn_id_ = 1;
  flash::Lba journal_head_ = 0;
  Stats stats_;
  bool started_ = false;
  bool aborted_ = false;
  AbortHook abort_hook_;

 private:
  /// One reserved stretch of the journal area (offsets, not LBAs). A txn
  /// owns up to two: JD and JC (a wrap may separate them). Txn objects are
  /// owned by txns_ and never freed, so the raw pointer is stable.
  struct JournalSpan {
    Txn* txn = nullptr;
    std::uint32_t start = 0;
    std::uint32_t len = 0;
  };

  /// Reserves `n` contiguous journal blocks for `txn` (wrapping like JBD2:
  /// records never straddle the end). Suspends while the space is still
  /// owned by committed-but-not-durably-checkpointed transactions.
  sim::Task reserve_journal_blocks(Txn& txn, std::size_t n,
                                   std::vector<blk::Block>& out);

  /// True once `txn`'s in-place copies are provably durable (checkpoint
  /// writes completed + a later full flush, or a PLP device).
  bool checkpoint_durable(const Txn& txn) const;

  /// Releases every leading span whose txn is retired with a durable
  /// checkpoint; advances tail and the superblock pointer.
  void advance_tail();

  /// Tail-advance slow path: copy journaled data in place (lazy OptFS
  /// checkpoint), then flush so the front transactions' checkpoints become
  /// durable, then release.
  sim::Task force_tail_advance();

  /// One persistent tracker instead of a waiter per transaction: drains
  /// (txn, checkpoint requests) pairs in retire order and marks
  /// checkpoint_done. Completed events resolve without suspension, so the
  /// loop adds no simulated latency in the common case.
  sim::Task checkpoint_tracker();

  CloseHook close_hook_;
  struct PendingCheckpoint {
    Txn* txn = nullptr;
    std::vector<blk::RequestPtr> reqs;
    /// Copies whose home block had an older copy in flight at submit time;
    /// the tracker serializes and submits them (buffer-lock rule).
    std::vector<blk::Block> deferred;
  };
  std::deque<PendingCheckpoint> ckpt_queue_;
  /// Latest in-place copy request per home block (conflict detection).
  std::unordered_map<flash::Lba, blk::RequestPtr> inflight_ckpt_;
  /// Blocks with queued-but-unsubmitted deferred copies: later checkpoints
  /// of the same block must queue behind them, not jump ahead.
  std::unordered_map<flash::Lba, std::uint32_t> deferred_ckpt_count_;
  sim::Notify ckpt_wake_;
  bool ckpt_tracker_started_ = false;
  /// Capacity-retaining scratch for the 1-block JC reservation.
  std::vector<blk::Block> scratch_jc_;

  // Content model of the journal area + in-place checkpoint copies.
  std::unordered_map<flash::Version, JournalRecord> records_;
  std::unordered_map<flash::Version, CheckpointId> checkpoint_versions_;
  std::unordered_map<flash::Version, DataCheckpointId> data_checkpoint_versions_;

  // Circular space accounting.
  std::deque<JournalSpan> live_spans_;
  std::uint32_t journal_tail_ = 0;  // offset of the oldest live block
  std::uint32_t journal_used_ = 0;  // blocks between tail and head (+ waste)
  std::uint64_t sb_tail_txn_ = 1;
  sim::Notify journal_space_;
};

}  // namespace bio::fs
