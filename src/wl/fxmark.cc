#include "wl/fxmark.h"

#include <string>
#include <vector>

#include "api/vfs.h"

namespace bio::wl {

namespace {

sim::Task dwsl_thread(const FxmarkParams& p, api::File file,
                      std::uint64_t& ops) {
  for (std::uint32_t i = 0; i < p.writes_per_thread; ++i) {
    // Allocating write: every append extends i_size, so every fsync
    // commits a journal transaction — the DWSL pattern.
    api::must(co_await file.append(1));
    api::must(co_await file.fsync());
    ++ops;
  }
}

}  // namespace

ShardedFxmarkResult run_fxmark_dwsl_sharded(
    core::Stack& node, const FxmarkParams& params,
    const std::function<void()>& on_measured_start) {
  ShardedFxmarkResult result;
  const std::size_t nvol = node.volume_count();
  node.start();
  api::Vfs vfs(node);

  auto path_of = [&node, nvol](std::uint32_t core, const std::string& file) {
    const core::Volume& vol = node.volume(core % nvol);
    return vol.name().empty() ? file : "/" + vol.name() + "/" + file;
  };

  std::vector<api::File> files(params.cores);
  auto setup = [&]() -> sim::Task {
    for (std::uint32_t c = 0; c < params.cores; ++c) {
      files[c] = api::must(co_await vfs.open(
          path_of(c, "dwsl" + std::to_string(c)),
          {.create = true, .extent_blocks = params.writes_per_thread + 1}));
    }
  };
  node.sim().spawn("setup", setup());
  node.sim().run();

  for (std::size_t v = 0; v < nvol; ++v)
    node.volume(v).device().reset_qd_accounting();
  if (on_measured_start) on_measured_start();
  const sim::SimTime t0 = node.sim().now();
  // The dwsl threads hold references into result.volume_ops; run() blocks
  // until every one of them has finished.
  result.volume_ops.assign(nvol, 0);
  for (std::uint32_t c = 0; c < params.cores; ++c)
    // iolint: detached-owner(run() below blocks until every thread is
    // done; files/result outlive the run in this scope)
    node.sim().spawn("dwsl:" + std::to_string(c),
                     dwsl_thread(params, files[c],
                                 result.volume_ops[c % nvol]));
  node.sim().run();

  result.elapsed = node.sim().now() - t0;
  result.volume_ops_per_sec.resize(nvol, 0.0);
  for (std::size_t v = 0; v < nvol; ++v) {
    result.ops_done += result.volume_ops[v];
    if (result.elapsed > 0)
      result.volume_ops_per_sec[v] =
          static_cast<double>(result.volume_ops[v]) /
          sim::to_seconds(result.elapsed);
  }
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

FxmarkResult run_fxmark_dwsl(core::Stack& stack, const FxmarkParams& params,
                             sim::Rng rng) {
  (void)rng;  // DWSL is deterministic; kept for interface uniformity
  // Exactly the one-volume sharded case (an unnamed volume routes plain
  // "dwsl<c>" names through the root mount).
  const ShardedFxmarkResult r = run_fxmark_dwsl_sharded(stack, params);
  return FxmarkResult{r.ops_per_sec, r.ops_done, r.elapsed};
}

}  // namespace bio::wl
