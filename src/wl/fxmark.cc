#include "wl/fxmark.h"

#include <string>
#include <vector>

#include "api/vfs.h"

namespace bio::wl {

namespace {

sim::Task dwsl_thread(const FxmarkParams& p, api::File file,
                      std::uint64_t& ops) {
  for (std::uint32_t i = 0; i < p.writes_per_thread; ++i) {
    // Allocating write: every append extends i_size, so every fsync
    // commits a journal transaction — the DWSL pattern.
    api::must(co_await file.append(1));
    api::must(co_await file.fsync());
    ++ops;
  }
}

}  // namespace

FxmarkResult run_fxmark_dwsl(core::Stack& stack, const FxmarkParams& params,
                             sim::Rng rng) {
  (void)rng;  // DWSL is deterministic; kept for interface uniformity
  FxmarkResult result;
  stack.start();
  api::Vfs vfs(stack);

  std::vector<api::File> files(params.cores);
  auto setup = [&vfs, &params, &files]() -> sim::Task {
    for (std::uint32_t c = 0; c < params.cores; ++c) {
      files[c] = api::must(co_await vfs.open(
          "dwsl" + std::to_string(c),
          {.create = true, .extent_blocks = params.writes_per_thread + 1}));
    }
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  auto ops = std::make_unique<std::uint64_t>(0);
  for (std::uint32_t c = 0; c < params.cores; ++c)
    stack.sim().spawn("dwsl:" + std::to_string(c),
                      dwsl_thread(params, files[c], *ops));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.ops_done = *ops;
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
