#include "wl/fxmark.h"

#include <string>

namespace bio::wl {

namespace {

sim::Task dwsl_thread(core::Stack& stack, const FxmarkParams& p,
                      fs::Inode& file, std::uint64_t& ops) {
  for (std::uint32_t i = 0; i < p.writes_per_thread; ++i) {
    // Allocating write: every append extends i_size, so every fsync
    // commits a journal transaction — the DWSL pattern.
    co_await stack.fs().write(file, file.size_blocks, 1);
    co_await stack.fs().fsync(file);
    ++ops;
  }
}

}  // namespace

FxmarkResult run_fxmark_dwsl(core::Stack& stack, const FxmarkParams& params,
                             sim::Rng rng) {
  (void)rng;  // DWSL is deterministic; kept for interface uniformity
  FxmarkResult result;
  stack.start();

  std::vector<fs::Inode*> files(params.cores, nullptr);
  auto setup = [&stack, &params, &files]() -> sim::Task {
    for (std::uint32_t c = 0; c < params.cores; ++c) {
      co_await stack.fs().create("dwsl" + std::to_string(c), files[c],
                                 params.writes_per_thread + 1);
    }
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  auto ops = std::make_unique<std::uint64_t>(0);
  for (std::uint32_t c = 0; c < params.cores; ++c)
    stack.sim().spawn("dwsl:" + std::to_string(c),
                      dwsl_thread(stack, params, *files[c], *ops));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.ops_done = *ops;
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
