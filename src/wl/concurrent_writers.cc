#include "wl/concurrent_writers.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "fs/page_cache.h"
#include "sim/rng.h"

namespace bio::wl {
namespace {

using namespace bio::sim::literals;

/// One sync-matrix row the writer can roll: either a policy-resolved intent
/// or a direct barrier/sync syscall.
struct SyncPick {
  bool is_intent = false;
  api::SyncIntent intent = api::SyncIntent::kFullSync;
  api::Syscall direct = api::Syscall::kFsync;
};

std::vector<SyncPick> sync_matrix(core::StackKind kind) {
  std::vector<SyncPick> m = {
      {true, api::SyncIntent::kOrder, {}},
      {true, api::SyncIntent::kDurability, {}},
      {true, api::SyncIntent::kFullSync, {}},
      {false, {}, api::Syscall::kFsync},
      {false, {}, api::Syscall::kFdatasync},
  };
  if (kind == core::StackKind::kBfsDR || kind == core::StackKind::kBfsOD) {
    m.push_back({false, {}, api::Syscall::kFbarrier});
    m.push_back({false, {}, api::Syscall::kFdatabarrier});
  }
  return m;
}

/// The concrete syscall `pick` runs against a file carrying `policy` (what
/// the trace records so the checker can classify semantics).
api::Syscall resolved_call(const SyncPick& pick, const api::SyncPolicy& policy) {
  return pick.is_intent ? policy.resolve(pick.intent) : pick.direct;
}

/// Everything the writer coroutines share. Owned by the setup task's frame
/// for the whole run (writers are joined before it finishes... they are
/// not: the frame is kept alive because setup() co_awaits sim.join on each
/// writer thread).
struct Ctx {
  core::Volume& vol;
  api::Vfs& vfs;
  std::string prefix;
  ConcurrentWritersParams p;
  ConcurrentTrace& trace;
  std::vector<SyncPick> matrix;
  /// Detached close-during-sync tasks; setup joins them after the writers
  /// so nothing referencing this Ctx outlives it.
  std::vector<sim::ThreadCtx*> chaos;
};

/// Issues one sync through `fd` and records it in the trace iff it returns
/// success. Spawned detached for the close-during-sync chaos path and
/// awaited inline everywhere else, so it takes everything by pointer.
sim::Task do_sync(Ctx* ctx, FileTrace* f, api::SyncPolicy policy, api::Fd fd,
                  SyncPick pick, std::uint32_t writer) {
  TraceSync s;
  s.call = resolved_call(pick, policy);
  s.writer = writer;
  s.settled_size_at_start = f->settled_size;
  s.name_idx_at_start = f->rel_names.size() - 1;
  s.unlinked_at_start = f->unlinked;
  s.start_tick = ctx->trace.next_tick();
  api::Status st{};
  if (pick.is_intent) {
    st = co_await ctx->vfs.sync(fd, pick.intent);
  } else {
    switch (pick.direct) {
      case api::Syscall::kFsync:
        st = co_await ctx->vfs.fsync(fd);
        break;
      case api::Syscall::kFdatasync:
        st = co_await ctx->vfs.fdatasync(fd);
        break;
      case api::Syscall::kFbarrier:
        st = co_await ctx->vfs.fbarrier(fd);
        break;
      case api::Syscall::kFdatabarrier:
        st = co_await ctx->vfs.fdatabarrier(fd);
        break;
      default:
        co_return;
    }
  }
  if (!st.ok()) co_return;  // e.g. EBADF when chaos closed fd first
  s.done_tick = ctx->trace.next_tick();
  f->syncs.push_back(s);
  ++ctx->trace.syncs_done;
}

/// Records a completed write's pages into the trace. The page-cache version
/// read here may already be a later concurrent writer's — sound, see the
/// TraceWrite comment.
void record_write(Ctx& ctx, FileTrace& f, std::uint32_t writer,
                  std::uint64_t start_tick, std::uint32_t page,
                  std::uint32_t npages) {
  const std::uint64_t done = ctx.trace.next_tick();
  for (std::uint32_t i = 0; i < npages; ++i) {
    const std::uint32_t p = page + i;
    const fs::PageCache::PageState* st =
        ctx.vol.fs().page_cache().find(f.inode->ino, p);
    BIO_CHECK_MSG(st != nullptr, "concurrent writer lost its page");
    f.writes.push_back(TraceWrite{f.inode->lba_of_page(p), st->version, p,
                                  start_tick, done, writer});
  }
  f.settled_size = std::max(f.settled_size, page + npages);
  ++ctx.trace.ops_done;
}

sim::Task writer_body(Ctx* ctxp, std::vector<std::size_t> my_files,
                      std::uint32_t w, sim::Rng rng) {
  Ctx& ctx = *ctxp;
  ConcurrentTrace& trace = ctx.trace;
  const api::SyncPolicy base_policy =
      api::SyncPolicy::for_stack(ctx.vol.kind());

  // Every writer opens its OWN descriptor for every file it touches —
  // independent fds over shared inodes are the point of this workload.
  // Earlier-spawned writers may already have churned the namespace, so an
  // unlinked (or displaced) file is skipped: opening its *name* now would
  // bind the descriptor to whichever file took the name over. The check is
  // race-free because open() of an existing name never suspends.
  std::vector<api::File> fds(my_files.size());
  for (std::size_t i = 0; i < my_files.size(); ++i) {
    FileTrace& f = trace.files[my_files[i]];
    if (f.unlinked) continue;
    api::Result<api::File> r =
        co_await ctx.vfs.open(ctx.prefix + f.rel_name(), {});
    if (r.ok()) fds[i] = r.value();
  }

  auto policy_of = [&](const FileTrace& f) {
    // Setup pins the dsync row on shared file 0 of OptFS volumes; every
    // other file runs the stack's substitution-table row.
    return (ctx.vol.kind() == core::StackKind::kOptFs && f.shared &&
            &f == &trace.files.front())
               ? api::SyncPolicy::optfs_dsync()
               : base_policy;
  };
  auto fd_of = [&](std::size_t i) -> api::Fd {
    // The writer's own descriptor, or the shared anchor when fd churn (or
    // an unlinked name) left the writer without one.
    const FileTrace& f = trace.files[my_files[i]];
    return fds[i].valid() ? fds[i].fd() : f.anchor.fd();
  };

  for (std::uint32_t op = 0; op < ctx.p.ops_per_writer; ++op) {
    // Bias towards shared files: cross-writer interleaving is the point.
    std::size_t li = 0;
    if (ctx.p.shared_files > 0 && rng.chance(0.55)) {
      li = static_cast<std::size_t>(
          rng.uniform(0, ctx.p.shared_files - 1));
    } else {
      li = static_cast<std::size_t>(
          rng.uniform(0, my_files.size() - 1));
    }
    FileTrace& f = trace.files[my_files[li]];
    const api::Fd fd = fd_of(li);
    const int dice = static_cast<int>(rng.uniform(0, 99));

    if (dice < 34) {
      // Positional write, 1-3 pages anywhere in the extent.
      const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(1, 3));
      const std::uint32_t page = static_cast<std::uint32_t>(
          rng.uniform(0, ctx.p.extent_blocks - n));
      const std::uint64_t t0 = trace.next_tick();
      api::Result<std::uint32_t> r = co_await ctx.vfs.pwrite(fd, page, n);
      if (r.ok()) record_write(ctx, f, w, t0, page, r.value());
    } else if (dice < 46) {
      // O_APPEND-style write at EOF; concurrent appenders land disjoint.
      const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(1, 2));
      const std::uint64_t t0 = trace.next_tick();
      api::Result<std::uint32_t> r = co_await ctx.vfs.append(fd, n);
      if (r.ok()) {
        // The write landed at (post-append offset - npages); reading it
        // back here is race-free: no suspension since append returned.
        const std::uint64_t off = ctx.vfs.offset(fd).value();
        record_write(ctx, f, w,
                     t0, static_cast<std::uint32_t>(off) - r.value(),
                     r.value());
      }
    } else if (dice < 72) {
      // The sync matrix — sometimes through the shared anchor descriptor,
      // so acked-durability attribution crosses fds.
      const SyncPick pick = ctx.matrix[static_cast<std::size_t>(
          rng.uniform(0, ctx.matrix.size() - 1))];
      const api::Fd sfd = rng.chance(0.25) ? f.anchor.fd() : fd;
      co_await do_sync(&ctx, &f, policy_of(f), sfd, pick, w);
    } else if (dice < 80 && ctx.p.namespace_churn) {
      // Rename — mostly to a fresh name, sometimes a POSIX replace-rename
      // displacing another live file's name.
      if (!f.unlinked && !f.ns_busy) {
        f.ns_busy = true;
        FileTrace* victim = nullptr;
        if (rng.chance(0.3) &&
            trace.unlinks < static_cast<std::uint32_t>(
                                trace.files.size()) / 2) {
          FileTrace& v = trace.files[static_cast<std::size_t>(
              rng.uniform(0, trace.files.size() - 1))];
          if (&v != &f && !v.unlinked && !v.ns_busy) victim = &v;
        }
        if (victim != nullptr) victim->ns_busy = true;
        const std::string next =
            victim != nullptr ? victim->rel_name()
                              : f.rel_names.front() + ".r" +
                                    std::to_string(f.rel_names.size());
        api::must(co_await ctx.vfs.rename(ctx.prefix + f.rel_name(),
                                          ctx.prefix + next));
        f.rel_names.push_back(next);
        ++trace.renames;
        if (victim != nullptr) {
          victim->unlinked = true;
          victim->ns_busy = false;
          ++trace.unlinks;
        }
        f.ns_busy = false;
      }
    } else if (dice < 84 && ctx.p.namespace_churn) {
      if (!f.unlinked && !f.ns_busy &&
          trace.unlinks <
              static_cast<std::uint32_t>(trace.files.size()) / 2) {
        f.ns_busy = true;
        api::must(co_await ctx.vfs.unlink(ctx.prefix + f.rel_name()));
        f.unlinked = true;
        f.ns_busy = false;
        ++trace.unlinks;
      }
    } else if (dice < 92 && ctx.p.fd_churn) {
      // fd churn: close the writer's own descriptor and reopen by the
      // current name. 50%: close while a sync through that fd is still
      // suspended (the fd-lifecycle edge the vnode pins must survive).
      if (fds[li].valid()) {
        if (rng.chance(0.5)) {
          const SyncPick pick = ctx.matrix[static_cast<std::size_t>(
              rng.uniform(0, ctx.matrix.size() - 1))];
          // iolint: detached-owner(setup joins ctx.chaos after the writers
          // finish; ctx and the Shared file records outlive every sync)
          ctx.chaos.push_back(&ctx.vol.sim().spawn(
              "conc:chaos",
              do_sync(&ctx, &f, policy_of(f), fds[li].fd(), pick, w)));
          co_await ctx.vol.sim().yield();  // let the sync pin the vnode
          ++trace.closes_during_sync;
        }
        api::must(fds[li].close());
        if (!f.unlinked) {
          api::Result<api::File> r =
              co_await ctx.vfs.open(ctx.prefix + f.rel_name(), {});
          if (r.ok()) fds[li] = r.value();
        }
        ++trace.fd_cycles;
      }
    }
    if (rng.chance(0.35))
      co_await ctx.vol.sim().delay(rng.uniform(1, 400) * 1_us);
    if (rng.chance(0.06))
      co_await ctx.vol.sim().delay(rng.uniform(2'000, 6'000) * 1_us);
  }
  ++trace.writers_finished;
}

sim::Task setup_and_run(std::unique_ptr<Ctx> ctx) {
  ConcurrentTrace& trace = ctx->trace;
  const ConcurrentWritersParams& p = ctx->p;
  const std::uint32_t nfiles = p.shared_files + p.writers * p.private_files;
  trace.files.resize(nfiles);  // never resized again: FileTrace& are stable
  trace.writers_total = p.writers;

  auto create = [&](FileTrace& f, std::string name,
                    bool shared) -> sim::Task {
    f.rel_names.push_back(std::move(name));
    f.shared = shared;
    api::OpenOptions oo;
    oo.create = true;
    oo.extent_blocks = p.extent_blocks;
    f.anchor =
        api::must(co_await ctx->vfs.open(ctx->prefix + f.rel_name(), oo));
    f.inode = ctx->vol.fs().lookup(f.rel_name());
    BIO_CHECK(f.inode != nullptr);
  };
  for (std::uint32_t i = 0; i < p.shared_files; ++i)
    co_await create(trace.files[i], "s" + std::to_string(i), true);
  for (std::uint32_t w = 0; w < p.writers; ++w)
    for (std::uint32_t j = 0; j < p.private_files; ++j)
      co_await create(trace.files[p.shared_files + w * p.private_files + j],
                      "w" + std::to_string(w) + ".p" + std::to_string(j),
                      false);
  // OptFS: shared file 0 runs the dsync policy row, so the matrix's
  // durability intent actually exercises dsync's data-durable-at-return.
  if (ctx->vol.kind() == core::StackKind::kOptFs && p.shared_files > 0)
    api::must(ctx->vfs.set_policy(trace.files[0].anchor.fd(),
                                  api::SyncPolicy::optfs_dsync()));
  // Settle the creates so every crash point finds the namespace on disk,
  // and record the settle as one fsync fact on every file. The *last*
  // created file is the one synced: transactions retire durably in commit
  // order, so waiting the newest create's transaction covers every
  // earlier create even when the journal's transaction-size bound split
  // them across several transactions. A *direct* fsync — a policy-resolved
  // sync_file() would be fbarrier on BFS-OD and promise less than the
  // record claims.
  if (nfiles > 0) {
    const std::uint64_t s0 = trace.next_tick();
    api::must(co_await ctx->vfs.fsync(trace.files.back().anchor.fd()));
    const std::uint64_t s1 = trace.next_tick();
    for (FileTrace& f : trace.files) {
      f.syncs.push_back(TraceSync{api::Syscall::kFsync, s0, s1,
                                  /*writer=*/~std::uint32_t{0},
                                  /*settled_size_at_start=*/0,
                                  /*name_idx_at_start=*/0,
                                  /*unlinked_at_start=*/false,
                                  /*chain_covered=*/{},
                                  /*chain_successors=*/{}});
      ++trace.syncs_done;
    }
  }

  sim::Rng base(ctx->p.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<sim::ThreadCtx*> threads;
  for (std::uint32_t w = 0; w < p.writers; ++w) {
    std::vector<std::size_t> my_files;
    for (std::uint32_t i = 0; i < p.shared_files; ++i) my_files.push_back(i);
    for (std::uint32_t j = 0; j < p.private_files; ++j)
      my_files.push_back(p.shared_files + w * p.private_files + j);
    // iolint: detached-owner(the join loop below waits every writer and
    // chaos task; the Ctx unique_ptr outlives them in this frame)
    threads.push_back(&ctx->vol.sim().spawn(
        "conc:w" + std::to_string(w),
        writer_body(ctx.get(), std::move(my_files), w, base.fork())));
  }
  // Keep the Ctx alive until every writer and every detached chaos sync
  // has finished (more chaos tasks cannot appear once the writers are
  // done, so the plain index loop below sees all of them).
  for (sim::ThreadCtx* t : threads) co_await ctx->vol.sim().join(*t);
  for (std::size_t i = 0; i < ctx->chaos.size(); ++i)
    co_await ctx->vol.sim().join(*ctx->chaos[i]);
}

}  // namespace

void spawn_concurrent_writers(core::Volume& vol, api::Vfs& vfs,
                              std::string prefix,
                              const ConcurrentWritersParams& params,
                              ConcurrentTrace& trace) {
  auto ctx = std::make_unique<Ctx>(Ctx{vol, vfs, std::move(prefix), params,
                                       trace, sync_matrix(vol.kind()), {}});
  vol.sim().spawn("conc:setup", setup_and_run(std::move(ctx)));
}

ConcurrentWritersResult run_concurrent_writers(
    core::Stack& stack, const ConcurrentWritersParams& params) {
  stack.start();
  api::Vfs vfs(stack);
  core::Volume& vol = stack.volume(0);
  const std::string prefix =
      vol.name().empty() ? std::string() : "/" + vol.name() + "/";
  ConcurrentTrace trace;
  const sim::SimTime t0 = stack.sim().now();
  spawn_concurrent_writers(vol, vfs, prefix, params, trace);
  stack.sim().run();

  ConcurrentWritersResult r;
  r.ops_done = trace.ops_done;
  r.syncs_done = trace.syncs_done;
  r.elapsed = stack.sim().now() - t0;
  if (r.elapsed > 0)
    r.ops_per_sec = static_cast<double>(r.ops_done + r.syncs_done) /
                    sim::to_seconds(r.elapsed);
  return r;
}

}  // namespace bio::wl
