#include "wl/sqlite.h"

namespace bio::wl {

namespace {

sim::Task persist_txn(core::Stack& stack, const SqliteParams& p,
                      fs::Inode& db, fs::Inode& journal, sim::Rng& rng,
                      std::uint32_t& journal_cursor) {
  fs::Filesystem& filesystem = stack.fs();
  // Rollback journal is truncated/reset per txn; model as a cursor that
  // wraps within the journal file's extent.
  if (journal_cursor + p.journal_pages_per_tx + 2 >= journal.extent_blocks)
    journal_cursor = 1;

  // 1. Undo-log records.
  co_await filesystem.write(journal, journal_cursor, p.journal_pages_per_tx);
  journal_cursor += p.journal_pages_per_tx;
  co_await stack.order_point(journal);
  // 2. Journal header update.
  co_await filesystem.write(journal, 0, 1);
  co_await stack.order_point(journal);
  // 3. Updated database pages.
  for (std::uint32_t i = 0; i < p.db_pages_per_tx; ++i) {
    const std::uint32_t page =
        static_cast<std::uint32_t>(rng.uniform(0, p.db_pages - 1));
    co_await filesystem.write(db, page, 1);
  }
  co_await stack.order_point(db);
  // 4. Commit: finalize the journal header (durability point).
  co_await filesystem.write(journal, 0, 1);
  co_await stack.durability_point(journal);
}

sim::Task wal_txn(core::Stack& stack, const SqliteParams& p, fs::Inode& wal,
                  std::uint32_t& wal_cursor) {
  fs::Filesystem& filesystem = stack.fs();
  if (wal_cursor + p.journal_pages_per_tx + 1 >= wal.extent_blocks)
    wal_cursor = 0;
  co_await filesystem.write(wal, wal_cursor,
                            p.journal_pages_per_tx + 1);  // frames + commit
  wal_cursor += p.journal_pages_per_tx + 1;
  co_await stack.durability_point(wal);
}

sim::Task workload_body(core::Stack& stack, const SqliteParams& p,
                        sim::Rng rng, SqliteResult& out) {
  sim::Simulator& sim = stack.sim();
  fs::Filesystem& filesystem = stack.fs();

  fs::Inode* db = nullptr;
  co_await filesystem.create("app.db", db, p.db_pages);
  // Populate the database so txn updates are overwrites.
  for (std::uint32_t off = 0; off < p.db_pages; off += blk::kMaxMergedBlocks) {
    const std::uint32_t n =
        std::min<std::uint32_t>(blk::kMaxMergedBlocks, p.db_pages - off);
    co_await filesystem.write(*db, off, n);
    co_await filesystem.fsync(*db);
  }
  fs::Inode* journal = nullptr;
  co_await filesystem.create(
      p.mode == SqliteParams::Mode::kWal ? "app.db-wal" : "app.db-journal",
      journal, 2048);
  co_await filesystem.write(*journal, 0, 1);
  co_await filesystem.fsync(*journal);

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = sim.now();
  std::uint32_t cursor = 1;
  for (std::uint64_t i = 0; i < p.transactions; ++i) {
    if (p.mode == SqliteParams::Mode::kPersist)
      co_await persist_txn(stack, p, *db, *journal, rng, cursor);
    else
      co_await wal_txn(stack, p, *journal, cursor);
    ++out.tx_done;
  }
  out.elapsed = sim.now() - t0;
  if (out.elapsed > 0)
    out.tx_per_sec =
        static_cast<double>(out.tx_done) / sim::to_seconds(out.elapsed);
}

}  // namespace

SqliteResult run_sqlite(core::Stack& stack, const SqliteParams& params,
                        sim::Rng rng) {
  SqliteResult result;
  stack.start();
  stack.sim().spawn("sqlite",
                    workload_body(stack, params, std::move(rng), result));
  stack.sim().run();
  return result;
}

}  // namespace bio::wl
