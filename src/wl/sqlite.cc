#include "wl/sqlite.h"

#include "api/vfs.h"

namespace bio::wl {

namespace {

sim::Task persist_txn(const SqliteParams& p, api::File db, api::File journal,
                      sim::Rng& rng, std::uint32_t& journal_cursor) {
  // Rollback journal is truncated/reset per txn; model as a cursor that
  // wraps within the journal file's extent.
  if (journal_cursor + p.journal_pages_per_tx + 2 >=
      api::must(journal.extent_blocks()))
    journal_cursor = 1;

  // 1. Undo-log records.
  api::must(co_await journal.pwrite(journal_cursor, p.journal_pages_per_tx));
  journal_cursor += p.journal_pages_per_tx;
  api::must(co_await journal.order_point());
  // 2. Journal header update.
  api::must(co_await journal.pwrite(0, 1));
  api::must(co_await journal.order_point());
  // 3. Updated database pages.
  for (std::uint32_t i = 0; i < p.db_pages_per_tx; ++i) {
    const std::uint32_t page =
        static_cast<std::uint32_t>(rng.uniform(0, p.db_pages - 1));
    api::must(co_await db.pwrite(page, 1));
  }
  api::must(co_await db.order_point());
  // 4. Commit: finalize the journal header (durability point).
  api::must(co_await journal.pwrite(0, 1));
  api::must(co_await journal.durability_point());
}

sim::Task wal_txn(const SqliteParams& p, api::File wal,
                  std::uint32_t& wal_cursor) {
  if (wal_cursor + p.journal_pages_per_tx + 1 >=
      api::must(wal.extent_blocks()))
    wal_cursor = 0;
  api::must(co_await wal.pwrite(wal_cursor,
                                p.journal_pages_per_tx + 1));  // + commit
  wal_cursor += p.journal_pages_per_tx + 1;
  api::must(co_await wal.durability_point());
}

sim::Task workload_body(core::Stack& stack, api::Vfs& vfs,
                        const SqliteParams& p, sim::Rng rng,
                        SqliteResult& out) {
  sim::Simulator& sim = stack.sim();

  api::File db = api::must(co_await vfs.open(
      "app.db", {.create = true, .extent_blocks = p.db_pages}));
  // Populate the database so txn updates are overwrites.
  for (std::uint32_t off = 0; off < p.db_pages; off += blk::kMaxMergedBlocks) {
    const std::uint32_t n =
        std::min<std::uint32_t>(blk::kMaxMergedBlocks, p.db_pages - off);
    api::must(co_await db.pwrite(off, n));
    api::must(co_await db.fsync());
  }
  api::File journal = api::must(co_await vfs.open(
      p.mode == SqliteParams::Mode::kWal ? "app.db-wal" : "app.db-journal",
      {.create = true, .extent_blocks = 2048}));
  api::must(co_await journal.pwrite(0, 1));
  api::must(co_await journal.fsync());

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = sim.now();
  std::uint32_t cursor = 1;
  for (std::uint64_t i = 0; i < p.transactions; ++i) {
    if (p.mode == SqliteParams::Mode::kPersist)
      co_await persist_txn(p, db, journal, rng, cursor);
    else
      co_await wal_txn(p, journal, cursor);
    ++out.tx_done;
  }
  out.elapsed = sim.now() - t0;
  if (out.elapsed > 0)
    out.tx_per_sec =
        static_cast<double>(out.tx_done) / sim::to_seconds(out.elapsed);
}

}  // namespace

SqliteResult run_sqlite(core::Stack& stack, const SqliteParams& params,
                        sim::Rng rng) {
  SqliteResult result;
  stack.start();
  api::Vfs vfs(stack);
  // iolint: detached-owner(run() below blocks until the workload drains;
  // vfs and result outlive the run in this scope)
  stack.sim().spawn("sqlite",
                    workload_body(stack, vfs, params, std::move(rng), result));
  stack.sim().run();
  return result;
}

}  // namespace bio::wl
