// SQLite transaction model (§5, Fig 14).
//
// PERSIST journal mode, one INSERT transaction:
//   1. append undo-log records to the rollback journal   -> sync  (order)
//   2. update the journal header                          -> sync  (order)
//   3. write the updated B-tree pages into the database   -> sync  (order)
//   4. finalize (commit) the journal header               -> sync  (durable)
// The paper replaces the three ordering syncs with fdatabarrier() and, in
// the full-relaxation configuration, the durability sync too. WAL mode
// appends frames to the write-ahead log and syncs once per commit.
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct SqliteParams {
  enum class Mode : std::uint8_t { kPersist, kWal };
  Mode mode = Mode::kPersist;
  std::uint64_t transactions = 1000;
  /// B-tree pages updated per insert.
  std::uint32_t db_pages_per_tx = 2;
  /// Undo-log pages per insert (PERSIST) / frames (WAL).
  std::uint32_t journal_pages_per_tx = 2;
  /// Database size (pages); updates are random overwrites within it.
  std::uint32_t db_pages = 4096;
};

struct SqliteResult {
  double tx_per_sec = 0.0;
  std::uint64_t tx_done = 0;
  sim::SimTime elapsed = 0;
};

SqliteResult run_sqlite(core::Stack& stack, const SqliteParams& params,
                        sim::Rng rng);

}  // namespace bio::wl
