#include "wl/ring_workload.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/ring.h"
#include "fs/page_cache.h"
#include "sim/rng.h"

namespace bio::wl {
namespace {

using namespace bio::sim::literals;

/// The stack's order-point syscall as a ring op (the substitution-table row
/// restricted to what a ring sqe can express).
api::RingOp order_op(core::StackKind kind) {
  switch (kind) {
    case core::StackKind::kBfsDR:
    case core::StackKind::kBfsOD:
      return api::RingOp::kFdatabarrier;
    case core::StackKind::kOptFs:
      return api::RingOp::kFbarrier;  // Vfs maps it onto osync
    default:
      return api::RingOp::kFdatasync;
  }
}

api::Syscall syscall_of(api::RingOp op) {
  switch (op) {
    case api::RingOp::kFsync: return api::Syscall::kFsync;
    case api::RingOp::kFdatasync: return api::Syscall::kFdatasync;
    case api::RingOp::kFbarrier: return api::Syscall::kFbarrier;
    case api::RingOp::kFdatabarrier: return api::Syscall::kFdatabarrier;
    default: return api::Syscall::kNone;
  }
}

struct Ctx {
  core::Volume& vol;
  api::Vfs& vfs;
  std::string prefix;
  RingWorkloadParams p;
  ConcurrentTrace& trace;
};

/// Chain bookkeeping: the submission-structure claims of one linked chain,
/// accumulated as its members complete (in whatever order a buggy ring
/// runs them — that is the point; see TraceSync::chain_covered).
struct ChainRec {
  FileTrace* f = nullptr;
  std::vector<std::size_t> covered;
  std::vector<std::size_t> successors;
  /// Index into f->syncs once the chain's sync completed; later-completing
  /// members then append straight to the recorded sync's claim vectors.
  std::ptrdiff_t sidx = -1;
};

/// One submitted sqe awaiting completion, keyed by user_data.
struct Pending {
  enum Kind : std::uint8_t { kWrite, kRead, kSync } kind = kWrite;
  FileTrace* f = nullptr;
  std::uint32_t writer = 0;
  std::uint32_t page = 0;
  std::uint64_t start_tick = 0;
  api::Syscall call = api::Syscall::kNone;
  // Sync snapshot, stamped by the start hook (synchronous in the driver).
  std::uint32_t settled_at_start = 0;
  std::size_t name_idx_at_start = 0;
  bool unlinked_at_start = false;
  ChainRec* rec = nullptr;
  /// Write linked *after* the chain's sync (vs covered by it).
  bool is_successor = false;
  /// Dispatch resolved the sqe's fd *number* to a different inode than the
  /// one the sqe was built for: fd churn closed it and a concurrent
  /// reopen recycled the slot (the classic io_uring stale-fd hazard). The
  /// op is real IO but promises nothing about the intended file, so its
  /// trace claims are dropped.
  bool aliased = false;
};

struct WriterState {
  std::unordered_map<std::uint64_t, Pending> pending;
  /// deque: stable ChainRec addresses across push_back within a batch.
  std::deque<ChainRec> chains;
  std::uint64_t next_ud = 1;
};

sim::Task ring_writer(Ctx* ctxp, std::uint32_t w, sim::Rng rng) {
  Ctx& ctx = *ctxp;
  ConcurrentTrace& trace = ctx.trace;

  // Each writer opens its OWN descriptor per file over the shared inodes.
  std::vector<api::File> fds(trace.files.size());
  for (std::size_t i = 0; i < trace.files.size(); ++i) {
    FileTrace& f = trace.files[i];
    if (f.unlinked) continue;
    api::Result<api::File> r =
        co_await ctx.vfs.open(ctx.prefix + f.rel_name(), {});
    if (r.ok()) fds[i] = r.value();
  }

  WriterState st;
  api::Ring ring(ctx.vfs);
  if (ctx.p.ignore_links) ring.set_ignore_links_for_test(true);
  api::must(ring.register_buffers({4, 4, 4, 4}));

  ring.set_on_op_start([&st, &trace, &ctx](const api::Sqe& sqe) {
    auto it = st.pending.find(sqe.user_data);
    if (it == st.pending.end()) return;
    Pending& p = it->second;
    p.start_tick = trace.next_tick();
    // The start hook runs synchronously in the chain driver, immediately
    // before the Vfs call resolves the fd — this is exactly the binding
    // the op will act on.
    const api::Result<std::uint32_t> ino = ctx.vfs.ino_of(sqe.fd);
    p.aliased = !ino.ok() || ino.value() != p.f->inode->ino;
    if (p.kind == Pending::kSync) {
      p.settled_at_start = p.f->settled_size;
      p.name_idx_at_start = p.f->rel_names.size() - 1;
      p.unlinked_at_start = p.f->unlinked;
    }
  });
  ring.set_on_op_complete([&st, &ctx](const api::Sqe& sqe, std::int32_t res) {
    auto it = st.pending.find(sqe.user_data);
    if (it == st.pending.end()) return;
    const Pending p = it->second;
    st.pending.erase(it);
    if (res < 0) return;    // failed/cancelled sqes promise nothing
    if (p.aliased) return;  // hit a recycled fd: wrong file, no claims
    ConcurrentTrace& trace = ctx.trace;
    FileTrace& f = *p.f;
    if (p.kind == Pending::kWrite) {
      const std::uint64_t done = trace.next_tick();
      const auto n = static_cast<std::uint32_t>(res);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t pg = p.page + i;
        const fs::PageCache::PageState* pst =
            ctx.vol.fs().page_cache().find(f.inode->ino, pg);
        BIO_CHECK_MSG(pst != nullptr, "ring writer lost its page");
        f.writes.push_back(TraceWrite{f.inode->lba_of_page(pg), pst->version,
                                      pg, p.start_tick, done, p.writer});
        if (p.rec != nullptr) {
          const std::size_t idx = f.writes.size() - 1;
          (p.is_successor ? p.rec->successors : p.rec->covered)
              .push_back(idx);
          if (p.rec->sidx >= 0) {
            // The chain's sync already completed (only possible when links
            // are being ignored): keep its recorded claims complete.
            TraceSync& s = f.syncs[static_cast<std::size_t>(p.rec->sidx)];
            (p.is_successor ? s.chain_successors : s.chain_covered)
                .push_back(idx);
          }
        }
      }
      f.settled_size = std::max(f.settled_size, p.page + n);
      ++trace.ops_done;
    } else if (p.kind == Pending::kSync) {
      TraceSync s;
      s.call = p.call;
      s.writer = p.writer;
      s.start_tick = p.start_tick;
      s.done_tick = trace.next_tick();
      s.settled_size_at_start = p.settled_at_start;
      s.name_idx_at_start = p.name_idx_at_start;
      s.unlinked_at_start = p.unlinked_at_start;
      if (p.rec != nullptr) {
        s.chain_covered = p.rec->covered;
        s.chain_successors = p.rec->successors;
      }
      f.syncs.push_back(std::move(s));
      if (p.rec != nullptr)
        p.rec->sidx = static_cast<std::ptrdiff_t>(f.syncs.size() - 1);
      ++trace.syncs_done;
    }
    // reads: exercised for concurrency, nothing to claim
  });

  const api::RingOp osync_op = order_op(ctx.vol.kind());

  auto push_write = [&](std::size_t li, ChainRec* rec, bool successor,
                        bool link) {
    FileTrace& f = trace.files[li];
    const auto n = static_cast<std::uint32_t>(rng.uniform(1, 3));
    const auto page = static_cast<std::uint32_t>(
        rng.uniform(0, ctx.p.extent_blocks - n));
    api::Sqe sqe;
    sqe.op = api::RingOp::kWrite;
    sqe.fd = fds[li].valid() ? fds[li].fd() : f.anchor.fd();
    sqe.page = page;
    sqe.npages = n;
    sqe.buf_index = static_cast<std::int32_t>(rng.uniform(0, 3));
    sqe.flags = link ? api::kSqeLink : std::uint8_t{0};
    sqe.user_data = st.next_ud++;
    st.pending[sqe.user_data] =
        Pending{Pending::kWrite, &f, w, page, 0, api::Syscall::kNone,
                0, 0, false, rec, successor};
    BIO_CHECK(ring.push(sqe));
  };
  auto push_sync = [&](std::size_t li, api::RingOp op, ChainRec* rec,
                       bool link) {
    FileTrace& f = trace.files[li];
    api::Sqe sqe;
    sqe.op = op;
    sqe.fd = fds[li].valid() ? fds[li].fd() : f.anchor.fd();
    sqe.flags = link ? api::kSqeLink : std::uint8_t{0};
    sqe.user_data = st.next_ud++;
    st.pending[sqe.user_data] =
        Pending{Pending::kSync, &f, w, 0, 0, syscall_of(op),
                0, 0, false, rec, false};
    BIO_CHECK(ring.push(sqe));
  };

  for (std::uint32_t batch = 0; batch < ctx.p.batches_per_writer; ++batch) {
    // Linked chains: 1-2 covered writes, an order/durability sync, and
    // sometimes a successor write gated behind the sync.
    for (std::uint32_t c = 0; c < ctx.p.chains_per_batch; ++c) {
      const auto li = static_cast<std::size_t>(
          rng.uniform(0, trace.files.size() - 1));
      st.chains.push_back(ChainRec{&trace.files[li], {}, {}, -1});
      ChainRec* rec = &st.chains.back();
      const std::uint32_t covered = rng.chance(0.4) ? 2 : 1;
      for (std::uint32_t i = 0; i < covered; ++i)
        push_write(li, rec, /*successor=*/false, /*link=*/true);
      const api::RingOp call =
          rng.chance(0.6) ? osync_op : api::RingOp::kFsync;
      const bool tail = rng.chance(0.6);
      push_sync(li, call, rec, /*link=*/tail);
      if (tail) push_write(li, rec, /*successor=*/true, /*link=*/false);
    }
    // Unlinked sqes: free-running writes, reads and syncs.
    for (std::uint32_t u = 0; u < ctx.p.unlinked_per_batch; ++u) {
      const auto li = static_cast<std::size_t>(
          rng.uniform(0, trace.files.size() - 1));
      const int dice = static_cast<int>(rng.uniform(0, 99));
      if (dice < 55) {
        push_write(li, nullptr, false, false);
      } else if (dice < 80) {
        FileTrace& f = trace.files[li];
        api::Sqe sqe;
        sqe.op = api::RingOp::kRead;
        sqe.fd = fds[li].valid() ? fds[li].fd() : f.anchor.fd();
        sqe.page = 0;
        sqe.npages = static_cast<std::uint32_t>(rng.uniform(1, 4));
        sqe.user_data = st.next_ud++;
        st.pending[sqe.user_data] =
            Pending{Pending::kRead, &f, w, 0, 0, api::Syscall::kNone,
                    0, 0, false, nullptr, false};
        BIO_CHECK(ring.push(sqe));
      } else {
        push_sync(li, rng.chance(0.5) ? osync_op : api::RingOp::kFsync,
                  nullptr, false);
      }
    }

    const std::uint32_t submitted = ring.submit();

    // fd churn: occasionally close one of this writer's descriptors while
    // its sqes are still in flight — undispatched chain members then
    // surface as -EBADF cqes and cancel their chain tails.
    if (ctx.p.fd_churn && rng.chance(0.15)) {
      const auto li = static_cast<std::size_t>(
          rng.uniform(0, trace.files.size() - 1));
      if (fds[li].valid()) {
        api::must(fds[li].close());
        ++trace.fd_cycles;
      }
    }

    for (std::uint32_t i = 0; i < submitted; ++i)
      (void)co_await ring.wait_cqe();
    st.chains.clear();  // fully reaped: no completion references them now

    // Reopen anything fd churn closed (by the file's current name).
    for (std::size_t li = 0; li < trace.files.size(); ++li) {
      FileTrace& f = trace.files[li];
      if (fds[li].valid() || f.unlinked) continue;
      api::Result<api::File> r =
          co_await ctx.vfs.open(ctx.prefix + f.rel_name(), {});
      if (r.ok()) fds[li] = r.value();
    }

    // Namespace churn between batches (direct Vfs calls; the ring carries
    // data and sync ops only, as io_uring did before unlinkat support).
    if (ctx.p.namespace_churn && rng.chance(0.3)) {
      FileTrace& f = trace.files[static_cast<std::size_t>(
          rng.uniform(0, trace.files.size() - 1))];
      if (!f.unlinked && !f.ns_busy) {
        f.ns_busy = true;
        if (rng.chance(0.7)) {
          const std::string next = f.rel_names.front() + ".r" +
                                   std::to_string(f.rel_names.size());
          api::must(co_await ctx.vfs.rename(ctx.prefix + f.rel_name(),
                                            ctx.prefix + next));
          f.rel_names.push_back(next);
          ++trace.renames;
        } else if (trace.unlinks <
                   static_cast<std::uint32_t>(trace.files.size()) / 2) {
          api::must(co_await ctx.vfs.unlink(ctx.prefix + f.rel_name()));
          f.unlinked = true;
          ++trace.unlinks;
        }
        f.ns_busy = false;
      }
    }

    if (rng.chance(0.5))
      co_await ctx.vol.sim().delay(rng.uniform(1, 600) * 1_us);
    if (rng.chance(0.08))
      co_await ctx.vol.sim().delay(rng.uniform(2'000, 8'000) * 1_us);
  }

  for (api::File& fd : fds)
    if (fd.valid()) api::must(fd.close());
  ++trace.writers_finished;
}

sim::Task setup_and_run(std::unique_ptr<Ctx> ctx) {
  ConcurrentTrace& trace = ctx->trace;
  const RingWorkloadParams& p = ctx->p;
  trace.files.resize(p.files);  // never resized again: FileTrace& stable
  trace.writers_total = p.writers;

  for (std::uint32_t i = 0; i < p.files; ++i) {
    FileTrace& f = trace.files[i];
    f.rel_names.push_back("r" + std::to_string(i));
    f.shared = true;
    api::OpenOptions oo;
    oo.create = true;
    oo.extent_blocks = p.extent_blocks;
    f.anchor =
        api::must(co_await ctx->vfs.open(ctx->prefix + f.rel_name(), oo));
    f.inode = ctx->vol.fs().lookup(f.rel_name());
    BIO_CHECK(f.inode != nullptr);
  }
  // Settle the creates (transactions retire in commit order, so syncing
  // the newest covers them all) and record the settle as a sync fact on
  // every file — same discipline as the direct concurrent workload.
  if (p.files > 0) {
    const std::uint64_t s0 = trace.next_tick();
    api::must(co_await ctx->vfs.fsync(trace.files.back().anchor.fd()));
    const std::uint64_t s1 = trace.next_tick();
    for (FileTrace& f : trace.files) {
      f.syncs.push_back(TraceSync{api::Syscall::kFsync, s0, s1,
                                  /*writer=*/~std::uint32_t{0},
                                  /*settled_size_at_start=*/0,
                                  /*name_idx_at_start=*/0,
                                  /*unlinked_at_start=*/false,
                                  /*chain_covered=*/{},
                                  /*chain_successors=*/{}});
      ++trace.syncs_done;
    }
  }

  sim::Rng base(ctx->p.seed * 0x9e3779b97f4a7c15ULL + 5);
  std::vector<sim::ThreadCtx*> threads;
  for (std::uint32_t w = 0; w < p.writers; ++w)
    // iolint: detached-owner(the join loop below waits every writer; the
    // Ctx unique_ptr outlives them in this frame)
    threads.push_back(&ctx->vol.sim().spawn(
        "ring:w" + std::to_string(w),
        ring_writer(ctx.get(), w, base.fork())));
  for (sim::ThreadCtx* t : threads) co_await ctx->vol.sim().join(*t);
}

}  // namespace

void spawn_ring_writers(core::Volume& vol, api::Vfs& vfs, std::string prefix,
                        const RingWorkloadParams& params,
                        ConcurrentTrace& trace) {
  auto ctx =
      std::make_unique<Ctx>(Ctx{vol, vfs, std::move(prefix), params, trace});
  vol.sim().spawn("ring:setup", setup_and_run(std::move(ctx)));
}

RingWorkloadResult run_ring_writers(core::Stack& stack,
                                    const RingWorkloadParams& params) {
  stack.start();
  api::Vfs vfs(stack);
  core::Volume& vol = stack.volume(0);
  const std::string prefix =
      vol.name().empty() ? std::string() : "/" + vol.name() + "/";
  ConcurrentTrace trace;
  const sim::SimTime t0 = stack.sim().now();
  spawn_ring_writers(vol, vfs, prefix, params, trace);
  stack.sim().run();

  RingWorkloadResult r;
  r.ops_done = trace.ops_done;
  r.syncs_done = trace.syncs_done;
  r.elapsed = stack.sim().now() - t0;
  if (r.elapsed > 0)
    r.ops_per_sec = static_cast<double>(r.ops_done + r.syncs_done) /
                    sim::to_seconds(r.elapsed);
  return r;
}

}  // namespace bio::wl
