// filebench varmail model (§6.5, Fig 15): a mail-server file set churned by
// N threads. Per iteration each thread performs the classic varmail flow:
//   delete a mail file | create + append + sync | append to existing + sync
//   | read a mail file
// The sync after each append is the fsync-heavy traffic the paper measures;
// order/durability substitution follows the stack kind.
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct VarmailParams {
  std::uint32_t threads = 16;
  std::uint32_t files = 400;
  /// Mail size in 4 KiB pages (filebench default 16 KiB).
  std::uint32_t file_pages = 4;
  /// Iterations of the 4-op flow per thread.
  std::uint32_t iterations = 60;
  /// 0 = direct syscalls (the classic serialized flow). >0 = each thread
  /// drives data and sync traffic through an api::Ring — create/append
  /// become linked write->sync chains, reads unlinked sqes — keeping up to
  /// ring_qd chains in flight so independent mails overlap. Namespace ops
  /// (open/create/unlink) stay direct; rings carry fd-based ops only.
  std::uint32_t ring_qd = 0;
};

struct VarmailResult {
  double ops_per_sec = 0.0;  // filebench-style flowops per second
  std::uint64_t ops_done = 0;
  sim::SimTime elapsed = 0;
};

VarmailResult run_varmail(core::Stack& stack, const VarmailParams& params,
                          sim::Rng rng);

}  // namespace bio::wl
