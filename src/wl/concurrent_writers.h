// Concurrent multi-writer workload over shared inodes (the missing half of
// the crash sweep's coverage: fxmark DWSL, varmail and OLTP are concurrent,
// but every contract the checker verified before PR 5 was exercised by one
// writer at a time).
//
// N writer coroutines share one volume through *independent* file
// descriptors: each writer opens its own fd for every file it touches, a
// subset of the files is shared by all writers, and the ops interleave
// pwrite/append with the full sync-syscall matrix the stack supports
// (fsync/fdatasync everywhere, fbarrier/fdatabarrier on BarrierFS,
// osync/dsync on OptFS via policy rows) plus rename/unlink namespace churn
// and fd churn (close/reopen, and close() racing an in-flight sync).
//
// The workload records a ConcurrentTrace: every completed write and sync
// carries logical ticks from one per-run monotone counter, so a checker can
// reconstruct the cross-writer happens-before order (which writes completed
// before which sync started, which started only after it returned) without
// assuming anything about operations that raced each other. That trace is
// the input to chk::run_concurrent_crash_check's merged cross-writer oracle;
// the bench driver (run_concurrent_writers) runs the same workload for
// wall-clock cost and ignores the trace content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/vfs.h"
#include "core/stack.h"
#include "sim/time.h"

namespace bio::wl {

struct ConcurrentWritersParams {
  /// Writer coroutines sharing the volume.
  std::uint32_t writers = 4;
  std::uint32_t ops_per_writer = 40;
  /// Files every writer writes through its own descriptor.
  std::uint32_t shared_files = 2;
  /// Additional private files per writer.
  std::uint32_t private_files = 1;
  /// Extent reserved per file (4 KiB pages).
  std::uint32_t extent_blocks = 48;
  std::uint64_t seed = 1;
  /// rename/unlink churn on shared and private names.
  bool namespace_churn = true;
  /// close/reopen descriptors mid-run, including close() while that fd's
  /// sync is still suspended (the fd-lifecycle edge).
  bool fd_churn = true;
};

/// One completed buffered write as the trace remembers it. `version` is the
/// page-cache version observed when the write returned — under concurrent
/// same-page writers that may be a later writer's version, which is sound:
/// the trace claim is "at done_tick this page held at least `version`".
struct TraceWrite {
  flash::Lba lba = 0;
  flash::Version version = 0;
  std::uint32_t page = 0;
  std::uint64_t start_tick = 0;
  std::uint64_t done_tick = 0;
  std::uint32_t writer = 0;
};

/// One *returned* sync syscall (syncs cut short by the power cut are never
/// recorded — they promised nothing).
struct TraceSync {
  /// The concrete syscall that ran (intents pre-resolved through the file's
  /// policy row, so the checker can classify semantics per stack kind).
  api::Syscall call = api::Syscall::kFsync;
  std::uint64_t start_tick = 0;
  std::uint64_t done_tick = 0;
  std::uint32_t writer = 0;
  /// Completed-write high-water of the file size when the sync started:
  /// what the sync is entitled to promise about i_size.
  std::uint32_t settled_size_at_start = 0;
  /// rel_names index current when the sync started (rename durability).
  std::size_t name_idx_at_start = 0;
  /// The unlink had fully completed before the sync started.
  bool unlinked_at_start = false;

  // ---- linked-chain contract (api::Ring workloads) ------------------------
  //
  // Indices into FileTrace::writes derived from the SUBMISSION structure of
  // a ring chain, not from observed timing: `chain_covered` names writes
  // linked *before* this sync in its chain (the chain contract says they
  // complete before the sync starts), `chain_successors` writes linked
  // *after* it (they must not reach media unless the sync's promise held).
  // Deliberately contract-derived so a link-ignoring ring produces real
  // trace claims the oracle can falsify — exact-tick bookkeeping would
  // adapt to the buggy order and hide it. Empty for direct-Vfs workloads.
  std::vector<std::size_t> chain_covered;
  std::vector<std::size_t> chain_successors;
};

/// Per-file trace + live bookkeeping shared by every writer touching it.
struct FileTrace {
  /// Volume-relative name history: [0] create name, back() current name.
  std::vector<std::string> rel_names;
  fs::Inode* inode = nullptr;
  bool shared = false;
  /// Descriptor opened at setup and never closed: keeps the file (and its
  /// extent) alive across unlink/fd churn, so extents never recycle and
  /// stay a stable file identity for the checker.
  api::File anchor;
  std::vector<TraceWrite> writes;
  std::vector<TraceSync> syncs;

  // ---- live bookkeeping (workload side) -----------------------------------
  /// max(page + npages) over *completed* writes.
  std::uint32_t settled_size = 0;
  bool unlinked = false;
  /// A namespace op (rename/unlink) is in flight; writers serialize their
  /// own namespace ops per file (racing renames of one name is UB the
  /// kernel prevents with locks this model does not have).
  bool ns_busy = false;

  const std::string& rel_name() const { return rel_names.back(); }
};

struct ConcurrentTrace {
  std::vector<FileTrace> files;
  std::uint32_t writers_total = 0;
  std::uint32_t writers_finished = 0;
  std::uint32_t ops_done = 0;
  std::uint32_t syncs_done = 0;
  std::uint32_t renames = 0;
  std::uint32_t unlinks = 0;
  /// close/reopen cycles completed (fd churn coverage signal).
  std::uint32_t fd_cycles = 0;
  /// close() calls issued while that fd's sync was still suspended.
  std::uint32_t closes_during_sync = 0;

  bool finished() const noexcept {
    return writers_total > 0 && writers_finished == writers_total;
  }

  std::uint64_t next_tick() noexcept { return ++tick_; }

 private:
  std::uint64_t tick_ = 0;
};

/// Spawns the setup task (creates + settles the namespace) which then
/// spawns the writer threads, all onto `vol`'s simulator. `trace` must
/// outlive the simulation run; `prefix` is the mount prefix ("" for a
/// root-mounted volume, "/v0/" on a named mount).
void spawn_concurrent_writers(core::Volume& vol, api::Vfs& vfs,
                              std::string prefix,
                              const ConcurrentWritersParams& params,
                              ConcurrentTrace& trace);

struct ConcurrentWritersResult {
  std::uint64_t ops_done = 0;
  std::uint64_t syncs_done = 0;
  double ops_per_sec = 0.0;
  sim::SimTime elapsed = 0;
};

/// Bench driver: runs the workload to completion on `stack`'s volume 0
/// (stack must not have been started yet) and reports simulated throughput.
ConcurrentWritersResult run_concurrent_writers(
    core::Stack& stack, const ConcurrentWritersParams& params);

}  // namespace bio::wl
