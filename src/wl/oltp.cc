#include "wl/oltp.h"

#include <string>

namespace bio::wl {

namespace {

struct Shared {
  fs::Inode* table = nullptr;
  fs::Inode* redo = nullptr;
  fs::Inode* binlog = nullptr;
  std::uint32_t redo_cursor = 0;
  std::uint32_t binlog_cursor = 0;
  std::uint64_t tx_done = 0;
  std::uint64_t tx_since_checkpoint = 0;
};

sim::Task oltp_thread(core::Stack& stack, const OltpParams& p, Shared& s,
                      sim::Rng rng) {
  fs::Filesystem& filesystem = stack.fs();
  for (std::uint64_t i = 0; i < p.transactions_per_thread; ++i) {
    // 1. redo log (group-commit style: append + durable sync).
    if (s.redo_cursor + p.redo_pages_per_tx >= s.redo->extent_blocks)
      s.redo_cursor = 0;
    co_await filesystem.write(*s.redo, s.redo_cursor, p.redo_pages_per_tx);
    s.redo_cursor += p.redo_pages_per_tx;
    co_await stack.durability_point(*s.redo);

    // 2. binlog.
    if (s.binlog_cursor + 1 >= s.binlog->extent_blocks) s.binlog_cursor = 0;
    co_await filesystem.write(*s.binlog, s.binlog_cursor, 1);
    s.binlog_cursor += 1;
    co_await stack.durability_point(*s.binlog);

    // 3. dirty table pages (buffer pool, written back at checkpoints).
    for (std::uint32_t r = 0; r < p.rows_pages_per_tx; ++r) {
      const std::uint32_t page =
          static_cast<std::uint32_t>(rng.uniform(0, p.table_pages - 1));
      co_await filesystem.write(*s.table, page, 1);
    }
    ++s.tx_done;
    if (++s.tx_since_checkpoint >= p.checkpoint_every) {
      s.tx_since_checkpoint = 0;
      co_await stack.durability_point(*s.table);  // fuzzy checkpoint
    }
  }
}

}  // namespace

OltpResult run_oltp_insert(core::Stack& stack, const OltpParams& params,
                           sim::Rng rng) {
  OltpResult result;
  stack.start();
  auto shared = std::make_unique<Shared>();

  auto setup = [&stack, &params, s = shared.get()]() -> sim::Task {
    co_await stack.fs().create("ibdata", s->table, params.table_pages);
    for (std::uint32_t off = 0; off < params.table_pages;
         off += blk::kMaxMergedBlocks) {
      const std::uint32_t n = std::min<std::uint32_t>(
          blk::kMaxMergedBlocks, params.table_pages - off);
      co_await stack.fs().write(*s->table, off, n);
      co_await stack.fs().fsync(*s->table);
    }
    co_await stack.fs().create("ib_logfile0", s->redo, 4096);
    co_await stack.fs().create("binlog.000001", s->binlog, 4096);
    co_await stack.fs().write(*s->redo, 0, 1);
    co_await stack.fs().write(*s->binlog, 0, 1);
    co_await stack.fs().fsync(*s->redo);
    co_await stack.fs().fsync(*s->binlog);
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  for (std::uint32_t t = 0; t < params.threads; ++t)
    stack.sim().spawn("oltp:" + std::to_string(t),
                      oltp_thread(stack, params, *shared, rng.fork()));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.tx_done = shared->tx_done;
  if (result.elapsed > 0)
    result.tx_per_sec =
        static_cast<double>(result.tx_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
