#include "wl/oltp.h"

#include <cstddef>
#include <string>
#include <vector>

#include "api/ring.h"
#include "api/vfs.h"
#include "sim/check.h"

namespace bio::wl {

namespace {

struct Shared {
  api::File table;
  api::File redo;
  api::File binlog;
  std::uint32_t redo_cursor = 0;
  std::uint32_t binlog_cursor = 0;
  std::uint64_t tx_done = 0;
  std::uint64_t tx_since_checkpoint = 0;
};

sim::Task oltp_thread(const OltpParams& p, Shared& s, sim::Rng rng) {
  for (std::uint64_t i = 0; i < p.transactions_per_thread; ++i) {
    // 1. redo log (group-commit style: append + durable sync).
    if (s.redo_cursor + p.redo_pages_per_tx >= api::must(s.redo.extent_blocks()))
      s.redo_cursor = 0;
    api::must(co_await s.redo.pwrite(s.redo_cursor, p.redo_pages_per_tx));
    s.redo_cursor += p.redo_pages_per_tx;
    api::must(co_await s.redo.durability_point());

    // 2. binlog.
    if (s.binlog_cursor + 1 >= api::must(s.binlog.extent_blocks()))
      s.binlog_cursor = 0;
    api::must(co_await s.binlog.pwrite(s.binlog_cursor, 1));
    s.binlog_cursor += 1;
    api::must(co_await s.binlog.durability_point());

    // 3. dirty table pages (buffer pool, written back at checkpoints).
    for (std::uint32_t r = 0; r < p.rows_pages_per_tx; ++r) {
      const std::uint32_t page =
          static_cast<std::uint32_t>(rng.uniform(0, p.table_pages - 1));
      api::must(co_await s.table.pwrite(page, 1));
    }
    ++s.tx_done;
    if (++s.tx_since_checkpoint >= p.checkpoint_every) {
      s.tx_since_checkpoint = 0;
      api::must(co_await s.table.durability_point());  // fuzzy checkpoint
    }
  }
}

// Ring-mode flavour. A transaction's redo round and binlog round become two
// independent linked chains (append -> durability sync); its dirty table
// pages ride as unlinked sqes; a fuzzy checkpoint, when due, is one more
// unlinked durability sqe on the table. Every sqe is stamped with the
// transaction's slot and the transaction counts as done when its last cqe
// arrives. Up to `ring_qd` transactions stay in flight per thread — the
// group-commit batching the strictly serialized direct flavour cannot
// express (redo syncs from neighbouring transactions coalesce into one
// journal commit). Cursor arithmetic stays at push time, preserving the
// direct flavour's program order over the log layouts.
struct TxSlot {
  std::uint32_t remaining = 0;  // cqes this transaction still owes
};

sim::Task oltp_thread_ring(api::Vfs& vfs, const OltpParams& p, Shared& s,
                           sim::Rng rng) {
  api::Ring ring(vfs);
  std::vector<TxSlot> slots(p.ring_qd + 1);
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) free_slots.push_back(i);
  std::uint32_t tx_in_flight = 0;

  auto durability_op = [&vfs](const api::File& f) {
    return api::ring_op_for(api::must(vfs.policy_of(f.fd()))
                                .resolve(api::SyncIntent::kDurability));
  };
  auto reap_one = [&](const api::Cqe& cqe) {
    // The direct flavour must()s every op; any failure here is a bug.
    BIO_CHECK_MSG(cqe.res >= 0, "oltp ring op failed");
    TxSlot& t = slots[static_cast<std::size_t>(cqe.user_data)];
    if (--t.remaining > 0) return;
    ++s.tx_done;
    free_slots.push_back(static_cast<std::size_t>(cqe.user_data));
    --tx_in_flight;
  };

  for (std::uint64_t i = 0; i < p.transactions_per_thread; ++i) {
    while (tx_in_flight >= p.ring_qd) reap_one(co_await ring.wait_cqe());
    const std::size_t slot = free_slots.back();
    free_slots.pop_back();
    TxSlot& t = slots[slot];
    t.remaining = 0;
    ++tx_in_flight;
    auto push = [&](api::Sqe sqe) {
      sqe.user_data = slot;
      BIO_CHECK(ring.push(sqe));
      ++t.remaining;
    };
    // 1. redo log chain: append -> durability sync.
    if (s.redo_cursor + p.redo_pages_per_tx >=
        api::must(s.redo.extent_blocks()))
      s.redo_cursor = 0;
    push({.op = api::RingOp::kWrite,
          .fd = s.redo.fd(),
          .page = s.redo_cursor,
          .npages = p.redo_pages_per_tx,
          .flags = api::kSqeLink});
    s.redo_cursor += p.redo_pages_per_tx;
    push({.op = durability_op(s.redo), .fd = s.redo.fd()});
    // 2. binlog chain.
    if (s.binlog_cursor + 1 >= api::must(s.binlog.extent_blocks()))
      s.binlog_cursor = 0;
    push({.op = api::RingOp::kWrite,
          .fd = s.binlog.fd(),
          .page = s.binlog_cursor,
          .npages = 1,
          .flags = api::kSqeLink});
    s.binlog_cursor += 1;
    push({.op = durability_op(s.binlog), .fd = s.binlog.fd()});
    // 3. dirty table pages, unlinked.
    for (std::uint32_t r = 0; r < p.rows_pages_per_tx; ++r) {
      const std::uint32_t page =
          static_cast<std::uint32_t>(rng.uniform(0, p.table_pages - 1));
      push({.op = api::RingOp::kWrite,
            .fd = s.table.fd(),
            .page = page,
            .npages = 1});
    }
    // 4. fuzzy checkpoint rides the ring too.
    if (++s.tx_since_checkpoint >= p.checkpoint_every) {
      s.tx_since_checkpoint = 0;
      push({.op = durability_op(s.table), .fd = s.table.fd()});
    }
    ring.submit();
  }
  while (tx_in_flight > 0) reap_one(co_await ring.wait_cqe());
}

}  // namespace

OltpResult run_oltp_insert(core::Stack& stack, const OltpParams& params,
                           sim::Rng rng) {
  OltpResult result;
  stack.start();
  api::Vfs vfs(stack);
  auto shared = std::make_unique<Shared>();

  auto setup = [&vfs, &params, s = shared.get()]() -> sim::Task {
    s->table = api::must(co_await vfs.open(
        "ibdata", {.create = true, .extent_blocks = params.table_pages}));
    for (std::uint32_t off = 0; off < params.table_pages;
         off += blk::kMaxMergedBlocks) {
      const std::uint32_t n = std::min<std::uint32_t>(
          blk::kMaxMergedBlocks, params.table_pages - off);
      api::must(co_await s->table.pwrite(off, n));
      api::must(co_await s->table.fsync());
    }
    s->redo = api::must(co_await vfs.open(
        "ib_logfile0", {.create = true, .extent_blocks = 4096}));
    s->binlog = api::must(co_await vfs.open(
        "binlog.000001", {.create = true, .extent_blocks = 4096}));
    api::must(co_await s->redo.pwrite(0, 1));
    api::must(co_await s->binlog.pwrite(0, 1));
    api::must(co_await s->redo.fsync());
    api::must(co_await s->binlog.fsync());
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  for (std::uint32_t t = 0; t < params.threads; ++t)
    // iolint: detached-owner(run() below blocks until every thread is
    // done; vfs and the Shared state outlive the run in this scope)
    stack.sim().spawn(
        "oltp:" + std::to_string(t),
        params.ring_qd > 0
            ? oltp_thread_ring(vfs, params, *shared, rng.fork())
            : oltp_thread(params, *shared, rng.fork()));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.tx_done = shared->tx_done;
  if (result.elapsed > 0)
    result.tx_per_sec =
        static_cast<double>(result.tx_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
