#include "wl/oltp.h"

#include <string>

#include "api/vfs.h"

namespace bio::wl {

namespace {

struct Shared {
  api::File table;
  api::File redo;
  api::File binlog;
  std::uint32_t redo_cursor = 0;
  std::uint32_t binlog_cursor = 0;
  std::uint64_t tx_done = 0;
  std::uint64_t tx_since_checkpoint = 0;
};

sim::Task oltp_thread(const OltpParams& p, Shared& s, sim::Rng rng) {
  for (std::uint64_t i = 0; i < p.transactions_per_thread; ++i) {
    // 1. redo log (group-commit style: append + durable sync).
    if (s.redo_cursor + p.redo_pages_per_tx >= api::must(s.redo.extent_blocks()))
      s.redo_cursor = 0;
    api::must(co_await s.redo.pwrite(s.redo_cursor, p.redo_pages_per_tx));
    s.redo_cursor += p.redo_pages_per_tx;
    api::must(co_await s.redo.durability_point());

    // 2. binlog.
    if (s.binlog_cursor + 1 >= api::must(s.binlog.extent_blocks()))
      s.binlog_cursor = 0;
    api::must(co_await s.binlog.pwrite(s.binlog_cursor, 1));
    s.binlog_cursor += 1;
    api::must(co_await s.binlog.durability_point());

    // 3. dirty table pages (buffer pool, written back at checkpoints).
    for (std::uint32_t r = 0; r < p.rows_pages_per_tx; ++r) {
      const std::uint32_t page =
          static_cast<std::uint32_t>(rng.uniform(0, p.table_pages - 1));
      api::must(co_await s.table.pwrite(page, 1));
    }
    ++s.tx_done;
    if (++s.tx_since_checkpoint >= p.checkpoint_every) {
      s.tx_since_checkpoint = 0;
      api::must(co_await s.table.durability_point());  // fuzzy checkpoint
    }
  }
}

}  // namespace

OltpResult run_oltp_insert(core::Stack& stack, const OltpParams& params,
                           sim::Rng rng) {
  OltpResult result;
  stack.start();
  api::Vfs vfs(stack);
  auto shared = std::make_unique<Shared>();

  auto setup = [&vfs, &params, s = shared.get()]() -> sim::Task {
    s->table = api::must(co_await vfs.open(
        "ibdata", {.create = true, .extent_blocks = params.table_pages}));
    for (std::uint32_t off = 0; off < params.table_pages;
         off += blk::kMaxMergedBlocks) {
      const std::uint32_t n = std::min<std::uint32_t>(
          blk::kMaxMergedBlocks, params.table_pages - off);
      api::must(co_await s->table.pwrite(off, n));
      api::must(co_await s->table.fsync());
    }
    s->redo = api::must(co_await vfs.open(
        "ib_logfile0", {.create = true, .extent_blocks = 4096}));
    s->binlog = api::must(co_await vfs.open(
        "binlog.000001", {.create = true, .extent_blocks = 4096}));
    api::must(co_await s->redo.pwrite(0, 1));
    api::must(co_await s->binlog.pwrite(0, 1));
    api::must(co_await s->redo.fsync());
    api::must(co_await s->binlog.fsync());
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  for (std::uint32_t t = 0; t < params.threads; ++t)
    stack.sim().spawn("oltp:" + std::to_string(t),
                      oltp_thread(params, *shared, rng.fork()));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.tx_done = shared->tx_done;
  if (result.elapsed > 0)
    result.tx_per_sec =
        static_cast<double>(result.tx_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
