// Ring-driven concurrent workload: the api::Ring variant of the concurrent
// multi-writer sweep, so linked-chain ordering is verified by the same
// oracle that checks the direct-Vfs workloads (new subsystems extend the
// oracle, not dodge it).
//
// N writer coroutines each own an api::Ring over the shared Vfs and push
// batches of sqes: linked chains (`pwrite -> order-sync -> pwrite`,
// `pwrite -> fsync`) whose ordering promise comes from kSqeLink, plus
// unlinked pwrites/preads/syncs that are free to race, with registered
// buffers carrying the data ops and light rename/unlink/fd churn on the
// side. Completions are reaped out of order via wait_cqe.
//
// The workload fills the same wl::ConcurrentTrace the direct workload
// fills — with one addition: each recorded chain sync carries
// chain_covered/chain_successors indices derived from the *submission*
// structure (which writes were linked before/after it), so the checker can
// hold the ring to the chain contract rather than to whatever order a
// (possibly buggy) ring actually ran. `ignore_links` injects exactly that
// bug for the oracle's negative test.
#pragma once

#include <cstdint>
#include <string>

#include "api/vfs.h"
#include "core/stack.h"
#include "sim/time.h"
#include "wl/concurrent_writers.h"

namespace bio::wl {

struct RingWorkloadParams {
  /// Writer coroutines, each owning its own Ring over the shared Vfs.
  std::uint32_t writers = 3;
  std::uint32_t batches_per_writer = 12;
  /// Linked chains per batch (each 2-4 sqes glued by kSqeLink).
  std::uint32_t chains_per_batch = 3;
  /// Unlinked sqes per batch (free-running pwrites/preads/syncs).
  std::uint32_t unlinked_per_batch = 3;
  /// Files shared by every writer (each writer opens its own fds).
  std::uint32_t files = 3;
  /// Extent reserved per file (4 KiB pages).
  std::uint32_t extent_blocks = 48;
  std::uint64_t seed = 1;
  /// rename/unlink churn between batches.
  bool namespace_churn = true;
  /// Occasionally close a descriptor while its sqes are still in flight
  /// (late completions surface as -EBADF cqes).
  bool fd_churn = true;
  /// TEST ONLY: run every ring with link flags ignored — the deliberate
  /// ordering bug whose violations the crash oracle must catch.
  bool ignore_links = false;
};

/// Spawns the setup task (creates + settles the namespace, then spawns the
/// ring writers) onto `vol`'s simulator. `trace` must outlive the run.
void spawn_ring_writers(core::Volume& vol, api::Vfs& vfs, std::string prefix,
                        const RingWorkloadParams& params,
                        ConcurrentTrace& trace);

struct RingWorkloadResult {
  std::uint64_t ops_done = 0;
  std::uint64_t syncs_done = 0;
  double ops_per_sec = 0.0;
  sim::SimTime elapsed = 0;
};

/// Bench/test driver: runs the workload to completion on `stack`'s volume 0
/// (stack must not have been started yet) and reports simulated throughput.
RingWorkloadResult run_ring_writers(core::Stack& stack,
                                    const RingWorkloadParams& params);

}  // namespace bio::wl
