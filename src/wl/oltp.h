// sysbench OLTP-insert model over a MySQL/InnoDB-like IO pattern (§6.5).
//
// Per transaction:
//   1. append redo-log records      -> durability sync on the redo log
//   2. append binlog entry          -> durability sync on the binlog
//   3. dirty B-tree pages in the buffer pool (random overwrites)
// Every `checkpoint_every` transactions the table file is synced (fuzzy
// checkpoint). On OptFS the checkpoint's overwrite pages are selectively
// data-journaled, which is what makes OptFS collapse on this workload.
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct OltpParams {
  std::uint32_t threads = 8;
  std::uint64_t transactions_per_thread = 100;
  std::uint32_t table_pages = 8192;
  std::uint32_t rows_pages_per_tx = 3;  // dirty table pages per insert
  std::uint32_t redo_pages_per_tx = 1;
  std::uint32_t checkpoint_every = 16;
  /// 0 = direct syscalls (each transaction's IO strictly serialized). >0 =
  /// each thread drives its IO through an api::Ring: redo and binlog become
  /// independent linked write->durability chains, table writes unlinked
  /// sqes, with up to ring_qd transactions in flight — group-commit
  /// batching the direct flavour cannot express.
  std::uint32_t ring_qd = 0;
};

struct OltpResult {
  double tx_per_sec = 0.0;
  std::uint64_t tx_done = 0;
  sim::SimTime elapsed = 0;
};

OltpResult run_oltp_insert(core::Stack& stack, const OltpParams& params,
                           sim::Rng rng);

}  // namespace bio::wl
