// fxmark DWSL model (§6.3, Fig 13): journaling scalability. Each "core"
// runs a thread that appends 4 KiB to its own private file and fsync()s,
// so throughput is bounded by how many journal commits per second the
// filesystem sustains under concurrency.
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct FxmarkParams {
  std::uint32_t cores = 4;
  std::uint32_t writes_per_thread = 200;
};

struct FxmarkResult {
  double ops_per_sec = 0.0;
  std::uint64_t ops_done = 0;
  sim::SimTime elapsed = 0;
};

FxmarkResult run_fxmark_dwsl(core::Stack& stack, const FxmarkParams& params,
                             sim::Rng rng);

}  // namespace bio::wl
