// fxmark DWSL model (§6.3, Fig 13): journaling scalability. Each "core"
// runs a thread that appends 4 KiB to its own private file and fsync()s,
// so throughput is bounded by how many journal commits per second the
// filesystem sustains under concurrency.
//
// The sharded variant stripes the cores' private files across the volumes
// of a multi-volume node (core c writes "/v<c % N>/dwsl<c>"), so each
// volume runs its own journal-commit pipeline: the multi-writer scaling
// experiment one journal cannot provide, measured per volume.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct FxmarkParams {
  std::uint32_t cores = 4;
  std::uint32_t writes_per_thread = 200;
};

struct FxmarkResult {
  double ops_per_sec = 0.0;
  std::uint64_t ops_done = 0;
  sim::SimTime elapsed = 0;
};

FxmarkResult run_fxmark_dwsl(core::Stack& stack, const FxmarkParams& params,
                             sim::Rng rng);

struct ShardedFxmarkResult {
  double ops_per_sec = 0.0;
  std::uint64_t ops_done = 0;
  sim::SimTime elapsed = 0;
  /// Index-aligned with the node's volumes: ops committed per volume per
  /// simulated second.
  std::vector<double> volume_ops_per_sec;
  std::vector<std::uint64_t> volume_ops;
};

/// DWSL with the files striped round-robin across the node's volumes.
/// `node` must not have been started yet (mirrors run_fxmark_dwsl).
/// `on_measured_start`, if set, fires after the (unmeasured) setup phase,
/// right before the writer threads spawn — harnesses snapshot wall-clock
/// and counter baselines there so setup cost stays out of their numbers.
ShardedFxmarkResult run_fxmark_dwsl_sharded(
    core::Stack& node, const FxmarkParams& params,
    const std::function<void()>& on_measured_start = {});

}  // namespace bio::wl
