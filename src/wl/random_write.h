// 4 KiB random/sequential write workloads — the raw-IO microbenchmarks
// behind Fig 1 (ordered vs buffered), Fig 9 (XnF/X/B/P), Fig 10/12 (queue
// depth traces), Table 1 (fsync latency) and Fig 11 (context switches).
#pragma once

#include <cstdint>

#include "core/stack.h"
#include "sim/rng.h"

namespace bio::wl {

struct RandomWriteParams {
  enum class Mode : std::uint8_t {
    /// Plain buffered write(): scenario "P".
    kBuffered,
    /// write() + fdatasync(): "XnF" on EXT4-DR, "X" on EXT4-OD (nobarrier).
    kFdatasync,
    /// write() + fdatabarrier(): scenario "B" (BarrierFS stacks only).
    kFdatabarrier,
    /// write() + the stack's full sync (fsync / fbarrier): Fig 11, Table 1.
    kSyncFile,
    /// Sequential *allocating* write() + fdatasync(): Fig 1 "ordered".
    kAllocFdatasync,
    /// Sequential allocating write() + fdatabarrier(): ordering-only
    /// journal commits, pipelined (Fig 8's BarrierFS row).
    kAllocFdatabarrier,
  };

  Mode mode = Mode::kFdatasync;
  /// Force allocating (appending) writes for any mode: every op extends
  /// i_size, so every sync commits a journal transaction (fxmark DWSL's
  /// pattern, which Table 1 measures).
  bool allocating = false;
  /// Number of files the ops rotate over (multi-file commit pipelining).
  std::uint32_t files = 1;
  /// Random-write working set (pre-allocated, so writes are overwrites).
  std::uint32_t working_set_pages = 4096;
  /// Number of write() calls to issue.
  std::uint64_t ops = 2000;
};

struct RandomWriteResult {
  double iops = 0.0;           // write() calls per second of simulated time
  double avg_queue_depth = 0.0;
  double context_switches_per_op = 0.0;
  std::uint64_t ops_done = 0;
  sim::SimTime elapsed = 0;
};

/// Runs the workload on an already-constructed (not yet started) stack.
/// Starts the stack, pre-allocates the working set, resets accounting and
/// measures the op phase. Single application thread, like the paper's
/// microbenchmarks.
RandomWriteResult run_random_write(core::Stack& stack,
                                   const RandomWriteParams& params,
                                   sim::Rng rng);

}  // namespace bio::wl
