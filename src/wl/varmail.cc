#include "wl/varmail.h"

#include <string>
#include <vector>

#include "api/vfs.h"

namespace bio::wl {

namespace {

struct Shared {
  std::vector<std::string> live_files;
  std::uint64_t next_name = 0;
  std::uint64_t flowops = 0;
};

sim::Task mail_thread(api::Vfs& vfs, const VarmailParams& p, Shared& shared,
                      sim::Rng rng) {
  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    // 1. delete an existing mail (keep at least a handful alive).
    if (shared.live_files.size() > 8) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      std::string victim = shared.live_files[idx];
      shared.live_files.erase(
          shared.live_files.begin() + static_cast<std::ptrdiff_t>(idx));
      api::must(co_await vfs.unlink(victim));
      ++shared.flowops;
    }
    // 2. create a new mail, write it fully, sync it.
    {
      std::string name = "mail" + std::to_string(shared.next_name++);
      api::File f = api::must(co_await vfs.open(
          name, {.create = true,
                 .exclusive = true,
                 .extent_blocks = p.file_pages * 2}));
      api::must(co_await f.pwrite(0, p.file_pages));
      api::must(co_await f.sync_file());
      api::must(f.close());
      shared.live_files.push_back(std::move(name));
      shared.flowops += 3;  // create + write + sync
    }
    // 3. append to an existing mail, sync it. The mail may have vanished
    // (ENOENT) or be full (ENOSPC); both are normal outcomes, not errors.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        api::File f = opened.value();
        if ((co_await f.append(1)).ok()) {
          api::must(co_await f.sync_file());
          shared.flowops += 3;  // open + append + sync
        }
        api::must(f.close());
      }
    }
    // 4. read a whole mail.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        api::File f = opened.value();
        const std::uint32_t size = api::must(f.size_blocks());
        if (size > 0) {
          api::must(co_await f.pread(0, size));
          shared.flowops += 2;  // open + read
        }
        api::must(f.close());
      }
    }
  }
}

}  // namespace

VarmailResult run_varmail(core::Stack& stack, const VarmailParams& params,
                          sim::Rng rng) {
  VarmailResult result;
  stack.start();
  api::Vfs vfs(stack);
  auto shared = std::make_unique<Shared>();

  // Pre-populate the file set (untimed from the benchmark's perspective —
  // accounting resets afterwards).
  auto setup = [&vfs, &params, s = shared.get()]() -> sim::Task {
    api::File last;
    for (std::uint32_t i = 0; i < params.files; ++i) {
      std::string name = "mail" + std::to_string(s->next_name++);
      api::File f = api::must(co_await vfs.open(
          name, {.create = true, .extent_blocks = params.file_pages * 2}));
      api::must(co_await f.pwrite(0, params.file_pages));
      if (last.valid()) api::must(last.close());
      last = f;
      s->live_files.push_back(std::move(name));
    }
    api::must(co_await last.fsync());
    api::must(last.close());
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  for (std::uint32_t t = 0; t < params.threads; ++t)
    stack.sim().spawn("mail:" + std::to_string(t),
                      mail_thread(vfs, params, *shared, rng.fork()));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.ops_done = shared->flowops;
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
