#include "wl/varmail.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "api/ring.h"
#include "api/vfs.h"
#include "sim/check.h"

namespace bio::wl {

namespace {

struct Shared {
  std::vector<std::string> live_files;
  std::uint64_t next_name = 0;
  std::uint64_t flowops = 0;
};

sim::Task mail_thread(api::Vfs& vfs, const VarmailParams& p, Shared& shared,
                      sim::Rng rng) {
  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    // 1. delete an existing mail (keep at least a handful alive).
    if (shared.live_files.size() > 8) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      std::string victim = shared.live_files[idx];
      shared.live_files.erase(
          shared.live_files.begin() + static_cast<std::ptrdiff_t>(idx));
      api::must(co_await vfs.unlink(victim));
      ++shared.flowops;
    }
    // 2. create a new mail, write it fully, sync it.
    {
      std::string name = "mail" + std::to_string(shared.next_name++);
      api::File f = api::must(co_await vfs.open(
          name, {.create = true,
                 .exclusive = true,
                 .extent_blocks = p.file_pages * 2}));
      api::must(co_await f.pwrite(0, p.file_pages));
      api::must(co_await f.sync_file());
      api::must(f.close());
      shared.live_files.push_back(std::move(name));
      shared.flowops += 3;  // create + write + sync
    }
    // 3. append to an existing mail, sync it. The mail may have vanished
    // (ENOENT) or be full (ENOSPC); both are normal outcomes, not errors.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        api::File f = opened.value();
        if ((co_await f.append(1)).ok()) {
          api::must(co_await f.sync_file());
          shared.flowops += 3;  // open + append + sync
        }
        api::must(f.close());
      }
    }
    // 4. read a whole mail.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        api::File f = opened.value();
        const std::uint32_t size = api::must(f.size_blocks());
        if (size > 0) {
          api::must(co_await f.pread(0, size));
          shared.flowops += 2;  // open + read
        }
        api::must(f.close());
      }
    }
  }
}

// Ring-mode flavour of the same flow. Each create/append becomes a linked
// write -> full-sync chain and each read an unlinked sqe; a thread keeps up
// to `ring_qd` chains in flight, so independent mails overlap where the
// direct flavour serializes on every co_await. The chain's File stays open
// in its slot until the last cqe arrives. Two concurrent appends to the
// same mail may land on the same EOF page (the ring loosens program order
// across chains by design); flowops accounting per chain outcome matches
// the direct flavour.
struct ChainSlot {
  api::File file;
  enum Kind : std::uint8_t { kCreate, kAppend, kRead } kind = kCreate;
  std::uint32_t remaining = 0;  // cqes this chain still owes
  std::uint32_t failed = 0;
};

sim::Task mail_thread_ring(api::Vfs& vfs, const VarmailParams& p,
                           Shared& shared, sim::Rng rng) {
  api::Ring ring(vfs);
  // One spare slot beyond the QD: a chain is only allocated after the reap
  // loop has brought in_flight below ring_qd.
  std::vector<ChainSlot> slots(p.ring_qd + 1);
  std::vector<std::size_t> free_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) free_slots.push_back(i);
  std::uint32_t chains_in_flight = 0;

  auto full_sync_op = [&vfs](const api::File& f) {
    return api::ring_op_for(api::must(vfs.policy_of(f.fd()))
                                .resolve(api::SyncIntent::kFullSync));
  };
  auto claim_slot = [&](api::File f, ChainSlot::Kind kind,
                        std::uint32_t nops) {
    const std::size_t slot = free_slots.back();
    free_slots.pop_back();
    ChainSlot& c = slots[slot];
    c.file = std::move(f);
    c.kind = kind;
    c.remaining = nops;
    c.failed = 0;
    ++chains_in_flight;
    return slot;
  };
  auto reap_one = [&](const api::Cqe& cqe) {
    ChainSlot& c = slots[static_cast<std::size_t>(cqe.user_data)];
    if (cqe.res < 0) ++c.failed;
    if (--c.remaining > 0) return;
    switch (c.kind) {
      case ChainSlot::kCreate:
        // A fresh exclusive file with room for the whole write: failure
        // here is a bug, exactly like the direct flavour's must().
        BIO_CHECK_MSG(c.failed == 0, "varmail ring create chain failed");
        shared.flowops += 3;  // create + write + sync
        break;
      case ChainSlot::kAppend:
        // -ENOSPC on a full mail cancels the linked sync (-ECANCELED);
        // both mirror the direct flavour skipping the sync, counting 0.
        if (c.failed == 0) shared.flowops += 3;  // open + append + sync
        break;
      case ChainSlot::kRead:
        if (c.failed == 0) shared.flowops += 2;  // open + read
        break;
    }
    api::must(c.file.close());
    free_slots.push_back(static_cast<std::size_t>(cqe.user_data));
    --chains_in_flight;
  };

  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    // 1. delete an existing mail (direct — namespace op).
    if (shared.live_files.size() > 8) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      std::string victim = shared.live_files[idx];
      shared.live_files.erase(
          shared.live_files.begin() + static_cast<std::ptrdiff_t>(idx));
      // A victim with a chain in flight is fine: the slot's open File
      // keeps the inode alive, as POSIX unlink-while-open does.
      api::must(co_await vfs.unlink(victim));
      ++shared.flowops;
    }
    // 2. create a new mail: linked write -> full-sync chain.
    {
      while (chains_in_flight >= p.ring_qd)
        reap_one(co_await ring.wait_cqe());
      std::string name = "mail" + std::to_string(shared.next_name++);
      api::File f = api::must(co_await vfs.open(
          name, {.create = true,
                 .exclusive = true,
                 .extent_blocks = p.file_pages * 2}));
      const api::RingOp sync_op = full_sync_op(f);
      const api::Fd fd = f.fd();
      const std::size_t slot =
          claim_slot(std::move(f), ChainSlot::kCreate, 2);
      BIO_CHECK(ring.push({.op = api::RingOp::kWrite,
                           .fd = fd,
                           .page = 0,
                           .npages = p.file_pages,
                           .flags = api::kSqeLink,
                           .user_data = slot}));
      BIO_CHECK(ring.push({.op = sync_op, .fd = fd, .user_data = slot}));
      ring.submit();
      shared.live_files.push_back(std::move(name));
    }
    // 3. append to an existing mail: linked write -> full-sync chain. The
    // mail may have vanished (ENOENT, direct open) or be full (the write
    // completes -ENOSPC and cancels its sync); both are normal outcomes.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        while (chains_in_flight >= p.ring_qd)
          reap_one(co_await ring.wait_cqe());
        api::File f = opened.value();
        const std::uint32_t size = api::must(f.size_blocks());
        const api::RingOp sync_op = full_sync_op(f);
        const api::Fd fd = f.fd();
        const std::size_t slot =
            claim_slot(std::move(f), ChainSlot::kAppend, 2);
        BIO_CHECK(ring.push({.op = api::RingOp::kWrite,
                             .fd = fd,
                             .page = size,  // append = write at EOF
                             .npages = 1,
                             .flags = api::kSqeLink,
                             .user_data = slot}));
        BIO_CHECK(ring.push({.op = sync_op, .fd = fd, .user_data = slot}));
        ring.submit();
      }
    }
    // 4. read a whole mail: one unlinked sqe.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      api::Result<api::File> opened =
          co_await vfs.open(shared.live_files[idx]);
      if (opened.ok()) {
        api::File f = opened.value();
        const std::uint32_t size = api::must(f.size_blocks());
        if (size == 0) {
          api::must(f.close());
        } else {
          while (chains_in_flight >= p.ring_qd)
            reap_one(co_await ring.wait_cqe());
          const api::Fd fd = f.fd();
          const std::size_t slot =
              claim_slot(std::move(f), ChainSlot::kRead, 1);
          BIO_CHECK(ring.push({.op = api::RingOp::kRead,
                               .fd = fd,
                               .page = 0,
                               .npages = size,
                               .user_data = slot}));
          ring.submit();
        }
      }
    }
  }
  // Drain: every chain reaps before the Ring (and its slot Files) go away.
  while (chains_in_flight > 0) reap_one(co_await ring.wait_cqe());
}

}  // namespace

VarmailResult run_varmail(core::Stack& stack, const VarmailParams& params,
                          sim::Rng rng) {
  VarmailResult result;
  stack.start();
  api::Vfs vfs(stack);
  auto shared = std::make_unique<Shared>();

  // Pre-populate the file set (untimed from the benchmark's perspective —
  // accounting resets afterwards).
  auto setup = [&vfs, &params, s = shared.get()]() -> sim::Task {
    api::File last;
    for (std::uint32_t i = 0; i < params.files; ++i) {
      std::string name = "mail" + std::to_string(s->next_name++);
      api::File f = api::must(co_await vfs.open(
          name, {.create = true, .extent_blocks = params.file_pages * 2}));
      api::must(co_await f.pwrite(0, params.file_pages));
      if (last.valid()) api::must(last.close());
      last = f;
      s->live_files.push_back(std::move(name));
    }
    api::must(co_await last.fsync());
    api::must(last.close());
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  for (std::uint32_t t = 0; t < params.threads; ++t)
    // iolint: detached-owner(run() below blocks until every thread is
    // done; vfs and the Shared state outlive the run in this scope)
    stack.sim().spawn(
        "mail:" + std::to_string(t),
        params.ring_qd > 0
            ? mail_thread_ring(vfs, params, *shared, rng.fork())
            : mail_thread(vfs, params, *shared, rng.fork()));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.ops_done = shared->flowops;
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
