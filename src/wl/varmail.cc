#include "wl/varmail.h"

#include <string>
#include <vector>

namespace bio::wl {

namespace {

struct Shared {
  std::vector<std::string> live_files;
  std::uint64_t next_name = 0;
  std::uint64_t flowops = 0;
};

sim::Task mail_thread(core::Stack& stack, const VarmailParams& p,
                      Shared& shared, sim::Rng rng) {
  fs::Filesystem& filesystem = stack.fs();
  for (std::uint32_t iter = 0; iter < p.iterations; ++iter) {
    // 1. delete an existing mail (keep at least a handful alive).
    if (shared.live_files.size() > 8) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      std::string victim = shared.live_files[idx];
      shared.live_files.erase(
          shared.live_files.begin() + static_cast<std::ptrdiff_t>(idx));
      co_await filesystem.unlink(victim);
      ++shared.flowops;
    }
    // 2. create a new mail, write it fully, sync it.
    {
      std::string name = "mail" + std::to_string(shared.next_name++);
      fs::Inode* f = nullptr;
      co_await filesystem.create(name, f, p.file_pages * 2);
      co_await filesystem.write(*f, 0, p.file_pages);
      co_await stack.sync_file(*f);
      shared.live_files.push_back(std::move(name));
      shared.flowops += 3;  // create + write + sync
    }
    // 3. append to an existing mail, sync it.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      fs::Inode* f = stack.fs().lookup(shared.live_files[idx]);
      if (f != nullptr && f->size_blocks + 1 <= f->extent_blocks) {
        co_await filesystem.write(*f, f->size_blocks, 1);
        co_await stack.sync_file(*f);
        shared.flowops += 3;  // open + append + sync
      }
    }
    // 4. read a whole mail.
    if (!shared.live_files.empty()) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform(0, shared.live_files.size() - 1));
      fs::Inode* f = stack.fs().lookup(shared.live_files[idx]);
      if (f != nullptr && f->size_blocks > 0) {
        co_await filesystem.read(*f, 0, f->size_blocks);
        shared.flowops += 2;  // open + read
      }
    }
  }
}

}  // namespace

VarmailResult run_varmail(core::Stack& stack, const VarmailParams& params,
                          sim::Rng rng) {
  VarmailResult result;
  stack.start();
  auto shared = std::make_unique<Shared>();

  // Pre-populate the file set (untimed from the benchmark's perspective —
  // accounting resets afterwards).
  auto setup = [&stack, &params, s = shared.get()]() -> sim::Task {
    for (std::uint32_t i = 0; i < params.files; ++i) {
      std::string name = "mail" + std::to_string(s->next_name++);
      fs::Inode* f = nullptr;
      co_await stack.fs().create(name, f, params.file_pages * 2);
      co_await stack.fs().write(*f, 0, params.file_pages);
      s->live_files.push_back(std::move(name));
    }
    fs::Inode* any = stack.fs().lookup(s->live_files.front());
    co_await stack.fs().fsync(*any);
  };
  stack.sim().spawn("setup", setup());
  stack.sim().run();

  stack.device().reset_qd_accounting();
  const sim::SimTime t0 = stack.sim().now();
  std::vector<sim::ThreadCtx*> threads;
  for (std::uint32_t t = 0; t < params.threads; ++t)
    threads.push_back(&stack.sim().spawn(
        "mail:" + std::to_string(t),
        mail_thread(stack, params, *shared, rng.fork())));
  stack.sim().run();

  result.elapsed = stack.sim().now() - t0;
  result.ops_done = shared->flowops;
  if (result.elapsed > 0)
    result.ops_per_sec =
        static_cast<double>(result.ops_done) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace bio::wl
