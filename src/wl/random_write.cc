#include "wl/random_write.h"

#include <string>
#include <vector>

#include "api/vfs.h"

namespace bio::wl {

namespace {

sim::Task workload_body(core::Stack& stack, api::Vfs& vfs,
                        const RandomWriteParams& p, sim::Rng rng,
                        RandomWriteResult& out) {
  sim::Simulator& sim = stack.sim();
  const bool alloc_mode =
      p.allocating || p.mode == RandomWriteParams::Mode::kAllocFdatasync ||
      p.mode == RandomWriteParams::Mode::kAllocFdatabarrier;
  const std::uint32_t nfiles = std::max<std::uint32_t>(1, p.files);

  std::vector<api::File> files(nfiles);
  const std::uint32_t per_file_ws = p.working_set_pages / nfiles;
  const std::uint32_t extent =
      alloc_mode ? static_cast<std::uint32_t>(p.ops / nfiles) + 2
                 : per_file_ws;
  for (std::uint32_t fidx = 0; fidx < nfiles; ++fidx) {
    files[fidx] = api::must(co_await vfs.open(
        "bench" + std::to_string(fidx),
        {.create = true, .extent_blocks = extent}));
    if (!alloc_mode) {
      // Pre-allocate so the measured writes are overwrites (no journal
      // commit from i_size changes), as in the paper's 4KB random write.
      for (std::uint32_t off = 0; off < per_file_ws;
           off += blk::kMaxMergedBlocks) {
        const std::uint32_t n =
            std::min<std::uint32_t>(blk::kMaxMergedBlocks, per_file_ws - off);
        api::must(co_await files[fidx].pwrite(off, n));
        api::must(co_await files[fidx].fsync());
      }
      api::must(co_await files[fidx].fsync());
    }
  }
  api::File file = files[0];

  // ---- measured phase ----------------------------------------------------
  stack.device().reset_qd_accounting();
  sim::ThreadCtx* self = sim.current_thread();
  const std::uint64_t cs0 = self->context_switches;
  const sim::SimTime t0 = sim.now();

  for (std::uint64_t i = 0; i < p.ops; ++i) {
    file = files[i % nfiles];
    if (alloc_mode) {
      api::must(co_await file.append(1));
    } else {
      const std::uint32_t page =
          static_cast<std::uint32_t>(rng.uniform(0, per_file_ws - 1));
      api::must(co_await file.pwrite(page, 1));
    }
    switch (p.mode) {
      case RandomWriteParams::Mode::kBuffered:
        break;
      case RandomWriteParams::Mode::kFdatasync:
      case RandomWriteParams::Mode::kAllocFdatasync:
        api::must(co_await file.fdatasync());
        break;
      case RandomWriteParams::Mode::kFdatabarrier:
      case RandomWriteParams::Mode::kAllocFdatabarrier:
        api::must(co_await file.fdatabarrier());
        break;
      case RandomWriteParams::Mode::kSyncFile:
        api::must(co_await file.sync_file());
        break;
    }
    ++out.ops_done;
  }

  out.elapsed = sim.now() - t0;
  out.context_switches_per_op =
      static_cast<double>(self->context_switches - cs0) /
      static_cast<double>(p.ops);
  out.avg_queue_depth = stack.device().average_queue_depth();
  if (out.elapsed > 0)
    out.iops = static_cast<double>(out.ops_done) / sim::to_seconds(out.elapsed);
}

}  // namespace

RandomWriteResult run_random_write(core::Stack& stack,
                                   const RandomWriteParams& params,
                                   sim::Rng rng) {
  RandomWriteResult result;
  stack.start();
  api::Vfs vfs(stack);
  // iolint: detached-owner(run() below blocks until the workload drains;
  // vfs and result outlive the run in this scope)
  stack.sim().spawn("app", workload_body(stack, vfs, params, std::move(rng),
                                         result));
  stack.sim().run();
  return result;
}

}  // namespace bio::wl
