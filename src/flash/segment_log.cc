#include "flash/segment_log.h"

#include <algorithm>
#include <limits>

namespace bio::flash {

SegmentLog::SegmentLog(sim::Simulator& sim, NandArray& nand, Params params)
    : sim_(sim),
      nand_(nand),
      params_(params),
      geom_(nand.geometry()),
      space_freed_(sim),
      gc_wake_(sim),
      prefix_advanced_(sim),
      erase_done_(sim) {
  segments_.resize(geom_.segments());
  for (auto& seg : segments_)
    seg.slots.resize(static_cast<std::size_t>(geom_.pages_per_segment()));
  for (std::uint32_t s = 1; s < segments_.size(); ++s)
    free_segments_.push_back(s);
  active_segment_ = 0;
  BIO_CHECK_MSG(geom_.segments() > params_.gc_low_watermark + 1,
                "device too small for the GC watermark");
}

void SegmentLog::start() {
  BIO_CHECK(!started_);
  started_ = true;
  sim_.spawn("ftl:gc", gc_loop()).wake_latency = 0;
}

bool SegmentLog::space_available() const noexcept {
  if (!segments_[active_segment_].full()) return true;
  // Keep two free segments in reserve so GC relocation can always proceed
  // even while foreground traffic is blocked waiting for space.
  return free_segments_.size() > 2;
}

SegmentLog::Alloc SegmentLog::allocate_slot(Lba lba, Version version) {
  Segment* seg = &segments_[active_segment_];
  if (seg->full()) {
    BIO_CHECK_MSG(!free_segments_.empty(), "allocate_slot without space");
    active_segment_ = free_segments_.front();
    free_segments_.pop_front();
    seg = &segments_[active_segment_];
    BIO_CHECK(seg->next_offset == 0);
  }
  const std::uint32_t offset = seg->next_offset++;
  const SlotId slot =
      static_cast<SlotId>(active_segment_) * geom_.pages_per_segment() +
      offset;
  install_mapping(lba, slot);
  seg->slots[offset] = PhysSlot{lba, true};
  ++seg->valid_count;
  history_.push_back(AppendRecord{lba, version, false, false});
  mapped_version_[lba] = MappedContent{version, history_.size() - 1};
  return Alloc{slot, history_.size() - 1};
}

void SegmentLog::install_mapping(Lba lba, SlotId slot) {
  auto it = mapping_.find(lba);
  if (it != mapping_.end()) {
    const SlotId old = it->second;
    Segment& old_seg = segments_[old / geom_.pages_per_segment()];
    PhysSlot& old_slot = old_seg.slots[old % geom_.pages_per_segment()];
    if (old_slot.valid) {
      old_slot.valid = false;
      BIO_CHECK(old_seg.valid_count > 0);
      --old_seg.valid_count;
    }
    it->second = slot;
  } else {
    mapping_.emplace(lba, slot);
  }
}

void SegmentLog::mark_programmed(std::uint64_t history_index) {
  history_[history_index].programmed = true;
  if (history_index <= prefix_) advance_prefix();
}

void SegmentLog::advance_prefix() {
  // gc_redundant records never gate the prefix: their content already sits
  // programmed at an earlier log position, and the source segment outlives
  // the relocation, so recovery loses nothing if the copy is torn.
  const std::uint64_t before = prefix_;
  while (prefix_ < history_.size() &&
         (history_[prefix_].programmed || history_[prefix_].gc_redundant))
    ++prefix_;
  if (prefix_ != before) prefix_advanced_.notify_all();
}

sim::Task SegmentLog::reserve(Lba lba, Version version, Reservation& out) {
  BIO_CHECK_MSG(started_, "SegmentLog::start() not called");
  while (!space_available()) {
    gc_wake_.notify_all();
    co_await space_freed_.wait();
  }
  const Alloc alloc = allocate_slot(lba, version);
  if (needs_gc()) gc_wake_.notify_all();
  out = Reservation{alloc.slot, alloc.history_index};
}

sim::Task SegmentLog::program_reserved(Reservation r) {
  co_await nand_.program(chip_of(r.slot));
  mark_programmed(r.history_index);
}

sim::Task SegmentLog::append(Lba lba, Version version) {
  Reservation r;
  co_await reserve(lba, version, r);
  co_await program_reserved(r);
}

sim::Task SegmentLog::read(Lba lba) {
  auto it = mapping_.find(lba);
  if (it == mapping_.end()) co_return;  // unmapped: served as zeroes
  co_await nand_.read(chip_of(it->second));
}

void SegmentLog::mark_commit_point() { commit_point_ = history_.size(); }

std::unordered_map<Lba, Version> SegmentLog::durable_in_order_recovery()
    const {
  std::unordered_map<Lba, Version> state;
  for (std::uint64_t i = 0; i < prefix_; ++i)
    state[history_[i].lba] = history_[i].version;
  return state;
}

std::unordered_map<Lba, Version> SegmentLog::durable_programmed_set() const {
  std::unordered_map<Lba, Version> state;
  for (const AppendRecord& rec : history_)
    if (rec.programmed) state[rec.lba] = rec.version;
  return state;
}

std::unordered_map<Lba, Version> SegmentLog::durable_committed() const {
  std::unordered_map<Lba, Version> state;
  for (std::uint64_t i = 0; i < commit_point_; ++i)
    state[history_[i].lba] = history_[i].version;
  return state;
}

std::optional<Version> SegmentLog::mapped_version(Lba lba) const {
  auto it = mapped_version_.find(lba);
  if (it == mapped_version_.end()) return std::nullopt;
  return it->second.version;
}

void SegmentLog::prefill(double utilization, Lba lba_span, sim::Rng& rng) {
  BIO_CHECK(utilization >= 0.0 && utilization < 1.0);
  BIO_CHECK(lba_span > 0);
  const auto target =
      static_cast<std::uint64_t>(utilization *
                                 static_cast<double>(geom_.physical_pages()));
  for (std::uint64_t i = 0; i < target; ++i) {
    if (!space_available()) break;
    const Lba lba = rng.uniform(0, lba_span - 1);
    const Alloc alloc = allocate_slot(lba, /*version=*/0);
    history_[alloc.history_index].programmed = true;
  }
  advance_prefix();
}

sim::Task SegmentLog::gc_loop() {
  for (;;) {
    while (!needs_gc()) co_await gc_wake_.wait();

    // Victim: the full, non-active segment with the fewest valid pages.
    std::uint32_t victim = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t s = 0; s < segments_.size(); ++s) {
      if (s == active_segment_ || !segments_[s].full()) continue;
      if (segments_[s].valid_count < best_valid) {
        best_valid = segments_[s].valid_count;
        victim = s;
      }
    }
    // A fully-valid victim would gain nothing (and could exhaust the GC
    // reserve); wait until overwrites invalidate some pages.
    if (victim != std::numeric_limits<std::uint32_t>::max() &&
        best_valid >= geom_.pages_per_segment())
      victim = std::numeric_limits<std::uint32_t>::max();
    if (victim == std::numeric_limits<std::uint32_t>::max()) {
      // Nothing collectable yet; wait for more segments to fill.
      co_await gc_wake_.wait();
      continue;
    }

    ++gc_.runs;
    // Relocate valid pages (bounded concurrency), then erase the segment.
    sim::Semaphore inflight(sim_, params_.gc_inflight);
    std::vector<sim::ThreadCtx*> workers;
    const std::uint64_t base =
        static_cast<std::uint64_t>(victim) * geom_.pages_per_segment();
    for (std::uint32_t off = 0; off < geom_.pages_per_segment(); ++off) {
      if (!segments_[victim].slots[off].valid) continue;
      // iolint: detached-owner(the join loop below waits every worker
      // before the semaphore and segment state go away)
      sim::ThreadCtx& w =
          sim_.spawn("gc", relocate_slot(base + off, inflight));
      w.wake_latency = 0;
      workers.push_back(&w);
    }
    for (sim::ThreadCtx* w : workers) co_await sim_.join(*w);
    BIO_CHECK_MSG(segments_[victim].valid_count == 0,
                  "GC victim still has valid pages after relocation");

    // Erase the victim's block on every chip, in parallel. The controller
    // is busy during the erase burst: host commands stall (tail source).
    erasing_ = true;
    std::vector<sim::ThreadCtx*> erasers;
    for (std::uint32_t c = 0; c < nand_.chip_count(); ++c) {
      sim::ThreadCtx& w = sim_.spawn("gc:erase", nand_.erase(c));
      w.wake_latency = 0;
      erasers.push_back(&w);
    }
    for (sim::ThreadCtx* w : erasers) co_await sim_.join(*w);

    erasing_ = false;
    erase_done_.notify_all();

    Segment& seg = segments_[victim];
    seg.next_offset = 0;
    seg.valid_count = 0;
    for (auto& slot : seg.slots) slot = PhysSlot{};
    free_segments_.push_back(victim);
    ++gc_.segments_erased;
    space_freed_.notify_all();
  }
}

sim::Task SegmentLog::relocate_slot(SlotId victim_slot,
                                    sim::Semaphore& inflight) {
  co_await inflight.acquire();
  const Lba lba =
      segments_[victim_slot / geom_.pages_per_segment()]
          .slots[victim_slot % geom_.pages_per_segment()]
          .lba;
  auto it = mapping_.find(lba);
  if (it == mapping_.end() || it->second != victim_slot) {
    // Overwritten while GC was scanning: nothing to move.
    inflight.release();
    co_return;
  }
  // Synchronous slot assignment keeps log order consistent with mapping
  // updates (no suspension between the check above and the allocation).
  const MappedContent src = mapped_version_.at(lba);
  const Alloc alloc = allocate_slot(lba, src.version);
  // Only a relocation of already-programmed content is redundant for
  // recovery; copying a page whose own program is still in flight must
  // gate the prefix like any other append.
  history_[alloc.history_index].gc_redundant =
      history_[src.history_index].programmed;
  co_await nand_.read(chip_of(victim_slot));
  co_await nand_.program(chip_of(alloc.slot));
  mark_programmed(alloc.history_index);
  ++gc_.pages_copied;
  inflight.release();
}

}  // namespace bio::flash
