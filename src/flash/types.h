// Shared vocabulary types for the simulated Flash storage device.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace bio::flash {

/// Host logical block address in 4 KiB units.
using Lba = std::uint64_t;

/// Monotonically increasing content tag carried by each write. The
/// simulation does not store real data; crash-consistency checks compare
/// versions instead of bytes.
using Version = std::uint64_t;

/// 4 KiB, the unit of host IO in all of the paper's experiments.
inline constexpr std::uint32_t kBlockSize = 4096;

enum class OpCode : std::uint8_t {
  kWrite,
  kRead,
  kFlush,
};

/// SCSI command priority (§3.4). ORDERED commands drain everything ahead of
/// them and fence everything behind them; HEAD_OF_QUEUE jumps the line.
enum class Priority : std::uint8_t {
  kSimple,
  kOrdered,
  kHeadOfQueue,
};

/// How the device guarantees the persist order imposed by barrier writes
/// (§3.2 of the paper).
enum class BarrierMode : std::uint8_t {
  /// No barrier support: barrier flags are ignored (legacy device).
  kNone,
  /// Flush the cache epoch-by-epoch; simple but forfeits cross-epoch
  /// program parallelism.
  kInOrderWriteback,
  /// Flush the whole cache as one atomic unit (Transactional Flash).
  kTransactional,
  /// Log-structured writeback with crash-recovery truncation at the first
  /// unprogrammed page — the paper's UFS firmware implementation.
  kInOrderRecovery,
};

/// Completion status of a storage command. Devices fail: transiently (a
/// soft program/read error or a torn multi-block write a host retry will
/// clear) or hard (a media error no retry helps). The block layer's retry
/// policy keys off this distinction.
enum class [[nodiscard]] IoStatus : std::uint8_t {
  kOk,
  kTransientError,
  kHardError,
};

const char* to_string(BarrierMode m) noexcept;
const char* to_string(Priority p) noexcept;
const char* to_string(OpCode op) noexcept;
const char* to_string(IoStatus s) noexcept;

}  // namespace bio::flash
