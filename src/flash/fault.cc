#include "flash/fault.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace bio::flash {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kTransientProgram: return "transient-program";
    case FaultKind::kTransientRead: return "transient-read";
    case FaultKind::kHardMedia: return "hard-media";
    case FaultKind::kTornWrite: return "torn-write";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed,
                            std::uint64_t expected_write_ops,
                            std::uint32_t max_faults) {
  sim::Rng rng(seed ^ 0xfa017101dULL);
  FaultPlan plan;
  const std::uint64_t span = std::max<std::uint64_t>(expected_write_ops, 1);
  const std::uint64_t n = rng.uniform(1, std::max<std::uint32_t>(max_faults, 1));
  for (std::uint64_t i = 0; i < n; ++i) {
    FaultSpec s;
    const std::uint64_t roll = rng.uniform(0, 9);
    if (roll < 4) {
      s.kind = FaultKind::kTransientProgram;
    } else if (roll < 6) {
      s.kind = FaultKind::kTransientRead;
    } else if (roll < 8) {
      s.kind = FaultKind::kHardMedia;
    } else {
      s.kind = FaultKind::kTornWrite;
      s.torn_keep = static_cast<std::uint32_t>(rng.uniform(1, 3));
    }
    // Log-uniform ordinal: a crash sweep cuts runs anywhere from a few ops
    // in to full completion, so cluster placements toward early ordinals
    // (half the mass below sqrt(span)) while still reaching late ones.
    const double u = rng.uniform_real(0.0, 1.0);
    s.at_op = static_cast<std::uint64_t>(
        std::pow(static_cast<double>(span), u));
    if (s.at_op < 1) s.at_op = 1;
    if (s.at_op > span) s.at_op = span;
    plan.add(s);
  }
  return plan;
}

const FaultSpec* FaultPlan::match_write(
    std::uint64_t op_ordinal,
    std::span<const std::pair<Lba, Version>> blocks) {
  for (FaultSpec& s : specs_) {
    if (s.count == 0) continue;
    if (s.kind == FaultKind::kTransientRead) continue;
    if (s.at_op != 0 && s.at_op != op_ordinal) continue;
    if (s.lba != kAnyLba) {
      const bool touches =
          std::any_of(blocks.begin(), blocks.end(),
                      [&](const auto& b) { return b.first == s.lba; });
      if (!touches) continue;
    }
    --s.count;
    switch (s.kind) {
      case FaultKind::kTransientProgram: ++stats_.transient_program; break;
      case FaultKind::kHardMedia: ++stats_.hard_media; break;
      case FaultKind::kTornWrite: ++stats_.torn_writes; break;
      case FaultKind::kTransientRead: break;  // filtered above
    }
    return &s;
  }
  return nullptr;
}

const FaultSpec* FaultPlan::match_read(std::uint64_t op_ordinal, Lba lba) {
  for (FaultSpec& s : specs_) {
    if (s.count == 0) continue;
    if (s.kind != FaultKind::kTransientRead && s.kind != FaultKind::kHardMedia)
      continue;
    // Hard media faults only hit reads through an explicit LBA filter;
    // ordinal-scheduled hard faults target the write stream.
    if (s.kind == FaultKind::kHardMedia && s.lba == kAnyLba) continue;
    if (s.at_op != 0 && s.at_op != op_ordinal) continue;
    if (s.lba != kAnyLba && s.lba != lba) continue;
    --s.count;
    if (s.kind == FaultKind::kTransientRead)
      ++stats_.transient_read;
    else
      ++stats_.hard_media;
    return &s;
  }
  return nullptr;
}

}  // namespace bio::flash
