#include "flash/nand.h"

#include <cmath>

namespace bio::flash {

NandArray::NandArray(sim::Simulator& sim, const Geometry& geom,
                     const NandTiming& t, double program_penalty)
    : sim_(sim), geom_(geom), timing_(t) {
  geom_.validate();
  BIO_CHECK(program_penalty >= 0.0);
  program_time_ = static_cast<sim::SimTime>(
      std::llround(static_cast<double>(t.program_page) *
                   (1.0 + program_penalty)));
  chips_.reserve(geom_.chips());
  // A die admits `planes_per_chip` concurrent array operations (multi-plane
  // command support); the per-plane timing is unchanged.
  for (std::uint32_t i = 0; i < geom_.chips(); ++i)
    chips_.push_back(std::make_unique<sim::Semaphore>(
        sim_, static_cast<int>(geom_.planes_per_chip)));
  channels_.reserve(geom_.channels);
  for (std::uint32_t i = 0; i < geom_.channels; ++i)
    channels_.push_back(std::make_unique<sim::Semaphore>(sim_, 1));
  channel_programs_.assign(geom_.channels, 0);
  channel_reads_.assign(geom_.channels, 0);
}

sim::Task NandArray::program(std::uint32_t chip_idx) {
  BIO_CHECK(chip_idx < geom_.chips());
  ++programs_;
  ++channel_programs_[chip_idx % geom_.channels];
  // Move the page over the channel bus, then program the die.
  sim::Semaphore& bus = channel_of(chip_idx);
  co_await bus.acquire();
  co_await sim_.delay(timing_.channel_xfer);
  bus.release();

  sim::Semaphore& die = chip(chip_idx);
  co_await die.acquire();
  co_await sim_.delay(program_time_);
  die.release();
}

sim::Task NandArray::read(std::uint32_t chip_idx) {
  BIO_CHECK(chip_idx < geom_.chips());
  ++reads_;
  ++channel_reads_[chip_idx % geom_.channels];
  sim::Semaphore& die = chip(chip_idx);
  co_await die.acquire();
  co_await sim_.delay(timing_.read_page);
  die.release();

  sim::Semaphore& bus = channel_of(chip_idx);
  co_await bus.acquire();
  co_await sim_.delay(timing_.channel_xfer);
  bus.release();
}

sim::Task NandArray::erase(std::uint32_t chip_idx) {
  BIO_CHECK(chip_idx < geom_.chips());
  ++erases_;
  sim::Semaphore& die = chip(chip_idx);
  co_await die.acquire();
  co_await sim_.delay(timing_.erase_block);
  die.release();
}

}  // namespace bio::flash
