// The barrier-compliant storage device (§3.2).
//
// Commands enter a bounded NCQ; the controller starts every *eligible*
// command concurrently. Eligibility implements the SCSI priority semantics
// the order-preserving dispatch relies on (§3.4):
//   * HEAD_OF_QUEUE commands start immediately.
//   * An ORDERED command starts only after every earlier data command has
//     finished its DMA transfer.
//   * A SIMPLE command starts only after every earlier ORDERED data command
//     has finished its DMA transfer.
//   * FLUSH commands neither wait for nor fence data commands: they snapshot
//     the cache at service time (durability is their only contract), which
//     is what lets Dual-Mode Journaling keep the queue busy while a flush is
//     in flight.
//
// Data lands in the writeback cache in transfer order; barrier writes bump
// the device epoch. The drain policy selected by BarrierMode moves entries
// to the SegmentLog; durable_state() answers "what survives a power cut
// right now", which the crash-consistency tests check against the paper's
// epoch ordering guarantees.
//
// The device exposes one submission *port* per flash channel (blk-mq
// hardware queues). Each port has its own NCQ window and host-side DMA bus,
// so commands on different ports overlap their transfers in simulated time.
// Ordering state stays global: seq numbers, the writeback cache, the device
// epoch and the flush horizon span all ports, and ORDERED/SIMPLE transfer
// fencing compares seq across every port's window — submission-order
// guarantees established by the host survive multi-port dispatch. With all
// traffic on port 0 (single-queue hosts) behavior is bit-identical to the
// former single-window device.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "flash/cache.h"
#include "flash/command.h"
#include "flash/fault.h"
#include "flash/nand.h"
#include "flash/profile.h"
#include "flash/segment_log.h"
#include "flash/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace bio::flash {

class StorageDevice {
 public:
  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t flushes = 0;
    std::uint64_t barrier_writes = 0;
    std::uint64_t blocks_written = 0;
    std::uint64_t busy_rejections = 0;
    std::uint64_t cache_read_hits = 0;
    std::uint64_t faults_injected = 0;
    /// Transient program faults a barrier-mode device recovered internally
    /// (FTL remap + reprogram) instead of surfacing to the host.
    std::uint64_t in_device_retries = 0;
  };

  StorageDevice(sim::Simulator& sim, DeviceProfile profile);

  /// Spawns the controller, drain and GC threads. Call once.
  void start();

  /// Queues a command on port `cmd->port % port_count()`; returns false
  /// (device busy) when that port's NCQ window is full. The dispatcher
  /// retries busy commands after a delay (Fig 6(b)).
  bool try_submit(std::shared_ptr<Command> cmd);

  /// Hardware submission ports (one per flash channel).
  std::uint32_t port_count() const noexcept {
    return static_cast<std::uint32_t>(ports_.size());
  }

  /// Outstanding commands across every port's window.
  std::uint32_t queue_depth() const noexcept {
    std::uint32_t n = 0;
    for (const auto& p : ports_)
      n += static_cast<std::uint32_t>(p->window.size());
    return n;
  }
  /// Per-port NCQ window limit.
  std::uint32_t queue_depth_limit() const noexcept {
    return profile_.queue_depth;
  }

  /// Commands admitted through port `port` since start() (per-channel
  /// pipeline utilisation; the mq perf scenarios assert spread).
  std::uint64_t port_submissions(std::uint32_t port) const {
    BIO_CHECK(port < ports_.size());
    return ports_[port]->submissions;
  }

  const DeviceProfile& profile() const noexcept { return profile_; }
  const Stats& stats() const noexcept { return stats_; }
  SegmentLog& log() noexcept { return log_; }
  WritebackCache& cache() noexcept { return cache_; }
  NandArray& nand() noexcept { return nand_; }

  /// Current device epoch (advanced by barrier writes).
  std::uint64_t current_epoch() const noexcept { return epoch_; }

  // ---- fault injection ----------------------------------------------------
  // The plan is owned by the caller (test/sweep harness) and must outlive
  // the device or be uninstalled first. With no plan installed the IO path
  // pays one null test per command — nothing else changes, keeping the
  // figure benches bit-identical.

  void install_fault_plan(FaultPlan* plan) noexcept { fault_plan_ = plan; }
  bool has_fault_plan() const noexcept { return fault_plan_ != nullptr; }
  const FaultPlan* fault_plan() const noexcept { return fault_plan_; }

  /// Notified on every queue transition (submission, transfer, completion).
  /// A tag-aware host driver waits on this instead of polling when busy.
  sim::Notify& queue_activity() noexcept { return queue_event_; }

  /// Non-destructive crash analysis: the state recovery would reconstruct
  /// if power failed at the current simulated instant.
  std::unordered_map<Lba, Version> durable_state() const;

  /// A captured durable image: the block-level state a power cut at
  /// `captured_at` would leave behind. Versions are the payload identity —
  /// the simulation stores no bytes, so (lba -> version) *is* the disk
  /// content, and higher layers (fs::Recovery) interpret it through their
  /// own content records.
  struct DurableImage {
    std::unordered_map<Lba, Version> blocks;
    sim::SimTime captured_at = 0;
    std::uint64_t epoch = 0;
  };
  DurableImage capture_durable_image() const {
    return DurableImage{durable_state(), sim_.now(), epoch_};
  }

  /// True when every cache entry with order < `through` has been persisted
  /// (non-blocking form of wait_persisted_through; crash analysis and the
  /// journal's checkpoint-release logic use it read-only).
  bool persisted_through(std::uint64_t through) const noexcept;

  // ---- flush horizon ------------------------------------------------------
  // Counters letting a host-side caller reason "did a full cache flush start
  // after instant X and complete?" without issuing one itself. A flush whose
  // entry sequence is > X snapshots the cache after X, so its completion
  // makes everything transferred before X durable. jbd2-style checkpoint
  // tail-advance uses this to piggyback on the flushes fsync traffic already
  // issues instead of adding its own.

  /// Entry sequence of the most recently *started* flush (0 = none yet).
  /// A caller proving durability must therefore require a *strictly
  /// greater* completed entry (flush_horizon() > stamp): a flush with the
  /// same sequence entered before the stamped instant.
  std::uint64_t flush_sequence() const noexcept { return flush_entries_; }
  /// Highest entry sequence among *completed* flushes (0 = none yet).
  std::uint64_t flush_horizon() const noexcept { return flush_horizon_; }

  /// Arrival-ordered transfer history with epoch tags (invariant checks).
  const std::vector<WritebackCache::Entry>& transfer_history() const {
    return cache_.transfer_history();
  }

  // ---- queue-depth instrumentation (Figs 9, 10, 12) ----------------------

  /// Enables recording of a (time, depth) series.
  void enable_qd_trace() noexcept { qd_trace_enabled_ = true; }
  const sim::TimeSeries& qd_trace() const noexcept { return qd_trace_; }
  /// Time-weighted average queue depth since start() (or the last reset).
  double average_queue_depth() const;

  /// Restarts QD accounting (benchmarks call this after their setup phase).
  void reset_qd_accounting();

 private:
  struct Slot {
    std::shared_ptr<Command> cmd;
    bool started = false;
    bool dma_done = false;
  };
  using SlotIter = std::list<Slot>::iterator;

  /// One hardware submission port: an NCQ window plus the channel's
  /// host-side DMA lane. Ports transfer concurrently; ordering decisions
  /// (transfer_eligible) read every port's window by global seq.
  struct Port {
    explicit Port(sim::Simulator& sim) : host_bus(sim, 1) {}
    std::list<Slot> window;
    sim::Semaphore host_bus;
    std::uint64_t submissions = 0;
  };

  bool is_data(const Slot& s) const noexcept {
    return s.cmd->op != OpCode::kFlush;
  }
  bool transfer_eligible(const Slot& slot) const;
  sim::Task wait_transfer_turn(SlotIter it);
  sim::Task controller_loop();
  sim::Task handle(Port& port, SlotIter it);
  sim::Task handle_write(Port& port, SlotIter it);
  sim::Task handle_read(Port& port, SlotIter it);
  sim::Task handle_flush(Port& port, SlotIter it);
  void complete(Port& port, SlotIter it);

  /// Waits until every cache entry with order < `through` is persistent
  /// (mode-aware: PLP short-circuits, transactional forces a batch).
  sim::Task wait_persisted_through(std::uint64_t through);
  sim::Task do_flush();
  /// Stalls while GC erases (profile.gc_command_stall).
  sim::Task gc_stall();

  // Drain policies.
  sim::Task drain_loop_fifo();      // kNone / kInOrderRecovery / PLP
  sim::Task drain_loop_epoch();     // kInOrderWriteback
  sim::Task drain_one(WritebackCache::Entry e, SegmentLog::Reservation r);
  sim::Task transactional_loop();   // kTransactional

  void note_qd_change();

  sim::Simulator& sim_;
  DeviceProfile profile_;
  NandArray nand_;
  SegmentLog log_;
  WritebackCache cache_;

  std::vector<std::unique_ptr<Port>> ports_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t epoch_ = 0;
  // Fault injection: per-class op ordinals advance only while a plan is
  // installed, so a plan installed before start() sees a deterministic
  // stream for a given workload seed.
  FaultPlan* fault_plan_ = nullptr;
  std::uint64_t fault_write_ops_ = 0;
  std::uint64_t fault_read_ops_ = 0;
  sim::Notify queue_event_;
  sim::Semaphore drain_slots_;

  // kInOrderWriteback bookkeeping.
  std::uint64_t epoch_inflight_programs_ = 0;
  sim::Notify epoch_drained_;

  // kTransactional bookkeeping.
  sim::Notify txn_wake_;
  sim::Notify txn_done_;
  std::uint64_t txn_committed_through_ = 0;  // cache order watermark

  // Flush-horizon counters (see accessors above).
  std::uint64_t flush_entries_ = 0;
  std::uint64_t flush_horizon_ = 0;

  Stats stats_;
  bool started_ = false;

  bool qd_trace_enabled_ = false;
  sim::TimeSeries qd_trace_;
  // Always-on time-weighted QD accumulator.
  double qd_area_ = 0.0;
  sim::SimTime qd_last_change_ = 0;
  std::uint32_t qd_current_ = 0;
  sim::SimTime start_time_ = 0;
};

}  // namespace bio::flash
