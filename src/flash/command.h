// The host-visible storage command (§3.2/§3.4).
//
// Lives in its own header so the block layer can embed a Command inside its
// pooled Request objects (the dispatch path hands the device an aliasing
// shared_ptr into the request, so no per-dispatch allocation happens) while
// flash/device.h stays independent of blk/.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "flash/types.h"

namespace bio::sim {
class Event;
}  // namespace bio::sim

namespace bio::flash {

/// One storage command (the block layer builds these from requests).
struct Command {
  OpCode op = OpCode::kWrite;
  Priority priority = Priority::kSimple;
  /// Cache-barrier flag on a write (REQ_BARRIER made it to the device).
  bool barrier = false;
  /// Persist the payload before completing (REQ_FUA).
  bool fua = false;
  /// Flush the cache before servicing (REQ_FLUSH).
  bool flush_before = false;
  /// Write payload: (lba, version) per 4 KiB block. Reads use lba/blocks=1.
  /// Non-owning view; the submitter keeps the storage alive until the
  /// completion IRQ (the block layer aliases the owning request).
  std::span<const std::pair<Lba, Version>> blocks;
  Lba read_lba = 0;

  /// Completion IRQ to the host. Must outlive the command.
  sim::Event* done = nullptr;

  /// Hardware submission port (channel-affine dispatch queue) this command
  /// enters the device through. The block layer maps its software queue onto
  /// a port; a retry resubmits the same command and therefore stays on the
  /// faulting channel's pipeline.
  std::uint32_t port = 0;

  /// Cross-queue ordering epoch (multi-queue block layer). Transfer fencing
  /// compares (fence_epoch, seq) lexicographically, so commands submitted
  /// out of epoch order across ports still transfer in epoch order. Single
  /// queue leaves every command at epoch 0, collapsing the comparison to
  /// the classic seq order.
  std::uint64_t fence_epoch = 0;

  // Filled by the device.
  /// Completion status, valid once `done` fires. A torn write lands its
  /// leading blocks and reports kTransientError; the retry re-lands the
  /// full payload.
  IoStatus status = IoStatus::kOk;
  std::uint64_t seq = 0;
  /// Cache order watermark just past this write's transferred blocks (0 =
  /// never transferred). StorageDevice::persisted_through(persist_through)
  /// answers "is this write's payload on media"; the filesystem's
  /// already-committed fsync barrier uses it.
  std::uint64_t persist_through = 0;
};

}  // namespace bio::flash
