#include "flash/cache.h"

namespace bio::flash {

sim::Task WritebackCache::insert(Lba lba, Version version, std::uint64_t epoch,
                                 bool barrier) {
  co_await space_.acquire();
  Entry e;
  e.lba = lba;
  e.version = version;
  e.epoch = epoch;
  e.order = next_order_++;
  e.barrier = barrier;
  pending_.push_back(e);
  undrained_.insert(e.order);
  newest_dirty_[lba] = {e.order, version};
  order_to_lba_[e.order] = lba;
  history_.push_back(e);
  drain_ready_.notify_all();
}

sim::Task WritebackCache::claim_next(Entry& out) {
  while (pending_.empty()) co_await drain_ready_.wait();
  out = pending_.front();
  pending_.pop_front();
}

void WritebackCache::mark_drained(std::uint64_t order) {
  auto it = undrained_.find(order);
  BIO_CHECK_MSG(it != undrained_.end(), "mark_drained on unknown order");
  undrained_.erase(it);
  auto lba_it = order_to_lba_.find(order);
  BIO_CHECK(lba_it != order_to_lba_.end());
  auto newest = newest_dirty_.find(lba_it->second);
  if (newest != newest_dirty_.end() && newest->second.first == order)
    newest_dirty_.erase(newest);
  order_to_lba_.erase(lba_it);
  space_.release();
  drained_.notify_all();
}

sim::Task WritebackCache::wait_drained_through(std::uint64_t through) {
  while (!drained_through(through)) co_await drained_.wait();
}

std::optional<Version> WritebackCache::lookup(Lba lba) const {
  auto it = newest_dirty_.find(lba);
  if (it == newest_dirty_.end()) return std::nullopt;
  return it->second.second;
}

std::vector<WritebackCache::Entry> WritebackCache::undrained_entries() const {
  std::vector<Entry> out;
  out.reserve(undrained_.size());
  // history_ is in arrival order; filter to the undrained set.
  for (const Entry& e : history_)
    if (undrained_.contains(e.order)) out.push_back(e);
  return out;
}

}  // namespace bio::flash
