// Physical organisation and timing of the simulated NAND array.
#pragma once

#include <cstdint>

#include "sim/check.h"
#include "sim/time.h"

namespace bio::flash {

/// NAND array organisation. Each chip (die) programs one page at a time;
/// chips on one channel share the channel bus for data transfer. A flash
/// page holds exactly one 4 KiB host block (entry), so aggregate program
/// bandwidth = channels × ways × 4 KiB / t_prog.
struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t ways_per_channel = 8;
  std::uint32_t blocks_per_chip = 256;
  std::uint32_t pages_per_block = 64;
  /// Planes per die: concurrent page programs/reads one chip sustains
  /// (multi-plane operation). Models concurrency only — capacity semantics
  /// (pages_per_segment et al.) deliberately stay per-die so the FTL's
  /// segment layout is plane-agnostic, like a striping FTL that treats the
  /// planes of one die as one logical page queue.
  std::uint32_t planes_per_chip = 1;

  std::uint32_t chips() const noexcept { return channels * ways_per_channel; }

  /// Pages in one striped "superblock" (one erase block from every chip):
  /// the FTL's segment.
  std::uint64_t pages_per_segment() const noexcept {
    return static_cast<std::uint64_t>(chips()) * pages_per_block;
  }

  std::uint64_t segments() const noexcept { return blocks_per_chip; }

  std::uint64_t physical_pages() const noexcept {
    return pages_per_segment() * segments();
  }

  void validate() const {
    BIO_CHECK(channels > 0);
    BIO_CHECK(ways_per_channel > 0);
    BIO_CHECK(blocks_per_chip >= 4);
    BIO_CHECK(pages_per_block > 0);
    BIO_CHECK(planes_per_chip > 0);
  }
};

/// NAND and interconnect timing parameters.
struct NandTiming {
  sim::SimTime read_page = 60'000;        // tR
  sim::SimTime program_page = 900'000;    // tPROG
  sim::SimTime erase_block = 3'500'000;   // tBERS
  sim::SimTime channel_xfer = 10'000;     // bus time to move a page to a die
};

}  // namespace bio::flash
