#include "flash/device.h"

#include <algorithm>

namespace bio::flash {

StorageDevice::StorageDevice(sim::Simulator& sim, DeviceProfile profile)
    : sim_(sim),
      profile_(std::move(profile)),
      nand_(sim, profile_.geometry, profile_.nand,
            profile_.barrier_mode != BarrierMode::kNone && !profile_.plp
                ? profile_.barrier_program_penalty
                : 0.0),
      log_(sim, nand_),
      cache_(sim, profile_.cache_entries),
      queue_event_(sim),
      drain_slots_(sim, profile_.effective_drain_inflight()),
      epoch_drained_(sim),
      txn_wake_(sim),
      txn_done_(sim) {
  // One submission port per flash channel (blk-mq hardware queues).
  ports_.reserve(profile_.geometry.channels);
  for (std::uint32_t i = 0; i < profile_.geometry.channels; ++i)
    ports_.push_back(std::make_unique<Port>(sim_));
}

void StorageDevice::start() {
  BIO_CHECK(!started_);
  started_ = true;
  start_time_ = sim_.now();
  qd_last_change_ = sim_.now();
  log_.start();
  // Device-internal actors are hardware: no host scheduler wake latency.
  sim_.spawn("dev:ctl", controller_loop()).wake_latency = 0;
  switch (profile_.barrier_mode) {
    case BarrierMode::kInOrderWriteback:
      sim_.spawn("dev:drain", drain_loop_epoch()).wake_latency = 0;
      break;
    case BarrierMode::kTransactional:
      sim_.spawn("dev:txn", transactional_loop()).wake_latency = 0;
      break;
    case BarrierMode::kNone:
    case BarrierMode::kInOrderRecovery:
      sim_.spawn("dev:drain", drain_loop_fifo()).wake_latency = 0;
      break;
  }
  // PLP devices also drain in the background (the cache is durable, but
  // its capacity is finite), regardless of barrier mode.
}

bool StorageDevice::try_submit(std::shared_ptr<Command> cmd) {
  BIO_CHECK_MSG(started_, "StorageDevice::start() not called");
  BIO_CHECK_MSG(cmd->done != nullptr, "command without completion event");
  Port& port = *ports_[cmd->port % ports_.size()];
  if (port.window.size() >= profile_.queue_depth) {
    ++stats_.busy_rejections;
    return false;
  }
  cmd->seq = next_seq_++;
  ++port.submissions;
  port.window.push_back(Slot{std::move(cmd), false, false});
  note_qd_change();
  queue_event_.notify_all();
  return true;
}

namespace {

/// Transfer-fence precedence: epoch-major, seq-minor. Multi-queue hosts can
/// submit commands out of epoch order across ports; a lower fence epoch
/// always transfers first regardless of seq. Fenced hosts stamp EVERY
/// command (reads and orderless writes included) with its enqueue-time
/// epoch, so epoch-major order agrees with enqueue order and no command
/// jumps the fence with a stale epoch-0 stamp. Single-queue hosts stamp
/// every command epoch 0, collapsing this to the classic seq comparison.
bool precedes(const Command& a, const Command& b) {
  return a.fence_epoch != b.fence_epoch ? a.fence_epoch < b.fence_epoch
                                        : a.seq < b.seq;
}

}  // namespace

bool StorageDevice::transfer_eligible(const Slot& slot) const {
  // §3.4: the command *processing* overlaps freely; only the order of the
  // data transfers is fenced by ORDERED priorities. "Earlier" means lower
  // (fence_epoch, seq), across every port's window — ports parallelise
  // transfers, not the ordering contract.
  const Command& cmd = *slot.cmd;
  if (cmd.priority == Priority::kHeadOfQueue) return true;
  if (cmd.op == OpCode::kFlush) return true;  // flushes never wait for data
  if (cmd.priority == Priority::kOrdered) {
    // Every earlier data command must have transferred.
    for (const auto& port : ports_)
      for (const Slot& p : port->window)
        if (precedes(*p.cmd, cmd) && is_data(p) && !p.dma_done) return false;
    return true;
  }
  // SIMPLE: fenced only by earlier ORDERED data commands.
  for (const auto& port : ports_)
    for (const Slot& p : port->window)
      if (precedes(*p.cmd, cmd) && is_data(p) &&
          p.cmd->priority == Priority::kOrdered && !p.dma_done)
        return false;
  return true;
}

sim::Task StorageDevice::wait_transfer_turn(SlotIter it) {
  while (!transfer_eligible(*it)) co_await queue_event_.wait();
}

sim::Task StorageDevice::controller_loop() {
  for (;;) {
    for (auto& port : ports_) {
      for (auto it = port->window.begin(); it != port->window.end(); ++it) {
        if (!it->started) {
          it->started = true;
          // iolint: detached-owner(ports_ live on the device, which outlives
          // every command handler; complete() erases only this handler's
          // own slot)
          sim_.spawn("dev:cmd", handle(*port, it)).wake_latency = 0;
        }
      }
    }
    co_await queue_event_.wait();
  }
}

sim::Task StorageDevice::handle(Port& port, SlotIter it) {
  switch (it->cmd->op) {
    case OpCode::kWrite:
      co_await handle_write(port, it);
      break;
    case OpCode::kRead:
      co_await handle_read(port, it);
      break;
    case OpCode::kFlush:
      co_await handle_flush(port, it);
      break;
  }
}

void StorageDevice::complete(Port& port, SlotIter it) {
  // Keep the command (and, through the aliased ownership, the originating
  // request) alive past the window erase: `done` points into that request.
  std::shared_ptr<Command> cmd = std::move(it->cmd);
  port.window.erase(it);
  note_qd_change();
  queue_event_.notify_all();
  cmd->done->trigger();
}

sim::Task StorageDevice::gc_stall() {
  if (!profile_.gc_command_stall) co_return;
  while (log_.erasing()) co_await log_.erase_done().wait();
}

sim::Task StorageDevice::handle_write(Port& port, SlotIter it) {
  std::shared_ptr<Command> cmd = it->cmd;
  co_await gc_stall();
  co_await sim_.delay(profile_.cmd_overhead);
  if (cmd->flush_before) co_await do_flush();

  co_await wait_transfer_turn(it);
  co_await port.host_bus.acquire();
  co_await sim_.delay(profile_.dma_4k *
                      static_cast<sim::SimTime>(cmd->blocks.size()));
  // Fault injection decides how much of the payload lands. A transient
  // program failure lands nothing; a torn write lands its leading blocks;
  // timing (bus, DMA) is identical either way.
  const FaultSpec* fault =
      fault_plan_ == nullptr
          ? nullptr
          : fault_plan_->match_write(++fault_write_ops_, cmd->blocks);
  std::size_t land = cmd->blocks.size();
  if (fault != nullptr && fault->kind != FaultKind::kHardMedia &&
      profile_.barrier_mode != BarrierMode::kNone) {
    // A barrier-enabled device absorbs transient program failures (and
    // tears) in its own FTL: remap + reprogram, charged one extra tPROG.
    // Surfacing the error would void the ordering contract the device
    // sells — the host-side retry re-enters a *later* epoch, so a commit
    // record behind the failed write could drain first and recovery would
    // replay it over a stale descriptor chain (DESIGN.md §11). Hard media
    // errors still fail through: reprogramming cannot fix them.
    ++stats_.faults_injected;
    ++stats_.in_device_retries;
    co_await sim_.delay(profile_.nand.program_page);
    fault = nullptr;
  } else if (fault != nullptr) {
    ++stats_.faults_injected;
    cmd->status = fault->kind == FaultKind::kHardMedia
                      ? IoStatus::kHardError
                      : IoStatus::kTransientError;
    land = fault->kind == FaultKind::kTornWrite
               ? std::min<std::size_t>(fault->torn_keep, land)
               : 0;
    // A barrier write that hard-fails is rejected atomically: admitting a
    // torn prefix of an epoch-delimiting write would let the *next* epoch
    // persist over the hole (the stale blocks never entered the cache, so
    // in-order drain cannot fence on them) — a durable commit record over
    // a torn descriptor chain, which non-checksummed journals cannot
    // detect at recovery (DESIGN.md §11).
    if (cmd->barrier && profile_.barrier_mode != BarrierMode::kNone) land = 0;
  }
  // A failed write never closes an epoch: the barrier tag travels on the
  // last block, which did not land (or landed without the device's
  // completion promise).
  const bool honor_barrier = fault == nullptr && cmd->barrier &&
                             profile_.barrier_mode != BarrierMode::kNone;
  for (std::size_t i = 0; i < land; ++i) {
    const bool last = i + 1 == cmd->blocks.size();
    co_await cache_.insert(cmd->blocks[i].first, cmd->blocks[i].second,
                           epoch_, honor_barrier && last);
  }
  port.host_bus.release();
  const std::uint64_t through = cache_.next_order();
  cmd->persist_through = land > 0 ? through : 0;
  if (honor_barrier) ++epoch_;
  if (cmd->barrier && fault == nullptr) ++stats_.barrier_writes;
  it->dma_done = true;
  queue_event_.notify_all();

  if (profile_.barrier_mode == BarrierMode::kTransactional) {
    // Nudge the batch committer under cache pressure.
    if (cache_.dirty_count() * 4 >= cache_.capacity() * 3)
      txn_wake_.notify_all();
  }
  if (cmd->fua && fault == nullptr) {
    if (profile_.fua_implies_flush && !profile_.plp)
      co_await do_flush();  // SATA-style FUA: write + full flush
    else
      co_await wait_persisted_through(through);
  }

  ++stats_.writes;
  stats_.blocks_written += land;
  complete(port, it);
}

sim::Task StorageDevice::handle_read(Port& port, SlotIter it) {
  std::shared_ptr<Command> cmd = it->cmd;
  co_await sim_.delay(profile_.cmd_overhead);
  if (fault_plan_ != nullptr) {
    const FaultSpec* fault =
        fault_plan_->match_read(++fault_read_ops_, cmd->read_lba);
    if (fault != nullptr) {
      ++stats_.faults_injected;
      cmd->status = fault->kind == FaultKind::kHardMedia
                        ? IoStatus::kHardError
                        : IoStatus::kTransientError;
    }
  }
  if (cache_.lookup(cmd->read_lba).has_value()) {
    ++stats_.cache_read_hits;
    co_await sim_.delay(profile_.read_hit_latency);
  } else {
    co_await log_.read(cmd->read_lba);
  }
  co_await wait_transfer_turn(it);
  co_await port.host_bus.acquire();
  co_await sim_.delay(profile_.dma_4k);
  port.host_bus.release();
  it->dma_done = true;
  queue_event_.notify_all();
  ++stats_.reads;
  complete(port, it);
}

sim::Task StorageDevice::handle_flush(Port& port, SlotIter it) {
  co_await gc_stall();
  co_await sim_.delay(profile_.cmd_overhead);
  co_await do_flush();
  it->dma_done = true;
  ++stats_.flushes;
  complete(port, it);
}

sim::Task StorageDevice::do_flush() {
  const std::uint64_t seq = ++flush_entries_;
  co_await sim_.delay(profile_.flush_overhead);
  if (profile_.plp) {
    // Power-safe cache: a flush only acknowledges.
    co_await sim_.delay(profile_.plp_flush_latency);
    flush_horizon_ = std::max(flush_horizon_, seq);
    co_return;
  }
  co_await wait_persisted_through(cache_.next_order());
  flush_horizon_ = std::max(flush_horizon_, seq);
}

bool StorageDevice::persisted_through(std::uint64_t through) const noexcept {
  if (profile_.plp) return true;
  if (profile_.barrier_mode == BarrierMode::kTransactional)
    return txn_committed_through_ >= through;
  return cache_.drained_through(through);
}

sim::Task StorageDevice::wait_persisted_through(std::uint64_t through) {
  if (profile_.plp) co_return;  // durable on arrival
  if (profile_.barrier_mode == BarrierMode::kTransactional) {
    while (txn_committed_through_ < through) {
      txn_wake_.notify_all();
      co_await txn_done_.wait();
    }
    co_return;
  }
  co_await cache_.wait_drained_through(through);
}

// ---- drain policies -------------------------------------------------------

sim::Task StorageDevice::drain_loop_fifo() {
  for (;;) {
    WritebackCache::Entry e;
    co_await cache_.claim_next(e);
    SegmentLog::Reservation r;
    // Sequential reservation: log order == transfer order, which is what
    // in-order recovery truncation relies on.
    co_await log_.reserve(e.lba, e.version, r);
    co_await drain_slots_.acquire();
    sim_.spawn("dev:pgm", drain_one(e, r)).wake_latency = 0;
  }
}

sim::Task StorageDevice::drain_loop_epoch() {
  std::uint64_t draining_epoch = 0;
  for (;;) {
    WritebackCache::Entry e;
    co_await cache_.claim_next(e);
    if (e.epoch != draining_epoch) {
      // Epoch boundary: wait for all in-flight programs of the previous
      // epoch before issuing the first page of the next one.
      while (epoch_inflight_programs_ > 0) co_await epoch_drained_.wait();
      draining_epoch = e.epoch;
    }
    SegmentLog::Reservation r;
    co_await log_.reserve(e.lba, e.version, r);
    co_await drain_slots_.acquire();
    ++epoch_inflight_programs_;
    sim_.spawn("dev:pgm", drain_one(e, r)).wake_latency = 0;
  }
}

sim::Task StorageDevice::drain_one(WritebackCache::Entry e,
                                   SegmentLog::Reservation r) {
  co_await log_.program_reserved(r);
  cache_.mark_drained(e.order);
  drain_slots_.release();
  if (profile_.barrier_mode == BarrierMode::kInOrderWriteback) {
    BIO_CHECK(epoch_inflight_programs_ > 0);
    if (--epoch_inflight_programs_ == 0) epoch_drained_.notify_all();
  }
}

sim::Task StorageDevice::transactional_loop() {
  for (;;) {
    co_await txn_wake_.wait();
    while (cache_.dirty_count() > 0) {
      // Snapshot the batch: everything currently transferred.
      std::vector<WritebackCache::Entry> batch;
      {
        WritebackCache::Entry e;
        while (cache_.dirty_count() > batch.size()) {
          co_await cache_.claim_next(e);
          batch.push_back(e);
        }
      }
      std::vector<SegmentLog::Reservation> rs(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i)
        co_await log_.reserve(batch[i].lba, batch[i].version, rs[i]);
      std::vector<sim::ThreadCtx*> workers;
      workers.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i)
        {
        sim::ThreadCtx& w = sim_.spawn("dev:pgm", log_.program_reserved(rs[i]));
        w.wake_latency = 0;
        workers.push_back(&w);
      }
      for (sim::ThreadCtx* w : workers) co_await sim_.join(*w);
      // The batch becomes durable atomically at the commit point.
      log_.mark_commit_point();
      std::uint64_t high = 0;
      for (const auto& e : batch) {
        cache_.mark_drained(e.order);
        high = std::max(high, e.order + 1);
      }
      txn_committed_through_ = std::max(txn_committed_through_, high);
      txn_done_.notify_all();
    }
  }
}

// ---- analysis --------------------------------------------------------------

std::unordered_map<Lba, Version> StorageDevice::durable_state() const {
  if (profile_.plp) {
    // The cache survives power loss: programmed pages overlaid with every
    // still-cached entry, in transfer order.
    auto state = log_.durable_programmed_set();
    for (const auto& e : cache_.undrained_entries())
      state[e.lba] = e.version;
    return state;
  }
  switch (profile_.barrier_mode) {
    case BarrierMode::kInOrderRecovery:
      return log_.durable_in_order_recovery();
    case BarrierMode::kTransactional:
      return log_.durable_committed();
    case BarrierMode::kInOrderWriteback:
    case BarrierMode::kNone:
      return log_.durable_programmed_set();
  }
  return {};
}

void StorageDevice::note_qd_change() {
  const sim::SimTime now = sim_.now();
  qd_area_ += static_cast<double>(qd_current_) *
              static_cast<double>(now - qd_last_change_);
  qd_last_change_ = now;
  qd_current_ = queue_depth();
  if (qd_trace_enabled_)
    qd_trace_.record(now, static_cast<double>(qd_current_));
}

void StorageDevice::reset_qd_accounting() {
  qd_area_ = 0.0;
  qd_last_change_ = sim_.now();
  start_time_ = sim_.now();
  qd_trace_.clear();
}

double StorageDevice::average_queue_depth() const {
  const sim::SimTime now = sim_.now();
  const double area = qd_area_ + static_cast<double>(qd_current_) *
                                     static_cast<double>(now - qd_last_change_);
  const sim::SimTime span = now - start_time_;
  return span == 0 ? 0.0 : area / static_cast<double>(span);
}

}  // namespace bio::flash
