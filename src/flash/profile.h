// Named device profiles matching the paper's test hardware (§6.1, Fig 1).
//
// Absolute timings are calibrated so that *relative* behaviour matches the
// paper: the ordered/buffered IOPS ratio falls with parallelism (Fig 1),
// barrier writes keep the queue full (Figs 9/10), and supercap devices see
// near-free flushes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flash/geometry.h"
#include "flash/types.h"
#include "sim/time.h"

namespace bio::flash {

struct DeviceProfile {
  std::string name = "plain-ssd";
  Geometry geometry;
  NandTiming nand;

  /// NCQ depth (QD in the paper: UFS 16, SATA 32).
  std::uint32_t queue_depth = 32;
  /// Writeback cache capacity in 4 KiB entries.
  std::size_t cache_entries = 1024;
  /// Power-loss protection (supercapacitor): the cache itself is durable.
  bool plp = false;
  /// How the device honours barrier writes. kNone = legacy device.
  BarrierMode barrier_mode = BarrierMode::kNone;
  /// tPROG penalty applied when barrier support is enabled (the paper
  /// charges 5% on plain-SSD to simulate barrier overhead).
  double barrier_program_penalty = 0.0;

  /// Controller per-command processing latency.
  sim::SimTime cmd_overhead = 5'000;
  /// Host-interface DMA time per 4 KiB block.
  sim::SimTime dma_4k = 7'000;
  /// Flush command round-trip overhead (excluding the drain itself).
  sim::SimTime flush_overhead = 30'000;
  /// Flush service time on a PLP device (tε in Fig 8).
  sim::SimTime plp_flush_latency = 25'000;
  /// Serving a read from the writeback cache.
  sim::SimTime read_hit_latency = 10'000;
  /// True if the device implements FUA as write-then-full-flush (common on
  /// SATA); false for native FUA (UFS command set, NVMe).
  bool fua_implies_flush = false;
  /// If true, host commands stall while GC erases a segment — the classic
  /// GC pause that produces 99.99th-percentile latency tails (Table 1).
  bool gc_command_stall = true;
  /// Max concurrent cache->flash programs (0 = 2 × chips).
  std::uint32_t drain_inflight = 0;

  std::uint32_t effective_drain_inflight() const noexcept {
    return drain_inflight != 0 ? drain_inflight : 2 * geometry.chips();
  }

  /// Applies the barrier capability the experiment wants: enables the given
  /// mode and (for non-PLP devices) the program penalty.
  DeviceProfile with_barrier(BarrierMode mode) const;

  // ---- the paper's devices ----------------------------------------------

  /// Galaxy S6 UFS 2.0: single channel, QD 16 (the device where the
  /// authors actually implemented barrier firmware).
  static DeviceProfile ufs();
  /// 850 PRO class SATA 3.0 SSD: 8 channels, QD 32, TLC-style slow program.
  static DeviceProfile plain_ssd();
  /// 843TN class SATA 3.0 SSD with supercap PLP.
  static DeviceProfile supercap_ssd();

  // ---- additional Fig 1 points ------------------------------------------

  static DeviceProfile emmc();             // A: mobile eMMC 5.0
  static DeviceProfile nvme_ssd();         // D: server NVMe
  static DeviceProfile pcie_ssd();         // F: server PCIe
  static DeviceProfile flash_array();      // G: 32-channel flash array
  static DeviceProfile hdd();              // rotating-media reference

  /// All Fig 1 profiles (A..G) in increasing-parallelism order.
  static std::vector<DeviceProfile> fig1_devices();
};

}  // namespace bio::flash
