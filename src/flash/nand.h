// Timing model of the NAND array: chips busy on program/read/erase,
// channel buses serialising page transfers to dies.
#pragma once

#include <memory>
#include <vector>

#include "flash/geometry.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace bio::flash {

/// The NAND array. Operations occupy a chip for their duration; page data
/// movement additionally occupies the chip's channel. All methods are
/// awaitable tasks (they advance simulated time).
class NandArray {
 public:
  NandArray(sim::Simulator& sim, const Geometry& geom, const NandTiming& t,
            double program_penalty = 0.0);

  /// Programs one page on `chip`. Occupies the channel for the transfer,
  /// then the chip for tPROG (scaled by the program penalty).
  sim::Task program(std::uint32_t chip);

  /// Reads one page from `chip` (tR on the chip, then channel transfer out).
  sim::Task read(std::uint32_t chip);

  /// Erases one block on `chip` (tBERS).
  sim::Task erase(std::uint32_t chip);

  std::uint32_t chip_count() const noexcept { return geom_.chips(); }

  std::uint64_t programs_issued() const noexcept { return programs_; }
  std::uint64_t reads_issued() const noexcept { return reads_; }
  std::uint64_t erases_issued() const noexcept { return erases_; }

  /// Per-channel operation counters (programs + reads routed through the
  /// channel's bus). Index = channel.
  std::uint64_t channel_programs(std::uint32_t channel) const {
    BIO_CHECK(channel < geom_.channels);
    return channel_programs_[channel];
  }
  std::uint64_t channel_reads(std::uint32_t channel) const {
    BIO_CHECK(channel < geom_.channels);
    return channel_reads_[channel];
  }

  const Geometry& geometry() const noexcept { return geom_; }

 private:
  sim::Semaphore& chip(std::uint32_t c) { return *chips_[c]; }
  sim::Semaphore& channel_of(std::uint32_t c) {
    return *channels_[c % geom_.channels];
  }

  sim::Simulator& sim_;
  Geometry geom_;
  NandTiming timing_;
  sim::SimTime program_time_;  // tPROG after barrier penalty
  std::vector<std::unique_ptr<sim::Semaphore>> chips_;
  std::vector<std::unique_ptr<sim::Semaphore>> channels_;
  std::uint64_t programs_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t erases_ = 0;
  std::vector<std::uint64_t> channel_programs_;
  std::vector<std::uint64_t> channel_reads_;
};

}  // namespace bio::flash
