#include "flash/profile.h"

namespace bio::flash {

using namespace bio::sim::literals;

DeviceProfile DeviceProfile::with_barrier(BarrierMode mode) const {
  DeviceProfile p = *this;
  p.barrier_mode = mode;
  return p;
}

DeviceProfile DeviceProfile::ufs() {
  DeviceProfile p;
  p.name = "UFS";
  p.geometry = Geometry{.channels = 1,
                        .ways_per_channel = 8,
                        .blocks_per_chip = 128,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 50_us,
                      .program_page = 250_us,
                      .erase_block = 3'000_us,
                      .channel_xfer = 8_us};
  p.queue_depth = 16;
  p.cache_entries = 512;
  p.plp = false;
  p.barrier_mode = BarrierMode::kNone;  // experiments opt in via with_barrier
  p.barrier_program_penalty = 0.0;      // real firmware support: free
  p.cmd_overhead = 35_us;
  p.dma_4k = 25_us;
  p.flush_overhead = 80_us;
  p.read_hit_latency = 15_us;
  p.fua_implies_flush = true;  // mobile stacks emulate FUA as write+flush
  return p;
}

DeviceProfile DeviceProfile::plain_ssd() {
  DeviceProfile p;
  p.name = "plain-SSD";
  p.geometry = Geometry{.channels = 8,
                        .ways_per_channel = 2,
                        .blocks_per_chip = 128,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 60_us,
                      .program_page = 350_us,
                      .erase_block = 3'500_us,
                      .channel_xfer = 6_us};
  p.queue_depth = 32;
  p.cache_entries = 4096;
  p.plp = false;
  p.barrier_mode = BarrierMode::kNone;
  // §6.1: barrier support on this device is simulated at a 5% penalty.
  p.barrier_program_penalty = 0.05;
  p.cmd_overhead = 5_us;
  p.dma_4k = 7_us;
  // TLC-class SATA SSD: flush dumps controller state, costing milliseconds.
  p.flush_overhead = 2'200_us;
  p.read_hit_latency = 8_us;
  p.fua_implies_flush = true;  // SATA: FUA emulated as write + flush
  return p;
}

DeviceProfile DeviceProfile::supercap_ssd() {
  DeviceProfile p;
  p.name = "supercap-SSD";
  p.geometry = Geometry{.channels = 8,
                        .ways_per_channel = 3,
                        .blocks_per_chip = 128,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 60_us,
                      .program_page = 450_us,
                      .erase_block = 3'500_us,
                      .channel_xfer = 6_us};
  p.queue_depth = 32;
  p.cache_entries = 4096;
  p.plp = true;  // supercap: the writeback cache is power-safe
  p.barrier_mode = BarrierMode::kNone;
  p.barrier_program_penalty = 0.0;  // PLP makes barrier support trivial
  p.cmd_overhead = 5_us;
  p.dma_4k = 7_us;
  p.flush_overhead = 15_us;
  p.plp_flush_latency = 20_us;
  p.read_hit_latency = 8_us;
  return p;
}

DeviceProfile DeviceProfile::emmc() {
  DeviceProfile p;
  p.name = "eMMC";
  p.geometry = Geometry{.channels = 1,
                        .ways_per_channel = 2,
                        .blocks_per_chip = 128,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 80_us,
                      .program_page = 700_us,
                      .erase_block = 4'000_us,
                      .channel_xfer = 20_us};
  p.queue_depth = 16;
  p.cache_entries = 256;
  p.cmd_overhead = 60_us;
  p.dma_4k = 45_us;
  p.flush_overhead = 120_us;
  p.read_hit_latency = 30_us;
  p.fua_implies_flush = true;
  return p;
}

DeviceProfile DeviceProfile::nvme_ssd() {
  DeviceProfile p;
  p.name = "NVMe";
  p.geometry = Geometry{.channels = 16,
                        .ways_per_channel = 4,
                        .blocks_per_chip = 64,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 60_us,
                      .program_page = 350_us,
                      .erase_block = 3'500_us,
                      .channel_xfer = 4_us};
  p.queue_depth = 128;
  p.cache_entries = 8192;
  p.cmd_overhead = 2_us;
  p.dma_4k = 3_us;
  p.flush_overhead = 600_us;
  p.read_hit_latency = 4_us;
  return p;
}

DeviceProfile DeviceProfile::pcie_ssd() {
  DeviceProfile p = nvme_ssd();
  p.name = "PCIe";
  p.geometry.channels = 24;
  p.geometry.blocks_per_chip = 48;
  p.flush_overhead = 500_us;
  return p;
}

DeviceProfile DeviceProfile::flash_array() {
  DeviceProfile p;
  p.name = "Flash-array";
  p.geometry = Geometry{.channels = 32,
                        .ways_per_channel = 4,
                        .blocks_per_chip = 32,
                        .pages_per_block = 64};
  p.nand = NandTiming{.read_page = 60_us,
                      .program_page = 400_us,
                      .erase_block = 3'500_us,
                      .channel_xfer = 4_us};
  p.queue_depth = 128;
  p.cache_entries = 16384;
  p.cmd_overhead = 2_us;
  p.dma_4k = 2_us;
  p.flush_overhead = 500_us;
  p.read_hit_latency = 4_us;
  return p;
}

DeviceProfile DeviceProfile::hdd() {
  DeviceProfile p;
  p.name = "HDD";
  // Crude rotating-media stand-in: one "chip" whose page program models an
  // average positioned write. Only used for the Fig 1 reference point.
  p.geometry = Geometry{.channels = 1,
                        .ways_per_channel = 1,
                        .blocks_per_chip = 512,
                        .pages_per_block = 128};
  p.nand = NandTiming{.read_page = 1'500_us,
                      .program_page = 1'500_us,
                      .erase_block = 1_us,
                      .channel_xfer = 10_us};
  p.queue_depth = 32;
  p.cache_entries = 1024;
  p.cmd_overhead = 30_us;
  p.dma_4k = 20_us;
  p.flush_overhead = 100_us;
  p.read_hit_latency = 20_us;
  p.fua_implies_flush = true;
  return p;
}

std::vector<DeviceProfile> DeviceProfile::fig1_devices() {
  return {emmc(),         ufs(),      plain_ssd(), nvme_ssd(),
          supercap_ssd(), pcie_ssd(), flash_array()};
}

const char* to_string(BarrierMode m) noexcept {
  switch (m) {
    case BarrierMode::kNone: return "none";
    case BarrierMode::kInOrderWriteback: return "in-order-writeback";
    case BarrierMode::kTransactional: return "transactional";
    case BarrierMode::kInOrderRecovery: return "in-order-recovery";
  }
  return "?";
}

const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kSimple: return "simple";
    case Priority::kOrdered: return "ordered";
    case Priority::kHeadOfQueue: return "head-of-queue";
  }
  return "?";
}

const char* to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::kWrite: return "write";
    case OpCode::kRead: return "read";
    case OpCode::kFlush: return "flush";
  }
  return "?";
}

const char* to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kTransientError: return "transient-error";
    case IoStatus::kHardError: return "hard-error";
  }
  return "?";
}

}  // namespace bio::flash
