// flash::FaultPlan — deterministic, seed-driven device fault schedule.
//
// A plan is a list of FaultSpecs matched against the device's per-class op
// ordinals (writes and reads count separately, retries included) and the
// LBAs a command touches. The device consults the plan at the moment a
// command would land its payload; a matching spec decides the command's
// completion IoStatus and, for torn writes, how many leading blocks of the
// multi-block payload actually reach the writeback cache.
//
// Fault classes model how real flash fails (ISSUE 7 / PAPERS.md
// §reliability):
//   * kTransientProgram / kTransientRead — soft failures that a host-side
//     retry of the same command will clear (the spec is spent once fired).
//   * kHardMedia — a media error; retrying cannot help, the block layer
//     fails through immediately.
//   * kTornWrite — the first `torn_keep` blocks of a multi-block write
//     land, the rest do not, and the command reports a transient error.
//     A successful retry re-lands the full payload (versions are content
//     identity, so the overlap is idempotent); a crash before the retry
//     leaves the torn prefix on media — the case the fault crash sweep's
//     "never replays as committed" oracle fact exists for.
//
// Ordinals are counted only while a plan is installed, so a plan installed
// before StorageDevice::start() sees a deterministic op stream for a given
// workload seed. With no plan installed the device hot path pays exactly
// one null-pointer test per command.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "flash/types.h"

namespace bio::flash {

/// FaultSpec::lba wildcard: match any LBA the command touches.
inline constexpr Lba kAnyLba = ~Lba{0};

enum class FaultKind : std::uint8_t {
  kTransientProgram,
  kTransientRead,
  kHardMedia,
  kTornWrite,
};

const char* to_string(FaultKind k) noexcept;

struct FaultSpec {
  FaultKind kind = FaultKind::kTransientProgram;
  /// Per-class device op ordinal this spec fires at (1-based, retries
  /// included). 0 = any ordinal; combine with an `lba` filter.
  std::uint64_t at_op = 0;
  /// Only fire when the command touches this LBA (kAnyLba = no filter).
  Lba lba = kAnyLba;
  /// kTornWrite: leading blocks of the payload that land before the tear.
  std::uint32_t torn_keep = 0;
  /// Firings before the spec is spent (transient faults default to one, so
  /// the retried command succeeds).
  std::uint32_t count = 1;
};

class FaultPlan {
 public:
  struct Stats {
    std::uint64_t transient_program = 0;
    std::uint64_t transient_read = 0;
    std::uint64_t hard_media = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t total() const noexcept {
      return transient_program + transient_read + hard_media + torn_writes;
    }
  };

  FaultPlan() = default;

  void add(const FaultSpec& spec) { specs_.push_back(spec); }

  /// Deterministic random plan: 1..max_faults specs spread over roughly
  /// `expected_write_ops` write ordinals. Same seed, same plan.
  static FaultPlan random(std::uint64_t seed, std::uint64_t expected_write_ops,
                          std::uint32_t max_faults = 6);

  /// Device-side consultation. Returns the spec that fires for this write
  /// op (consuming one firing and recording it in stats), or nullptr.
  const FaultSpec* match_write(
      std::uint64_t op_ordinal,
      std::span<const std::pair<Lba, Version>> blocks);

  /// Same for a read op.
  const FaultSpec* match_read(std::uint64_t op_ordinal, Lba lba);

  const Stats& stats() const noexcept { return stats_; }
  const std::vector<FaultSpec>& specs() const noexcept { return specs_; }
  bool empty() const noexcept { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
  Stats stats_;
};

}  // namespace bio::flash
