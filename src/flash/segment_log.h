// Log-structured FTL: the paper's UFS firmware treats the entire device as
// a single log (§3.2, "in-order recovery"). Appends are assigned log
// positions in call order and striped round-robin across chips, so programs
// proceed in parallel while the *log order* still encodes the transfer
// order. Crash recovery scans the log and truncates at the first page that
// did not finish programming, which is exactly what makes the barrier
// command free of flush overhead.
//
// A background garbage collector relocates valid pages out of the victim
// segment and erases it; GC contends with foreground traffic on the chips,
// producing the long latency tails of Table 1.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flash/geometry.h"
#include "flash/nand.h"
#include "flash/types.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::flash {

class SegmentLog {
 public:
  struct Params {
    /// GC starts when free segments drop to this count.
    std::uint32_t gc_low_watermark = 3;
    /// Concurrent GC page relocations.
    std::uint32_t gc_inflight = 8;
  };

  struct GcStats {
    std::uint64_t runs = 0;
    std::uint64_t pages_copied = 0;
    std::uint64_t segments_erased = 0;
  };

  SegmentLog(sim::Simulator& sim, NandArray& nand) : SegmentLog(sim, nand, Params{}) {}
  SegmentLog(sim::Simulator& sim, NandArray& nand, Params params);

  /// Spawns the background GC thread. Call once before appends.
  void start();

  /// A reserved log position (see reserve()/program_reserved()).
  struct Reservation {
    std::uint64_t slot = 0;
    std::uint64_t history_index = 0;
  };

  /// Reserves the next log position for (lba, version). Call sequentially:
  /// the reservation order defines the persist order that in-order recovery
  /// preserves. May block waiting for GC to free a segment.
  sim::Task reserve(Lba lba, Version version, Reservation& out);

  /// Programs a reserved slot; safe to run many concurrently (this is where
  /// the multi-channel parallelism comes from).
  sim::Task program_reserved(Reservation r);

  /// reserve() + program_reserved() in one step (convenience/tests).
  sim::Task append(Lba lba, Version version);

  /// Reads the page currently mapped to `lba` (no-op timing if unmapped).
  sim::Task read(Lba lba);

  /// Records a transactional commit point: everything appended so far is
  /// atomically durable (used by BarrierMode::kTransactional).
  void mark_commit_point();

  // ---- crash / durability analysis (non-destructive) --------------------

  /// Durable state under in-order recovery: longest programmed prefix of
  /// the append log, applied in log order.
  std::unordered_map<Lba, Version> durable_in_order_recovery() const;

  /// Durable state when every individually-programmed page survives
  /// (no-barrier or in-order-writeback devices), applied in log order.
  std::unordered_map<Lba, Version> durable_programmed_set() const;

  /// Durable state under transactional write-back: entries up to the last
  /// commit point only.
  std::unordered_map<Lba, Version> durable_committed() const;

  /// Index (into the append history) one past the longest programmed
  /// prefix. Used by the cache to answer flush().
  std::uint64_t programmed_prefix() const noexcept { return prefix_; }

  std::uint64_t append_count() const noexcept { return history_.size(); }
  std::uint64_t free_segment_count() const noexcept {
    return free_segments_.size();
  }
  const GcStats& gc_stats() const noexcept { return gc_; }

  /// Notified every time the programmed prefix advances.
  sim::Notify& prefix_advanced() noexcept { return prefix_advanced_; }

  /// True while GC is erasing a segment (the controller stalls host
  /// commands during the erase burst; source of the 99.99th-pct tails).
  bool erasing() const noexcept { return erasing_; }
  sim::Notify& erase_done() noexcept { return erase_done_; }

  /// Synchronously pre-populates the log to `utilization` (0..1) of
  /// physical capacity with pages spread over `lba_span` addresses, so GC
  /// has realistic work from the start of a benchmark. No simulated time
  /// elapses.
  void prefill(double utilization, Lba lba_span, sim::Rng& rng);

  /// The version currently mapped at `lba` on flash, if any (test helper).
  std::optional<Version> mapped_version(Lba lba) const;

 private:
  struct AppendRecord {
    Lba lba;
    Version version;
    bool programmed = false;
    /// GC relocation of content whose source copy was already programmed:
    /// recovery can fall back to the source (its segment is not erased
    /// until the copy lands), so an in-flight relocation must not truncate
    /// the in-order-recovery prefix.
    bool gc_redundant = false;
  };
  struct PhysSlot {
    Lba lba = 0;
    bool valid = false;
  };
  struct Segment {
    std::vector<PhysSlot> slots;
    std::uint32_t next_offset = 0;  // append cursor within the segment
    std::uint32_t valid_count = 0;
    bool full() const noexcept {
      return next_offset >= static_cast<std::uint32_t>(slots.size());
    }
  };

  /// Global physical slot id = segment * pages_per_segment + offset.
  using SlotId = std::uint64_t;

  std::uint32_t chip_of(SlotId slot) const noexcept {
    return static_cast<std::uint32_t>(slot % nand_.chip_count());
  }

  /// Allocates the next physical slot and history index. Synchronous (no
  /// suspension between the capacity check and the assignment).
  struct Alloc {
    SlotId slot;
    std::uint64_t history_index;
  };
  Alloc allocate_slot(Lba lba, Version version);

  /// True if a slot can be allocated right now.
  bool space_available() const noexcept;

  void install_mapping(Lba lba, SlotId slot);
  void mark_programmed(std::uint64_t history_index);
  void advance_prefix();

  sim::Task gc_loop();
  sim::Task relocate_slot(SlotId victim_slot, sim::Semaphore& inflight);
  bool needs_gc() const noexcept {
    return free_segments_.size() <= params_.gc_low_watermark;
  }

  sim::Simulator& sim_;
  NandArray& nand_;
  Params params_;
  Geometry geom_;

  std::vector<Segment> segments_;
  std::deque<std::uint32_t> free_segments_;
  std::uint32_t active_segment_;

  struct MappedContent {
    Version version = 0;
    std::uint64_t history_index = 0;  // record that installed this mapping
  };
  std::unordered_map<Lba, SlotId> mapping_;
  std::unordered_map<Lba, MappedContent> mapped_version_;

  std::vector<AppendRecord> history_;  // append order = persist order
  std::uint64_t prefix_ = 0;           // programmed prefix watermark
  std::uint64_t commit_point_ = 0;     // for kTransactional

  sim::Notify space_freed_;
  sim::Notify gc_wake_;
  sim::Notify prefix_advanced_;
  bool erasing_ = false;
  sim::Notify erase_done_;
  GcStats gc_;
  bool started_ = false;
};

}  // namespace bio::flash
