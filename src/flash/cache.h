// Device write-back cache.
//
// Write commands DMA their blocks into this cache; a drain policy (owned by
// the StorageDevice, driven by the BarrierMode) moves entries to flash via
// the SegmentLog. Each entry is tagged with the *device epoch* current at
// its transfer time: barrier writes advance the epoch, and the epoch tags
// are what the in-order-writeback drain and the crash-invariant checkers
// consume.
//
// With power-loss protection (supercap) the cache itself is durable, so a
// flush answers in O(1); without PLP a flush must wait until every entry
// transferred so far has been programmed.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "flash/types.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::flash {

class WritebackCache {
 public:
  struct Entry {
    Lba lba = 0;
    Version version = 0;
    std::uint64_t epoch = 0;
    /// Arrival (transfer) order, dense from 0.
    std::uint64_t order = 0;
    /// True if the write carried the barrier flag (last block of a barrier
    /// command); kept for analysis.
    bool barrier = false;
  };

  WritebackCache(sim::Simulator& sim, std::size_t capacity_entries)
      : sim_(sim), capacity_(capacity_entries), space_(sim, capacity_entries),
        drain_ready_(sim), drained_(sim) {
    BIO_CHECK(capacity_ > 0);
  }

  /// DMA landing point: blocks until a cache slot is free (this is how a
  /// saturated device back-pressures the host), then records the entry.
  sim::Task insert(Lba lba, Version version, std::uint64_t epoch,
                   bool barrier);

  /// Oldest not-yet-claimed dirty entry, FIFO order. Blocks while empty.
  /// Returns nullopt only if the cache was shut down (not implemented: the
  /// simulator tears the drain thread down instead).
  sim::Task claim_next(Entry& out);

  /// Marks `order` programmed to flash and releases its cache slot.
  void mark_drained(std::uint64_t order);

  /// Highest order id assigned so far +1 (0 if no entries yet).
  std::uint64_t next_order() const noexcept { return next_order_; }

  /// True when every entry with order < `through` has been drained.
  bool drained_through(std::uint64_t through) const noexcept {
    return undrained_.empty() || *undrained_.begin() >= through;
  }

  /// Blocks until drained_through(through) holds.
  sim::Task wait_drained_through(std::uint64_t through);

  /// Latest cached version for `lba`, if its newest write is still dirty.
  std::optional<Version> lookup(Lba lba) const;

  /// Entries transferred but not yet drained, in arrival order (crash
  /// analysis for PLP devices; snapshot copy).
  std::vector<Entry> undrained_entries() const;

  /// Full arrival history (order, epoch, barrier) for invariant checks.
  const std::vector<Entry>& transfer_history() const noexcept {
    return history_;
  }

  std::size_t dirty_count() const noexcept { return undrained_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  sim::Notify& drain_ready() noexcept { return drain_ready_; }

 private:
  sim::Simulator& sim_;
  std::size_t capacity_;
  sim::Semaphore space_;
  sim::Notify drain_ready_;
  sim::Notify drained_;

  std::uint64_t next_order_ = 0;
  std::deque<Entry> pending_;               // inserted, not yet claimed
  std::set<std::uint64_t> undrained_;       // claimed or pending, not drained
  std::unordered_map<Lba, std::pair<std::uint64_t, Version>> newest_dirty_;
  std::unordered_map<std::uint64_t, Lba> order_to_lba_;
  std::vector<Entry> history_;
};

}  // namespace bio::flash
