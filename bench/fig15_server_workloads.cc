// Fig 15: server workloads — filebench varmail (ops/s) and sysbench
// OLTP-insert (tx/s) on plain-SSD and supercap-SSD across
// {EXT4-DR, BFS-DR, OptFS, EXT4-OD, BFS-OD}.
// Paper shapes: BFS-DR ~+60% over EXT4-DR on varmail (plain-SSD);
// BFS-OD ~+80% over EXT4-OD on varmail; MySQL OD gains are huge vs DR
// (43x) and BFS-OD edges out EXT4-OD; OptFS ~ EXT4-OD on varmail but
// collapses on OLTP (selective data journaling).
#include "bench_util.h"
#include "wl/oltp.h"
#include "wl/varmail.h"

using namespace bio;
using bench::make_stack;

namespace {

double run_varmail_case(const flash::DeviceProfile& dev,
                        core::StackKind kind) {
  wl::VarmailParams p;
  p.threads = 16;
  p.files = 300;
  p.iterations = 40;
  auto stack = make_stack(kind, dev);
  auto r = wl::run_varmail(*stack, p, sim::Rng(31));
  return r.ops_per_sec;
}

double run_oltp_case(const flash::DeviceProfile& dev, core::StackKind kind,
                     std::uint64_t tx_per_thread) {
  wl::OltpParams p;
  p.threads = 8;
  p.transactions_per_thread = tx_per_thread;
  p.rows_pages_per_tx = 3;
  p.checkpoint_every = 16;
  auto stack = make_stack(kind, dev);
  auto r = wl::run_oltp_insert(*stack, p, sim::Rng(33));
  return r.tx_per_sec;
}

}  // namespace

int main() {
  bench::banner("Fig 15", "varmail (ops/s) and OLTP-insert (tx/s)");

  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::plain_ssd(), flash::DeviceProfile::supercap_ssd()};
  const core::StackKind kinds[] = {
      core::StackKind::kExt4DR, core::StackKind::kBfsDR,
      core::StackKind::kOptFs, core::StackKind::kExt4OD,
      core::StackKind::kBfsOD};
  const std::uint64_t oltp_tx[] = {40, 60, 150, 200, 400};
  // 2 devices x (5 varmail + 5 OLTP) = 20 independent cells; per-device
  // layout: [0..4] varmail, [5..9] OLTP in `kinds` order.
  const std::vector<double> cells = bench::run_cells<double>(
      static_cast<int>(devices.size()) * 10,
      [&devices, &kinds, &oltp_tx](int i) {
        const auto& dev = devices[static_cast<std::size_t>(i / 10)];
        const int within = i % 10;
        return within < 5
                   ? run_varmail_case(dev, kinds[within])
                   : run_oltp_case(dev, kinds[within - 5],
                                   oltp_tx[within - 5]);
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    std::printf("\n[%s]\n", dev.name.c_str());
    const double vm_ext4_dr = cells[d * 10];
    const double vm_bfs_dr = cells[d * 10 + 1];
    const double vm_optfs = cells[d * 10 + 2];
    const double vm_ext4_od = cells[d * 10 + 3];
    const double vm_bfs_od = cells[d * 10 + 4];

    const double ol_ext4_dr = cells[d * 10 + 5];
    const double ol_bfs_dr = cells[d * 10 + 6];
    const double ol_optfs = cells[d * 10 + 7];
    const double ol_ext4_od = cells[d * 10 + 8];
    const double ol_bfs_od = cells[d * 10 + 9];

    core::Table t({"stack", "varmail ops/s", "OLTP tx/s"});
    t.add_row({"EXT4-DR", core::Table::num(vm_ext4_dr, 0),
               core::Table::num(ol_ext4_dr, 0)});
    t.add_row({"BFS-DR", core::Table::num(vm_bfs_dr, 0),
               core::Table::num(ol_bfs_dr, 0)});
    t.add_row({"OptFS", core::Table::num(vm_optfs, 0),
               core::Table::num(ol_optfs, 0)});
    t.add_row({"EXT4-OD", core::Table::num(vm_ext4_od, 0),
               core::Table::num(ol_ext4_od, 0)});
    t.add_row({"BFS-OD", core::Table::num(vm_bfs_od, 0),
               core::Table::num(ol_bfs_od, 0)});
    t.print();

    if (!dev.plp) {
      bench::expect_shape(vm_bfs_dr > 1.15 * vm_ext4_dr,
                          "varmail: BFS-DR above EXT4-DR (paper: +60%)");
      bench::expect_shape(vm_bfs_od > 0.95 * vm_ext4_od,
                          "varmail: BFS-OD at least matches EXT4-OD");
      bench::expect_shape(ol_bfs_od > ol_ext4_od,
                          "OLTP: BFS-OD edges out EXT4-OD (paper: +12%)");
      bench::expect_shape(ol_ext4_od > 3.0 * ol_ext4_dr,
                          "OLTP: relaxing durability buys a large factor");
      bench::expect_shape(ol_optfs < ol_ext4_od,
                          "OLTP: OptFS falls behind EXT4-OD (selective "
                          "data journaling; paper reports ~1/8, our model "
                          "captures the direction, not the full collapse)");
    } else {
      // Supercap: flushes are nearly free, so DR ~ OD everywhere — that is
      // the paper's own point about PLP devices. Check near-parity.
      bench::expect_shape(vm_bfs_dr > 0.9 * vm_ext4_dr,
                          "varmail: BFS-DR within noise of EXT4-DR");
      bench::expect_shape(ol_ext4_od > 0.9 * ol_ext4_dr,
                          "OLTP: durability nearly free under PLP");
      bench::expect_shape(vm_bfs_od > 0.95 * vm_ext4_od,
                          "varmail: BFS-OD at least matches EXT4-OD");
    }
  }
  return 0;
}
