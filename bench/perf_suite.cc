// Self-timing perf harness: wall-clock cost of the *simulator itself* (not
// simulated latencies) across the five StackKinds plus request-churn and
// page-cache-churn scenarios. Writes BENCH_perf.json so every PR leaves a
// perf trajectory behind, and prints a before/after-comparable table.
//
// Metrics per scenario:
//   * ns/io, ns/op       — wall nanoseconds per simulated device IO / op
//   * events/sec         — simulator event-loop dispatch rate
//   * requests/sec       — block-layer request throughput (wall clock)
//   * allocs/req (pool)  — heap allocations per request, from RequestPool
//                          stats (slab misses + control-block allocs +
//                          BlockList spills); the legacy unpooled path paid
//                          >= 3 per request unconditionally
//   * allocs/op (global) — every operator-new call in the process, frames
//                          and all, from the override below
//
// Usage: perf_suite [--smoke] [--out <path>] [--sharded-out <path>]
//                   [--list-scenarios] [--jobs N]
//   --smoke  small op counts (CI); --out defaults to BENCH_perf.json in the
//   current directory (CI runs from the repo root); --list-scenarios prints
//   the scenario names one per line and exits (tooling introspects the
//   suite instead of hard-coding names).
//
//   --jobs N runs scenarios on N host threads (smoke only, opt-in). The
//   DEFAULT stays serial, on purpose: these are *wall-clock* measurements,
//   and concurrent scenarios stealing cycles from each other would inflate
//   every ns/io number. Parallel runs are for functional smoke (does the
//   suite still pass, is the JSON well-formed), never for perf deltas.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "api/vfs.h"
#include "core/stack.h"
#include "sim/frame_pool.h"
#include "sim/host_pool.h"
#include "wl/concurrent_writers.h"
#include "wl/fxmark.h"
#include "wl/varmail.h"

// ---- global allocation counter ---------------------------------------------

// Atomic (relaxed): with --jobs, scenario threads allocate concurrently.
// Relaxed is exact for counting; per-scenario deltas under parallelism
// include neighbours' allocations, which is fine for the smoke-only use.
static std::atomic<std::uint64_t> g_new_calls{0};

// Under TSan the replaced malloc-backed operator new/delete would sit
// outside the sanitizer's allocator interception (and GCC rejects the
// pair as -Wmismatched-new-delete); nobody reads the allocs/op column
// from a sanitizer build, so keep the default allocator there and let
// the counter stay at zero.
#if defined(__SANITIZE_THREAD__)
#define BIO_PERF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BIO_PERF_TSAN 1
#endif
#endif

#if !defined(BIO_PERF_TSAN)
void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // !BIO_PERF_TSAN

using namespace bio;
using Clock = std::chrono::steady_clock;

namespace {

enum class Mode { kFullSync, kFdatabarrier, kBuffered };

struct ScenarioResult {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t sim_ios = 0;
  std::uint64_t requests = 0;
  std::uint64_t events = 0;
  double wall_ns = 0.0;
  std::uint64_t global_allocs = 0;
  blk::RequestPool::Stats pool;
  /// Sharded (multi-volume) scenarios only: per-volume *simulated*
  /// throughput — the volume-scaling signal, next to the wall-clock cost.
  std::uint32_t volumes = 0;
  double sim_ops_per_sec = 0.0;
  std::vector<double> volume_ops_per_sec;

  double ns_per_io() const { return sim_ios ? wall_ns / double(sim_ios) : 0; }
  double ns_per_op() const { return ops ? wall_ns / double(ops) : 0; }
  double events_per_sec() const {
    return wall_ns > 0 ? double(events) * 1e9 / wall_ns : 0;
  }
  double requests_per_sec() const {
    return wall_ns > 0 ? double(requests) * 1e9 / wall_ns : 0;
  }
  double global_allocs_per_op() const {
    return ops ? double(global_allocs) / double(ops) : 0;
  }
};

std::uint64_t dev_ios(core::Stack& s) {
  const auto& d = s.device().stats();
  return d.writes + d.reads + d.flushes;
}

ScenarioResult run_scenario(const char* name, core::StackKind kind, Mode mode,
                            std::uint64_t ops, std::uint32_t nfiles,
                            std::uint32_t pages_per_file) {
  auto stack = std::make_unique<core::Stack>(
      core::StackConfig::make(kind, flash::DeviceProfile::plain_ssd()));
  stack->start();
  api::Vfs vfs(*stack);
  std::vector<api::File> files(nfiles);

  // Setup phase (not measured): create and pre-allocate the working set so
  // the measured writes are overwrites.
  auto setup = [&]() -> sim::Task {
    for (std::uint32_t i = 0; i < nfiles; ++i) {
      files[i] = api::must(co_await vfs.open(
          "f" + std::to_string(i),
          {.create = true, .extent_blocks = pages_per_file}));
      for (std::uint32_t off = 0; off < pages_per_file;
           off += blk::kMaxMergedBlocks) {
        const std::uint32_t n = std::min<std::uint32_t>(
            blk::kMaxMergedBlocks, pages_per_file - off);
        api::must(co_await files[i].pwrite(off, n));
        api::must(co_await files[i].fsync());
      }
    }
  };
  stack->sim().spawn("setup", setup());
  stack->sim().run();

  auto body = [&]() -> sim::Task {
    for (std::uint64_t i = 0; i < ops; ++i) {
      api::File& f = files[i % nfiles];
      const std::uint32_t page =
          static_cast<std::uint32_t>((i * 7) % pages_per_file);
      api::must(co_await f.pwrite(page, 1));
      switch (mode) {
        case Mode::kFullSync:
          api::must(co_await f.sync_file());
          break;
        case Mode::kFdatabarrier:
          api::must(co_await f.fdatabarrier());
          break;
        case Mode::kBuffered:
          break;
      }
    }
  };

  ScenarioResult r;
  r.name = name;
  r.ops = ops;
  const std::uint64_t ios0 = dev_ios(*stack);
  const std::uint64_t sub0 = stack->blk().stats().submitted;
  const std::uint64_t ev0 = stack->sim().events_dispatched();
  const blk::RequestPool::Stats pool0 = stack->blk().pool().stats();
  const std::uint64_t alloc0 = g_new_calls;
  const auto t0 = Clock::now();
  stack->sim().spawn("app", body());
  stack->sim().run();
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  r.sim_ios = dev_ios(*stack) - ios0;
  r.requests = stack->blk().stats().submitted - sub0;
  r.events = stack->sim().events_dispatched() - ev0;
  r.global_allocs = g_new_calls - alloc0;
  r.pool = stack->blk().pool().stats();
  r.pool -= pool0;
  return r;
}

/// Sharded DWSL over a node of `nvolumes` BFS-DR volumes. Callers pass a
/// core count that *scales with the volume count* (weak scaling: enough
/// writers per volume to saturate one journal), so volume_ops_per_sec
/// isolates per-journal commit saturation while total throughput tracks
/// the volume count.
ScenarioResult run_sharded_scenario(const char* name, std::uint32_t nvolumes,
                                    std::uint32_t cores,
                                    std::uint32_t writes_per_thread) {
  const std::vector<core::StackConfig> bases(
      nvolumes, core::StackConfig::make(core::StackKind::kBfsDR,
                                        flash::DeviceProfile::plain_ssd()));
  auto node = std::make_unique<core::Stack>(core::NodeConfig::from(bases));

  ScenarioResult r;
  r.name = name;
  r.volumes = nvolumes;
  // Baselines snapshot at the hook — after the workload's setup phase —
  // so the sharded rows measure only the striped-writer phase, exactly as
  // run_scenario excludes its own setup.
  struct IoTotals {
    std::uint64_t sim_ios = 0;
    std::uint64_t requests = 0;
    blk::RequestPool::Stats pool;
  };
  auto node_io_totals = [&node, nvolumes] {
    IoTotals t;
    for (std::uint32_t v = 0; v < nvolumes; ++v) {
      core::Volume& vol = node->volume(v);
      const auto& d = vol.device().stats();
      t.sim_ios += d.writes + d.reads + d.flushes;
      t.requests += vol.blk().stats().submitted;
      t.pool += vol.blk().pool().stats();
    }
    return t;
  };
  IoTotals base;
  std::uint64_t ev0 = 0;
  std::uint64_t alloc0 = 0;
  Clock::time_point t0{};
  const wl::ShardedFxmarkResult res = wl::run_fxmark_dwsl_sharded(
      *node, {.cores = cores, .writes_per_thread = writes_per_thread}, [&] {
        base = node_io_totals();
        ev0 = node->sim().events_dispatched();
        alloc0 = g_new_calls;
        t0 = Clock::now();
      });
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  r.ops = res.ops_done;
  r.events = node->sim().events_dispatched() - ev0;
  r.global_allocs = g_new_calls - alloc0;
  const IoTotals total = node_io_totals();
  r.sim_ios = total.sim_ios - base.sim_ios;
  r.requests = total.requests - base.requests;
  r.pool = total.pool;
  r.pool -= base.pool;
  if (res.elapsed > 0)
    r.sim_ops_per_sec = res.ops_per_sec;
  r.volume_ops_per_sec = res.volume_ops_per_sec;
  return r;
}

/// Shared-inode multi-writer workload (wl::run_concurrent_writers) on one
/// BFS-DR volume: N coroutine writers over independent fds interleaving
/// writes with the sync matrix plus namespace and fd churn — the host-side
/// cost of the path the concurrent crash sweep exercises.
ScenarioResult run_concurrent_scenario(const char* name,
                                       std::uint32_t writers,
                                       std::uint32_t ops_per_writer) {
  auto stack = std::make_unique<core::Stack>(
      core::StackConfig::make(core::StackKind::kBfsDR,
                              flash::DeviceProfile::plain_ssd()));
  ScenarioResult r;
  r.name = name;
  const std::uint64_t ev0 = stack->sim().events_dispatched();
  const std::uint64_t alloc0 = g_new_calls;
  const auto t0 = Clock::now();
  wl::ConcurrentWritersParams p;
  p.writers = writers;
  p.ops_per_writer = ops_per_writer;
  const wl::ConcurrentWritersResult res =
      wl::run_concurrent_writers(*stack, p);
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  r.ops = res.ops_done + res.syncs_done;
  r.sim_ios = dev_ios(*stack);
  r.requests = stack->blk().stats().submitted;
  r.events = stack->sim().events_dispatched() - ev0;
  r.global_allocs = g_new_calls - alloc0;
  r.pool = stack->blk().pool().stats();
  return r;
}

/// Ring QD sweep: the varmail flow on one BFS-DR volume, driven through
/// api::Ring at a fixed per-thread queue depth (ring_qd = 0 is the direct
/// serialized flavour — the serial-await baseline). Next to the wall-clock
/// columns this records *simulated* flowops/s (sim_ops_per_sec): the
/// batching signal — linked chains from independent mails coalescing into
/// shared journal commits — that QD >= 8 must win over serial awaits.
ScenarioResult run_ring_scenario(const char* name, std::uint32_t ring_qd,
                                 bool smoke) {
  auto stack = std::make_unique<core::Stack>(core::StackConfig::make(
      core::StackKind::kBfsDR, flash::DeviceProfile::plain_ssd()));
  wl::VarmailParams p;
  p.threads = smoke ? 8 : 16;
  p.files = smoke ? 100 : 400;
  p.iterations = smoke ? 20 : 60;
  p.ring_qd = ring_qd;

  ScenarioResult r;
  r.name = name;
  const std::uint64_t ev0 = stack->sim().events_dispatched();
  const std::uint64_t alloc0 = g_new_calls;
  const auto t0 = Clock::now();
  const wl::VarmailResult res = wl::run_varmail(*stack, p, sim::Rng(47));
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  r.ops = res.ops_done;
  r.sim_ops_per_sec = res.ops_per_sec;
  r.sim_ios = dev_ios(*stack);
  r.requests = stack->blk().stats().submitted;
  r.events = stack->sim().events_dispatched() - ev0;
  r.global_allocs = g_new_calls - alloc0;
  r.pool = stack->blk().pool().stats();
  return r;
}

/// Multi-queue block-layer scaling: eight writer coroutines drive strided
/// ordered writes (a barrier every 32) straight through blk::BlockLayer at
/// `nr_queues` software queues over the plain-SSD's eight channels.
/// sim_ops_per_sec is the scaling signal — at q1 every write funnels
/// through one port's host bus, at q4 four channel pipelines transfer in
/// parallel — and it is measured to the *last write acknowledgement* (not
/// the background NAND drain, which has the same channel parallelism at
/// every queue count and would wash the signal out). bench_delta.py
/// enforces q4 > 1.3x q1.
ScenarioResult run_mq_scenario(const char* name, std::uint32_t nr_queues,
                               bool smoke) {
  sim::Simulator sim;
  flash::StorageDevice dev(sim, flash::DeviceProfile::plain_ssd());
  blk::BlockLayerConfig bcfg;
  bcfg.nr_queues = nr_queues;
  blk::BlockLayer blk(sim, dev, bcfg);
  dev.start();
  blk.start();

  const std::uint32_t writers = 8;
  const std::uint32_t ops = smoke ? 120 : 480;
  const std::uint64_t total = std::uint64_t{writers} * ops;
  std::uint64_t done = 0;
  sim::SimTime all_acked = 0;
  auto writer = [&](std::uint32_t w) -> sim::Task {
    for (std::uint32_t i = 0; i < ops; ++i) {
      std::vector<blk::Block> b;
      // Strided LBAs: nothing merges, every op is one device command.
      b.emplace_back(static_cast<flash::Lba>(w * 65536 + i * 2),
                     blk.next_version());
      co_await blk.write_and_wait(std::move(b), /*ordered=*/true,
                                  /*barrier=*/(i % 32) == 31);
      if (++done == total) all_acked = sim.now();
    }
  };

  ScenarioResult r;
  r.name = name;
  const std::uint64_t ev0 = sim.events_dispatched();
  const std::uint64_t alloc0 = g_new_calls;
  const auto t0 = Clock::now();
  for (std::uint32_t w = 0; w < writers; ++w)
    sim.spawn("mq-writer", writer(w));
  sim.run();
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  r.ops = done;
  if (all_acked > 0)
    r.sim_ops_per_sec =
        static_cast<double>(done) / sim::to_seconds(all_acked);
  r.sim_ios = dev.stats().writes + dev.stats().reads + dev.stats().flushes;
  r.requests = blk.stats().submitted;
  r.events = sim.events_dispatched() - ev0;
  r.global_allocs = g_new_calls - alloc0;
  r.pool = blk.pool().stats();
  return r;
}

void print_table(const std::vector<ScenarioResult>& results) {
  std::printf(
      "%-18s %9s %9s %9s %10s %11s %11s %11s %10s\n", "scenario", "ops",
      "sim_ios", "ns/io", "ns/op", "events/s", "reqs/s", "allocs/req",
      "allocs/op");
  for (const auto& r : results)
    std::printf(
        "%-18s %9llu %9llu %9.1f %10.1f %11.0f %11.0f %11.4f %10.2f\n",
        r.name.c_str(), (unsigned long long)r.ops,
        (unsigned long long)r.sim_ios, r.ns_per_io(), r.ns_per_op(),
        r.events_per_sec(), r.requests_per_sec(),
        r.pool.allocs_per_request(), r.global_allocs_per_op());
}

bool write_json(const char* path, const std::vector<ScenarioResult>& results,
                bool smoke) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_suite: cannot open %s for writing\n", path);
    return false;
  }
  // Aggregate across retired scenario threads (--jobs): serial runs see
  // exactly the calling thread's pool, parallel runs the whole process.
  const sim::FramePoolStats fp = sim::frame_pool_aggregate_stats();
  std::fprintf(f, "{\n  \"schema\": \"bio-perf/1\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"frame_pool\": {\"allocs\": %llu, \"reuses\": %llu, "
               "\"fresh\": %llu},\n",
               (unsigned long long)fp.allocs, (unsigned long long)fp.reuses,
               (unsigned long long)fp.fresh);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"ops\": %llu,\n", (unsigned long long)r.ops);
    std::fprintf(f, "      \"sim_ios\": %llu,\n",
                 (unsigned long long)r.sim_ios);
    std::fprintf(f, "      \"requests\": %llu,\n",
                 (unsigned long long)r.requests);
    std::fprintf(f, "      \"events\": %llu,\n", (unsigned long long)r.events);
    std::fprintf(f, "      \"wall_ns\": %.0f,\n", r.wall_ns);
    std::fprintf(f, "      \"ns_per_io\": %.2f,\n", r.ns_per_io());
    std::fprintf(f, "      \"ns_per_op\": %.2f,\n", r.ns_per_op());
    std::fprintf(f, "      \"events_per_sec\": %.0f,\n", r.events_per_sec());
    std::fprintf(f, "      \"requests_per_sec\": %.0f,\n",
                 r.requests_per_sec());
    std::fprintf(f, "      \"global_allocs\": %llu,\n",
                 (unsigned long long)r.global_allocs);
    std::fprintf(f, "      \"global_allocs_per_op\": %.3f,\n",
                 r.global_allocs_per_op());
    if (r.volumes > 0) {
      std::fprintf(f, "      \"volumes\": %u,\n", r.volumes);
      std::fprintf(f, "      \"volume_ops_per_sec\": [");
      for (std::size_t v = 0; v < r.volume_ops_per_sec.size(); ++v)
        std::fprintf(f, "%s%.0f", v ? ", " : "", r.volume_ops_per_sec[v]);
      std::fprintf(f, "],\n");
    }
    if (r.sim_ops_per_sec > 0)
      std::fprintf(f, "      \"sim_ops_per_sec\": %.0f,\n",
                   r.sim_ops_per_sec);
    std::fprintf(
        f,
        "      \"pool\": {\"acquired\": %llu, \"recycled\": %llu, "
        "\"fresh_requests\": %llu, \"ctrl_allocs\": %llu, "
        "\"block_heap_allocs\": %llu, \"allocs_per_request\": %.4f}\n",
        (unsigned long long)r.pool.acquired,
        (unsigned long long)r.pool.recycled,
        (unsigned long long)r.pool.fresh_requests,
        (unsigned long long)r.pool.ctrl_allocs,
        (unsigned long long)r.pool.block_heap_allocs,
        r.pool.allocs_per_request());
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list_scenarios = false;
  int jobs = 1;  // serial by default: wall-clock numbers need isolation
  const char* out = "BENCH_perf.json";
  const char* sharded_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list-scenarios") == 0) {
      list_scenarios = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--sharded-out") == 0 && i + 1 < argc) {
      sharded_out = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      // Strict positive decimal, like crash_consistency --jobs.
      const char* s = argv[++i];
      long v = 0;
      bool digits = *s != '\0';
      for (const char* p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') digits = false;
        if (digits && v <= bio::sim::kMaxHostJobs) v = v * 10 + (*p - '0');
      }
      if (!digits || v < 1 || v > bio::sim::kMaxHostJobs) {
        std::fprintf(stderr, "bad --jobs '%s' (want a decimal in [1, %d])\n",
                     s, bio::sim::kMaxHostJobs);
        return 2;
      }
      jobs = static_cast<int>(v);
    } else {
      std::fprintf(stderr,
                   "usage: perf_suite [--smoke] [--out <path>] "
                   "[--sharded-out <path>] [--list-scenarios] [--jobs N]\n");
      return 2;
    }
  }

  const std::uint64_t sync_ops = smoke ? 200 : 3000;
  const std::uint64_t churn_ops = smoke ? 500 : 20000;
  const std::uint64_t page_ops = smoke ? 2000 : 40000;
  const std::uint32_t dwsl_writes = smoke ? 25 : 200;

  using K = core::StackKind;
  // The scenario registry: names live here once; --list-scenarios prints
  // them without running anything, so CI and bench_delta.py introspect the
  // suite instead of hard-coding the list.
  struct ScenarioDef {
    const char* name;
    std::function<ScenarioResult()> run;
  };
  std::vector<ScenarioDef> defs;
  auto add = [&defs](const char* name,
                     std::function<ScenarioResult(const char*)> fn) {
    defs.push_back({name, [name, fn = std::move(fn)] { return fn(name); }});
  };
  add("sync-EXT4-DR", [&](const char* n) {
    return run_scenario(n, K::kExt4DR, Mode::kFullSync, sync_ops, 1, 1024);
  });
  add("sync-EXT4-OD", [&](const char* n) {
    return run_scenario(n, K::kExt4OD, Mode::kFullSync, sync_ops, 1, 1024);
  });
  add("sync-BFS-DR", [&](const char* n) {
    return run_scenario(n, K::kBfsDR, Mode::kFullSync, sync_ops, 1, 1024);
  });
  add("sync-BFS-OD", [&](const char* n) {
    return run_scenario(n, K::kBfsOD, Mode::kFullSync, sync_ops, 1, 1024);
  });
  add("sync-OptFS", [&](const char* n) {
    return run_scenario(n, K::kOptFs, Mode::kFullSync, sync_ops, 1, 1024);
  });
  // Request churn: ordering-only syncs never block, so this maximises
  // request creation per wall second — the pool's worst case.
  add("request-churn", [&](const char* n) {
    return run_scenario(n, K::kBfsOD, Mode::kFdatabarrier, churn_ops, 1,
                        1024);
  });
  // Page-cache churn: buffered writes across many files; pdflush does the
  // writeback. Exercises the per-inode dirty indexes.
  add("pagecache-churn", [&](const char* n) {
    return run_scenario(n, K::kExt4DR, Mode::kBuffered, page_ops, 32, 256);
  });
  // Concurrent shared-inode writers: the multi-writer path the concurrent
  // crash sweep exercises (independent fds, sync matrix, namespace + fd
  // churn), measured for host-side cost on one BFS-DR volume.
  // Smoke keeps 8 writers but enough ops per writer that per-io setup cost
  // (mount + journal replay) amortizes like the full run — at 60 ops the
  // fixed costs inflated smoke ns/io ~40% relative to the rest of the
  // fleet, which the bench-delta median normalization cannot absorb.
  add("concurrent-writers", [&](const char* n) {
    return run_concurrent_scenario(n, smoke ? 8 : 16, smoke ? 200 : 400);
  });
  // Ring QD sweep: serial awaits vs api::Ring at increasing queue depth on
  // BFS-DR. sim_ops_per_sec is the batching signal — QD >= 8 must beat the
  // serial baseline (bench_delta.py enforces it).
  add("ring-serial", [&](const char* n) {
    return run_ring_scenario(n, 0, smoke);
  });
  add("ring-qd1", [&](const char* n) {
    return run_ring_scenario(n, 1, smoke);
  });
  add("ring-qd8", [&](const char* n) {
    return run_ring_scenario(n, 8, smoke);
  });
  add("ring-qd32", [&](const char* n) {
    return run_ring_scenario(n, 32, smoke);
  });
  // Multi-queue block-layer scaling: q1 is the classic single-queue layer,
  // q4 spreads four software queues over four flash channels. The sim
  // throughput ratio q4/q1 is the tentpole's win (bench_delta.py holds it
  // above 1.3x).
  add("mq-scaling-q1", [&](const char* n) {
    return run_mq_scenario(n, 1, smoke);
  });
  add("mq-scaling-q2", [&](const char* n) {
    return run_mq_scenario(n, 2, smoke);
  });
  add("mq-scaling-q4", [&](const char* n) {
    return run_mq_scenario(n, 4, smoke);
  });
  // Sharded DWSL weak scaling: 64 writer threads *per volume* (enough to
  // saturate one journal's commit pipeline, ~12k commits/s on this
  // profile) over 1/2/4 BFS-DR volumes of one node. With independent
  // journals, volume_ops_per_sec holds at saturation while
  // sim_ops_per_sec scales with the volume count.
  add("sharded-fxmark-v1", [&](const char* n) {
    return run_sharded_scenario(n, 1, 64, dwsl_writes);
  });
  add("sharded-fxmark-v2", [&](const char* n) {
    return run_sharded_scenario(n, 2, 128, dwsl_writes);
  });
  add("sharded-fxmark-v4", [&](const char* n) {
    return run_sharded_scenario(n, 4, 256, dwsl_writes);
  });

  if (list_scenarios) {
    for (const ScenarioDef& d : defs) std::printf("%s\n", d.name);
    return 0;
  }

  std::printf("=== perf_suite — wall-clock cost of the simulator%s%s ===\n",
              smoke ? " (smoke)" : "",
              jobs > 1 ? " [parallel: timings not comparable]" : "");
  // jobs=1 (default) runs inline in registry order; --jobs N > 1 fans the
  // scenarios across host threads and map() restores registry order, so
  // the table and JSON keep the same row order either way.
  const sim::HostPool pool(jobs);
  const std::vector<ScenarioResult> results = pool.map<ScenarioResult>(
      static_cast<int>(defs.size()),
      [&defs](int i) { return defs[static_cast<std::size_t>(i)].run(); });

  print_table(results);
  for (const ScenarioResult& r : results) {
    if (r.sim_ops_per_sec <= 0) continue;
    std::printf("%-18s sim ops/s %10.0f", r.name.c_str(), r.sim_ops_per_sec);
    if (r.volumes > 0) {
      std::printf(" | per-volume:");
      for (double v : r.volume_ops_per_sec) std::printf(" %10.0f", v);
    }
    std::printf("\n");
  }
  if (!write_json(out, results, smoke)) return 1;
  std::printf("\nwrote %s\n", out);
  if (sharded_out != nullptr) {
    std::vector<ScenarioResult> sharded;
    for (const ScenarioResult& r : results)
      if (r.volumes > 0) sharded.push_back(r);
    if (!write_json(sharded_out, sharded, smoke)) return 1;
    std::printf("wrote %s\n", sharded_out);
  }
  return 0;
}
