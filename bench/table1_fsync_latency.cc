// Table 1: fsync() latency statistics (mean / median / 99 / 99.9 / 99.99
// percentile) for EXT4 vs BarrierFS on UFS, plain-SSD and supercap-SSD.
// The device log is pre-filled so garbage collection runs during the
// benchmark, producing the long tails the paper reports.
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

struct Row {
  double mean_ms, median_ms, p99_ms, p999_ms, p9999_ms;
};

Row run_case(const flash::DeviceProfile& dev, core::StackKind kind,
             std::uint64_t ops) {
  wl::RandomWriteParams p;
  p.mode = wl::RandomWriteParams::Mode::kSyncFile;
  p.allocating = true;  // DWSL pattern: every fsync commits a transaction
  p.ops = ops;
  p.working_set_pages = 4096;
  auto stack = make_stack(kind, dev);
  // Age the FTL: 88% utilization over a wide LBA span -> GC activity.
  sim::Rng prefill_rng(11);
  stack->device().log().prefill(
      0.88, stack->fs().layout().data_base() + 60000, prefill_rng);
  auto r = wl::run_random_write(*stack, p, sim::Rng(5));
  (void)r;
  const sim::LatencyRecorder& lat = stack->fs().fsync_latency();
  return Row{lat.mean() / 1e6, sim::to_millis(lat.median()),
             sim::to_millis(lat.percentile(99.0)),
             sim::to_millis(lat.percentile(99.9)),
             sim::to_millis(lat.percentile(99.99))};
}

}  // namespace

int main() {
  bench::banner("Table 1", "fsync() latency statistics (msec)");
  core::Table table({"device", "fs", "mean", "median", "99th", "99.9th",
                     "99.99th"});
  const std::uint64_t kOps = 4000;
  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::ufs(), flash::DeviceProfile::plain_ssd(),
      flash::DeviceProfile::supercap_ssd()};
  // 3 devices x 2 filesystems, each cell with its own aged stack; printed
  // in device order below.
  const std::vector<Row> cells = bench::run_cells<Row>(
      static_cast<int>(devices.size()) * 2, [&devices, kOps](int i) {
        return run_case(devices[static_cast<std::size_t>(i / 2)],
                        i % 2 == 0 ? core::StackKind::kExt4DR
                                   : core::StackKind::kBfsDR,
                        kOps);
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    const Row ext4 = cells[d * 2];
    const Row bfs = cells[d * 2 + 1];
    table.add_row({dev.name, "EXT4", core::Table::num(ext4.mean_ms),
                   core::Table::num(ext4.median_ms),
                   core::Table::num(ext4.p99_ms),
                   core::Table::num(ext4.p999_ms),
                   core::Table::num(ext4.p9999_ms)});
    table.add_row({dev.name, "BFS", core::Table::num(bfs.mean_ms),
                   core::Table::num(bfs.median_ms),
                   core::Table::num(bfs.p99_ms),
                   core::Table::num(bfs.p999_ms),
                   core::Table::num(bfs.p9999_ms)});
    std::printf("%s:\n", dev.name.c_str());
    bench::expect_shape(bfs.mean_ms < 0.8 * ext4.mean_ms,
                        "BFS cuts mean fsync latency substantially "
                        "(paper: -40% SSDs, -60% UFS)");
    bench::expect_shape(bfs.p9999_ms <= ext4.p9999_ms,
                        "BFS improves the 99.99th percentile tail");
    bench::expect_shape(ext4.p9999_ms > ext4.mean_ms + 0.8,
                        "GC stalls add at least ~1ms to the 99.99th "
                        "percentile tail");
  }
  std::printf("\n");
  table.print();
  return 0;
}
