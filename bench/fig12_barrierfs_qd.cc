// Fig 12: queue depth behaviour inside BarrierFS — durability guarantee
// (write + fsync) vs ordering guarantee (write + fbarrier). fsync keeps a
// couple of commands in flight; fbarrier saturates the queue because the
// commit pipeline never waits.
#include <algorithm>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

/// Computed in a cell, printed serially after both cells finish.
struct Out {
  double avg_qd = 0.0;
  double max_qd = 0.0;
  std::vector<std::pair<double, double>> series;  // (ms, depth)
};

Out run_case(core::StackKind kind, std::uint64_t ops) {
  wl::RandomWriteParams p;
  p.mode = wl::RandomWriteParams::Mode::kSyncFile;
  p.ops = ops;
  auto stack = make_stack(kind, flash::DeviceProfile::ufs());
  stack->device().enable_qd_trace();
  auto r = wl::run_random_write(*stack, p, sim::Rng(4));
  Out out;
  out.avg_qd = r.avg_queue_depth;
  out.max_qd = stack->device().qd_trace().max_value();
  const auto& points = stack->device().qd_trace().points();
  const std::size_t stride = std::max<std::size_t>(1, points.size() / 32);
  for (std::size_t i = 0; i < points.size(); i += stride)
    out.series.emplace_back(sim::to_millis(points[i].at), points[i].value);
  return out;
}

void print_case(const char* label, const Out& out) {
  std::printf("\n%s: avg QD %.2f, max QD %.0f\n", label, out.avg_qd,
              out.max_qd);
  std::printf("  t(ms):QD ");
  for (const auto& [ms, qd] : out.series) std::printf("%.2f:%.0f ", ms, qd);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Fig 12", "BarrierFS queue depth: fsync vs fbarrier");
  const std::vector<Out> cells = bench::run_cells<Out>(2, [](int i) {
    return i == 0 ? run_case(core::StackKind::kBfsDR, 400)
                  : run_case(core::StackKind::kBfsOD, 4000);
  });
  const Out& durability = cells[0];
  const Out& ordering = cells[1];
  print_case("durability (fsync)", durability);
  print_case("ordering (fbarrier)", ordering);
  std::printf("\n");
  bench::expect_shape(durability.max_qd <= 4,
                      "fsync keeps only a couple of commands in flight");
  bench::expect_shape(ordering.max_qd >= 8,
                      "fbarrier drives the queue toward its limit (paper: "
                      "~15 of 16)");
  bench::expect_shape(ordering.avg_qd > 2 * durability.avg_qd,
                      "ordering mode sustains a much deeper queue");
  return 0;
}
