// Fig 12: queue depth behaviour inside BarrierFS — durability guarantee
// (write + fsync) vs ordering guarantee (write + fbarrier). fsync keeps a
// couple of commands in flight; fbarrier saturates the queue because the
// commit pipeline never waits.
#include <algorithm>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

struct Out {
  double avg_qd;
  double max_qd;
};

Out run_case(core::StackKind kind, std::uint64_t ops, const char* label) {
  wl::RandomWriteParams p;
  p.mode = wl::RandomWriteParams::Mode::kSyncFile;
  p.ops = ops;
  auto stack = make_stack(kind, flash::DeviceProfile::ufs());
  stack->device().enable_qd_trace();
  auto r = wl::run_random_write(*stack, p, sim::Rng(4));
  const auto& points = stack->device().qd_trace().points();
  std::printf("\n%s: avg QD %.2f, max QD %.0f\n", label, r.avg_queue_depth,
              stack->device().qd_trace().max_value());
  const std::size_t stride = std::max<std::size_t>(1, points.size() / 32);
  std::printf("  t(ms):QD ");
  for (std::size_t i = 0; i < points.size(); i += stride)
    std::printf("%.2f:%.0f ", sim::to_millis(points[i].at), points[i].value);
  std::printf("\n");
  return Out{r.avg_queue_depth, stack->device().qd_trace().max_value()};
}

}  // namespace

int main() {
  bench::banner("Fig 12", "BarrierFS queue depth: fsync vs fbarrier");
  const Out durability =
      run_case(core::StackKind::kBfsDR, 400, "durability (fsync)");
  const Out ordering =
      run_case(core::StackKind::kBfsOD, 4000, "ordering (fbarrier)");
  std::printf("\n");
  bench::expect_shape(durability.max_qd <= 4,
                      "fsync keeps only a couple of commands in flight");
  bench::expect_shape(ordering.max_qd >= 8,
                      "fbarrier drives the queue toward its limit (paper: "
                      "~15 of 16)");
  bench::expect_shape(ordering.avg_qd > 2 * durability.avg_qd,
                      "ordering mode sustains a much deeper queue");
  return 0;
}
