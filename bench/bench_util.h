// Shared helpers for the per-figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/stack.h"
#include "core/table.h"
#include "flash/profile.h"

namespace bio::bench {

inline std::unique_ptr<core::Stack> make_stack(
    core::StackKind kind, const flash::DeviceProfile& device) {
  return std::make_unique<core::Stack>(core::StackConfig::make(kind, device));
}

inline void banner(const char* id, const char* what) {
  std::printf("\n=== %s — %s ===\n", id, what);
}

inline std::string k_of(double v, int precision = 2) {
  return core::Table::num(v / 1000.0, precision);
}

/// Prints PASS/WARN for a shape expectation so EXPERIMENTS.md can quote it.
inline void expect_shape(bool ok, const char* description) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "WARN", description);
}

}  // namespace bio::bench
