// Shared helpers for the per-figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/stack.h"
#include "core/table.h"
#include "flash/profile.h"
#include "sim/host_pool.h"

namespace bio::bench {

inline std::unique_ptr<core::Stack> make_stack(
    core::StackKind kind, const flash::DeviceProfile& device) {
  return std::make_unique<core::Stack>(core::StackConfig::make(kind, device));
}

inline void banner(const char* id, const char* what) {
  std::printf("\n=== %s — %s ===\n", id, what);
}

inline std::string k_of(double v, int precision = 2) {
  return core::Table::num(v / 1000.0, precision);
}

/// Prints PASS/WARN for a shape expectation so EXPERIMENTS.md can quote it.
inline void expect_shape(bool ok, const char* description) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "WARN", description);
}

/// Compute-parallel / print-serial driver for figure benches: runs one
/// simulation cell per index across the host pool (each cell builds its
/// own core::Stack — figure metrics are simulated, so host parallelism
/// cannot perturb them) and returns the results in index order, so the
/// caller's serial print loop emits output bit-identical to a serial run.
/// Figure benches honour BIO_SWEEP_JOBS like the sweeps (jobs = 0).
template <typename R, typename Fn>
std::vector<R> run_cells(int n, Fn&& fn) {
  const sim::HostPool pool;
  return pool.map<R>(n, static_cast<Fn&&>(fn));
}

}  // namespace bio::bench
