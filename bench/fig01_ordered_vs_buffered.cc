// Fig 1: ordered write() (write + fdatasync) vs orderless buffered write()
// across devices of increasing parallelism, plus an HDD reference point.
// The paper's observation: the ordered/buffered ratio collapses as device
// parallelism grows (power-law fit y = a * x^b, b ≈ -1), and power-loss
// protection (supercap) does NOT rescue it.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

int main() {
  bench::banner("Fig 1", "Ordered IO vs Buffered IO across device classes");

  std::vector<flash::DeviceProfile> devices =
      flash::DeviceProfile::fig1_devices();
  devices.push_back(flash::DeviceProfile::hdd());

  core::Table table({"device", "buffered KIOPS", "ordered IOPS",
                     "ordered/buffered (%)"});
  std::vector<double> xs, ys;
  double supercap_ratio = 0.0, max_flash_buffered = 0.0;
  double ratio_at_min = 0.0, ratio_at_max = 0.0;
  double min_buf = 1e18, max_buf = 0.0;

  // Each device cell simulates its two stacks independently; compute in
  // parallel, print (and fit) in device order below.
  struct Cell {
    double ordered_iops = 0.0;
    double buffered_iops = 0.0;
  };
  const std::vector<Cell> cells = bench::run_cells<Cell>(
      static_cast<int>(devices.size()), [&devices](int i) {
        const auto& dev = devices[static_cast<std::size_t>(i)];
        // Ordered: allocating 4K writes + fdatasync on EXT4-DR (journal
        // commit per write, transfer-and-flush all the way).
        wl::RandomWriteParams ordered_params;
        ordered_params.mode = wl::RandomWriteParams::Mode::kAllocFdatasync;
        ordered_params.ops = 300;
        auto ordered_stack = make_stack(core::StackKind::kExt4DR, dev);
        auto ordered =
            wl::run_random_write(*ordered_stack, ordered_params, sim::Rng(1));

        // Buffered: plain write() stream, throttled by writeback.
        wl::RandomWriteParams buf_params;
        buf_params.mode = wl::RandomWriteParams::Mode::kBuffered;
        buf_params.ops = 30000;
        buf_params.working_set_pages =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                32768, dev.geometry.physical_pages() * 2 / 5));
        auto buf_stack = make_stack(core::StackKind::kExt4DR, dev);
        auto buffered =
            wl::run_random_write(*buf_stack, buf_params, sim::Rng(2));
        return Cell{ordered.iops, buffered.iops};
      });

  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    const double ordered_iops = cells[d].ordered_iops;
    const double buffered_iops = cells[d].buffered_iops;

    const double ratio = 100.0 * ordered_iops / buffered_iops;
    table.add_row({dev.name, bench::k_of(buffered_iops),
                   core::Table::num(ordered_iops, 0),
                   core::Table::num(ratio, 2)});
    if (dev.name != "HDD") {
      xs.push_back(std::log(buffered_iops));
      ys.push_back(std::log(ratio));
      if (dev.name == "supercap-SSD") supercap_ratio = ratio;
      max_flash_buffered = std::max(max_flash_buffered, buffered_iops);
      if (buffered_iops < min_buf) {
        min_buf = buffered_iops;
        ratio_at_min = ratio;
      }
      if (buffered_iops > max_buf) {
        max_buf = buffered_iops;
        ratio_at_max = ratio;
      }
    }
  }
  table.print();

  // Least-squares slope of log(ratio) vs log(buffered): the paper fits
  // y = 3.4e3 * x^-1.1; we check the decline is power-law-ish (b < -0.5).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::printf("\npower-law fit: ratio ~ buffered^%.2f (paper: ^-1.1)\n",
              slope);
  bench::expect_shape(slope < -0.5,
                      "ordered/buffered ratio declines with parallelism");
  bench::expect_shape(ratio_at_max < ratio_at_min,
                      "most-parallel flash device has the lowest ratio");
  bench::expect_shape(supercap_ratio > ratio_at_max,
                      "supercap (PLP) sits above the trend but does not fix "
                      "the ordering overhead");
  return 0;
}
