// Fig 13: fxmark DWSL — filesystem journaling scalability over core count
// on plain-SSD and supercap-SSD. EXT4 serializes commits through a single
// committing transaction with transfer-and-flush; BarrierFS pipelines them,
// so it scales to roughly 2x on plain-SSD and ~1.3x at saturation on
// supercap (paper's numbers).
#include <vector>

#include "bench_util.h"
#include "wl/fxmark.h"

using namespace bio;
using bench::make_stack;

namespace {

double run_case(const flash::DeviceProfile& dev, core::StackKind kind,
                std::uint32_t cores) {
  wl::FxmarkParams p;
  p.cores = cores;
  p.writes_per_thread = 150;
  auto stack = make_stack(kind, dev);
  auto r = wl::run_fxmark_dwsl(*stack, p, sim::Rng(13));
  return r.ops_per_sec;
}

}  // namespace

int main() {
  bench::banner("Fig 13", "fxmark DWSL journaling scalability (ops/s)");
  const std::vector<std::uint32_t> cores = {1, 2, 4, 6, 8, 10, 12};
  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::plain_ssd(), flash::DeviceProfile::supercap_ssd()};
  // 2 devices x 7 core counts x 2 stacks = 28 independent cells; printed
  // per device below in core-count order.
  const int per_dev = static_cast<int>(cores.size()) * 2;
  const std::vector<double> cells = bench::run_cells<double>(
      static_cast<int>(devices.size()) * per_dev,
      [&devices, &cores, per_dev](int i) {
        const auto& dev = devices[static_cast<std::size_t>(i / per_dev)];
        const int within = i % per_dev;
        const std::uint32_t c = cores[static_cast<std::size_t>(within / 2)];
        return run_case(dev,
                        within % 2 == 0 ? core::StackKind::kExt4DR
                                        : core::StackKind::kBfsDR,
                        c);
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    std::printf("\n[%s]\n", dev.name.c_str());
    core::Table table({"cores", "EXT4-DR ops/s", "BFS-DR ops/s", "BFS/EXT4"});
    double ext4_max = 0, bfs_max = 0, ext4_1 = 0, bfs_1 = 0;
    double ext4_6 = 0, ext4_12 = 0;
    for (std::size_t ci = 0; ci < cores.size(); ++ci) {
      const std::uint32_t c = cores[ci];
      const double e = cells[d * static_cast<std::size_t>(per_dev) + ci * 2];
      const double b =
          cells[d * static_cast<std::size_t>(per_dev) + ci * 2 + 1];
      table.add_row({std::to_string(c), core::Table::num(e, 0),
                     core::Table::num(b, 0), core::Table::num(b / e, 2)});
      ext4_max = std::max(ext4_max, e);
      bfs_max = std::max(bfs_max, b);
      if (c == 1) {
        ext4_1 = e;
        bfs_1 = b;
      }
      if (c == 6) ext4_6 = e;
      if (c == 12) ext4_12 = e;
    }
    table.print();
    if (dev.plp) {
      // Supercap: both stacks saturate the NAND early (paper: 6 cores);
      // BFS leads while the journal is the bottleneck (low core counts).
      bench::expect_shape(bfs_1 > 1.15 * ext4_1,
                          "BFS-DR leads before device saturation (paper: "
                          "~1.3x)");
      bench::expect_shape(ext4_12 < 1.15 * ext4_6,
                          "throughput saturates around 6 cores");
    } else {
      bench::expect_shape(bfs_max > 1.5 * ext4_max,
                          "BFS-DR ~2x EXT4-DR at full throttle (paper: 2x)");
      bench::expect_shape(bfs_1 > 1.5 * ext4_1,
                          "BFS-DR ~2x at low core counts too");
    }
  }
  return 0;
}
