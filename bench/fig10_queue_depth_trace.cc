// Fig 10: device queue depth over time, Wait-on-Transfer vs barrier-enabled,
// on plain-SSD and UFS. The paper's picture: X hugs QD<=1; B saturates the
// queue. We print a downsampled (time, depth) series per configuration.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

void run_and_print(const char* label, const flash::DeviceProfile& dev,
                   core::StackKind kind, wl::RandomWriteParams::Mode mode,
                   std::uint64_t ops) {
  wl::RandomWriteParams p;
  p.mode = mode;
  p.ops = ops;
  auto stack = make_stack(kind, dev);
  stack->device().enable_qd_trace();
  auto r = wl::run_random_write(*stack, p, sim::Rng(3));

  const auto& points = stack->device().qd_trace().points();
  std::printf("\n%s (%s): avg QD %.2f, max QD %.0f, %zu transitions\n",
              label, dev.name.c_str(), r.avg_queue_depth,
              stack->device().qd_trace().max_value(), points.size());
  // Downsample to ~32 samples for the printed series.
  const std::size_t stride = std::max<std::size_t>(1, points.size() / 32);
  std::printf("  t(ms):QD ");
  for (std::size_t i = 0; i < points.size(); i += stride)
    std::printf("%.2f:%.0f ", sim::to_millis(points[i].at),
                points[i].value);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Fig 10", "queue depth: Wait-on-Transfer vs barrier");
  for (const auto& dev :
       {flash::DeviceProfile::plain_ssd(), flash::DeviceProfile::ufs()}) {
    run_and_print("Wait-on-Transfer (X)", dev, core::StackKind::kExt4OD,
                  wl::RandomWriteParams::Mode::kFdatasync, 600);
    run_and_print("Barrier (B)", dev, core::StackKind::kBfsOD,
                  wl::RandomWriteParams::Mode::kFdatabarrier, 3000);
  }
  return 0;
}
