// Fig 10: device queue depth over time, Wait-on-Transfer vs barrier-enabled,
// on plain-SSD and UFS. The paper's picture: X hugs QD<=1; B saturates the
// queue. We print a downsampled (time, depth) series per configuration.
#include <algorithm>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

/// One configuration's trace, computed in a cell and printed serially:
/// the summary numbers plus the downsampled (time, depth) series.
struct TraceCell {
  double avg_qd = 0.0;
  double max_qd = 0.0;
  std::size_t transitions = 0;
  std::vector<std::pair<double, double>> series;  // (ms, depth)
};

TraceCell run_trace(const flash::DeviceProfile& dev, core::StackKind kind,
                    wl::RandomWriteParams::Mode mode, std::uint64_t ops) {
  wl::RandomWriteParams p;
  p.mode = mode;
  p.ops = ops;
  auto stack = make_stack(kind, dev);
  stack->device().enable_qd_trace();
  auto r = wl::run_random_write(*stack, p, sim::Rng(3));

  TraceCell cell;
  const auto& points = stack->device().qd_trace().points();
  cell.avg_qd = r.avg_queue_depth;
  cell.max_qd = stack->device().qd_trace().max_value();
  cell.transitions = points.size();
  // Downsample to ~32 samples for the printed series.
  const std::size_t stride = std::max<std::size_t>(1, points.size() / 32);
  for (std::size_t i = 0; i < points.size(); i += stride)
    cell.series.emplace_back(sim::to_millis(points[i].at), points[i].value);
  return cell;
}

void print_trace(const char* label, const flash::DeviceProfile& dev,
                 const TraceCell& cell) {
  std::printf("\n%s (%s): avg QD %.2f, max QD %.0f, %zu transitions\n",
              label, dev.name.c_str(), cell.avg_qd, cell.max_qd,
              cell.transitions);
  std::printf("  t(ms):QD ");
  for (const auto& [ms, qd] : cell.series) std::printf("%.2f:%.0f ", ms, qd);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Fig 10", "queue depth: Wait-on-Transfer vs barrier");
  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::plain_ssd(), flash::DeviceProfile::ufs()};
  // 2 devices x 2 configurations: compute all four traces in parallel,
  // print in the original order.
  const std::vector<TraceCell> cells = bench::run_cells<TraceCell>(
      static_cast<int>(devices.size()) * 2, [&devices](int i) {
        const auto& dev = devices[static_cast<std::size_t>(i / 2)];
        return i % 2 == 0
                   ? run_trace(dev, core::StackKind::kExt4OD,
                               wl::RandomWriteParams::Mode::kFdatasync, 600)
                   : run_trace(dev, core::StackKind::kBfsOD,
                               wl::RandomWriteParams::Mode::kFdatabarrier,
                               3000);
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    print_trace("Wait-on-Transfer (X)", devices[d], cells[d * 2]);
    print_trace("Barrier (B)", devices[d], cells[d * 2 + 1]);
  }
  return 0;
}
