// Fig 11: application-level context switches per 4 KiB write + sync, for
// EXT4-DR / BFS-DR / EXT4-OD / BFS-OD on the three devices.
// Expected shape (paper): EXT4-DR = 2.00 everywhere; BFS-DR in [1, 2]
// (fsync degenerates to fdatasync within a timer tick); EXT4-OD ~= 1;
// BFS-OD ~= 0 (fbarrier/fdatabarrier return without blocking).
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

double run_case(const flash::DeviceProfile& dev, core::StackKind kind) {
  wl::RandomWriteParams p;
  p.mode = wl::RandomWriteParams::Mode::kSyncFile;
  p.ops = 1500;
  p.working_set_pages = 2048;
  auto stack = make_stack(kind, dev);
  auto r = wl::run_random_write(*stack, p, sim::Rng(9));
  return r.context_switches_per_op;
}

}  // namespace

int main() {
  bench::banner("Fig 11", "context switches per write+sync");
  core::Table table(
      {"device", "EXT4-DR", "BFS-DR", "EXT4-OD", "BFS-OD"});
  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::ufs(), flash::DeviceProfile::plain_ssd(),
      flash::DeviceProfile::supercap_ssd()};
  const core::StackKind kinds[] = {
      core::StackKind::kExt4DR, core::StackKind::kBfsDR,
      core::StackKind::kExt4OD, core::StackKind::kBfsOD};
  // 3 devices x 4 stacks, one simulation per cell, printed in order below.
  const std::vector<double> cells = bench::run_cells<double>(
      static_cast<int>(devices.size()) * 4, [&devices, &kinds](int i) {
        return run_case(devices[static_cast<std::size_t>(i / 4)],
                        kinds[i % 4]);
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    const double ext4_dr = cells[d * 4];
    const double bfs_dr = cells[d * 4 + 1];
    const double ext4_od = cells[d * 4 + 2];
    const double bfs_od = cells[d * 4 + 3];
    table.add_row({dev.name, core::Table::num(ext4_dr),
                   core::Table::num(bfs_dr), core::Table::num(ext4_od),
                   core::Table::num(bfs_od)});
    std::printf("%s:\n", dev.name.c_str());
    bench::expect_shape(ext4_dr > 1.9 && ext4_dr < 2.1,
                        "EXT4-DR blocks twice per op (D wait + commit/flush)");
    bench::expect_shape(bfs_dr >= 0.95 && bfs_dr <= 2.05,
                        "BFS-DR between 1 (journal commit) and 2 (fdatasync)");
    bench::expect_shape(ext4_od > 0.9 && ext4_od < 1.6,
                        "EXT4-OD ~1 (Wait-on-Transfer remains)");
    bench::expect_shape(bfs_od < 0.5,
                        "BFS-OD nearly free of context switches");
  }
  std::printf("\n");
  table.print();
  return 0;
}
