// Fig 8: the interval between successive journal commits under the four
// commit disciplines:
//   EXT4 (full flush)  — tD + tC + tF   (transfer + full flush per commit)
//   EXT4 (quick flush) — tD + tC + te   (supercap: flush is a short ack)
//   EXT4 (no flush)    — tD + tC        (nobarrier: transfer-bound)
//   BarrierFS          — tD             (dispatch-bound, commits pipeline)
// We drive a stream of journal commits (one per write, allocating append +
// ordering sync) and report the average inter-commit interval.
#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

double commit_interval_ms(core::Stack& stack, std::uint64_t ops,
                          bool ordering_only) {
  wl::RandomWriteParams p;
  // Allocating appends: every op dirties i_size, so every op commits a
  // journal transaction. 8 files avoid buffer conflicts between
  // back-to-back commits, letting pipelining show.
  p.mode = ordering_only ? wl::RandomWriteParams::Mode::kAllocFdatabarrier
                         : wl::RandomWriteParams::Mode::kAllocFdatasync;
  p.files = 8;
  p.ops = ops;
  auto r = wl::run_random_write(stack, p, sim::Rng(8));
  // Per-transaction commit interval. For the EXT4 rows every op is exactly
  // one journal commit (the caller waits); for BarrierFS the commit thread
  // batches ops into pipelined transactions, so the per-op interval is the
  // honest measure of how often transaction commits can be initiated.
  if (r.ops_done == 0) return 0.0;
  return sim::to_millis(r.elapsed) / static_cast<double>(r.ops_done);
}

}  // namespace

int main() {
  bench::banner("Fig 8", "journal commit interval by commit discipline");

  // One cell per discipline, each building its own stack so the four
  // simulations can run on separate host threads.
  struct Case {
    core::StackKind kind;
    bool supercap;
    std::uint64_t ops;
    bool ordering_only;
  };
  const Case cases[] = {
      {core::StackKind::kExt4DR, false, 200, false},
      {core::StackKind::kExt4DR, true, 800, false},
      {core::StackKind::kExt4OD, false, 800, false},
      // BFS-OD: fdatabarrier on allocating writes -> pipelined commits.
      {core::StackKind::kBfsOD, false, 4000, true},
  };
  const std::vector<double> intervals =
      bench::run_cells<double>(4, [&cases](int i) {
        const Case& c = cases[i];
        auto stack = make_stack(c.kind, c.supercap
                                            ? flash::DeviceProfile::supercap_ssd()
                                            : flash::DeviceProfile::plain_ssd());
        return commit_interval_ms(*stack, c.ops, c.ordering_only);
      });
  const double t_full = intervals[0];
  const double t_quick = intervals[1];
  const double t_noflush = intervals[2];
  const double t_bfs = intervals[3];

  core::Table t({"discipline", "commit interval (ms)", "paper's bound"});
  t.add_row({"EXT4 (full flush)", core::Table::num(t_full, 3),
             "tD + tC + tF"});
  t.add_row({"EXT4 (quick flush/supercap)", core::Table::num(t_quick, 3),
             "tD + tC + te"});
  t.add_row({"EXT4 (no flush)", core::Table::num(t_noflush, 3), "tD + tC"});
  t.add_row({"BarrierFS", core::Table::num(t_bfs, 3), "tD"});
  t.print();

  bench::expect_shape(t_bfs < t_noflush,
                      "BarrierFS commits faster than transfer-bound EXT4");
  bench::expect_shape(t_noflush < t_quick || t_noflush < t_full,
                      "removing the flush shortens the commit interval");
  bench::expect_shape(t_quick < t_full,
                      "supercap flush (te) is far cheaper than full flush "
                      "(tF)");
  return 0;
}
