// Wall-clock microbenchmarks (google-benchmark) of the simulation
// substrate's hot paths: event loop throughput, synchronization hand-off,
// IO-scheduler operations and the latency recorder. These guard the
// simulator's own performance, not the paper's results.
#include <benchmark/benchmark.h>

#include "blk/epoch_scheduler.h"
#include "blk/io_scheduler.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace {

using namespace bio::sim::literals;
using bio::sim::Simulator;
using bio::sim::Task;

void BM_EventLoopDelays(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    auto body = [&]() -> Task {
      for (int i = 0; i < 1000; ++i) co_await sim.delay(1_us);
    };
    sim.spawn("t", body());
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopDelays);

void BM_SemaphorePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    bio::sim::Semaphore a(sim, 1), b(sim, 0);
    auto ping = [&]() -> Task {
      for (int i = 0; i < 500; ++i) {
        co_await a.acquire();
        b.release();
      }
    };
    auto pong = [&]() -> Task {
      for (int i = 0; i < 500; ++i) {
        co_await b.acquire();
        a.release();
      }
    };
    sim.spawn("ping", ping());
    sim.spawn("pong", pong());
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SemaphorePingPong);

void BM_ChannelThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    bio::sim::Channel<int> ch(sim, 16);
    auto producer = [&]() -> Task {
      for (int i = 0; i < 1000; ++i) co_await ch.push(i);
      ch.close();
    };
    auto consumer = [&]() -> Task {
      for (;;) {
        auto v = co_await ch.pop();
        if (!v) break;
        benchmark::DoNotOptimize(*v);
      }
    };
    sim.spawn("p", producer());
    sim.spawn("c", consumer());
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelThroughput);

void BM_ElevatorEnqueueDequeue(benchmark::State& state) {
  Simulator sim;
  std::uint64_t lba = 0;
  for (auto _ : state) {
    bio::blk::ElevatorScheduler sched;
    for (int i = 0; i < 256; ++i) {
      lba = (lba * 2654435761u + 17) % 100000;
      std::vector<std::pair<bio::flash::Lba, bio::flash::Version>> blocks;
      blocks.emplace_back(lba * 4, 1);
      sched.enqueue(bio::blk::make_write_request(sim, std::move(blocks)));
    }
    while (auto r = sched.dequeue()) benchmark::DoNotOptimize(r->first_lba());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ElevatorEnqueueDequeue);

void BM_EpochSchedulerBarrierChurn(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    bio::blk::EpochScheduler sched(
        std::make_unique<bio::blk::NoopScheduler>());
    for (int i = 0; i < 128; ++i) {
      std::vector<std::pair<bio::flash::Lba, bio::flash::Version>> blocks;
      blocks.emplace_back(static_cast<bio::flash::Lba>(i * 8), 1);
      sched.enqueue(bio::blk::make_write_request(sim, std::move(blocks),
                                                 true, (i % 4) == 3));
    }
    while (auto r = sched.dequeue()) benchmark::DoNotOptimize(r->barrier);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EpochSchedulerBarrierChurn);

void BM_LatencyRecorderPercentile(benchmark::State& state) {
  bio::sim::LatencyRecorder rec;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 100000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rec.add(x % 1000000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.percentile(99.99));
    rec.add(1);  // invalidate the sort cache: measure re-sorting
  }
}
BENCHMARK(BM_LatencyRecorderPercentile);

}  // namespace

BENCHMARK_MAIN();
