// Fig 14: SQLite inserts/sec.
//  (a) UFS (mobile): PERSIST and WAL journal modes, EXT4-DR vs BFS-DR, plus
//      the ordering-guarantee variants (paper: +75% DR, 2.8x OD in PERSIST;
//      WAL has little headroom).
//  (b) plain-SSD (server): EXT4-OD vs OptFS vs BFS-OD, with EXT4-DR as the
//      durability baseline (paper: BFS-OD reaches ~73x EXT4-DR).
#include "bench_util.h"
#include "wl/sqlite.h"

using namespace bio;
using bench::make_stack;

namespace {

double run_case(const flash::DeviceProfile& dev, core::StackKind kind,
                wl::SqliteParams::Mode mode, std::uint64_t tx) {
  wl::SqliteParams p;
  p.mode = mode;
  p.transactions = tx;
  auto stack = make_stack(kind, dev);
  auto r = wl::run_sqlite(*stack, p, sim::Rng(21));
  return r.tx_per_sec;
}

}  // namespace

int main() {
  bench::banner("Fig 14", "SQLite inserts/sec");

  // All nine cells (5 UFS + 4 plain-SSD) are independent simulations;
  // compute across the pool, print in the original order below.
  struct Case {
    bool ufs;
    core::StackKind kind;
    wl::SqliteParams::Mode mode;
    std::uint64_t tx;
  };
  const Case cases[] = {
      {true, core::StackKind::kExt4DR, wl::SqliteParams::Mode::kPersist, 400},
      {true, core::StackKind::kBfsDR, wl::SqliteParams::Mode::kPersist, 800},
      {true, core::StackKind::kBfsOD, wl::SqliteParams::Mode::kPersist, 3000},
      {true, core::StackKind::kExt4DR, wl::SqliteParams::Mode::kWal, 800},
      {true, core::StackKind::kBfsDR, wl::SqliteParams::Mode::kWal, 800},
      {false, core::StackKind::kExt4DR, wl::SqliteParams::Mode::kPersist, 300},
      {false, core::StackKind::kExt4OD, wl::SqliteParams::Mode::kPersist,
       3000},
      {false, core::StackKind::kOptFs, wl::SqliteParams::Mode::kPersist,
       3000},
      {false, core::StackKind::kBfsOD, wl::SqliteParams::Mode::kPersist,
       8000},
  };
  const std::vector<double> cells =
      bench::run_cells<double>(9, [&cases](int i) {
        const Case& c = cases[i];
        return run_case(c.ufs ? flash::DeviceProfile::ufs()
                              : flash::DeviceProfile::plain_ssd(),
                        c.kind, c.mode, c.tx);
      });

  // ---- (a) UFS ------------------------------------------------------------
  {
    const double persist_ext4 = cells[0];
    const double persist_bfs_dr = cells[1];
    const double persist_bfs_od = cells[2];
    const double wal_ext4 = cells[3];
    const double wal_bfs_dr = cells[4];

    std::printf("\n[UFS]\n");
    core::Table t({"mode", "EXT4-DR tx/s", "BFS-DR tx/s", "BFS-OD tx/s",
                   "DR gain", "OD gain"});
    t.add_row({"PERSIST", core::Table::num(persist_ext4, 0),
               core::Table::num(persist_bfs_dr, 0),
               core::Table::num(persist_bfs_od, 0),
               core::Table::num(persist_bfs_dr / persist_ext4, 2),
               core::Table::num(persist_bfs_od / persist_ext4, 2)});
    t.add_row({"WAL", core::Table::num(wal_ext4, 0),
               core::Table::num(wal_bfs_dr, 0), "-",
               core::Table::num(wal_bfs_dr / wal_ext4, 2), "-"});
    t.print();
    bench::expect_shape(persist_bfs_dr > 1.3 * persist_ext4,
                        "PERSIST: BFS-DR well above EXT4-DR (paper: +75%)");
    bench::expect_shape(persist_bfs_od > 2.0 * persist_ext4,
                        "PERSIST: ordering-only gains multiples "
                        "(paper: 2.8x)");
    bench::expect_shape(
        wal_bfs_dr / wal_ext4 < persist_bfs_dr / persist_ext4,
        "WAL: single fdatasync per commit leaves less headroom");
  }

  // ---- (b) plain-SSD --------------------------------------------------------
  {
    const double dr_baseline = cells[5];
    const double ext4_od = cells[6];
    const double optfs = cells[7];
    const double bfs_od = cells[8];

    std::printf("\n[plain-SSD]\n");
    core::Table t({"stack", "tx/s", "vs EXT4-DR"});
    t.add_row({"EXT4-DR", core::Table::num(dr_baseline, 0), "1.00"});
    t.add_row({"EXT4-OD", core::Table::num(ext4_od, 0),
               core::Table::num(ext4_od / dr_baseline, 1)});
    t.add_row({"OptFS", core::Table::num(optfs, 0),
               core::Table::num(optfs / dr_baseline, 1)});
    t.add_row({"BFS-OD", core::Table::num(bfs_od, 0),
               core::Table::num(bfs_od / dr_baseline, 1)});
    t.print();
    bench::expect_shape(bfs_od > ext4_od,
                        "BFS-OD beats EXT4-OD (no Wait-on-Transfer)");
    bench::expect_shape(bfs_od / dr_baseline > 20.0,
                        "relaxing durability buys order(s) of magnitude "
                        "(paper: 73x)");
    bench::expect_shape(optfs < bfs_od,
                        "OptFS trails BFS-OD (osync still waits on "
                        "transfer)");
  }
  return 0;
}
