// Fig 9: 4 KiB random write under four ordering regimes, per device:
//   XnF — write + fdatasync          (EXT4-DR: transfer-and-flush)
//   X   — write + fdatasync          (EXT4-OD/nobarrier: Wait-on-Transfer)
//   B   — write + fdatabarrier       (BarrierFS: order-preserving dispatch)
//   P   — plain buffered write
// Reports IOPS (x10^3) and the average device queue depth. The paper's
// shapes: X keeps QD < 1 and under 50% of P; B drives QD near the device
// limit and lands within a few percent to ~25% of P.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "wl/random_write.h"

using namespace bio;
using bench::make_stack;

namespace {

struct Cell {
  double kiops;
  double qd;
};

Cell run_mode(const flash::DeviceProfile& dev, core::StackKind kind,
              wl::RandomWriteParams::Mode mode, std::uint64_t ops) {
  wl::RandomWriteParams p;
  p.mode = mode;
  p.ops = ops;
  // Working set large enough that page-cache write coalescing is rare
  // (the paper writes to an 8 GiB file), but bounded by device capacity.
  p.working_set_pages = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(32768, dev.geometry.physical_pages() * 2 / 5));
  auto stack = make_stack(kind, dev);
  auto r = wl::run_random_write(*stack, p, sim::Rng(7));
  return {r.iops / 1000.0, r.avg_queue_depth};
}

}  // namespace

int main() {
  bench::banner("Fig 9", "4KB random write: XnF / X / B / P");

  const std::vector<flash::DeviceProfile> devices = {
      flash::DeviceProfile::ufs(), flash::DeviceProfile::plain_ssd(),
      flash::DeviceProfile::supercap_ssd()};

  core::Table table({"device", "XnF KIOPS", "X KIOPS", "B KIOPS", "P KIOPS",
                     "QD(XnF)", "QD(X)", "QD(B)", "QD(P)"});
  // 3 devices x 4 modes, one independent simulation per cell; printed in
  // device order below.
  struct Row {
    Cell xnf, x, b, p;
  };
  const std::vector<Row> rows = bench::run_cells<Row>(
      static_cast<int>(devices.size()), [&devices](int i) {
        const auto& dev = devices[static_cast<std::size_t>(i)];
        return Row{
            run_mode(dev, core::StackKind::kExt4DR,
                     wl::RandomWriteParams::Mode::kFdatasync, 400),
            run_mode(dev, core::StackKind::kExt4OD,
                     wl::RandomWriteParams::Mode::kFdatasync, 2000),
            run_mode(dev, core::StackKind::kBfsOD,
                     wl::RandomWriteParams::Mode::kFdatabarrier, 30000),
            run_mode(dev, core::StackKind::kExt4DR,
                     wl::RandomWriteParams::Mode::kBuffered, 60000)};
      });
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& dev = devices[d];
    const Cell xnf = rows[d].xnf;
    const Cell x = rows[d].x;
    const Cell b = rows[d].b;
    const Cell p = rows[d].p;
    table.add_row({dev.name, core::Table::num(xnf.kiops),
                   core::Table::num(x.kiops), core::Table::num(b.kiops),
                   core::Table::num(p.kiops), core::Table::num(xnf.qd, 2),
                   core::Table::num(x.qd, 2), core::Table::num(b.qd, 2),
                   core::Table::num(p.qd, 2)});

    std::printf("%s:\n", dev.name.c_str());
    bench::expect_shape(x.kiops < 0.55 * p.kiops,
                        "X (Wait-on-Transfer) below ~50% of buffered");
    bench::expect_shape(x.qd < 1.5, "X leaves the queue nearly empty");
    bench::expect_shape(b.kiops > 2.0 * x.kiops,
                        "B at least 2x X (paper: >=2x)");
    bench::expect_shape(b.kiops > 0.7 * p.kiops,
                        "B within ~1-30% of plain buffered write");
    bench::expect_shape(b.qd > 0.5 * dev.queue_depth,
                        "B drives queue depth toward the device limit");
    bench::expect_shape(xnf.kiops < x.kiops,
                        "adding the flush (XnF) costs further throughput");
  }
  std::printf("\n");
  table.print();
  return 0;
}
