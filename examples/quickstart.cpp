// Quickstart: assemble a Barrier-Enabled IO stack, write a file, and
// compare the cost of the four synchronization primitives.
//
//   fsync()         durability + ordering, waits for the flush
//   fdatasync()     like fsync, data (+ size) only
//   fbarrier()      ordering only: returns once the journal commit is
//                   *dispatched*
//   fdatabarrier()  ordering only, data only: returns immediately after
//                   dispatching barrier-tagged writes
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/stack.h"
#include "flash/profile.h"

using namespace bio;

namespace {

sim::Task demo(core::Stack& stack) {
  fs::Filesystem& filesystem = stack.fs();
  sim::Simulator& sim = stack.sim();

  fs::Inode* file = nullptr;
  co_await filesystem.create("demo.db", file, 1024);

  auto timed = [&](const char* label, sim::Task op) -> sim::Task {
    const sim::SimTime t0 = sim.now();
    co_await std::move(op);
    std::printf("  %-16s %8.1f us\n", label,
                sim::to_micros(sim.now() - t0));
  };

  std::printf("4 KiB write + sync primitive latencies on %s (BarrierFS):\n",
              stack.device().profile().name.c_str());

  co_await filesystem.write(*file, 0, 1);
  co_await timed("fsync", filesystem.fsync(*file));

  co_await filesystem.write(*file, 1, 1);
  co_await timed("fdatasync", filesystem.fdatasync(*file));

  co_await filesystem.write(*file, 2, 1);
  co_await timed("fbarrier", filesystem.fbarrier(*file));

  co_await filesystem.write(*file, 3, 1);
  co_await timed("fdatabarrier", filesystem.fdatabarrier(*file));

  // The paper's §4.1 codelet: ordering without durability.
  co_await filesystem.write(*file, 10, 1);  // "Hello"
  co_await filesystem.fdatabarrier(*file);
  co_await filesystem.write(*file, 11, 1);  // "World"
  std::printf(
      "\nwrite(Hello); fdatabarrier(); write(World); -> on this stack,\n"
      "World can never persist without Hello, and the caller never "
      "blocked.\n");
}

}  // namespace

int main() {
  core::StackConfig cfg = core::StackConfig::make(
      core::StackKind::kBfsDR, flash::DeviceProfile::ufs());
  core::Stack stack(cfg);
  stack.start();
  stack.sim().spawn("app", demo(stack));
  stack.sim().run();

  std::printf("\ndevice: %llu writes, %llu barrier writes, %llu flushes\n",
              static_cast<unsigned long long>(stack.device().stats().writes),
              static_cast<unsigned long long>(
                  stack.device().stats().barrier_writes),
              static_cast<unsigned long long>(
                  stack.device().stats().flushes));
  std::printf("journal: %llu commits\n",
              static_cast<unsigned long long>(
                  stack.fs().journal().stats().commits));
  return 0;
}
