// Quickstart: assemble a Barrier-Enabled IO stack, open a file through the
// handle-based VFS, and compare the cost of the four synchronization
// primitives.
//
//   fsync()         durability + ordering, waits for the flush
//   fdatasync()     like fsync, data (+ size) only
//   fbarrier()      ordering only: returns once the journal commit is
//                   *dispatched*
//   fdatabarrier()  ordering only, data only: returns immediately after
//                   dispatching barrier-tagged writes
//
// Applications normally do not pick the primitive by hand: they declare the
// *intent* (order_point / durability_point) and the Vfs's SyncPolicy maps
// it to the right syscall for the stack it runs on (paper §5).
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "api/vfs.h"
#include "core/stack.h"
#include "flash/profile.h"

using namespace bio;

namespace {

sim::Task demo(core::Stack& stack, api::Vfs& vfs) {
  sim::Simulator& sim = stack.sim();

  api::File file = api::must(
      co_await vfs.open("demo.db", {.create = true, .extent_blocks = 1024}));

  auto timed = [&](const char* label, sim::TaskOf<api::Status> op)
      -> sim::Task {
    const sim::SimTime t0 = sim.now();
    api::must(co_await op);
    std::printf("  %-16s %8.1f us\n", label,
                sim::to_micros(sim.now() - t0));
  };

  std::printf("4 KiB write + sync primitive latencies on %s (BarrierFS):\n",
              stack.device().profile().name.c_str());

  api::must(co_await file.pwrite(0, 1));
  co_await timed("fsync", file.fsync());

  api::must(co_await file.pwrite(1, 1));
  co_await timed("fdatasync", file.fdatasync());

  api::must(co_await file.pwrite(2, 1));
  co_await timed("fbarrier", file.fbarrier());

  api::must(co_await file.pwrite(3, 1));
  co_await timed("fdatabarrier", file.fdatabarrier());

  // The same calls, written as intents: the SyncPolicy resolves them.
  api::must(co_await file.pwrite(4, 1));
  co_await timed("order_point", file.order_point());
  api::must(co_await file.pwrite(5, 1));
  co_await timed("durability_point", file.durability_point());

  // The paper's §4.1 codelet: ordering without durability.
  api::must(co_await file.pwrite(10, 1));  // "Hello"
  api::must(co_await file.fdatabarrier());
  api::must(co_await file.pwrite(11, 1));  // "World"
  std::printf(
      "\nwrite(Hello); fdatabarrier(); write(World); -> on this stack,\n"
      "World can never persist without Hello, and the caller never "
      "blocked.\n");

  api::must(file.close());
}

}  // namespace

int main() {
  core::StackConfig cfg = core::StackConfig::make(
      core::StackKind::kBfsDR, flash::DeviceProfile::ufs());
  core::Stack stack(cfg);
  stack.start();
  api::Vfs vfs(stack);
  stack.sim().spawn("app", demo(stack, vfs));
  stack.sim().run();

  std::printf("\ndevice: %llu writes, %llu barrier writes, %llu flushes\n",
              static_cast<unsigned long long>(stack.device().stats().writes),
              static_cast<unsigned long long>(
                  stack.device().stats().barrier_writes),
              static_cast<unsigned long long>(
                  stack.device().stats().flushes));
  std::printf("journal: %llu commits\n",
              static_cast<unsigned long long>(
                  stack.fs().journal().stats().commits));
  return 0;
}
