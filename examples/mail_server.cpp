// Example: a mail-server-style fsync-heavy service (varmail) on all five
// stacks of the paper's evaluation — the "which stack should I deploy"
// comparison for a durability-sensitive service.
//
// Build: cmake --build build && ./build/examples/mail_server
#include <cstdio>

#include "core/stack.h"
#include "core/table.h"
#include "flash/profile.h"
#include "wl/varmail.h"

using namespace bio;

namespace {

double run(core::StackKind kind) {
  core::StackConfig cfg =
      core::StackConfig::make(kind, flash::DeviceProfile::plain_ssd());
  core::Stack stack(cfg);
  wl::VarmailParams p;
  p.threads = 8;
  p.files = 200;
  p.iterations = 25;
  wl::VarmailResult r = wl::run_varmail(stack, p, sim::Rng(7));
  return r.ops_per_sec;
}

}  // namespace

int main() {
  std::printf("varmail on plain-SSD: 8 threads, create/append/sync/read "
              "mail flow\n\n");
  core::Table t({"stack", "ops/s", "durability at sync?"});
  struct Row {
    core::StackKind kind;
    const char* durable;
  };
  const Row rows[] = {
      {core::StackKind::kExt4DR, "yes (flush per fsync)"},
      {core::StackKind::kBfsDR, "yes (single flush, no waits)"},
      {core::StackKind::kOptFs, "delayed (osync)"},
      {core::StackKind::kExt4OD, "NO (nobarrier, unsafe)"},
      {core::StackKind::kBfsOD, "ordering only (fbarrier)"},
  };
  for (const Row& row : rows)
    t.add_row({core::to_string(row.kind), core::Table::num(run(row.kind), 0),
               row.durable});
  t.print();
  std::printf(
      "\nBFS-DR keeps full durability and still beats EXT4-DR; BFS-OD gives\n"
      "EXT4-OD-class speed while still guaranteeing mailbox write order.\n");
  return 0;
}
