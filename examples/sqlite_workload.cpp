// Example: run the SQLite insert-transaction model on three IO stacks and
// print the inserts/sec progression the paper's §5/§6.4 describe:
// every fdatasync used purely for *ordering* can become an fdatabarrier.
//
// Build: cmake --build build && ./build/examples/sqlite_workload
#include <cstdio>

#include "core/stack.h"
#include "core/table.h"
#include "flash/profile.h"
#include "wl/sqlite.h"

using namespace bio;

namespace {

double run(core::StackKind kind, std::uint64_t txns) {
  core::StackConfig cfg =
      core::StackConfig::make(kind, flash::DeviceProfile::plain_ssd());
  core::Stack stack(cfg);
  wl::SqliteParams p;
  p.mode = wl::SqliteParams::Mode::kPersist;
  p.transactions = txns;
  wl::SqliteResult r = wl::run_sqlite(stack, p, sim::Rng(42));
  return r.tx_per_sec;
}

}  // namespace

int main() {
  std::printf("SQLite PERSIST-mode inserts on a plain SSD.\n");
  std::printf("Each insert = undo log, header, B-tree pages, commit —\n");
  std::printf("four syncs, three of which only need *ordering*.\n\n");

  const double ext4 = run(core::StackKind::kExt4DR, 300);
  const double bfs_dr = run(core::StackKind::kBfsDR, 1000);
  const double bfs_od = run(core::StackKind::kBfsOD, 4000);

  core::Table t({"stack", "syncs per txn", "inserts/sec", "speedup"});
  t.add_row({"EXT4 (fdatasync x4)", "4 durable", core::Table::num(ext4, 0),
             "1.0x"});
  t.add_row({"BarrierFS DR (fdatabarrier x3 + fdatasync)", "1 durable",
             core::Table::num(bfs_dr, 0),
             core::Table::num(bfs_dr / ext4, 1) + "x"});
  t.add_row({"BarrierFS OD (fdatabarrier x4)", "0 durable",
             core::Table::num(bfs_od, 0),
             core::Table::num(bfs_od / ext4, 1) + "x"});
  t.print();

  std::printf(
      "\nThe ordering guarantees are identical in all three rows; only the\n"
      "point of durability moves (transaction boundary vs device cache).\n");
  return 0;
}
