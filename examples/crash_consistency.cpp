// Example / CLI: the full-stack crash-recovery sweep.
//
// For each IO stack, run many randomized api::Vfs workloads (with
// unlink/rename namespace churn), cut power at random simulated instants,
// recover the durable image through fs::Recovery, remount a fresh stack
// over the recovered state, and verify the stack's crash-consistency
// contract (chk::run_crash_sweep):
//
//   * EXT4-DR / BFS-DR : an fsync that returned implies durable data,
//   * every stack      : per-file epoch-prefix ordering of synced writes
//                        + recovered-namespace consistency (durable
//                        renames/unlinks stick, nothing fabricated),
//   * OptFS            : osync delayed durability (prefix now, everything
//                        after the device quiesces),
//   * EXT4-OD          : mounted nobarrier on an orderless device — it
//                        *claims* the EXT4-DR contract and the sweep is
//                        expected to catch it violating (Fig 1).
//
// A final sweep cuts power on a heterogeneous two-volume node (BFS-DR +
// EXT4-DR behind one Vfs mount table) and verifies each volume's contract
// independently — one volume's recovery reads only its own journal.
//
// Build: cmake --build build && ./build/examples/crash_consistency
// CI:    ./build/examples/crash_consistency --smoke
#include <cstdio>
#include <cstring>

#include "chk/crash_check.h"

using namespace bio;

int main(int argc, char** argv) {
  int points = 200;
  for (int i = 1; i < argc; ++i) {
    // Smoke stays large enough that the EXT4-OD expected-failure check is
    // deterministic (the first violating sweep seed is in the 90s).
    if (std::strcmp(argv[i], "--smoke") == 0) points = 120;
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc)
      points = std::atoi(argv[++i]);
  }

  const core::StackKind kinds[] = {
      core::StackKind::kExt4DR, core::StackKind::kBfsDR,
      core::StackKind::kBfsOD, core::StackKind::kOptFs,
      core::StackKind::kExt4OD};

  std::printf("crash-recovery sweep: %d crash points per stack\n\n", points);
  std::printf(
      "stack   | points | failed | quiesced | acked pgs | order wrs | wraps "
      "| verdict\n");
  std::printf(
      "--------+--------+--------+----------+-----------+-----------+-------"
      "+--------\n");

  // The nobarrier stack's violations cluster in narrow windows (data acked
  // while still in the device cache), so a small random sweep can miss
  // them. When it does, hunt deliberately: several seeds, crash points
  // stepped densely through the active workload.
  auto hunt_legacy_violation = [] {
    for (std::uint64_t seed = 1; seed <= 50; ++seed)
      for (bio::sim::SimTime t = 2'000'000; t <= 30'000'000; t += 1'500'000)
        if (!chk::run_crash_check(core::StackKind::kExt4OD, seed, t, {}).ok())
          return true;
    return false;
  };

  bool ok = true;
  for (core::StackKind kind : kinds) {
    const bool expect_violations = kind == core::StackKind::kExt4OD;
    chk::CrashSweepResult r = chk::run_crash_sweep(kind, points);
    if (expect_violations && r.ok() && hunt_legacy_violation())
      r.failed_points = 1;  // found by the directed hunt
    const bool stack_ok = expect_violations ? !r.ok() : r.ok();
    ok = ok && stack_ok;
    std::printf("%-7s | %6d | %6d | %8d | %9llu | %9llu | %5llu | %s\n",
                core::to_string(kind), r.points, r.failed_points,
                r.quiesced_points,
                static_cast<unsigned long long>(r.acked_pages_checked),
                static_cast<unsigned long long>(r.order_writes_checked),
                static_cast<unsigned long long>(r.journal_wraps),
                stack_ok
                    ? (expect_violations ? "BROKEN (as the paper predicts)"
                                         : "ok")
                    : (expect_violations
                           ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                           : "VIOLATED"));
    if (!stack_ok || expect_violations)
      for (const std::string& v : r.sample_violations)
        std::printf("        ! %s\n", v.c_str());
  }

  // ---- multi-volume node: two independent journals, one power cut ----------
  const std::vector<core::StackKind> node_kinds = {core::StackKind::kBfsDR,
                                                   core::StackKind::kExt4DR};
  std::printf("\nmulti-volume node sweep: %d crash points, volumes:", points);
  for (core::StackKind k : node_kinds)
    std::printf(" %s", core::to_string(k));
  std::printf("\n");
  const chk::MultiVolumeSweepResult mv =
      chk::run_multi_volume_crash_sweep(node_kinds, points);
  for (std::size_t v = 0; v < mv.volumes.size(); ++v) {
    const chk::CrashSweepResult& r = mv.volumes[v];
    std::printf(
        "  v%zu %-7s | failed %d | acked pgs %llu | order wrs %llu | "
        "ns facts %llu | %s\n",
        v, core::to_string(node_kinds[v]), r.failed_points,
        static_cast<unsigned long long>(r.acked_pages_checked),
        static_cast<unsigned long long>(r.order_writes_checked),
        static_cast<unsigned long long>(r.namespace_facts_checked),
        r.ok() ? "ok" : "VIOLATED");
  }
  ok = ok && mv.ok();
  for (const std::string& v : mv.sample_violations)
    std::printf("        ! %s\n", v.c_str());

  std::printf(
      "\nThe four barrier/durability stacks keep their guarantees across "
      "every\npower cut — per volume, even several heterogeneous volumes to "
      "a node;\nthe legacy nobarrier stack demonstrably does not, which is "
      "the problem\nthe barrier-enabled IO stack exists to fix.\n");
  return ok ? 0 : 1;
}
