// Example / CLI: the full-stack crash-recovery sweeps.
//
// For each IO stack, run many randomized api::Vfs workloads (with
// unlink/rename namespace churn), cut power at random simulated instants,
// recover the durable image through fs::Recovery, remount a fresh stack
// over the recovered state, and verify the stack's crash-consistency
// contract (chk::run_crash_sweep):
//
//   * EXT4-DR / BFS-DR : an fsync that returned implies durable data,
//   * every stack      : per-file epoch-prefix ordering of synced writes
//                        + recovered-namespace consistency (durable
//                        renames/unlinks stick, nothing fabricated),
//   * OptFS            : osync delayed durability (prefix now, everything
//                        after the device quiesces),
//   * EXT4-OD          : mounted nobarrier on an orderless device — it
//                        *claims* the EXT4-DR contract and the sweep is
//                        expected to catch it violating (Fig 1).
//
// The concurrent sweep (chk::run_concurrent_crash_sweep) runs the same
// per-kind verdicts with N writer coroutines sharing files through
// independent fds — the cross-writer contract of DESIGN.md §9; a final
// sweep cuts power on a heterogeneous two-volume node (BFS-DR + EXT4-DR
// behind one Vfs mount table) and verifies each volume's contract
// independently.
//
// The ring sweep (chk::run_ring_crash_sweep) drives the same writers
// through api::Ring batched submissions with IOSQE_IO_LINK-style chains
// (write -> barrier -> write) and adds the linked-chain contract of
// DESIGN.md §10 on top of the concurrent verdicts.
//
// The fault sweep (chk::run_fault_crash_sweep) installs a seed-derived
// flash::FaultPlan on the device (transient/hard/torn faults), composes it
// with the power cut and verifies the fault-mode oracle of DESIGN.md §11:
// acked durability survives faults, torn journal writes never replay as
// committed, degraded (errors=remount-ro) volumes recover read-consistent.
// A deliberate negative control re-runs a short sweep with
// BlockLayer::set_swallow_io_errors_for_test — the sweep must catch the
// injected bug deterministically.
//
// Reproducing a failed point: every sweep failure prints its seed, crash
// instant, point index and an exact `--repro` spec; `--repro <spec>`
// replays just that case with full violation output. Specs:
//   --repro <stack>:<base_seed>:<point>        single-writer sweep point
//   --repro conc:<stack>:<base_seed>:<point>   concurrent sweep point
//   --repro ring:<stack>:<base_seed>:<point>   ring sweep point
//   --repro fault:<stack>:<plan-seed>:<point>  fault-injection sweep point
//   --repro node:<base_seed>:<point>           multi-volume sweep point
// Every form takes an optional `q<N>` segment after the stack (after
// `node` for the multi-volume form) carrying the block layer's nr_queues —
// multi-queue sweep failures print it and replay with the same queue
// count: conc:BFS-DR:q4:<base>:<point>, node:q4:<base>:<point>. Malformed
// specs (unknown prefix/stack, non-numeric or empty fields, wrong arity,
// bad queue counts like q0 or qx) are rejected with a usage message and
// exit code 2.
// The CLI replays with DEFAULT sweep options (which is what the CLI
// sweeps run); a failure from a library sweep with custom options must be
// replayed through run_crash_check / run_concurrent_crash_check using the
// same options and the seed/crash pair from CrashSweepResult::failures.
//
// Parallelism: sweeps fan their points across host threads
// (sim::HostPool). `--jobs N` picks the thread count (default: the
// BIO_SWEEP_JOBS env var, else hardware concurrency; `--jobs 1` forces the
// legacy serial path). Results are bit-identical at any jobs value —
// deterministic seed partitioning plus canonical-order merging, DESIGN.md
// §13. `--parallel-smoke` runs a short all-flavour parallel sweep (the CI
// TSan leg's target).
//
// Build: cmake --build build && ./build/examples/crash_consistency
// CI:    ./build/examples/crash_consistency --smoke --jobs 8
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "chk/crash_check.h"
#include "sim/host_pool.h"

using namespace bio;

namespace {

bool parse_kind(const std::string& name, core::StackKind& out) {
  for (core::StackKind k :
       {core::StackKind::kExt4DR, core::StackKind::kExt4OD,
        core::StackKind::kBfsDR, core::StackKind::kBfsOD,
        core::StackKind::kOptFs}) {
    if (name == core::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void print_violations(const std::vector<std::string>& violations) {
  for (const std::string& v : violations) std::printf("  ! %s\n", v.c_str());
  if (violations.empty()) std::printf("  (no violations — case is clean)\n");
}

/// Strict decimal parse: the whole field must be digits (no sign, no
/// trailing junk, not empty). A silent atoi-style zero would "replay" a
/// different case than the one that failed.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  out = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// Strict `q<N>` queue-count field: 'q' + decimal, N in [1, 64]. q0 (a
/// block layer needs at least one queue) and junk like "qx" are malformed.
bool parse_queues(const std::string& s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (s.size() < 2 || s[0] != 'q' || !parse_u64(s.substr(1), v)) return false;
  if (v < 1 || v > 64) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Replays one sweep point from a `--repro` spec; returns the process exit
/// code (0 = the case is clean now, 2 = malformed spec).
int run_repro(const std::string& spec) {
  // Split on ':' — [conc|ring|fault:]<stack>[:q<N>]:<base>:<point> or
  // node[:q<N>]:<base>:<point>.
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t next = spec.find(':', pos);
    parts.push_back(spec.substr(pos, next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  auto fail = [&] {
    std::fprintf(stderr,
                 "bad --repro spec '%s'\nusage: --repro "
                 "<stack>[:q<N>]:<base>:<point>"
                 " | conc:<stack>[:q<N>]:<base>:<point>"
                 " | ring:<stack>[:q<N>]:<base>:<point>"
                 " | fault:<stack>[:q<N>]:<plan-seed>:<point>"
                 " | node[:q<N>]:<base>:<point>\n"
                 "       (stack: EXT4-DR EXT4-OD BFS-DR BFS-OD OptFS; "
                 "base/point: decimal; qN: block-layer queues in [1, 64])\n",
                 spec.c_str());
    return 2;
  };
  if (parts.size() < 3 || parts.size() > 5) return fail();
  const bool conc = parts[0] == "conc";
  const bool ring = parts[0] == "ring";
  const bool fault = parts[0] == "fault";
  const bool node = parts[0] == "node";
  const bool prefixed = conc || ring || fault;

  // Consume the form tag and stack name, then the optional q<N> segment;
  // exactly <base>:<point> must remain.
  std::size_t idx = 0;
  core::StackKind kind{};
  if (node) {
    idx = 1;
  } else {
    if (prefixed) idx = 1;
    if (idx >= parts.size() || !parse_kind(parts[idx], kind)) return fail();
    ++idx;
  }
  std::uint32_t nr_queues = 1;
  if (parts.size() - idx == 3) {
    if (!parse_queues(parts[idx], nr_queues)) return fail();
    ++idx;
  }
  if (parts.size() - idx != 2) return fail();

  std::uint64_t base = 0;
  std::uint64_t point_u = 0;
  if (!parse_u64(parts[idx], base) || !parse_u64(parts[idx + 1], point_u) ||
      point_u > 1'000'000) {
    return fail();
  }
  const int point = static_cast<int>(point_u);
  const std::uint64_t seed = base + point_u;
  const sim::SimTime crash_at = chk::sweep_crash_at(base, point);

  if (node) {
    const std::vector<core::StackKind> kinds = {core::StackKind::kBfsDR,
                                                core::StackKind::kExt4DR};
    chk::CrashCheckOptions opt;
    opt.nr_queues = nr_queues;
    std::printf("replaying node point %d: seed=%llu crash=%lluns queues=%u\n",
                point, (unsigned long long)seed, (unsigned long long)crash_at,
                nr_queues);
    const chk::MultiVolumeCrashResult r =
        chk::run_multi_volume_crash_check(kinds, seed, crash_at, opt);
    for (std::size_t v = 0; v < r.volumes.size(); ++v) {
      std::printf("volume %zu (%s):\n", v, core::to_string(kinds[v]));
      print_violations(r.volumes[v].violations);
    }
    return r.ok() ? 0 : 1;
  }

  std::printf("replaying %s%s point %d: seed=%llu crash=%lluns queues=%u\n",
              conc    ? "concurrent "
              : ring  ? "ring "
              : fault ? "fault "
                      : "",
              core::to_string(kind), point, (unsigned long long)seed,
              (unsigned long long)crash_at, nr_queues);
  chk::ConcurrentCrashOptions conc_opt;
  conc_opt.nr_queues = nr_queues;
  chk::RingCrashOptions ring_opt;
  ring_opt.nr_queues = nr_queues;
  chk::FaultCrashOptions fault_opt;
  fault_opt.wl.nr_queues = nr_queues;
  chk::CrashCheckOptions plain_opt;
  plain_opt.nr_queues = nr_queues;
  const chk::CrashCheckResult r =
      conc ? chk::run_concurrent_crash_check(kind, seed, crash_at, conc_opt)
      : ring  ? chk::run_ring_crash_check(kind, seed, crash_at, ring_opt)
      : fault ? chk::run_fault_crash_check(kind, seed, crash_at, fault_opt)
              : chk::run_crash_check(kind, seed, crash_at, plain_opt);
  std::printf(
      "  quiesced=%d files=%u txns replayed=%u discarded=%u clean=%d "
      "wraps=%llu\n",
      (int)r.quiesced, r.files_recovered, r.txns_replayed, r.txns_discarded,
      (int)r.recovery_clean, (unsigned long long)r.journal_wraps);
  if (fault)
    std::printf("  faults=%llu retries=%llu io-failures=%llu syncs-failed=%u "
                "degraded=%d\n",
                (unsigned long long)r.faults_injected,
                (unsigned long long)r.io_retries,
                (unsigned long long)r.io_failures, r.syncs_failed,
                (int)r.volume_degraded);
  print_violations(r.violations);
  return r.ok() ? 0 : 1;
}

/// The CI TSan leg's target: a short sweep through every flavour's
/// parallel driver (single-writer, concurrent, ring, fault — including the
/// swallowed-EIO negative control — and the multi-volume node), sized so
/// the race surface is fully exercised without a full smoke's wall clock.
/// Verdict-only: the full contract expectations (EXT4-OD must break, ...)
/// are --smoke's job; here a flavour fails only if a clean stack violates.
int run_parallel_smoke(int jobs) {
  const int n = 24;  // points per flavour; > any sane jobs value
  const auto t0 = std::chrono::steady_clock::now();
  bool ok = true;

  const chk::CrashSweepResult sw =
      chk::run_crash_sweep(core::StackKind::kBfsDR, n, 1, {}, jobs);
  ok = ok && sw.ok();
  const chk::CrashSweepResult conc =
      chk::run_concurrent_crash_sweep(core::StackKind::kExt4DR, n, 1, {}, jobs);
  ok = ok && conc.ok();
  const chk::CrashSweepResult ring =
      chk::run_ring_crash_sweep(core::StackKind::kBfsOD, n, 1, {}, jobs);
  ok = ok && ring.ok();
  const chk::CrashSweepResult fault =
      chk::run_fault_crash_sweep(core::StackKind::kOptFs, n, 1, {}, jobs);
  ok = ok && fault.ok();
  chk::FaultCrashOptions swallow;
  swallow.swallow_io_errors = true;
  const chk::CrashSweepResult neg = chk::run_fault_crash_sweep(
      core::StackKind::kExt4DR, 20, 1, swallow, jobs);
  ok = ok && neg.failed_points > 0;  // the injected bug must be caught
  const chk::MultiVolumeSweepResult mv = chk::run_multi_volume_crash_sweep(
      {core::StackKind::kBfsDR, core::StackKind::kExt4DR}, n, 1, {}, jobs);
  ok = ok && mv.ok();
  // Multi-queue flavours: same race surface plus the cross-queue epoch
  // fence (nr_queues=4 over the checker's 2-channel device).
  chk::ConcurrentCrashOptions conc4;
  conc4.nr_queues = 4;
  const chk::CrashSweepResult conc_mq = chk::run_concurrent_crash_sweep(
      core::StackKind::kBfsDR, n, 1, conc4, jobs);
  ok = ok && conc_mq.ok();
  chk::FaultCrashOptions fault4;
  fault4.wl.nr_queues = 4;
  const chk::CrashSweepResult fault_mq = chk::run_fault_crash_sweep(
      core::StackKind::kBfsOD, n, 1, fault4, jobs);
  ok = ok && fault_mq.ok();

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "parallel smoke: jobs=%d points/flavour=%d wall=%.1fs "
      "(sweep %d, conc %d, ring %d, fault %d, neg-control %d, node %d, "
      "conc-q4 %d, fault-q4 %d failed points) -> %s\n",
      bio::sim::resolve_host_jobs(jobs), n, secs, sw.failed_points,
      conc.failed_points, ring.failed_points, fault.failed_points,
      neg.failed_points, mv.failed_points, conc_mq.failed_points,
      fault_mq.failed_points, ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int points = 200;
  int jobs = 0;  // 0 = BIO_SWEEP_JOBS env, else hardware concurrency
  bool parallel_smoke = false;
  for (int i = 1; i < argc; ++i) {
    // Smoke stays large enough that the EXT4-OD expected-failure check is
    // deterministic (the first violating sweep seed is in the 90s).
    if (std::strcmp(argv[i], "--smoke") == 0) points = 120;
    if (std::strcmp(argv[i], "--parallel-smoke") == 0) parallel_smoke = true;
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc)
      points = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      // Same strictness as --repro: a silently mis-parsed jobs count would
      // run a different configuration than the one asked for.
      std::uint64_t j = 0;
      if (!parse_u64(argv[i + 1], j) || j < 1 ||
          j > static_cast<std::uint64_t>(bio::sim::kMaxHostJobs)) {
        std::fprintf(stderr,
                     "bad --jobs '%s' (want a decimal in [1, %d])\n",
                     argv[i + 1], bio::sim::kMaxHostJobs);
        return 2;
      }
      jobs = static_cast<int>(j);
      ++i;
    }
    if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc)
      return run_repro(argv[i + 1]);
  }
  if (parallel_smoke) return run_parallel_smoke(jobs);
  const auto sweep_t0 = std::chrono::steady_clock::now();

  const core::StackKind kinds[] = {
      core::StackKind::kExt4DR, core::StackKind::kBfsDR,
      core::StackKind::kBfsOD, core::StackKind::kOptFs,
      core::StackKind::kExt4OD};

  std::printf("crash-recovery sweep: %d crash points per stack, jobs=%d\n\n",
              points, bio::sim::resolve_host_jobs(jobs));
  std::printf(
      "stack   | points | failed | quiesced | acked pgs | order wrs | wraps "
      "| verdict\n");
  std::printf(
      "--------+--------+--------+----------+-----------+-----------+-------"
      "+--------\n");

  // The nobarrier stack's violations cluster in narrow windows (data acked
  // while still in the device cache), so a small random sweep can miss
  // them. When it does, hunt deliberately: several seeds, crash points
  // stepped densely through the active workload.
  auto hunt_legacy_violation = [] {
    for (std::uint64_t seed = 1; seed <= 50; ++seed)
      for (bio::sim::SimTime t = 2'000'000; t <= 30'000'000; t += 1'500'000)
        if (!chk::run_crash_check(core::StackKind::kExt4OD, seed, t, {}).ok())
          return true;
    return false;
  };

  bool ok = true;
  for (core::StackKind kind : kinds) {
    const bool expect_violations = kind == core::StackKind::kExt4OD;
    chk::CrashSweepResult r = chk::run_crash_sweep(kind, points, 1, {}, jobs);
    if (expect_violations && r.ok() && hunt_legacy_violation())
      r.failed_points = 1;  // found by the directed hunt
    const bool stack_ok = expect_violations ? !r.ok() : r.ok();
    ok = ok && stack_ok;
    std::printf("%-7s | %6d | %6d | %8d | %9llu | %9llu | %5llu | %s\n",
                core::to_string(kind), r.points, r.failed_points,
                r.quiesced_points,
                static_cast<unsigned long long>(r.acked_pages_checked),
                static_cast<unsigned long long>(r.order_writes_checked),
                static_cast<unsigned long long>(r.journal_wraps),
                stack_ok
                    ? (expect_violations ? "BROKEN (as the paper predicts)"
                                         : "ok")
                    : (expect_violations
                           ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                           : "VIOLATED"));
    if (!stack_ok || expect_violations)
      for (const std::string& v : r.sample_violations)
        std::printf("        ! %s\n", v.c_str());
  }

  // ---- concurrent multi-writer sweep (DESIGN.md §9) ------------------------
  std::printf(
      "\nconcurrent sweep: %d crash points per stack, %u writers over "
      "shared fds\n",
      points, chk::ConcurrentCrashOptions{}.wl.writers);
  std::printf(
      "stack   | failed | acked pgs | order wrs | syncs | fd-cyc | "
      "close-in-sync | verdict\n");
  for (core::StackKind kind : kinds) {
    const bool expect_violations = kind == core::StackKind::kExt4OD;
    const chk::CrashSweepResult r =
        chk::run_concurrent_crash_sweep(kind, points, 1, {}, jobs);
    const bool stack_ok = expect_violations ? !r.ok() : r.ok();
    ok = ok && stack_ok;
    std::printf(
        "%-7s | %6d | %9llu | %9llu | %5llu | %6llu | %13llu | %s\n",
        core::to_string(kind), r.failed_points,
        static_cast<unsigned long long>(r.acked_pages_checked),
        static_cast<unsigned long long>(r.order_writes_checked),
        static_cast<unsigned long long>(r.syncs_recorded),
        static_cast<unsigned long long>(r.fd_cycles),
        static_cast<unsigned long long>(r.closes_during_sync),
        stack_ok ? (expect_violations ? "BROKEN (as the paper predicts)"
                                      : "ok")
                 : (expect_violations
                        ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                        : "VIOLATED"));
    if (!stack_ok || expect_violations)
      for (const std::string& v : r.sample_violations)
        std::printf("        ! %s\n", v.c_str());
  }

  // ---- ring-driven concurrent sweep (DESIGN.md §10) ------------------------
  std::printf(
      "\nring sweep: %d crash points per stack, %u writers batching linked "
      "chains\n",
      points, chk::RingCrashOptions{}.wl.writers);
  std::printf(
      "stack   | failed | chain facts | acked pgs | order wrs | syncs | "
      "fd-cyc | verdict\n");
  for (core::StackKind kind : kinds) {
    const bool expect_violations = kind == core::StackKind::kExt4OD;
    const chk::CrashSweepResult r =
        chk::run_ring_crash_sweep(kind, points, 1, {}, jobs);
    const bool stack_ok = expect_violations ? !r.ok() : r.ok();
    ok = ok && stack_ok;
    std::printf(
        "%-7s | %6d | %11llu | %9llu | %9llu | %5llu | %6llu | %s\n",
        core::to_string(kind), r.failed_points,
        static_cast<unsigned long long>(r.chain_facts_checked),
        static_cast<unsigned long long>(r.acked_pages_checked),
        static_cast<unsigned long long>(r.order_writes_checked),
        static_cast<unsigned long long>(r.syncs_recorded),
        static_cast<unsigned long long>(r.fd_cycles),
        stack_ok ? (expect_violations ? "BROKEN (as the paper predicts)"
                                      : "ok")
                 : (expect_violations
                        ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                        : "VIOLATED"));
    if (!stack_ok || expect_violations)
      for (const std::string& v : r.sample_violations)
        std::printf("        ! %s\n", v.c_str());
  }

  // ---- fault-injection sweep (DESIGN.md §11) -------------------------------
  std::printf(
      "\nfault-injection sweep: %d crash points per stack, seed-derived "
      "device fault plans\n",
      points);
  std::printf(
      "stack   | failed | faults | retries | io-fail | eio/erofs | degraded "
      "| verdict\n");
  for (core::StackKind kind : kinds) {
    const bool expect_violations = kind == core::StackKind::kExt4OD;
    const chk::CrashSweepResult r =
        chk::run_fault_crash_sweep(kind, points, 1, {}, jobs);
    const bool stack_ok = expect_violations ? !r.ok() : r.ok();
    ok = ok && stack_ok;
    std::printf(
        "%-7s | %6d | %6llu | %7llu | %7llu | %9llu | %8d | %s\n",
        core::to_string(kind), r.failed_points,
        (unsigned long long)r.faults_injected,
        (unsigned long long)r.io_retries,
        (unsigned long long)r.io_failures,
        (unsigned long long)r.syncs_failed, r.degraded_points,
        stack_ok ? (expect_violations ? "BROKEN (as the paper predicts)"
                                      : "ok")
                 : (expect_violations
                        ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                        : "VIOLATED"));
    if (!stack_ok || expect_violations)
      for (const std::string& v : r.sample_violations)
        std::printf("        ! %s\n", v.c_str());
  }

  // ---- multi-queue sweeps: nr_queues=4 (DESIGN.md §14) ---------------------
  // The concurrent + fault flavours again, with four block-layer software
  // queues over the checker's 2-channel device: writer contexts spread
  // across queues, so the cross-queue epoch fence is on every barrier's
  // path. The clean stacks must stay clean; the nobarrier stack must stay
  // deterministically broken (queue count does not change what the device
  // promises).
  {
    std::printf(
        "\nmulti-queue sweeps: nr_queues=4, %d crash points per stack "
        "(concurrent + fault flavours)\n",
        points);
    std::printf(
        "stack   | conc failed | fault failed | acked pgs | order wrs | "
        "verdict\n");
    chk::ConcurrentCrashOptions conc_opt;
    conc_opt.nr_queues = 4;
    chk::FaultCrashOptions fault_opt;
    fault_opt.wl.nr_queues = 4;
    for (core::StackKind kind : kinds) {
      const bool expect_violations = kind == core::StackKind::kExt4OD;
      const chk::CrashSweepResult rc =
          chk::run_concurrent_crash_sweep(kind, points, 1, conc_opt, jobs);
      const chk::CrashSweepResult rf =
          chk::run_fault_crash_sweep(kind, points, 1, fault_opt, jobs);
      const bool stack_ok = expect_violations ? !rc.ok() && !rf.ok()
                                              : rc.ok() && rf.ok();
      ok = ok && stack_ok;
      std::printf(
          "%-7s | %11d | %12d | %9llu | %9llu | %s\n", core::to_string(kind),
          rc.failed_points, rf.failed_points,
          static_cast<unsigned long long>(rc.acked_pages_checked),
          static_cast<unsigned long long>(rc.order_writes_checked),
          stack_ok ? (expect_violations ? "BROKEN (as the paper predicts)"
                                        : "ok")
                   : (expect_violations
                          ? "UNEXPECTEDLY CLEAN (checker too weak?)"
                          : "VIOLATED"));
      if (!stack_ok)
        for (const chk::CrashSweepResult* r : {&rc, &rf})
          for (const std::string& v : r->sample_violations)
            std::printf("        ! %s\n", v.c_str());
    }
  }

  // Negative control: complete failed IOs as successes (the injected bug)
  // and the same sweep seeds must now catch acked data never landing.
  {
    chk::FaultCrashOptions swallow;
    swallow.swallow_io_errors = true;
    const chk::CrashSweepResult r = chk::run_fault_crash_sweep(
        core::StackKind::kExt4DR, 20, 1, swallow, jobs);
    const bool caught = r.failed_points > 0;
    ok = ok && caught;
    std::printf("negative control (swallowed EIO, EXT4-DR, 20 points): %s\n",
                caught ? "detected (oracle is load-bearing)"
                       : "NOT DETECTED (checker too weak?)");
  }

  // ---- multi-volume node: two independent journals, one power cut ----------
  const std::vector<core::StackKind> node_kinds = {core::StackKind::kBfsDR,
                                                   core::StackKind::kExt4DR};
  std::printf("\nmulti-volume node sweep: %d crash points, volumes:", points);
  for (core::StackKind k : node_kinds)
    std::printf(" %s", core::to_string(k));
  std::printf("\n");
  const chk::MultiVolumeSweepResult mv =
      chk::run_multi_volume_crash_sweep(node_kinds, points, 1, {}, jobs);
  for (std::size_t v = 0; v < mv.volumes.size(); ++v) {
    const chk::CrashSweepResult& r = mv.volumes[v];
    std::printf(
        "  v%zu %-7s | failed %d | acked pgs %llu | order wrs %llu | "
        "ns facts %llu | %s\n",
        v, core::to_string(node_kinds[v]), r.failed_points,
        static_cast<unsigned long long>(r.acked_pages_checked),
        static_cast<unsigned long long>(r.order_writes_checked),
        static_cast<unsigned long long>(r.namespace_facts_checked),
        r.ok() ? "ok" : "VIOLATED");
  }
  ok = ok && mv.ok();
  for (const std::string& v : mv.sample_violations)
    std::printf("        ! %s\n", v.c_str());

  const double sweep_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_t0)
          .count();
  std::printf("\ntotal sweep wall time: %.1fs (jobs=%d)\n", sweep_secs,
              bio::sim::resolve_host_jobs(jobs));
  std::printf(
      "\nThe four barrier/durability stacks keep their guarantees across "
      "every\npower cut — single-writer and concurrent, per volume, even "
      "several\nheterogeneous volumes to a node; the legacy nobarrier stack "
      "demonstrably\ndoes not, which is the problem the barrier-enabled IO "
      "stack exists to fix.\n");
  return ok ? 0 : 1;
}
