// Example: demonstrate what the barrier stack guarantees across a power
// failure — and what the legacy stack does not.
//
// We run the same "log then checkpoint" application pattern on two stacks,
// cut power at the same instant, and inspect what recovery would find.
//
// Build: cmake --build build && ./build/examples/crash_consistency
#include <cstdio>

#include "blk/block_layer.h"
#include "flash/device.h"
#include "flash/profile.h"
#include "sim/rng.h"

using namespace bio;
using namespace bio::sim::literals;

namespace {

struct Outcome {
  int pairs_written = 0;
  int broken_pairs = 0;  // checkpoint persisted without its log record
};

/// The application alternates: append a LOG record (high LBA region),
/// barrier, write a CHECKPOINT (low LBA region), barrier. The regions are
/// far apart, as log and data areas are on a real disk — which is exactly
/// what makes the reordering elevator dangerous on the legacy stack.
/// Recovery is correct only if a checkpoint never survives without its
/// log record.
Outcome run_once(bool barrier_stack, sim::SimTime crash_at) {
  sim::Simulator sim;
  flash::DeviceProfile profile = flash::DeviceProfile::plain_ssd();
  profile.queue_depth = 16;
  profile.cache_entries = 64;
  profile.barrier_mode = barrier_stack ? flash::BarrierMode::kInOrderRecovery
                                       : flash::BarrierMode::kNone;
  flash::StorageDevice dev(sim, profile);
  blk::BlockLayerConfig bcfg;
  bcfg.scheduler = "elevator";
  bcfg.epoch_scheduling = barrier_stack;
  bcfg.order_preserving_dispatch = barrier_stack;
  blk::BlockLayer blk(sim, dev, bcfg);
  dev.start();
  blk.start();

  Outcome out;
  std::vector<std::pair<flash::Version, flash::Version>> pairs;
  auto app = [&]() -> sim::Task {
    for (int i = 0; i < 40; ++i) {
      std::vector<std::pair<flash::Lba, flash::Version>> log_write;
      log_write.emplace_back(static_cast<flash::Lba>(8000 + i),
                             blk.next_version());
      const flash::Version log_v = log_write[0].second;
      blk.submit(blk::make_write_request(sim, std::move(log_write),
                                         /*ordered=*/true, /*barrier=*/true));
      std::vector<std::pair<flash::Lba, flash::Version>> ckpt_write;
      ckpt_write.emplace_back(static_cast<flash::Lba>(i),
                              blk.next_version());
      const flash::Version ckpt_v = ckpt_write[0].second;
      blk.submit(blk::make_write_request(sim, std::move(ckpt_write),
                                         /*ordered=*/true, /*barrier=*/true));
      pairs.emplace_back(log_v, ckpt_v);
      co_await sim.delay(20_us);
    }
  };
  sim.spawn("app", app());
  sim.run_until(crash_at);  // power failure

  auto durable = dev.durable_state();
  out.pairs_written = static_cast<int>(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const flash::Lba log_lba = static_cast<flash::Lba>(8000 + i);
    const flash::Lba ckpt_lba = static_cast<flash::Lba>(i);
    const bool ckpt_ok =
        durable.contains(ckpt_lba) && durable.at(ckpt_lba) >= pairs[i].second;
    const bool log_ok =
        durable.contains(log_lba) && durable.at(log_lba) >= pairs[i].first;
    if (ckpt_ok && !log_ok) ++out.broken_pairs;
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Application invariant: a CHECKPOINT block must never persist\n"
      "without the LOG record written (and barriered) before it.\n\n");

  int legacy_broken = 0, barrier_broken = 0, trials = 0;
  for (sim::SimTime t = 300; t <= 2400; t += 300) {
    ++trials;
    legacy_broken += run_once(false, t * 1_us).broken_pairs;
    barrier_broken += run_once(true, t * 1_us).broken_pairs;
  }
  std::printf("power cuts tried:            %d\n", trials);
  std::printf("legacy stack broken pairs:   %d  (orderless: barriers are "
              "ignored)\n",
              legacy_broken);
  std::printf("barrier stack broken pairs:  %d  (epoch order preserved by "
              "in-order recovery)\n",
              barrier_broken);
  return barrier_broken == 0 ? 0 : 1;
}
