#!/usr/bin/env python3
"""iolint launcher — see cli.py for the implementation.

Run from anywhere:  python3 tools/iolint/iolint.py [--ci] [paths...]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from iolint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
