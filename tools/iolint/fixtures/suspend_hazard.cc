// iolint fixture — suspend-hazard.
//
// Reconstructs the two ledger shapes the check exists for:
//   * DESIGN.md §9.2-3: OptFS journaled-data transaction misattribution —
//     a txn id read in one synchronous stretch is acted on after transfer
//     waits, by which time the transaction may have closed.
//   * DESIGN.md §11.4-1: host-retry re-entering a later epoch — a capture
//     made outside a retry loop is stale on every iteration after the
//     first.
// Plus the scratch-member rule and the good (re-read / annotated) forms.
//
// Never compiled: scanned by tools/iolint/selftest.py with
// fixtures.iolint.toml.  `iolint-expect:` markers pin the finding lines.

#include <cstdint>

struct Journal {
  std::uint64_t running_txn_id() const;
  std::size_t running_payload() const;
  sim::Task commit(std::uint64_t tid, int mode);
};

struct PageCache {
  void dirty_pages_of(std::uint32_t ino, std::vector<PageKey>& out);
};

struct Fs {
  Journal* journal_;
  PageCache cache_;
  std::vector<PageKey> scratch_keys_;

  sim::Task osync_misattributed(Inode& f);
  sim::Task osync_reread(Inode& f);
  sim::Task osync_annotated(Inode& f);
  sim::Task retry_stale_epoch(Request& r);
  sim::Task scratch_stale(Inode& f);
};

// §9.2-3 shape: tid is read before the transfer wait and the commit after
// the wait names it — by then a concurrent osync may have closed that
// transaction and the journaled pages live in a later one.
sim::Task Fs::osync_misattributed(Inode& f) {
  const std::uint64_t tid = journal_->running_txn_id();
  co_await wait_requests(f);
  record_attribution(f, tid);  // iolint-expect: suspend-hazard
  co_await journal_->commit(tid, kDurable);
}

// Good: the id is re-read after resuming, in the same synchronous stretch
// as the code that acts on it.
sim::Task Fs::osync_reread(Inode& f) {
  std::uint64_t tid = journal_->running_txn_id();
  co_await wait_requests(f);
  tid = journal_->running_txn_id();
  record_attribution(f, tid);
  co_await journal_->commit(tid, kDurable);
}

// Good: the capture documents why crossing the suspension is the point
// (the commit must name the txn that carried the batch).
sim::Task Fs::osync_annotated(Inode& f) {
  // iolint: stable-across-suspend(fixture — commit must name this id)
  const std::uint64_t tid = journal_->running_txn_id();
  co_await wait_requests(f);
  record_attribution(f, tid);
  co_await journal_->commit(tid, kDurable);
}

// §11.4-1 shape: the epoch-scoped capture is made once, outside the
// bounded-retry loop; iteration two re-submits into a later epoch.
sim::Task Fs::retry_stale_epoch(Request& r) {
  const std::uint64_t tid = journal_->running_txn_id();
  for (int attempt = 0; attempt < 3; ++attempt) {
    stamp_epoch(r, tid);  // iolint-expect: suspend-hazard
    co_await resubmit(r);
  }
}

// Scratch-member rule: scratch_keys_ is shared storage, stale after any
// suspension until dirty_pages_of() re-fills it.
sim::Task Fs::scratch_stale(Inode& f) {
  cache_.dirty_pages_of(f.ino, scratch_keys_);
  submit_batch(scratch_keys_);
  co_await wait_requests(f);
  submit_batch(scratch_keys_);  // iolint-expect: suspend-hazard
}
