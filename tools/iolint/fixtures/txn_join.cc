// iolint fixture — txn-join-before-mutate.
//
// Reconstructs DESIGN.md §10.4-1: the buffered-write path grew i_size and
// stamped mtime BEFORE dirty_metadata() — which can suspend — so a
// concurrent writer skipped its own registration and a durably-acked size
// belonged to a transaction that never committed.  The good form is the
// jbd2 get-write-access discipline: register in the running transaction
// first, then mutate in the same synchronous stretch.
//
// Never compiled: scanned by tools/iolint/selftest.py with
// fixtures.iolint.toml.

struct Fs {
  Journal* journal_;
  sim::Task write_unregistered(Inode& f, int n);
  sim::Task write_registered(Inode& f, int n);
  sim::Task write_annotated(Inode& f, int n);
};

// §10.4-1 shape: size/mtime/dirty flags mutate before the inode block has
// joined the running transaction; dirty_metadata() below can suspend.
sim::Task Fs::write_unregistered(Inode& f, int n) {
  f.size_blocks += n;  // iolint-expect: txn-join-before-mutate
  f.mtime_tick = 1;    // iolint-expect: txn-join-before-mutate
  f.meta_dirty = true;  // iolint-expect: txn-join-before-mutate
  co_await journal_->dirty_metadata(f);
}

// Good: registration precedes every mutation (the fixed write() shape).
sim::Task Fs::write_registered(Inode& f, int n) {
  co_await journal_->dirty_metadata(f);
  f.size_blocks += n;
  f.mtime_tick = 1;
  f.meta_dirty = true;
}

// Good: a deferred registration in the same synchronous stretch, carried
// by an annotation naming it.
sim::Task Fs::write_annotated(Inode& f, int n) {
  // iolint: txn-registered(fixture — batch joins the txn two lines down,
  // in this same synchronous stretch)
  f.size_blocks += n;
  co_await journal_->dirty_metadata(f);
}
