// iolint fixture — status-discard.
//
// Every call returning a status-like type must be consumed.  The shapes:
// a plain discarded call, a discarded co_await of a TaskOf<status>
// coroutine, and a `(void)` cast without a reason — versus consumption by
// assignment, condition, must(), and an annotated `(void)`.
//
// The harvest is name-based with ambiguity subtraction: `probe()` below
// is declared both status- and void-returning, so discarding it is NOT a
// finding (the [[nodiscard]] attributes own that case).
//
// Never compiled: scanned by tools/iolint/selftest.py with
// fixtures.iolint.toml.

struct Vfs {
  Status close_one(Fd fd);
  Result<std::size_t> read_some(Fd fd);
  sim::TaskOf<FsStatus> sync_epoch(Inode& f);
  Errno map_status(FsStatus s);
};

Status probe(int which);   // status flavour...
void probe(double which);  // ...and void flavour: ambiguous, not watched

sim::Task exercise(Vfs& vfs, Inode& f, Fd fd) {
  vfs.close_one(fd);  // iolint-expect: status-discard
  vfs.read_some(fd);  // iolint-expect: status-discard
  co_await vfs.sync_epoch(f);  // iolint-expect: status-discard
  (void)vfs.close_one(fd);  // iolint-expect: status-discard
  probe(1);  // ambiguous name: silent here, the compiler's job

  // Consumptions are silent.
  const Status s = vfs.close_one(fd);
  if (!vfs.close_one(fd).ok()) co_return;
  must(vfs.close_one(fd));
  const FsStatus st = co_await vfs.sync_epoch(f);
  co_await vfs.sync_epoch(f);  // iolint: discard-ok(fixture — traffic
                               // shape is the assertion, not the status)
}
