// iolint fixture — detached-task-capture.
//
// Simulator::spawn() detaches the coroutine frame: it self-destroys at
// final suspend, long after the spawning scope unwinds.  The shapes: a
// capturing lambda (the classic coroutine-lambda trap — the closure dies
// at the spawner's `}` while the frame lives on), `&local` / `.get()`
// escapes, and a same-file callee taking reference parameters — versus a
// by-value callee and an annotated site whose owner provably joins.
//
// Never compiled: scanned by tools/iolint/selftest.py with
// fixtures.iolint.toml.

sim::Task by_value_worker(int rounds, Params params) {
  for (int i = 0; i < rounds; ++i) co_await tick(params);
}

sim::Task ref_worker(Counter& shared, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await tick(rounds);
    ++shared.n;
  }
}

void launch(Simulator& sim, Ctx& ctx) {
  Counter local;
  auto owned = std::make_unique<Counter>();

  // The closure is destroyed when launch() returns; the detached frame
  // resumes into freed captures.
  sim.spawn("bad:lambda", [&]() -> sim::Task {  // iolint-expect: detached-task-capture
    ++local.n;
    co_return;
  }());

  sim.spawn("bad:addr", chaos_task(&local, 3));  // iolint-expect: detached-task-capture
  sim.spawn("bad:get", chaos_task(owned.get(), 3));  // iolint-expect: detached-task-capture
  sim.spawn("bad:ref", ref_worker(local, 3));  // iolint-expect: detached-task-capture

  // By-value callee, no escape pattern: silent.
  sim.spawn("ok:value", by_value_worker(3, ctx.params));

  // iolint: detached-owner(fixture — launch() joins this worker below
  // before local leaves scope)
  sim.spawn("ok:annotated", ref_worker(local, 3));
}
