#!/usr/bin/env python3
"""iolint self-test: proves each check fires on the reconstructed ledger
bugs (DESIGN.md §9.2-3, §10.4, §11.4) and stays silent on the fixed
forms, and that the allowlist mechanism suppresses exactly the
fingerprinted finding while flagging stale entries.

Run:  python3 tools/iolint/selftest.py
Exit: 0 on success, 1 on any contract violation.  Wired into ctest via
tests/iolint_test.cc.
"""

import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")
CONFIG = os.path.join(FIXTURES, "fixtures.iolint.toml")
CHECKS = ["suspend-hazard", "status-discard", "txn-join-before-mutate",
          "detached-task-capture"]

_failures = []


def run_iolint(*args, config=CONFIG):
    cmd = [sys.executable, os.path.join(HERE, "iolint.py"),
           "--config", config, "--root", REPO, *args]
    p = subprocess.run(cmd, capture_output=True, text=True)
    return p.returncode, p.stdout + p.stderr


def check(cond, what):
    if cond:
        print(f"  ok: {what}")
    else:
        print(f"  FAIL: {what}")
        _failures.append(what)


def main() -> int:
    rel_fixtures = os.path.relpath(FIXTURES, REPO)

    print("[1/4] expect-mode: every ledger fixture fires on its marked "
          "line, nothing else")
    code, out = run_iolint("--expect-mode", rel_fixtures)
    check(code == 0, f"expect-mode exits 0 (got {code}):\n{out.strip()}")

    print("[2/4] each check fires at least once on its known-bad fixture")
    code, out = run_iolint(rel_fixtures)
    check(code == 1, f"plain run over fixtures exits 1 (got {code})")
    for name in CHECKS:
        n = len(re.findall(rf"\[{re.escape(name)}\]", out))
        check(n >= 1, f"[{name}] fires on its fixture ({n} finding(s))")

    print("[3/4] fixed/annotated forms are silent (no findings beyond "
          "the expect-marked lines — implied by step 1; spot-check the "
          "good-only lines carry none)")
    # Every finding line must carry an expect marker; step 1 already
    # proved the bidirectional match.  Here we assert the finding count
    # equals the marker count, so a silent regression in either direction
    # trips the diff below.
    findings = re.findall(r"^\S+\.cc:\d+: \[", out, flags=re.M)
    markers = 0
    for fname in sorted(os.listdir(FIXTURES)):
        if fname.endswith(".cc"):
            with open(os.path.join(FIXTURES, fname), encoding="utf-8") as f:
                markers += len(re.findall(r"iolint-expect:\s*[\w-]+",
                                          f.read()))
    check(len(findings) == markers,
          f"finding count equals marker count ({len(findings)} findings, "
          f"{markers} markers)")

    print("[4/4] allowlist: a fingerprinted entry suppresses exactly that "
          "finding; a stale entry warns")
    fps = re.findall(r"fingerprint: (\S+)", out)
    check(len(fps) == len(findings), "every finding prints a fingerprint")
    if fps:
        with open(CONFIG, encoding="utf-8") as f:
            cfg_text = f.read()
        grandfathered = fps[0]
        stale = "suspend-hazard:tools/nope.cc:gone:deadbeefdead"
        cfg_text = cfg_text.replace(
            "entries = []",
            f'entries = ["{grandfathered}", "{stale}"]')
        with tempfile.NamedTemporaryFile(
                "w", suffix=".toml", delete=False) as tf:
            tf.write(cfg_text)
            tmp_cfg = tf.name
        try:
            code2, out2 = run_iolint(rel_fixtures, config=tmp_cfg)
            check(code2 == 1, "other findings still fail the run")
            check(grandfathered not in out2.split("stale")[0],
                  "allowlisted finding is suppressed")
            n2 = len(re.findall(r"^\S+\.cc:\d+: \[", out2, flags=re.M))
            check(n2 == len(findings) - 1,
                  f"exactly one finding suppressed ({n2} vs {len(findings)})")
            check("stale allowlist entry" in out2 and stale in out2,
                  "stale entry produces a shrink warning")
        finally:
            os.unlink(tmp_cfg)

    # Optional: the clang frontend (when python clang.cindex + a pinned
    # libclang are importable) must agree with the built-in frontend.
    code3, out3 = run_iolint("--expect-mode", "--frontend", "clang",
                             rel_fixtures)
    if code3 == 77:
        print("clang frontend unavailable (exit 77) — builtin frontend "
              "remains the reference; skipping the agreement run")
    else:
        check(code3 == 0,
              f"clang frontend agrees with builtin (got {code3}):\n"
              f"{out3.strip()}")

    if _failures:
        print(f"iolint selftest: {len(_failures)} failure(s)")
        return 1
    print("iolint selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
