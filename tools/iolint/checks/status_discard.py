"""status-discard: every call returning a status-like type must be
consumed.

Complements the `[[nodiscard]]` attributes on api::Status, api::Result,
api::Errno, fs::FsStatus and flash::IoStatus (this check runs without a
compiler, before the build, and also polices the `(void)` escape hatch).

The symbol table is harvested by the runner from every scanned file:
any function declared or defined with a watched return type — including
`sim::TaskOf<Status>`-shaped coroutine signatures — joins the watched
set by *name*.  Names that are ALSO declared somewhere with a
non-status return (`sim::Task SegmentLog::read` vs
`TaskOf<Result<...>> Vfs::read`) are ambiguous without type info and
are dropped from the watched set — for those, the `[[nodiscard]]`
attributes and -Werror are the precise tool; `always_watch` in the
config re-pins a name despite ambiguity.  A statement whose root
expression is a call to a watched name and whose value goes nowhere is
a finding:

    vfs.close(fd);                       // finding: Status discarded
    co_await vfs.fsync(fd);              // finding: Status discarded
    (void)co_await ring.wait_cqe();      // finding unless annotated

`(void)` is the sanctioned suppression, but it must say why:
`(void)call();  // iolint: discard-ok(<why>)`.  Consumptions — `return`,
assignment, a condition, wrapping in `must(...)` — are silent.
"""

from ..model import KIND_ID, Finding, SourceFile, make_fingerprint

NAME = "status-discard"
ANNOTATION = "discard-ok"

#: statement-leading keywords whose parenthesised clause consumes values
_CONSUMING_HEADS = {"return", "co_return", "if", "while", "for", "switch",
                    "case", "do", "else", "throw", "co_yield", "delete",
                    "using", "typedef", "goto", "break", "continue",
                    "static_assert", "public", "private", "protected"}


#: return-type roots that say nothing about the *declared* type (the name
#: to their right is usually a variable or a keyword-led expression)
_NOT_A_TYPE = {"auto", "return", "co_return", "co_await", "new", "const",
               "constexpr", "static", "virtual", "inline", "explicit",
               "operator", "case", "goto", "throw", "else", "sizeof",
               "decltype", "typename", "template", "friend", "mutable",
               "extern", "register", "thread_local", "volatile"}


def harvest(src: SourceFile, config):
    """(status_names, other_names): function names in `src` declared with a
    (possibly TaskOf-wrapped) watched status return type, and names declared
    with any other return type.  The runner subtracts the second set from
    the first — a name used both ways is ambiguous at a call site."""
    status_types = set(config.get("status_types", []))
    wrappers = set(config.get("task_wrappers", []))
    ignore = set(config.get("ignore_functions", []))
    toks = src.tokens
    names = set()
    others = set()
    n = len(toks)
    for i in range(1, n - 1):
        t = toks[i]
        if t.kind != KIND_ID or toks[i + 1].text != "(":
            continue
        if t.text in _CONSUMING_HEADS or t.text in ignore:
            continue
        # Walk back across the return type: `Type name(`, `Tmpl<...> name(`,
        # `ns::Type name(`.
        j = i - 1
        if j >= 0 and toks[j].text == ">":
            # Template return type: find the matching `<` backwards.
            depth = 0
            while j >= 0:
                if toks[j].text == ">":
                    depth += 1
                elif toks[j].text == "<":
                    depth -= 1
                    if depth == 0:
                        j -= 1
                        break
                j -= 1
        if j < 0 or toks[j].kind != KIND_ID:
            continue
        root = toks[j].text
        if root == t.text:
            continue  # constructor (`Status()` inside class Status)
        if root in _NOT_A_TYPE:
            continue
        inner = None
        if root in wrappers:
            # TaskOf<Status>, TaskOf<Result<T>>: first type id inside <>.
            k = j + 1
            if k < n and toks[k].text == "<":
                k += 1
                while k < n and toks[k].text == "::":
                    k += 1
                while k < n and toks[k].kind == KIND_ID:
                    if toks[k + 1].text == "::":
                        k += 2
                        continue
                    inner = toks[k].text
                    break
            (names if inner in status_types else others).add(t.text)
        elif root in status_types:
            names.add(t.text)
        else:
            others.add(t.text)
    return names, others


def _root_call(stmt):
    """(root_name, void_cast) when the statement is a bare call expression
    `[ (void) ] [co_await] chain.root( ... ) ;` — else (None, False)."""
    toks = [t for t in stmt.tokens]
    if not toks or toks[-1].text != ";":
        return None, False
    toks = toks[:-1]
    void_cast = False
    if len(toks) >= 3 and toks[0].text == "(" and toks[1].text == "void" \
            and toks[2].text == ")":
        void_cast = True
        toks = toks[3:]
    if toks and toks[0].text == "co_await":
        toks = toks[1:]
    if not toks or toks[0].kind != KIND_ID:
        return None, False
    if toks[0].text in _CONSUMING_HEADS:
        return None, False
    # The chain before the first top-level `(` must be pure member access;
    # any operator (especially `=`) means the value is consumed.
    root = None
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text == "(":
            break
        if t.kind == KIND_ID:
            root = t.text
        elif t.text not in (".", "->", "::"):
            return None, False
        i += 1
    if root is None or i >= n:
        return None, False
    # The call's closing paren must end the statement.
    depth = 0
    j = i
    while j < n:
        if toks[j].text == "(":
            depth += 1
        elif toks[j].text == ")":
            depth -= 1
            if depth == 0:
                return (root, void_cast) if j == n - 1 else (None, False)
        j += 1
    return None, False


def run(src: SourceFile, config, symbols):
    findings: list[Finding] = []
    watched = symbols.get("status_returning", set())
    for fn in src.functions:
        for stmt in fn.statements:
            root, void_cast = _root_call(stmt)
            if root is None or root not in watched:
                continue
            if src.annotation_between(ANNOTATION, stmt.first_line,
                                      stmt.last_line):
                continue
            how = ("explicitly `(void)`-discarded without a reason"
                   if void_cast else "discarded")
            findings.append(Finding(
                check=NAME, path=src.path, line=stmt.first_line,
                function=fn.qualified,
                message=(f"status result of `{root}()` is {how}; consume "
                         f"it (must()/check/return) or annotate "
                         f"`// iolint: {ANNOTATION}(<why>)`"),
                fingerprint=make_fingerprint(NAME, src.path, fn.qualified,
                                             stmt.fingerprint_text())))
    return findings
