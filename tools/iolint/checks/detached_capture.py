"""detached-task capture: detached/chaos tasks must not capture
references or `this` to non-refcounted objects.

`Simulator::spawn()` detaches the coroutine frame: it self-destroys at
final suspend, long after the spawning scope is gone.  Anything the task
holds by reference — a capturing lambda, a `&local`, a `this`, a raw
pointer pulled out of a smart pointer with `.get()` — is a
use-after-free the crash sweeps can only catch probabilistically.

Rule: at every configured spawn call site,
  * a capturing lambda (`[&]`, `[=]`, `[this]`, any non-empty capture
    list) as the task argument is a finding — detached coroutine lambdas
    destroy the closure at first suspend, the classic C++ coroutine trap;
  * `this`, address-of arguments (`&obj`) and `.get()` raw-pointer
    escapes are findings unless the site is annotated
    `// iolint: detached-owner(<who joins/outlives the task>)` naming
    the lifetime argument.

Executor sites (`HostPool::for_each_index` in spawn_calls) follow the
same grammar with a different ownership story: the pool JOINS every
worker before the call returns, so a by-reference capture of frame
locals is safe — the annotation names the joiner (e.g. `// iolint:
detached-owner(for_each_index joins its workers before returning)`) and
turns the implicit structured-concurrency argument into a checked,
greppable fact at each site.  A worker closure that escapes the joining
call (stored, returned, re-spawned) loses that cover and must not be
annotated away.

The callee's parameter list (when defined in the same file) refines the
textual scan: a spawned call whose callee takes only by-value parameters
and whose arguments show no escape pattern is silent.
"""

from ..model import KIND_ID, Finding, SourceFile, make_fingerprint

NAME = "detached-task-capture"
ANNOTATION = "detached-owner"


def _spawn_arg_ranges(stmt, spawn_calls):
    """Token ranges (start, end) of each spawn(...) argument list."""
    toks = stmt.tokens
    out = []
    for i, t in enumerate(toks):
        if (t.kind == KIND_ID and t.text in spawn_calls and
                i + 1 < len(toks) and toks[i + 1].text == "("):
            depth = 0
            for j in range(i + 1, len(toks)):
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        out.append((i + 2, j))
                        break
    return out


def _lambda_capture(toks, start, end):
    """Non-empty lambda capture list inside the range, or None."""
    i = start
    while i < end:
        if toks[i].text == "[":
            # subscript vs lambda-intro: a lambda `[` follows a comma,
            # paren or operator, not a value.
            prev = toks[i - 1].text if i > start else ","
            if prev in (",", "(", "=", "return", "{"):
                j = i + 1
                caps = []
                depth = 1
                while j < end and depth > 0:
                    if toks[j].text == "[":
                        depth += 1
                    elif toks[j].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    caps.append(toks[j].text)
                    j += 1
                if caps:
                    return " ".join(caps)
        i += 1
    return None


def _escapes(toks, start, end):
    """Textual lifetime-escape patterns in the argument range."""
    found = []
    i = start
    while i < end:
        t = toks[i]
        if t.kind == KIND_ID and t.text == "this":
            found.append("this")
        elif t.text == "&" and i + 1 < end and toks[i + 1].kind == KIND_ID \
                and toks[i - 1].text in ("(", ",", "&"):
            found.append(f"&{toks[i + 1].text}")
        elif (t.text == "get" and i >= 1 and toks[i - 1].text in (".", "->")
              and i + 1 < end and toks[i + 1].text == "("):
            found.append(".get()")
        i += 1
    return found


def _callee_takes_refs(src, toks, start, end):
    """When the spawned expression is `callee(...)` with `callee` defined
    in this file: does it take any pointer/reference parameter?"""
    # Find the last top-level call inside the range (the task argument).
    depth = 0
    callee = None
    for i in range(start, end):
        t = toks[i]
        if t.text == "(":
            if depth == 0 and i > start and toks[i - 1].kind == KIND_ID:
                callee = toks[i - 1].text
            depth += 1
        elif t.text == ")":
            depth -= 1
    if callee is None:
        return None
    for fn in src.functions:
        if fn.name == callee and fn.params:
            ptypes = " ".join(t.text for t in fn.params)
            if "*" in ptypes or "&" in ptypes:
                return callee
            return None
    return None


def run(src: SourceFile, config, symbols):
    findings: list[Finding] = []
    spawn_calls = set(config.get("spawn_calls", []))
    if not spawn_calls:
        return findings
    for fn in src.functions:
        for stmt in fn.statements:
            for (a, b) in _spawn_arg_ranges(stmt, spawn_calls):
                toks = stmt.tokens
                cap = _lambda_capture(toks, a, b)
                if cap is not None:
                    if src.annotation_between(ANNOTATION, stmt.first_line,
                                              stmt.last_line):
                        continue
                    findings.append(Finding(
                        check=NAME, path=src.path, line=stmt.first_line,
                        function=fn.qualified,
                        message=(f"detached task is a capturing lambda "
                                 f"(`[{cap}]`): the closure dies when the "
                                 f"spawning scope unwinds while the frame "
                                 f"lives on — pass state by value / via a "
                                 f"coroutine parameter, or annotate "
                                 f"`// iolint: {ANNOTATION}(<owner>)`"),
                        fingerprint=make_fingerprint(
                            NAME, src.path, fn.qualified,
                            f"lambda|{stmt.fingerprint_text()}")))
                    continue
                esc = _escapes(toks, a, b)
                ref_callee = _callee_takes_refs(src, toks, a, b)
                if not esc and ref_callee is None:
                    continue
                if src.annotation_between(ANNOTATION, stmt.first_line,
                                          stmt.last_line):
                    continue
                what = ", ".join(f"`{e}`" for e in esc) if esc else \
                    f"reference parameters of `{ref_callee}()`"
                findings.append(Finding(
                    check=NAME, path=src.path, line=stmt.first_line,
                    function=fn.qualified,
                    message=(f"detached task captures non-owned state "
                             f"({what}); the frame outlives the spawning "
                             f"scope — hand over ownership or annotate "
                             f"`// iolint: {ANNOTATION}(<who joins/outlives "
                             f"the task>)`"),
                    fingerprint=make_fingerprint(
                        NAME, src.path, fn.qualified,
                        stmt.fingerprint_text())))
    return findings
