"""txn-join-before-mutate: journaled inode state joins the running
transaction before it is mutated.

The jbd2 discipline (`jbd2_journal_get_write_access` before touching the
buffer) that PR 6 §10.4 violated: `fs::write` grew `i_size` and stamped
mtime before `dirty_metadata()` — which can suspend — so a concurrent
writer skipped its own registration and a durably-acked size belonged to
a transaction that never committed.

Rule, scoped to the configured fs/ files: inside a coroutine, a statement
mutating a journaled inode field (configured regexes over the statement's
token text — growth/dirtying assignments, not the `= false` clears of the
commit paths) must be preceded in the same body by a txn-registration
call (`dirty_metadata`, `journal_overwrites`, ...).  Paths that mutate
legitimately without a live journal (recovery replay, mount) stay out of
the configured file set or carry
`// iolint: txn-registered(<which registration covers this>)`.
"""

import re

from ..model import Finding, SourceFile, make_fingerprint

NAME = "txn-join-before-mutate"
ANNOTATION = "txn-registered"


def run(src: SourceFile, config, symbols):
    findings: list[Finding] = []
    mutation_res = [re.compile(p) for p in config.get("mutation_patterns", [])]
    registrations = set(config.get("registration_calls", []))
    exempt = set(config.get("exempt_functions", []))
    if not mutation_res:
        return findings
    for fn in src.functions:
        if not fn.is_coroutine or fn.name in exempt:
            continue
        registered = False
        for stmt in fn.statements:
            if any(stmt.has_ident(r) for r in registrations):
                registered = True
                # Registration and mutation can share one statement; the
                # registration call resolves first in this codebase's
                # idiom (`co_await journal_->dirty_metadata(...)`), so
                # same-statement order is accepted.
                continue
            text = stmt.text
            for mre in mutation_res:
                m = mre.search(text)
                if m is None:
                    continue
                if registered:
                    break
                if src.annotation_between(ANNOTATION, stmt.first_line,
                                          stmt.last_line):
                    break
                findings.append(Finding(
                    check=NAME, path=src.path, line=stmt.first_line,
                    function=fn.qualified,
                    message=(f"journaled inode state mutated "
                             f"(`{m.group(0).strip()}`) before any "
                             f"txn-registration call "
                             f"({'/'.join(sorted(registrations))}) in this "
                             f"coroutine — the get-write-access discipline; "
                             f"register first or annotate "
                             f"`// iolint: {ANNOTATION}(<why>)`"),
                    fingerprint=make_fingerprint(
                        NAME, src.path, fn.qualified,
                        stmt.fingerprint_text())))
                break
    return findings
