"""iolint check registry.

Each check module exposes
    NAME        the check id used in findings, config and annotations
    ANNOTATION  the `// iolint: <name>(reason)` that suppresses a finding
    run(source, config, symbols) -> list[Finding]

`symbols` is the cross-file symbol table the runner harvests before any
check runs (today: the set of function names returning status-like types,
used by status-discard).  Adding a check = adding a module here and a
`[checks.<name>]` table to .iolint.toml; DESIGN.md §12 walks through it.
"""

from . import detached_capture, status_discard, suspend_hazard, txn_join

CHECKS = [
    suspend_hazard,
    status_discard,
    txn_join,
    detached_capture,
]

BY_NAME = {c.NAME: c for c in CHECKS}
