"""suspend-hazard: txn-/pool-scoped state captured before a `co_await`
and used after it.

The recurring bug class behind PR 5 §9.2-3 and PR 7 §11.4: a coroutine
reads state whose validity is scoped to the running transaction, the
current epoch, or a shared scratch buffer, suspends, and then acts on the
stale copy.  The rule:

  * A local assigned from a watched call (`running_txn_id()`, ...) must
    not be used after a later suspension point unless it is re-read after
    resuming, or the capture is annotated
    `// iolint: stable-across-suspend(<why>)` — which blesses the
    variable for the whole function and documents the lifetime argument.
  * A watched member (`scratch_keys_`, ...) must be re-filled (a
    configured refill call) after any suspension before it is read again.
  * Loops get the next-iteration rule: if a loop body suspends, a use
    inside it of a variable captured *outside* the loop crosses a
    suspension on every iteration after the first — this is exactly the
    shape of PR 7's host-retry re-entering a later epoch.

Annotations go on the capture statement (blesses every use) or on an
individual use (blesses just that one).
"""

from ..model import (KIND_ID, Finding, FunctionDef, SourceFile,
                     make_fingerprint)

NAME = "suspend-hazard"
ANNOTATION = "stable-across-suspend"


def _captures_in(stmt, watched_calls):
    """Variables assigned from a watched call in this statement:
    `... var = ... watched( ... ) ...` -> [(var, call)]."""
    out = []
    toks = stmt.tokens
    for i, t in enumerate(toks):
        if (t.kind == KIND_ID and t.text in watched_calls and
                i + 1 < len(toks) and toks[i + 1].text == "("):
            # Walk back to the nearest top-level `=` and take the
            # identifier before it as the captured variable.
            j = i - 1
            depth = 0
            while j >= 0:
                tj = toks[j].text
                if tj in (")", "}", "]"):
                    depth += 1
                elif tj in ("(", "{", "["):
                    depth -= 1
                    if depth < 0:
                        break  # the call is an argument, not an assignment
                elif depth == 0 and tj == "=":
                    if j >= 1 and toks[j - 1].kind == KIND_ID:
                        out.append((toks[j - 1].text, t.text))
                    break
                elif depth == 0 and tj == ";":
                    break
                j -= 1
    return out


def _is_recapture(stmt, var):
    """`var = ...` (assignment or fresh declaration) in this statement."""
    toks = stmt.tokens
    for i, t in enumerate(toks):
        if (t.kind == KIND_ID and t.text == var and
                i + 1 < len(toks) and toks[i + 1].text == "="):
            return True
    return False


def _scan_variable(src: SourceFile, fn: FunctionDef, cap_idx: int, var: str,
                   call: str, config, findings):
    """Linear dataflow for one captured variable; reports the first
    hazardous use (one finding per capture keeps the output reviewable)."""
    cap_stmt = fn.statements[cap_idx]
    if src.annotation_between(ANNOTATION, cap_stmt.first_line,
                              cap_stmt.last_line):
        return
    crossed = False
    for s in fn.statements[cap_idx + 1:]:
        if _is_recapture(s, var):
            crossed = False
            continue
        if crossed and s.has_ident(var):
            if src.annotation_between(ANNOTATION, s.first_line, s.last_line):
                return  # an annotated use ends the variable's scan
            findings.append(Finding(
                check=NAME, path=src.path, line=s.first_line,
                function=fn.qualified,
                message=(f"`{var}` (captured from txn-scoped `{call}()` at "
                         f"line {cap_stmt.first_line}) is used after a "
                         f"suspension point; re-read it after resuming or "
                         f"annotate the capture with "
                         f"`// iolint: {ANNOTATION}(<why>)`"),
                fingerprint=make_fingerprint(NAME, src.path, fn.qualified,
                                             f"{var}|{s.fingerprint_text()}")))
            return
        if s.has_co_await:
            crossed = True
    # Next-iteration rule: a loop that suspends re-runs its uses with the
    # pre-loop capture unless the loop re-captures first.
    for loop in fn.loops:
        if loop.first <= cap_idx:
            continue  # capture inside (or after) the loop: linear scan wins
        body = fn.statements[loop.first:loop.last + 1]
        if not any(s.has_co_await for s in body):
            continue
        for s in body:
            if _is_recapture(s, var):
                break  # loop refreshes the capture before further uses
            if s.has_ident(var):
                if src.annotation_between(ANNOTATION, s.first_line,
                                          s.last_line):
                    break
                findings.append(Finding(
                    check=NAME, path=src.path, line=s.first_line,
                    function=fn.qualified,
                    message=(f"`{var}` (captured from txn-scoped `{call}()` "
                             f"at line {cap_stmt.first_line}, outside the "
                             f"loop) is used inside a loop that suspends — "
                             f"every iteration after the first acts on a "
                             f"stale capture; re-read inside the loop or "
                             f"annotate the capture with "
                             f"`// iolint: {ANNOTATION}(<why>)`"),
                    fingerprint=make_fingerprint(
                        NAME, src.path, fn.qualified,
                        f"loop|{var}|{s.fingerprint_text()}")))
                return
        break


def _scan_members(src: SourceFile, fn: FunctionDef, config, findings):
    members = config.get("watched_members", [])
    refills = set(config.get("refill_calls", []))
    for member in members:
        filled = False
        crossed = False
        for s in fn.statements:
            uses = s.has_ident(member)
            refilled = uses and any(s.has_ident(r) for r in refills)
            if refilled:
                filled = True
                crossed = False
                continue
            if uses and filled and crossed:
                if src.annotation_between(ANNOTATION, s.first_line,
                                          s.last_line):
                    crossed = False  # annotated use: treat as blessed
                    continue
                findings.append(Finding(
                    check=NAME, path=src.path, line=s.first_line,
                    function=fn.qualified,
                    message=(f"shared scratch member `{member}` is read "
                             f"after a suspension point without being "
                             f"re-filled ({'/'.join(sorted(refills))}); "
                             f"re-fill after resuming or annotate with "
                             f"`// iolint: {ANNOTATION}(<why>)`"),
                    fingerprint=make_fingerprint(
                        NAME, src.path, fn.qualified,
                        f"{member}|{s.fingerprint_text()}")))
                break
            if s.has_co_await:
                crossed = True


def run(src: SourceFile, config, symbols):
    findings: list[Finding] = []
    watched = set(config.get("watched_calls", []))
    for fn in src.functions:
        if not fn.is_coroutine:
            continue
        if watched:
            for idx, stmt in enumerate(fn.statements):
                for var, call in _captures_in(stmt, watched):
                    _scan_variable(src, fn, idx, var, call, config, findings)
        _scan_members(src, fn, config, findings)
    return findings
