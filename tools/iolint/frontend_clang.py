"""Optional libclang frontend.

When the `clang.cindex` python bindings are installed (CI installs
python3-clang; the dev container may not have it), iolint can tokenize
through libclang instead of the built-in lexer — same Token tuples, so
the structural model and every check are frontend-agnostic.  The libclang
major version is pinned by `.iolint.toml` (`libclang_versions`): an
unpinned version falls back to the built-in lexer with a notice rather
than risking a token stream the checks were never validated against.

Everything here is defensive: any import/parse failure degrades to the
built-in frontend.  iolint must produce identical findings on a machine
with no libclang at all — the built-in lexer is the reference frontend,
and the selftest runs under both when available.
"""

from __future__ import annotations

import re

from .model import KIND_ID, KIND_NUM, KIND_PUNCT, KIND_STR, Token

_IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def load(pinned_versions):
    """Returns (tokenize_fn, version_str) or (None, reason)."""
    try:
        from clang import cindex  # noqa: PLC0415 - gated optional dep
    except Exception as e:  # ModuleNotFoundError, libclang.so load errors
        return None, f"clang.cindex unavailable ({e.__class__.__name__})"
    try:
        idx = cindex.Index.create()
        version = cindex.conf.lib.clang_getClangVersion()
        if hasattr(version, "decode"):
            version = version.decode()
        version = str(version)
    except Exception as e:
        return None, f"libclang failed to initialize ({e})"
    m = re.search(r"version\s+(\d+)", version)
    major = m.group(1) if m else "?"
    if pinned_versions and major not in {str(v) for v in pinned_versions}:
        return None, (f"libclang major {major} not in pinned set "
                      f"{sorted(pinned_versions)}")

    def tokenize(path: str, text: str):
        try:
            tu = cindex.TranslationUnit.from_source(
                path, args=["-std=c++20", "-fsyntax-only"],
                unsaved_files=[(path, text)], index=idx)
            extent = tu.get_extent(path, (0, len(text)))
            out = []
            for tok in tu.get_tokens(extent=extent):
                kind = tok.kind.name
                sp = tok.spelling
                if kind == "COMMENT":
                    continue  # annotations come from the shared comment scan
                if kind == "LITERAL":
                    out.append(Token(
                        KIND_STR if sp[:1] in "\"'RuUL" and "\"" in sp
                        else KIND_NUM, sp, tok.location.line))
                elif kind in ("IDENTIFIER", "KEYWORD"):
                    out.append(Token(KIND_ID, sp, tok.location.line))
                elif kind == "PUNCTUATION":
                    out.append(Token(KIND_PUNCT, sp, tok.location.line))
                else:  # pragma: no cover - future token kinds
                    out.append(Token(
                        KIND_ID if _IDENT_RE.match(sp) else KIND_PUNCT,
                        sp, tok.location.line))
            return out
        except Exception:
            return None  # caller falls back to the built-in lexer

    return tokenize, f"libclang {major} ({version.strip()})"
