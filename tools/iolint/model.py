"""Structural model of a C++ translation unit for iolint's checks.

iolint does not need a full C++ parser: every check operates on a small,
project-shaped vocabulary (coroutine bodies, `co_await` statements, call
roots, member mutations, spawn sites).  This module builds exactly that
vocabulary from a token stream and nothing more:

    SourceFile
      +- tokens        flat (kind, text, line) stream, comments stripped
      +- annotations   `// iolint: name(reason)` markers, by line
      +- functions     FunctionDef: qualified name, body token range,
      |                is_coroutine, is_lambda (+captures), parameters
      +- statements    per function: source-order segments split on
                       `;` / `{` / `}` at paren depth 0, each carrying its
                       tokens, line span, brace depth and enclosing loops

The token stream can come from two frontends: the built-in lexer below
(deterministic, stdlib-only — the reference frontend) or libclang via
`frontend_clang.py` when the `clang.cindex` bindings are installed.  Both
produce the same Token tuples, so checks never know which frontend ran.

The model is deliberately linear: statements are examined in source order,
loops are tracked as index ranges so checks can reason about "next
iteration crosses a suspension".  That linearity is what makes the checks
explainable in a review — a finding always reads as "captured at line A,
suspended at line B, used at line C".
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Tokens

KIND_ID = "id"
KIND_PUNCT = "punct"
KIND_NUM = "num"
KIND_STR = "str"

# C++ keywords that open a parenthesised control clause — a `(` following
# one of these never introduces a function definition.
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "alignof", "decltype", "static_assert",
                    "co_await", "co_yield", "co_return", "throw", "new",
                    "delete", "case", "else", "do"}

# Tokens allowed between a function's `)` and its body `{`:
# cv-qualifiers, ref-qualifiers, exception/virt specifiers, attributes and
# trailing-return-type material.
_TRAILER_OK = {"const", "noexcept", "override", "final", "mutable",
               "volatile", "&", "&&", "->", "::", "<", ">", ">>", ",", "*",
               "try", "requires"}

_TOKEN_RE = re.compile(
    r"""
      (?P<rawstr>  R"(?P<delim>[^()\s\\]{0,16})\( (?:.|\n)*? \)(?P=delim)" )
    | (?P<str>     "(?:[^"\\\n]|\\.)*" )
    | (?P<chr>     '(?:[^'\\\n]|\\.)*' )
    | (?P<lcom>    //[^\n]* )
    | (?P<bcom>    /\* (?:.|\n)*? \*/ )
    | (?P<id>      [A-Za-z_]\w* )
    | (?P<num>     \.?\d (?:[\w.']|[eEpP][+-])* )
    | (?P<punct>   ->\* | \.\.\. | ::|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=
                 | &&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\#\#
                 | [{}()\[\];:,.<>+\-*/%&|^!~=?\#@\\] )
    """,
    re.VERBOSE,
)

_ANNOTATION_RE = re.compile(r"iolint:\s*([\w-]+)\(([^)]*)\)")
_EXPECT_RE = re.compile(r"iolint-expect:\s*([\w-]+)")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


@dataclass
class Annotation:
    name: str
    reason: str
    line: int


def lex(text: str):
    """Built-in frontend: (tokens, annotations, expects) from raw source.

    Comments are consumed here and mined for `iolint:` annotations and
    `iolint-expect:` fixture markers; preprocessor directives are skipped
    whole (this codebase uses them only for #include / #pragma).
    """
    tokens: list[Token] = []
    annotations: dict[int, list[Annotation]] = {}
    expects: dict[int, list[str]] = {}

    # Annotations may wrap across adjacent comment lines; group consecutive
    # comment tokens into a run, mine the joined text, and attach each
    # annotation to every line the run covers (annotation_between then sees
    # it from any statement the run touches).  Expect markers stay strictly
    # per-line — fixtures pin them to the exact finding line.
    run_buf: list[str] = []
    run_first = run_last = 0

    def flush_run():
        nonlocal run_first, run_last
        if not run_buf:
            return
        joined = "\n".join(run_buf)
        for am in _ANNOTATION_RE.finditer(joined):
            arg = re.sub(r"\s*(?://|/\*|\*+/?)\s*", " ", am.group(2)).strip()
            name = am.group(1)
            for ln in range(run_first, run_last + 1):
                annotations.setdefault(ln, []).append(
                    Annotation(name, arg, ln))
        run_buf.clear()

    # Strip preprocessor lines first (keeping newlines for line numbers).
    lines = text.split("\n")
    out_lines = []
    in_directive = False
    for ln in lines:
        stripped = ln.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = ln.rstrip().endswith("\\")
            out_lines.append("")
        else:
            in_directive = False
            out_lines.append(ln)
    text = "\n".join(out_lines)

    pos = 0
    line = 1
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r\f\v":
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:  # unknown byte; skip defensively
            pos += 1
            continue
        kind = m.lastgroup
        tok = m.group(0)
        if kind in ("lcom", "bcom"):
            if not run_buf:
                run_first = line
            run_buf.append(tok)
            run_last = line + tok.count("\n")
            for em in _EXPECT_RE.finditer(tok):
                expects.setdefault(line, []).append(em.group(1))
        elif kind in ("str", "chr", "rawstr"):
            flush_run()
            tokens.append(Token(KIND_STR, tok, line))
        elif kind == "id":
            flush_run()
            tokens.append(Token(KIND_ID, tok, line))
        elif kind == "num":
            flush_run()
            tokens.append(Token(KIND_NUM, tok, line))
        else:
            flush_run()
            tokens.append(Token(KIND_PUNCT, tok, line))
        line += tok.count("\n")
        pos = m.end()
    flush_run()
    return tokens, annotations, expects


# ---------------------------------------------------------------------------
# Statements

@dataclass
class Statement:
    """One source-order segment of a function body.

    Segments are split on `;`, `{` and `}` at paren depth 0, so a control
    header (`if (...)`, `for (...) {`) travels with the statement it
    guards — good enough for iolint's pattern vocabulary, and it keeps
    every token of the body attributed to exactly one statement.
    """
    index: int
    tokens: list[Token]
    depth: int            # brace depth relative to the body (0 = top level)
    first_line: int = 0
    last_line: int = 0

    def __post_init__(self):
        if self.tokens:
            self.first_line = self.tokens[0].line
            self.last_line = self.tokens[-1].line

    @property
    def text(self) -> str:
        return " ".join(t.text for t in self.tokens)

    def has_ident(self, name: str) -> bool:
        return any(t.kind == KIND_ID and t.text == name for t in self.tokens)

    @property
    def has_co_await(self) -> bool:
        return self.has_ident("co_await")

    def fingerprint_text(self) -> str:
        return self.text


@dataclass
class Loop:
    """A loop region over statement indices [first, last] (inclusive)."""
    first: int
    last: int

    def contains(self, idx: int) -> bool:
        return self.first <= idx <= self.last


@dataclass
class FunctionDef:
    name: str                  # unqualified (rightmost) name
    qualified: str             # e.g. "Filesystem::write" or "<lambda>"
    line: int
    body_start: int            # token index of the `{`
    body_end: int              # token index of the matching `}`
    params: list[Token] = field(default_factory=list)
    is_lambda: bool = False
    captures: str = ""         # raw capture-list text for lambdas
    statements: list[Statement] = field(default_factory=list)
    loops: list[Loop] = field(default_factory=list)

    @property
    def is_coroutine(self) -> bool:
        for s in self.statements:
            for t in s.tokens:
                if t.kind == KIND_ID and t.text in ("co_await", "co_return",
                                                    "co_yield"):
                    return True
        return False

    def co_await_statements(self) -> list[int]:
        return [s.index for s in self.statements if s.has_co_await]

    def innermost_loop(self, idx: int):
        best = None
        for lp in self.loops:
            if lp.contains(idx):
                if best is None or (lp.first >= best.first and
                                    lp.last <= best.last):
                    best = lp
        return best


# ---------------------------------------------------------------------------
# Function extraction

_LAMBDA_PREV_OK = {"(", ",", "=", "{", ";", ":", "?", "return", "&&", "||",
                   "!", "<", ">", "+", "-", "*", "/", "co_await", "co_return",
                   "[", "}"}


def _match_forward(tokens, i, open_t, close_t):
    """Index of the token matching tokens[i] (an `open_t`), or -1."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def _qualified_name(tokens, i):
    """Walks back from the name token at `i` across `A::B::name`."""
    parts = [tokens[i].text]
    j = i - 1
    while j >= 1 and tokens[j].text == "::" and tokens[j - 1].kind == KIND_ID:
        parts.append(tokens[j - 1].text)
        j -= 2
    return "::".join(reversed(parts))


def _skip_trailer(tokens, i):
    """From the token after a param-list `)`, skip cv/ref/noexcept/trailing
    return type/ctor-init-list material. Returns the index of the body `{`
    or -1 when this isn't a definition."""
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text == "{":
            return i
        if t.text == ";" or t.text == "}":
            return -1  # declaration, not a definition
        if t.text == "=":  # `= default` / `= delete` / `= 0`
            return -1
        if t.text == "noexcept" and i + 1 < n and tokens[i + 1].text == "(":
            close = _match_forward(tokens, i + 1, "(", ")")
            if close < 0:
                return -1
            i = close + 1
            continue
        if t.text == ":":
            # Constructor initializer list: `name(expr)` / `name{expr}`
            # pairs separated by commas, then the body `{`.
            i += 1
            while i < n:
                # member/base name (possibly qualified/templated)
                while i < n and tokens[i].text not in ("(", "{"):
                    if tokens[i].text in (";", "}"):
                        return -1
                    i += 1
                if i >= n:
                    return -1
                close = _match_forward(tokens, i, tokens[i].text,
                                       ")" if tokens[i].text == "(" else "}")
                if close < 0:
                    return -1
                i = close + 1
                if i < n and tokens[i].text == ",":
                    i += 1
                    continue
                return i if i < n and tokens[i].text == "{" else -1
            return -1
        if (t.kind in (KIND_ID, KIND_NUM) or t.text in _TRAILER_OK or
                t.text == "[" or t.text == "]" or t.text == "("):
            # attributes `[[...]]`, trailing return types with parens, etc.
            if t.text == "(":
                close = _match_forward(tokens, i, "(", ")")
                if close < 0:
                    return -1
                i = close + 1
                continue
            i += 1
            continue
        return -1
    return -1


def _segment_body(fn: FunctionDef, tokens, nested_spans=()):
    """Splits body tokens into Statements and loop regions.

    `nested_spans` are body token ranges of functions/lambdas nested
    inside this one: their tokens are excluded, so a statement belongs to
    exactly one body and a `co_await` inside a nested lambda is never
    mistaken for a suspension of the parent."""
    body = [t for i, t in enumerate(tokens)
            if fn.body_start < i < fn.body_end and
            not any(s <= i <= e for (s, e) in nested_spans)]
    statements: list[Statement] = []
    loops: list[Loop] = []
    open_loops: list[tuple[int, int]] = []  # (depth_at_open, stmt_index)
    cur: list[Token] = []
    paren = 0
    depth = 0

    def flush():
        if cur:
            statements.append(Statement(len(statements), cur[:], depth))
            cur.clear()

    for t in body:
        if t.text == "(" or t.text == "[":
            paren += 1
        elif t.text == ")" or t.text == "]":
            paren -= 1
        if paren == 0 and t.text == "{":
            cur.append(t)
            head = [x.text for x in cur]
            is_loop = any(k in head for k in ("for", "while", "do"))
            flush()
            if is_loop:
                open_loops.append((depth, len(statements) - 1))
            depth += 1
            continue
        if paren == 0 and t.text == "}":
            flush()
            depth -= 1
            if open_loops and open_loops[-1][0] == depth:
                _, first = open_loops.pop()
                loops.append(Loop(first, max(len(statements) - 1, first)))
            continue
        cur.append(t)
        if paren == 0 and t.text == ";":
            flush()
    flush()
    fn.statements = statements
    fn.loops = loops


def extract_functions(tokens) -> list[FunctionDef]:
    """All function and lambda bodies in the token stream, outermost and
    nested alike (each body is modelled independently)."""
    fns: list[FunctionDef] = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        # Lambda: `[captures] (params) ... {` or `[captures] {`.
        if (t.text == "[" and
                (i == 0 or tokens[i - 1].text in _LAMBDA_PREV_OK or
                 tokens[i - 1].text == "]")):
            close_b = _match_forward(tokens, i, "[", "]")
            if close_b > 0:
                captures = " ".join(x.text for x in tokens[i:close_b + 1])
                j = close_b + 1
                params: list[Token] = []
                if j < n and tokens[j].text == "(":
                    close_p = _match_forward(tokens, j, "(", ")")
                    if close_p > 0:
                        params = tokens[j + 1:close_p]
                        j = _skip_trailer(tokens, close_p + 1)
                    else:
                        j = -1
                elif j < n and tokens[j].text == "{":
                    pass  # captureless-param lambda body
                else:
                    j = _skip_trailer(tokens, j)
                if j is not None and j >= 0 and j < n and \
                        tokens[j].text == "{":
                    body_end = _match_forward(tokens, j, "{", "}")
                    if body_end > 0:
                        fns.append(FunctionDef(
                            name="<lambda>", qualified="<lambda>",
                            line=t.line, body_start=j, body_end=body_end,
                            params=params, is_lambda=True, captures=captures))
                        # Continue scanning inside the lambda body for
                        # nested lambdas/functions.
                        i += 1
                        continue
        # Plain function: `name ( params ) trailer {`.
        if t.text == "(" and i > 0:
            prev = tokens[i - 1]
            if prev.kind == KIND_ID and prev.text not in CONTROL_KEYWORDS:
                close_p = _match_forward(tokens, i, "(", ")")
                if close_p > 0:
                    body = _skip_trailer(tokens, close_p + 1)
                    if body > 0:
                        body_end = _match_forward(tokens, body, "{", "}")
                        if body_end > 0:
                            fns.append(FunctionDef(
                                name=prev.text,
                                qualified=_qualified_name(tokens, i - 1),
                                line=prev.line, body_start=body,
                                body_end=body_end,
                                params=tokens[i + 1:close_p]))
        i += 1
    # Segment each body with nested bodies carved out, so statements (and
    # suspension points) belong to exactly one function.
    for fn in fns:
        nested = [(g.body_start, g.body_end) for g in fns
                  if g is not fn and g.body_start > fn.body_start and
                  g.body_end < fn.body_end]
        _segment_body(fn, tokens, nested)
    return fns


# ---------------------------------------------------------------------------
# File model

@dataclass
class SourceFile:
    path: str                  # repo-relative path
    tokens: list[Token]
    annotations: dict[int, list[Annotation]]
    expects: dict[int, list[str]]
    functions: list[FunctionDef]
    frontend: str = "builtin"

    def annotation_between(self, name: str, first_line: int,
                           last_line: int) -> Annotation | None:
        """An `iolint: name(...)` annotation attached to a statement:
        on any of its lines, or on the line directly above it."""
        for ln in range(first_line - 1, last_line + 1):
            for a in self.annotations.get(ln, ()):
                if a.name == name:
                    return a
        return None


def parse_source(path: str, text: str, tokens=None,
                 frontend: str = "builtin") -> SourceFile:
    """Builds the full model. `tokens` may be supplied by an alternative
    frontend (libclang); annotations/expects always come from the built-in
    comment scan, which both frontends share."""
    own_tokens, annotations, expects = lex(text)
    toks = tokens if tokens is not None else own_tokens
    return SourceFile(path=path, tokens=toks, annotations=annotations,
                      expects=expects, functions=extract_functions(toks),
                      frontend=frontend)


# ---------------------------------------------------------------------------
# Findings

@dataclass
class Finding:
    check: str
    path: str
    line: int
    function: str
    message: str
    fingerprint: str = ""
    allowlisted: bool = False

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.check}] {self.message}"
                f"\n    fingerprint: {self.fingerprint}")


def make_fingerprint(check: str, path: str, function: str,
                     stmt_text: str) -> str:
    """Line-number-free identity for allowlisting: stable across pure code
    motion, invalidated when the offending statement itself changes."""
    digest = hashlib.sha256(
        f"{check}|{path}|{function}|{stmt_text}".encode()).hexdigest()[:12]
    return f"{check}:{path}:{function}:{digest}"
