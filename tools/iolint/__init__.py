"""iolint — suspension-safety & status-discipline static analysis for the
BarrierIO coroutine stack.  Entry point: tools/iolint/iolint.py."""
