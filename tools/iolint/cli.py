"""iolint command line: config, file gathering, frontend selection,
check dispatch, allowlist diffing, reporting.

Exit codes: 0 clean, 1 findings (or expect-mode mismatch), 2 usage/config
error, 77 requested frontend unavailable (skip convention, used by CI's
optional libclang verification leg).
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys

from .checks import CHECKS
from .checks import status_discard as status_discard_check
from .model import parse_source

DEFAULT_CONFIG = ".iolint.toml"


# ---------------------------------------------------------------------------
# Config

def _parse_toml_minimal(text: str):
    """Fallback TOML-subset parser for pythons without tomllib (<3.11):
    tables, string/bool/int scalars, and (possibly multi-line) arrays of
    strings — exactly what .iolint.toml uses."""
    data: dict = {}
    cur = data
    buf_key = None
    buf: list[str] = []

    def close_array(line):
        nonlocal buf_key
        buf.append(line)
        joined = " ".join(buf)
        items = re.findall(r'"((?:[^"\\]|\\.)*)"', joined)
        cur[buf_key] = [i.encode().decode("unicode_escape") for i in items]
        buf.clear()
        buf_key = None

    for raw in text.split("\n"):
        line = raw.split("#", 1)[0].rstrip() if '"' not in raw else raw.rstrip()
        if '"' in raw:  # keep # inside strings; strip trailing comments crudely
            line = re.sub(r'\s+#(?![^"]*").*$', "", raw.rstrip())
        if buf_key is not None:
            if line.strip().endswith("]"):
                close_array(line)
            else:
                buf.append(line)
            continue
        s = line.strip()
        if not s:
            continue
        m = re.match(r"\[([\w.\-]+)\]$", s)
        if m:
            cur = data
            for part in m.group(1).split("."):
                cur = cur.setdefault(part, {})
            continue
        m = re.match(r"([\w\-]+)\s*=\s*(.*)$", s)
        if not m:
            continue
        key, val = m.group(1), m.group(2).strip()
        if val.startswith("[") and not val.endswith("]"):
            buf_key = key
            buf.append(val)
        elif val.startswith("["):
            items = re.findall(r'"((?:[^"\\]|\\.)*)"', val)
            cur[key] = [i.encode().decode("unicode_escape") for i in items]
        elif val in ("true", "false"):
            cur[key] = val == "true"
        elif val.startswith('"'):
            cur[key] = val.strip('"')
        else:
            try:
                cur[key] = int(val)
            except ValueError:
                cur[key] = val
    return data


def load_config(path: str):
    with open(path, "rb") as f:
        raw = f.read()
    try:
        import tomllib  # noqa: PLC0415 - 3.11+
        return tomllib.loads(raw.decode())
    except ModuleNotFoundError:
        return _parse_toml_minimal(raw.decode())


# ---------------------------------------------------------------------------
# File gathering

def gather_files(root: str, cfg: dict, explicit: list[str]):
    exts = tuple(cfg.get("extensions", [".cc", ".h"]))
    excludes = cfg.get("exclude", [])

    def excluded(rel: str) -> bool:
        return any(fnmatch.fnmatch(rel, pat) for pat in excludes)

    out = []
    roots = explicit if explicit else cfg.get("include", ["src"])
    for r in roots:
        full = r if os.path.isabs(r) else os.path.join(root, r)
        if os.path.isfile(full):
            rel = os.path.relpath(full, root)
            if not excluded(rel):
                out.append(rel)
            continue
        for dirpath, _dirnames, filenames in os.walk(full):
            for fname in sorted(filenames):
                if not fname.endswith(exts):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fname), root)
                if not excluded(rel):
                    out.append(rel)
    return sorted(set(out))


def file_in_scope(rel: str, check_cfg: dict) -> bool:
    pats = check_cfg.get("include")
    if not pats:
        return True
    return any(fnmatch.fnmatch(rel, p) for p in pats)


# ---------------------------------------------------------------------------
# Main

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="iolint",
        description="suspension-safety & status-discipline lint for the "
                    "BarrierIO coroutine stack")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan (default: config include set)")
    ap.add_argument("--config", default=None,
                    help=f"config file (default: <root>/{DEFAULT_CONFIG})")
    ap.add_argument("--root", default=None,
                    help="repo root (default: the config file's directory)")
    ap.add_argument("--ci", action="store_true",
                    help="fail on any un-allowlisted finding; warn on stale "
                         "allowlist entries")
    ap.add_argument("--expect-mode", action="store_true",
                    help="fixture mode: findings must exactly match "
                         "`iolint-expect: <check>` markers")
    ap.add_argument("--frontend", choices=["auto", "builtin", "clang"],
                    default="builtin",
                    help="token source (default: builtin — the reference "
                         "frontend; clang requires python clang.cindex)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print(f"{c.NAME}\t(annotation: // iolint: {c.ANNOTATION}(...))")
        return 0

    # Locate root + config: explicit flags win; else walk up from cwd.
    config_path = args.config
    if config_path is None:
        probe = os.path.abspath(args.root or os.getcwd())
        while True:
            cand = os.path.join(probe, DEFAULT_CONFIG)
            if os.path.isfile(cand):
                config_path = cand
                break
            parent = os.path.dirname(probe)
            if parent == probe:
                print(f"iolint: no {DEFAULT_CONFIG} found", file=sys.stderr)
                return 2
            probe = parent
    root = os.path.abspath(args.root or os.path.dirname(
        os.path.abspath(config_path)) or ".")
    cfg = load_config(config_path)
    top = cfg.get("iolint", {})
    checks_cfg = cfg.get("checks", {})
    allow_entries = list(cfg.get("allowlist", {}).get("entries", []))

    # Frontend selection.
    tokenize = None
    frontend_name = "builtin"
    if args.frontend in ("auto", "clang"):
        from . import frontend_clang  # noqa: PLC0415
        tokenize, info = frontend_clang.load(
            top.get("libclang_versions", []))
        if tokenize is None:
            if args.frontend == "clang":
                print(f"iolint: clang frontend requested but {info}",
                      file=sys.stderr)
                return 77
            if not args.quiet:
                print(f"iolint: {info}; using builtin frontend")
        else:
            frontend_name = "clang"
            if not args.quiet:
                print(f"iolint: frontend {info}")

    files = gather_files(root, top, args.paths)
    if not files:
        print("iolint: no files to scan", file=sys.stderr)
        return 2

    sources = []
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        toks = tokenize(rel, text) if tokenize else None
        sources.append(parse_source(
            rel, text, tokens=toks,
            frontend=frontend_name if toks is not None else "builtin"))

    # Cross-file symbol harvest (status-returning function names).  A name
    # also declared with a non-status return somewhere is ambiguous at the
    # call site and dropped — the [[nodiscard]] attributes + -Werror cover
    # those precisely; `always_watch` re-pins a name despite ambiguity.
    sd_cfg = checks_cfg.get(status_discard_check.NAME.replace("-", "_"), {})
    status_names, other_names = set(), set()
    for src in sources:
        s, o = status_discard_check.harvest(src, sd_cfg)
        status_names |= s
        other_names |= o
    always = set(sd_cfg.get("always_watch", []))
    symbols = {"status_returning": (status_names - other_names) | always,
               "status_ambiguous": status_names & other_names}

    findings = []
    for src in sources:
        for check in CHECKS:
            ccfg = checks_cfg.get(check.NAME.replace("-", "_"), {})
            if not ccfg.get("enabled", True):
                continue
            if not file_in_scope(src.path, ccfg):
                continue
            findings.extend(check.run(src, ccfg, symbols))
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    # Allowlist: matched entries suppress; unmatched entries are stale and
    # must be deleted (the list only ever shrinks).
    allow_set = set(allow_entries)
    matched = set()
    for f in findings:
        if f.fingerprint in allow_set:
            f.allowlisted = True
            matched.add(f.fingerprint)
    stale = [e for e in allow_entries if e not in matched]
    active = [f for f in findings if not f.allowlisted]

    if args.expect_mode:
        return _expect_mode(sources, findings, quiet=args.quiet)

    for f in active:
        print(f.render())
    if not args.quiet:
        per_check = {}
        for f in findings:
            per_check[f.check] = per_check.get(f.check, 0) + 1
        summary = ", ".join(f"{k}: {v}" for k, v in sorted(per_check.items()))
        grand = len(active)
        print(f"iolint: {len(files)} files, {grand} finding(s)"
              f"{' [' + summary + ']' if summary else ''}"
              f"{f', {len(findings) - grand} allowlisted' if grand != len(findings) else ''}"
              f" (frontend: {frontend_name})")
    for e in stale:
        msg = (f"stale allowlist entry (no longer fires — delete it so the "
               f"grandfather list shrinks): {e}")
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning::iolint: {msg}")
        else:
            print(f"iolint: warning: {msg}")
    return 1 if active else 0


def _expect_mode(sources, findings, quiet=False) -> int:
    """Fixture contract: every finding must land on a line carrying a
    matching `iolint-expect: <check>` marker, and every marker must be
    hit.  Allowlisted findings still count as hits (the allowlist test
    uses its own config)."""
    failures = []
    by_file = {}
    for f in findings:
        by_file.setdefault(f.path, []).append(f)
    for src in sources:
        fs = by_file.get(src.path, [])
        expected = {}  # (line, check) -> hit?
        for line, names in src.expects.items():
            for name in names:
                expected[(line, name)] = False
        for f in fs:
            key = (f.line, f.check)
            if key in expected:
                expected[key] = True
            else:
                failures.append(f"unexpected finding: {f.render()}")
        for (line, name), hit in sorted(expected.items()):
            if not hit:
                failures.append(
                    f"{src.path}:{line}: expected [{name}] did not fire")
    if failures:
        for msg in failures:
            print(msg)
        print(f"iolint --expect-mode: {len(failures)} mismatch(es)")
        return 1
    if not quiet:
        n = sum(len(v) for v in by_file.values())
        print(f"iolint --expect-mode: OK "
              f"({n} finding(s) matched expectations)")
    return 0
