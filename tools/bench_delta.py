#!/usr/bin/env python3
"""Bench-delta guard: fail CI when a perf scenario regresses.

Compares a freshly produced BENCH_perf.json against the committed baseline
run and flags any ns/io scenario that regressed by more than the threshold.

The baseline and the fresh run come from different machines (the committed
run is a full Release run on a dev box; CI runs --smoke on a shared
runner), so raw ns/io ratios carry a machine-speed factor. The guard
removes it by normalizing every scenario's ratio by the median ratio across
scenarios: a uniform slowdown (slower runner) passes, while one scenario
regressing relative to the rest — the signature of an actual hot-path
regression — fails.

Run-to-run noise on a shared runner easily exceeds 25% per scenario, so
both sides use per-scenario minima: the committed baseline is the
per-scenario best of several full runs, and several fresh runs may be
passed — the guard takes each scenario's minimum ns/io across them (the
standard noise-robust benchmark estimator) before comparing.

Separately from wall-clock ratios, the *simulated* figures (ops, sim_ios,
requests, events, sim_ops_per_sec) are deterministic: fixed seed,
discrete-event sim, no machine-speed factor. The guard requires them to be
bit-identical across all fresh runs, and bit-identical to the baseline for
any scenario run at the same length (same ops). This is the
instrumentation-cost gate: fault-injection hooks, counters, and similar
observability machinery sit disabled on the hot path during perf runs, and
"disabled" must mean zero simulated cost — a hook that adds even one sim
delay or extra request when no fault plan is installed shifts events/sim_ios
and fails here, long before it would move a noisy ns/io ratio.

Usage:
  tools/bench_delta.py <baseline.json> <fresh.json> [<fresh2.json> ...]
                       [--threshold 1.25] [--warn-only]

Exit codes: 0 ok / warn-only, 1 regression found, 2 usage or schema error.
"""

import argparse
import json
import statistics
import sys

# Purely simulated, machine-independent figures. Deterministic for a given
# scenario length (ops), so any drift means the simulated IO path changed —
# e.g. a "disabled" fault hook that still costs sim time.
SIM_KEYS = ("ops", "sim_ios", "requests", "events", "sim_ops_per_sec")


def sim_fingerprint(s):
    return {k: s[k] for k in SIM_KEYS if s.get(k) is not None}


def sim_drift(a, b):
    """Fields of SIM_KEYS present in both a and b whose values differ."""
    fa, fb = sim_fingerprint(a), sim_fingerprint(b)
    return [f"{k} {fa[k]} vs {fb[k]}"
            for k in SIM_KEYS if k in fa and k in fb and fa[k] != fb[k]]


def load_scenarios(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bio-perf/1":
        print(f"bench_delta: {path}: unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh", nargs="+")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="normalized ns/io ratio above which a scenario "
                         "counts as regressed (default 1.25 = +25%%)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (sanitizer legs)")
    args = ap.parse_args()

    base = load_scenarios(args.baseline)
    runs = [load_scenarios(p) for p in args.fresh]
    # Per-scenario minimum ns/io across the fresh runs.
    fresh = {}
    for run in runs:
        for name, s in run.items():
            if not s.get("ns_per_io"):
                continue
            if name not in fresh or s["ns_per_io"] < fresh[name]["ns_per_io"]:
                fresh[name] = s

    # Determinism / instrumentation-cost gate on the simulated figures.
    # Across fresh runs of the same binary the fingerprint must be
    # bit-identical; against the baseline it must match whenever the
    # scenario ran at the same length (a full run compared to a full run).
    sim_broken = []
    for name, s in fresh.items():
        for run in runs:
            other = run.get(name)
            if other is None:
                continue
            drift = sim_drift(s, other)
            if drift:
                sim_broken.append(
                    f"{name} differs between fresh runs ({'; '.join(drift)})")
                break
        b = base.get(name)
        if b is not None and b.get("ops") == s.get("ops"):
            drift = sim_drift(s, b)
            if drift:
                sim_broken.append(
                    f"{name} drifted from the committed baseline at equal "
                    f"ops ({'; '.join(drift)})")
    for msg in sim_broken:
        print(f"  sim-figure drift: {msg}")

    ratios = {}
    for name, s in fresh.items():
        b = base.get(name)
        if b is None:
            print(f"  new scenario (no baseline): {name}")
            continue
        if not b.get("ns_per_io"):
            continue
        ratios[name] = s["ns_per_io"] / b["ns_per_io"]

    # A baseline scenario the fresh runs no longer produce means the gate
    # silently lost coverage — fail (re-commit the baseline when a scenario
    # is deliberately removed or renamed).
    missing = [n for n, b in sorted(base.items())
               if b.get("ns_per_io") and n not in fresh]
    for name in missing:
        print(f"  missing scenario (in baseline, not in fresh runs): {name}")

    # Ring QD sweep invariant: batched submission must beat serial awaits
    # at QD >= 8 in *simulated* throughput. sim_ops_per_sec is deterministic
    # (fixed seed, discrete-event sim), so this compares within the fresh
    # run alone — no machine-speed factor to remove.
    ring_broken = []
    best = {}
    for run in runs:
        for name, s in run.items():
            if name.startswith("ring-") and s.get("sim_ops_per_sec"):
                best[name] = max(best.get(name, 0), s["sim_ops_per_sec"])
    serial = best.get("ring-serial")
    if serial:
        for name in ("ring-qd8", "ring-qd32"):
            if name in best and best[name] <= serial:
                ring_broken.append(
                    f"{name} ({best[name]:.0f} sim ops/s) does not beat "
                    f"ring-serial ({serial:.0f})")
        for name, v in sorted(best.items()):
            print(f"  {name:24s} sim ops/s {v:10.0f}  "
                  f"x{v / serial:.2f} vs serial")

    # Multi-queue scaling invariant: four software queues over four flash
    # channels must beat the single-queue layer by >1.3x in *simulated*
    # throughput. Like the ring sweep this is deterministic and compares
    # within the fresh run alone.
    mq_broken = []
    mq_best = {}
    for run in runs:
        for name, s in run.items():
            if name.startswith("mq-scaling-") and s.get("sim_ops_per_sec"):
                mq_best[name] = max(mq_best.get(name, 0),
                                    s["sim_ops_per_sec"])
    mq_q1 = mq_best.get("mq-scaling-q1")
    if mq_q1:
        q4 = mq_best.get("mq-scaling-q4")
        if q4 is not None and q4 <= 1.3 * mq_q1:
            mq_broken.append(
                f"mq-scaling-q4 ({q4:.0f} sim ops/s) is not >1.3x "
                f"mq-scaling-q1 ({mq_q1:.0f})")
        for name, v in sorted(mq_best.items()):
            print(f"  {name:24s} sim ops/s {v:10.0f}  "
                  f"x{v / mq_q1:.2f} vs q1")

    if not ratios:
        print("bench_delta: no comparable ns/io scenarios", file=sys.stderr)
        sys.exit(2)

    med = statistics.median(ratios.values())
    print(f"bench_delta: {len(ratios)} scenarios, median ns/io ratio "
          f"{med:.3f} (machine-speed factor, divided out)")
    regressed = []
    for name in sorted(ratios):
        norm = ratios[name] / med
        flag = "REGRESSED" if norm > args.threshold else "ok"
        print(f"  {name:24s} ratio {ratios[name]:6.3f}  "
              f"normalized {norm:6.3f}  {flag}")
        if norm > args.threshold:
            regressed.append(name)

    problems = []
    if regressed:
        problems.append(f"{len(regressed)} scenario(s) "
                        f">{(args.threshold - 1) * 100:.0f}% over the "
                        f"fleet-normalized baseline: {', '.join(regressed)}")
    if missing:
        problems.append(f"{len(missing)} baseline scenario(s) not produced "
                        f"by the fresh runs: {', '.join(missing)}")
    if ring_broken:
        problems.append("ring QD sweep lost its batching win: "
                        + "; ".join(ring_broken))
    if mq_broken:
        problems.append("multi-queue scaling lost its channel-parallel win: "
                        + "; ".join(mq_broken))
    if sim_broken:
        problems.append(
            f"{len(sim_broken)} scenario(s) with non-deterministic or "
            f"drifted simulated figures (disabled instrumentation must "
            f"cost zero sim time): " + "; ".join(sim_broken))
    if problems:
        verdict = "warning" if args.warn_only else "FAIL"
        for p in problems:
            print(f"bench_delta: {verdict}: {p}")
        sys.exit(0 if args.warn_only else 1)
    print("bench_delta: ok")
    sys.exit(0)


if __name__ == "__main__":
    main()
