// Shared helpers for device-level tests.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "flash/device.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::flash::testutil {

/// A tiny, fast device for unit tests.
inline DeviceProfile test_profile(BarrierMode mode, bool plp = false) {
  using namespace bio::sim::literals;
  DeviceProfile p;
  p.name = "test";
  p.geometry = Geometry{.channels = 2,
                        .ways_per_channel = 2,
                        .blocks_per_chip = 8,
                        .pages_per_block = 4};
  p.nand = NandTiming{.read_page = 50_us,
                      .program_page = 200_us,
                      .erase_block = 1'000_us,
                      .channel_xfer = 10_us};
  p.queue_depth = 4;
  p.cache_entries = 8;
  p.plp = plp;
  p.barrier_mode = mode;
  p.cmd_overhead = 5_us;
  p.dma_4k = 10_us;
  p.flush_overhead = 20_us;
  p.plp_flush_latency = 15_us;
  p.read_hit_latency = 5_us;
  return p;
}

/// Owns the completion event and block payload a Command points at
/// (Command::blocks is a non-owning span; in production the block layer's
/// pooled request owns the storage).
struct Submission {
  std::shared_ptr<Command> cmd;
  std::unique_ptr<sim::Event> done;
  std::shared_ptr<std::vector<std::pair<Lba, Version>>> blocks;
};

inline Submission make_write(sim::Simulator& sim,
                             std::vector<std::pair<Lba, Version>> blocks,
                             Priority priority = Priority::kSimple,
                             bool barrier = false, bool fua = false,
                             bool flush_before = false) {
  Submission s;
  s.cmd = std::make_shared<Command>();
  s.done = std::make_unique<sim::Event>(sim);
  s.blocks = std::make_shared<std::vector<std::pair<Lba, Version>>>(
      std::move(blocks));
  s.cmd->op = OpCode::kWrite;
  s.cmd->priority = priority;
  s.cmd->barrier = barrier;
  s.cmd->fua = fua;
  s.cmd->flush_before = flush_before;
  s.cmd->blocks = *s.blocks;
  s.cmd->done = s.done.get();
  return s;
}

inline Submission make_read(sim::Simulator& sim, Lba lba) {
  Submission s;
  s.cmd = std::make_shared<Command>();
  s.done = std::make_unique<sim::Event>(sim);
  s.cmd->op = OpCode::kRead;
  s.cmd->read_lba = lba;
  s.cmd->done = s.done.get();
  return s;
}

inline Submission make_flush(sim::Simulator& sim,
                             Priority priority = Priority::kSimple) {
  Submission s;
  s.cmd = std::make_shared<Command>();
  s.done = std::make_unique<sim::Event>(sim);
  s.cmd->op = OpCode::kFlush;
  s.cmd->priority = priority;
  s.cmd->done = s.done.get();
  return s;
}

/// Builds a one-block payload without an initializer_list (GCC 12 cannot
/// place initializer_list backing arrays in coroutine frames, so tests must
/// avoid braced lists inside co_await expressions).
inline std::vector<std::pair<Lba, Version>> one_block(Lba lba, Version v) {
  std::vector<std::pair<Lba, Version>> b;
  b.emplace_back(lba, v);
  return b;
}

/// Submits with busy-retry (the dispatcher normally does this).
inline sim::Task submit_retry(sim::Simulator& sim, StorageDevice& dev,
                              std::shared_ptr<Command> cmd) {
  using namespace bio::sim::literals;
  while (!dev.try_submit(cmd)) co_await sim.delay(100_us);
}

}  // namespace bio::flash::testutil
