// iolint regression tests: the static analyzer's self-test (each check
// fires on the reconstructed DESIGN.md §9.2-3 / §10.4 / §11.4 ledger
// bugs, stays silent on the fixed forms, allowlist mechanics) and the
// repo-wide lint itself (src/ + tests/ carry zero un-allowlisted
// findings).  Both shell out to the python tool; when no python3 is on
// PATH the tests skip rather than fail, matching the CI lint leg's
// exit-77 convention for optional tooling.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_tool(const std::string& args) {
  const std::string cmd =
      "cd \"" BIO_SOURCE_DIR "\" && python3 " + args + " 2>&1";
  RunResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return res;
  std::array<char, 4096> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) res.output += buf.data();
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

bool have_python() {
  const int status = std::system("python3 -c 'pass' >/dev/null 2>&1");
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

TEST(IolintTest, SelftestLedgerFixturesAndAllowlist) {
  if (!have_python()) GTEST_SKIP() << "python3 not on PATH";
  const RunResult res = run_tool("tools/iolint/selftest.py");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("iolint selftest: OK"), std::string::npos)
      << res.output;
}

TEST(IolintTest, RepoIsCleanUnderCiMode) {
  if (!have_python()) GTEST_SKIP() << "python3 not on PATH";
  const RunResult res = run_tool("tools/iolint/iolint.py --ci");
  EXPECT_EQ(res.exit_code, 0) << res.output;
}

}  // namespace
