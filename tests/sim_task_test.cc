// Tests for the coroutine task machinery and the event loop.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace bio::sim {
namespace {

using namespace bio::sim::literals;

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_FALSE(sim.has_pending_events());
}

TEST(SimulatorTest, DelayAdvancesTime) {
  Simulator sim;
  SimTime observed = kSimTimeMax;
  auto body = [&]() -> Task {
    co_await sim.delay(15_us);
    observed = sim.now();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(observed, 15_us);
  EXPECT_EQ(sim.now(), 15_us);
}

TEST(SimulatorTest, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<SimTime> stamps;
  auto body = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(10_us);
      stamps.push_back(sim.now());
    }
  };
  sim.spawn("t", body());
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 10_us);
  EXPECT_EQ(stamps[1], 20_us);
  EXPECT_EQ(stamps[2], 30_us);
}

TEST(SimulatorTest, TwoThreadsInterleaveByTimestamp) {
  Simulator sim;
  std::vector<int> order;
  auto mk = [&](int id, SimTime step) -> Task {
    for (int i = 0; i < 2; ++i) {
      co_await sim.delay(step);
      order.push_back(id);
    }
  };
  sim.spawn("a", mk(1, 10_us));
  sim.spawn("b", mk(2, 15_us));
  sim.run();
  // a@10, b@15, a@20, b@30.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(SimulatorTest, SameTimestampRunsInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  auto mk = [&](int id) -> Task {
    co_await sim.delay(5_us);
    order.push_back(id);
  };
  sim.spawn("a", mk(1));
  sim.spawn("b", mk(2));
  sim.spawn("c", mk(3));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AwaitedChildRunsInline) {
  Simulator sim;
  std::vector<std::string> log;
  auto child = [&]() -> Task {
    log.push_back("child-start");
    co_await sim.delay(5_us);
    log.push_back("child-end");
  };
  auto parent = [&]() -> Task {
    log.push_back("parent-start");
    co_await child();
    log.push_back("parent-end");
  };
  sim.spawn("p", parent());
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-end"}));
  EXPECT_EQ(sim.now(), 5_us);
}

TEST(SimulatorTest, NestedChildrenPropagateTime) {
  Simulator sim;
  auto leaf = [&]() -> Task { co_await sim.delay(7_us); };
  auto mid = [&]() -> Task {
    co_await leaf();
    co_await leaf();
  };
  auto root = [&]() -> Task {
    co_await mid();
    co_await sim.delay(1_us);
  };
  sim.spawn("r", root());
  sim.run();
  EXPECT_EQ(sim.now(), 15_us);
}

TEST(SimulatorTest, ExceptionInChildPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  auto child = [&]() -> Task {
    co_await sim.delay(1_us);
    throw std::runtime_error("boom");
  };
  auto parent = [&]() -> Task {
    try {
      co_await child();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  };
  sim.spawn("p", parent());
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(SimulatorTest, ExceptionInTopLevelRethrownFromRun) {
  Simulator sim;
  auto body = [&]() -> Task {
    co_await sim.delay(1_us);
    throw std::runtime_error("unhandled");
  };
  sim.spawn("t", body());
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulatorTest, RunUntilStopsAtRequestedTime) {
  Simulator sim;
  int ticks = 0;
  auto body = [&]() -> Task {
    for (int i = 0; i < 100; ++i) {
      co_await sim.delay(10_us);
      ++ticks;
    }
  };
  sim.spawn("t", body());
  sim.run_until(35_us);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.now(), 35_us);
  EXPECT_TRUE(sim.has_pending_events());
  sim.run();
  EXPECT_EQ(ticks, 100);
}

TEST(SimulatorTest, RunUntilAdvancesTimeEvenWithNoEvents) {
  Simulator sim;
  sim.run_until(1_ms);
  EXPECT_EQ(sim.now(), 1_ms);
}

TEST(SimulatorTest, StopBreaksRunLoop) {
  Simulator sim;
  int count = 0;
  auto body = [&]() -> Task {
    for (;;) {
      co_await sim.delay(1_us);
      if (++count == 5) sim.stop();
    }
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(SimulatorTest, JoinWaitsForThreadCompletion) {
  Simulator sim;
  SimTime joined_at = 0;
  auto worker = [&]() -> Task { co_await sim.delay(50_us); };
  auto& w = sim.spawn("worker", worker());
  auto waiter = [&]() -> Task {
    co_await sim.join(w);
    joined_at = sim.now();
  };
  sim.spawn("waiter", waiter());
  sim.run();
  EXPECT_GE(joined_at, 50_us);
  EXPECT_TRUE(w.finished);
}

TEST(SimulatorTest, JoinOnFinishedThreadIsImmediate) {
  Simulator sim;
  auto worker = [&]() -> Task { co_await sim.delay(1_us); };
  auto& w = sim.spawn("worker", worker());
  sim.run();
  bool joined = false;
  auto waiter = [&]() -> Task {
    co_await sim.join(w);
    joined = true;
  };
  sim.spawn("waiter", waiter());
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(SimulatorTest, JoinCountsAsContextSwitch) {
  Simulator sim;
  auto worker = [&]() -> Task { co_await sim.delay(50_us); };
  auto& w = sim.spawn("worker", worker());
  auto waiter = [&]() -> Task { co_await sim.join(w); };
  auto& wt = sim.spawn("waiter", waiter());
  sim.run();
  EXPECT_EQ(wt.context_switches, 1u);
  EXPECT_EQ(wt.blocks, 1u);
  // Pure delays never count as context switches.
  EXPECT_EQ(w.context_switches, 0u);
}

TEST(SimulatorTest, WakeLatencyChargedOnWakeup) {
  Simulator sim({.wake_latency = 5_us});
  SimTime joined_at = 0;
  auto worker = [&]() -> Task { co_await sim.delay(50_us); };
  auto& w = sim.spawn("worker", worker());
  auto waiter = [&]() -> Task {
    co_await sim.join(w);
    joined_at = sim.now();
  };
  sim.spawn("waiter", waiter());
  sim.run();
  EXPECT_EQ(joined_at, 55_us);
}

TEST(SimulatorTest, ScheduleCallRunsAtRequestedTime) {
  Simulator sim;
  SimTime fired = 0;
  sim.schedule_call(30_us, [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, 30_us);
}

TEST(SimulatorTest, ThreadStatsByPrefix) {
  Simulator sim;
  auto worker = [&]() -> Task { co_await sim.delay(1_us); };
  sim.spawn("app:0", worker());
  sim.spawn("app:1", worker());
  sim.spawn("jbd", worker());
  sim.run();
  EXPECT_EQ(sim.thread_count("app:"), 2u);
  EXPECT_EQ(sim.thread_count(""), 3u);
}

TEST(SimulatorTest, TeardownWithSuspendedThreadsDoesNotLeakOrCrash) {
  auto sim = std::make_unique<Simulator>();
  auto body = [&s = *sim]() -> Task {
    for (;;) co_await s.delay(1_ms);
  };
  sim->spawn("immortal", body());
  sim->run_until(10_ms);
  // Destroying the simulator with the thread still suspended must be safe.
  sim.reset();
  SUCCEED();
}

TEST(SimulatorTest, YieldInterleavesCoroutinesAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  auto mk = [&](int id) -> Task {
    order.push_back(id);
    co_await sim.yield();
    order.push_back(id + 10);
  };
  sim.spawn("a", mk(1));
  sim.spawn("b", mk(2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
  EXPECT_EQ(sim.now(), 0u);
}

TEST(TaskTest, UnstartedTaskIsSafelyDestroyed) {
  Simulator sim;
  bool ran = false;
  {
    auto body = [&]() -> Task {
      ran = true;
      co_return;
    };
    Task t = body();
    EXPECT_TRUE(t.valid());
  }
  EXPECT_FALSE(ran);
}

TEST(TaskTest, MoveTransfersOwnership) {
  Simulator sim;
  auto body = [&]() -> Task { co_return; };
  Task a = body();
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
}

}  // namespace
}  // namespace bio::sim
