// Tests for the NAND array timing model.
#include <gtest/gtest.h>

#include "flash/nand.h"
#include "sim/simulator.h"

namespace bio::flash {
namespace {

using namespace bio::sim::literals;
using sim::Simulator;
using sim::Task;

Geometry small_geom() {
  return Geometry{.channels = 2,
                  .ways_per_channel = 2,
                  .blocks_per_chip = 8,
                  .pages_per_block = 4};
}

NandTiming fast_timing() {
  return NandTiming{.read_page = 50_us,
                    .program_page = 200_us,
                    .erase_block = 1'000_us,
                    .channel_xfer = 10_us};
}

TEST(NandArrayTest, GeometryDerivedQuantities) {
  Geometry g = small_geom();
  EXPECT_EQ(g.chips(), 4u);
  EXPECT_EQ(g.pages_per_segment(), 16u);
  EXPECT_EQ(g.segments(), 8u);
  EXPECT_EQ(g.physical_pages(), 128u);
}

TEST(NandArrayTest, SingleProgramTakesXferPlusProg) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  auto body = [&]() -> Task { co_await nand.program(0); };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(sim.now(), 210_us);
  EXPECT_EQ(nand.programs_issued(), 1u);
}

TEST(NandArrayTest, ProgramsOnDifferentChannelsOverlap) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  // Chips 0 and 1 are on different channels (chip % channels).
  auto body = [&](std::uint32_t chip) -> Task { co_await nand.program(chip); };
  sim.spawn("a", body(0));
  sim.spawn("b", body(1));
  sim.run();
  EXPECT_EQ(sim.now(), 210_us) << "full overlap across channels";
}

TEST(NandArrayTest, ProgramsOnSameChipSerialize) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  auto body = [&]() -> Task { co_await nand.program(0); };
  sim.spawn("a", body());
  sim.spawn("b", body());
  sim.run();
  // Second program waits for the first: its 10us transfer overlaps the
  // first program, then 200 + 200 on the die: 10 + 200 + 200 = 410.
  EXPECT_EQ(sim.now(), 410_us);
}

TEST(NandArrayTest, SameChannelDifferentWaysShareOnlyBus) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  // Chips 0 and 2 share channel 0 in a 2-channel array.
  auto body = [&](std::uint32_t chip) -> Task { co_await nand.program(chip); };
  sim.spawn("a", body(0));
  sim.spawn("b", body(2));
  sim.run();
  // Transfers serialize (10 + 10), programs overlap: 20 + 200 = 220.
  EXPECT_EQ(sim.now(), 220_us);
}

TEST(NandArrayTest, BarrierPenaltyScalesProgramTime) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing(), /*penalty=*/0.05);
  auto body = [&]() -> Task { co_await nand.program(0); };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(sim.now(), 220_us);  // 10 + 200 * 1.05
}

TEST(NandArrayTest, ReadOccupiesChipThenChannel) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  auto body = [&]() -> Task { co_await nand.read(1); };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(sim.now(), 60_us);  // 50 tR + 10 xfer
  EXPECT_EQ(nand.reads_issued(), 1u);
}

TEST(NandArrayTest, EraseOccupiesChip) {
  Simulator sim;
  NandArray nand(sim, small_geom(), fast_timing());
  auto eraser = [&]() -> Task { co_await nand.erase(0); };
  auto writer = [&]() -> Task { co_await nand.program(0); };
  sim.spawn("e", eraser());
  sim.spawn("w", writer());
  sim.run();
  // Program's channel transfer overlaps the erase, then waits for the die.
  EXPECT_EQ(sim.now(), 1'200_us);
  EXPECT_EQ(nand.erases_issued(), 1u);
}

}  // namespace
}  // namespace bio::flash
