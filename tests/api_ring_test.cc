// api::Ring — batched submission/completion rings with linked barrier
// chains (DESIGN.md §10): out-of-order reap, chain serialization vs
// unlinked concurrency, link-error cancellation, submit-time validation,
// registered-buffer slot reuse, SyncPolicy parity with direct Vfs calls,
// the QD-sweep batching win, and the ring-driven concurrent crash sweep
// (including the injected link-ignoring bug the oracle must catch).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/ring.h"
#include "api/vfs.h"
#include "chk/crash_check.h"
#include "fs_test_util.h"
#include "wl/ring_workload.h"

namespace bio {
namespace {

using namespace bio::sim::literals;
using api::Cqe;
using api::Ring;
using api::RingOp;
using api::Sqe;
using core::StackKind;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) out += "\n  " + s;
  return out;
}

Sqe make_sqe(RingOp op, api::Fd fd, std::uint64_t ud, std::uint32_t page = 0,
             std::uint32_t npages = 0, std::uint8_t flags = 0,
             std::int32_t buf_index = -1) {
  Sqe s;
  s.op = op;
  s.fd = fd;
  s.page = page;
  s.npages = npages;
  s.buf_index = buf_index;
  s.flags = flags;
  s.user_data = ud;
  return s;
}

// ---- 1. out-of-order completion reap ---------------------------------------

TEST(RingTest, CompletionsReapOutOfSubmissionOrder) {
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  api::Vfs vfs(*x.stack);
  std::vector<Cqe> reaped;
  auto body = [&]() -> sim::Task {
    api::File f =
        api::must(co_await vfs.open("a", {.create = true}));
    Ring ring(vfs);
    // Submitted first but slow (write + device DMA)...
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 1, 0, 4)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kFsync, f.fd(), 2)));
    // ...submitted last but instant.
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kNop, api::kInvalidFd, 3)));
    EXPECT_EQ(ring.submit(), 3u);
    for (int i = 0; i < 3; ++i) reaped.push_back(co_await ring.wait_cqe());
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run();

  ASSERT_EQ(reaped.size(), 3u);
  EXPECT_EQ(reaped.front().user_data, 3u) << "nop did not complete first";
  for (const Cqe& c : reaped) EXPECT_GE(c.res, 0);
}

// ---- 2. chain serialization vs unlinked concurrency ------------------------

TEST(RingTest, LinkedChainSerializesWhileUnlinkedOpsRun) {
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  api::Vfs vfs(*x.stack);
  // (user_data, started) event log filled by the hooks.
  struct Ev {
    std::uint64_t ud;
    bool start;
  };
  std::vector<Ev> events;
  auto body = [&]() -> sim::Task {
    api::File f =
        api::must(co_await vfs.open("a", {.create = true}));
    Ring ring(vfs);
    ring.set_on_op_start(
        [&](const Sqe& s) { events.push_back({s.user_data, true}); });
    ring.set_on_op_complete([&](const Sqe& s, std::int32_t) {
      events.push_back({s.user_data, false});
    });
    // Chain: write -> fdatabarrier -> write, plus one unlinked write.
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kWrite, f.fd(), 1, 0, 2, api::kSqeLink)));
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kFdatabarrier, f.fd(), 2, 0, 0, api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 3, 4, 2)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 4, 8, 2)));
    EXPECT_EQ(ring.submit(), 4u);
    for (int i = 0; i < 4; ++i) (void)co_await ring.wait_cqe();
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run();

  ASSERT_EQ(events.size(), 8u);
  auto index_of = [&](std::uint64_t ud, bool start) {
    for (std::size_t i = 0; i < events.size(); ++i)
      if (events[i].ud == ud && events[i].start == start)
        return static_cast<std::ptrdiff_t>(i);
    return std::ptrdiff_t{-1};
  };
  // Within the chain: each op starts only after its predecessor completed.
  EXPECT_GT(index_of(2, true), index_of(1, false));
  EXPECT_GT(index_of(3, true), index_of(2, false));
  // The unlinked write did not wait for the chain.
  EXPECT_LT(index_of(4, true), index_of(2, false));
}

// ---- 3. chain cancellation on a runtime error ------------------------------

TEST(RingTest, FailedSqeCancelsChainRemainderWithECanceled) {
  fs::testutil::StackFixture x(StackKind::kExt4DR);
  api::Vfs vfs(*x.stack);
  std::vector<Cqe> reaped;
  auto body = [&]() -> sim::Task {
    api::File f = api::must(
        co_await vfs.open("a", {.create = true, .extent_blocks = 8}));
    Ring ring(vfs);
    // First write lands past the extent -> ENOSPC at run time; the two
    // linked followers must be cancelled, the unlinked op unaffected.
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kWrite, f.fd(), 1, 100, 2, api::kSqeLink)));
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kFsync, f.fd(), 2, 0, 0, api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 3, 0, 2)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 4, 2, 2)));
    EXPECT_EQ(ring.submit(), 4u);
    for (int i = 0; i < 4; ++i) reaped.push_back(co_await ring.wait_cqe());
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run();

  ASSERT_EQ(reaped.size(), 4u);
  auto res_of = [&](std::uint64_t ud) {
    for (const Cqe& c : reaped)
      if (c.user_data == ud) return c.res;
    return std::int32_t{1000};
  };
  EXPECT_EQ(res_of(1), -28);   // -ENOSPC
  EXPECT_EQ(res_of(2), -125);  // -ECANCELED
  EXPECT_EQ(res_of(3), -125);
  EXPECT_EQ(res_of(4), 2);     // unlinked write unaffected
}

// ---- 4. submit-time validation (fail fast, satellite contract) -------------

TEST(RingTest, SubmitTimeValidationFailsFastWithErrorCqes) {
  fs::testutil::StackFixture x(StackKind::kExt4DR);
  api::Vfs vfs(*x.stack);
  std::vector<Cqe> reaped;
  std::uint32_t fs_ops_started = 0;
  auto body = [&]() -> sim::Task {
    api::File f =
        api::must(co_await vfs.open("a", {.create = true}));
    Ring ring(vfs);
    ring.set_on_op_start([&](const Sqe&) { ++fs_ops_started; });
    // Bad fd; its linked follower cancels.
    EXPECT_TRUE(
        ring.push(make_sqe(RingOp::kWrite, 999, 1, 0, 1, api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 2, 0, 1)));
    // Unregistered buffer index.
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 3, 0, 1, 0,
                                   /*buf_index=*/0)));
    // Barrier op on a non-BarrierFS mount (capability matrix).
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kFdatabarrier, f.fd(), 4)));
    // Zero-length write.
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 5, 0, 0)));
    // Valid chain prefix still runs; the invalid middle cancels the tail.
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kWrite, f.fd(), 6, 0, 2, api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kFdatabarrier, f.fd(), 7, 0, 0,
                                   api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 8, 2, 2)));
    EXPECT_EQ(ring.submit(), 8u);
    for (int i = 0; i < 8; ++i) reaped.push_back(co_await ring.wait_cqe());
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run();

  ASSERT_EQ(reaped.size(), 8u);
  auto res_of = [&](std::uint64_t ud) {
    for (const Cqe& c : reaped)
      if (c.user_data == ud) return c.res;
    return std::int32_t{1000};
  };
  EXPECT_EQ(res_of(1), -9);    // -EBADF
  EXPECT_EQ(res_of(2), -125);  // chained behind the bad fd
  EXPECT_EQ(res_of(3), -22);   // -EINVAL: unregistered buffer
  EXPECT_EQ(res_of(4), -22);   // -EINVAL: fdatabarrier on JBD2
  EXPECT_EQ(res_of(5), -22);   // -EINVAL: zero length
  EXPECT_EQ(res_of(6), 2);     // valid chain prefix ran
  EXPECT_EQ(res_of(7), -22);
  EXPECT_EQ(res_of(8), -125);  // linked behind the invalid barrier
  // Fail-fast means the invalid sqes never reached the filesystem: only
  // the one valid chain-prefix write ever started.
  EXPECT_EQ(fs_ops_started, 1u);
}

// ---- 5. registered buffers: NCQ slot reuse across submits ------------------

TEST(RingTest, RegisteredBuffersReuseAcrossSubmits) {
  fs::testutil::StackFixture x(StackKind::kBfsDR);
  api::Vfs vfs(*x.stack);
  bool saw_in_flight = false;
  std::vector<std::int32_t> unregistered_res;
  auto body = [&]() -> sim::Task {
    api::File f =
        api::must(co_await vfs.open("a", {.create = true}));
    Ring ring(vfs);
    api::must(ring.register_buffers({4, 2}));
    EXPECT_EQ(ring.buffers_registered(), 2u);
    // Re-registering and oversized use are submit-time errors.
    EXPECT_FALSE(ring.register_buffers({1}).ok());
    // The slot is claimed for the duration of the op it backs.
    ring.set_on_op_start([&](const Sqe&) {
      saw_in_flight = saw_in_flight || ring.buffer_in_flight(0);
    });

    for (int round = 0; round < 3; ++round) {
      EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(),
                                     static_cast<std::uint64_t>(round) + 1,
                                     0, 3, 0, /*buf_index=*/0)));
      EXPECT_EQ(ring.submit(), 1u);
      // Registration changes require quiescence while the op holds slot 0.
      EXPECT_FALSE(ring.unregister_buffers().ok());
      Cqe c = co_await ring.wait_cqe();
      EXPECT_EQ(c.res, 3);
    }
    EXPECT_EQ(ring.buffer_issues(0), 3u);  // slot reused, not re-carved
    EXPECT_EQ(ring.buffer_issues(1), 0u);

    // npages beyond the slot's capacity fails fast.
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 10, 0, 3, 0,
                                   /*buf_index=*/1)));
    EXPECT_EQ(ring.submit(), 1u);
    Cqe c = co_await ring.wait_cqe();
    EXPECT_EQ(c.res, -22);

    // Quiescent now: unregister works, after which slot refs are EINVAL.
    api::must(ring.unregister_buffers());
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 11, 0, 1, 0,
                                   /*buf_index=*/0)));
    EXPECT_EQ(ring.submit(), 1u);
    unregistered_res.push_back((co_await ring.wait_cqe()).res);
    api::must(f.close());
  };
  x.sim().spawn("app", body());
  x.sim().run();

  EXPECT_TRUE(saw_in_flight) << "slot ownership never observed in flight";
  ASSERT_EQ(unregistered_res.size(), 1u);
  EXPECT_EQ(unregistered_res.front(), -22);
}

// ---- 6. SyncPolicy parity: ring fsync == Vfs fsync on all four stacks ------

class RingSyncParityTest : public testing::TestWithParam<StackKind> {};

TEST_P(RingSyncParityTest, RingFsyncMatchesDirectVfsFsync) {
  // The same workload — 3 x (pwrite 4 pages + fsync) — once through direct
  // Vfs awaits and once through ring sqes must drive the identical syscall
  // path: same fs-level op counts, same journal commits.
  const StackKind kind = GetParam();
  struct Counts {
    std::uint64_t writes = 0, fsyncs = 0, commits = 0;
  };
  auto run = [&](bool via_ring) {
    fs::testutil::StackFixture x(kind);
    api::Vfs vfs(*x.stack);
    auto body = [&]() -> sim::Task {
      api::File f =
          api::must(co_await vfs.open("a", {.create = true}));
      if (via_ring) {
        Ring ring(vfs);
        for (int i = 0; i < 3; ++i) {
          EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(),
                                         static_cast<std::uint64_t>(i) * 2,
                                         0, 4, api::kSqeLink)));
          EXPECT_TRUE(ring.push(make_sqe(
              RingOp::kFsync, f.fd(), static_cast<std::uint64_t>(i) * 2 + 1)));
          EXPECT_EQ(ring.submit(), 2u);
          for (int k = 0; k < 2; ++k) {
            Cqe c = co_await ring.wait_cqe();
            EXPECT_GE(c.res, 0);
          }
        }
      } else {
        for (int i = 0; i < 3; ++i) {
          api::must(co_await f.pwrite(0, 4));
          api::must(co_await f.fsync());
        }
      }
      api::must(f.close());
    };
    x.sim().spawn("app", body());
    x.sim().run();
    return Counts{x.fs().stats().writes, x.fs().stats().fsyncs,
                  x.fs().journal().stats().commits};
  };
  const Counts direct = run(false);
  const Counts ring = run(true);
  EXPECT_EQ(ring.writes, direct.writes);
  EXPECT_EQ(ring.fsyncs, direct.fsyncs);
  EXPECT_EQ(direct.fsyncs, 3u);
  EXPECT_EQ(ring.commits, direct.commits);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, RingSyncParityTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- 7. the batching win: QD >= 8 beats one-syscall-per-coroutine ----------

TEST(RingTest, BatchedSubmissionBeatsSerialAwaitsAtQd8) {
  // 16 x (pwrite -> fdatabarrier) over 8 files on BFS-DR: issued one at a
  // time through direct awaits vs 8-chain ring batches. The batched chains
  // overlap their device time across channels, so the ring must finish in
  // less simulated time than the one-syscall-per-coroutine loop.
  auto elapsed = [&](bool via_ring) {
    fs::testutil::StackFixture x(StackKind::kBfsDR);
    api::Vfs vfs(*x.stack);
    sim::SimTime io_done = 0;
    auto body = [&]() -> sim::Task {
      std::vector<api::File> files;
      for (int i = 0; i < 8; ++i)
        files.push_back(api::must(co_await vfs.open(
            "f" + std::to_string(i), {.create = true, .extent_blocks = 8})));
      const sim::SimTime io_start = x.sim().now();
      if (via_ring) {
        Ring ring(vfs);
        std::uint64_t ud = 0;
        for (int batch = 0; batch < 2; ++batch) {
          for (int c = 0; c < 8; ++c) {
            api::File& f = files[static_cast<std::size_t>(c)];
            EXPECT_TRUE(ring.push(
                make_sqe(RingOp::kWrite, f.fd(), ud++,
                         static_cast<std::uint32_t>(batch) * 2, 2,
                         api::kSqeLink)));
            EXPECT_TRUE(
                ring.push(make_sqe(RingOp::kFdatabarrier, f.fd(), ud++)));
          }
          EXPECT_EQ(ring.submit(), 16u);
          for (int i = 0; i < 16; ++i) (void)co_await ring.wait_cqe();
        }
      } else {
        for (int batch = 0; batch < 2; ++batch) {
          for (int c = 0; c < 8; ++c) {
            api::File& f = files[static_cast<std::size_t>(c)];
            api::must(co_await f.pwrite(
                static_cast<std::uint32_t>(batch) * 2, 2));
            api::must(co_await f.fdatabarrier());
          }
        }
      }
      io_done = x.sim().now() - io_start;
      for (api::File& f : files) api::must(f.close());
    };
    x.sim().spawn("app", body());
    x.sim().run();
    return io_done;
  };
  const sim::SimTime serial = elapsed(false);
  const sim::SimTime qd8 = elapsed(true);
  EXPECT_LT(qd8, serial)
      << "batched ring submission no faster than serial awaits";
}

// ---- 8. ring-driven concurrent crash sweep ---------------------------------

class RingCrashSweepTest : public testing::TestWithParam<StackKind> {};

TEST_P(RingCrashSweepTest, LinkedChainContractHoldsAcross200Points) {
  const chk::CrashSweepResult r =
      chk::run_ring_crash_sweep(GetParam(), 200);
  EXPECT_EQ(r.points, 200);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
  EXPECT_GT(r.quiesced_points, 0) << "no post-quiescence crash points";
  EXPECT_LT(r.quiesced_points, r.points) << "no mid-workload crash points";
  // The chain contract must really be exercised, on top of the concurrent
  // facts the direct sweep checks.
  EXPECT_GT(r.chain_facts_checked, 3000u) << "chain claims went dark";
  EXPECT_GT(r.order_writes_checked, 5000u);
  EXPECT_GT(r.syncs_recorded, 3000u);
  if (GetParam() == StackKind::kExt4DR || GetParam() == StackKind::kBfsDR) {
    EXPECT_GT(r.acked_pages_checked, 2000u);
  }
  EXPECT_GT(r.renames_done, 200u) << "namespace churn went dark";
  EXPECT_GT(r.fd_cycles, 200u) << "fd churn went dark";
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, RingCrashSweepTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(RingCrashSweepTest, NobarrierStackFailsUnderRingWorkload) {
  const chk::CrashSweepResult r =
      chk::run_ring_crash_sweep(StackKind::kExt4OD, 120);
  EXPECT_GT(r.failed_points, 0)
      << "the nobarrier stack survived 120 ring-driven power cuts — "
         "checker too weak";
  ASSERT_FALSE(r.failures.empty());
  const chk::CrashSweepResult::Failure& f = r.failures.front();
  EXPECT_EQ(f.crash_at, chk::sweep_crash_at(1, f.point));
  const chk::CrashCheckResult replay =
      chk::run_ring_crash_check(StackKind::kExt4OD, f.seed, f.crash_at);
  EXPECT_FALSE(replay.ok()) << "failed point did not replay";
  EXPECT_EQ(replay.violations.front(), f.first_violation);
}

// The negative test: a ring that ignores its link flags must be caught by
// the oracle through the submission-structure chain claims — "new
// subsystems extend the oracle, not dodge it" only holds if the oracle
// actually bites.
TEST(RingCrashSweepTest, InjectedLinkIgnoringBugIsCaught) {
  for (const StackKind kind : {StackKind::kExt4DR, StackKind::kBfsDR}) {
    chk::RingCrashOptions opt;
    opt.wl.ignore_links = true;
    const chk::CrashSweepResult r = chk::run_ring_crash_sweep(kind, 80, 1, opt);
    EXPECT_GT(r.failed_points, 0)
        << core::to_string(kind)
        << ": link-ignoring ring survived 80 power cuts — the chain "
           "contract is not being verified";
    bool chain_violation = false;
    for (const std::string& v : r.sample_violations)
      chain_violation = chain_violation ||
                        v.find("chain") != std::string::npos;
    EXPECT_TRUE(chain_violation)
        << core::to_string(kind)
        << ": failures never mention the chain contract" << join(r.sample_violations);
  }
}

}  // namespace
}  // namespace bio
