// Tests for Event, Semaphore, Mutex, Notify and Channel.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"

namespace bio::sim {
namespace {

using namespace bio::sim::literals;

TEST(EventTest, WaitReturnsImmediatelyWhenSet) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  bool done = false;
  auto body = [&]() -> Task {
    co_await ev.wait();
    done = true;
  };
  auto& t = sim.spawn("t", body());
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(t.context_switches, 0u) << "no block, no context switch";
}

TEST(EventTest, TriggerWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int woken = 0;
  auto waiter = [&]() -> Task {
    co_await ev.wait();
    ++woken;
  };
  sim.spawn("w0", waiter());
  sim.spawn("w1", waiter());
  sim.spawn("w2", waiter());
  auto trigger = [&]() -> Task {
    co_await sim.delay(10_us);
    ev.trigger();
  };
  sim.spawn("t", trigger());
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(EventTest, WaitBlocksUntilTrigger) {
  Simulator sim;
  Event ev(sim);
  SimTime woke_at = 0;
  auto waiter = [&]() -> Task {
    co_await ev.wait();
    woke_at = sim.now();
  };
  auto& w = sim.spawn("w", waiter());
  auto trigger = [&]() -> Task {
    co_await sim.delay(25_us);
    ev.trigger();
  };
  sim.spawn("t", trigger());
  sim.run();
  EXPECT_EQ(woke_at, 25_us);
  EXPECT_EQ(w.context_switches, 1u);
}

TEST(EventTest, DoubleTriggerIsIdempotent) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  ev.trigger();
  EXPECT_TRUE(ev.is_set());
}

TEST(EventTest, ResetReArms) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

TEST(SemaphoreTest, TryAcquireConsumesPermits) {
  Simulator sim;
  Semaphore sem(sim, 2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(SemaphoreTest, AcquireBlocksWhenExhausted) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto holder = [&]() -> Task {
    co_await sem.acquire();
    order.push_back(1);
    co_await sim.delay(20_us);
    sem.release();
    order.push_back(2);
  };
  auto contender = [&]() -> Task {
    co_await sim.delay(1_us);
    co_await sem.acquire();
    order.push_back(3);
    sem.release();
  };
  sim.spawn("h", holder());
  sim.spawn("c", contender());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SemaphoreTest, FifoHandoffOrder) {
  Simulator sim;
  Semaphore sem(sim, 0);
  std::vector<int> order;
  auto waiter = [&](int id) -> Task {
    co_await sem.acquire();
    order.push_back(id);
  };
  sim.spawn("w0", waiter(0));
  sim.spawn("w1", waiter(1));
  sim.spawn("w2", waiter(2));
  auto releaser = [&]() -> Task {
    co_await sim.delay(5_us);
    sem.release(3);
  };
  sim.spawn("r", releaser());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, HandoffPreventsBarging) {
  Simulator sim;
  Semaphore sem(sim, 0);
  bool waiter_got_it = false;
  auto waiter = [&]() -> Task {
    co_await sem.acquire();
    waiter_got_it = true;
  };
  sim.spawn("w", waiter());
  auto releaser = [&]() -> Task {
    co_await sim.delay(5_us);
    sem.release();
    // Released permit was handed to the waiter; it is not stealable even
    // though the waiter has not resumed yet.
    EXPECT_FALSE(sem.try_acquire());
  };
  sim.spawn("r", releaser());
  sim.run();
  EXPECT_TRUE(waiter_got_it);
}

TEST(SemaphoreTest, ReleaseBeyondWaitersIncreasesCount) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.release(5);
  EXPECT_EQ(sem.available(), 5u);
}

TEST(MutexTest, MutualExclusionIsSerialized) {
  Simulator sim;
  Mutex mtx(sim);
  int inside = 0;
  int max_inside = 0;
  auto body = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await mtx.lock();
      ++inside;
      max_inside = std::max(max_inside, inside);
      co_await sim.delay(3_us);
      --inside;
      mtx.unlock();
    }
  };
  sim.spawn("a", body());
  sim.spawn("b", body());
  sim.run();
  EXPECT_EQ(max_inside, 1);
}

TEST(NotifyTest, NotifyAllWakesEveryWaiter) {
  Simulator sim;
  Notify n(sim);
  int woken = 0;
  auto waiter = [&]() -> Task {
    co_await n.wait();
    ++woken;
  };
  sim.spawn("w0", waiter());
  sim.spawn("w1", waiter());
  auto notifier = [&]() -> Task {
    co_await sim.delay(10_us);
    EXPECT_EQ(n.waiting(), 2u);
    n.notify_all();
  };
  sim.spawn("n", notifier());
  sim.run();
  EXPECT_EQ(woken, 2);
}

TEST(NotifyTest, NotifyOneWakesOldestWaiter) {
  Simulator sim;
  Notify n(sim);
  std::vector<int> woken;
  auto waiter = [&](int id) -> Task {
    co_await n.wait();
    woken.push_back(id);
  };
  sim.spawn("w0", waiter(0));
  sim.spawn("w1", waiter(1));
  auto notifier = [&]() -> Task {
    co_await sim.delay(10_us);
    n.notify_one();
    co_await sim.delay(10_us);
    n.notify_one();
  };
  sim.spawn("n", notifier());
  sim.run();
  EXPECT_EQ(woken, (std::vector<int>{0, 1}));
}

TEST(NotifyTest, WaitAlwaysBlocksEvenAfterPastNotify) {
  Simulator sim;
  Notify n(sim);
  n.notify_all();  // no one waiting: lost by design
  bool woke = false;
  auto waiter = [&]() -> Task {
    co_await n.wait();
    woke = true;
  };
  sim.spawn("w", waiter());
  sim.run();
  EXPECT_FALSE(woke) << "Notify has no memory";
}

TEST(ChannelTest, PushPopTransfersValues) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> got;
  auto producer = [&]() -> Task {
    for (int i = 0; i < 5; ++i) co_await ch.push(i);
    ch.close();
  };
  auto consumer = [&]() -> Task {
    for (;;) {
      std::optional<int> v = co_await ch.pop();
      if (!v) break;
      got.push_back(*v);
    }
  };
  sim.spawn("p", producer());
  sim.spawn("c", consumer());
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, PushBlocksWhenFull) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  SimTime second_push_done = 0;
  auto producer = [&]() -> Task {
    co_await ch.push(1);
    co_await ch.push(2);  // blocks until consumer pops
    second_push_done = sim.now();
  };
  auto consumer = [&]() -> Task {
    co_await sim.delay(30_us);
    std::optional<int> v = co_await ch.pop();
    EXPECT_EQ(v, 1);
  };
  sim.spawn("p", producer());
  sim.spawn("c", consumer());
  sim.run();
  EXPECT_EQ(second_push_done, 30_us);
}

TEST(ChannelTest, PopBlocksWhenEmptyAndGetsHandoff) {
  Simulator sim;
  Channel<std::string> ch(sim, 2);
  std::optional<std::string> got;
  SimTime got_at = 0;
  auto consumer = [&]() -> Task {
    got = co_await ch.pop();
    got_at = sim.now();
  };
  auto producer = [&]() -> Task {
    co_await sim.delay(12_us);
    co_await ch.push("hello");
  };
  sim.spawn("c", consumer());
  sim.spawn("p", producer());
  sim.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(got_at, 12_us);
}

TEST(ChannelTest, CloseWakesBlockedPopper) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  bool saw_close = false;
  auto consumer = [&]() -> Task {
    std::optional<int> v = co_await ch.pop();
    saw_close = !v.has_value();
  };
  auto closer = [&]() -> Task {
    co_await sim.delay(5_us);
    ch.close();
  };
  sim.spawn("c", consumer());
  sim.spawn("x", closer());
  sim.run();
  EXPECT_TRUE(saw_close);
}

TEST(ChannelTest, HandoffPreservesFifoAcrossBlockedPushers) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  std::vector<int> got;
  auto producer = [&](int base) -> Task {
    co_await ch.push(base);
  };
  auto primer = [&]() -> Task { co_await ch.push(0); };
  sim.spawn("p0", primer());    // fills capacity
  sim.spawn("p1", producer(1)); // blocks
  sim.spawn("p2", producer(2)); // blocks
  auto consumer = [&]() -> Task {
    co_await sim.delay(10_us);
    for (int i = 0; i < 3; ++i) {
      std::optional<int> v = co_await ch.pop();
      EXPECT_TRUE(v.has_value());  // ASSERT_* cannot be used in coroutines
      if (v) got.push_back(*v);
    }
  };
  sim.spawn("c", consumer());
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(ChannelTest, BlockedPopCountsOneContextSwitch) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  auto consumer = [&]() -> Task { (void)co_await ch.pop(); };
  auto& c = sim.spawn("c", consumer());
  auto producer = [&]() -> Task {
    co_await sim.delay(5_us);
    co_await ch.push(7);
  };
  sim.spawn("p", producer());
  sim.run();
  EXPECT_EQ(c.context_switches, 1u);
}

}  // namespace
}  // namespace bio::sim
