// Determinism regression net for the parallel sweep driver (DESIGN.md
// §13): every sweep flavour run at jobs=1 (the legacy serial path — no
// thread is spawned) and jobs=8 over the same base seed must produce a
// bit-identical CrashSweepResult — every aggregate counter, the failure
// coordinates (point / derived seed / crash instant / first violation)
// and the --repro sample strings. Seed partitioning is by point index and
// results merge in canonical point order, so any divergence here means a
// worker leaked execution-order-dependent state into a result.
//
// Also covers sim::resolve_host_jobs: clamping, the BIO_SWEEP_JOBS ctest
// hook and its strict-decimal parse (garbage must fall through to
// hardware concurrency, never to a silently different thread count).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "chk/crash_check.h"
#include "sim/frame_pool.h"
#include "sim/host_pool.h"

namespace bio {
namespace {

using chk::CrashSweepResult;
using core::StackKind;

/// Field-by-field equality with a readable failure message; EXPECT_EQ on
/// a struct dump would point at "some byte differed" instead of the
/// counter that drifted.
void expect_identical(const CrashSweepResult& serial,
                      const CrashSweepResult& parallel) {
  EXPECT_EQ(serial.points, parallel.points);
  EXPECT_EQ(serial.failed_points, parallel.failed_points);
  EXPECT_EQ(serial.quiesced_points, parallel.quiesced_points);
  EXPECT_EQ(serial.acked_pages_checked, parallel.acked_pages_checked);
  EXPECT_EQ(serial.order_writes_checked, parallel.order_writes_checked);
  EXPECT_EQ(serial.namespace_facts_checked, parallel.namespace_facts_checked);
  EXPECT_EQ(serial.renames_done, parallel.renames_done);
  EXPECT_EQ(serial.unlinks_done, parallel.unlinks_done);
  EXPECT_EQ(serial.journal_wraps, parallel.journal_wraps);
  EXPECT_EQ(serial.journal_stalls, parallel.journal_stalls);
  EXPECT_EQ(serial.files_recovered, parallel.files_recovered);
  EXPECT_EQ(serial.syncs_recorded, parallel.syncs_recorded);
  EXPECT_EQ(serial.fd_cycles, parallel.fd_cycles);
  EXPECT_EQ(serial.closes_during_sync, parallel.closes_during_sync);
  EXPECT_EQ(serial.chain_facts_checked, parallel.chain_facts_checked);
  EXPECT_EQ(serial.faults_injected, parallel.faults_injected);
  EXPECT_EQ(serial.io_retries, parallel.io_retries);
  EXPECT_EQ(serial.io_failures, parallel.io_failures);
  EXPECT_EQ(serial.syncs_failed, parallel.syncs_failed);
  EXPECT_EQ(serial.degraded_points, parallel.degraded_points);

  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].point, parallel.failures[i].point);
    EXPECT_EQ(serial.failures[i].seed, parallel.failures[i].seed);
    EXPECT_EQ(serial.failures[i].crash_at, parallel.failures[i].crash_at);
    EXPECT_EQ(serial.failures[i].first_violation,
              parallel.failures[i].first_violation);
  }
  ASSERT_EQ(serial.sample_violations.size(),
            parallel.sample_violations.size());
  for (std::size_t i = 0; i < serial.sample_violations.size(); ++i)
    EXPECT_EQ(serial.sample_violations[i], parallel.sample_violations[i]);
}

// Small but non-trivial sweeps: enough points that jobs=8 actually fans
// out and the work-stealing order differs run to run.
constexpr int kPoints = 24;
constexpr std::uint64_t kBase = 7;

TEST(ParallelSweepDeterminism, SingleWriterSweep) {
  expect_identical(
      chk::run_crash_sweep(StackKind::kBfsDR, kPoints, kBase, {}, 1),
      chk::run_crash_sweep(StackKind::kBfsDR, kPoints, kBase, {}, 8));
}

TEST(ParallelSweepDeterminism, ConcurrentSweep) {
  expect_identical(
      chk::run_concurrent_crash_sweep(StackKind::kExt4DR, kPoints, kBase, {},
                                      1),
      chk::run_concurrent_crash_sweep(StackKind::kExt4DR, kPoints, kBase, {},
                                      8));
}

TEST(ParallelSweepDeterminism, RingSweep) {
  expect_identical(
      chk::run_ring_crash_sweep(StackKind::kBfsOD, kPoints, kBase, {}, 1),
      chk::run_ring_crash_sweep(StackKind::kBfsOD, kPoints, kBase, {}, 8));
}

TEST(ParallelSweepDeterminism, FaultSweep) {
  expect_identical(
      chk::run_fault_crash_sweep(StackKind::kOptFs, kPoints, kBase, {}, 1),
      chk::run_fault_crash_sweep(StackKind::kOptFs, kPoints, kBase, {}, 8));
}

// The failure-path half of the contract: a sweep that actually fails must
// report identical failure coordinates and --repro strings at any jobs
// value. The swallowed-EIO negative control fails deterministically.
TEST(ParallelSweepDeterminism, FailingSweepCoordinates) {
  chk::FaultCrashOptions swallow;
  swallow.swallow_io_errors = true;
  const CrashSweepResult serial = chk::run_fault_crash_sweep(
      StackKind::kExt4DR, 20, 1, swallow, 1);
  const CrashSweepResult parallel = chk::run_fault_crash_sweep(
      StackKind::kExt4DR, 20, 1, swallow, 8);
  ASSERT_GT(serial.failed_points, 0)
      << "negative control stopped failing — the comparison is vacuous";
  EXPECT_FALSE(serial.failures.empty());
  EXPECT_FALSE(serial.sample_violations.empty());
  expect_identical(serial, parallel);
}

TEST(ParallelSweepDeterminism, MultiVolumeSweep) {
  const std::vector<StackKind> kinds = {StackKind::kBfsDR,
                                        StackKind::kExt4DR};
  const chk::MultiVolumeSweepResult serial =
      chk::run_multi_volume_crash_sweep(kinds, kPoints, kBase, {}, 1);
  const chk::MultiVolumeSweepResult parallel =
      chk::run_multi_volume_crash_sweep(kinds, kPoints, kBase, {}, 8);
  EXPECT_EQ(serial.points, parallel.points);
  EXPECT_EQ(serial.failed_points, parallel.failed_points);
  ASSERT_EQ(serial.volumes.size(), parallel.volumes.size());
  for (std::size_t v = 0; v < serial.volumes.size(); ++v)
    expect_identical(serial.volumes[v], parallel.volumes[v]);
  ASSERT_EQ(serial.sample_violations.size(),
            parallel.sample_violations.size());
  for (std::size_t i = 0; i < serial.sample_violations.size(); ++i)
    EXPECT_EQ(serial.sample_violations[i], parallel.sample_violations[i]);
}

// ---- jobs resolution --------------------------------------------------------

// Env round-trip helper: gtest runs these in one process, so restore
// whatever BIO_SWEEP_JOBS held.
class JobsEnvTest : public testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("BIO_SWEEP_JOBS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  void TearDown() override {
    if (had_)
      ::setenv("BIO_SWEEP_JOBS", saved_.c_str(), 1);
    else
      ::unsetenv("BIO_SWEEP_JOBS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST_F(JobsEnvTest, ExplicitRequestWinsAndClamps) {
  ::setenv("BIO_SWEEP_JOBS", "4", 1);
  EXPECT_EQ(sim::resolve_host_jobs(1), 1);  // explicit beats env
  EXPECT_EQ(sim::resolve_host_jobs(3), 3);
  EXPECT_EQ(sim::resolve_host_jobs(sim::kMaxHostJobs + 100),
            sim::kMaxHostJobs);
}

TEST_F(JobsEnvTest, EnvHookParsesStrictly) {
  ::setenv("BIO_SWEEP_JOBS", "6", 1);
  EXPECT_EQ(sim::resolve_host_jobs(0), 6);
  ::setenv("BIO_SWEEP_JOBS", "999999", 1);  // saturates at the clamp
  EXPECT_EQ(sim::resolve_host_jobs(0), sim::kMaxHostJobs);

  // Garbage falls through to hardware concurrency (>= 1), never to a
  // silently different parse of the same string.
  ::unsetenv("BIO_SWEEP_JOBS");
  const int hw = sim::resolve_host_jobs(0);
  for (const char* bad : {"", "0", "-2", "+4", "8x", " 8", "4 ", "0x8"}) {
    ::setenv("BIO_SWEEP_JOBS", bad, 1);
    EXPECT_EQ(sim::resolve_host_jobs(0), hw)
        << "BIO_SWEEP_JOBS='" << bad << "'";
  }
}

// ---- host pool & frame-pool aggregation -------------------------------------

TEST(HostPool, MapPreservesIndexOrderAcrossThreads) {
  const sim::HostPool pool(8);
  const std::vector<int> out =
      pool.map<int>(100, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(HostPool, SerialPathRunsInline) {
  const sim::HostPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<int> order;
  // jobs=1 must not spawn: appending to a plain vector is race-free only
  // on the inline path, which is exactly what this asserts.
  // iolint: detached-owner(for_each_index joins its workers before
  // returning; the capture cannot outlive this frame)
  pool.for_each_index(5, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(HostPool, WorkerExceptionPropagates) {
  const sim::HostPool pool(4);
  EXPECT_THROW(
      pool.for_each_index(16,
                          [](int i) {
                            if (i == 7) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
}

TEST(FramePool, AggregateFoldsRetiredWorkerStats) {
  const sim::FramePoolStats before = sim::frame_pool_aggregate_stats();
  // Run simulator work on pool workers: their thread_local frame pools
  // retire into the aggregate when for_each_index joins them.
  const sim::HostPool pool(4);
  // iolint: detached-owner(for_each_index joins its workers before
  // returning; the capture cannot outlive this frame)
  pool.for_each_index(4, [](int i) {
    chk::run_crash_check(StackKind::kBfsDR,
                         static_cast<std::uint64_t>(i) + 1, 5'000'000);
  });
  const sim::FramePoolStats after = sim::frame_pool_aggregate_stats();
  EXPECT_GT(after.allocs, before.allocs)
      << "worker frame allocations never reached the aggregate";
  EXPECT_EQ(after.allocs, after.reuses + after.fresh);
}

}  // namespace
}  // namespace bio
