// Directed EIO-semantics tests for device fault injection (DESIGN.md §11):
// the full propagation chain flash::FaultPlan -> Command::status -> blk
// bounded retry -> fs::FsStatus -> api::Errno, pinned per stack kind.
//   1. A transient program fault is invisible to the application: the block
//      layer (legacy stacks) or the device FTL (barrier stacks) retries it
//      and the covering sync returns kOk.
//   2. A hard media fault on a data write surfaces as EIO on the next
//      fsync of that fd exactly once (errseq), then clears: the redirtied
//      page re-lands on the healthy retry.
//   3. A hard fault on a journal write aborts the journal and degrades the
//      volume read-only: writes and syncs fail EROFS, reads still work,
//      and a remount over the recovered image is fully usable again.
//   4. api::Ring reports failures as negative cqe res and cancels the
//      linked remainder of the chain.
//   5. Errno/to_string stays exhaustive (compile-time switch coverage).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/ring.h"
#include "api/vfs.h"
#include "blk/block_layer.h"
#include "flash/fault.h"
#include "fs/recovery.h"
#include "fs_test_util.h"

namespace bio {
namespace {

using api::Cqe;
using api::Errno;
using api::Ring;
using api::RingOp;
using api::Sqe;
using core::StackKind;
using flash::FaultKind;
using flash::FaultPlan;
using flash::FaultSpec;
using fs::testutil::StackFixture;
using sim::Task;

// The four stack kinds the EIO contract is pinned for (EXT4-OD shares
// EXT4-DR's error plumbing; its weaker ordering is the crash sweep's
// business, not the errno path's).
constexpr StackKind kKinds[] = {StackKind::kExt4DR, StackKind::kBfsDR,
                                StackKind::kBfsOD, StackKind::kOptFs};

bool is_barrier_stack(StackKind k) {
  return k == StackKind::kBfsDR || k == StackKind::kBfsOD;
}

// ---- 1. transient fault + retry is invisible -------------------------------

class TransientFaultTest : public testing::TestWithParam<StackKind> {};

TEST_P(TransientFaultTest, RetriedTransientWriteFaultKeepsSyncOk) {
  const StackKind kind = GetParam();
  StackFixture x(kind);
  api::Vfs vfs(*x.stack);
  // Any-LBA transient program fault on the very next device write.
  FaultPlan plan;
  plan.add(FaultSpec{FaultKind::kTransientProgram, /*at_op=*/0,
                     flash::kAnyLba, /*torn_keep=*/0, /*count=*/1});
  x.dev().install_fault_plan(&plan);
  auto body = [&]() -> Task {
    api::File f = api::must(co_await vfs.open("a", {.create = true}));
    api::must(co_await vfs.pwrite(f.fd(), 0, 2));
    api::Status st = co_await vfs.fsync(f.fd());
    EXPECT_TRUE(st.ok()) << "transient fault must be retried, got "
                         << api::to_string(st.error());
    api::must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();

  EXPECT_EQ(plan.stats().total(), 1u) << "the fault must actually fire";
  if (is_barrier_stack(kind)) {
    // Barrier device: the FTL absorbs the failure to keep epoch order.
    EXPECT_EQ(x.dev().stats().in_device_retries, 1u);
    EXPECT_EQ(x.stack->blk().stats().io_retries, 0u);
  } else {
    // Legacy device: the block layer's bounded retry re-drives the write.
    EXPECT_EQ(x.stack->blk().stats().io_retries, 1u);
    EXPECT_EQ(x.stack->blk().stats().transient_faults, 1u);
  }
  EXPECT_EQ(x.stack->blk().stats().io_failures, 0u);
  EXPECT_FALSE(x.fs().degraded());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TransientFaultTest,
                         testing::ValuesIn(kKinds));

// ---- 2. hard data fault: EIO once per fd, then clears ----------------------

class HardDataFaultTest : public testing::TestWithParam<StackKind> {};

TEST_P(HardDataFaultTest, FsyncReportsEIOOnceThenRecovers) {
  const StackKind kind = GetParam();
  StackFixture x(kind);
  api::Vfs vfs(*x.stack);
  FaultPlan plan;
  auto body = [&]() -> Task {
    api::File f = api::must(co_await vfs.open("a", {.create = true}));
    // Hard media fault pinned to this file's first data block: the data
    // writeback carrier fails post-retry, the journal is untouched.
    const fs::Inode* ino = x.fs().lookup("a");
    BIO_CHECK(ino != nullptr);
    plan.add(FaultSpec{FaultKind::kHardMedia, /*at_op=*/0,
                       ino->lba_of_page(0), /*torn_keep=*/0, /*count=*/1});
    x.dev().install_fault_plan(&plan);

    api::must(co_await vfs.pwrite(f.fd(), 0, 1));
    // Durability-waiting syncs (DR stacks) see the failed carrier on the
    // first fsync; ordering-only syncs (OD stacks) return before the
    // transfer lands and report it on the next one (errseq). Either way:
    // EIO exactly once, then the redirtied page re-lands and it clears.
    std::vector<Errno> seen;
    for (int i = 0; i < 4; ++i) {
      api::Status st = co_await vfs.fsync(f.fd());
      seen.push_back(st.ok() ? Errno::kOk : st.error());
      co_await x.sim().delay(2'000'000);  // let background carriers land
    }
    int eio_at = -1;
    for (int i = 0; i < 4; ++i) {
      if (seen[i] == Errno::kIo) {
        EXPECT_EQ(eio_at, -1) << "EIO must be reported exactly once per fd";
        eio_at = i;
      } else {
        EXPECT_EQ(seen[i], Errno::kOk) << api::to_string(seen[i]);
      }
    }
    EXPECT_NE(eio_at, -1) << "the failed writeback must surface as EIO";
    EXPECT_LE(eio_at, 1);

    // A data-writeback failure never degrades the volume.
    EXPECT_FALSE(x.fs().degraded());
    api::must(co_await vfs.pwrite(f.fd(), 1, 1));
    api::must(co_await vfs.fsync(f.fd()));
    api::must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(plan.stats().hard_media, 1u);
  EXPECT_EQ(x.stack->blk().stats().io_failures, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HardDataFaultTest,
                         testing::ValuesIn(kKinds));

// ---- 3. journal fault: EROFS degradation + remount recovery ----------------

class JournalFaultTest : public testing::TestWithParam<StackKind> {};

TEST_P(JournalFaultTest, JournalAbortDegradesReadOnlyAndRemountRecovers) {
  const StackKind kind = GetParam();
  core::StackConfig cfg = fs::testutil::test_stack_config(kind);
  StackFixture x(kind, &cfg);
  api::Vfs vfs(*x.stack);
  // Hard media faults across the head of the journal area: whichever block
  // the second commit's descriptor chain lands on, it dies (the journal
  // head starts at LBA 0 and only moves forward).
  FaultPlan plan;
  bool committed_first = false;
  auto body = [&]() -> Task {
    api::File f = api::must(co_await vfs.open("a", {.create = true}));
    // First commit is healthy: "a" page 0 becomes the last durable commit
    // the degraded volume must still serve (and remount must recover).
    api::must(co_await vfs.pwrite(f.fd(), 0, 1));
    api::must(co_await vfs.fsync(f.fd()));
    committed_first = true;

    for (flash::Lba j = 0; j < 32; ++j)
      plan.add(FaultSpec{FaultKind::kHardMedia, /*at_op=*/0, j,
                         /*torn_keep=*/0, /*count=*/~0u});
    x.dev().install_fault_plan(&plan);

    // Second commit dies in the journal -> abort -> errors=remount-ro.
    api::must(co_await vfs.pwrite(f.fd(), 1, 1));
    api::Status st = co_await vfs.fsync(f.fd());
    if (kind == StackKind::kExt4DR || kind == StackKind::kBfsDR) {
      // Durability-waiting fsync rides the dying commit and must fail.
      EXPECT_FALSE(st.ok());
    }
    if (!st.ok()) {
      EXPECT_TRUE(st.error() == Errno::kIo || st.error() == Errno::kRoFs)
          << api::to_string(st.error());
    }
    // Ordering-only syncs may return before the abort lands; wait for the
    // background commit to die.
    for (int i = 0; i < 1000 && !x.fs().degraded(); ++i)
      co_await x.sim().delay(1'000'000);
    EXPECT_TRUE(x.fs().degraded());

    // Degraded: every mutation fails EROFS...
    api::Result<std::uint32_t> w = co_await vfs.pwrite(f.fd(), 2, 1);
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.error(), Errno::kRoFs);
    api::Result<api::File> c = co_await vfs.open("b", {.create = true});
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.error(), Errno::kRoFs);
    api::Status u = co_await vfs.unlink("a");
    EXPECT_FALSE(u.ok());
    EXPECT_EQ(u.error(), Errno::kRoFs);
    api::Status s2 = co_await vfs.fsync(f.fd());
    EXPECT_FALSE(s2.ok());
    EXPECT_EQ(s2.error(), Errno::kRoFs);

    // ...but reads still work.
    api::Result<std::uint32_t> r = co_await vfs.pread(f.fd(), 0, 1);
    EXPECT_TRUE(r.ok()) << "reads must survive degradation";
    api::must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();
  ASSERT_TRUE(committed_first);
  ASSERT_TRUE(x.fs().degraded());

  // Remount over the recovered image: back to the last durable commit,
  // fully usable (reads AND writes).
  const fs::Recovery recovery(x.fs().journal(), x.fs().layout(),
                              x.fs().config());
  const fs::RecoveryReport report =
      recovery.recover(x.dev().capture_durable_image().blocks);
  EXPECT_TRUE(report.clean());

  auto y = std::make_unique<core::Stack>(cfg);
  y->fs().mount(report);
  y->start();
  api::Vfs vfs2(*y);
  auto verify = [&]() -> Task {
    api::Result<api::File> f = co_await vfs2.open("a", {});
    EXPECT_TRUE(f.ok()) << "the first commit must survive recovery";
    if (!f.ok()) co_return;
    api::File file = f.value();
    api::must(co_await vfs2.pread(file.fd(), 0, 1));
    api::must(co_await vfs2.pwrite(file.fd(), 1, 1));
    api::must(co_await vfs2.fsync(file.fd()));
    api::must(file.close());
  };
  y->sim().spawn("t", verify());
  y->sim().run();
  EXPECT_FALSE(y->fs().degraded());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, JournalFaultTest,
                         testing::ValuesIn(kKinds));

// ---- 4. ring: negative res + chain cancellation on EIO ---------------------

Sqe make_sqe(RingOp op, api::Fd fd, std::uint64_t ud, std::uint32_t page = 0,
             std::uint32_t npages = 0, std::uint8_t flags = 0) {
  Sqe s;
  s.op = op;
  s.fd = fd;
  s.page = page;
  s.npages = npages;
  s.flags = flags;
  s.user_data = ud;
  return s;
}

TEST(RingFaultTest, HardFaultYieldsNegativeResAndCancelsChain) {
  StackFixture x(StackKind::kExt4DR);
  api::Vfs vfs(*x.stack);
  FaultPlan plan;
  std::vector<Cqe> reaped;
  auto body = [&]() -> Task {
    api::File f = api::must(co_await vfs.open("a", {.create = true}));
    const fs::Inode* ino = x.fs().lookup("a");
    BIO_CHECK(ino != nullptr);
    plan.add(FaultSpec{FaultKind::kHardMedia, /*at_op=*/0,
                       ino->lba_of_page(0), /*torn_keep=*/0, /*count=*/1});
    x.dev().install_fault_plan(&plan);

    Ring ring(vfs);
    // write -> fsync -> write chain: the fsync sees the hard-faulted
    // writeback (EIO) and the linked tail cancels; the unlinked op runs.
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kWrite, f.fd(), 1, 0, 1, api::kSqeLink)));
    EXPECT_TRUE(ring.push(
        make_sqe(RingOp::kFsync, f.fd(), 2, 0, 0, api::kSqeLink)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kWrite, f.fd(), 3, 1, 1)));
    EXPECT_TRUE(ring.push(make_sqe(RingOp::kNop, f.fd(), 4)));
    EXPECT_EQ(ring.submit(), 4u);
    for (int i = 0; i < 4; ++i) reaped.push_back(co_await ring.wait_cqe());
    api::must(f.close());
  };
  x.sim().spawn("t", body());
  x.sim().run();

  ASSERT_EQ(reaped.size(), 4u);
  auto res_of = [&](std::uint64_t ud) {
    for (const Cqe& c : reaped)
      if (c.user_data == ud) return c.res;
    return std::int32_t{1000};
  };
  EXPECT_EQ(res_of(1), 1);     // the write itself is buffered, succeeds
  EXPECT_EQ(res_of(2), -5);    // -EIO from the failed writeback
  EXPECT_EQ(res_of(3), -125);  // -ECANCELED: linked behind the EIO
  EXPECT_EQ(res_of(4), 0);     // unlinked nop unaffected
}

// ---- 5. Errno table stays exhaustive ----------------------------------------

// Compile-time exhaustiveness: a new Errno enumerator without a row here is
// a -Wswitch error, forcing this test (and to_string) to be extended.
const char* expected_name(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kNoEnt: return "ENOENT";
    case Errno::kBadF: return "EBADF";
    case Errno::kNoSpc: return "ENOSPC";
    case Errno::kExist: return "EEXIST";
    case Errno::kInval: return "EINVAL";
    case Errno::kXDev: return "EXDEV";
    case Errno::kIo: return "EIO";
    case Errno::kRoFs: return "EROFS";
  }
  return nullptr;
}

TEST(ErrnoTest, ToStringCoversEveryEnumerator) {
  const Errno all[] = {Errno::kOk,    Errno::kNoEnt, Errno::kBadF,
                       Errno::kNoSpc, Errno::kExist, Errno::kInval,
                       Errno::kXDev,  Errno::kIo,    Errno::kRoFs};
  for (Errno e : all) {
    ASSERT_NE(expected_name(e), nullptr);
    EXPECT_STREQ(api::to_string(e), expected_name(e));
  }
  // Distinctness: no two errnos share a rendering.
  for (Errno a : all) {
    for (Errno b : all) {
      if (a != b) {
        EXPECT_STRNE(api::to_string(a), api::to_string(b));
      }
    }
  }
}

}  // namespace
}  // namespace bio
