// Tests for LatencyRecorder, TimeSeries and Rng.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace bio::sim {
namespace {

using namespace bio::sim::literals;

TEST(LatencyRecorderTest, EmptyRecorderIsZero) {
  LatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.percentile(99.0), 0u);
}

TEST(LatencyRecorderTest, MeanAndMedian) {
  LatencyRecorder r;
  for (SimTime v : {10u, 20u, 30u, 40u, 50u}) r.add(v);
  EXPECT_DOUBLE_EQ(r.mean(), 30.0);
  EXPECT_EQ(r.median(), 30u);
  EXPECT_EQ(r.min(), 10u);
  EXPECT_EQ(r.max(), 50u);
}

TEST(LatencyRecorderTest, PercentilesOnKnownDistribution) {
  LatencyRecorder r;
  for (SimTime v = 1; v <= 100; ++v) r.add(v);
  EXPECT_EQ(r.percentile(99.0), 100u);
  EXPECT_EQ(r.percentile(90.0), 91u);
  EXPECT_EQ(r.percentile(50.0), 51u);
}

TEST(LatencyRecorderTest, AddAfterPercentileResorts) {
  LatencyRecorder r;
  r.add(100);
  EXPECT_EQ(r.max(), 100u);
  r.add(500);
  EXPECT_EQ(r.max(), 500u);
  r.add(1);
  EXPECT_EQ(r.min(), 1u);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.add(10);
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(TimeSeriesTest, MeanOfPoints) {
  TimeSeries ts;
  ts.record(0, 2.0);
  ts.record(10, 4.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 4.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanWeighsDurations) {
  TimeSeries ts;
  ts.record(0, 1.0);    // holds for 90
  ts.record(90, 11.0);  // holds for 10
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(100), 0.9 * 1.0 + 0.1 * 11.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanEmptyIsZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(100), 0.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(7);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(RngTest, LognormalMedianApproximatelyCorrect) {
  Rng r(7);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(r.lognormal(100.0, 0.5));
  std::sort(v.begin(), v.end());
  double median = v[v.size() / 2];
  EXPECT_NEAR(median, 100.0, 5.0);
}

TEST(RngTest, WeightedPickRespectsZeroWeights) {
  Rng r(7);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.weighted_pick(w), 1u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

}  // namespace
}  // namespace bio::sim
