// Workload-generator tests: each workload runs end-to-end on a small stack
// and reports sane, internally-consistent results; cross-stack comparisons
// reproduce the paper's directional claims in miniature.
#include <gtest/gtest.h>

#include "fs_test_util.h"
#include "wl/fxmark.h"
#include "wl/oltp.h"
#include "wl/random_write.h"
#include "wl/sqlite.h"
#include "wl/varmail.h"

namespace bio::wl {
namespace {

using core::Stack;
using core::StackConfig;
using core::StackKind;

StackConfig small_config(StackKind kind) {
  StackConfig cfg = fs::testutil::test_stack_config(kind);
  cfg.fs.max_inodes = 1024;
  cfg.fs.journal_blocks = 1024;
  return cfg;
}

TEST(RandomWriteTest, FdatasyncModeCompletesAllOps) {
  Stack stack(small_config(StackKind::kExt4DR));
  RandomWriteParams p;
  p.mode = RandomWriteParams::Mode::kFdatasync;
  p.ops = 50;
  p.working_set_pages = 32;
  auto r = run_random_write(stack, p, sim::Rng(1));
  EXPECT_EQ(r.ops_done, 50u);
  EXPECT_GT(r.iops, 0.0);
  EXPECT_GT(r.elapsed, 0u);
}

TEST(RandomWriteTest, BufferedModeFasterThanSync) {
  Stack sync_stack(small_config(StackKind::kExt4DR));
  Stack buf_stack(small_config(StackKind::kExt4DR));
  RandomWriteParams p;
  p.ops = 60;
  p.working_set_pages = 32;
  p.mode = RandomWriteParams::Mode::kFdatasync;
  auto synced = run_random_write(sync_stack, p, sim::Rng(2));
  p.mode = RandomWriteParams::Mode::kBuffered;
  auto buffered = run_random_write(buf_stack, p, sim::Rng(2));
  EXPECT_GT(buffered.iops, 2.0 * synced.iops);
}

TEST(RandomWriteTest, BarrierModeBeatsWaitOnTransfer) {
  Stack x_stack(small_config(StackKind::kExt4OD));
  Stack b_stack(small_config(StackKind::kBfsOD));
  RandomWriteParams p;
  p.ops = 200;
  p.working_set_pages = 64;
  p.mode = RandomWriteParams::Mode::kFdatasync;
  auto x = run_random_write(x_stack, p, sim::Rng(3));
  p.mode = RandomWriteParams::Mode::kFdatabarrier;
  auto b = run_random_write(b_stack, p, sim::Rng(3));
  EXPECT_GT(b.iops, 1.5 * x.iops) << "fdatabarrier must beat Wait-on-Transfer";
  EXPECT_GT(b.avg_queue_depth, x.avg_queue_depth);
}

TEST(RandomWriteTest, MultiFileRotationUsesAllFiles) {
  Stack stack(small_config(StackKind::kBfsOD));
  RandomWriteParams p;
  p.mode = RandomWriteParams::Mode::kAllocFdatabarrier;
  p.ops = 40;
  p.files = 4;
  auto r = run_random_write(stack, p, sim::Rng(4));
  EXPECT_EQ(r.ops_done, 40u);
  for (int i = 0; i < 4; ++i) {
    fs::Inode* f = stack.fs().lookup("bench" + std::to_string(i));
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->size_blocks, 10u);
  }
}

TEST(RandomWriteTest, ContextSwitchAccountingMatchesStack) {
  Stack ext4(small_config(StackKind::kExt4DR));
  RandomWriteParams p;
  p.mode = RandomWriteParams::Mode::kSyncFile;
  p.ops = 100;
  p.working_set_pages = 64;
  auto r = run_random_write(ext4, p, sim::Rng(5));
  EXPECT_NEAR(r.context_switches_per_op, 2.0, 0.15)
      << "EXT4-DR: two blocking points per fsync";
}

TEST(SqliteTest, PersistModeRunsTransactions) {
  Stack stack(small_config(StackKind::kExt4DR));
  SqliteParams p;
  p.transactions = 20;
  p.db_pages = 128;
  auto r = run_sqlite(stack, p, sim::Rng(6));
  EXPECT_EQ(r.tx_done, 20u);
  EXPECT_GT(r.tx_per_sec, 0.0);
  // PERSIST: 4 sync points per txn drive >= 4 journal-or-flush operations.
  EXPECT_GE(stack.fs().stats().fdatasyncs, 4 * 20u);
}

TEST(SqliteTest, BarrierStackUsesFdatabarrierForOrderingPoints) {
  Stack stack(small_config(StackKind::kBfsDR));
  SqliteParams p;
  p.transactions = 10;
  p.db_pages = 128;
  auto r = run_sqlite(stack, p, sim::Rng(7));
  EXPECT_EQ(r.tx_done, 10u);
  // 3 ordering points per txn -> fdatabarrier; 1 durability -> fdatasync.
  EXPECT_GE(stack.fs().stats().fdatabarriers, 3 * 10u);
  EXPECT_GE(stack.fs().stats().fdatasyncs, 10u);
}

TEST(SqliteTest, WalModeSyncsOncePerCommit) {
  Stack stack(small_config(StackKind::kExt4DR));
  SqliteParams p;
  p.mode = SqliteParams::Mode::kWal;
  p.transactions = 15;
  p.db_pages = 128;
  auto r = run_sqlite(stack, p, sim::Rng(8));
  EXPECT_EQ(r.tx_done, 15u);
  // Setup adds a couple of fsyncs; WAL adds exactly one sync per commit.
  EXPECT_LE(stack.fs().stats().fdatasyncs, 15u + 2u);
}

TEST(SqliteTest, RelaxedDurabilityIsFaster) {
  Stack dr(small_config(StackKind::kBfsDR));
  Stack od(small_config(StackKind::kBfsOD));
  SqliteParams p;
  p.transactions = 30;
  p.db_pages = 128;
  auto r_dr = run_sqlite(dr, p, sim::Rng(9));
  auto r_od = run_sqlite(od, p, sim::Rng(9));
  EXPECT_GT(r_od.tx_per_sec, r_dr.tx_per_sec);
}

TEST(VarmailTest, RunsAndCountsFlowops) {
  Stack stack(small_config(StackKind::kExt4DR));
  VarmailParams p;
  p.threads = 4;
  p.files = 24;
  p.iterations = 5;
  p.file_pages = 2;
  auto r = run_varmail(stack, p, sim::Rng(10));
  EXPECT_GT(r.ops_done, 4u * 5u);
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_GT(stack.fs().stats().unlinks, 0u);
  EXPECT_GT(stack.fs().stats().creates, 24u);
}

TEST(VarmailTest, BarrierStackOutperformsLegacy) {
  auto cfg_dr = small_config(StackKind::kExt4DR);
  auto cfg_bfs = small_config(StackKind::kBfsDR);
  Stack ext4(cfg_dr);
  Stack bfs(cfg_bfs);
  VarmailParams p;
  p.threads = 4;
  p.files = 24;
  p.iterations = 8;
  p.file_pages = 2;
  auto r_ext4 = run_varmail(ext4, p, sim::Rng(11));
  auto r_bfs = run_varmail(bfs, p, sim::Rng(11));
  EXPECT_GT(r_bfs.ops_per_sec, r_ext4.ops_per_sec)
      << "BFS-DR should beat EXT4-DR on fsync-heavy varmail";
}

TEST(OltpTest, RunsTransactionsAcrossThreads) {
  Stack stack(small_config(StackKind::kExt4DR));
  OltpParams p;
  p.threads = 3;
  p.transactions_per_thread = 8;
  p.table_pages = 256;
  auto r = run_oltp_insert(stack, p, sim::Rng(12));
  EXPECT_EQ(r.tx_done, 24u);
  EXPECT_GT(r.tx_per_sec, 0.0);
}

TEST(OltpTest, OptFsSuffersFromDataJournaling) {
  auto cfg_od = small_config(StackKind::kExt4OD);
  auto cfg_opt = small_config(StackKind::kOptFs);
  Stack ext4od(cfg_od);
  Stack optfs(cfg_opt);
  OltpParams p;
  p.threads = 2;
  p.transactions_per_thread = 40;
  p.table_pages = 256;
  p.rows_pages_per_tx = 6;   // heavy overwrite traffic
  p.checkpoint_every = 2;    // frequent checkpoints -> data journaling
  auto r_od = run_oltp_insert(ext4od, p, sim::Rng(13));
  auto r_opt = run_oltp_insert(optfs, p, sim::Rng(13));
  EXPECT_LT(r_opt.tx_per_sec, r_od.tx_per_sec)
      << "selective data journaling should hurt OptFS on overwrites";
  // And the journal really carried data blocks:
  std::uint64_t journaled = 0;
  for (const fs::Txn* t : optfs.fs().journal().commit_order())
    journaled += t->journaled_data_blocks;
  EXPECT_GT(journaled, 0u);
}

TEST(FxmarkTest, ScalesWithCores) {
  auto one = small_config(StackKind::kBfsDR);
  auto four = small_config(StackKind::kBfsDR);
  Stack s1(one);
  Stack s4(four);
  FxmarkParams p;
  p.writes_per_thread = 30;
  p.cores = 1;
  auto r1 = run_fxmark_dwsl(s1, p, sim::Rng(14));
  p.cores = 4;
  auto r4 = run_fxmark_dwsl(s4, p, sim::Rng(14));
  EXPECT_EQ(r1.ops_done, 30u);
  EXPECT_EQ(r4.ops_done, 120u);
  EXPECT_GT(r4.ops_per_sec, r1.ops_per_sec)
      << "group commit must give some concurrency scaling";
}

TEST(ShardedFxmarkTest, StripesFilesAcrossVolumesAndCompletesAllOps) {
  Stack node(core::NodeConfig::from(
      std::vector<core::StackConfig>(2, small_config(StackKind::kBfsDR))));
  auto r = run_fxmark_dwsl_sharded(node,
                                   {.cores = 4, .writes_per_thread = 25});
  EXPECT_EQ(r.ops_done, 100u);
  ASSERT_EQ(r.volume_ops.size(), 2u);
  EXPECT_EQ(r.volume_ops[0], 50u) << "round-robin striping: 2 cores each";
  EXPECT_EQ(r.volume_ops[1], 50u);
  EXPECT_GT(r.volume_ops_per_sec[0], 0.0);
  // The files really landed on their own volumes.
  EXPECT_NE(node.volume(0).fs().lookup("dwsl0"), nullptr);
  EXPECT_EQ(node.volume(0).fs().lookup("dwsl1"), nullptr);
  EXPECT_NE(node.volume(1).fs().lookup("dwsl1"), nullptr);
  EXPECT_GT(node.volume(0).device().stats().writes, 0u);
  EXPECT_GT(node.volume(1).device().stats().writes, 0u);
}

TEST(ShardedFxmarkTest, SaturatedJournalThroughputScalesWithVolumes) {
  // Weak scaling at journal saturation: enough cores per volume that one
  // commit pipeline is the bottleneck, then doubling the volumes (and the
  // offered load with them) must scale total simulated throughput.
  auto run = [](std::uint32_t nvol) {
    Stack node(core::NodeConfig::from(std::vector<core::StackConfig>(
        nvol, small_config(StackKind::kBfsDR))));
    return run_fxmark_dwsl_sharded(
        node, {.cores = 24 * nvol, .writes_per_thread = 20});
  };
  const auto one = run(1);
  const auto two = run(2);
  EXPECT_GT(two.ops_per_sec, 1.6 * one.ops_per_sec)
      << "independent journals must give near-linear volume scaling";
}

TEST(FxmarkTest, BfsPipelinesBetterThanExt4) {
  auto cfg_e = small_config(StackKind::kExt4DR);
  auto cfg_b = small_config(StackKind::kBfsDR);
  Stack ext4(cfg_e);
  Stack bfs(cfg_b);
  FxmarkParams p;
  p.cores = 6;
  p.writes_per_thread = 40;
  auto r_e = run_fxmark_dwsl(ext4, p, sim::Rng(15));
  auto r_b = run_fxmark_dwsl(bfs, p, sim::Rng(15));
  EXPECT_GT(r_b.ops_per_sec, r_e.ops_per_sec);
}

}  // namespace
}  // namespace bio::wl
