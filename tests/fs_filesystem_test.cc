// Filesystem facade tests: namespace, buffered writes, timestamps,
// allocation, reads, writeback.
#include <gtest/gtest.h>

#include "fs_test_util.h"

namespace bio::fs {
namespace {

using namespace bio::sim::literals;
using core::StackKind;
using sim::Task;
using testutil::StackFixture;
using testutil::test_stack_config;

TEST(FilesystemTest, CreateAndLookup) {
  StackFixture x(StackKind::kExt4DR);
  Inode* f = nullptr;
  auto body = [&]() -> Task { co_await x.fs().create("a.db", f); };
  x.sim().spawn("t", body());
  x.sim().run();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(x.fs().lookup("a.db"), f);
  EXPECT_EQ(x.fs().lookup("missing"), nullptr);
  EXPECT_TRUE(f->meta_dirty) << "create dirties the new inode";
  EXPECT_GT(f->extent_blocks, 0u);
}

TEST(FilesystemTest, CreateDuplicateRejected) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    Inode* g = nullptr;
    EXPECT_THROW(co_await x.fs().create("a", g), bio::CheckFailure);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, WriteDirtiesPagesAndSize) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 3);
    EXPECT_EQ(f->size_blocks, 3u);
    EXPECT_TRUE(f->size_dirty);
    EXPECT_EQ(x.fs().page_cache().dirty_count(), 3u);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, OverwriteDoesNotGrowSize) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 4);
    co_await x.fs().fsync(*f);
    EXPECT_FALSE(f->size_dirty);
    co_await x.fs().write(*f, 1, 2);  // pure overwrite
    EXPECT_EQ(f->size_blocks, 4u);
    EXPECT_FALSE(f->size_dirty);
    const PageCache::PageState* st = x.fs().page_cache().find(f->ino, 1);
    EXPECT_TRUE(st->overwrite);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, TimestampQuantizedToTimerTick) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    EXPECT_FALSE(f->meta_dirty);
    // Overwrite within the same 4ms tick: no metadata change.
    co_await x.fs().write(*f, 0, 1);
    EXPECT_FALSE(f->meta_dirty)
        << "write within one timer tick must not dirty the inode";
    // Cross a tick boundary: mtime changes.
    co_await x.sim().delay(5_ms);
    co_await x.fs().write(*f, 0, 1);
    EXPECT_TRUE(f->meta_dirty);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, WriteBeyondExtentRejected) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    EXPECT_THROW(co_await x.fs().write(*f, f->extent_blocks, 1),
                 bio::CheckFailure);
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, UnlinkRecyclesInodeAndExtent) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 2);
    const std::uint32_t ino = f->ino;
    const flash::Lba base = f->extent_base;
    co_await x.fs().unlink("a");
    EXPECT_EQ(x.fs().lookup("a"), nullptr);
    Inode* g = nullptr;
    co_await x.fs().create("b", g);
    EXPECT_EQ(g->ino, ino) << "inode number recycled";
    EXPECT_EQ(g->extent_base, base) << "extent recycled";
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().page_cache().dirty_count(), 0u)
      << "unlink dropped the dirty pages";
}

TEST(FilesystemTest, ReadFromPageCacheIsFast) {
  StackFixture x(StackKind::kExt4DR);
  sim::SimTime read_time = 0;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    const sim::SimTime t0 = x.sim().now();
    co_await x.fs().read(*f, 0, 1);
    read_time = x.sim().now() - t0;
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_LT(read_time, 20_us);
  EXPECT_EQ(x.dev().stats().reads, 0u) << "no device read for a cache hit";
}

TEST(FilesystemTest, ReadMissGoesToDevice) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().read(*f, 5, 1);  // never written: page-cache miss
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.dev().stats().reads, 1u);
}

TEST(FilesystemTest, FsyncCleansDirtyPages) {
  StackFixture x(StackKind::kExt4DR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 4);
    co_await x.fs().fsync(*f);
    EXPECT_EQ(x.fs().page_cache().dirty_count(), 0u);
    EXPECT_FALSE(f->meta_dirty);
    EXPECT_FALSE(f->size_dirty);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GE(x.dev().stats().writes, 1u);
}

TEST(FilesystemTest, FsyncMakesDataDurable) {
  StackFixture x(StackKind::kExt4DR);
  flash::Lba lba0 = 0;
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 2);
    lba0 = f->lba_of_page(0);
    co_await x.fs().fsync(*f);
    auto durable = x.dev().durable_state();
    EXPECT_TRUE(durable.contains(lba0)) << "EXT4-DR fsync persisted data";
    EXPECT_TRUE(durable.contains(lba0 + 1));
  };
  x.sim().spawn("t", body());
  x.sim().run();
}

TEST(FilesystemTest, Ext4OdFsyncSkipsFlush) {
  StackFixture x(StackKind::kExt4OD);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.dev().stats().flushes, 0u) << "nobarrier: no flush commands";
}

TEST(FilesystemTest, PdflushWritesBackDirtyPages) {
  core::StackConfig cfg = test_stack_config(core::StackKind::kExt4DR);
  cfg.fs.writeback_high_watermark = 8;
  cfg.fs.writeback_low_watermark = 2;
  StackFixture x(core::StackKind::kExt4DR, &cfg);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f, 64);
    for (std::uint32_t i = 0; i < 32; ++i) co_await x.fs().write(*f, i, 1);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_LE(x.fs().page_cache().dirty_count(), 2u)
      << "pdflush drained to the low watermark";
  EXPECT_GT(x.fs().stats().writeback_pages, 0u);
}

TEST(FilesystemTest, WriterThrottledAtDirtyLimit) {
  core::StackConfig cfg = test_stack_config(core::StackKind::kExt4DR);
  cfg.fs.writeback_high_watermark = 4;
  cfg.fs.writeback_low_watermark = 1;
  StackFixture x(core::StackKind::kExt4DR, &cfg);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f, 64);
    for (std::uint32_t i = 0; i < 60; ++i) co_await x.fs().write(*f, i, 1);
  };
  auto& app = x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_GT(app.blocks, 0u) << "balance_dirty_pages throttled the writer";
}

TEST(FilesystemTest, StatsCountSyscalls) {
  StackFixture x(StackKind::kBfsDR);
  auto body = [&]() -> Task {
    Inode* f = nullptr;
    co_await x.fs().create("a", f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fsync(*f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fdatasync(*f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fbarrier(*f);
    co_await x.fs().write(*f, 0, 1);
    co_await x.fs().fdatabarrier(*f);
  };
  x.sim().spawn("t", body());
  x.sim().run();
  EXPECT_EQ(x.fs().stats().fsyncs, 1u);
  EXPECT_EQ(x.fs().stats().fdatasyncs, 1u);
  EXPECT_EQ(x.fs().stats().fbarriers, 1u);
  EXPECT_EQ(x.fs().stats().fdatabarriers, 1u);
  EXPECT_EQ(x.fs().stats().writes, 4u);
}

}  // namespace
}  // namespace bio::fs
