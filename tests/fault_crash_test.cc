// Fault-injection crash sweep (DESIGN.md §11): every point installs a
// seed-derived flash::FaultPlan on the device, runs the single-writer
// checker workload, cuts power, and verifies the fault-mode oracle facts —
// acked durability survives faults, a torn/failed journal write never
// replays as committed, and an aborted (degraded) volume still recovers
// read-consistent and remounts fully usable.
//
// The sweep caught (and now guards) the barrier-retry ordering bug: a
// host-side retry of a transiently-failed JD write re-entered a later
// epoch, so the JC could drain first and a crash in that window left a
// durable commit record over a missing descriptor chain. The fix moved
// transient-program recovery on barrier-mode devices into the device FTL
// (flash/device.cc, in_device_retries).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chk/crash_check.h"

namespace bio {
namespace {

using chk::CrashSweepResult;
using chk::FaultCrashOptions;
using core::StackKind;

std::string join(const std::vector<CrashSweepResult::Failure>& v) {
  std::string out;
  for (const auto& f : v)
    out += "\n  point=" + std::to_string(f.point) +
           " seed=" + std::to_string(f.seed) +
           " crash_at=" + std::to_string(f.crash_at) + ": " +
           f.first_violation;
  return out;
}

// ---- 1. the main fault sweep: every honest stack keeps its contract --------

class FaultCrashSweepTest : public testing::TestWithParam<StackKind> {};

TEST_P(FaultCrashSweepTest, FaultOracleHoldsAcross200Points) {
  const CrashSweepResult r = chk::run_fault_crash_sweep(GetParam(), 200);
  EXPECT_EQ(r.points, 200);
  EXPECT_EQ(r.failed_points, 0) << join(r.failures);
  // The sweep must actually exercise the fault machinery, not tiptoe
  // around it: faults fire, some runs fail through to EIO, some degrade
  // the volume read-only and recover through remount.
  EXPECT_GT(r.faults_injected, 100u) << "fault plans went dark";
  EXPECT_GT(r.io_failures, 20u) << "no hard fail-throughs exercised";
  EXPECT_GT(r.degraded_points, 20u) << "journal abort path went dark";
  EXPECT_GT(r.syncs_failed, 10u) << "no EIO/EROFS acks observed";
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, FaultCrashSweepTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      switch (info.param) {
        case StackKind::kExt4DR: return "Ext4DR";
        case StackKind::kBfsDR: return "BfsDR";
        case StackKind::kBfsOD: return "BfsOD";
        default: return "OptFs";
      }
    });

// Host-side bounded retry runs on legacy devices; barrier-mode devices
// absorb transient program faults in the FTL instead (the retry would
// re-enter a later epoch and void the ordering contract).
TEST(FaultCrashSweepTest, RetryPathsSplitByDeviceClass) {
  const CrashSweepResult legacy =
      chk::run_fault_crash_sweep(StackKind::kExt4DR, 100);
  EXPECT_GT(legacy.io_retries, 20u) << "blk bounded retry went dark";
  const CrashSweepResult barrier =
      chk::run_fault_crash_sweep(StackKind::kBfsDR, 100);
  EXPECT_EQ(barrier.io_retries, 0u)
      << "host-side retry on a barrier device breaks epoch ordering";
}

// ---- 2. the dishonest stack is still caught --------------------------------

TEST(FaultNobarrierTest, LegacyNobarrierStackViolatesUnderFaults) {
  // EXT4-OD (nobarrier, orderless device) keeps losing acked data under
  // the fault sweep exactly as it does under the plain crash sweep; the
  // oracle must keep catching it deterministically.
  const CrashSweepResult r =
      chk::run_fault_crash_sweep(StackKind::kExt4OD, 200);
  EXPECT_GT(r.failed_points, 0)
      << "EXT4-OD passed a 200-point fault sweep; the oracle went blind";
}

// ---- 3. negative control: the injected bug is detected ---------------------

TEST(FaultNegativeTest, SwallowedIoErrorsAreDetected) {
  // BlockLayer::set_swallow_io_errors_for_test completes failed requests
  // as successes — acked data silently never lands. The sweep must notice
  // deterministically (same seeds as the clean sweep, which passes).
  FaultCrashOptions opt;
  opt.swallow_io_errors = true;
  const CrashSweepResult r =
      chk::run_fault_crash_sweep(StackKind::kExt4DR, 20, 1, opt);
  EXPECT_GT(r.failed_points, 0)
      << "swallowed EIO went undetected: the oracle is not load-bearing";
}

}  // namespace
}  // namespace bio
