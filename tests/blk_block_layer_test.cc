// Integration tests: block layer + dispatcher + device.
#include <gtest/gtest.h>

#include "blk/block_layer.h"
#include "flash_test_util.h"
#include "sim/simulator.h"

namespace bio::blk {
namespace {

using namespace bio::sim::literals;
using flash::BarrierMode;
using flash::Lba;
using flash::StorageDevice;
using flash::testutil::one_block;
using flash::Version;
using sim::Simulator;
using sim::Task;

struct Stack {
  Simulator sim;
  StorageDevice dev;
  BlockLayer blk;

  explicit Stack(BlockLayerConfig cfg = {},
                 BarrierMode mode = BarrierMode::kInOrderRecovery,
                 bool plp = false)
      : dev(sim, flash::testutil::test_profile(mode, plp)),
        blk(sim, dev, std::move(cfg)) {
    dev.start();
    blk.start();
  }
};

TEST(BlockLayerTest, WriteAndWaitCompletes) {
  Stack s;
  bool done = false;
  auto body = [&]() -> Task {
    co_await s.blk.write_and_wait(one_block(1, s.blk.next_version()));
    done = true;
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.blk.stats().dispatched, 1u);
  EXPECT_EQ(s.dev.stats().writes, 1u);
}

TEST(BlockLayerTest, FlushMakesWritesDurable) {
  Stack s;
  auto body = [&]() -> Task {
    co_await s.blk.write_and_wait(one_block(1, 7));
    co_await s.blk.flush_and_wait();
    EXPECT_EQ(s.dev.durable_state().at(1), 7u);
  };
  s.sim.spawn("t", body());
  s.sim.run();
}

TEST(BlockLayerTest, ReadCompletes) {
  Stack s;
  auto body = [&]() -> Task {
    co_await s.blk.write_and_wait(one_block(5, 1));
    co_await s.blk.read_and_wait(5);
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(s.dev.stats().reads, 1u);
}

TEST(BlockLayerTest, BarrierWriteReachesDeviceAsOrderedBarrier) {
  Stack s;
  auto body = [&]() -> Task {
    co_await s.blk.write_and_wait(one_block(1, 1), /*ordered=*/true,
                                  /*barrier=*/true);
    co_await s.blk.write_and_wait(one_block(2, 2));
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(s.dev.current_epoch(), 1u) << "barrier flag reached the device";
  EXPECT_EQ(s.dev.stats().barrier_writes, 1u);
}

TEST(BlockLayerTest, LegacyModeStripsOrderingAttributes) {
  BlockLayerConfig cfg;
  cfg.epoch_scheduling = false;
  cfg.order_preserving_dispatch = false;
  Stack s(cfg);
  auto body = [&]() -> Task {
    co_await s.blk.write_and_wait(one_block(1, 1), true, /*barrier=*/true);
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(s.dev.current_epoch(), 0u) << "legacy stack: no barrier reaches "
                                          "the device";
  EXPECT_EQ(s.dev.stats().barrier_writes, 0u);
}

TEST(BlockLayerTest, MergedRequestFansOutCompletions) {
  Stack s;
  int completions = 0;
  auto body = [&]() -> Task {
    RequestPtr a = make_write_request(s.sim, {{10, 1}, {11, 2}});
    RequestPtr b = make_write_request(s.sim, {{12, 3}});
    s.blk.submit(a);
    s.blk.submit(b);  // merges into a at the scheduler
    co_await a->completion.wait();
    ++completions;
    co_await b->completion.wait();
    ++completions;
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(s.dev.stats().writes, 1u) << "one merged command at the device";
  EXPECT_EQ(s.dev.stats().blocks_written, 3u);
}

TEST(BlockLayerTest, BusyDeviceEventuallyDispatchesEverything) {
  BlockLayerConfig cfg;  // notify-driven busy handling
  Stack s(cfg);
  int done = 0;
  auto body = [&]() -> Task {
    std::vector<RequestPtr> reqs;
    for (int i = 0; i < 20; ++i) {
      // Distinct non-contiguous LBAs: no merging, 20 commands through a
      // QD=4 device.
      reqs.push_back(make_write_request(s.sim, {{Lba(i * 2), Version(i)}}));
      s.blk.submit(reqs.back());
    }
    for (auto& r : reqs) {
      co_await r->completion.wait();
      ++done;
    }
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(s.dev.stats().writes, 20u);
}

TEST(BlockLayerTest, BusyPollModeUsesTimedRetry) {
  BlockLayerConfig cfg;
  cfg.busy_poll = true;
  cfg.busy_retry = 1_ms;
  Stack s(cfg);
  auto body = [&]() -> Task {
    std::vector<RequestPtr> reqs;
    for (int i = 0; i < 12; ++i) {
      reqs.push_back(make_write_request(s.sim, {{Lba(i * 2), Version(i)}}));
      s.blk.submit(reqs.back());
    }
    for (auto& r : reqs) co_await r->completion.wait();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_GT(s.blk.stats().busy_retries, 0u) << "QD=4 forces busy retries";
  EXPECT_EQ(s.dev.stats().writes, 12u);
}

TEST(BlockLayerTest, EpochOrderingPreservedThroughFullStack) {
  Stack s;
  auto body = [&]() -> Task {
    // Epoch 0: lba 1,2 + barrier on 3. Epoch 1: lba 4.
    RequestPtr w1 = make_write_request(s.sim, {{1, 1}}, true);
    RequestPtr w2 = make_write_request(s.sim, {{2, 2}}, true);
    RequestPtr w3 = make_write_request(s.sim, {{3, 3}}, true, true);
    s.blk.submit(w1);
    s.blk.submit(w2);
    s.blk.submit(w3);
    RequestPtr w4 = make_write_request(s.sim, {{4, 4}}, true);
    s.blk.submit(w4);
    co_await w4->completion.wait();
    co_await w3->completion.wait();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  // Transfer history: epoch of lba 4 must be greater than epoch of 1..3.
  const auto& h = s.dev.transfer_history();
  std::uint64_t epoch_of_4 = 0, max_epoch_123 = 0;
  for (const auto& e : h) {
    if (e.lba == 4)
      epoch_of_4 = e.epoch;
    else
      max_epoch_123 = std::max(max_epoch_123, e.epoch);
  }
  EXPECT_GT(epoch_of_4, max_epoch_123);
}

TEST(BlockLayerTest, VersionsAreUnique) {
  Stack s;
  flash::Version a = s.blk.next_version();
  flash::Version b = s.blk.next_version();
  EXPECT_NE(a, b);
}

// ---- multi-queue (blk-mq) mode ---------------------------------------------

BlockLayerConfig mq_config(std::uint32_t nr_queues) {
  BlockLayerConfig cfg;
  cfg.nr_queues = nr_queues;
  return cfg;
}

TEST(BlockLayerMqTest, SingleQueueHasNoFence) {
  Stack s;
  EXPECT_EQ(s.blk.nr_queues(), 1u);
  EXPECT_EQ(s.blk.epoch_fence(), nullptr) << "nothing to fence across";
}

TEST(BlockLayerMqTest, BarrierOnQueue0FencesLaterWriteOnQueue1) {
  // The cross-queue contract: a write issued on queue 1 *after* queue 0's
  // barrier closed the epoch must transfer (and land in a device epoch)
  // after it — and the peer's pre-barrier write must drain below it.
  Stack s(mq_config(4));
  auto body = [&]() -> Task {
    RequestPtr pre = make_write_request(s.sim, {{1, 1}}, /*ordered=*/true);
    RequestPtr b = make_write_request(s.sim, {{2, 2}}, true, /*barrier=*/true);
    RequestPtr post = make_write_request(s.sim, {{3, 3}}, true);
    s.blk.submit_on(1, pre);   // peer queue, same epoch as the barrier
    s.blk.submit_on(0, b);     // closes epoch 0
    s.blk.submit_on(1, post);  // enqueued after the barrier: epoch 1
    co_await pre->completion.wait();
    co_await b->completion.wait();
    co_await post->completion.wait();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  ASSERT_NE(s.blk.epoch_fence(), nullptr);
  EXPECT_EQ(s.blk.epoch_fence()->epochs_closed(), 1u);
  const auto& h = s.dev.transfer_history();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].lba, 1u) << "peer's pre-barrier write transferred below";
  EXPECT_EQ(h[1].lba, 2u);
  EXPECT_EQ(h[2].lba, 3u) << "post-barrier write transferred above";
  EXPECT_EQ(h[2].epoch, 1u) << "and landed in the next device epoch";
}

TEST(BlockLayerMqTest, OrderlessPeerWriteEnqueuedBeforeBarrierTransfersBelow) {
  // An *orderless* write on queue 1 enqueued before queue 0's barrier: the
  // barrier's gate must wait for it (any write may carry ordered payload
  // after a merge) and the device must fence it below — it carries the
  // epoch it was enqueued under, not a stale 0 that would jump the fence.
  Stack s(mq_config(4));
  RequestPtr pre = make_write_request(s.sim, {{1, 1}});  // orderless
  RequestPtr b = make_write_request(s.sim, {{2, 2}}, true, /*barrier=*/true);
  RequestPtr post = make_write_request(s.sim, {{3, 3}});  // orderless
  auto body = [&]() -> Task {
    s.blk.submit_on(1, pre);   // peer queue, enqueued before the barrier
    s.blk.submit_on(0, b);     // closes epoch 0
    s.blk.submit_on(1, post);  // enqueued after: epoch 1, fenced behind it
    co_await pre->completion.wait();
    co_await b->completion.wait();
    co_await post->completion.wait();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(pre->fence_epoch, 0u);
  EXPECT_EQ(post->fence_epoch, 1u);
  const auto& h = s.dev.transfer_history();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].lba, 1u) << "pre-barrier orderless write transferred below";
  EXPECT_EQ(h[1].lba, 2u);
  EXPECT_EQ(h[2].lba, 3u) << "post-barrier orderless write fenced above";
  EXPECT_EQ(h[2].epoch, 1u) << "and landed in the next device epoch";
}

TEST(BlockLayerMqTest, IdleQueuesNeverStallABarrier) {
  // Three of the four queues never see a request; the barrier's submission
  // gate must treat them as drained and complete promptly.
  Stack s(mq_config(4));
  sim::SimTime done_at = 0;
  auto body = [&]() -> Task {
    RequestPtr b = make_write_request(s.sim, {{1, 1}}, true, /*barrier=*/true);
    s.blk.submit_on(0, b);
    co_await b->completion.wait();
    done_at = s.sim.now();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_GT(done_at, 0u);
  EXPECT_LT(done_at, 100_us) << "idle peers must not delay the gate";
  EXPECT_EQ(s.dev.stats().barrier_writes, 1u);
}

TEST(BlockLayerMqTest, QueuesMapToDevicePorts) {
  // Four software queues over the test device's two channels: queue q feeds
  // port q % 2, so queues 0 and 2 share port 0 and queue 1 drives port 1.
  Stack s(mq_config(4));
  auto body = [&]() -> Task {
    RequestPtr a = make_write_request(s.sim, {{1, 1}});
    RequestPtr b = make_write_request(s.sim, {{2, 2}});
    RequestPtr c = make_write_request(s.sim, {{3, 3}});
    s.blk.submit_on(0, a);
    s.blk.submit_on(1, b);
    s.blk.submit_on(2, c);
    co_await a->completion.wait();
    co_await b->completion.wait();
    co_await c->completion.wait();
  };
  s.sim.spawn("t", body());
  s.sim.run();
  EXPECT_EQ(s.dev.port_submissions(0), 2u);
  EXPECT_EQ(s.dev.port_submissions(1), 1u);
}

TEST(BlockLayerMqTest, SubmitRoutesByThreadOrdinal) {
  // Two writer coroutines spawned back to back get consecutive thread ids,
  // so plain submit() routes them to different queues — and hence ports.
  Stack s(mq_config(2));
  auto writer = [&](Lba lba) -> Task {
    co_await s.blk.write_and_wait(one_block(lba, 1));
  };
  s.sim.spawn("w0", writer(1));
  s.sim.spawn("w1", writer(2));
  s.sim.run();
  EXPECT_EQ(s.dev.port_submissions(0), 1u);
  EXPECT_EQ(s.dev.port_submissions(1), 1u);
}

}  // namespace
}  // namespace bio::blk
