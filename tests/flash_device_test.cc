// Tests for the barrier-compliant storage device: SCSI priority semantics,
// epochs, FUA/flush behaviour, per-mode durability and queue accounting.
#include <gtest/gtest.h>

#include "flash/device.h"
#include "flash_test_util.h"
#include "sim/simulator.h"

namespace bio::flash {
namespace {

using namespace bio::sim::literals;
using sim::Simulator;
using sim::Task;
using testutil::make_flush;
using testutil::make_read;
using testutil::make_write;
using testutil::submit_retry;
using testutil::test_profile;

TEST(DeviceTest, WriteCompletesAfterDma) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  sim::SimTime done_at = 0;
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    done_at = sim.now();
  };
  sim.spawn("t", body());
  sim.run();
  // Completion after overhead + DMA, far before the page program finishes.
  EXPECT_GE(done_at, 15_us);
  EXPECT_LT(done_at, 200_us);
  EXPECT_EQ(dev.stats().writes, 1u);
  // After the run drains, the block is durable.
  EXPECT_EQ(dev.durable_state().at(1), 1u);
}

TEST(DeviceTest, MultiBlockWriteInsertsAllBlocks) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}, {2, 2}, {3, 3}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(dev.stats().blocks_written, 3u);
  auto durable = dev.durable_state();
  EXPECT_EQ(durable.size(), 3u);
}

TEST(DeviceTest, FlushMakesPrecedingWritesDurable) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  bool flushed = false;
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    EXPECT_EQ(dev.durable_state().count(1), 0u) << "not yet programmed";
    auto f = make_flush(sim);
    EXPECT_TRUE(dev.try_submit(f.cmd));
    co_await f.done->wait();
    flushed = true;
    EXPECT_EQ(dev.durable_state().at(1), 1u);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(dev.stats().flushes, 1u);
}

TEST(DeviceTest, PlpFlushIsConstantTime) {
  Simulator sim;
  StorageDevice dev(sim,
                    test_profile(BarrierMode::kInOrderRecovery, /*plp=*/true));
  dev.start();
  sim::SimTime flush_latency = 0;
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    const sim::SimTime t0 = sim.now();
    auto f = make_flush(sim);
    EXPECT_TRUE(dev.try_submit(f.cmd));
    co_await f.done->wait();
    flush_latency = sim.now() - t0;
  };
  sim.spawn("t", body());
  sim.run();
  // Overhead + flush_overhead + plp latency, no program wait.
  EXPECT_LT(flush_latency, 100_us);
}

TEST(DeviceTest, PlpWriteIsDurableOnArrival) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kNone, /*plp=*/true));
  dev.start();
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{7, 42}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    EXPECT_EQ(dev.durable_state().at(7), 42u)
        << "supercap: transferred == durable";
  };
  sim.spawn("t", body());
  sim.run();
}

TEST(DeviceTest, FuaWritePersistsBeforeCompletion) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}}, Priority::kSimple, false, /*fua=*/true);
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    EXPECT_EQ(dev.durable_state().at(1), 1u);
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_GE(sim.now(), 200_us) << "FUA waited for the program";
}

TEST(DeviceTest, BarrierWriteAdvancesEpoch) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    auto w1 = make_write(sim, {{1, 1}}, Priority::kOrdered, /*barrier=*/true);
    EXPECT_TRUE(dev.try_submit(w1.cmd));
    co_await w1.done->wait();
    auto w2 = make_write(sim, {{2, 2}});
    EXPECT_TRUE(dev.try_submit(w2.cmd));
    co_await w2.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(dev.current_epoch(), 1u);
  const auto& h = dev.transfer_history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].epoch, 0u);
  EXPECT_TRUE(h[0].barrier);
  EXPECT_EQ(h[1].epoch, 1u);
}

TEST(DeviceTest, LegacyDeviceIgnoresBarrierFlag) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kNone));
  dev.start();
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{1, 1}}, Priority::kSimple, /*barrier=*/true);
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(dev.current_epoch(), 0u);
}

TEST(DeviceTest, OrderedPriorityFencesTransferOrder) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    // One epoch {1,2}, barrier on 3 (ordered), next epoch {4}.
    auto a = make_write(sim, {{1, 1}});
    auto b = make_write(sim, {{2, 2}});
    auto c = make_write(sim, {{3, 3}}, Priority::kOrdered, /*barrier=*/true);
    auto d = make_write(sim, {{4, 4}});
    EXPECT_TRUE(dev.try_submit(a.cmd));
    EXPECT_TRUE(dev.try_submit(b.cmd));
    EXPECT_TRUE(dev.try_submit(c.cmd));
    EXPECT_TRUE(dev.try_submit(d.cmd));
    co_await a.done->wait();
    co_await b.done->wait();
    co_await c.done->wait();
    co_await d.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  const auto& h = dev.transfer_history();
  ASSERT_EQ(h.size(), 4u);
  // The barrier write transferred after both epoch-0 writes and before the
  // epoch-1 write.
  EXPECT_EQ(h[2].lba, 3u);
  EXPECT_EQ(h[3].lba, 4u);
  EXPECT_EQ(h[3].epoch, 1u);
}

TEST(DeviceTest, QueueFullRejectsSubmission) {
  Simulator sim;
  auto profile = test_profile(BarrierMode::kInOrderRecovery);
  profile.queue_depth = 2;
  StorageDevice dev(sim, profile);
  dev.start();
  int rejected = 0;
  auto body = [&]() -> Task {
    std::vector<testutil::Submission> subs;
    for (int i = 0; i < 4; ++i)
      subs.push_back(make_write(sim, {{static_cast<Lba>(i), 1}}));
    for (auto& s : subs)
      if (!dev.try_submit(s.cmd)) ++rejected;
    for (int i = 0; i < 2; ++i) co_await subs[i].done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(dev.stats().busy_rejections, 2u);
}

TEST(DeviceTest, ReadHitsCacheBeforeFlash) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  sim::SimTime read_latency = 0;
  auto body = [&]() -> Task {
    auto w = make_write(sim, {{9, 1}});
    EXPECT_TRUE(dev.try_submit(w.cmd));
    co_await w.done->wait();
    const sim::SimTime t0 = sim.now();
    auto r = make_read(sim, 9);
    EXPECT_TRUE(dev.try_submit(r.cmd));
    co_await r.done->wait();
    read_latency = sim.now() - t0;
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_GT(dev.stats().cache_read_hits, 0u);
  EXPECT_LT(read_latency, 50_us);
}

TEST(DeviceTest, TransactionalDurabilityIsAtomicBatches) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kTransactional));
  dev.start();
  auto body = [&]() -> Task {
    auto w1 = make_write(sim, {{1, 1}});
    auto w2 = make_write(sim, {{2, 2}});
    EXPECT_TRUE(dev.try_submit(w1.cmd));
    EXPECT_TRUE(dev.try_submit(w2.cmd));
    co_await w1.done->wait();
    co_await w2.done->wait();
    EXPECT_TRUE(dev.durable_state().empty()) << "no commit yet";
    auto f = make_flush(sim);
    EXPECT_TRUE(dev.try_submit(f.cmd));
    co_await f.done->wait();
    auto durable = dev.durable_state();
    EXPECT_EQ(durable.size(), 2u);
  };
  sim.spawn("t", body());
  sim.run();
}

TEST(DeviceTest, InOrderRecoveryDurableStateIsTransferPrefix) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    for (int i = 0; i < 6; ++i) {
      auto w = make_write(sim, {{static_cast<Lba>(i), Version(i + 1)}});
      co_await submit_retry(sim, dev, w.cmd);
      co_await w.done->wait();
    }
  };
  sim.spawn("t", body());
  // Stop mid-flight: some programs are still outstanding.
  sim.run_until(300_us);
  auto durable = dev.durable_state();
  const auto& history = dev.transfer_history();
  // Prefix property: if history[i] is durable with its version, every
  // earlier history entry must be durable too (last-write-wins aside, all
  // lbas here are distinct).
  bool seen_missing = false;
  for (const auto& e : history) {
    const bool present =
        durable.contains(e.lba) && durable.at(e.lba) == e.version;
    if (!present) seen_missing = true;
    EXPECT_FALSE(present && seen_missing)
        << "hole in the durable prefix at lba " << e.lba;
  }
}

TEST(DeviceTest, QueueDepthAccounting) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.enable_qd_trace();
  dev.start();
  auto body = [&]() -> Task {
    std::vector<testutil::Submission> subs;
    for (int i = 0; i < 4; ++i) {
      subs.push_back(make_write(sim, {{static_cast<Lba>(i), 1}}));
      co_await submit_retry(sim, dev, subs.back().cmd);
    }
    for (auto& s : subs) co_await s.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_GT(dev.average_queue_depth(), 0.0);
  EXPECT_FALSE(dev.qd_trace().points().empty());
  EXPECT_GE(dev.qd_trace().max_value(), 2.0);
  EXPECT_EQ(dev.queue_depth(), 0u) << "all commands retired";
}

TEST(DeviceTest, SimpleWritesBehindOrderedWait) {
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    auto a = make_write(sim, {{1, 1}}, Priority::kOrdered, true);
    auto b = make_write(sim, {{2, 2}});  // simple, behind the barrier
    EXPECT_TRUE(dev.try_submit(a.cmd));
    EXPECT_TRUE(dev.try_submit(b.cmd));
    co_await a.done->wait();
    co_await b.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  const auto& h = dev.transfer_history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].lba, 1u) << "simple write must not pass the ordered one";
  EXPECT_EQ(h[1].lba, 2u);
}

// ---- multi-port dispatch and cross-queue epoch fencing ---------------------

TEST(DeviceTest, EpochTagFencesTransfersAcrossPorts) {
  // A later-epoch write submitted on port 1 BEFORE the epoch-0 barrier on
  // port 0 (so with the lower seq): the (fence_epoch, seq) comparison must
  // still transfer the barrier first.
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  auto body = [&]() -> Task {
    auto late = make_write(sim, {{9, 9}});
    late.cmd->port = 1;
    late.cmd->fence_epoch = 1;
    auto b = make_write(sim, {{3, 3}}, Priority::kOrdered, /*barrier=*/true);
    b.cmd->port = 0;
    b.cmd->fence_epoch = 0;
    EXPECT_TRUE(dev.try_submit(late.cmd));
    EXPECT_TRUE(dev.try_submit(b.cmd));
    co_await late.done->wait();
    co_await b.done->wait();
  };
  sim.spawn("t", body());
  sim.run();
  const auto& h = dev.transfer_history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].lba, 3u) << "barrier transferred first despite later seq";
  EXPECT_EQ(h[1].lba, 9u);
  EXPECT_EQ(h[1].epoch, 1u) << "post-barrier write landed in the next epoch";
}

TEST(DeviceTest, PortsTransferInParallel) {
  // Each port has its own host bus: two simple writes on distinct ports
  // both complete in one overhead + DMA, where a shared bus would put the
  // second at overhead + 2 * DMA (>= 25 us in the test profile).
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  sim::SimTime last_done = 0;
  auto body = [&]() -> Task {
    auto w0 = make_write(sim, {{1, 1}});
    w0.cmd->port = 0;
    auto w1 = make_write(sim, {{2, 2}});
    w1.cmd->port = 1;
    EXPECT_TRUE(dev.try_submit(w0.cmd));
    EXPECT_TRUE(dev.try_submit(w1.cmd));
    co_await w0.done->wait();
    co_await w1.done->wait();
    last_done = sim.now();
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_LT(last_done, 25_us) << "second port must not queue on the first's "
                                 "host bus";
  EXPECT_EQ(dev.port_submissions(0), 1u);
  EXPECT_EQ(dev.port_submissions(1), 1u);
}

TEST(DeviceTest, FlushOnOnePortDrainsAllChannels) {
  // The flush contract is device-wide: a flush arriving on port 0 completes
  // only once writes transferred through every port are durable.
  Simulator sim;
  StorageDevice dev(sim, test_profile(BarrierMode::kInOrderRecovery));
  dev.start();
  bool flushed = false;
  auto body = [&]() -> Task {
    auto w0 = make_write(sim, {{1, 1}});
    w0.cmd->port = 0;
    auto w1 = make_write(sim, {{2, 2}});
    w1.cmd->port = 1;
    EXPECT_TRUE(dev.try_submit(w0.cmd));
    EXPECT_TRUE(dev.try_submit(w1.cmd));
    co_await w0.done->wait();
    co_await w1.done->wait();
    auto f = make_flush(sim, Priority::kHeadOfQueue);
    f.cmd->port = 0;
    EXPECT_TRUE(dev.try_submit(f.cmd));
    co_await f.done->wait();
    flushed = true;
    EXPECT_EQ(dev.durable_state().at(1), 1u);
    EXPECT_EQ(dev.durable_state().at(2), 2u) << "flush must cover port 1";
  };
  sim.spawn("t", body());
  sim.run();
  EXPECT_TRUE(flushed);
}

}  // namespace
}  // namespace bio::flash
