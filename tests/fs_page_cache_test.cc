// Tests for the page cache's indexed dirty/writeback tracking: dirty ->
// writeback -> clean transitions, dirty-count invariants, lazy completion
// sweeps, and drop_file mid-writeback.
#include <gtest/gtest.h>

#include <vector>

#include "blk/request_pool.h"
#include "fs/page_cache.h"
#include "sim/simulator.h"

namespace bio::fs {
namespace {

using blk::RequestPtr;
using PageKey = PageCache::PageKey;

struct Fixture {
  sim::Simulator sim;
  blk::RequestPool pool{sim};
  PageCache cache{sim};

  RequestPtr wb_request(flash::Lba lba) { return pool.make_write({{lba, 1}}); }
};

TEST(PageCacheTest, DirtyWritebackCleanTransitionsKeepCounts) {
  Fixture x;
  x.cache.write(1, 0, 100, 1, false);
  x.cache.write(1, 1, 101, 2, false);
  x.cache.write(2, 0, 200, 3, false);
  EXPECT_EQ(x.cache.dirty_count(), 3u);
  EXPECT_TRUE(x.cache.check_index_invariants());

  RequestPtr r = x.wb_request(100);
  x.cache.begin_writeback(PageKey{1, 0}, r);
  EXPECT_EQ(x.cache.dirty_count(), 2u);
  EXPECT_EQ(x.cache.writebacks_of(1).size(), 1u);
  EXPECT_TRUE(x.cache.check_index_invariants());

  x.cache.end_writeback(PageKey{1, 0}, r);
  EXPECT_TRUE(x.cache.writebacks_of(1).empty());
  EXPECT_EQ(x.cache.dirty_count(), 2u) << "clean page stays cached";
  EXPECT_EQ(x.cache.total_pages(), 3u);
  EXPECT_TRUE(x.cache.check_index_invariants());
}

TEST(PageCacheTest, DirtyPagesOfIsPerFileAndOrdered) {
  Fixture x;
  x.cache.write(7, 5, 705, 1, false);
  x.cache.write(7, 1, 701, 2, false);
  x.cache.write(9, 0, 900, 3, false);
  x.cache.write(7, 3, 703, 4, false);
  const std::vector<PageKey> dirty = x.cache.dirty_pages_of(7);
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty[0].page, 1u);
  EXPECT_EQ(dirty[1].page, 3u);
  EXPECT_EQ(dirty[2].page, 5u);
  EXPECT_TRUE(x.cache.dirty_pages_of(8).empty());
}

TEST(PageCacheTest, AllDirtyHonoursLimitAndGlobalOrder) {
  Fixture x;
  x.cache.write(2, 1, 21, 1, false);
  x.cache.write(1, 9, 19, 2, false);
  x.cache.write(1, 0, 10, 3, false);
  x.cache.write(3, 4, 34, 4, false);
  const std::vector<PageKey> all = x.cache.all_dirty(3);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ((std::pair{all[0].ino, all[0].page}), (std::pair{1u, 0u}));
  EXPECT_EQ((std::pair{all[1].ino, all[1].page}), (std::pair{1u, 9u}));
  EXPECT_EQ((std::pair{all[2].ino, all[2].page}), (std::pair{2u, 1u}));
}

TEST(PageCacheTest, RewriteDuringWritebackKeepsCarrierVisible) {
  Fixture x;
  x.cache.write(1, 0, 100, 1, false);
  RequestPtr r = x.wb_request(100);
  x.cache.begin_writeback(PageKey{1, 0}, r);
  EXPECT_EQ(x.cache.dirty_count(), 0u);

  // New version while the old write is in flight: dirty again, but the old
  // request is still physically in flight and MUST stay visible — a sync
  // path that cannot see it would submit the new version concurrently and
  // the two copies could land out of order (the write-after-write hazard
  // the crash checker caught).
  x.cache.write(1, 0, 100, 9, true);
  EXPECT_EQ(x.cache.dirty_count(), 1u);
  {
    const std::vector<RequestPtr> wb = x.cache.writebacks_of(1);
    ASSERT_EQ(wb.size(), 1u) << "in-flight carrier must remain tracked";
    EXPECT_EQ(wb[0], r);
  }
  EXPECT_TRUE(x.cache.check_index_invariants());

  // The stale request completing must not clear the new dirty state.
  r->completion.trigger();
  x.cache.end_writeback(PageKey{1, 0}, r);
  EXPECT_EQ(x.cache.dirty_count(), 1u);
  EXPECT_TRUE(x.cache.writebacks_of(1).empty());
  const PageCache::PageState* st = x.cache.find(1, 0);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->dirty);
  EXPECT_EQ(st->version, 9u);
  EXPECT_TRUE(x.cache.check_index_invariants());
}

TEST(PageCacheTest, WritebacksOfSweepsCompletedCarriers) {
  Fixture x;
  x.cache.write(1, 0, 100, 1, false);
  x.cache.write(1, 1, 101, 2, false);
  RequestPtr a = x.wb_request(100);
  RequestPtr b = x.wb_request(101);
  x.cache.begin_writeback(PageKey{1, 0}, a);
  x.cache.begin_writeback(PageKey{1, 1}, b);
  EXPECT_EQ(x.cache.writebacks_of(1).size(), 2u);

  a->completion.trigger();
  const std::vector<RequestPtr> wb = x.cache.writebacks_of(1);
  ASSERT_EQ(wb.size(), 1u) << "completed carrier must be swept";
  EXPECT_EQ(wb[0], b);
  const PageCache::PageState* st = x.cache.find(1, 0);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->writeback, nullptr) << "sweep must drop the stale reference";
  EXPECT_TRUE(x.cache.check_index_invariants());
}

TEST(PageCacheTest, MarkCleanMaintainsCountAndIndex) {
  Fixture x;
  x.cache.write(1, 0, 100, 1, true);
  x.cache.write(1, 1, 101, 2, true);
  EXPECT_EQ(x.cache.dirty_count(), 2u);
  x.cache.mark_clean(PageKey{1, 0});
  EXPECT_EQ(x.cache.dirty_count(), 1u);
  x.cache.mark_clean(PageKey{1, 0});  // idempotent on a clean page
  EXPECT_EQ(x.cache.dirty_count(), 1u);
  EXPECT_EQ(x.cache.dirty_pages_of(1).size(), 1u);
  EXPECT_TRUE(x.cache.check_index_invariants());
}

TEST(PageCacheTest, DropFileMidWritebackPurgesEverything) {
  Fixture x;
  x.cache.write(1, 0, 100, 1, false);
  x.cache.write(1, 1, 101, 2, false);
  x.cache.write(1, 2, 102, 3, false);
  x.cache.write(2, 0, 200, 4, false);
  RequestPtr r = x.wb_request(100);
  x.cache.begin_writeback(PageKey{1, 0}, r);  // page 0 in flight
  EXPECT_EQ(x.cache.dirty_count(), 3u);

  x.cache.drop_file(1);
  EXPECT_EQ(x.cache.dirty_count(), 1u) << "only ino 2's page remains dirty";
  EXPECT_EQ(x.cache.total_pages(), 1u);
  EXPECT_TRUE(x.cache.dirty_pages_of(1).empty());
  EXPECT_TRUE(x.cache.writebacks_of(1).empty());
  EXPECT_EQ(x.cache.find(1, 0), nullptr);
  EXPECT_TRUE(x.cache.check_index_invariants());

  // The in-flight request finishing afterwards must be harmless.
  x.cache.end_writeback(PageKey{1, 0}, r);
  EXPECT_TRUE(x.cache.check_index_invariants());
}

TEST(PageCacheTest, DropFileIsScopedToOneIno) {
  Fixture x;
  for (std::uint32_t ino : {1u, 2u, 3u})
    for (std::uint32_t page = 0; page < 4; ++page)
      x.cache.write(ino, page, ino * 100 + page, page + 1, false);
  EXPECT_EQ(x.cache.dirty_count(), 12u);
  x.cache.drop_file(2);
  EXPECT_EQ(x.cache.dirty_count(), 8u);
  EXPECT_EQ(x.cache.dirty_pages_of(1).size(), 4u);
  EXPECT_EQ(x.cache.dirty_pages_of(3).size(), 4u);
  EXPECT_TRUE(x.cache.check_index_invariants());
}

}  // namespace
}  // namespace bio::fs
