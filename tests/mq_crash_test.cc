// Multi-queue crash sweeps: every stack's crash contract must hold at
// nr_queues = 4, where writers land on different software queues, queues
// map onto different flash channels, and ordering across them rests
// entirely on the cross-queue epoch fence (blk/epoch_fence.h).
//
// These sweeps are the regression net that caught the fence's original
// publish/subscribe design losing cross-queue ordering (staged requests
// invisible to the drain check — DESIGN.md §14 has the ledger); the
// epoch-tag protocol that replaced it is what they now guard.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chk/crash_check.h"

namespace bio {
namespace {

using chk::CrashSweepResult;
using core::StackKind;

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) out += "\n  " + s;
  return out;
}

class MqCrashSweepTest : public testing::TestWithParam<StackKind> {};

TEST_P(MqCrashSweepTest, SingleWriterContractHoldsAtFourQueues) {
  chk::CrashCheckOptions opt;
  opt.nr_queues = 4;
  const CrashSweepResult r = chk::run_crash_sweep(GetParam(), 100, 1, opt);
  EXPECT_EQ(r.points, 100);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
}

TEST_P(MqCrashSweepTest, ConcurrentContractHoldsAtFourQueues) {
  chk::ConcurrentCrashOptions opt;
  opt.nr_queues = 4;
  const CrashSweepResult r =
      chk::run_concurrent_crash_sweep(GetParam(), 100, 1, opt);
  EXPECT_EQ(r.points, 100);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
}

TEST_P(MqCrashSweepTest, RingChainContractHoldsAtFourQueues) {
  // The ring workload is the sharpest multi-queue probe: each linked chain
  // issues from its own coroutine, so chains spread across all four queues.
  chk::RingCrashOptions opt;
  opt.nr_queues = 4;
  const CrashSweepResult r = chk::run_ring_crash_sweep(GetParam(), 100, 1, opt);
  EXPECT_EQ(r.points, 100);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
}

TEST_P(MqCrashSweepTest, FaultContractHoldsAtFourQueues) {
  chk::FaultCrashOptions opt;
  opt.wl.nr_queues = 4;
  const CrashSweepResult r = chk::run_fault_crash_sweep(GetParam(), 60, 1, opt);
  EXPECT_EQ(r.points, 60);
  EXPECT_EQ(r.failed_points, 0) << join(r.sample_violations);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, MqCrashSweepTest,
    testing::Values(StackKind::kExt4DR, StackKind::kBfsDR, StackKind::kBfsOD,
                    StackKind::kOptFs),
    [](const testing::TestParamInfo<StackKind>& info) {
      std::string name = core::to_string(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(MqNobarrierTest, Ext4OrderlessStaysBrokenAtFourQueues) {
  // The orderless stack's contract violations must survive the multi-queue
  // refactor: if the mq path accidentally made EXT4-OD look safe, the
  // sweep's oracle (not the stack) would be what broke.
  chk::RingCrashOptions opt;
  opt.nr_queues = 4;
  const CrashSweepResult r =
      chk::run_ring_crash_sweep(StackKind::kExt4OD, 120, 1, opt);
  EXPECT_GT(r.failed_points, 0)
      << "nobarrier EXT4 must still violate its claimed contract";
}

}  // namespace
}  // namespace bio
