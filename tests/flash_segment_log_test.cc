// Tests for the log-structured FTL: append ordering, programmed-prefix
// tracking, durability analyses and garbage collection.
#include <gtest/gtest.h>

#include "flash/segment_log.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace bio::flash {
namespace {

using namespace bio::sim::literals;
using sim::Simulator;
using sim::Task;

Geometry small_geom() {
  return Geometry{.channels = 2,
                  .ways_per_channel = 2,
                  .blocks_per_chip = 8,
                  .pages_per_block = 4};
}

NandTiming fast_timing() {
  return NandTiming{.read_page = 50_us,
                    .program_page = 200_us,
                    .erase_block = 1'000_us,
                    .channel_xfer = 10_us};
}

struct Fixture {
  Simulator sim;
  NandArray nand{sim, small_geom(), fast_timing()};
  SegmentLog log{sim, nand};
  Fixture() { log.start(); }
};

TEST(SegmentLogTest, AppendBecomesDurableInOrder) {
  Fixture f;
  auto body = [&]() -> Task {
    co_await f.log.append(10, 1);
    co_await f.log.append(20, 2);
  };
  f.sim.spawn("t", body());
  f.sim.run();
  auto durable = f.log.durable_in_order_recovery();
  EXPECT_EQ(durable.at(10), 1u);
  EXPECT_EQ(durable.at(20), 2u);
  EXPECT_EQ(f.log.programmed_prefix(), 2u);
}

TEST(SegmentLogTest, OverwriteLastWriteWins) {
  Fixture f;
  auto body = [&]() -> Task {
    co_await f.log.append(10, 1);
    co_await f.log.append(10, 2);
    co_await f.log.append(10, 3);
  };
  f.sim.spawn("t", body());
  f.sim.run();
  EXPECT_EQ(f.log.durable_in_order_recovery().at(10), 3u);
  EXPECT_EQ(f.log.mapped_version(10), 3u);
}

TEST(SegmentLogTest, PrefixStopsAtInFlightProgram) {
  Fixture f;
  auto writer = [&]() -> Task {
    SegmentLog::Reservation r1, r2, r3;
    co_await f.log.reserve(1, 1, r1);
    co_await f.log.reserve(2, 2, r2);
    co_await f.log.reserve(3, 3, r3);
    // Program out of order: 3 and 1 complete, 2 never starts.
    f.sim.spawn("p3", f.log.program_reserved(r3));
    f.sim.spawn("p1", f.log.program_reserved(r1));
  };
  f.sim.spawn("w", writer());
  f.sim.run();
  // Only entry 1 is in the recovered prefix: entry 2's page is a hole.
  auto durable = f.log.durable_in_order_recovery();
  EXPECT_EQ(durable.size(), 1u);
  EXPECT_EQ(durable.at(1), 1u);
  // The programmed-set analysis (no-barrier device) sees 1 and 3.
  auto programmed = f.log.durable_programmed_set();
  EXPECT_EQ(programmed.size(), 2u);
  EXPECT_TRUE(programmed.contains(3));
}

TEST(SegmentLogTest, CommitPointGatesDurability) {
  Fixture f;
  auto body = [&]() -> Task {
    co_await f.log.append(1, 1);
    f.log.mark_commit_point();
    co_await f.log.append(2, 2);
  };
  f.sim.spawn("t", body());
  f.sim.run();
  auto durable = f.log.durable_committed();
  EXPECT_TRUE(durable.contains(1));
  EXPECT_FALSE(durable.contains(2));
}

TEST(SegmentLogTest, ParallelProgramsUseMultipleChips) {
  Fixture f;
  auto writer = [&]() -> Task {
    std::vector<SegmentLog::Reservation> rs(4);
    for (int i = 0; i < 4; ++i)
      co_await f.log.reserve(static_cast<Lba>(i), 1, rs[i]);
    std::vector<sim::ThreadCtx*> ws;
    for (int i = 0; i < 4; ++i)
      ws.push_back(&f.sim.spawn("p", f.log.program_reserved(rs[i])));
    for (auto* w : ws) co_await f.sim.join(*w);
  };
  f.sim.spawn("w", writer());
  f.sim.run();
  // 4 consecutive slots stripe over 4 chips; wall time far below 4x serial.
  EXPECT_LT(f.sim.now(), 2 * (200_us + 4 * 10_us));
  EXPECT_EQ(f.log.programmed_prefix(), 4u);
}

TEST(SegmentLogTest, GcReclaimsInvalidatedSegments) {
  Fixture f;
  // Physical capacity = 128 pages. Overwrite a tiny working set far beyond
  // capacity; GC must reclaim continuously or appends would deadlock.
  auto body = [&]() -> Task {
    for (int i = 0; i < 400; ++i)
      co_await f.log.append(static_cast<Lba>(i % 8), static_cast<Version>(i));
  };
  f.sim.spawn("t", body());
  f.sim.run();
  EXPECT_GT(f.log.gc_stats().segments_erased, 0u);
  EXPECT_EQ(f.log.append_count() - f.log.gc_stats().pages_copied, 400u);
  // Every lba maps to its latest version.
  for (Lba l = 0; l < 8; ++l)
    EXPECT_EQ(f.log.mapped_version(l), static_cast<Version>(392 + l));
}

TEST(SegmentLogTest, GcPreservesLastWriteWinsInDurableState) {
  Fixture f;
  auto body = [&]() -> Task {
    for (int i = 0; i < 300; ++i)
      co_await f.log.append(static_cast<Lba>(i % 16),
                            static_cast<Version>(i + 1));
  };
  f.sim.spawn("t", body());
  f.sim.run();
  auto durable = f.log.durable_in_order_recovery();
  for (Lba l = 0; l < 16; ++l) {
    // Last write to lba l: largest i < 300 with i % 16 == l; version i+1.
    const Version expect = l < 12 ? 289 + l : 273 + l;
    EXPECT_EQ(durable.at(l), expect) << "lba " << l;
  }
}

TEST(SegmentLogTest, PrefillPopulatesMappingWithoutSimTime) {
  Fixture f;
  sim::Rng rng(1);
  f.log.prefill(0.5, /*lba_span=*/32, rng);
  EXPECT_EQ(f.sim.now(), 0u);
  EXPECT_GT(f.log.append_count(), 40u);
  EXPECT_EQ(f.log.programmed_prefix(), f.log.append_count());
}

TEST(SegmentLogTest, PrefilledDeviceStillAppends) {
  Fixture f;
  sim::Rng rng(1);
  f.log.prefill(0.7, 32, rng);
  auto body = [&]() -> Task {
    for (int i = 0; i < 64; ++i)
      co_await f.log.append(static_cast<Lba>(i % 32), 1000 + i);
  };
  f.sim.spawn("t", body());
  f.sim.run();
  EXPECT_EQ(f.log.mapped_version(31), 1000u + 63u);
}

TEST(SegmentLogTest, ReadUnmappedLbaCompletesInstantly) {
  Fixture f;
  auto body = [&]() -> Task { co_await f.log.read(999); };
  f.sim.spawn("t", body());
  f.sim.run();
  EXPECT_EQ(sim::SimTime{0}, f.sim.now());
}

TEST(SegmentLogTest, ReadMappedLbaCostsFlashRead) {
  Fixture f;
  auto body = [&]() -> Task {
    co_await f.log.append(5, 1);
    co_await f.log.read(5);
  };
  f.sim.spawn("t", body());
  f.sim.run();
  EXPECT_GE(f.sim.now(), 200_us + 50_us);
}

}  // namespace
}  // namespace bio::flash
